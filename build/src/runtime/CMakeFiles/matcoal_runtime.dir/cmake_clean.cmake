file(REMOVE_RECURSE
  "CMakeFiles/matcoal_runtime.dir/Builtins.cpp.o"
  "CMakeFiles/matcoal_runtime.dir/Builtins.cpp.o.d"
  "CMakeFiles/matcoal_runtime.dir/Ops.cpp.o"
  "CMakeFiles/matcoal_runtime.dir/Ops.cpp.o.d"
  "CMakeFiles/matcoal_runtime.dir/Value.cpp.o"
  "CMakeFiles/matcoal_runtime.dir/Value.cpp.o.d"
  "libmatcoal_runtime.a"
  "libmatcoal_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
