file(REMOVE_RECURSE
  "libmatcoal_runtime.a"
)
