
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/Builtins.cpp" "src/runtime/CMakeFiles/matcoal_runtime.dir/Builtins.cpp.o" "gcc" "src/runtime/CMakeFiles/matcoal_runtime.dir/Builtins.cpp.o.d"
  "/root/repo/src/runtime/Ops.cpp" "src/runtime/CMakeFiles/matcoal_runtime.dir/Ops.cpp.o" "gcc" "src/runtime/CMakeFiles/matcoal_runtime.dir/Ops.cpp.o.d"
  "/root/repo/src/runtime/Value.cpp" "src/runtime/CMakeFiles/matcoal_runtime.dir/Value.cpp.o" "gcc" "src/runtime/CMakeFiles/matcoal_runtime.dir/Value.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/matcoal_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/matcoal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
