# Empty compiler generated dependencies file for matcoal_runtime.
# This may be replaced when dependencies are built.
