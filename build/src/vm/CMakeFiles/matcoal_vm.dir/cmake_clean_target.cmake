file(REMOVE_RECURSE
  "libmatcoal_vm.a"
)
