# Empty dependencies file for matcoal_vm.
# This may be replaced when dependencies are built.
