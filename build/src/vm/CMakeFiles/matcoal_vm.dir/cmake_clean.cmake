file(REMOVE_RECURSE
  "CMakeFiles/matcoal_vm.dir/VM.cpp.o"
  "CMakeFiles/matcoal_vm.dir/VM.cpp.o.d"
  "libmatcoal_vm.a"
  "libmatcoal_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
