# Empty dependencies file for matcoal_support.
# This may be replaced when dependencies are built.
