file(REMOVE_RECURSE
  "libmatcoal_support.a"
)
