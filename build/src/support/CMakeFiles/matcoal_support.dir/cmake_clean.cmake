file(REMOVE_RECURSE
  "CMakeFiles/matcoal_support.dir/Diagnostics.cpp.o"
  "CMakeFiles/matcoal_support.dir/Diagnostics.cpp.o.d"
  "CMakeFiles/matcoal_support.dir/SymExpr.cpp.o"
  "CMakeFiles/matcoal_support.dir/SymExpr.cpp.o.d"
  "libmatcoal_support.a"
  "libmatcoal_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
