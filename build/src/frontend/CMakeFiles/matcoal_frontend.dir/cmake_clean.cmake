file(REMOVE_RECURSE
  "CMakeFiles/matcoal_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/matcoal_frontend.dir/Lexer.cpp.o.d"
  "CMakeFiles/matcoal_frontend.dir/Parser.cpp.o"
  "CMakeFiles/matcoal_frontend.dir/Parser.cpp.o.d"
  "libmatcoal_frontend.a"
  "libmatcoal_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
