# Empty dependencies file for matcoal_frontend.
# This may be replaced when dependencies are built.
