file(REMOVE_RECURSE
  "libmatcoal_frontend.a"
)
