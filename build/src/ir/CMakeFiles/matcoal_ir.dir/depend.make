# Empty dependencies file for matcoal_ir.
# This may be replaced when dependencies are built.
