file(REMOVE_RECURSE
  "CMakeFiles/matcoal_ir.dir/IR.cpp.o"
  "CMakeFiles/matcoal_ir.dir/IR.cpp.o.d"
  "libmatcoal_ir.a"
  "libmatcoal_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
