file(REMOVE_RECURSE
  "libmatcoal_ir.a"
)
