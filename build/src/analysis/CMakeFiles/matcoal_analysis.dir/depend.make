# Empty dependencies file for matcoal_analysis.
# This may be replaced when dependencies are built.
