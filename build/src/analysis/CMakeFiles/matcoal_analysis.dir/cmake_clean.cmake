file(REMOVE_RECURSE
  "CMakeFiles/matcoal_analysis.dir/Dominators.cpp.o"
  "CMakeFiles/matcoal_analysis.dir/Dominators.cpp.o.d"
  "CMakeFiles/matcoal_analysis.dir/Liveness.cpp.o"
  "CMakeFiles/matcoal_analysis.dir/Liveness.cpp.o.d"
  "libmatcoal_analysis.a"
  "libmatcoal_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
