file(REMOVE_RECURSE
  "libmatcoal_analysis.a"
)
