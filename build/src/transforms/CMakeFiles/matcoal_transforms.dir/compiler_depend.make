# Empty compiler generated dependencies file for matcoal_transforms.
# This may be replaced when dependencies are built.
