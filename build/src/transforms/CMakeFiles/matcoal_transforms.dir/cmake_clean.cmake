file(REMOVE_RECURSE
  "CMakeFiles/matcoal_transforms.dir/Lowering.cpp.o"
  "CMakeFiles/matcoal_transforms.dir/Lowering.cpp.o.d"
  "CMakeFiles/matcoal_transforms.dir/Passes.cpp.o"
  "CMakeFiles/matcoal_transforms.dir/Passes.cpp.o.d"
  "CMakeFiles/matcoal_transforms.dir/SSA.cpp.o"
  "CMakeFiles/matcoal_transforms.dir/SSA.cpp.o.d"
  "libmatcoal_transforms.a"
  "libmatcoal_transforms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_transforms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
