file(REMOVE_RECURSE
  "libmatcoal_transforms.a"
)
