# Empty dependencies file for matcoal_codegen.
# This may be replaced when dependencies are built.
