file(REMOVE_RECURSE
  "libmatcoal_codegen.a"
)
