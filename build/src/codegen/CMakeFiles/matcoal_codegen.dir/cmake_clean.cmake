file(REMOVE_RECURSE
  "CMakeFiles/matcoal_codegen.dir/CEmitter.cpp.o"
  "CMakeFiles/matcoal_codegen.dir/CEmitter.cpp.o.d"
  "libmatcoal_codegen.a"
  "libmatcoal_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
