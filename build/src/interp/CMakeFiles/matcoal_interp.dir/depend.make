# Empty dependencies file for matcoal_interp.
# This may be replaced when dependencies are built.
