file(REMOVE_RECURSE
  "CMakeFiles/matcoal_interp.dir/Interp.cpp.o"
  "CMakeFiles/matcoal_interp.dir/Interp.cpp.o.d"
  "libmatcoal_interp.a"
  "libmatcoal_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
