file(REMOVE_RECURSE
  "libmatcoal_interp.a"
)
