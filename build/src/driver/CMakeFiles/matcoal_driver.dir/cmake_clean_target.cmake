file(REMOVE_RECURSE
  "libmatcoal_driver.a"
)
