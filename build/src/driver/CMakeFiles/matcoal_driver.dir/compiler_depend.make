# Empty compiler generated dependencies file for matcoal_driver.
# This may be replaced when dependencies are built.
