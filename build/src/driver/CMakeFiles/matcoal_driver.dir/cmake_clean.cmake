file(REMOVE_RECURSE
  "CMakeFiles/matcoal_driver.dir/Compiler.cpp.o"
  "CMakeFiles/matcoal_driver.dir/Compiler.cpp.o.d"
  "libmatcoal_driver.a"
  "libmatcoal_driver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_driver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
