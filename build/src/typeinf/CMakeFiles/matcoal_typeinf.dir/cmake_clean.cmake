file(REMOVE_RECURSE
  "CMakeFiles/matcoal_typeinf.dir/TypeInference.cpp.o"
  "CMakeFiles/matcoal_typeinf.dir/TypeInference.cpp.o.d"
  "CMakeFiles/matcoal_typeinf.dir/Types.cpp.o"
  "CMakeFiles/matcoal_typeinf.dir/Types.cpp.o.d"
  "libmatcoal_typeinf.a"
  "libmatcoal_typeinf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_typeinf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
