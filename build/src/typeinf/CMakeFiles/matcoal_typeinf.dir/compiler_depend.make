# Empty compiler generated dependencies file for matcoal_typeinf.
# This may be replaced when dependencies are built.
