file(REMOVE_RECURSE
  "libmatcoal_typeinf.a"
)
