file(REMOVE_RECURSE
  "CMakeFiles/matcoal_gctd.dir/Interference.cpp.o"
  "CMakeFiles/matcoal_gctd.dir/Interference.cpp.o.d"
  "CMakeFiles/matcoal_gctd.dir/PartialInterference.cpp.o"
  "CMakeFiles/matcoal_gctd.dir/PartialInterference.cpp.o.d"
  "CMakeFiles/matcoal_gctd.dir/StoragePlan.cpp.o"
  "CMakeFiles/matcoal_gctd.dir/StoragePlan.cpp.o.d"
  "libmatcoal_gctd.a"
  "libmatcoal_gctd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_gctd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
