
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gctd/Interference.cpp" "src/gctd/CMakeFiles/matcoal_gctd.dir/Interference.cpp.o" "gcc" "src/gctd/CMakeFiles/matcoal_gctd.dir/Interference.cpp.o.d"
  "/root/repo/src/gctd/PartialInterference.cpp" "src/gctd/CMakeFiles/matcoal_gctd.dir/PartialInterference.cpp.o" "gcc" "src/gctd/CMakeFiles/matcoal_gctd.dir/PartialInterference.cpp.o.d"
  "/root/repo/src/gctd/StoragePlan.cpp" "src/gctd/CMakeFiles/matcoal_gctd.dir/StoragePlan.cpp.o" "gcc" "src/gctd/CMakeFiles/matcoal_gctd.dir/StoragePlan.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/typeinf/CMakeFiles/matcoal_typeinf.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/matcoal_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/matcoal_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/matcoal_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/matcoal_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/matcoal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
