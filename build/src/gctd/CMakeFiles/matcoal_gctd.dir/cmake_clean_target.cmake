file(REMOVE_RECURSE
  "libmatcoal_gctd.a"
)
