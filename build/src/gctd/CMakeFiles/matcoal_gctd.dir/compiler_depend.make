# Empty compiler generated dependencies file for matcoal_gctd.
# This may be replaced when dependencies are built.
