
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig2_main.cpp" "bench/CMakeFiles/bench_fig2.dir/fig2_main.cpp.o" "gcc" "bench/CMakeFiles/bench_fig2.dir/fig2_main.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/matcoal_bench_programs.dir/DependInfo.cmake"
  "/root/repo/build/src/driver/CMakeFiles/matcoal_driver.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/matcoal_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/matcoal_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/matcoal_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/matcoal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/gctd/CMakeFiles/matcoal_gctd.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/matcoal_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/matcoal_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/typeinf/CMakeFiles/matcoal_typeinf.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/matcoal_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/matcoal_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/matcoal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
