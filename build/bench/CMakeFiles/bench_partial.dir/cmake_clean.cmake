file(REMOVE_RECURSE
  "CMakeFiles/bench_partial.dir/partial_main.cpp.o"
  "CMakeFiles/bench_partial.dir/partial_main.cpp.o.d"
  "bench_partial"
  "bench_partial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_partial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
