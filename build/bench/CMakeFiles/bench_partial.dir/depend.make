# Empty dependencies file for bench_partial.
# This may be replaced when dependencies are built.
