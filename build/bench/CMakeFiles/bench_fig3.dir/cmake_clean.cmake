file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3.dir/fig3_main.cpp.o"
  "CMakeFiles/bench_fig3.dir/fig3_main.cpp.o.d"
  "bench_fig3"
  "bench_fig3.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
