# Empty dependencies file for matcoal_bench_programs.
# This may be replaced when dependencies are built.
