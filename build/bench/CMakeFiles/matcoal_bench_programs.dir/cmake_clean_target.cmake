file(REMOVE_RECURSE
  "../lib/libmatcoal_bench_programs.a"
)
