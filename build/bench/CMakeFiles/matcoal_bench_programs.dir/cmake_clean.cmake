file(REMOVE_RECURSE
  "../lib/libmatcoal_bench_programs.a"
  "../lib/libmatcoal_bench_programs.pdb"
  "CMakeFiles/matcoal_bench_programs.dir/programs/Programs.cpp.o"
  "CMakeFiles/matcoal_bench_programs.dir/programs/Programs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matcoal_bench_programs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
