# Empty dependencies file for memory_comparison.
# This may be replaced when dependencies are built.
