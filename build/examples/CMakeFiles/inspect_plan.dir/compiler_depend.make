# Empty compiler generated dependencies file for inspect_plan.
# This may be replaced when dependencies are built.
