file(REMOVE_RECURSE
  "CMakeFiles/inspect_plan.dir/inspect_plan.cpp.o"
  "CMakeFiles/inspect_plan.dir/inspect_plan.cpp.o.d"
  "inspect_plan"
  "inspect_plan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inspect_plan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
