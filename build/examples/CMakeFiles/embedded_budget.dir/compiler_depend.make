# Empty compiler generated dependencies file for embedded_budget.
# This may be replaced when dependencies are built.
