file(REMOVE_RECURSE
  "CMakeFiles/matlab_runner.dir/matlab_runner.cpp.o"
  "CMakeFiles/matlab_runner.dir/matlab_runner.cpp.o.d"
  "matlab_runner"
  "matlab_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matlab_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
