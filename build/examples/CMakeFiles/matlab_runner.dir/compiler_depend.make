# Empty compiler generated dependencies file for matlab_runner.
# This may be replaced when dependencies are built.
