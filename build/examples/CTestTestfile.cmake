# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_inspect_plan "/root/repo/build/examples/inspect_plan")
set_tests_properties(example_inspect_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memory_comparison "/root/repo/build/examples/memory_comparison")
set_tests_properties(example_memory_comparison PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_embedded_budget "/root/repo/build/examples/embedded_budget")
set_tests_properties(example_embedded_budget PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
