# Empty dependencies file for typeinf_test.
# This may be replaced when dependencies are built.
