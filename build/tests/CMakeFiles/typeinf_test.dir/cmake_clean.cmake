file(REMOVE_RECURSE
  "CMakeFiles/typeinf_test.dir/typeinf/TypeInferenceTest.cpp.o"
  "CMakeFiles/typeinf_test.dir/typeinf/TypeInferenceTest.cpp.o.d"
  "CMakeFiles/typeinf_test.dir/typeinf/TypesTest.cpp.o"
  "CMakeFiles/typeinf_test.dir/typeinf/TypesTest.cpp.o.d"
  "typeinf_test"
  "typeinf_test.pdb"
  "typeinf_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/typeinf_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
