file(REMOVE_RECURSE
  "CMakeFiles/gctd_test.dir/gctd/GCTDTest.cpp.o"
  "CMakeFiles/gctd_test.dir/gctd/GCTDTest.cpp.o.d"
  "gctd_test"
  "gctd_test.pdb"
  "gctd_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gctd_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
