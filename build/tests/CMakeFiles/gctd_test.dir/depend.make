# Empty dependencies file for gctd_test.
# This may be replaced when dependencies are built.
