
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/runtime/BuiltinsTest.cpp" "tests/CMakeFiles/runtime_test.dir/runtime/BuiltinsTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/BuiltinsTest.cpp.o.d"
  "/root/repo/tests/runtime/OpsTest.cpp" "tests/CMakeFiles/runtime_test.dir/runtime/OpsTest.cpp.o" "gcc" "tests/CMakeFiles/runtime_test.dir/runtime/OpsTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/runtime/CMakeFiles/matcoal_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/matcoal_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/matcoal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
