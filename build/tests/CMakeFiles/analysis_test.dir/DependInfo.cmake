
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/analysis/AnalysisTest.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/AnalysisTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/AnalysisTest.cpp.o.d"
  "/root/repo/tests/analysis/DominatorPropertyTest.cpp" "tests/CMakeFiles/analysis_test.dir/analysis/DominatorPropertyTest.cpp.o" "gcc" "tests/CMakeFiles/analysis_test.dir/analysis/DominatorPropertyTest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/analysis/CMakeFiles/matcoal_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/transforms/CMakeFiles/matcoal_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/matcoal_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/matcoal_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/matcoal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
