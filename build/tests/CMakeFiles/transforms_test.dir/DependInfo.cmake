
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/transforms/LoweringTest.cpp" "tests/CMakeFiles/transforms_test.dir/transforms/LoweringTest.cpp.o" "gcc" "tests/CMakeFiles/transforms_test.dir/transforms/LoweringTest.cpp.o.d"
  "/root/repo/tests/transforms/PassesTest.cpp" "tests/CMakeFiles/transforms_test.dir/transforms/PassesTest.cpp.o" "gcc" "tests/CMakeFiles/transforms_test.dir/transforms/PassesTest.cpp.o.d"
  "/root/repo/tests/transforms/SSATest.cpp" "tests/CMakeFiles/transforms_test.dir/transforms/SSATest.cpp.o" "gcc" "tests/CMakeFiles/transforms_test.dir/transforms/SSATest.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/transforms/CMakeFiles/matcoal_transforms.dir/DependInfo.cmake"
  "/root/repo/build/src/frontend/CMakeFiles/matcoal_frontend.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/matcoal_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/matcoal_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/matcoal_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
