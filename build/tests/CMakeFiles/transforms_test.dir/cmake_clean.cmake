file(REMOVE_RECURSE
  "CMakeFiles/transforms_test.dir/transforms/LoweringTest.cpp.o"
  "CMakeFiles/transforms_test.dir/transforms/LoweringTest.cpp.o.d"
  "CMakeFiles/transforms_test.dir/transforms/PassesTest.cpp.o"
  "CMakeFiles/transforms_test.dir/transforms/PassesTest.cpp.o.d"
  "CMakeFiles/transforms_test.dir/transforms/SSATest.cpp.o"
  "CMakeFiles/transforms_test.dir/transforms/SSATest.cpp.o.d"
  "transforms_test"
  "transforms_test.pdb"
  "transforms_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/transforms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
