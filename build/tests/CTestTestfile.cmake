# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/transforms_test[1]_include.cmake")
include("/root/repo/build/tests/typeinf_test[1]_include.cmake")
include("/root/repo/build/tests/gctd_test[1]_include.cmake")
include("/root/repo/build/tests/runtime_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/codegen_test[1]_include.cmake")
include("/root/repo/build/tests/vm_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
