#!/usr/bin/env python3
"""Storm a matcoald binary and scrape its observability surface.

Drives the daemon over stdin/stdout NDJSON: sends N compile requests
(every sixth traced), retries any backpressure rejection, waits for all
N completions, THEN scrapes the `metrics` and `dump` ops — so the
aggregate provably holds every request — and shuts down, which makes
the daemon write the merged Chrome trace / flight dump files.

Hard assertions:
  * all N requests eventually complete (rejections are retried);
  * the metrics reply is a well-formed envelope (grammar is validated
    separately by check_metrics.py);
  * the dump reply parses and carries the flight ring;
  * the merged trace parses, holds >= N complete trees (one root span
    named "request" per request id), and no event references a parent
    outside its own request.

Usage:
  storm_matcoald.py <matcoald> <n-requests> <trace-out> <metrics-out>
"""

import json
import subprocess
import sys
import time


def request_source(i):
    return (f"s = 0; for i = 1:{3 + i % 5}; s = s + i; end; disp(s);")


def main():
    if len(sys.argv) != 5:
        print(__doc__, file=sys.stderr)
        return 2
    daemon, n, trace_out, metrics_out = (
        sys.argv[1], int(sys.argv[2]), sys.argv[3], sys.argv[4])

    proc = subprocess.Popen(
        [daemon, "--workers=4", "--queue=8", f"--trace-out={trace_out}"],
        stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True)

    def send(obj):
        proc.stdin.write(json.dumps(obj) + "\n")
        proc.stdin.flush()

    def recv():
        line = proc.stdout.readline()
        assert line, "daemon closed stdout early"
        return json.loads(line)

    pending = {}
    for i in range(n):
        req = {"id": f"c{i}", "source": request_source(i)}
        if i % 6 == 0:
            req["trace"] = True
        pending[req["id"]] = req
        send(req)

    # Collect completions; a small queue (8) against a 32-burst forces
    # the backpressure path, and rejected requests are re-sent until the
    # whole storm lands.
    done, rejections = {}, 0
    while len(done) < n:
        reply = recv()
        rid = reply.get("id")
        if reply.get("rejected"):
            rejections += 1
            assert rejections < 10 * n, "backpressure never drained"
            time.sleep(reply.get("retry_after_ms", 10) / 1000.0)
            send(pending[rid])
            continue
        assert rid in pending and rid not in done, reply
        assert "request_id" in reply, f"no request_id echoed: {reply}"
        if pending[rid].get("trace"):
            assert reply.get("spans", {}).get("name") == "request", reply
        done[rid] = reply

    # Only now is the aggregate guaranteed to hold all n requests.
    send({"id": "m", "op": "metrics"})
    metrics = recv()
    assert metrics.get("kind") == "metrics", metrics
    with open(metrics_out, "w", encoding="utf-8") as f:
        f.write(metrics["metrics"])

    send({"id": "d", "op": "dump"})
    dump = recv()
    assert dump.get("kind") == "dump", dump
    assert dump["flight"]["recorded"] >= n, dump["flight"]["recorded"]

    send({"id": "bye", "op": "shutdown"})
    proc.stdin.close()
    assert proc.wait() == 0, "daemon exited non-zero"

    # The merged trace: one complete tree per request, zero orphans.
    with open(trace_out, encoding="utf-8") as f:
        trace = json.load(f)
    events = [e for e in trace["traceEvents"] if e["ph"] == "X"]
    by_request = {}
    for e in events:
        by_request.setdefault(e["args"]["request_id"], []).append(e)
    assert len(by_request) >= n, (
        f"expected >= {n} request trees, got {len(by_request)}")
    for rid, evs in by_request.items():
        names = {e["name"] for e in evs}
        roots = [e for e in evs if e["args"]["parent"] == ""]
        assert len(roots) == 1 and roots[0]["name"] == "request", (
            f"{rid}: want exactly one 'request' root, got "
            f"{[r['name'] for r in roots]}")
        for e in evs:
            parent = e["args"]["parent"]
            assert parent == "" or parent in names, (
                f"{rid}: orphan event {e['name']} (parent {parent!r})")

    print(f"storm OK: {n} requests ({rejections} backpressure retries), "
          f"{len(events)} trace events across {len(by_request)} trees, "
          f"flight ring recorded {dump['flight']['recorded']}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
