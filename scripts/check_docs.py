#!/usr/bin/env python3
"""Documentation consistency checks (the CI `docs` job; run locally too).

Two checks, both cheap and dependency-free:

1. Every intra-repo markdown link in the checked documentation set must
   resolve to a file or directory in the repository. External links
   (http/https/mailto) and pure anchors are ignored; a `path#anchor`
   link is checked for the path part only.

2. Every counter name pinned in tests/observe/stats_schema.txt must be
   mentioned in DESIGN.md or docs/GLOSSARY.md, so a new counter cannot
   land without prose saying what it measures. Counter families count
   via their longest documented prefix: `gctd.groups.stack` is covered
   by a mention of `gctd.groups.stack` or the family wildcard
   `gctd.*` / `gctd.groups.*`.

Exit 0 when clean; prints one line per violation and exits 1 otherwise.
"""

import os
import re
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

DOCS = [
    "README.md",
    "DESIGN.md",
    "EXPERIMENTS.md",
    "ROADMAP.md",
    "CHANGES.md",
    "docs/ARCHITECTURE.md",
    "docs/GLOSSARY.md",
    "docs/EXECUTION_TIERS.md",
    "docs/OBSERVABILITY.md",
]

COUNTER_DOCS = ["DESIGN.md", "docs/GLOSSARY.md"]

SCHEMA = "tests/observe/stats_schema.txt"

# [text](target) -- target up to the first unescaped ')'; inline code
# spans are stripped first so `(a | b)` tables don't false-positive.
LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def read(path):
    with open(os.path.join(REPO, path), encoding="utf-8") as f:
        return f.read()


def check_links():
    bad = []
    for doc in DOCS:
        if not os.path.exists(os.path.join(REPO, doc)):
            bad.append(f"{doc}: listed in check_docs.py but missing")
            continue
        text = re.sub(r"`[^`]*`", "", read(doc))
        for m in LINK_RE.finditer(text):
            target = m.group(1)
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            path = target.split("#", 1)[0]
            resolved = os.path.normpath(
                os.path.join(REPO, os.path.dirname(doc), path))
            if not os.path.exists(resolved):
                line = text[:m.start()].count("\n") + 1
                bad.append(f"{doc}:{line}: broken link: {target}")
    return bad


def check_counters():
    schema = [l.strip() for l in read(SCHEMA).splitlines() if l.strip()]
    prose = "\n".join(read(d) for d in COUNTER_DOCS)
    bad = []
    for counter in schema:
        if counter in prose:
            continue
        # Family wildcard: any documented `prefix.*` covers the counter.
        parts = counter.split(".")
        covered = any(".".join(parts[:i]) + ".*" in prose
                      for i in range(1, len(parts)))
        if not covered:
            bad.append(f"{SCHEMA}: counter '{counter}' is not mentioned "
                       f"in {' or '.join(COUNTER_DOCS)}")
    return bad


def main():
    problems = check_links() + check_counters()
    for p in problems:
        print(p)
    if problems:
        print(f"{len(problems)} documentation problem(s)")
        return 1
    print("docs OK: links resolve, every pinned counter is documented")
    return 0


if __name__ == "__main__":
    sys.exit(main())
