#!/usr/bin/env python3
"""Validate matcoald's `metrics` op output (the CI storm gate).

Reads Prometheus text exposition from a file argument or stdin. Two
input shapes are accepted, so the script works on a raw scrape or
straight off the daemon's NDJSON stdout:

  * raw exposition text, or
  * an NDJSON stream containing a `{"kind":"metrics","metrics":"..."}`
    reply line (the first one found is validated).

Checks, all hard failures:

  1. Grammar: every non-comment line is `name value` or
     `name{labels} value` with a float value, and every sample's family
     was declared by a preceding `# TYPE` line.
  2. The gauges `matcoal_queue_depth` and `matcoal_inflight_requests`
     exist, and `matcoal_counter` / `matcoal_flight_events_total` are
     declared counters.
  3. The four request-latency families
     `matcoal_svc_{e2e,queue,compile,run}_us` are present, typed
     histogram, and non-empty (`_count` > 0).
  4. Per histogram family: finite `le` edges strictly increase, bucket
     counts are cumulative (non-decreasing), the `+Inf` bucket exists
     and equals `_count`, `_sum` >= 0, and the three quantile lines
     (0.5 / 0.95 / 0.99) exist with p50 <= p95 <= p99.

Exit 0 when clean; prints one line per violation and exits 1 otherwise.
"""

import json
import re
import sys

REQUIRED_HISTOGRAMS = [
    "matcoal_svc_e2e_us",
    "matcoal_svc_queue_us",
    "matcoal_svc_compile_us",
    "matcoal_svc_run_us",
]

TYPE_RE = re.compile(r"^# TYPE (\S+) (counter|gauge|histogram|summary|untyped)$")
SAMPLE_RE = re.compile(r"^([A-Za-z_:][A-Za-z0-9_:]*)(\{[^}]*\})? (\S+)$")
LE_RE = re.compile(r'le="([^"]+)"')
QUANTILE_RE = re.compile(r'quantile="([^"]+)"')


def extract_exposition(text):
    """Raw exposition passes through; NDJSON yields the metrics reply."""
    if text.lstrip().startswith("{"):
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                doc = json.loads(line)
            except json.JSONDecodeError:
                continue
            if isinstance(doc, dict) and doc.get("kind") == "metrics":
                metrics = doc.get("metrics")
                if not isinstance(metrics, str):
                    return None, "metrics reply has no string 'metrics' field"
                return metrics, None
        return None, "no {\"kind\":\"metrics\"} reply found in NDJSON input"
    return text, None


def family_of(name):
    """Base family for histogram series suffixes."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def check(text):
    problems = []
    types = {}          # family -> declared type
    samples = []        # (name, labels-or-'', value, line number)
    for n, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            m = TYPE_RE.match(line)
            if line.startswith("# TYPE") and not m:
                problems.append(f"line {n}: malformed TYPE line: {line!r}")
            elif m:
                if m.group(1) in types:
                    problems.append(f"line {n}: duplicate TYPE for {m.group(1)}")
                types[m.group(1)] = m.group(2)
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            problems.append(f"line {n}: unparseable sample line: {line!r}")
            continue
        name, labels, value = m.group(1), m.group(2) or "", m.group(3)
        try:
            fvalue = float(value)
        except ValueError:
            problems.append(f"line {n}: non-numeric value in: {line!r}")
            continue
        fam = name if name in types else family_of(name)
        if fam not in types:
            problems.append(f"line {n}: sample {name} has no # TYPE declaration")
            continue
        samples.append((name, labels, fvalue, n))

    for gauge in ("matcoal_queue_depth", "matcoal_inflight_requests"):
        if types.get(gauge) != "gauge":
            problems.append(f"{gauge}: missing or not declared as a gauge")
        elif not any(s[0] == gauge for s in samples):
            problems.append(f"{gauge}: declared but never sampled")
    for counter in ("matcoal_counter", "matcoal_flight_events_total"):
        if types.get(counter) != "counter":
            problems.append(f"{counter}: missing or not declared as a counter")

    histograms = [f for f, t in types.items() if t == "histogram"]
    for fam in REQUIRED_HISTOGRAMS:
        if fam not in histograms:
            problems.append(f"{fam}: required histogram family is missing")

    for fam in histograms:
        buckets = []    # (le-text, cumulative count)
        count = sum_v = inf_v = None
        quantiles = {}
        for name, labels, value, n in samples:
            if name == fam + "_bucket":
                le = LE_RE.search(labels)
                if not le:
                    problems.append(f"line {n}: {fam}_bucket without an le label")
                    continue
                if le.group(1) == "+Inf":
                    inf_v = value
                else:
                    buckets.append((le.group(1), value, n))
            elif name == fam + "_count":
                count = value
            elif name == fam + "_sum":
                sum_v = value
            elif name == fam:
                q = QUANTILE_RE.search(labels)
                if q:
                    quantiles[q.group(1)] = value
        prev_le, prev_cum = None, None
        for le, cum, n in buckets:
            fle = float(le)
            if prev_le is not None and fle <= prev_le:
                problems.append(f"line {n}: {fam} le edges not increasing")
            if prev_cum is not None and cum < prev_cum:
                problems.append(f"line {n}: {fam} buckets not cumulative")
            prev_le, prev_cum = fle, cum
        if inf_v is None:
            problems.append(f"{fam}: no +Inf bucket")
        if count is None:
            problems.append(f"{fam}: no _count series")
        if sum_v is None:
            problems.append(f"{fam}: no _sum series")
        elif sum_v < 0:
            problems.append(f"{fam}: negative _sum ({sum_v})")
        if inf_v is not None and count is not None and inf_v != count:
            problems.append(f"{fam}: +Inf bucket {inf_v} != _count {count}")
        if prev_cum is not None and inf_v is not None and inf_v < prev_cum:
            problems.append(f"{fam}: +Inf bucket below the last finite bucket")
        missing_q = [q for q in ("0.5", "0.95", "0.99") if q not in quantiles]
        if missing_q:
            problems.append(f"{fam}: missing quantile lines: {missing_q}")
        else:
            p50, p95, p99 = (quantiles[q] for q in ("0.5", "0.95", "0.99"))
            if not (0 <= p50 <= p95 <= p99):
                problems.append(
                    f"{fam}: quantiles not ordered: "
                    f"p50={p50} p95={p95} p99={p99}")
        if fam in REQUIRED_HISTOGRAMS and count is not None and count <= 0:
            problems.append(f"{fam}: required family has no samples")

    return problems


def main():
    if len(sys.argv) > 2:
        print(f"usage: {sys.argv[0]} [metrics-file]", file=sys.stderr)
        return 2
    raw = (open(sys.argv[1], encoding="utf-8").read()
           if len(sys.argv) == 2 else sys.stdin.read())
    text, err = extract_exposition(raw)
    if err:
        print(err)
        return 1
    problems = check(text)
    for p in problems:
        print(p)
    if problems:
        print(f"{len(problems)} metrics problem(s)")
        return 1
    print("metrics OK: grammar valid, required families present, "
          "buckets cumulative, quantiles ordered")
    return 0


if __name__ == "__main__":
    sys.exit(main())
