//===- Lint.cpp -----------------------------------------------------------===//

#include "lint/Lint.h"

#include "analysis/Dominators.h"
#include "observe/Observe.h"
#include "transforms/Passes.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <sstream>

using namespace matcoal;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Blocks belonging to some natural loop: for every back edge P -> H
/// (H dominates P), the loop body is H plus everything that reaches P
/// without passing through H.
std::vector<bool> blocksInLoops(const Function &F, const DominatorTree &DT) {
  std::vector<bool> InLoop(F.Blocks.size(), false);
  for (const auto &BB : F.Blocks) {
    for (BlockId S : BB->successors()) {
      if (S == NoBlock || !DT.dominates(S, BB->Id))
        continue;
      // Back edge BB -> S. Walk predecessors from BB, stopping at S.
      std::vector<BlockId> Work{BB->Id};
      std::set<BlockId> Body{S, BB->Id};
      while (!Work.empty()) {
        BlockId Cur = Work.back();
        Work.pop_back();
        for (BlockId P : F.block(Cur)->Preds)
          if (Body.insert(P).second)
            Work.push_back(P);
      }
      for (BlockId B : Body)
        InLoop[B] = true;
    }
  }
  return InLoop;
}

/// The defining instruction of each SSA value.
std::vector<const Instr *> defMap(const Function &F) {
  std::vector<const Instr *> Def(F.numVars(), nullptr);
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      for (VarId R : I.Results)
        if (R >= 0 && static_cast<size_t>(R) < Def.size())
          Def[R] = &I;
  return Def;
}

/// Number of reads of each SSA value (phi and terminator operands count).
std::vector<unsigned> useCounts(const Function &F) {
  std::vector<unsigned> Uses(F.numVars(), 0);
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      for (VarId U : I.Operands)
        if (U >= 0 && static_cast<size_t>(U) < Uses.size())
          ++Uses[U];
  return Uses;
}

class Linter {
public:
  Linter(const Module &M, const TypeInference &TI, const RangeAnalysis *RA)
      : M(M), TI(TI), RA(RA) {}

  std::vector<LintDiag> run() {
    for (const auto &F : M.Functions) {
      if (F->Blocks.empty() || !TI.hasTypesFor(*F))
        continue;
      lintFunction(*F);
    }
    return std::move(Diags);
  }

private:
  void report(LintCheck C, const Function &F, const std::string &Var,
              SourceLoc Loc, const std::string &Msg) {
    Diags.push_back(LintDiag{C, F.Name, Var, Loc, Msg});
  }

  /// Source-level name of an SSA value ("a" for "a.3"); empty for temps.
  static std::string sourceName(const Function &F, VarId V) {
    const VarInfo &Info = F.var(V);
    return Info.IsTemp ? std::string() : Info.Base;
  }

  void lintFunction(const Function &F) {
    DominatorTree DT(F);
    std::vector<bool> InLoop = blocksInLoops(F, DT);
    std::vector<const Instr *> Def = defMap(F);
    std::vector<unsigned> Uses = useCounts(F);

    checkGrowthInLoop(F, DT, InLoop, Def);
    checkOutOfBounds(F);
    checkDeadStores(F, Def, Uses);
    checkMaybeUndefined(F, Def);
    checkShapeMismatch(F);
  }

  //===--------------------------------------------------------------===//
  // growth-in-loop
  //===--------------------------------------------------------------===//
  //
  // A subsasgn inside a natural loop whose subscript provably exceeds
  // the array's pre-loop extent: the classic "preallocate me" pattern.
  // The subscript's upper bound must be finite (a statically bounded
  // growth is exactly the case a zeros() preallocation fixes), and the
  // write must not be provably in bounds.
  void checkGrowthInLoop(const Function &F, const DominatorTree &DT,
                         const std::vector<bool> &InLoop,
                         const std::vector<const Instr *> &Def) {
    const std::vector<VarType> &Types = TI.functionTypes(F);
    for (const auto &BB : F.Blocks) {
      if (static_cast<size_t>(BB->Id) >= InLoop.size() || !InLoop[BB->Id])
        continue;
      for (const Instr &I : BB->Instrs) {
        if (I.Op != Opcode::Subsasgn || I.Operands.size() < 3 ||
            I.Results.empty())
          continue;
        VarId Base = I.Operands[0], Res = I.Results[0];
        // The inferred shapes agreeing (same interned extents) means the
        // write provably never grows the base.
        if (Types[Res].Extents == Types[Base].Extents &&
            !Types[Res].Extents.empty())
          continue;
        if (!RA)
          continue;
        unsigned Rank = static_cast<unsigned>(I.Operands.size()) - 2;
        // Every subscript provably in bounds -> no growth.
        bool AllIn = true;
        double IdxHi = -Inf;
        for (unsigned K = 0; K < Rank && AllIn; ++K) {
          VarId Sub = I.Operands[K + 2];
          if (Types[Sub].IT == IntrinsicType::Colon)
            continue;
          Interval Idx = RA->valueAt(F, BB->Id, Sub);
          IdxHi = std::max(IdxHi, Idx.Hi);
          if (!RA->subscriptInBounds(F, BB->Id, Base, Sub, K, Rank))
            AllIn = false;
        }
        if (AllIn)
          continue;
        // Only a finite growth bound is actionable (and an unbounded one
        // would flag adaptive-accumulation loops we cannot prove grow).
        if (!(IdxHi < Inf))
          continue;
        // Find the value entering the loop: walk the base up through the
        // subsasgn/phi chain to the phi operand defined outside the loop.
        Interval EntryNumel = entryExtent(F, Def, InLoop, Base);
        if (!(EntryNumel.Hi < Inf) || IdxHi <= EntryNumel.Hi)
          continue;
        std::string Name = sourceName(F, Res);
        std::ostringstream OS;
        OS << "array '" << (Name.empty() ? std::string("<tmp>") : Name)
           << "' grows inside a loop (written up to index "
           << static_cast<long long>(IdxHi) << ", entering with at most "
           << static_cast<long long>(std::max(0.0, EntryNumel.Hi))
           << " elements); preallocate before the loop";
        report(LintCheck::GrowthInLoop, F, Name, I.Loc, OS.str());
      }
    }
  }

  /// Upper bound on numel of the value the grown array has on loop
  /// entry: follow base -> phi -> the operand whose definition lies
  /// outside any loop.
  Interval entryExtent(const Function &F,
                       const std::vector<const Instr *> &Def,
                       const std::vector<bool> &InLoop, VarId Base) {
    VarId Cur = Base;
    for (int Hops = 0; Hops < 8; ++Hops) {
      const Instr *D = static_cast<size_t>(Cur) < Def.size() ? Def[Cur]
                                                             : nullptr;
      if (!D)
        break;
      if (D->Op == Opcode::Copy) {
        Cur = D->Operands[0];
        continue;
      }
      if (D->Op != Opcode::Phi)
        break;
      // Take the join over operands defined outside loops.
      Interval Out = Interval::bottom();
      for (VarId Op : D->Operands) {
        const Instr *OD =
            static_cast<size_t>(Op) < Def.size() ? Def[Op] : nullptr;
        BlockId ODB = NoBlock;
        if (OD)
          for (const auto &BB : F.Blocks)
            for (const Instr &I : BB->Instrs)
              if (&I == OD)
                ODB = BB->Id;
        bool OutsideLoop =
            ODB == NoBlock ||
            (static_cast<size_t>(ODB) < InLoop.size() && !InLoop[ODB]);
        if (OutsideLoop && RA)
          Out = Out.join(RA->numelBound(F, Op));
      }
      return Out.isBottom() ? Interval::top() : Out;
    }
    return Interval::top();
  }

  //===--------------------------------------------------------------===//
  // out-of-bounds
  //===--------------------------------------------------------------===//
  //
  // Reads whose subscript interval lies entirely outside the base's
  // extent bounds on every execution. Both conditions compare a must
  // bound of the subscript against a may bound of the extent, so a
  // report is a proof. Writes only fault for subscripts < 1 (larger
  // ones grow the array).
  void checkOutOfBounds(const Function &F) {
    if (!RA)
      return;
    const std::vector<VarType> &Types = TI.functionTypes(F);
    for (const auto &BB : F.Blocks) {
      for (const Instr &I : BB->Instrs) {
        if (I.Op != Opcode::Subsref && I.Op != Opcode::Subsasgn)
          continue;
        bool IsRef = I.Op == Opcode::Subsref;
        unsigned First = IsRef ? 1 : 2;
        if (I.Operands.size() <= First)
          continue;
        VarId Base = I.Operands[0];
        unsigned Rank = static_cast<unsigned>(I.Operands.size()) - First;
        for (unsigned K = 0; K < Rank; ++K) {
          VarId Sub = I.Operands[First + K];
          if (Types[Sub].IT == IntrinsicType::Colon ||
              !Types[Sub].isScalar())
            continue;
          Interval Idx = RA->valueAt(F, BB->Id, Sub);
          if (Idx.isBottom())
            continue;
          std::string Name = sourceName(F, Base);
          std::string Shown = Name.empty() ? std::string("<tmp>") : Name;
          if (Idx.Hi < 1) {
            std::ostringstream OS;
            OS << "subscript of '" << Shown << "' is always "
               << Idx.str() << ", below the minimum index 1";
            report(LintCheck::OutOfBounds, F, Name, I.Loc, OS.str());
            continue;
          }
          if (!IsRef)
            continue; // Writing past the end grows the array legally.
          Interval Extent = Rank == 1 ? RA->numelBound(F, Base)
                                      : extentOf(F, Base, K);
          if (!Extent.isBottom() && Extent.Hi < Inf &&
              Idx.Lo > Extent.Hi) {
            std::ostringstream OS;
            OS << "subscript of '" << Shown << "' is always >= "
               << Idx.Lo << " but the array never has more than "
               << static_cast<long long>(Extent.Hi)
               << (Rank == 1 ? " elements" : " along this dimension");
            report(LintCheck::OutOfBounds, F, Name, I.Loc, OS.str());
          }
        }
      }
    }
  }

  Interval extentOf(const Function &F, VarId Base, unsigned Dim) {
    const VarRange &R = RA->rangeOf(F, Base);
    if (Dim < R.Dims.size())
      return R.Dims[Dim];
    return Interval::top();
  }

  //===--------------------------------------------------------------===//
  // dead-store
  //===--------------------------------------------------------------===//
  //
  // A named SSA version that is never read. Pure dead definitions were
  // removed by cleanup, so survivors are (a) impure definitions whose
  // value is discarded, or (b) values overwritten before any use --
  // both worth telling the user about.
  void checkDeadStores(const Function &F,
                       const std::vector<const Instr *> &Def,
                       const std::vector<unsigned> &Uses) {
    for (VarId V = 0; static_cast<size_t>(V) < F.numVars(); ++V) {
      const VarInfo &Info = F.var(V);
      if (Info.IsTemp || Info.IsOutput || Info.IsParam)
        continue;
      if (static_cast<size_t>(V) >= Uses.size() || Uses[V] != 0)
        continue;
      const Instr *D =
          static_cast<size_t>(V) < Def.size() ? Def[V] : nullptr;
      if (!D || D->StrVal == "__undef_init")
        continue;
      if (D->Op == Opcode::Phi)
        continue; // Dead phis are SSA plumbing, not a user store.
      // Is there a later version of the same source variable?
      bool Superseded = false;
      for (VarId W = 0; static_cast<size_t>(W) < F.numVars(); ++W)
        if (W != V && F.var(W).Base == Info.Base &&
            F.var(W).Version > Info.Version) {
          Superseded = true;
          break;
        }
      std::ostringstream OS;
      OS << "value assigned to '" << Info.Base << "' is never used";
      if (Superseded)
        OS << " (overwritten before any read)";
      report(LintCheck::DeadStore, F, Info.Base, D->Loc, OS.str());
    }
  }

  //===--------------------------------------------------------------===//
  // maybe-undefined
  //===--------------------------------------------------------------===//
  //
  // The SSA builder initializes variables that some CFG path reads
  // before assignment with a tagged empty array. A read of a value the
  // tagged initializer can reach (through phis and copies) is a
  // possible use-before-def -- except as a subsasgn base, where growing
  // from empty is the idiomatic accumulation pattern.
  void checkMaybeUndefined(const Function &F,
                           const std::vector<const Instr *> &Def) {
    std::vector<bool> Tainted(F.numVars(), false);
    bool Any = false;
    for (const auto &BB : F.Blocks)
      for (const Instr &I : BB->Instrs)
        if (I.Op == Opcode::VertCat && I.Operands.empty() &&
            I.StrVal == "__undef_init" && !I.Results.empty()) {
          Tainted[I.Results[0]] = true;
          Any = true;
        }
    if (!Any)
      return;
    // Propagate through phis and copies to a fixpoint.
    bool Changed = true;
    while (Changed) {
      Changed = false;
      for (const auto &BB : F.Blocks)
        for (const Instr &I : BB->Instrs) {
          if ((I.Op != Opcode::Phi && I.Op != Opcode::Copy) ||
              I.Results.empty() || Tainted[I.Results[0]])
            continue;
          for (VarId U : I.Operands)
            if (U >= 0 && Tainted[U]) {
              Tainted[I.Results[0]] = true;
              Changed = true;
              break;
            }
        }
    }
    std::set<std::string> Reported;
    for (const auto &BB : F.Blocks)
      for (const Instr &I : BB->Instrs) {
        if (I.Op == Opcode::Phi || I.Op == Opcode::Copy)
          continue;
        for (size_t K = 0; K < I.Operands.size(); ++K) {
          VarId U = I.Operands[K];
          if (U < 0 || !Tainted[U])
            continue;
          if (I.Op == Opcode::Subsasgn && K == 0)
            continue; // Growth from empty is fine.
          std::string Name = F.var(U).Base;
          if (!Reported.insert(Name).second)
            continue;
          report(LintCheck::MaybeUndefined, F, Name, I.Loc,
                 "variable '" + Name +
                     "' may be used before it is assigned on some path");
        }
      }
  }

  //===--------------------------------------------------------------===//
  // shape-mismatch
  //===--------------------------------------------------------------===//
  //
  // Operands whose inferred shapes are constants that can never agree:
  // elementwise ops need equal (or scalar) shapes; matrix multiply
  // needs inner extents to match.
  void checkShapeMismatch(const Function &F) {
    const std::vector<VarType> &Types = TI.functionTypes(F);
    auto ConstShape = [&](VarId V) {
      return Types[V].hasKnownShape() && !Types[V].isScalar();
    };
    for (const auto &BB : F.Blocks) {
      for (const Instr &I : BB->Instrs) {
        bool Elementwise = false;
        switch (I.Op) {
        case Opcode::Add:
        case Opcode::Sub:
        case Opcode::ElemMul:
        case Opcode::ElemRDiv:
        case Opcode::ElemLDiv:
        case Opcode::ElemPow:
        case Opcode::Lt:
        case Opcode::Le:
        case Opcode::Gt:
        case Opcode::Ge:
        case Opcode::Eq:
        case Opcode::Ne:
        case Opcode::And:
        case Opcode::Or:
          Elementwise = true;
          break;
        case Opcode::MatMul:
          break;
        default:
          continue;
        }
        if (I.Operands.size() != 2)
          continue;
        VarId A = I.Operands[0], B = I.Operands[1];
        if (!ConstShape(A) || !ConstShape(B))
          continue;
        const auto &EA = Types[A].Extents, &EB = Types[B].Extents;
        if (Elementwise) {
          if (EA != EB) {
            report(LintCheck::ShapeMismatch, F, sourceName(F, A), I.Loc,
                   std::string("elementwise '") + opcodeName(I.Op) +
                       "' on incompatible shapes " + Types[A].str() +
                       " and " + Types[B].str());
          }
        } else { // MatMul: inner extents must agree.
          if (EA.size() == 2 && EB.size() == 2 && EA[1] != EB[0]) {
            report(LintCheck::ShapeMismatch, F, sourceName(F, A), I.Loc,
                   "matrix multiply with inner dimensions " +
                       Types[A].str() + " * " + Types[B].str());
          }
        }
      }
    }
  }

  const Module &M;
  const TypeInference &TI;
  const RangeAnalysis *RA;
  std::vector<LintDiag> Diags;
};

} // namespace

const std::vector<LintCheckInfo> &matcoal::lintRegistry() {
  static const std::vector<LintCheckInfo> Registry = {
      {LintCheck::GrowthInLoop, "growth-in-loop",
       "array grown by subsasgn inside a loop; preallocate instead"},
      {LintCheck::OutOfBounds, "out-of-bounds",
       "subscript provably outside the array on every execution"},
      {LintCheck::DeadStore, "dead-store",
       "assigned value is never read"},
      {LintCheck::MaybeUndefined, "maybe-undefined",
       "variable may be read before assignment on some CFG path"},
      {LintCheck::ShapeMismatch, "shape-mismatch",
       "operand shapes are statically inconsistent at this op"},
      {LintCheck::PlanOverlap, "matvet-plan-overlap",
       "two simultaneously-live values share one coalesced storage slot"},
      {LintCheck::UnsafeInPlace, "matvet-unsafe-inplace",
       "destructive rewrite whose source is still live or not formable"},
      {LintCheck::MultiUseElide, "matvet-multi-use-elide",
       "fusion elided an intermediate that is not single-def/single-use"},
  };
  return Registry;
}

const char *matcoal::lintCheckId(LintCheck C) {
  for (const LintCheckInfo &Info : lintRegistry())
    if (Info.Check == C)
      return Info.Id;
  return "unknown";
}

const char *matcoal::lintSeverity(LintCheck C) {
  switch (C) {
  case LintCheck::PlanOverlap:
  case LintCheck::UnsafeInPlace:
  case LintCheck::MultiUseElide:
    return "error";
  default:
    return "warning";
  }
}

std::string LintDiag::str() const {
  std::ostringstream OS;
  if (Loc.isValid())
    OS << Loc.Line << ":" << Loc.Col << ": ";
  OS << lintCheckId(Check) << ": " << Msg << " [" << Func << "]";
  return OS.str();
}

std::vector<LintDiag> matcoal::runLint(const Module &M,
                                       const TypeInference &TI,
                                       const RangeAnalysis *RA) {
  return Linter(M, TI, RA).run();
}

std::string matcoal::lintDiagsJson(const std::vector<LintDiag> &Diags,
                                   const std::string &File) {
  std::ostringstream OS;
  OS << "[";
  bool First = true;
  for (const LintDiag &D : Diags) {
    OS << (First ? "\n" : ",\n") << "  {\"file\": \"" << jsonEscape(File)
       << "\", \"line\": " << D.Loc.Line << ", \"col\": " << D.Loc.Col
       << ", \"rule\": \"" << lintCheckId(D.Check) << "\", \"severity\": \""
       << lintSeverity(D.Check) << "\", \"func\": \"" << jsonEscape(D.Func)
       << "\", \"msg\": \"" << jsonEscape(D.Msg) << "\"}";
    First = false;
  }
  OS << (First ? "]" : "\n]");
  return OS.str();
}
