//===- Lint.h - "matlint": IR-level static diagnostics ----------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small static analyzer over the SSA IR. Every check consumes the same
/// proven facts (types from TypeInference, intervals/shapes from
/// RangeAnalysis) that the GCTD planner and code generator act on, so a
/// clean lint run is evidence the optimizer's premises hold, and each
/// diagnostic names a concrete habit the storage optimizer pays for --
/// most prominently the array-growth-in-loop pattern of the preallocation
/// literature.
///
/// Checks run on the module while it is still in SSA form (after cleanup,
/// before SSA inversion).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_LINT_LINT_H
#define MATCOAL_LINT_LINT_H

#include "analysis/RangeAnalysis.h"
#include "ir/IR.h"
#include "support/Diagnostics.h"
#include "typeinf/TypeInference.h"

#include <string>
#include <vector>

namespace matcoal {

/// Identity of a lint check. Stable ids: golden tests and suppression
/// lists key on the short name in lintCheckInfo().
enum class LintCheck {
  GrowthInLoop,   ///< Array grown by subsasgn inside a loop (preallocate!).
  OutOfBounds,    ///< Subscript provably outside the array on every path.
  DeadStore,      ///< Assigned value never read (survived DCE).
  MaybeUndefined, ///< Read of a variable undefined along some CFG path.
  ShapeMismatch,  ///< Operand shapes statically inconsistent at an op.
  // The "matvet" group: violations reported by the static storage-plan
  // auditor (verify/PlanAudit) rather than the SSA linter. They indicate
  // an optimizer bug (or an injected plan-corrupt fault), never a source
  // problem, and always come with the program degraded to identity plans.
  PlanOverlap,    ///< Two simultaneously-live values share a coalesced slot.
  UnsafeInPlace,  ///< Destructive rewrite whose source is live or unformable.
  MultiUseElide,  ///< Fusion elided an intermediate that is not single-use.
};

struct LintCheckInfo {
  LintCheck Check;
  const char *Id;    ///< Short stable name, e.g. "growth-in-loop".
  const char *Descr; ///< One-line description for --help output.
};

/// The registry of all checks, in a stable order.
const std::vector<LintCheckInfo> &lintRegistry();

/// Id string for one check.
const char *lintCheckId(LintCheck C);

/// Severity class of a check: the matvet plan-audit rules are "error"
/// (they mean the optimizer, not the source, is wrong); every source-
/// level check is "warning".
const char *lintSeverity(LintCheck C);

/// One diagnostic instance.
struct LintDiag {
  LintCheck Check = LintCheck::GrowthInLoop;
  std::string Func;  ///< Containing function name.
  std::string Var;   ///< Source-level variable involved (may be empty).
  SourceLoc Loc;     ///< Best-effort source location.
  std::string Msg;   ///< Human-readable explanation.

  /// Renders "file-style" one-liner: "<line>:<col>: <id>: <msg> [func]".
  std::string str() const;
};

/// Runs every registered check over the module. \p RA may be null (e.g.
/// --no-ranges); range-dependent checks then degrade to the type-only
/// facts and report strictly less.
std::vector<LintDiag> runLint(const Module &M, const TypeInference &TI,
                              const RangeAnalysis *RA);

/// Machine-readable rendering: a JSON array with one object per
/// diagnostic -- {"file","line","col","rule","severity","func","msg"} --
/// shared by `matcoalc --lint-json` and the matcoald "lint" op so tooling
/// parses one envelope. \p File labels every record ("<stdin>" when the
/// source did not come from a path).
std::string lintDiagsJson(const std::vector<LintDiag> &Diags,
                          const std::string &File);

} // namespace matcoal

#endif // MATCOAL_LINT_LINT_H
