//===- Interference.cpp ---------------------------------------------------===//

#include "gctd/Interference.h"

#include "analysis/InPlaceLegality.h"
#include "analysis/Liveness.h"
#include "transforms/Passes.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace matcoal;

InterferenceGraph::InterferenceGraph(const Function &F,
                                     const TypeInference &TI, bool Coalesce,
                                     ColoringStrategy Strategy,
                                     const RangeAnalysis *RA, Observer *Obs)
    : F(F), RA(RA), Obs(Obs), Participates(F.numVars(), 0),
      Parent(F.numVars()), Adj(F.numVars()), Affinity(F.numVars()),
      ITOf(F.numVars(), IntrinsicType::None), NonScalarOf(F.numVars(), 0),
      Colors(F.numVars(), -1) {
  for (unsigned V = 0; V < F.numVars(); ++V)
    Parent[V] = static_cast<VarId>(V);
  // Seed every counter this phase owns so the stats key set does not
  // depend on which code paths the input happens to exercise.
  count(Obs, "gctd.participants", 0);
  count(Obs, "gctd.edges.total", 0);
  count(Obs, "gctd.edges.opsem", 0);
  count(Obs, "gctd.edges.discharged", 0);
  count(Obs, "gctd.phi_coalesced", 0);
  count(Obs, "gctd.colors", 0);
  markParticipants(TI);
  {
    PassTimer T = PassTimer(Obs, "gctd.interference");
    buildEdges(TI);
  }
  if (Coalesce) {
    PassTimer T = PassTimer(Obs, "gctd.coalesce");
    coalescePhis();
  }
  {
    PassTimer T = PassTimer(Obs, "gctd.color");
    if (Strategy == ColoringStrategy::Affinity)
      addAffinities();
    color(Strategy, TI);
  }
  if (Obs) {
    for (unsigned V = 0; V < F.numVars(); ++V)
      if (Participates[V])
        Obs->Stats.add("gctd.participants");
    Obs->Stats.add("gctd.edges.total", numEdges());
    Obs->Stats.add("gctd.colors", NumColors);
  }
}

void InterferenceGraph::remarkEdge(RemarkKind Kind, VarId Y, VarId X,
                                   const Instr &I, const char *Why) {
  if (!Obs)
    return;
  const char *What = Kind == RemarkKind::EdgeAdded ? " -- " : " -/- ";
  Obs->remark("interference", Kind, F.Name,
              "operator-semantics edge " + F.var(Y).Name + What +
                  F.var(X).Name + " (" +
                  (I.Op == Opcode::Builtin ? I.StrVal
                                           : std::string(opcodeName(I.Op))) +
                  "): " + Why,
              {{"result", F.var(Y).Name},
               {"operand", F.var(X).Name},
               {"op", opcodeName(I.Op)}},
              I.Loc);
}

void InterferenceGraph::addAffinities() {
  // A result that could be computed in place in an operand (no
  // interference survived phase 1) should prefer that operand's color;
  // otherwise the greedy minimal coloring can split in-place pairs across
  // classes and phase 2 never sees them together.
  for (const auto &BB : F.Blocks) {
    for (const Instr &I : BB->Instrs) {
      if (I.Results.size() != 1 || !Participates[I.result()])
        continue;
      VarId YV = I.result();
      VarId Y = findRoot(YV);
      for (VarId X : I.Operands) {
        if (!Participates[X])
          continue;
        VarId RX = findRoot(X);
        if (RX == Y || Adj[Y].count(RX))
          continue;
        int Priority = 0;
        if (ITOf[YV] == ITOf[X]) {
          Priority = 1;
          if (NonScalarOf[YV] && NonScalarOf[X])
            Priority = 2;
        }
        int &PY = Affinity[Y][RX];
        PY = std::max(PY, Priority);
        int &PX = Affinity[RX][Y];
        PX = std::max(PX, Priority);
      }
    }
  }
}

void InterferenceGraph::markParticipants(const TypeInference &TI) {
  const std::vector<VarType> &Types = TI.functionTypes(F);
  auto Mark = [&](VarId V) {
    if (V < 0 || static_cast<size_t>(V) >= Types.size())
      return;
    const VarType &T = Types[V];
    if (T.isBottom() || T.IT == IntrinsicType::Colon)
      return;
    Participates[V] = 1;
    ITOf[V] = T.IT;
    NonScalarOf[V] = !T.isScalar();
  };
  for (const auto &BB : F.Blocks) {
    for (const Instr &I : BB->Instrs) {
      for (VarId R : I.Results)
        Mark(R);
      // Record lexical definition order for the coloring heuristic.
      for (VarId R : I.Results)
        if (Participates[R])
          DefOrder.push_back(R);
    }
  }
  for (VarId P : F.Params) {
    Mark(P);
    if (Participates[P])
      DefOrder.insert(DefOrder.begin(), P);
  }
  // Dedup while preserving first occurrence.
  std::vector<char> Seen(F.numVars(), 0);
  std::vector<VarId> Unique;
  for (VarId V : DefOrder) {
    if (Seen[V])
      continue;
    Seen[V] = 1;
    Unique.push_back(V);
  }
  DefOrder = std::move(Unique);
}

VarId InterferenceGraph::findRoot(VarId V) const {
  while (Parent[V] != V) {
    Parent[V] = Parent[Parent[V]];
    V = Parent[V];
  }
  return V;
}

VarId InterferenceGraph::repOf(VarId V) const { return findRoot(V); }

void InterferenceGraph::addEdge(VarId U, VarId V) {
  U = findRoot(U);
  V = findRoot(V);
  if (U == V || !Participates[U] || !Participates[V])
    return;
  Adj[U].insert(V);
  Adj[V].insert(U);
}

bool InterferenceGraph::interferes(VarId U, VarId V) const {
  U = findRoot(U);
  V = findRoot(V);
  if (U == V)
    return false;
  return Adj[U].count(V) != 0;
}

void InterferenceGraph::buildEdges(const TypeInference &TI) {
  LivenessInfo Live = computeLiveness(F);
  AvailabilityInfo Avail = computeAvailability(F);

  for (const auto &BB : F.Blocks) {
    // First definition index of each variable within this block, for
    // statement-level availability.
    std::map<VarId, size_t> FirstDef;
    for (size_t I = 0; I < BB->Instrs.size(); ++I)
      for (VarId R : BB->Instrs[I].Results)
        if (!FirstDef.count(R))
          FirstDef[R] = I;

    auto AvailableAt = [&](VarId U, size_t Idx) {
      if (Avail.AvailIn[BB->Id].test(U))
        return true;
      auto It = FirstDef.find(U);
      return It != FirstDef.end() && It->second < Idx;
    };

    // Backward walk (paper section 2): the set holds variables live after
    // the current statement; a definition interferes with every member
    // that is also available; then kill the defs and gen the uses.
    BitVector Set = Live.LiveOut[BB->Id];
    for (size_t Idx = BB->Instrs.size(); Idx-- > 0;) {
      const Instr &I = BB->Instrs[Idx];
      for (VarId D : I.Results) {
        if (!Participates[D])
          continue;
        Set.forEach([&](unsigned U) {
          if (static_cast<VarId>(U) == D || !Participates[U])
            return;
          if (AvailableAt(static_cast<VarId>(U), Idx))
            addEdge(D, static_cast<VarId>(U));
        });
      }
      // Results defined in parallel (multi-output calls) interfere.
      for (size_t A = 0; A < I.Results.size(); ++A)
        for (size_t B = A + 1; B < I.Results.size(); ++B)
          addEdge(I.Results[A], I.Results[B]);
      addOperatorSemanticsEdges(I, TI);
      for (VarId D : I.Results)
        Set.reset(D);
      if (I.Op != Opcode::Phi) {
        for (VarId U : I.Operands)
          Set.set(U);
      }
    }
  }

  // Parameters are defined simultaneously on entry: pairwise interference
  // (their storage comes from the caller).
  for (size_t A = 0; A < F.Params.size(); ++A)
    for (size_t B = A + 1; B < F.Params.size(); ++B)
      addEdge(F.Params[A], F.Params[B]);

  // Phis at one join execute as a parallel copy on each incoming edge: the
  // result of one phi is defined while the operands of the others are
  // still in use (and may hold different values), so each result
  // interferes with every *other* phi's operand on the same edge. Without
  // this, SSA inversion's sequenced copies can clobber a shared slot (the
  // classic lost-copy/swap hazard).
  for (const auto &BB : F.Blocks) {
    std::vector<const Instr *> Phis;
    for (const Instr &I : BB->Instrs) {
      if (I.Op != Opcode::Phi)
        break;
      Phis.push_back(&I);
    }
    if (Phis.size() < 2)
      continue;
    for (size_t PI = 0; PI < BB->Preds.size(); ++PI) {
      for (const Instr *P : Phis)
        for (const Instr *Q : Phis) {
          if (P == Q || PI >= Q->Operands.size() ||
              PI >= P->Operands.size())
            continue;
          // When both phis read the same source on this edge, writing P's
          // result is either an identity copy (if coalesced with that
          // source) or lands in a disjoint slot: no hazard either way.
          if (P->Operands[PI] == Q->Operands[PI])
            continue;
          addEdge(P->result(), Q->Operands[PI]);
        }
    }
  }
}

void InterferenceGraph::addOperatorSemanticsEdges(const Instr &I,
                                                  const TypeInference &TI) {
  // Section 2.3: an edge Y -- Xi is inserted when computing Y in place in
  // Xi's storage could violate the operator's semantics. Inferred types
  // (is the operand provably scalar / a vector?) resolve the cases.
  if (I.Results.size() != 1)
    return;
  VarId Y = I.Results[0];
  if (!Participates[Y])
    return;
  const std::vector<VarType> &Types = TI.functionTypes(F);

  // The decision function, parameterized over whether range-proven facts
  // may discharge what the bare types cannot. The edge set computed WITH
  // the facts is what the graph gets; its delta against the types-only
  // set is exactly the discharged edges the observer reports. The
  // CEmitter consults the same RangeAnalysis, so every edge removed here
  // corresponds to an in-place-safe code path there.
  auto Collect = [&](bool UseRA, std::vector<std::pair<VarId, VarId>> &Out) {
    collectOpSemEdges(I, Types, UseRA, Out);
  };

  std::vector<std::pair<VarId, VarId>> Edges;
  Collect(RA != nullptr, Edges);
  for (const auto &[R, X] : Edges) {
    addEdge(R, X);
    if (Obs) {
      Obs->Stats.add("gctd.edges.opsem");
      remarkEdge(RemarkKind::EdgeAdded, R, X, I,
                 "result cannot be formed in place in this operand");
    }
  }
  if (Obs && RA) {
    std::vector<std::pair<VarId, VarId>> TypesOnly;
    Collect(false, TypesOnly);
    for (const auto &P : TypesOnly)
      if (std::find(Edges.begin(), Edges.end(), P) == Edges.end()) {
        Obs->Stats.add("gctd.edges.discharged");
        remarkEdge(RemarkKind::EdgeDischarged, P.first, P.second, I,
                   "range analysis proves in-place formation safe");
      }
  }
}

void InterferenceGraph::collectOpSemEdges(
    const Instr &I, const std::vector<VarType> &Types, bool UseRA,
    std::vector<std::pair<VarId, VarId>> &Out) const {
  VarId Y = I.Results[0];
  auto IsScalar = [&](VarId V) {
    return Types[V].isScalar() ||
           (UseRA && RA && RA->provablyScalar(F, V));
  };
  auto IsScalarOrVector = [&](VarId V) {
    const VarType &T = Types[V];
    if (T.isScalar())
      return true;
    if (T.Extents.size() == 2 &&
        ((T.Extents[0]->isConst() && T.Extents[0]->constValue() == 1) ||
         (T.Extents[1]->isConst() && T.Extents[1]->constValue() == 1)))
      return true;
    return UseRA && RA && RA->provablyScalarOrVector(F, V);
  };
  auto Edge = [&](VarId X) {
    if (Participates[X])
      Out.emplace_back(Y, X);
  };
  auto EdgeToNonScalars = [&](size_t From = 0) {
    for (size_t K = From; K < I.Operands.size(); ++K)
      if (!IsScalar(I.Operands[K]))
        Edge(I.Operands[K]);
  };

  switch (I.Op) {
  // Elementwise operations can always be formed in place (scalar operands
  // are hoisted by the code generator / VM kernels): no extra edges.
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::ElemMul:
  case Opcode::ElemRDiv:
  case Opcode::ElemLDiv:
  case Opcode::ElemPow:
  case Opcode::Lt:
  case Opcode::Le:
  case Opcode::Gt:
  case Opcode::Ge:
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::And:
  case Opcode::Or:
  case Opcode::Neg:
  case Opcode::UPlus:
  case Opcode::Not:
    return;

  // Matrix multiplication overwrites elements before they are fully used
  // unless one operand is a scalar (section 2.3's c = a*b example).
  case Opcode::MatMul:
  case Opcode::MatRDiv:
  case Opcode::MatLDiv:
  case Opcode::MatPow: {
    if (I.Operands.size() == 2 &&
        (IsScalar(I.Operands[0]) || IsScalar(I.Operands[1])))
      return;
    EdgeToNonScalars();
    return;
  }

  // A transpose permutes element positions: unsafe in place except for
  // scalars and vectors (a vector's linear layout is unchanged).
  case Opcode::Transpose:
  case Opcode::CTranspose:
    if (!IsScalarOrVector(I.Operands[0]))
      Edge(I.Operands[0]);
    return;

  // R-indexing (section 2.3.2): safe in place only when every subscript is
  // a scalar; an array subscript can permute arbitrarily.
  case Opcode::Subsref: {
    bool AllScalar = true;
    for (size_t K = 1; K < I.Operands.size(); ++K) {
      const VarType &T = Types[I.Operands[K]];
      AllScalar &= IsScalar(I.Operands[K]) && T.IT != IntrinsicType::Colon;
    }
    if (AllScalar)
      return;
    Edge(I.Operands[0]);
    EdgeToNonScalars(1);
    return;
  }

  // L-indexing (section 2.3.3.1): always formable in place in the base by
  // computing elements backwards -- no edge to operand 0. The rhs and any
  // array subscripts must not share storage with the result.
  case Opcode::Subsasgn:
    EdgeToNonScalars(1);
    return;

  // Concatenations interleave reads and writes: conservative.
  case Opcode::HorzCat:
  case Opcode::VertCat:
    EdgeToNonScalars();
    return;

  case Opcode::Colon2:
  case Opcode::Colon3:
  case Opcode::ConstNum:
  case Opcode::ConstStr:
  case Opcode::ConstColon:
  case Opcode::Copy:
  case Opcode::Phi:
    return;

  // Calls copy results back after the callee returns: safe.
  case Opcode::Call:
    return;

  case Opcode::Builtin:
    // The read-only builtin table lives in the shared legality oracle --
    // the one home for "may this builtin's result overlay an argument's
    // storage" that the emitter and the plan auditor consult too.
    if (InPlaceLegality::builtinReadsOnly(I.StrVal))
      return;
    EdgeToNonScalars();
    return;

  case Opcode::Display:
  case Opcode::Jmp:
  case Opcode::Br:
  case Opcode::Ret:
    return;
  }
}

bool InterferenceGraph::tryUnion(VarId U, VarId V) {
  U = findRoot(U);
  V = findRoot(V);
  if (U == V)
    return true;
  if (Adj[U].count(V))
    return false; // They interfere: cannot share storage.
  // Merge V into U.
  Parent[V] = U;
  for (VarId W : Adj[V]) {
    Adj[W].erase(V);
    Adj[W].insert(U);
    Adj[U].insert(W);
  }
  Adj[V].clear();
  for (auto &[W, P] : Affinity[V]) {
    Affinity[W].erase(V);
    if (W != U) {
      int &PW = Affinity[W][U];
      PW = std::max(PW, P);
      int &PU = Affinity[U][W];
      PU = std::max(PU, P);
    }
  }
  Affinity[V].clear();
  return true;
}

void InterferenceGraph::coalescePhis() {
  // Section 2.2.1: coalesce each phi result with its operands when they do
  // not interfere, so the copies reintroduced by SSA inversion become
  // identity assignments.
  for (const auto &BB : F.Blocks) {
    for (const Instr &I : BB->Instrs) {
      if (I.Op != Opcode::Phi)
        break;
      if (!Participates[I.result()])
        continue;
      for (VarId Op : I.Operands) {
        if (!Participates[Op])
          continue;
        bool Distinct = findRoot(I.result()) != findRoot(Op);
        if (tryUnion(I.result(), Op) && Distinct && Obs) {
          Obs->Stats.add("gctd.phi_coalesced");
          Obs->remark("interference", RemarkKind::PhiCoalesced, F.Name,
                      "phi web coalesced: " + F.var(Op).Name +
                          " joins " + F.var(I.result()).Name +
                          " (SSA-inversion copy becomes identity)",
                      {{"result", F.var(I.result()).Name},
                       {"operand", F.var(Op).Name}},
                      I.Loc);
        }
      }
    }
  }
}

void InterferenceGraph::color(ColoringStrategy Strategy,
                              const TypeInference &TI) {
  // Greedy, lexical definition order (section 2.4): the smallest color
  // consistent with already-colored neighbors. The SizeWeighted variant
  // visits big arrays first and packs same-size classes together.
  std::vector<VarId> Order = DefOrder;
  std::vector<std::int64_t> SizeOf;
  if (Strategy == ColoringStrategy::SizeWeighted) {
    const std::vector<VarType> &Types = TI.functionTypes(F);
    SizeOf.assign(F.numVars(), 0);
    for (VarId V : Order)
      SizeOf[V] = Types[V].hasKnownShape()
                      ? Types[V].knownNumElements() *
                            static_cast<std::int64_t>(
                                elemSizeBytes(Types[V].IT))
                      : -1; // Symbolic: after all known sizes.
    std::stable_sort(Order.begin(), Order.end(),
                     [&](VarId A, VarId B) { return SizeOf[A] > SizeOf[B]; });
  }
  // Track the largest member size per color for size-aware packing.
  std::vector<std::int64_t> ColorMax;
  NumColors = 0;
  for (VarId V : Order) {
    VarId R = findRoot(V);
    if (Colors[R] != -1)
      continue;
    std::set<int> Used;
    for (VarId W : Adj[R])
      if (Colors[W] != -1)
        Used.insert(Colors[W]);
    // Prefer the consistent color of the best in-place affine partner
    // (highest priority, then smallest color); fall back to the globally
    // smallest consistent color.
    int C = -1;
    int BestPriority = -1;
    for (auto &[W, P] : Affinity[R]) {
      if (Colors[W] == -1 || Used.count(Colors[W]))
        continue;
      if (P > BestPriority || (P == BestPriority && Colors[W] < C)) {
        BestPriority = P;
        C = Colors[W];
      }
    }
    if (C == -1 && Strategy == ColoringStrategy::SizeWeighted &&
        !SizeOf.empty() && SizeOf[V] >= 0) {
      // Pack this node with the class whose maximal member is largest but
      // still >= this node's size (subsumption without growing the class).
      std::int64_t BestMax = -1;
      for (int K = 0; K < static_cast<int>(NumColors); ++K) {
        if (Used.count(K) || ColorMax[K] < SizeOf[V])
          continue;
        if (ColorMax[K] > BestMax) {
          BestMax = ColorMax[K];
          C = K;
        }
      }
    }
    if (C == -1) {
      C = 0;
      while (Used.count(C))
        ++C;
    }
    Colors[R] = C;
    if (Obs)
      Obs->remark("interference", RemarkKind::ColorAssigned, F.Name,
                  "color " + std::to_string(C) + " assigned to " +
                      F.var(V).Name +
                      (R != V ? " (web of " + F.var(R).Name + ")" : ""),
                  {{"var", F.var(V).Name}, {"color", std::to_string(C)}});
    if (static_cast<unsigned>(C) >= NumColors) {
      NumColors = static_cast<unsigned>(C) + 1;
      ColorMax.resize(NumColors, 0);
    }
    if (!SizeOf.empty() && SizeOf[V] > ColorMax[C])
      ColorMax[C] = SizeOf[V];
  }
}

int InterferenceGraph::colorOf(VarId V) const {
  if (!Participates[V])
    return -1;
  return Colors[findRoot(V)];
}

std::vector<std::vector<VarId>> InterferenceGraph::colorClasses() const {
  std::vector<std::vector<VarId>> Classes(NumColors);
  for (unsigned V = 0; V < F.numVars(); ++V) {
    if (!Participates[V])
      continue;
    int C = colorOf(static_cast<VarId>(V));
    if (C >= 0)
      Classes[C].push_back(static_cast<VarId>(V));
  }
  return Classes;
}

unsigned InterferenceGraph::numEdges() const {
  unsigned N = 0;
  for (const auto &S : Adj)
    N += static_cast<unsigned>(S.size());
  return N / 2;
}
