//===- GCTD.h - Graph Coloring with Type-based Decomposition ----*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Umbrella header for the GCTD pass: phase 1 (Interference.h) and phase 2
/// (StoragePlan.h). runGCTD() in StoragePlan.h runs both.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_GCTD_GCTD_H
#define MATCOAL_GCTD_GCTD_H

#include "gctd/Interference.h"
#include "gctd/StoragePlan.h"

#endif // MATCOAL_GCTD_GCTD_H
