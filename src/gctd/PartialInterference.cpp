//===- PartialInterference.cpp --------------------------------------------===//

#include "gctd/PartialInterference.h"

#include "analysis/Liveness.h"

#include <algorithm>
#include <map>

using namespace matcoal;

namespace {

/// The largest constant linear element index read from \p U across all
/// uses at which \p V is available; returns -1 when some such use is not
/// a constant-scalar subsref (no overlap possible).
std::int64_t maxConstReadWithin(const Function &F, VarId U, VarId V,
                                const AvailabilityInfo &Avail,
                                const std::vector<VarType> &Types) {
  std::int64_t MaxIndex = 0; // 1-based; 0 = never read within the range.
  for (const auto &BB : F.Blocks) {
    // Track availability of V within the block.
    bool VAvail = Avail.AvailIn[BB->Id].test(V);
    for (const Instr &I : BB->Instrs) {
      bool UsesU =
          std::find(I.Operands.begin(), I.Operands.end(), U) !=
          I.Operands.end();
      if (UsesU && VAvail) {
        // The use must be a constant-scalar element read of U (as base).
        if (I.Op != Opcode::Subsref || I.Operands.empty() ||
            I.Operands[0] != U)
          return -1;
        std::int64_t Linear = 0, Stride = 1;
        const VarType &BaseT = Types[U];
        for (size_t K = 1; K < I.Operands.size(); ++K) {
          const VarType &ST = Types[I.Operands[K]];
          if (!ST.isScalar() || !ST.ValExpr || !ST.ValExpr->isConst())
            return -1;
          std::int64_t Idx = ST.ValExpr->constValue(); // 1-based.
          Linear += (Idx - 1) * Stride;
          size_t D = K - 1;
          std::int64_t Extent =
              D < BaseT.Extents.size() && BaseT.Extents[D]->isConst()
                  ? BaseT.Extents[D]->constValue()
                  : 1;
          Stride *= Extent;
        }
        MaxIndex = std::max(MaxIndex, Linear + 1);
      }
      for (VarId R : I.Results)
        if (R == V)
          VAvail = true;
    }
  }
  return MaxIndex;
}

} // namespace

PartialInterferenceReport
matcoal::analyzePartialInterference(const Function &F,
                                    const InterferenceGraph &IG,
                                    const TypeInference &TI) {
  PartialInterferenceReport Report;
  const std::vector<VarType> &Types = TI.functionTypes(F);
  AvailabilityInfo Avail = computeAvailability(F);

  for (unsigned U = 0; U < F.numVars(); ++U) {
    if (!IG.participates(U))
      continue;
    const VarType &TU = Types[U];
    if (!TU.hasKnownShape() || TU.isScalar())
      continue;
    std::int64_t BytesU =
        TU.knownNumElements() *
        static_cast<std::int64_t>(elemSizeBytes(TU.IT));
    for (unsigned V = 0; V < F.numVars(); ++V) {
      if (U == V || !IG.participates(V))
        continue;
      if (!IG.interferes(static_cast<VarId>(U), static_cast<VarId>(V)))
        continue; // Full sharing is already possible: not "partial".
      const VarType &TV = Types[V];
      if (!TV.hasKnownShape() || TV.isScalar() || TU.IT != TV.IT)
        continue;
      std::int64_t Needed = maxConstReadWithin(
          F, static_cast<VarId>(U), static_cast<VarId>(V), Avail, Types);
      if (Needed < 0 || Needed == 0)
        continue; // Not provably partial (or never read: dead-ish).
      std::int64_t NeededBytes =
          Needed * static_cast<std::int64_t>(elemSizeBytes(TU.IT));
      if (NeededBytes >= BytesU)
        continue;
      std::int64_t BytesV =
          TV.knownNumElements() *
          static_cast<std::int64_t>(elemSizeBytes(TV.IT));
      PartialInterferenceCandidate C;
      C.Reduced = static_cast<VarId>(U);
      C.Other = static_cast<VarId>(V);
      C.ReducedBytes = BytesU;
      C.NeededBytes = NeededBytes;
      C.SavableBytes = std::min(BytesU - NeededBytes, BytesV);
      Report.Candidates.push_back(C);
      Report.TotalSavableBytes += C.SavableBytes;
    }
  }
  return Report;
}
