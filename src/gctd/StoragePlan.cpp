//===- StoragePlan.cpp ----------------------------------------------------===//

#include "gctd/StoragePlan.h"

#include "analysis/Liveness.h"

#include <algorithm>
#include <cassert>
#include <map>
#include <sstream>

using namespace matcoal;

namespace {

/// Phase-2 helper bundling the per-function facts the partial order needs.
class Decomposer {
public:
  Decomposer(const Function &F, const InterferenceGraph &IG,
             const TypeInference &TI, const RangeAnalysis *RA,
             Observer *Obs)
      : F(F), IG(IG), TI(TI), RA(RA), Obs(Obs),
        Types(TI.functionTypes(F)),
        Ctx(const_cast<TypeInference &>(TI).context()),
        Avail(computeAvailability(F)), StaticSize(F.numVars(), -2),
        RangeJustified(F.numVars(), 0) {
    recordDefSites();
  }

  StoragePlan run();

private:
  struct DefSite {
    BlockId Block = NoBlock;
    int Index = -1; ///< Instruction index; -1 = function entry (params).
  };

  void recordDefSites();
  /// Emits the storage decision for one finished group: stack (with the
  /// fixed byte size and frame offset), heap (with the symbolic size
  /// expression that forced it), and a separate promotion remark when the
  /// stack binding was justified by range analysis rather than explicit
  /// shapes.
  void remarkGroup(int GroupId, const StorageGroup &G);
  /// Static storage size in bytes per section 3.2.1 (explicit shape, or a
  /// phi of statically estimable operands); -1 when inestimable.
  std::int64_t staticSizeBytes(VarId V);
  /// Whether some definition of \p U reaches the definition of \p V.
  bool availableAtDef(VarId U, VarId V) const;
  /// |s(u)| <= |s(v)| provably (same element type assumed).
  bool symbolicSizeLE(VarId U, VarId V) const;
  /// The partial order S(u) :<= S(v) (Relation 1), lifted to coalesced
  /// supernodes.
  bool orderLE(const std::vector<VarId> &U, const std::vector<VarId> &V,
               bool UStatic, bool VStatic);

  const Function &F;
  const InterferenceGraph &IG;
  const TypeInference &TI;
  const RangeAnalysis *RA;
  Observer *Obs;
  const std::vector<VarType> &Types;
  SymExprContext &Ctx;
  AvailabilityInfo Avail;
  std::vector<std::int64_t> StaticSize; ///< -2 unknown, -1 inestimable.
  /// Estimability came from the range analysis, not an explicit shape:
  /// the variable's group is a *promotion* worth remarking.
  std::vector<char> RangeJustified;
  std::vector<DefSite> DefSites;
  std::map<VarId, const Instr *> DefInstr;
};

void Decomposer::recordDefSites() {
  DefSites.assign(F.numVars(), DefSite{});
  for (const auto &BB : F.Blocks) {
    for (size_t I = 0; I < BB->Instrs.size(); ++I) {
      for (VarId R : BB->Instrs[I].Results) {
        if (DefSites[R].Block == NoBlock) {
          DefSites[R] = DefSite{BB->Id, static_cast<int>(I)};
          DefInstr[R] = &BB->Instrs[I];
        }
      }
    }
  }
  for (VarId P : F.Params)
    if (DefSites[P].Block == NoBlock)
      DefSites[P] = DefSite{0, -1};
}

void Decomposer::remarkGroup(int GroupId, const StorageGroup &G) {
  std::string Members;
  for (VarId V : G.Members) {
    if (!Members.empty())
      Members += " ";
    Members += F.var(V).Name;
  }
  std::string Group = "g" + std::to_string(GroupId);
  if (G.K == StorageGroup::Kind::Stack) {
    Obs->Stats.add("gctd.groups.stack");
    std::ostringstream OS;
    OS << "group " << Group << " bound to stack: " << G.StackBytes
       << " bytes at frame offset " << G.FrameOffset << " shared by {"
       << Members << "}";
    Obs->remark("storage-plan", RemarkKind::GroupStack, F.Name, OS.str(),
                {{"group", Group},
                 {"bytes", std::to_string(G.StackBytes)},
                 {"offset", std::to_string(G.FrameOffset)},
                 {"members", Members}});
    // A stack binding only some range-derived bound made possible is a
    // promotion: without the analysis these variables were heap-bound.
    std::string Promoted;
    for (VarId V : G.Members)
      if (RangeJustified[V]) {
        if (!Promoted.empty())
          Promoted += " ";
        Promoted += F.var(V).Name;
      }
    if (!Promoted.empty()) {
      Obs->Stats.add("gctd.groups.promoted");
      Obs->remark("storage-plan", RemarkKind::GroupPromoted, F.Name,
                  "group " + Group +
                      " promoted to stack: range analysis bounds {" +
                      Promoted + "} at " + std::to_string(G.StackBytes) +
                      " bytes worst case",
                  {{"group", Group},
                   {"bytes", std::to_string(G.StackBytes)},
                   {"vars", Promoted}});
    }
  } else {
    Obs->Stats.add("gctd.groups.heap");
    std::string Size = G.SizeExpr ? G.SizeExpr->str() : "unknown";
    Obs->remark("storage-plan", RemarkKind::GroupHeap, F.Name,
                "group " + Group + " bound to heap: size " + Size +
                    " bytes not statically estimable, shared by {" +
                    Members + "}",
                {{"group", Group}, {"size", Size}, {"members", Members}});
  }
}

std::int64_t Decomposer::staticSizeBytes(VarId V) {
  std::int64_t &Memo = StaticSize[V];
  if (Memo != -2)
    return Memo;
  Memo = -1; // Break recursion through phi cycles: treat as inestimable.
  const VarType &T = Types[V];
  if (T.isBottom() || T.IT == IntrinsicType::Colon)
    return Memo;
  if (T.hasKnownShape()) {
    Memo = T.knownNumElements() *
           static_cast<std::int64_t>(elemSizeBytes(T.IT));
    return Memo;
  }
  // Section 3.2.1, case 2: a phi of statically estimable operands has the
  // max of their sizes.
  auto It = DefInstr.find(V);
  if (It != DefInstr.end() && It->second->Op == Opcode::Phi) {
    std::int64_t MaxSize = 0;
    for (VarId Op : It->second->Operands) {
      std::int64_t S = staticSizeBytes(Op);
      if (S < 0)
        return Memo;
      // The partial order demands identical intrinsic types; a phi mixing
      // types cannot be statically laid out with a single element kind.
      if (Types[Op].IT != T.IT)
        return Memo;
      MaxSize = std::max(MaxSize, S);
    }
    Memo = MaxSize;
  }
  // Range-justified estimability: a finite worst-case size derived from
  // the interval analysis (with its promotion cap) is just as fixed a
  // layout as an explicit shape. The verifier re-derives this bound from
  // its own RangeAnalysis instance, so the promotion stays checkable.
  if (Memo < 0 && RA) {
    std::int64_t S = RA->staticSizeBytes(F, V);
    if (S >= 0) {
      Memo = S;
      RangeJustified[V] = 1;
    }
  }
  return Memo;
}

bool Decomposer::availableAtDef(VarId U, VarId V) const {
  const DefSite &DV = DefSites[V];
  if (DV.Block == NoBlock)
    return false;
  if (Avail.AvailIn[DV.Block].test(U))
    return true;
  // Defined earlier in the same block?
  const DefSite &DU = DefSites[U];
  return DU.Block == DV.Block && DU.Index < DV.Index;
}

bool Decomposer::symbolicSizeLE(VarId U, VarId V) const {
  const VarType &TU = Types[U];
  const VarType &TV = Types[V];
  if (TU.Extents.empty() || TV.Extents.empty())
    return false;
  SymExpr NU = Ctx.numElements(TU.Extents);
  SymExpr NV = Ctx.numElements(TV.Extents);
  if (SymExprContext::provablyEq(NU, NV) || Ctx.provablyLE(NU, NV))
    return true;
  // Extent-wise comparison covers the subsasgn growth pattern, where each
  // result extent is max(base extent, subscript bound).
  if (TU.Extents.size() == TV.Extents.size()) {
    bool All = true;
    for (size_t D = 0; D < TU.Extents.size(); ++D)
      All = All && Ctx.provablyLE(TU.Extents[D], TV.Extents[D]);
    if (All)
      return true;
  }
  return false;
}

bool Decomposer::orderLE(const std::vector<VarId> &U,
                         const std::vector<VarId> &V, bool UStatic,
                         bool VStatic) {
  // Relation 1's two criteria are disjoint: both statically estimable, or
  // neither.
  if (UStatic != VStatic)
    return false;
  // Identical intrinsic types across both supernodes (avoids casts and
  // alignment trouble in the C mapping, section 3.2).
  IntrinsicType IT = Types[U.front()].IT;
  for (VarId X : U)
    if (Types[X].IT != IT)
      return false;
  for (VarId X : V)
    if (Types[X].IT != IT)
      return false;

  if (UStatic) {
    std::int64_t MaxU = 0, MaxV = 0;
    for (VarId X : U)
      MaxU = std::max(MaxU, staticSizeBytes(X));
    for (VarId X : V)
      MaxV = std::max(MaxV, staticSizeBytes(X));
    return MaxU <= MaxV;
  }

  // Dynamic case: |s(u)| <= |s(v)| for every member pair (sound lifting to
  // supernodes), plus the control-flow clause: some U-def reaches some
  // V-def.
  for (VarId MU : U)
    for (VarId MV : V)
      if (!symbolicSizeLE(MU, MV))
        return false;
  for (VarId MU : U)
    for (VarId MV : V)
      if (availableAtDef(MU, MV))
        return true;
  return false;
}

/// Iterative Tarjan SCC over a small adjacency list.
class TarjanSCC {
public:
  explicit TarjanSCC(const std::vector<std::vector<int>> &Adj)
      : Adj(Adj), Index(Adj.size(), -1), Low(Adj.size(), 0),
        OnStack(Adj.size(), 0), Comp(Adj.size(), -1) {
    for (size_t N = 0; N < Adj.size(); ++N)
      if (Index[N] < 0)
        strongConnect(static_cast<int>(N));
  }

  int componentOf(int N) const { return Comp[N]; }
  int numComponents() const { return NumComps; }

private:
  void strongConnect(int N) {
    // Explicit stack to avoid deep recursion.
    struct Frame {
      int Node;
      size_t NextEdge;
    };
    std::vector<Frame> Call;
    Call.push_back({N, 0});
    while (!Call.empty()) {
      Frame &Fr = Call.back();
      int U = Fr.Node;
      if (Fr.NextEdge == 0) {
        Index[U] = Low[U] = Next++;
        Stack.push_back(U);
        OnStack[U] = 1;
      }
      bool Descended = false;
      while (Fr.NextEdge < Adj[U].size()) {
        int W = Adj[U][Fr.NextEdge++];
        if (Index[W] < 0) {
          Call.push_back({W, 0});
          Descended = true;
          break;
        }
        if (OnStack[W])
          Low[U] = std::min(Low[U], Index[W]);
      }
      if (Descended)
        continue;
      if (Low[U] == Index[U]) {
        int C = NumComps++;
        while (true) {
          int W = Stack.back();
          Stack.pop_back();
          OnStack[W] = 0;
          Comp[W] = C;
          if (W == U)
            break;
        }
      }
      Call.pop_back();
      if (!Call.empty()) {
        int P = Call.back().Node;
        Low[P] = std::min(Low[P], Low[U]);
      }
    }
  }

  const std::vector<std::vector<int>> &Adj;
  std::vector<int> Index, Low;
  std::vector<char> OnStack;
  std::vector<int> Comp;
  std::vector<int> Stack;
  int Next = 0;
  int NumComps = 0;
};

StoragePlan Decomposer::run() {
  StoragePlan Plan;
  Plan.GroupOf.assign(F.numVars(), -1);
  Plan.NumColors = IG.numColors();

  if (Obs) {
    // Seed the schema so the counter key set is input-independent.
    Obs->Stats.add("gctd.groups.stack", 0);
    Obs->Stats.add("gctd.groups.heap", 0);
    Obs->Stats.add("gctd.groups.promoted", 0);
    Obs->Stats.add("gctd.subsumed.static", 0);
    Obs->Stats.add("gctd.subsumed.dynamic", 0);
    Obs->Stats.add("gctd.static_reduction_bytes", 0);
    Obs->Stats.add("gctd.frame_bytes", 0);
  }

  // Collect supernodes (coalesced webs) per color class.
  std::vector<std::vector<VarId>> Classes = IG.colorClasses();
  for (auto &Class : Classes) {
    if (Class.empty())
      continue;
    // Group members by representative.
    std::map<VarId, std::vector<VarId>> Webs;
    for (VarId V : Class)
      Webs[IG.repOf(V)].push_back(V);
    std::vector<std::vector<VarId>> Nodes;
    for (auto &[Rep, Members] : Webs)
      Nodes.push_back(std::move(Members));

    Plan.OriginalVarCount += static_cast<unsigned>(Class.size());

    // Per-node static estimability: every member must be estimable.
    std::vector<char> NodeStatic(Nodes.size(), 1);
    for (size_t N = 0; N < Nodes.size(); ++N)
      for (VarId V : Nodes[N])
        if (staticSizeBytes(V) < 0)
          NodeStatic[N] = 0;

    // Build the order digraph with edges from BIGGER to SMALLER, so that
    // in-degree-0 components are the maximal elements (as in the paper's
    // Decompose-color-class).
    std::vector<std::vector<int>> Adj(Nodes.size());
    for (size_t A = 0; A < Nodes.size(); ++A)
      for (size_t B = 0; B < Nodes.size(); ++B) {
        if (A == B)
          continue;
        if (orderLE(Nodes[B], Nodes[A], NodeStatic[B], NodeStatic[A]))
          Adj[A].push_back(static_cast<int>(B)); // S(B) <= S(A): A -> B.
      }

    // Component graph and in-degrees.
    TarjanSCC SCC(Adj);
    int NC = SCC.numComponents();
    std::vector<std::vector<int>> CompAdj(NC);
    std::vector<int> InDeg(NC, 0);
    for (size_t A = 0; A < Nodes.size(); ++A)
      for (int B : Adj[A]) {
        int CA = SCC.componentOf(static_cast<int>(A));
        int CB = SCC.componentOf(B);
        if (CA == CB)
          continue;
        CompAdj[CA].push_back(CB);
        ++InDeg[CB];
      }

    // BFS from each in-degree-0 component; first-found wins for nodes on
    // several maximal chains (the paper's tie-break).
    std::vector<int> GroupOfComp(NC, -1);
    std::map<int, int> RootCompOfGroup; ///< group id -> root component.
    for (int C = 0; C < NC; ++C) {
      if (InDeg[C] != 0 || GroupOfComp[C] != -1)
        continue;
      int GroupId = static_cast<int>(Plan.Groups.size());
      Plan.Groups.emplace_back();
      RootCompOfGroup[GroupId] = C;
      std::vector<int> Queue = {C};
      GroupOfComp[C] = GroupId;
      while (!Queue.empty()) {
        int Cur = Queue.back();
        Queue.pop_back();
        for (int Next : CompAdj[Cur]) {
          if (GroupOfComp[Next] != -1)
            continue;
          GroupOfComp[Next] = GroupId;
          Queue.push_back(Next);
        }
      }
    }

    // Fill group contents. The maximal element of each group comes from
    // the root component (in-degree 0: maximal under the order).
    for (size_t N = 0; N < Nodes.size(); ++N) {
      int C = SCC.componentOf(static_cast<int>(N));
      int GroupId = GroupOfComp[C];
      assert(GroupId >= 0 && "node not assigned to a group");
      StorageGroup &G = Plan.Groups[GroupId];
      bool IsRootComp = RootCompOfGroup[GroupId] == C;
      for (VarId V : Nodes[N]) {
        G.Members.push_back(V);
        Plan.GroupOf[V] = GroupId;
      }
      if (NodeStatic[N]) {
        G.K = StorageGroup::Kind::Stack;
        for (VarId V : Nodes[N]) {
          std::int64_t S = staticSizeBytes(V);
          if (IsRootComp &&
              (G.Maximal == NoVar || S > staticSizeBytes(G.Maximal)))
            G.Maximal = V;
          G.StackBytes = std::max(G.StackBytes, S);
        }
      } else {
        G.K = StorageGroup::Kind::Heap;
        if (IsRootComp && G.Maximal == NoVar)
          G.Maximal = Nodes[N].front();
      }
      if (G.Maximal == NoVar)
        G.Maximal = Nodes[N].front();
      G.IT = Types[Nodes[N].front()].IT;
    }
  }

  // Table 2 statistics and the stack frame layout, over all groups.
  std::int64_t Offset = 0;
  for (size_t GI = 0; GI < Plan.Groups.size(); ++GI) {
    StorageGroup &G = Plan.Groups[GI];
    if (G.Members.size() > 1) {
      if (G.K == StorageGroup::Kind::Stack) {
        Plan.StaticSubsumed += static_cast<unsigned>(G.Members.size() - 1);
        std::int64_t Sum = 0;
        for (VarId V : G.Members)
          Sum += staticSizeBytes(V);
        Plan.StaticReductionBytes += Sum - G.StackBytes;
      } else {
        Plan.DynamicSubsumed += static_cast<unsigned>(G.Members.size() - 1);
      }
    }
    if (G.K == StorageGroup::Kind::Stack) {
      // 16-byte alignment accommodates complex elements.
      Offset = (Offset + 15) & ~std::int64_t(15);
      G.FrameOffset = Offset;
      Offset += G.StackBytes;
    } else if (!G.Members.empty()) {
      // Record a symbolic size for the maximal member when available.
      const VarType &T = Types[G.Maximal];
      if (!T.Extents.empty())
        G.SizeExpr = Ctx.mul(
            Ctx.numElements(T.Extents),
            Ctx.makeConst(static_cast<std::int64_t>(elemSizeBytes(T.IT))));
    }
    if (Obs)
      remarkGroup(static_cast<int>(GI), G);
  }
  Plan.FrameBytes = (Offset + 15) & ~std::int64_t(15);
  if (Obs) {
    Obs->Stats.add("gctd.subsumed.static", Plan.StaticSubsumed);
    Obs->Stats.add("gctd.subsumed.dynamic", Plan.DynamicSubsumed);
    Obs->Stats.add("gctd.static_reduction_bytes",
                   Plan.StaticReductionBytes);
    Obs->Stats.add("gctd.frame_bytes", Plan.FrameBytes);
  }
  return Plan;
}

} // namespace

StoragePlan matcoal::decomposeColorClasses(const Function &F,
                                           const InterferenceGraph &IG,
                                           const TypeInference &TI,
                                           const RangeAnalysis *RA,
                                           Observer *Obs) {
  PassTimer T(Obs, "gctd.decompose");
  Decomposer D(F, IG, TI, RA, Obs);
  return D.run();
}

StoragePlan matcoal::runGCTD(const Function &F, const TypeInference &TI,
                             const RangeAnalysis *RA, Observer *Obs) {
  InterferenceGraph IG(F, TI, /*Coalesce=*/true, ColoringStrategy::Affinity,
                       RA, Obs);
  return decomposeColorClasses(F, IG, TI, RA, Obs);
}

StoragePlan matcoal::runGCTDWith(const Function &F, const TypeInference &TI,
                                 bool Coalesce, ColoringStrategy Strategy,
                                 const RangeAnalysis *RA, Observer *Obs) {
  InterferenceGraph IG(F, TI, Coalesce, Strategy, RA, Obs);
  return decomposeColorClasses(F, IG, TI, RA, Obs);
}

StoragePlan matcoal::makeIdentityPlan(const Function &F,
                                      const TypeInference &TI) {
  const std::vector<VarType> &Types = TI.functionTypes(F);
  StoragePlan Plan;
  Plan.GroupOf.assign(F.numVars(), -1);

  auto AddVar = [&](VarId V) {
    if (Plan.GroupOf[V] != -1)
      return;
    const VarType &T = Types[V];
    if (T.isBottom() || T.IT == IntrinsicType::Colon)
      return;
    StorageGroup G;
    G.Members = {V};
    G.Maximal = V;
    G.IT = T.IT;
    if (T.hasKnownShape()) {
      G.K = StorageGroup::Kind::Stack;
      G.StackBytes = T.knownNumElements() *
                     static_cast<std::int64_t>(elemSizeBytes(T.IT));
    } else {
      G.K = StorageGroup::Kind::Heap;
    }
    Plan.GroupOf[V] = static_cast<int>(Plan.Groups.size());
    Plan.Groups.push_back(std::move(G));
    ++Plan.OriginalVarCount;
  };

  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      for (VarId R : I.Results)
        AddVar(R);
  for (VarId P : F.Params)
    AddVar(P);

  std::int64_t Offset = 0;
  for (StorageGroup &G : Plan.Groups) {
    if (G.K != StorageGroup::Kind::Stack)
      continue;
    Offset = (Offset + 15) & ~std::int64_t(15);
    G.FrameOffset = Offset;
    Offset += G.StackBytes;
  }
  Plan.FrameBytes = (Offset + 15) & ~std::int64_t(15);
  return Plan;
}

std::string StoragePlan::str(const Function &F) const {
  std::ostringstream OS;
  OS << "storage plan for " << F.Name << ": " << Groups.size()
     << " groups, frame " << FrameBytes << " bytes, " << NumColors
     << " colors\n";
  for (size_t GI = 0; GI < Groups.size(); ++GI) {
    const StorageGroup &G = Groups[GI];
    OS << "  g" << GI
       << (G.K == StorageGroup::Kind::Stack ? " stack " : " heap  ");
    if (G.K == StorageGroup::Kind::Stack)
      OS << "[" << G.StackBytes << "B @" << G.FrameOffset << "] ";
    else if (G.SizeExpr)
      OS << "[" << G.SizeExpr->str() << "] ";
    OS << intrinsicTypeName(G.IT) << ":";
    for (VarId V : G.Members)
      OS << " " << F.var(V).Name;
    OS << "\n";
  }
  return OS.str();
}

std::vector<unsigned> matcoal::dpsReturnSlots(const Function &F,
                                              const StoragePlan &Plan) {
  std::vector<unsigned> Eligible;
  size_t NOut = F.Outputs.size();
  if (NOut == 0)
    return Eligible;
  std::vector<const Instr *> Rets;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      if (I.Op == Opcode::Ret)
        Rets.push_back(&I);
  if (Rets.empty())
    return Eligible;
  for (unsigned K = 0; K < NOut; ++K) {
    int G = Plan.groupOf(F.Outputs[K]);
    if (G < 0)
      continue;
    const StorageGroup &SG = Plan.Groups[static_cast<size_t>(G)];
    // Stack slots point at a fixed local array (the runtime calls degrade
    // to copies on a negative cap anyway); complex groups never reach
    // mcrt. Neither is worth planning a handoff for.
    if (SG.K != StorageGroup::Kind::Heap ||
        SG.IT == IntrinsicType::Complex)
      continue;
    bool OK = true;
    for (const Instr *R : Rets) {
      if (R->Operands.size() != NOut) {
        OK = false;
        break;
      }
      // Every return of K must surrender exactly slot G, and G must feed
      // no OTHER returned position: the handoff at K nulls the slot, so a
      // later mcrt_store of the same slot would copy from nothing.
      for (unsigned K2 = 0; K2 < NOut && OK; ++K2) {
        int OG = Plan.groupOf(R->Operands[K2]);
        OK = K2 == K ? OG == G : OG != G;
      }
      if (!OK)
        break;
    }
    // A parameter's storage belongs to the caller for the whole call; a
    // group holding one must load, never borrow.
    for (VarId P : F.Params)
      if (OK && Plan.groupOf(P) == G)
        OK = false;
    // Two outputs in one group can never both hand the buffer off.
    for (unsigned K2 = 0; K2 < NOut && OK; ++K2)
      if (K2 != K && Plan.groupOf(F.Outputs[K2]) == G)
        OK = false;
    if (OK)
      Eligible.push_back(K);
  }
  return Eligible;
}
