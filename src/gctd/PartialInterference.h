//===- PartialInterference.h - Section 2.1 overlap analysis -----*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's section 2.1 notes that its interference is conservative:
/// in
///     a <- rand(2, 2); b <- rand(2, 2); c <- a(1); d <- b + c;
/// a and b fully interfere under the Chaitin criterion, yet only a's
/// first element is read after b's definition -- their storage could have
/// been overlapped, computing everything in five doubles. The paper
/// leaves exploiting this as future work.
///
/// This analysis quantifies that headroom: it finds interfering pairs of
/// statically-sized arrays where every use of one variable inside the
/// other's range reads only constant scalar elements, and reports the
/// bytes an overlapping allocator could reclaim. It is a measurement
/// pass (consumed by bench_partial); the storage planner stays
/// conservative, exactly like the paper's implementation.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_GCTD_PARTIALINTERFERENCE_H
#define MATCOAL_GCTD_PARTIALINTERFERENCE_H

#include "gctd/Interference.h"
#include "ir/IR.h"
#include "typeinf/TypeInference.h"

#include <cstdint>
#include <vector>

namespace matcoal {

/// One overlappable pair and the bytes an overlapping layout could save.
struct PartialInterferenceCandidate {
  VarId Reduced;  ///< The variable only partially read (a in the example).
  VarId Other;    ///< The interfering variable that could overlap it.
  std::int64_t ReducedBytes; ///< Full size of Reduced.
  std::int64_t NeededBytes;  ///< Prefix of Reduced actually read.
  std::int64_t SavableBytes; ///< min(ReducedBytes - NeededBytes, size(Other)).
};

struct PartialInterferenceReport {
  std::vector<PartialInterferenceCandidate> Candidates;
  std::int64_t TotalSavableBytes = 0;
};

/// Analyzes one function's interference graph for partial-interference
/// headroom.
PartialInterferenceReport
analyzePartialInterference(const Function &F, const InterferenceGraph &IG,
                           const TypeInference &TI);

} // namespace matcoal

#endif // MATCOAL_GCTD_PARTIALINTERFERENCE_H
