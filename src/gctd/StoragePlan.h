//===- StoragePlan.h - GCTD Phase 2: type-based decomposition ---*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 2 of GCTD (paper section 3): each color class is decomposed into
/// groups via the storage-size partial order (Relation 1). Statically
/// estimable groups are stack-allocated with fixed offsets; the rest are
/// heap-allocated group slots resized on the fly. The plan also carries
/// the Table 2 statistics (variable reductions, static storage savings).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_GCTD_STORAGEPLAN_H
#define MATCOAL_GCTD_STORAGEPLAN_H

#include "analysis/RangeAnalysis.h"
#include "gctd/Interference.h"
#include "ir/IR.h"
#include "observe/Observe.h"
#include "typeinf/TypeInference.h"

#include <cstdint>
#include <string>
#include <vector>

namespace matcoal {

/// One storage group: all members share one storage area laid out from
/// the same starting address as the group's maximal element.
struct StorageGroup {
  enum class Kind { Stack, Heap };
  Kind K = Kind::Heap;
  IntrinsicType IT = IntrinsicType::Real;
  std::vector<VarId> Members;
  /// A member with maximal storage size under the partial order.
  VarId Maximal = NoVar;
  /// Stack groups: the fixed byte size (max over members).
  std::int64_t StackBytes = 0;
  /// Stack groups: byte offset within the function's frame.
  std::int64_t FrameOffset = 0;
  /// Heap groups: symbolic byte size of the maximal element (may be null).
  SymExpr SizeExpr = nullptr;
};

/// The per-function storage assignment produced by GCTD.
struct StoragePlan {
  std::vector<StorageGroup> Groups;
  /// Group index per VarId; -1 for variables with no storage (the ':'
  /// marker, dead variables).
  std::vector<int> GroupOf;
  /// Total stack frame bytes for the function.
  std::int64_t FrameBytes = 0;

  // Table 2 statistics.
  unsigned OriginalVarCount = 0;  ///< Variables entering the GCTD pass.
  unsigned StaticSubsumed = 0;    ///< s: static vars subsumed in another.
  unsigned DynamicSubsumed = 0;   ///< d: dynamic vars statically subsumed.
  std::int64_t StaticReductionBytes = 0; ///< Stack bytes saved.
  unsigned NumColors = 0;

  int groupOf(VarId V) const {
    return V >= 0 && static_cast<size_t>(V) < GroupOf.size() ? GroupOf[V]
                                                             : -1;
  }
  /// True when U and V are bound to the same storage area.
  bool sameSlot(VarId U, VarId V) const {
    int G = groupOf(U);
    return G >= 0 && G == groupOf(V);
  }

  std::string str(const Function &F) const;
};

/// Runs phase 2 on a colored interference graph. When \p RA is non-null,
/// range-bounded symbolic extents also count as statically estimable
/// (capped at RangeAnalysis::kPromoteCapBytes), promoting heap groups to
/// fixed stack slots. A non-null \p Obs receives a remark per storage
/// decision: every group bound to stack or heap (with the symbolic size
/// expression that forced a heap binding) and every range-justified
/// stack promotion.
StoragePlan decomposeColorClasses(const Function &F,
                                  const InterferenceGraph &IG,
                                  const TypeInference &TI,
                                  const RangeAnalysis *RA = nullptr,
                                  Observer *Obs = nullptr);

/// Runs the full GCTD pass (phase 1 + phase 2).
StoragePlan runGCTD(const Function &F, const TypeInference &TI,
                    const RangeAnalysis *RA = nullptr,
                    Observer *Obs = nullptr);

/// Strategy-parameterized variant for the coloring ablation benchmarks.
StoragePlan runGCTDWith(const Function &F, const TypeInference &TI,
                        bool Coalesce, ColoringStrategy Strategy,
                        const RangeAnalysis *RA = nullptr,
                        Observer *Obs = nullptr);

/// The no-coalescing baseline used by the "without GCTD" ablation: every
/// variable gets its own storage area.
StoragePlan makeIdentityPlan(const Function &F, const TypeInference &TI);

/// Output indices of \p F whose returns may use destination-passing style
/// (mcrt_dps_bind at entry, mcrt_dps_ret at every Ret: pointer handoff
/// instead of a copy). Output K qualifies when its planned group G is
/// heap-allocated and real, every Ret's K-th operand lives in G, no other
/// Ret operand or output shares G (a handoff at position K would leave a
/// later copy of the same slot reading a surrendered buffer), and no
/// parameter shares G (parameters own caller storage for the whole call).
/// The single home of this eligibility question: the C emitter plans the
/// handoff from it and the plan auditor re-proves each returned index
/// against a fresh IR walk (rule "dps-overlap").
std::vector<unsigned> dpsReturnSlots(const Function &F,
                                     const StoragePlan &Plan);

} // namespace matcoal

#endif // MATCOAL_GCTD_STORAGEPLAN_H
