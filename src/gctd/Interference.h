//===- Interference.h - GCTD Phase 1: interference graph --------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Phase 1 of GCTD (paper section 2): builds the interference graph over
/// the SSA IR using the Chaitin notion of interference restricted to
/// variables that are both live and available, adds interference edges
/// required by operator semantics (resolved with inferred types, section
/// 2.3), coalesces phi webs so SSA-inversion copies become identity
/// assignments (section 2.2.1), and colors the graph with the greedy
/// lexical-order heuristic (section 2.4).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_GCTD_INTERFERENCE_H
#define MATCOAL_GCTD_INTERFERENCE_H

#include "analysis/RangeAnalysis.h"
#include "ir/IR.h"
#include "observe/Observe.h"
#include "typeinf/TypeInference.h"

#include <map>
#include <set>
#include <vector>

namespace matcoal {

/// How the greedy coloring breaks ties (ablations of the paper's
/// section 5 non-optimality discussion).
enum class ColoringStrategy {
  /// The paper's heuristic: lexical definition order, smallest color.
  Lexical,
  /// Lexical order with an in-place affinity preference (our default; it
  /// keeps in-place pairs inside one color class for phase 2).
  Affinity,
  /// Visit nodes largest-static-size first, preferring the color whose
  /// class currently has the largest maximal size (a size-aware greedy
  /// inspired by the paper's A/B/C example).
  SizeWeighted,
};

/// The phase-1 result: a colored, coalesced interference graph.
class InterferenceGraph {
public:
  /// Builds, coalesces and colors the graph for \p F. \p Coalesce disables
  /// phi coalescing when false (for ablation benchmarks). When \p RA is
  /// non-null, range-proven scalar/vector facts discharge operator-
  /// semantics edges the bare types cannot; any consumer executing the
  /// resulting plan through generated code must use the same facts (the
  /// CEmitter takes the same RangeAnalysis so its in-place decisions agree
  /// with the edges removed here). A non-null \p Obs receives per-phase
  /// timings, counters, and a remark for every edge added, edge
  /// discharged, web coalesced, and color assigned.
  InterferenceGraph(const Function &F, const TypeInference &TI,
                    bool Coalesce = true,
                    ColoringStrategy Strategy = ColoringStrategy::Affinity,
                    const RangeAnalysis *RA = nullptr,
                    Observer *Obs = nullptr);

  /// True if the variable takes part in storage allocation (defined, typed,
  /// not the ':' marker).
  bool participates(VarId V) const { return Participates[V]; }

  /// Union-find representative after coalescing.
  VarId repOf(VarId V) const;

  /// True if the (representatives of) U and V interfere.
  bool interferes(VarId U, VarId V) const;

  /// Color assigned to V's representative; -1 for non-participants.
  int colorOf(VarId V) const;
  unsigned numColors() const { return NumColors; }

  /// All participating variables grouped per color, in VarId order.
  std::vector<std::vector<VarId>> colorClasses() const;

  /// Number of interference edges between representatives (for tests).
  unsigned numEdges() const;

private:
  void markParticipants(const TypeInference &TI);
  void buildEdges(const TypeInference &TI);
  void addOperatorSemanticsEdges(const Instr &I, const TypeInference &TI);
  /// Records an operator-semantics edge (or its range-proven absence)
  /// into the observer.
  void remarkEdge(RemarkKind Kind, VarId Y, VarId X, const Instr &I,
                  const char *Why);
  /// The section 2.3 decision function as data: appends the (result,
  /// operand) operator-semantics pairs for \p I to \p Out. \p UseRA
  /// selects whether range-proven facts may discharge pairs.
  void collectOpSemEdges(const Instr &I, const std::vector<VarType> &Types,
                         bool UseRA,
                         std::vector<std::pair<VarId, VarId>> &Out) const;
  void coalescePhis();
  void color(ColoringStrategy Strategy, const TypeInference &TI);

  void addEdge(VarId U, VarId V);
  void addAffinities();
  VarId findRoot(VarId V) const;
  bool tryUnion(VarId U, VarId V);

  const Function &F;
  const RangeAnalysis *RA = nullptr;
  Observer *Obs = nullptr;
  std::vector<char> Participates;
  mutable std::vector<VarId> Parent; ///< Union-find with path compression.
  std::vector<std::set<VarId>> Adj;  ///< Adjacency over representatives.
  /// In-place affinity over representatives: result/operand pairs that do
  /// not interfere, weighted by how much sharing matters (2: same
  /// intrinsic type and both nonscalar; 1: same intrinsic type; 0: other).
  /// The coloring heuristic prefers the best affine neighbor's color so
  /// phase 2 sees in-place pairs inside one color class.
  std::vector<std::map<VarId, int>> Affinity;
  std::vector<IntrinsicType> ITOf;
  std::vector<char> NonScalarOf;
  std::vector<int> Colors;           ///< Per representative.
  unsigned NumColors = 0;
  /// Definition order used by the coloring heuristic (lexical order).
  std::vector<VarId> DefOrder;
};

} // namespace matcoal

#endif // MATCOAL_GCTD_INTERFERENCE_H
