//===- matcoalc.cpp - The matcoal compiler driver -------------------------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
// The standalone command-line front door to the pipeline:
//
//   $ matcoalc prog.m                   # compile + run (static model)
//   $ matcoalc --lint prog.m            # static diagnostics (matlint)
//   $ matcoalc --lint-json prog.m       # same findings, JSON envelope
//   $ matcoalc --audit-plan prog.m      # re-prove the storage plans
//   $ matcoalc --dump-plan prog.m       # print the GCTD storage plans
//   $ matcoalc --emit-c prog.m          # print the mat2c C translation
//   $ matcoalc --no-ranges ... prog.m   # types-only ablation of any mode
//   $ matcoalc --bench crni             # run a built-in benchmark program
//
// Observability (composable with every mode):
//
//   $ matcoalc --remarks prog.m             # optimization remarks (stderr)
//   $ matcoalc --remarks=storage-plan ...   # one pass only
//   $ matcoalc --stats-json out.json ...    # counters + pass timings
//   $ matcoalc --trace-out trace.json ...   # Chrome trace-event timeline
//   $ matcoalc --print-after=ssa ...        # IR dump after one pass
//   $ matcoalc --print-after-all ...        # ... after every dump point
//
// Runtime storage profiling (the plan-vs-actual loop):
//
//   $ matcoalc --profile=p.json prog.m      # op-clocked storage events
//   $ matcoalc --mem-timeline prog.m        # per-slot size timelines
//   $ matcoalc --drift-report prog.m        # plan-vs-actual drift report
//   $ matcoalc --emit-c --emit-profiling .. # C with mcrt_prof_* hooks
//
// Exit codes: 0 success (and, under --lint, no findings); 1 compile
// failure, runtime failure, or lint findings; 2 usage error.
//
//===----------------------------------------------------------------------===//

#include "bench/programs/Programs.h"
#include "codegen/CEmitter.h"
#include "driver/Compiler.h"
#include "lint/Lint.h"
#include "native/NativeEngine.h"
#include "observe/Observe.h"
#include "observe/RuntimeProfiler.h"
#include "observe/Span.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace matcoal;

namespace {

void usage(const char *Argv0) {
  std::fprintf(stderr,
               "usage: %s [options] <file.m | ->\n"
               "\n"
               "modes (default: compile and run under the static model):\n"
               "  --lint        run the matlint checks and print findings\n"
               "  --lint-json   print the findings as a JSON array of\n"
               "                {file,line,col,rule,severity,func,msg}\n"
               "                records (the matcoald 'lint' op emits the\n"
               "                same envelope)\n"
               "  --audit-plan  re-prove every storage plan with the\n"
               "                static auditor (abstract interpretation,\n"
               "                independent of the interference graph);\n"
               "                silent and exit 0 on a clean audit, one\n"
               "                matvet-* finding per violation otherwise\n"
               "  --dump-plan   print the per-function storage plans\n"
               "  --emit-c      print the generated C translation unit\n"
               "\n"
               "options:\n"
               "  --entry <fn>  entry function (default: main)\n"
               "  --bench <name> use a built-in benchmark program as the\n"
               "                input instead of a file (adpt, capr, clos,\n"
               "                crni, diff, dich, edit, fdtd, fiff, nb1d,\n"
               "                nb3d)\n"
               "  --no-ranges   disable the range/shape analysis (the\n"
               "                types-only pipeline; lint degrades too)\n"
               "  --no-fuse     disable loop fusion in the C emitter and\n"
               "                the destructive-execution layer (buffer\n"
               "                stealing, free-list pool) in run modes\n"
               "  --threads=<N> worker threads for kernel loops in every\n"
               "                execution tier (1-64; default resolves\n"
               "                $MATCOAL_THREADS, else 1). Large loops\n"
               "                partition across a persistent pool; output\n"
               "                is byte-identical at any setting\n"
               "  --timeout-ms=<N>\n"
               "                wall-clock deadline over compile + run;\n"
               "                expiry aborts the compile with a classified\n"
               "                error or unwinds the run as a 'deadline'\n"
               "                trap with line provenance (exit 1)\n"
               "  --native      run on the in-process native tier: the\n"
               "                emitted C is compiled into a shared object\n"
               "                (content-addressed artifact cache; a warm\n"
               "                key skips cc entirely), dlopened, and\n"
               "                called through the mcrt ABI; anything that\n"
               "                prevents it degrades loudly to the VM (see\n"
               "                docs/EXECUTION_TIERS.md)\n"
               "  --cache-dir=<dir>\n"
               "                artifact cache directory for --native\n"
               "                (default: $MATCOAL_CACHE_DIR, else a\n"
               "                per-user dir: $XDG_CACHE_HOME or\n"
               "                ~/.cache, matcoal/native, 0700)\n"
               "  --help        this text, plus the lint check registry\n"
               "\n"
               "observability:\n"
               "  --remarks[=<pass>]   print optimization remarks to stderr\n"
               "                       (passes: interference, storage-plan,\n"
               "                       cemit, legality, driver, profile,\n"
               "                       native)\n"
               "  --stats-json <file>  write counters and pass timings as\n"
               "                       JSON ('-' for stdout)\n"
               "  --trace-out <file>   write a Chrome trace-event timeline\n"
               "                       (open in chrome://tracing); under\n"
               "                       profiling it gains a memory counter\n"
               "                       track on the op-clock\n"
               "  --span-trace <file>  write this invocation's span tree as\n"
               "                       JSON ('-' for stdout): request >\n"
               "                       compile (one child per pipeline\n"
               "                       stage) > run, the same shape a\n"
               "                       matcoald reply carries under\n"
               "                       \"trace\":true\n"
               "  --print-after=<pass> print the IR after a pass (lower,\n"
               "                       ssa, cleanup, invert)\n"
               "  --print-after-all    print the IR after every dump point\n"
               "\n"
               "runtime storage profiling:\n"
               "  --profile[=<file>]   run under the storage profiler and\n"
               "                       write the op-clocked event stream +\n"
               "                       per-slot summaries (default:\n"
               "                       profile.json; '-' for stdout)\n"
               "  --mem-timeline       print per-slot memory timelines\n"
               "                       (high-water marks, lifetimes)\n"
               "  --drift-report       print the plan-vs-actual drift\n"
               "                       report (resized, over-provisioned,\n"
               "                       stack-promotable groups)\n"
               "  --emit-profiling     with --emit-c: emit mcrt_prof_*\n"
               "                       hooks so the compiled program\n"
               "                       streams the same event JSON\n",
               Argv0);
  std::fprintf(stderr, "\nlint checks:\n");
  for (const LintCheckInfo &CI : lintRegistry())
    std::fprintf(stderr, "  %-16s %s\n", CI.Id, CI.Descr);
}

/// Writes \p Text to \p Path, with "-" meaning stdout. Returns false (and
/// complains) when the file cannot be opened.
bool writeOut(const std::string &Path, const std::string &Text) {
  if (Path == "-") {
    std::fputs(Text.c_str(), stdout);
    return true;
  }
  std::ofstream Out(Path);
  if (!Out) {
    std::fprintf(stderr, "error: cannot write %s\n", Path.c_str());
    return false;
  }
  Out << Text;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  bool DoLint = false, LintJson = false, DoAudit = false, DoPlan = false,
       DoEmitC = false;
  bool DoRemarks = false;
  bool DoTimeline = false, DoDrift = false, EmitProfiling = false;
  bool ProfileSet = false, DoNative = false;
  std::int64_t TimeoutMs = 0;
  std::string RemarkPass, StatsPath, TracePath, SpanPath, ProfilePath,
      BenchName, CacheDir;
  Observer Obs;
  CompileOptions Opts;
  const char *Path = nullptr;
  for (int I = 1; I < Argc; ++I) {
    if (!std::strcmp(Argv[I], "--lint")) {
      DoLint = true;
    } else if (!std::strcmp(Argv[I], "--lint-json")) {
      DoLint = true;
      LintJson = true;
    } else if (!std::strcmp(Argv[I], "--audit-plan")) {
      DoAudit = true;
    } else if (!std::strcmp(Argv[I], "--dump-plan")) {
      DoPlan = true;
    } else if (!std::strcmp(Argv[I], "--emit-c")) {
      DoEmitC = true;
    } else if (!std::strcmp(Argv[I], "--no-ranges")) {
      Opts.Analysis = AnalysisLevel::None;
    } else if (!std::strcmp(Argv[I], "--no-fuse")) {
      Opts.NoFuse = true;
    } else if (!std::strncmp(Argv[I], "--threads=", 10)) {
      char *End = nullptr;
      long T = std::strtol(Argv[I] + 10, &End, 10);
      if (!End || *End != '\0' || T <= 0 || T > 64) {
        std::fprintf(stderr, "error: --threads needs an integer in [1, 64]\n");
        return 2;
      }
      Opts.Threads = static_cast<int>(T);
    } else if (!std::strcmp(Argv[I], "--native")) {
      DoNative = true;
    } else if (!std::strncmp(Argv[I], "--cache-dir=", 12)) {
      CacheDir = Argv[I] + 12;
      if (CacheDir.empty()) {
        std::fprintf(stderr, "error: --cache-dir needs a directory\n");
        return 2;
      }
    } else if (!std::strncmp(Argv[I], "--timeout-ms=", 13)) {
      char *End = nullptr;
      TimeoutMs = std::strtoll(Argv[I] + 13, &End, 10);
      if (!End || *End != '\0' || TimeoutMs <= 0) {
        std::fprintf(stderr,
                     "error: --timeout-ms needs a positive integer\n");
        return 2;
      }
    } else if (!std::strcmp(Argv[I], "--remarks")) {
      DoRemarks = true;
    } else if (!std::strncmp(Argv[I], "--remarks=", 10)) {
      DoRemarks = true;
      RemarkPass = Argv[I] + 10;
    } else if (!std::strcmp(Argv[I], "--stats-json")) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --stats-json needs an argument\n");
        return 2;
      }
      StatsPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--trace-out")) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --trace-out needs an argument\n");
        return 2;
      }
      TracePath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--span-trace")) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --span-trace needs an argument\n");
        return 2;
      }
      SpanPath = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--profile")) {
      ProfileSet = true;
      ProfilePath = "profile.json";
    } else if (!std::strncmp(Argv[I], "--profile=", 10)) {
      ProfileSet = true;
      ProfilePath = Argv[I] + 10;
    } else if (!std::strcmp(Argv[I], "--mem-timeline")) {
      DoTimeline = true;
    } else if (!std::strcmp(Argv[I], "--drift-report")) {
      DoDrift = true;
    } else if (!std::strcmp(Argv[I], "--emit-profiling")) {
      EmitProfiling = true;
    } else if (!std::strcmp(Argv[I], "--bench")) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --bench needs an argument\n");
        return 2;
      }
      BenchName = Argv[++I];
    } else if (!std::strncmp(Argv[I], "--print-after=", 14)) {
      Obs.requestDump(Argv[I] + 14);
    } else if (!std::strcmp(Argv[I], "--print-after-all")) {
      Obs.requestDumpAll();
    } else if (!std::strcmp(Argv[I], "--entry")) {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "error: --entry needs an argument\n");
        return 2;
      }
      Opts.Entry = Argv[++I];
    } else if (!std::strcmp(Argv[I], "--help") ||
               !std::strcmp(Argv[I], "-h")) {
      usage(Argv[0]);
      return 0;
    } else if (Argv[I][0] == '-' && std::strcmp(Argv[I], "-") != 0) {
      std::fprintf(stderr, "error: unknown option %s\n", Argv[I]);
      usage(Argv[0]);
      return 2;
    } else if (Path) {
      std::fprintf(stderr, "error: multiple input files\n");
      return 2;
    } else {
      Path = Argv[I];
    }
  }
  if (Path && !BenchName.empty()) {
    std::fprintf(stderr, "error: both an input file and --bench given\n");
    return 2;
  }
  if (!Path && BenchName.empty()) {
    usage(Argv[0]);
    return 2;
  }

  std::string Source;
  std::string PathLabel;
  if (!BenchName.empty()) {
    const BenchmarkProgram *BP = findBenchmark(BenchName);
    if (!BP) {
      std::fprintf(stderr, "error: no benchmark named '%s'; have:",
                   BenchName.c_str());
      for (const BenchmarkProgram &P : benchmarkSuite())
        std::fprintf(stderr, " %s", P.Name.c_str());
      std::fprintf(stderr, "\n");
      return 2;
    }
    Source = BP->Source;
    PathLabel = "bench:" + BenchName;
  } else if (!std::strcmp(Path, "-")) {
    std::ostringstream Buf;
    Buf << std::cin.rdbuf();
    Source = Buf.str();
    PathLabel = "<stdin>";
  } else {
    std::ifstream In(Path);
    if (!In) {
      std::fprintf(stderr, "error: cannot open %s\n", Path);
      return 2;
    }
    std::ostringstream Buf;
    Buf << In.rdbuf();
    Source = Buf.str();
    PathLabel = Path;
  }

  bool Observing = DoRemarks || !StatsPath.empty() || !TracePath.empty() ||
                   !SpanPath.empty() || Obs.wantsAnyDump();
  bool DoProfile = ProfileSet || DoTimeline || DoDrift;
  Opts.Lint = DoLint;
  if (Observing)
    Opts.Obs = &Obs;
  RuntimeProfiler Prof;
  Diagnostics Diags;
  // The deadline clock starts here and covers compile *and* run: the
  // driver polls the token between stages, the VM/interpreter poll it in
  // their op loops (TrapKind::Deadline with "line N (op)" provenance).
  CancelToken Deadline;
  if (TimeoutMs > 0) {
    Deadline.setDeadlineIn(TimeoutMs);
    Opts.Cancel = &Deadline;
  }
  // The single-shot span tree: the same request > compile (one child per
  // pipeline stage) > run shape a matcoald reply carries, minus the
  // queue/dispatch spans only a daemon has.
  SpanRecorder Rec;
  bool Spanning = !SpanPath.empty();
  int RootSpan = Spanning ? Rec.begin("request") : -1;
  int CompileSpan = Spanning ? Rec.begin("compile") : -1;
  std::size_t CompileTraceMark = Obs.Trace.size();
  auto Program = compileSource(Source, Diags, Opts);
  if (Spanning) {
    for (std::size_t I = CompileTraceMark; I < Obs.Trace.size(); ++I)
      Rec.leaf(Obs.Trace[I].Name, Obs.Trace[I].StartMicros,
               Obs.Trace[I].DurMicros);
    Rec.end(CompileSpan);
  }

  // IR dumps precede any mode output, mirroring compiler -print-after
  // conventions.
  for (const auto &[Pass, Text] : Obs.IRDumps)
    std::printf("*** IR after %s ***\n%s\n", Pass.c_str(), Text.c_str());

  // The observability outputs flow even when the compile fails or
  // degrades: that is when you want them most. Under profiling the trace
  // gains the memory counter track.
  auto EmitObservability = [&]() -> bool {
    if (DoRemarks)
      std::fputs(Obs.remarksText(RemarkPass).c_str(), stderr);
    bool OK = true;
    if (!StatsPath.empty())
      OK &= writeOut(StatsPath, Obs.statsJson());
    if (!TracePath.empty())
      OK &= writeOut(TracePath,
                     DoProfile ? Prof.traceJson(&Obs) : Obs.traceJson());
    if (Spanning) {
      if (!Rec.allClosed())
        Rec.end(RootSpan);
      OK &= writeOut(SpanPath, Rec.treeJson() + "\n");
    }
    return OK;
  };

  if (!Program) {
    EmitObservability();
    std::fprintf(stderr, "%s", Diags.str().c_str());
    return 1;
  }
  for (const Diagnostic &D : Diags.all())
    if (D.Level != DiagLevel::Error)
      std::fprintf(stderr, "%s\n", D.str().c_str());

  // Generated-code decisions (check elisions) are part of the remark
  // stream, so observing runs always exercise the emitter.
  CEmitOptions EOpts;
  EOpts.Fuse = !Opts.NoFuse;
  EOpts.Profile = EmitProfiling;
  if (Observing && !DoEmitC && Program->M && Program->TI)
    (void)emitModuleC(Program->module(), Program->GCTDPlans,
                      Program->types(), Program->ranges(), &Obs, EOpts,
                      Program->legality());

  int Exit = 0;
  if (DoAudit) {
    // Silent on a clean audit: CI greps for any output at all.
    for (const LintDiag &D : Program->auditDiags())
      std::printf("%s:%s\n", PathLabel.c_str(), D.str().c_str());
    if (!DoLint && !DoPlan && !DoEmitC) {
      Exit = Program->auditDiags().empty() ? 0 : 1;
      return EmitObservability() ? Exit : 1;
    }
  }
  if (DoLint) {
    if (LintJson) {
      std::printf("%s\n", lintDiagsJson(Program->lintDiags(),
                                        PathLabel).c_str());
    } else {
      for (const LintDiag &D : Program->lintDiags())
        std::printf("%s:%s\n", PathLabel.c_str(), D.str().c_str());
      std::fprintf(stderr, "%zu finding(s)\n", Program->lintDiags().size());
    }
    if (!DoPlan && !DoEmitC) {
      Exit = Program->lintDiags().empty() ? 0 : 1;
      return EmitObservability() ? Exit : 1;
    }
  }
  if (DoPlan) {
    for (const auto &F : Program->module().Functions)
      std::printf("%s\n", Program->planOf(*F).str(*F).c_str());
    if (!DoEmitC)
      return EmitObservability() ? 0 : 1;
  }
  if (DoEmitC) {
    std::fputs(emitModuleC(Program->module(), Program->GCTDPlans,
                           Program->types(), Program->ranges(),
                           Observing ? &Obs : nullptr, EOpts,
                           Program->legality())
                   .c_str(),
               stdout);
    return EmitObservability() ? 0 : 1;
  }

  if (DoProfile)
    Program->Prof = &Prof;
  int RunSpan = Spanning ? Rec.begin("run") : -1;
  std::size_t RunTraceMark = Obs.Trace.size();
  ExecResult R;
  if (DoNative) {
    // A per-invocation engine when the cache dir was pinned (tests want
    // isolation); the shared engine otherwise, so repeated matcoalc runs
    // in one shell warm the same on-disk cache.
    if (!CacheDir.empty()) {
      NativeEngine Engine(CacheDir);
      R = Engine.run(*Program);
    } else {
      R = NativeEngine::shared().run(*Program);
    }
  } else {
    R = Program->runStatic();
  }
  if (Spanning) {
    for (std::size_t I = RunTraceMark; I < Obs.Trace.size(); ++I)
      Rec.leaf(Obs.Trace[I].Name, Obs.Trace[I].StartMicros,
               Obs.Trace[I].DurMicros);
    Rec.end(RunSpan);
    Rec.end(RootSpan);
  }
  std::fputs(R.Output.c_str(), stdout);
  if (!R.OK) {
    std::fprintf(stderr, "error: %s\n", R.Error.c_str());
    Exit = 1;
  }
  if (DoDrift)
    std::fputs(
        driftReportFor(*Program, Prof, Observing ? &Obs : nullptr).c_str(),
        stdout);
  if (DoTimeline)
    std::fputs(Prof.timelineText().c_str(), stdout);
  if (ProfileSet && !writeOut(ProfilePath, Prof.profileJson(PathLabel, "vm")))
    Exit = 1;
  return EmitObservability() ? Exit : 1;
}
