//===- matcoald.cpp - The matcoal compile-and-run daemon ------------------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
// A long-running, fault-isolated compile service speaking newline-
// delimited JSON (one request per line, one response per line):
//
//   $ matcoald --workers=8 --queue=32                 # stdin/stdout
//   $ matcoald --socket=/tmp/matcoal.sock             # unix socket
//
//   request:  {"id":"r1","source":"disp(1+1)","deadline_ms":500}
//   response: {"id":"r1","ok":true,"kind":"ok","rung":"full",
//              "output":"2\n",...}
//
// Request fields: id (echoed), source (required), entry, fault (inject a
// stage fault: parse|lower|ssa|typeinf|gctd|plan-corrupt), deadline_ms,
// seed, no_fuse, no_ranges, profile, native (run on the in-process
// native tier; the artifact cache is shared across requests and the
// response's "tier" field names what actually ran), threads (worker
// threads for the run's kernel loops, 0 = server env default, output is
// byte-identical at any count), trace (echo the request's span tree in
// the reply); op: "compile" (default), "lint" (return matlint + matvet
// findings instead of running), "stats", "metrics" (Prometheus text
// exposition), "dump" (flight-recorder ring as JSON), or "shutdown".
//
// The contract matcoald adds over matcoalc is *survival*: a request that
// fails to parse, trips a verifier fault, traps at runtime, or outruns
// its deadline gets a classified per-request reply -- degraded down the
// Full -> IdentityPlans -> MccOnly -> InterpOnly ladder where possible --
// and the server keeps serving. When the bounded queue is full the reply
// is {"rejected":true,"retry_after_ms":N} (backpressure, not buffering).
//
// Exit codes: 0 clean shutdown; 1 I/O failure; 2 usage or configuration
// error (including an unrecognized MATCOAL_FAULT value, which is a loud
// startup error, never a silently ignored one).
//
//===----------------------------------------------------------------------===//

#include "driver/Compiler.h"
#include "service/Service.h"

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <mutex>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

using namespace matcoal;

namespace {

void usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [options]\n"
      "\n"
      "Serves newline-delimited JSON compile-and-run requests. By default\n"
      "requests are read from stdin and responses written to stdout (one\n"
      "line each); with --socket the daemon listens on a unix socket and\n"
      "serves every connected client concurrently with the same framing\n"
      "(all connections share one worker pool and one artifact cache).\n"
      "\n"
      "options:\n"
      "  --workers=<N>      worker threads (default 4)\n"
      "  --queue=<N>        bounded queue capacity; a full queue answers\n"
      "                     {\"rejected\":true,\"retry_after_ms\":...}\n"
      "                     (default 16)\n"
      "  --deadline-ms=<N>  default per-request deadline when the request\n"
      "                     carries none; 0 = none (default 0)\n"
      "  --retry-after-ms=<N>  hint carried in backpressure replies\n"
      "                     (default 50)\n"
      "  --cache-dir=<dir>  native-tier artifact cache directory, shared\n"
      "                     across requests and workers (default:\n"
      "                     $MATCOAL_CACHE_DIR, else a per-user dir:\n"
      "                     $XDG_CACHE_HOME or ~/.cache, matcoal/native,\n"
      "                     created 0700)\n"
      "  --socket=<path>    listen on a unix socket instead of stdin\n"
      "  --trace-out=<file> keep every request's span tree and write the\n"
      "                     merged Chrome trace-event JSON (one lane per\n"
      "                     worker) to <file> at shutdown\n"
      "  --flight-dump=<file>  write the flight-recorder ring as JSON to\n"
      "                     <file> at shutdown\n"
      "  --help             this text\n"
      "\n"
      "request ops: \"compile\" (default) runs the source; \"lint\"\n"
      "compiles and returns the matlint + matvet findings as a JSON\n"
      "array (same record shape as matcoalc --lint-json) instead of\n"
      "running; \"stats\" returns the server-wide counter aggregate\n"
      "(gauges and latency histograms included); \"metrics\" returns the\n"
      "same aggregate as Prometheus text exposition; \"dump\" returns the\n"
      "flight recorder's recent span/trap events; \"shutdown\" drains and\n"
      "stops the daemon.\n",
      Argv0);
}

/// Responses from worker threads and protocol replies from the reader
/// interleave on one stream; the lock keeps each NDJSON line whole.
class LineWriter {
public:
  explicit LineWriter(FILE *Out) : Out(Out) {}

  bool writeLine(const std::string &Line) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (!Out)
      return false;
    if (std::fputs(Line.c_str(), Out) == EOF || std::fputc('\n', Out) == EOF)
      return false;
    std::fflush(Out);
    return true;
  }

private:
  std::mutex Mu;
  FILE *Out;
};

ServiceResponse protocolError(const std::string &Id, const std::string &Why) {
  ServiceResponse R;
  R.Id = Id;
  R.Kind = ResponseKind::Protocol;
  R.Error = Why;
  return R;
}

/// Per-stream state shared between the reader (the thread running
/// serveStream) and the worker callbacks that stream responses back.
/// Held by shared_ptr: a worker callback may fire after the reader has
/// seen EOF, so the callbacks keep the writer alive, and the pending
/// count lets the reader wait for *this stream's* outstanding replies --
/// not the whole service's -- before closing its file handles.
struct StreamState {
  explicit StreamState(FILE *Out) : Writer(Out) {}
  LineWriter Writer;

  void addPending() {
    std::lock_guard<std::mutex> Lock(Mu);
    ++Pending;
  }
  void donePending() {
    {
      std::lock_guard<std::mutex> Lock(Mu);
      --Pending;
    }
    CV.notify_all();
  }
  /// Blocks until every submitted request on this stream has replied.
  void waitIdle() {
    std::unique_lock<std::mutex> Lock(Mu);
    CV.wait(Lock, [this] { return Pending == 0; });
  }

private:
  std::mutex Mu;
  std::condition_variable CV;
  std::size_t Pending = 0;
};

/// Serves one NDJSON stream: parse each line, dispatch, reply. Returns
/// false when the client asked for shutdown (stop accepting streams).
bool serveStream(CompileService &Svc, std::istream &In,
                 const std::shared_ptr<StreamState> &St) {
  LineWriter &Out = St->Writer;
  std::string Line;
  while (std::getline(In, Line)) {
    if (Line.empty())
      continue;
    std::string ParseErr;
    std::optional<JsonValue> Doc = JsonValue::parse(Line, ParseErr);
    if (!Doc) {
      Out.writeLine(
          protocolError("", "bad request JSON: " + ParseErr).toJson().dump());
      continue;
    }

    const std::string &Op = Doc->get("op").asString();
    if (Op == "stats") {
      JsonValue R = JsonValue::object();
      const std::string &Id = Doc->get("id").asString();
      if (!Id.empty())
        R.set("id", JsonValue::str(Id));
      R.set("ok", JsonValue::boolean(true));
      R.set("kind", JsonValue::str("stats"));
      std::string StatsErr;
      std::optional<JsonValue> Stats =
          JsonValue::parse(Svc.statsJson(), StatsErr);
      R.set("stats", Stats ? std::move(*Stats) : JsonValue::null());
      Out.writeLine(R.dump());
      continue;
    }
    if (Op == "metrics") {
      JsonValue R = JsonValue::object();
      const std::string &Id = Doc->get("id").asString();
      if (!Id.empty())
        R.set("id", JsonValue::str(Id));
      R.set("ok", JsonValue::boolean(true));
      R.set("kind", JsonValue::str("metrics"));
      R.set("metrics", JsonValue::str(Svc.metricsText()));
      Out.writeLine(R.dump());
      continue;
    }
    if (Op == "dump") {
      JsonValue R = JsonValue::object();
      const std::string &Id = Doc->get("id").asString();
      if (!Id.empty())
        R.set("id", JsonValue::str(Id));
      R.set("ok", JsonValue::boolean(true));
      R.set("kind", JsonValue::str("dump"));
      std::string DumpErr;
      std::optional<JsonValue> Dump =
          JsonValue::parse(Svc.flightDumpJson(), DumpErr);
      R.set("flight", Dump ? std::move(*Dump) : JsonValue::null());
      Out.writeLine(R.dump());
      continue;
    }
    if (Op == "shutdown") {
      // Drain accepted work first so every admitted request still gets
      // its reply before the acknowledgment.
      Svc.drain();
      JsonValue R = JsonValue::object();
      const std::string &Id = Doc->get("id").asString();
      if (!Id.empty())
        R.set("id", JsonValue::str(Id));
      R.set("ok", JsonValue::boolean(true));
      R.set("kind", JsonValue::str("shutdown"));
      Out.writeLine(R.dump());
      return false;
    }
    if (!Op.empty() && Op != "compile" && Op != "lint") {
      Out.writeLine(protocolError(Doc->get("id").asString(),
                                  "unknown op '" + Op +
                                      "' (have: compile, lint, stats, "
                                      "metrics, dump, shutdown)")
                        .toJson()
                        .dump());
      continue;
    }

    ServiceRequest Req;
    std::string ReqErr;
    if (!ServiceRequest::fromJson(*Doc, Req, ReqErr)) {
      Out.writeLine(
          protocolError(Doc->get("id").asString(), ReqErr).toJson().dump());
      continue;
    }
    if (Op == "lint")
      Req.LintOnly = true;
    St->addPending();
    bool Accepted = Svc.submit(Req, [St](ServiceResponse Resp) {
      St->Writer.writeLine(Resp.toJson().dump());
      St->donePending();
    });
    if (!Accepted) {
      St->donePending(); // submit refused: the callback will never fire
      Out.writeLine(Svc.backpressureResponse(Req).toJson().dump());
    }
  }
  return true;
}

/// Live-connection registry: a shutdown request on any connection must
/// unblock every *other* connection's reader (blocked in fgetc) so their
/// threads can be joined. stopAll() half-closes each live fd's read side
/// -- in-flight replies still stream out -- and refuses later adds.
class ConnRegistry {
public:
  bool add(int Fd) {
    std::lock_guard<std::mutex> Lock(Mu);
    if (Stopped)
      return false;
    Fds.insert(Fd);
    return true;
  }
  void remove(int Fd) {
    std::lock_guard<std::mutex> Lock(Mu);
    Fds.erase(Fd);
  }
  void stopAll() {
    std::lock_guard<std::mutex> Lock(Mu);
    Stopped = true;
    for (int Fd : Fds)
      ::shutdown(Fd, SHUT_RD);
  }

private:
  std::mutex Mu;
  std::set<int> Fds;
  bool Stopped = false;
};

/// One connection's reader, run on its own thread: requests from every
/// connected client funnel into the shared worker pool concurrently, and
/// each client's responses stream back over its own socket as they
/// finish. A "shutdown" op from any client stops the daemon: it flips
/// \p Stop, wakes the accept loop by shutting down the listen socket,
/// and half-closes every other connection via the registry.
void serveConnection(CompileService &Svc, int Conn, std::atomic<bool> &Stop,
                     int ListenFd, ConnRegistry &Reg) {
  FILE *OutF = ::fdopen(::dup(Conn), "w");
  FILE *InF = ::fdopen(Conn, "r");
  if (!InF || !OutF) {
    if (InF)
      std::fclose(InF);
    else
      ::close(Conn);
    if (OutF)
      std::fclose(OutF);
    Reg.remove(Conn);
    return;
  }
  auto St = std::make_shared<StreamState>(OutF);
  // getline over a FILE via a small shim: read chars until '\n'.
  std::string Line;
  int C;
  bool SawShutdown = false;
  while (!SawShutdown && (C = std::fgetc(InF)) != EOF) {
    if (C != '\n') {
      Line += static_cast<char>(C);
      continue;
    }
    std::istringstream OneLine(Line);
    Line.clear();
    if (!serveStream(Svc, OneLine, St))
      SawShutdown = true;
  }
  // Flush any unterminated trailing line as a request too.
  if (!SawShutdown && !Line.empty()) {
    std::istringstream OneLine(Line);
    if (!serveStream(Svc, OneLine, St))
      SawShutdown = true;
  }
  // Every request admitted on THIS stream replies before the stream
  // dies; other connections' work is not waited on here.
  St->waitIdle();
  std::fclose(OutF);
  std::fclose(InF);
  Reg.remove(Conn);
  if (SawShutdown) {
    Stop.store(true);
    Reg.stopAll();
    ::shutdown(ListenFd, SHUT_RDWR); // wake the blocked accept()
  }
}

int serveSocket(CompileService &Svc, const std::string &Path) {
  int Listen = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (Listen < 0) {
    std::perror("matcoald: socket");
    return 1;
  }
  sockaddr_un Addr{};
  Addr.sun_family = AF_UNIX;
  if (Path.size() >= sizeof(Addr.sun_path)) {
    std::fprintf(stderr, "matcoald: socket path too long: %s\n",
                 Path.c_str());
    ::close(Listen);
    return 2;
  }
  std::strncpy(Addr.sun_path, Path.c_str(), sizeof(Addr.sun_path) - 1);
  ::unlink(Path.c_str());
  if (::bind(Listen, reinterpret_cast<sockaddr *>(&Addr), sizeof(Addr)) < 0 ||
      ::listen(Listen, 8) < 0) {
    std::perror("matcoald: bind/listen");
    ::close(Listen);
    return 1;
  }
  std::fprintf(stderr, "matcoald: listening on %s\n", Path.c_str());

  // Concurrent connections: one reader thread per accepted client, all
  // feeding the one bounded queue / worker pool (backpressure still
  // sheds load at the door, per stream).
  std::atomic<bool> Stop{false};
  ConnRegistry Reg;
  std::vector<std::thread> Readers;
  while (!Stop.load()) {
    int Conn = ::accept(Listen, nullptr, nullptr);
    if (Conn < 0) {
      if (errno == EINTR)
        continue;
      if (!Stop.load())
        std::perror("matcoald: accept");
      break;
    }
    if (!Reg.add(Conn)) { // raced a shutdown request
      ::close(Conn);
      break;
    }
    Readers.emplace_back([&Svc, Conn, &Stop, Listen, &Reg] {
      serveConnection(Svc, Conn, Stop, Listen, Reg);
    });
  }
  for (std::thread &T : Readers)
    T.join();
  ::close(Listen);
  ::unlink(Path.c_str());
  return 0;
}

bool parseCount(const char *Arg, const char *Prefix, std::int64_t &Out) {
  size_t L = std::strlen(Prefix);
  if (std::strncmp(Arg, Prefix, L) != 0)
    return false;
  char *End = nullptr;
  Out = std::strtoll(Arg + L, &End, 10);
  if (!End || *End != '\0' || Out < 0) {
    std::fprintf(stderr, "matcoald: %s needs a non-negative integer\n",
                 Prefix);
    std::exit(2);
  }
  return true;
}

} // namespace

/// Writes \p Text to \p Path (whole-file, truncating). A failure is a
/// loud stderr complaint, not a crash: the daemon already served its
/// requests and losing the trace must not change its exit status.
void writeFileOrWarn(const std::string &Path, const std::string &Text,
                     const char *What) {
  FILE *F = std::fopen(Path.c_str(), "w");
  if (!F) {
    std::fprintf(stderr, "matcoald: cannot write %s to %s: %s\n", What,
                 Path.c_str(), std::strerror(errno));
    return;
  }
  std::fputs(Text.c_str(), F);
  std::fclose(F);
}

int main(int Argc, char **Argv) {
  ServiceConfig Cfg;
  std::string SocketPath;
  std::string TraceOut;
  std::string FlightOut;
  for (int I = 1; I < Argc; ++I) {
    std::int64_t N = 0;
    if (parseCount(Argv[I], "--workers=", N)) {
      Cfg.Workers = static_cast<unsigned>(N);
    } else if (parseCount(Argv[I], "--queue=", N)) {
      Cfg.QueueCap = static_cast<std::size_t>(N);
    } else if (parseCount(Argv[I], "--deadline-ms=", N)) {
      Cfg.DefaultDeadlineMs = N;
    } else if (parseCount(Argv[I], "--retry-after-ms=", N)) {
      Cfg.RetryAfterMs = N;
    } else if (!std::strncmp(Argv[I], "--cache-dir=", 12)) {
      Cfg.CacheDir = Argv[I] + 12;
      if (Cfg.CacheDir.empty()) {
        std::fprintf(stderr, "matcoald: --cache-dir needs a directory\n");
        return 2;
      }
    } else if (!std::strncmp(Argv[I], "--socket=", 9)) {
      SocketPath = Argv[I] + 9;
    } else if (!std::strncmp(Argv[I], "--trace-out=", 12)) {
      TraceOut = Argv[I] + 12;
      if (TraceOut.empty()) {
        std::fprintf(stderr, "matcoald: --trace-out needs a file\n");
        return 2;
      }
    } else if (!std::strncmp(Argv[I], "--flight-dump=", 14)) {
      FlightOut = Argv[I] + 14;
      if (FlightOut.empty()) {
        std::fprintf(stderr, "matcoald: --flight-dump needs a file\n");
        return 2;
      }
    } else if (!std::strcmp(Argv[I], "--help") ||
               !std::strcmp(Argv[I], "-h")) {
      usage(Argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "matcoald: unknown option %s\n", Argv[I]);
      usage(Argv[0]);
      return 2;
    }
  }
  if (Cfg.Workers == 0 || Cfg.QueueCap == 0) {
    std::fprintf(stderr,
                 "matcoald: --workers and --queue must be at least 1\n");
    return 2;
  }

  // A server-wide MATCOAL_FAULT would silently poison every request;
  // validate it here so a typo is a startup error, not a mystery. (The
  // driver repeats this check per compile; failing fast is friendlier.)
  if (const char *Env = std::getenv("MATCOAL_FAULT")) {
    if (!isValidFaultName(Env)) {
      std::fprintf(stderr,
                   "matcoald: unrecognized MATCOAL_FAULT stage '%s' (valid "
                   "stages: %s, or 'none')\n",
                   Env, validCompileStageNames());
      return 2;
    }
    if (*Env && std::strcmp(Env, "none") != 0)
      std::fprintf(stderr,
                   "matcoald: MATCOAL_FAULT=%s applies to every request\n",
                   Env);
  }

  // A client that vanishes mid-reply must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  Cfg.KeepSpans = !TraceOut.empty();
  CompileService Svc(Cfg);
  if (!SocketPath.empty()) {
    int RC = serveSocket(Svc, SocketPath);
    Svc.shutdown();
    if (!TraceOut.empty())
      writeFileOrWarn(TraceOut, Svc.chromeTraceJson(), "merged trace");
    if (!FlightOut.empty())
      writeFileOrWarn(FlightOut, Svc.flightDumpJson(), "flight dump");
    return RC;
  }
  auto St = std::make_shared<StreamState>(stdout);
  serveStream(Svc, std::cin, St);
  // EOF on stdin is an implicit shutdown: drain, then stop.
  Svc.drain();
  St->waitIdle();
  Svc.shutdown();
  if (!TraceOut.empty())
    writeFileOrWarn(TraceOut, Svc.chromeTraceJson(), "merged trace");
  if (!FlightOut.empty())
    writeFileOrWarn(FlightOut, Svc.flightDumpJson(), "flight dump");
  return 0;
}
