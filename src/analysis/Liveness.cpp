//===- Liveness.cpp -------------------------------------------------------===//

#include "analysis/Liveness.h"

#include <algorithm>
#include <cassert>

using namespace matcoal;

LivenessInfo matcoal::computeLiveness(const Function &F) {
  size_t NB = F.Blocks.size();
  unsigned NV = F.numVars();
  LivenessInfo Info;
  Info.LiveIn.assign(NB, BitVector(NV));
  Info.LiveOut.assign(NB, BitVector(NV));

  // Per block: upward-exposed uses and definitions, phis excluded (their
  // uses belong to predecessor edges; their defs kill at the block head).
  std::vector<BitVector> UEVar(NB, BitVector(NV));
  std::vector<BitVector> Kill(NB, BitVector(NV));
  // PhiUse[P]: variables used by successor phis along the edge from P.
  std::vector<BitVector> PhiUse(NB, BitVector(NV));

  for (const auto &BB : F.Blocks) {
    BitVector Defined(NV);
    for (const Instr &I : BB->Instrs) {
      if (I.Op == Opcode::Phi) {
        for (size_t PI = 0; PI < I.Operands.size(); ++PI) {
          assert(PI < BB->Preds.size());
          PhiUse[BB->Preds[PI]].set(I.Operands[PI]);
        }
        for (VarId R : I.Results) {
          Kill[BB->Id].set(R);
          Defined.set(R);
        }
        continue;
      }
      for (VarId U : I.Operands)
        if (!Defined.test(U))
          UEVar[BB->Id].set(U);
      for (VarId R : I.Results) {
        Kill[BB->Id].set(R);
        Defined.set(R);
      }
    }
  }

  // Iterate to a fixed point, visiting blocks in postorder (reverse RPO)
  // for fast convergence of the backward problem.
  std::vector<BlockId> Order = F.reversePostOrder();
  std::reverse(Order.begin(), Order.end());
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Order) {
      BitVector Out(NV);
      Out.unionWith(PhiUse[B]);
      for (BlockId S : F.block(B)->successors())
        Out.unionWith(Info.LiveIn[S]);
      BitVector In = Out;
      In.subtract(Kill[B]);
      In.unionWith(UEVar[B]);
      if (!(Out == Info.LiveOut[B]) || !(In == Info.LiveIn[B])) {
        Info.LiveOut[B] = std::move(Out);
        Info.LiveIn[B] = std::move(In);
        Changed = true;
      }
    }
  }
  return Info;
}

AvailabilityInfo matcoal::computeAvailability(const Function &F) {
  size_t NB = F.Blocks.size();
  unsigned NV = F.numVars();
  AvailabilityInfo Info;
  Info.AvailIn.assign(NB, BitVector(NV));
  Info.AvailOut.assign(NB, BitVector(NV));

  std::vector<BitVector> Defs(NB, BitVector(NV));
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      for (VarId R : I.Results)
        Defs[BB->Id].set(R);

  BitVector EntryIn(NV);
  for (VarId P : F.Params)
    EntryIn.set(P);

  std::vector<BlockId> Order = F.reversePostOrder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : Order) {
      BitVector In(NV);
      if (B == 0)
        In = EntryIn;
      for (BlockId P : F.block(B)->Preds)
        In.unionWith(Info.AvailOut[P]);
      BitVector Out = In;
      Out.unionWith(Defs[B]);
      if (!(In == Info.AvailIn[B]) || !(Out == Info.AvailOut[B])) {
        Info.AvailIn[B] = std::move(In);
        Info.AvailOut[B] = std::move(Out);
        Changed = true;
      }
    }
  }
  return Info;
}
