//===- RangeAnalysis.h - Interval + symbolic shape analysis -----*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A forward, interprocedural dataflow analysis over the SSA IR that
/// computes, per SSA value, a numeric interval bounding every element of
/// the value plus per-dimension extent bounds, with widening at loop
/// headers (join counters) and narrowing from branch conditions (facts
/// attached to single-predecessor branch successors, applied through the
/// dominator tree). The extent bounds are additionally published as
/// bounds on the interned SymExpr shape algebra, so symbolic extents
/// appearing in inferred types (e.g. "n + 1" where n comes from bounded
/// run-time data) become evaluable.
///
/// Consumers:
///  * gctd/StoragePlan: staticSizeBytes() makes sizes with bounded
///    symbolic extents statically estimable, promoting heap groups to
///    fixed stack slots (capped at kPromoteCapBytes per variable).
///  * gctd/Interference: provablyScalar()/provablyVector() discharge
///    operator-semantics edges the bare types cannot.
///  * codegen/CEmitter: valueAt() discharges bounds/resize checks.
///  * lint: every check reads the same facts.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_ANALYSIS_RANGEANALYSIS_H
#define MATCOAL_ANALYSIS_RANGEANALYSIS_H

#include "analysis/Dominators.h"
#include "ir/IR.h"
#include "observe/Observe.h"
#include "support/SymExpr.h"
#include "typeinf/TypeInference.h"

#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace matcoal {

/// A closed numeric interval [Lo, Hi]; Lo > Hi encodes the empty
/// (unreached/bottom) interval, +-infinity encode missing bounds.
struct Interval {
  double Lo = -std::numeric_limits<double>::infinity();
  double Hi = std::numeric_limits<double>::infinity();

  static Interval top() { return {}; }
  static Interval bottom() {
    return {std::numeric_limits<double>::infinity(),
            -std::numeric_limits<double>::infinity()};
  }
  static Interval point(double V) { return {V, V}; }
  static Interval of(double L, double H) { return {L, H}; }

  bool isBottom() const { return Lo > Hi; }
  bool isTop() const {
    return Lo == -std::numeric_limits<double>::infinity() &&
           Hi == std::numeric_limits<double>::infinity();
  }
  bool isPoint() const { return Lo == Hi; }
  bool boundedAbove() const {
    return Hi < std::numeric_limits<double>::infinity();
  }
  bool boundedBelow() const {
    return Lo > -std::numeric_limits<double>::infinity();
  }

  bool operator==(const Interval &O) const {
    return (isBottom() && O.isBottom()) || (Lo == O.Lo && Hi == O.Hi);
  }
  bool operator!=(const Interval &O) const { return !(*this == O); }

  Interval join(const Interval &O) const {
    if (isBottom())
      return O;
    if (O.isBottom())
      return *this;
    return {std::min(Lo, O.Lo), std::max(Hi, O.Hi)};
  }
  Interval meet(const Interval &O) const {
    if (isBottom() || O.isBottom())
      return bottom();
    Interval R{std::max(Lo, O.Lo), std::min(Hi, O.Hi)};
    return R.Lo > R.Hi ? bottom() : R;
  }

  std::string str() const;
};

/// The per-SSA-value lattice element: a bound on every element of the
/// value, plus per-dimension extent bounds (empty = unknown shape).
struct VarRange {
  bool Defined = false;        ///< false = bottom (not yet reached).
  Interval Val = Interval::bottom();
  std::vector<Interval> Dims;  ///< Empty = unknown rank/extents.

  static VarRange bottom() { return {}; }
  bool operator==(const VarRange &O) const {
    return Defined == O.Defined && Val == O.Val && Dims == O.Dims;
  }
};

/// The module-wide analysis result. Construct once after type inference
/// (while every function is still in SSA form); queries stay valid after
/// SSA inversion for blocks that existed at analysis time (inversion only
/// appends blocks and preserves VarIds).
class RangeAnalysis {
public:
  /// Per-variable stack promotion cap for range-justified sizes, so a
  /// bounded-but-large array cannot blow the frame.
  static constexpr std::int64_t kPromoteCapBytes = 256 * 1024;

  /// Runs the interprocedural fixpoint over \p M. A non-null \p Obs
  /// receives the "ranges" pass timing plus the ranges.* counters
  /// (functions analyzed, widenings applied, branch facts collected,
  /// symbolic bounds published).
  RangeAnalysis(const Module &M, const TypeInference &TI,
                const std::string &Entry = "main",
                Observer *Obs = nullptr);

  /// The flow-insensitive range of V (the join over all program points).
  const VarRange &rangeOf(const Function &F, VarId V) const;

  /// V's value interval at entry to block B: rangeOf refined by every
  /// branch fact attached to a block dominating B.
  Interval valueAt(const Function &F, BlockId B, VarId V) const;

  /// Bound on a symbolic shape expression, evaluated through the bounds
  /// published for its interned subterms.
  Interval boundOf(SymExpr E) const;

  /// Upper bound on numel(V), from whichever of the dimension-range and
  /// symbolic-extent paths is tighter; unbounded when neither is.
  Interval numelBound(const Function &F, VarId V) const;

  /// Range-justified static storage size in bytes: the worst-case size
  /// when every extent is bounded (and the result is within
  /// kPromoteCapBytes), the exact size for known shapes, -1 otherwise.
  /// This is the single definition both the GCTD decomposer and the plan
  /// verifier use, so a promotion the planner makes is exactly what an
  /// independent re-derivation accepts.
  std::int64_t staticSizeBytes(const Function &F, VarId V) const;

  /// Provably a 1x1 value / provably has some unit dimension (rank 2).
  bool provablyScalar(const Function &F, VarId V) const;
  bool provablyScalarOrVector(const Function &F, VarId V) const;

  /// True when the scalar subscript \p Sub, used at block B against
  /// dimension \p Dim of \p Base (rank \p Rank subscripts total), is
  /// provably within bounds (1 <= sub <= extent) on every execution.
  bool subscriptInBounds(const Function &F, BlockId B, VarId Base,
                         VarId Sub, unsigned Dim, unsigned Rank) const;

  /// Analysis-wide statistics, for the bench harness.
  unsigned numBoundedSyms() const {
    return static_cast<unsigned>(SymBounds.size());
  }

private:
  struct Fact {
    VarId V = NoVar;      ///< The variable the fact constrains.
    VarId Other = NoVar;  ///< The comparison operand.
    enum Rel { LE, GE, EQ } R = LE;
  };
  struct FuncState {
    const Function *F = nullptr;
    std::vector<VarRange> Ranges;
    std::vector<std::vector<Fact>> Facts; ///< Indexed by BlockId.
    std::unique_ptr<DominatorTree> DT;
    std::vector<BlockId> RPO;
  };
  struct Summary {
    std::vector<VarRange> Params, Outputs;
  };

  void collectFacts(FuncState &S);
  bool analyzeFunction(FuncState &S);
  /// Joins \p New into Ranges[V], widening after repeated growth.
  bool updateRange(FuncState &S, VarId V, VarRange New);
  /// Operand range refined by the facts visible in block B.
  VarRange rangeIn(const FuncState &S, BlockId B, VarId V) const;
  Interval applyFacts(const FuncState &S, BlockId B, VarId V,
                      Interval Cur) const;
  std::vector<VarRange> transfer(FuncState &S, BlockId B, const Instr &I);
  VarRange builtinTransfer(FuncState &S, BlockId B, const Instr &I,
                           const std::vector<VarRange> &Ops);
  void publishSymBounds();
  Interval boundOfImpl(SymExpr E, unsigned Depth) const;

  const Module &M;
  const TypeInference &TI;
  Observer *Obs = nullptr;
  std::map<const Function *, FuncState> States;
  std::map<const Function *, Summary> Summaries;
  /// Set when a transfer function updates another function's parameter
  /// summary; forces another module round.
  bool ModuleChanged = false;
  std::map<std::pair<const Function *, VarId>, unsigned> JoinCount;
  std::map<SymExpr, Interval> SymBounds;
};

} // namespace matcoal

#endif // MATCOAL_ANALYSIS_RANGEANALYSIS_H
