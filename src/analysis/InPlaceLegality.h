//===- InPlaceLegality.h - The shared in-place legality oracle --*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The single decision point for every destructive-storage question the
/// execution tiers used to answer privately: may this op write its result
/// over an operand's storage, may this fusion tree elide an intermediate,
/// may this subsasgn update in place, may a dying operand's buffer be
/// stolen. PR 2 noted the drift risk of the VM and the C emitter each
/// keeping their own copy of these predicates; this oracle is the fix --
/// both tiers ask here, the old predicates are gone, and a regression
/// test asserts the tiers agree on every verdict.
///
/// Division of labor: the oracle owns the *static* halves (opcode
/// families, type/range scalar facts, def/use admission, slot aliasing
/// through a SlotView); the VM keeps the *dynamic* halves (actual shapes,
/// complexness of runtime values, buffer capacities) as local value
/// checks layered on top of an oracle verdict. That split keeps verdicts
/// comparable across tiers: the static verdict for a site is
/// tier-independent by construction.
///
/// Every distinct (site, query) pair is decided once, memoized,
/// journaled, counted (`analysis.alias.queries`,
/// `analysis.inplace.proven`), and remarked (pass "legality",
/// InPlaceProven/InPlaceRefused) -- so tests can compare the decision
/// streams of two tiers and `--remarks=legality` shows a human every
/// proof and refusal.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_ANALYSIS_INPLACELEGALITY_H
#define MATCOAL_ANALYSIS_INPLACELEGALITY_H

#include "analysis/AliasAnalysis.h"
#include "analysis/RangeAnalysis.h"
#include "ir/IR.h"
#include "observe/Observe.h"
#include "typeinf/TypeInference.h"

#include <functional>
#include <map>
#include <string>
#include <vector>

namespace matcoal {

/// The analysis layer cannot see gctd's StoragePlan (layering: gctd links
/// against analysis, not the reverse), so slot identity is injected as a
/// predicate. The VM wraps StoragePlan::sameSlot; the C emitter wraps
/// slot-string equality (identical on planned variables, and also equates
/// an unplanned variable with itself, matching its historical checks).
struct SlotView {
  std::function<bool(VarId, VarId)> SameSlot;
  /// Identity of the plan behind the predicate (any stable address, e.g.
  /// the StoragePlan). Slot-dependent verdicts are memoized per tag: one
  /// compile legitimately holds several plans for the same function (the
  /// coalesced plan and the no-coalesce identity plan), and a verdict
  /// cached under one must never answer for the other.
  const void *Tag = nullptr;

  bool same(VarId U, VarId V) const { return SameSlot && SameSlot(U, V); }
};

/// The oracle. Construct once per compile (the driver owns it alongside
/// the analyses); both tiers and the plan auditor query it.
class InPlaceLegality {
public:
  /// One journaled verdict, for the cross-tier agreement test.
  struct Decision {
    std::string Func;
    unsigned Line = 0;  ///< Source line of the site (0 = unknown).
    Opcode Op = Opcode::Copy;
    std::string Query;  ///< "destructive", "fusion-candidate", ...
    bool Proven = false;
  };

  InPlaceLegality(const TypeInference &TI, const RangeAnalysis *RA = nullptr,
                  const AliasAnalysis *AA = nullptr, Observer *Obs = nullptr);

  // --- Static policy tables: the single home of the opcode/builtin sets
  // the VM, the emitter, and the interference graph used to duplicate.

  /// Elementwise ops worth executing destructively (the VM's destructive
  /// kernel family; also exactly the emitter's elementwise fusion set).
  static bool destructiveOp(Opcode Op);
  /// Builtins that only read their array arguments -- never alias an
  /// argument into a result's storage -- so the interference graph needs
  /// no operator-semantics edges for them.
  static bool builtinReadsOnly(const std::string &Name);
  /// Instructions a fusion run may span without breaking (foldable
  /// real-number constants).
  static bool fusionTransparent(const Instr &I);
  /// Unary elementwise builtins a fusion tree may absorb (each maps onto
  /// one C kernel applied per element, bit-identical to op_map's).
  static bool fusibleUnaryBuiltin(const std::string &Name);
  /// Reduction builtins a fusion tree may ROOT (never join as an internal
  /// member: their result is a scalar, not an elementwise value).
  static bool reductionBuiltin(const std::string &Name);

  // --- Per-site verdicts (memoized, journaled, counted).

  /// The static half of the VM's destructive-execution gate: a two-operand
  /// single-result op of the destructive family. The VM layers its runtime
  /// value checks (real, non-char, conforming-or-scalar) on top.
  bool destructiveLegal(const Function &F, const Instr &I) const;
  /// May operand \p OperandIdx of \p I donate its buffer to the result
  /// when it dies at this instruction? (The dynamic death itself is the
  /// VM's to establish.)
  bool stealLegal(const Function &F, const Instr &I,
                  unsigned OperandIdx) const;
  /// Subsasgn updates the base in place iff the plan binds result and base
  /// to one slot (the paper's section 2.3.3.1 formation).
  bool subsasgnInPlace(const Function &F, const Instr &I,
                       const SlotView &Slots) const;
  /// May \p I anchor or join a fused elementwise region?
  bool fusionCandidate(const Function &F, const Instr &I) const;
  /// May \p I (a one-operand reduction builtin: sum/prod/mean/min/max)
  /// root a fused region, folding its operand's elementwise producer
  /// chain into the accumulation loop? The loop stays serial and
  /// accumulates in the runtime's exact linear order, so the verdict is
  /// purely about legality, never about reassociation.
  bool reductionRoot(const Function &F, const Instr &I) const;
  /// May V's store be elided inside a fusion tree? Exactly one def and
  /// one use (both then necessarily inside the tree), so no later read
  /// exists and no live value can observe its slot.
  bool elidableIntermediate(const Function &F, VarId V) const;
  /// Does the fused tree's destination slot alias any leaf slot? (Decides
  /// whether `restrict` is sound on the destination pointer.)
  bool destMayAliasLeaf(const Function &F, const Instr &Root,
                        const std::vector<VarId> &LeafVars,
                        const SlotView &Slots) const;
  /// Does \p I (a non-member between a tree's first member and its root)
  /// define into a slot some leaf reads? Rejects the region: the fused
  /// loop reads every leaf at the root's position.
  bool clobbersLeaf(const Function &F, const Instr &I,
                    const std::vector<VarId> &LeafVars,
                    const SlotView &Slots) const;
  /// The shared code-selection scalar fact: statically 1x1 by type, or
  /// proven 1x1 by the range analysis. Must agree with the interference
  /// graph's operator-semantics test (it does: same inputs).
  bool staticScalar(const Function &F, VarId V) const;

  /// The decision journal, in query order.
  const std::vector<Decision> &journal() const { return Journal; }

  /// Drops per-function caches after SSA inversion rewrites \p F (sites
  /// are re-decided on the inverted shape).
  void refresh(const Function &F);

  const AliasAnalysis *aliasAnalysis() const { return AA; }

private:
  bool decide(const Function &F, const void *Site, const char *Query,
              Opcode Op, unsigned Line, bool Verdict, bool Remarkable,
              const void *Ctx = nullptr) const;

  const TypeInference &TI;
  const RangeAnalysis *RA = nullptr;
  const AliasAnalysis *AA = nullptr;
  Observer *Obs = nullptr;

  /// (function, site, context, query) -> verdict. The site pointer is the
  /// Instr for instruction queries and the VarId (as an offset key) for
  /// variable queries; the context pointer is the SlotView tag for
  /// slot-dependent queries (null for plan-independent ones), so one
  /// site's verdict under the coalesced plan cannot leak into the
  /// identity-plan run.
  mutable std::map<
      std::tuple<const Function *, const void *, const void *, std::string>,
      bool>
      Memo;
  mutable std::vector<Decision> Journal;
};

} // namespace matcoal

#endif // MATCOAL_ANALYSIS_INPLACELEGALITY_H
