//===- Liveness.h - Live and available variable analyses --------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The two dataflow facts interference is built from (paper section 2): a
/// variable is *live* at s if some path from s reaches a use before a
/// redefinition, and *available* at s if some path from a definition
/// reaches s. Both are may-analyses, exactly as the paper defines them.
/// Phi uses are attributed to the corresponding predecessor edge.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_ANALYSIS_LIVENESS_H
#define MATCOAL_ANALYSIS_LIVENESS_H

#include "ir/IR.h"
#include "support/BitVector.h"

#include <vector>

namespace matcoal {

/// Per-block live-variable sets (bit index == VarId).
struct LivenessInfo {
  std::vector<BitVector> LiveIn;
  std::vector<BitVector> LiveOut;
};

/// Backward may-analysis over the CFG. Works on both pre-SSA and SSA form;
/// in SSA form a phi's operands are treated as uses at the end of the
/// matching predecessor and its result as a definition at the block head.
LivenessInfo computeLiveness(const Function &F);

/// Per-block available-variable sets (a definition reaches the point along
/// some path). Parameters are available on entry.
struct AvailabilityInfo {
  std::vector<BitVector> AvailIn;
  std::vector<BitVector> AvailOut;
};

/// Forward may-analysis over the CFG.
AvailabilityInfo computeAvailability(const Function &F);

} // namespace matcoal

#endif // MATCOAL_ANALYSIS_LIVENESS_H
