//===- InPlaceLegality.cpp - The shared in-place legality oracle ----------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "analysis/InPlaceLegality.h"

#include <set>

using namespace matcoal;

InPlaceLegality::InPlaceLegality(const TypeInference &TI,
                                 const RangeAnalysis *RA,
                                 const AliasAnalysis *AA, Observer *Obs)
    : TI(TI), RA(RA), AA(AA), Obs(Obs) {
  // Seed the pinned counters so the stats key set does not depend on
  // which query sites the input happens to exercise.
  count(Obs, "analysis.alias.queries", 0);
  count(Obs, "analysis.inplace.proven", 0);
}

bool InPlaceLegality::destructiveOp(Opcode Op) {
  return Op == Opcode::Add || Op == Opcode::Sub || Op == Opcode::ElemMul ||
         Op == Opcode::ElemRDiv;
}

bool InPlaceLegality::builtinReadsOnly(const std::string &Name) {
  // The single home of the set the interference graph (operator-semantics
  // edges) consults: builtins that never need their result kept apart
  // from an array argument's storage.
  static const std::set<std::string> ReadsOnly = {
      // Elementwise (hoisted scalars, forward loops).
      "abs", "sqrt", "exp", "log", "log2", "log10", "sin", "cos", "tan",
      "sinh", "cosh", "tanh", "asin", "acos", "atan", "atan2", "floor",
      "ceil", "round", "fix", "sign", "real", "imag", "conj", "angle",
      "mod", "rem", "hypot", "double", "logical",
      // Write-only constructors (dimension args are scalars).
      "zeros", "ones", "eye", "rand", "randn", "linspace",
      // Reductions compute into a register before storing.
      "min", "max", "sum", "prod", "mean", "norm", "dot",
      // Metadata-only queries.
      "size", "numel", "length", "isempty",
      // Effects with scalar results.
      "disp", "fprintf", "error", "tic", "toc", "__forcond", "__switcheq",
      "trace", "strcmp", "cumsum",
      "pi", "eps", "Inf", "inf", "NaN", "nan", "true", "false", "i", "j",
  };
  return ReadsOnly.count(Name) != 0;
}

bool InPlaceLegality::fusionTransparent(const Instr &I) {
  // A genuinely complex literal (NumIm != 0) must not fold: the unfused
  // emission traps in mcrt_const_complex, and folding only the real part
  // would silently compute past that error.
  return I.Op == Opcode::ConstNum && I.NumIm == 0;
}

bool InPlaceLegality::fusibleUnaryBuiltin(const std::string &Name) {
  // Exactly the builtins whose op_map kernel is one pure double->double
  // function the fused loop can apply inline (mcrt exports the faulting
  // ones -- sqrt/log of a negative escape to complex -- so the fused and
  // unfused arms share one fault site).
  static const std::set<std::string> Fusible = {
      "abs", "sqrt", "exp",  "log",   "sin", "cos",
      "tan", "floor", "ceil", "round", "fix", "sign",
  };
  return Fusible.count(Name) != 0;
}

bool InPlaceLegality::reductionBuiltin(const std::string &Name) {
  return Name == "sum" || Name == "prod" || Name == "mean" ||
         Name == "min" || Name == "max";
}

bool InPlaceLegality::staticScalar(const Function &F, VarId V) const {
  if (!TI.hasTypesFor(F))
    return false;
  return TI.typeOf(F, V).isScalar() || (RA && RA->provablyScalar(F, V));
}

bool InPlaceLegality::decide(const Function &F, const void *Site,
                             const char *Query, Opcode Op, unsigned Line,
                             bool Verdict, bool Remarkable,
                             const void *Ctx) const {
  auto Key = std::make_tuple(&F, Site, Ctx, std::string(Query));
  auto It = Memo.find(Key);
  if (It != Memo.end())
    return It->second;
  Memo.emplace(std::move(Key), Verdict);
  count(Obs, "analysis.alias.queries");
  if (Verdict)
    count(Obs, "analysis.inplace.proven");
  Journal.push_back({F.Name, Line, Op, Query, Verdict});
  if (Remarkable) {
    SourceLoc Loc;
    Loc.Line = Line;
    remarkTo(Obs, "legality",
             Verdict ? RemarkKind::InPlaceProven : RemarkKind::InPlaceRefused,
             F.Name,
             std::string(Query) + (Verdict ? " proven" : " refused") +
                 " for " + opcodeName(Op),
             {{"query", Query}, {"op", opcodeName(Op)}}, Loc);
  }
  return Verdict;
}

bool InPlaceLegality::destructiveLegal(const Function &F,
                                       const Instr &I) const {
  bool V = destructiveOp(I.Op) && I.Results.size() == 1 &&
           I.Operands.size() == 2;
  return decide(F, &I, "destructive", I.Op, I.Loc.Line, V,
                /*Remarkable=*/destructiveOp(I.Op));
}

bool InPlaceLegality::stealLegal(const Function &F, const Instr &I,
                                 unsigned OperandIdx) const {
  // The dynamic precondition (the operand's value dies at this
  // instruction) is the caller's; statically a steal is exactly as legal
  // as the destructive kernel itself -- once the operand is dead nothing
  // can observe its buffer (outputs are read at the Ret, so they are
  // never dead at a binary op, and a value that merely *fed* an escaping
  // copy donated its bytes before this point).
  const char *Query = OperandIdx == 0 ? "steal-lhs" : "steal-rhs";
  bool V = destructiveOp(I.Op) && I.Results.size() == 1 &&
           I.Operands.size() == 2 && OperandIdx < I.Operands.size();
  return decide(F, &I, Query, I.Op, I.Loc.Line, V,
                /*Remarkable=*/destructiveOp(I.Op));
}

bool InPlaceLegality::subsasgnInPlace(const Function &F, const Instr &I,
                                      const SlotView &Slots) const {
  bool V = I.Op == Opcode::Subsasgn && I.Results.size() == 1 &&
           !I.Operands.empty() && Slots.same(I.result(), I.Operands[0]);
  return decide(F, &I, "subsasgn-inplace", I.Op, I.Loc.Line, V,
                /*Remarkable=*/I.Op == Opcode::Subsasgn, Slots.Tag);
}

bool InPlaceLegality::fusionCandidate(const Function &F,
                                      const Instr &I) const {
  auto Verdict = [&] {
    // Unary elementwise members: negation and the whitelisted map
    // builtins, one array in, one array out, never characters (a char
    // operand reaches op_map as codes; keep the fused arm out of that
    // corner).
    if (I.Op == Opcode::Neg)
      return I.Results.size() == 1 && I.Operands.size() == 1;
    if (I.Op == Opcode::Builtin)
      return I.Results.size() == 1 && I.Operands.size() == 1 &&
             fusibleUnaryBuiltin(I.StrVal) && TI.hasTypesFor(F) &&
             TI.typeOf(F, I.Operands[0]).IT != IntrinsicType::Char;
    if (I.Results.size() != 1 || I.Operands.size() != 2)
      return false;
    switch (I.Op) {
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::ElemMul:
    case Opcode::ElemRDiv:
      break;
    case Opcode::MatMul:
      // Scalar-operand multiplies are elementwise (the emitter's code
      // selection routes them to the elementwise form).
      if (!staticScalar(F, I.Operands[0]) && !staticScalar(F, I.Operands[1]))
        return false;
      break;
    default:
      return false;
    }
    // A maybe-complex static type is no obstacle: the mcrt back end has
    // no complex representation -- every complex production point traps
    // -- so at run time these buffers only ever hold reals.
    return true;
  };
  bool Interesting = destructiveOp(I.Op) || I.Op == Opcode::MatMul;
  return decide(F, &I, "fusion-candidate", I.Op, I.Loc.Line, Verdict(),
                /*Remarkable=*/Interesting);
}

bool InPlaceLegality::reductionRoot(const Function &F, const Instr &I) const {
  auto Verdict = [&] {
    if (I.Op != Opcode::Builtin || I.Results.size() != 1 ||
        I.Operands.size() != 1 || !reductionBuiltin(I.StrVal))
      return false;
    // Character data reduces through the runtime (sum('ab') sums codes;
    // keep one code path for that corner), and min/max with an index
    // result never fuse (Results.size() == 1 above already holds).
    return TI.hasTypesFor(F) &&
           TI.typeOf(F, I.Operands[0]).IT != IntrinsicType::Char;
  };
  bool Interesting =
      I.Op == Opcode::Builtin && reductionBuiltin(I.StrVal);
  return decide(F, &I, "reduction-root", I.Op, I.Loc.Line, Verdict(),
                Interesting);
}

bool InPlaceLegality::elidableIntermediate(const Function &F,
                                           VarId V) const {
  // One def and one use, whole-function (params count an extra def, and
  // outputs an extra use at the Ret): the static proof that the value is
  // dead after its single in-tree read and that no live value can observe
  // its slot.
  unsigned Defs, Uses;
  if (AA) {
    Defs = AA->defCount(F, V);
    Uses = AA->useCount(F, V);
  } else {
    Defs = Uses = 0;
    for (const auto &BB : F.Blocks)
      for (const Instr &I : BB->Instrs) {
        for (VarId R : I.Results)
          Defs += R == V;
        for (VarId U : I.Operands)
          Uses += U == V;
      }
    for (VarId P : F.Params)
      Defs += P == V;
    for (VarId O : F.Outputs)
      Uses += O == V;
  }
  bool Verdict = Defs == 1 && Uses == 1;
  // Site key: the variable itself (VarIds are small non-negative ints;
  // biased so VarId 0 is distinct from a null pointer).
  const void *Site =
      reinterpret_cast<const void *>(static_cast<uintptr_t>(V) + 1);
  return decide(F, Site, "elide-intermediate", Opcode::Copy, 0, Verdict,
                /*Remarkable=*/false);
}

bool InPlaceLegality::destMayAliasLeaf(const Function &F, const Instr &Root,
                                       const std::vector<VarId> &LeafVars,
                                       const SlotView &Slots) const {
  bool V = false;
  for (VarId L : LeafVars)
    if (Slots.same(Root.result(), L)) {
      V = true;
      break;
    }
  return decide(F, &Root, "dest-aliases-leaf", Root.Op, Root.Loc.Line, V,
                /*Remarkable=*/true, Slots.Tag);
}

bool InPlaceLegality::clobbersLeaf(const Function &F, const Instr &I,
                                   const std::vector<VarId> &LeafVars,
                                   const SlotView &Slots) const {
  (void)F;
  // Not memoized: the same instruction can sit between different trees
  // with different leaf sets, so a per-site cache would be wrong. It is
  // also not journaled -- the answer is a property of (instr, tree), not
  // of the site alone, so the cross-tier journals would not line up.
  for (VarId R : I.Results)
    for (VarId L : LeafVars)
      if (Slots.same(R, L))
        return true;
  return false;
}

void InPlaceLegality::refresh(const Function &F) {
  for (auto It = Memo.begin(); It != Memo.end();) {
    if (std::get<0>(It->first) == &F)
      It = Memo.erase(It);
    else
      ++It;
  }
}
