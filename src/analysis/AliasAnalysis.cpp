//===- AliasAnalysis.cpp - May-alias, escape, and last-use facts ----------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "analysis/AliasAnalysis.h"

#include "analysis/Liveness.h"

#include <algorithm>

using namespace matcoal;

const std::vector<VarId> AliasAnalysis::EmptyDeaths;

AliasAnalysis::AliasAnalysis(const Module &M, const TypeInference &TI,
                             const std::string &Entry, Observer *Obs)
    : M(M), TI(TI), Obs(Obs) {
  (void)Entry; // Every function is analyzed; reachability does not help
               // a may-analysis whose summaries start optimistic.
  PassTimer T(Obs, "alias");
  for (const auto &F : M.Functions) {
    FuncState &S = States[F.get()];
    S.F = F.get();
    computeLocalFacts(S);
  }
  // Optimistic interprocedural fixpoint: summaries only grow (more
  // escapes, more alias edges, never fewer), so iteration terminates.
  bool Changed = true;
  unsigned Round = 0;
  while (Changed && Round++ < 16) {
    Changed = false;
    for (const auto &F : M.Functions)
      if (analyzeFunction(States[F.get()]))
        Changed = true;
  }
}

void AliasAnalysis::computeLocalFacts(FuncState &S) {
  const Function &F = *S.F;
  S.DefCount.assign(F.numVars(), 0);
  S.UseCount.assign(F.numVars(), 0);
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs) {
      for (VarId R : I.Results)
        ++S.DefCount[R];
      for (VarId U : I.Operands)
        ++S.UseCount[U];
    }
  // The call binds each parameter (one definition) and the return reads
  // each output (one use) -- the convention the emitter's fusion
  // admission has always used.
  for (VarId P : F.Params)
    ++S.DefCount[P];
  for (VarId O : F.Outputs)
    ++S.UseCount[O];

  // Death points, mirroring VM::buildInfo: a variable dies after the
  // instruction of its last use (or its definition, if never used).
  LivenessInfo Live = computeLiveness(F);
  S.Deaths.assign(F.Blocks.size(), {});
  for (const auto &BB : F.Blocks) {
    auto &BlockDeaths = S.Deaths[BB->Id];
    BlockDeaths.resize(BB->Instrs.size());
    BitVector LiveNow = Live.LiveOut[BB->Id];
    for (size_t Idx = BB->Instrs.size(); Idx-- > 0;) {
      const Instr &I = BB->Instrs[Idx];
      for (VarId R : I.Results)
        if (!LiveNow.test(R))
          BlockDeaths[Idx].push_back(R); // Dead definition.
      for (VarId R : I.Results)
        LiveNow.reset(R);
      for (VarId U : I.Operands)
        if (!LiveNow.test(U)) {
          BlockDeaths[Idx].push_back(U); // Last use.
          LiveNow.set(U);
        }
    }
  }
}

bool AliasAnalysis::analyzeFunction(FuncState &S) {
  const Function &F = *S.F;
  S.Origins.assign(F.numVars(), {});
  S.Escapes.assign(F.numVars(), false);

  for (VarId P : F.Params)
    S.Origins[P].insert(P);

  auto Union = [](std::set<VarId> &Into, const std::set<VarId> &From) {
    bool Grew = false;
    for (VarId R : From)
      Grew |= Into.insert(R).second;
    return Grew;
  };

  // Forward origin propagation to a fixpoint (phi operands defined in
  // loop latches need a second visit).
  std::vector<BlockId> RPO = F.reversePostOrder();
  bool Grew = true;
  while (Grew) {
    Grew = false;
    for (BlockId B : RPO) {
      for (const Instr &I : F.block(B)->Instrs) {
        switch (I.Op) {
        case Opcode::Copy:
        case Opcode::Phi:
          for (VarId U : I.Operands)
            Grew |= Union(S.Origins[I.result()], S.Origins[U]);
          break;
        case Opcode::Subsasgn:
          // The result may occupy the base's storage (in-place update)
          // or fresh storage (the copy path) -- a may-analysis keeps
          // both.
          Grew |= Union(S.Origins[I.result()], S.Origins[I.Operands[0]]);
          Grew |= S.Origins[I.result()].insert(I.result()).second;
          break;
        case Opcode::Call: {
          const Function *Callee = M.findFunction(I.StrVal);
          auto SIt = Summaries.find(I.StrVal);
          const Summary *Sum =
              SIt != Summaries.end() && SIt->second.Valid ? &SIt->second
                                                          : nullptr;
          for (size_t K = 0; K < I.Results.size(); ++K) {
            VarId R = I.Results[K];
            if (Sum && Callee && K < Sum->OutParamAlias.size()) {
              for (int PIdx : Sum->OutParamAlias[K])
                if (static_cast<size_t>(PIdx) < I.Operands.size())
                  Grew |= Union(S.Origins[R], S.Origins[I.Operands[PIdx]]);
              if (Sum->OutFresh[K])
                Grew |= S.Origins[R].insert(R).second;
            } else {
              // No summary yet (first round, recursion, unknown callee):
              // the output may reuse any argument's storage.
              for (VarId U : I.Operands)
                Grew |= Union(S.Origins[R], S.Origins[U]);
              Grew |= S.Origins[R].insert(R).second;
            }
          }
          break;
        }
        default:
          // Value producers mint fresh storage.
          for (VarId R : I.Results)
            Grew |= S.Origins[R].insert(R).second;
          break;
        }
      }
    }
  }

  // Escape: outputs escape; call arguments escape when the callee's
  // parameter does; close backward over storage-forwarding ops.
  for (VarId O : F.Outputs)
    S.Escapes[O] = true;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs) {
      if (I.Op != Opcode::Call)
        continue;
      auto SIt = Summaries.find(I.StrVal);
      const Summary *Sum =
          SIt != Summaries.end() && SIt->second.Valid ? &SIt->second : nullptr;
      for (size_t K = 0; K < I.Operands.size(); ++K) {
        bool ArgEscapes = !Sum || K >= Sum->ParamEscapes.size() ||
                          Sum->ParamEscapes[K];
        if (ArgEscapes)
          S.Escapes[I.Operands[K]] = true;
      }
    }
  bool EscGrew = true;
  while (EscGrew) {
    EscGrew = false;
    for (const auto &BB : F.Blocks)
      for (const Instr &I : BB->Instrs) {
        if (I.Results.empty() || !S.Escapes[I.Results[0]])
          continue;
        switch (I.Op) {
        case Opcode::Copy:
        case Opcode::Phi:
          for (VarId U : I.Operands)
            if (!S.Escapes[U]) {
              S.Escapes[U] = true;
              EscGrew = true;
            }
          break;
        case Opcode::Subsasgn:
          if (!S.Escapes[I.Operands[0]]) {
            S.Escapes[I.Operands[0]] = true;
            EscGrew = true;
          }
          break;
        default:
          break;
        }
      }
  }

  // Publish the summary; report whether it grew.
  Summary New;
  New.Valid = true;
  New.ParamEscapes.reserve(F.Params.size());
  for (VarId P : F.Params)
    New.ParamEscapes.push_back(S.Escapes[P]);
  New.OutParamAlias.resize(F.Outputs.size());
  New.OutFresh.assign(F.Outputs.size(), false);
  for (size_t K = 0; K < F.Outputs.size(); ++K) {
    for (VarId Root : S.Origins[F.Outputs[K]]) {
      auto PIt = std::find(F.Params.begin(), F.Params.end(), Root);
      if (PIt != F.Params.end())
        New.OutParamAlias[K].insert(
            static_cast<int>(PIt - F.Params.begin()));
      else
        New.OutFresh[K] = true;
    }
  }
  Summary &Old = Summaries[F.Name];
  bool Changed = !Old.Valid || Old.ParamEscapes != New.ParamEscapes ||
                 Old.OutParamAlias != New.OutParamAlias ||
                 Old.OutFresh != New.OutFresh;
  Old = std::move(New);
  return Changed;
}

const AliasAnalysis::FuncState *
AliasAnalysis::stateOf(const Function &F) const {
  auto It = States.find(&F);
  return It == States.end() ? nullptr : &It->second;
}

bool AliasAnalysis::mayAlias(const Function &F, VarId U, VarId V) const {
  if (U == V)
    return true;
  const FuncState *S = stateOf(F);
  if (!S || U < 0 || V < 0 || static_cast<size_t>(U) >= S->Origins.size() ||
      static_cast<size_t>(V) >= S->Origins.size())
    return true; // Unknown variables are conservatively aliased.
  const std::set<VarId> &A = S->Origins[U], &B = S->Origins[V];
  if (A.empty() || B.empty())
    return true; // Never reached by the transfer: no information.
  for (VarId R : A)
    if (B.count(R))
      return true;
  return false;
}

bool AliasAnalysis::escapes(const Function &F, VarId V) const {
  const FuncState *S = stateOf(F);
  if (!S || V < 0 || static_cast<size_t>(V) >= S->Escapes.size())
    return true;
  return S->Escapes[V];
}

bool AliasAnalysis::lastUseAt(const Function &F, BlockId B, unsigned Idx,
                              VarId V) const {
  const std::vector<VarId> &D = deathsAt(F, B, Idx);
  return std::find(D.begin(), D.end(), V) != D.end();
}

const std::vector<VarId> &AliasAnalysis::deathsAt(const Function &F,
                                                  BlockId B,
                                                  unsigned Idx) const {
  const FuncState *S = stateOf(F);
  if (!S || B < 0 || static_cast<size_t>(B) >= S->Deaths.size() ||
      Idx >= S->Deaths[B].size())
    return EmptyDeaths;
  return S->Deaths[B][Idx];
}

unsigned AliasAnalysis::defCount(const Function &F, VarId V) const {
  const FuncState *S = stateOf(F);
  if (!S || V < 0 || static_cast<size_t>(V) >= S->DefCount.size())
    return 0;
  return S->DefCount[V];
}

unsigned AliasAnalysis::useCount(const Function &F, VarId V) const {
  const FuncState *S = stateOf(F);
  if (!S || V < 0 || static_cast<size_t>(V) >= S->UseCount.size())
    return 0;
  return S->UseCount[V];
}

bool AliasAnalysis::paramEscapes(const Function &F, unsigned ParamIdx) const {
  auto It = Summaries.find(F.Name);
  if (It == Summaries.end() || !It->second.Valid ||
      ParamIdx >= It->second.ParamEscapes.size())
    return true;
  return It->second.ParamEscapes[ParamIdx];
}

bool AliasAnalysis::outputMayAliasParam(const Function &F, unsigned OutIdx,
                                        unsigned ParamIdx) const {
  auto It = Summaries.find(F.Name);
  if (It == Summaries.end() || !It->second.Valid ||
      OutIdx >= It->second.OutParamAlias.size())
    return true;
  return It->second.OutParamAlias[OutIdx].count(
             static_cast<int>(ParamIdx)) != 0;
}

void AliasAnalysis::refresh(const Function &F) {
  auto It = States.find(&F);
  if (It == States.end())
    return;
  // Inversion rewrote the CFG (phis became copies, blocks were appended,
  // swap temps were minted) but preserved VarIds; recompute everything
  // local on the current shape, keeping every other function's summary.
  computeLocalFacts(It->second);
  analyzeFunction(It->second);
}
