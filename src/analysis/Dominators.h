//===- Dominators.h - Dominator tree and dominance frontiers ----*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Cooper-Harvey-Kennedy iterative dominator computation plus dominance
/// frontiers, used by the SSA builder (Cytron et al., the paper's [12]).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_ANALYSIS_DOMINATORS_H
#define MATCOAL_ANALYSIS_DOMINATORS_H

#include "ir/IR.h"

#include <vector>

namespace matcoal {

/// Immediate dominators, dominator-tree children and dominance frontiers
/// for one function. Unreachable blocks get IDom == NoBlock and empty sets.
class DominatorTree {
public:
  explicit DominatorTree(const Function &F);

  BlockId idom(BlockId B) const { return IDoms[B]; }
  const std::vector<BlockId> &children(BlockId B) const {
    return Children[B];
  }
  const std::vector<BlockId> &frontier(BlockId B) const {
    return Frontiers[B];
  }
  /// True iff \p A dominates \p B (reflexive).
  bool dominates(BlockId A, BlockId B) const;
  bool isReachable(BlockId B) const {
    return B == 0 || IDoms[B] != NoBlock;
  }
  /// Reachable blocks in reverse postorder.
  const std::vector<BlockId> &rpo() const { return RPO; }

private:
  std::vector<BlockId> IDoms;
  std::vector<std::vector<BlockId>> Children;
  std::vector<std::vector<BlockId>> Frontiers;
  std::vector<BlockId> RPO;
  std::vector<int> RPOIndex; ///< -1 for unreachable blocks.
};

} // namespace matcoal

#endif // MATCOAL_ANALYSIS_DOMINATORS_H
