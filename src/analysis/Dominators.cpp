//===- Dominators.cpp -----------------------------------------------------===//

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>

using namespace matcoal;

DominatorTree::DominatorTree(const Function &F) {
  size_t N = F.Blocks.size();
  IDoms.assign(N, NoBlock);
  Children.assign(N, {});
  Frontiers.assign(N, {});
  RPOIndex.assign(N, -1);

  RPO = F.reversePostOrder();
  for (size_t I = 0; I < RPO.size(); ++I)
    RPOIndex[RPO[I]] = static_cast<int>(I);

  // Cooper-Harvey-Kennedy: iterate intersect() over RPO to a fixed point.
  auto Intersect = [&](BlockId A, BlockId B) {
    while (A != B) {
      while (RPOIndex[A] > RPOIndex[B])
        A = IDoms[A];
      while (RPOIndex[B] > RPOIndex[A])
        B = IDoms[B];
    }
    return A;
  };

  IDoms[0] = 0; // Sentinel: the entry is its own idom during iteration.
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : RPO) {
      if (B == 0)
        continue;
      BlockId NewIDom = NoBlock;
      for (BlockId P : F.block(B)->Preds) {
        if (RPOIndex[P] < 0 || IDoms[P] == NoBlock)
          continue; // Unreachable or unprocessed predecessor.
        NewIDom = NewIDom == NoBlock ? P : Intersect(P, NewIDom);
      }
      if (NewIDom != NoBlock && IDoms[B] != NewIDom) {
        IDoms[B] = NewIDom;
        Changed = true;
      }
    }
  }
  IDoms[0] = NoBlock; // The entry has no immediate dominator.

  for (BlockId B : RPO)
    if (B != 0 && IDoms[B] != NoBlock)
      Children[IDoms[B]].push_back(B);

  // Dominance frontiers (Cytron et al.): a block is in the frontier of
  // every dominator of a predecessor up to (but excluding) its own idom.
  // Single-pred blocks usually contribute nothing (the walk stops at the
  // pred immediately), but an edge back into the entry -- whose idom is
  // NoBlock -- must still be processed.
  for (BlockId B : RPO) {
    const BasicBlock *BB = F.block(B);
    if (BB->Preds.empty())
      continue;
    for (BlockId P : BB->Preds) {
      if (RPOIndex[P] < 0)
        continue;
      BlockId Runner = P;
      while (Runner != NoBlock && Runner != IDoms[B]) {
        auto &DF = Frontiers[Runner];
        if (std::find(DF.begin(), DF.end(), B) == DF.end())
          DF.push_back(B);
        Runner = IDoms[Runner];
      }
    }
  }
}

bool DominatorTree::dominates(BlockId A, BlockId B) const {
  if (A == B)
    return true;
  BlockId Runner = IDoms[B];
  while (Runner != NoBlock) {
    if (Runner == A)
      return true;
    if (Runner == 0)
      break;
    Runner = IDoms[Runner];
  }
  return A == 0 && isReachable(B);
}
