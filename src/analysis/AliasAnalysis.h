//===- AliasAnalysis.h - May-alias, escape, and last-use facts --*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A flow-sensitive, interprocedural may-alias + escape + last-use
/// analysis over the SSA IR. Where RangeAnalysis answers "how big can
/// this value be", AliasAnalysis answers "whose storage can this value
/// share, and who else can still see it" -- the two questions every
/// destructive-update decision decomposes into.
///
/// The domain is storage *origins*: every SSA value maps to the set of
/// storage roots its buffer may have come from. Value-producing ops
/// (constants, arithmetic, concatenation, builtins) mint a fresh root;
/// Copy and Phi propagate the union of their operands' roots; Subsasgn
/// propagates its base's roots (MATLAB value semantics notwithstanding,
/// the *planned* storage may be updated in place, which is exactly what
/// the consumers need to reason about). Two values may alias iff their
/// origin sets intersect.
///
/// Escape is a backward may-analysis seeded at function outputs and at
/// call arguments whose callee summary says the parameter escapes; it
/// closes over Copy/Phi/Subsasgn so that anything feeding an escaping
/// value escapes too. Last-use facts mirror the VM's death bookkeeping:
/// per instruction, the set of variables whose final read happens there.
///
/// Interprocedural summaries follow the RangeAnalysis pattern: an
/// optimistic module-wide fixpoint over per-function summaries
/// (ParamEscapes, OutParamAlias, OutFresh) that only grow, so the
/// iteration terminates. Functions without summaries (not yet analyzed,
/// recursion) are treated conservatively: arguments escape, outputs may
/// alias anything passed in.
///
/// Queries stay valid after SSA inversion for facts about VarIds that
/// existed at analysis time; `refresh()` recomputes the per-function
/// local facts (def/use counts, deaths) on the post-inversion CFG while
/// keeping the interprocedural summaries.
///
/// Consumers: InPlaceLegality (the shared VM/emitter oracle) and
/// verify/PlanAudit (the static storage-plan auditor).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_ANALYSIS_ALIASANALYSIS_H
#define MATCOAL_ANALYSIS_ALIASANALYSIS_H

#include "ir/IR.h"
#include "observe/Observe.h"
#include "typeinf/TypeInference.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace matcoal {

/// The module-wide alias/escape/last-use analysis result. Construct once
/// after type inference while every function is still in SSA form.
class AliasAnalysis {
public:
  /// Runs the interprocedural fixpoint over \p M. A non-null \p Obs
  /// receives the "alias" pass timing.
  AliasAnalysis(const Module &M, const TypeInference &TI,
                const std::string &Entry = "main", Observer *Obs = nullptr);

  /// True when U and V may refer to storage with a common origin. A
  /// variable trivially may-aliases itself; unknown variables are
  /// conservatively aliased.
  bool mayAlias(const Function &F, VarId U, VarId V) const;

  /// True when V's storage may outlive the function body or be observed
  /// through another name after the current statement: function outputs,
  /// values flowing into them, and arguments to calls whose parameter
  /// escapes in the callee.
  bool escapes(const Function &F, VarId V) const;

  /// True when instruction \p Idx of block \p B is V's last use on every
  /// path (the VM's "death" bookkeeping, recomputed statically).
  bool lastUseAt(const Function &F, BlockId B, unsigned Idx, VarId V) const;

  /// The variables whose last use is instruction \p Idx of block \p B.
  const std::vector<VarId> &deathsAt(const Function &F, BlockId B,
                                     unsigned Idx) const;

  /// Whole-function definition/use counts per VarId. Parameters count one
  /// extra definition (the call binds them); outputs count one extra use
  /// (the return reads them) -- the same convention the C emitter's
  /// fusion admission used, now owned here.
  unsigned defCount(const Function &F, VarId V) const;
  unsigned useCount(const Function &F, VarId V) const;

  /// Summary queries (conservative when no summary exists).
  bool paramEscapes(const Function &F, unsigned ParamIdx) const;
  bool outputMayAliasParam(const Function &F, unsigned OutIdx,
                           unsigned ParamIdx) const;

  /// Recomputes the per-function local facts on F's *current* CFG (the
  /// driver calls this after SSA inversion, which rewrites blocks but
  /// preserves VarIds). Interprocedural summaries are kept.
  void refresh(const Function &F);

private:
  struct FuncState {
    const Function *F = nullptr;
    /// Per VarId: set of storage roots the value may occupy.
    std::vector<std::set<VarId>> Origins;
    std::vector<bool> Escapes;
    std::vector<unsigned> DefCount, UseCount;
    /// Deaths[B][I] = variables whose last use is instruction I of block
    /// B (mirrors VM::buildInfo exactly).
    std::vector<std::vector<std::vector<VarId>>> Deaths;
  };
  struct Summary {
    std::vector<bool> ParamEscapes;
    /// Per output: indices of parameters whose storage the output may
    /// reuse.
    std::vector<std::set<int>> OutParamAlias;
    /// Per output: may the output carry storage minted inside the callee.
    std::vector<bool> OutFresh;
    bool Valid = false;
  };

  /// One local pass over F: origins, escape closure, counts, deaths.
  /// Returns true when F's summary changed.
  bool analyzeFunction(FuncState &S);
  void computeLocalFacts(FuncState &S);
  const FuncState *stateOf(const Function &F) const;

  const Module &M;
  const TypeInference &TI;
  Observer *Obs = nullptr;
  std::map<const Function *, FuncState> States;
  std::map<std::string, Summary> Summaries;
  static const std::vector<VarId> EmptyDeaths;
};

} // namespace matcoal

#endif // MATCOAL_ANALYSIS_ALIASANALYSIS_H
