//===- RangeAnalysis.cpp --------------------------------------------------===//

#include "analysis/RangeAnalysis.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <sstream>

using namespace matcoal;

namespace {

constexpr double Inf = std::numeric_limits<double>::infinity();

/// Interval arithmetic helpers. All are conservative: the result contains
/// every value the operation can produce from values in the inputs.
Interval iAdd(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  double Lo = A.Lo + B.Lo, Hi = A.Hi + B.Hi;
  // inf + -inf has no information.
  if (std::isnan(Lo))
    Lo = -Inf;
  if (std::isnan(Hi))
    Hi = Inf;
  return {Lo, Hi};
}

Interval iNeg(const Interval &A) {
  if (A.isBottom())
    return A;
  return {-A.Hi, -A.Lo};
}

Interval iSub(const Interval &A, const Interval &B) {
  return iAdd(A, iNeg(B));
}

Interval iMul(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  double Lo = Inf, Hi = -Inf;
  for (double X : {A.Lo, A.Hi})
    for (double Y : {B.Lo, B.Hi}) {
      double P = X * Y;
      if (std::isnan(P)) // 0 * inf: both signs reachable in the limit.
        return Interval::top();
      Lo = std::min(Lo, P);
      Hi = std::max(Hi, P);
    }
  return {Lo, Hi};
}

Interval iDiv(const Interval &A, const Interval &B) {
  if (A.isBottom() || B.isBottom())
    return Interval::bottom();
  // A divisor interval containing 0 can produce anything.
  if (B.Lo <= 0 && B.Hi >= 0)
    return Interval::top();
  double Lo = Inf, Hi = -Inf;
  for (double X : {A.Lo, A.Hi})
    for (double Y : {B.Lo, B.Hi}) {
      double Q = X / Y;
      if (std::isnan(Q))
        return Interval::top();
      Lo = std::min(Lo, Q);
      Hi = std::max(Hi, Q);
    }
  return {Lo, Hi};
}

Interval iMax(const Interval &A, const Interval &B) {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  return {std::max(A.Lo, B.Lo), std::max(A.Hi, B.Hi)};
}

Interval iMin(const Interval &A, const Interval &B) {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  return {std::min(A.Lo, B.Lo), std::min(A.Hi, B.Hi)};
}

/// Monotone elementwise map.
template <typename Fn> Interval iMap(const Interval &A, Fn F) {
  if (A.isBottom())
    return A;
  return {F(A.Lo), F(A.Hi)};
}

/// Bound on an array-constructor dimension computed from the dimension
/// argument's value interval. The runtime faults on negative or
/// non-integer size arguments, so on every *successful* execution the
/// dimension is an integer within the argument's interval.
Interval dimFromArg(const Interval &V) {
  if (V.isBottom())
    return Interval::bottom();
  double Lo = std::max(0.0, std::ceil(V.Lo));
  double Hi = std::floor(V.Hi);
  if (Hi < 0)
    Hi = 0;
  return {std::min(Lo, Hi), Hi};
}

std::vector<Interval> scalarDims() {
  return {Interval::point(1), Interval::point(1)};
}

bool dimsProvablyScalar(const std::vector<Interval> &Dims) {
  if (Dims.empty())
    return false;
  for (const Interval &D : Dims)
    if (D.isBottom() || D.Lo < 1 || D.Hi > 1)
      return false;
  return true;
}

/// Join two dim vectors, padding the shorter with unit extents (mirrors
/// TypeInference::joinShape).
std::vector<Interval> joinDims(const std::vector<Interval> &A,
                               const std::vector<Interval> &B) {
  if (A.empty() || B.empty())
    return {}; // Unknown swallows.
  size_t Rank = std::max(A.size(), B.size());
  std::vector<Interval> Out(Rank);
  for (size_t D = 0; D < Rank; ++D) {
    Interval EA = D < A.size() ? A[D] : Interval::point(1);
    Interval EB = D < B.size() ? B[D] : Interval::point(1);
    Out[D] = EA.join(EB);
  }
  return Out;
}

/// Result dims of an elementwise binary: the operand shapes must agree at
/// run time unless one side is scalar, so the hull of both is sound and a
/// provably scalar side is dropped exactly.
std::vector<Interval> elementwiseDims(const VarRange &A, const VarRange &B) {
  if (dimsProvablyScalar(A.Dims))
    return B.Dims;
  if (dimsProvablyScalar(B.Dims))
    return A.Dims;
  return joinDims(A.Dims, B.Dims);
}

Interval numelOfDims(const std::vector<Interval> &Dims) {
  if (Dims.empty())
    return {0, Inf};
  Interval N = Interval::point(1);
  for (const Interval &D : Dims)
    N = iMul(N, D);
  return N;
}

} // namespace

std::string Interval::str() const {
  if (isBottom())
    return "empty";
  std::ostringstream OS;
  OS << "[" << Lo << ", " << Hi << "]";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// Construction and fixpoint
//===----------------------------------------------------------------------===//

RangeAnalysis::RangeAnalysis(const Module &M, const TypeInference &TI,
                             const std::string &Entry, Observer *Obs)
    : M(M), TI(TI), Obs(Obs) {
  PassTimer Timer(Obs, "ranges");
  count(Obs, "ranges.functions", 0);
  count(Obs, "ranges.widenings", 0);
  count(Obs, "ranges.facts", 0);
  count(Obs, "ranges.bounded_syms", 0);
  for (const auto &F : M.Functions) {
    if (!TI.hasTypesFor(*F) || F->Blocks.empty())
      continue;
    FuncState &S = States[F.get()];
    S.F = F.get();
    S.Ranges.assign(F->numVars(), VarRange::bottom());
    S.DT = std::make_unique<DominatorTree>(*F);
    S.RPO = F->reversePostOrder();
    collectFacts(S);
    count(Obs, "ranges.functions");
    for (const auto &BlockFacts : S.Facts)
      count(Obs, "ranges.facts",
            static_cast<std::int64_t>(BlockFacts.size()));
    Summaries[F.get()].Params.assign(F->Params.size(), VarRange::bottom());
    Summaries[F.get()].Outputs.assign(F->Outputs.size(), VarRange::bottom());
  }
  // The entry's parameters (usually none) are unconstrained.
  if (const Function *E = M.findFunction(Entry)) {
    auto It = Summaries.find(E);
    if (It != Summaries.end())
      for (VarRange &P : It->second.Params) {
        P.Defined = true;
        P.Val = Interval::top();
      }
  }
  // Optimistic interprocedural fixpoint. Widening bounds the number of
  // times any variable can change, so this terminates; the round cap is a
  // safety net only. Functions are visited in MODULE order, never in
  // States' key order: States is keyed by pointer, and widening makes the
  // fixpoint order-sensitive, so pointer-ordered visits would let the
  // allocator's address layout pick which bounds survive (observable as
  // plan -- and native-tier cache-key -- churn between processes).
  for (int Round = 0; Round < 60; ++Round) {
    ModuleChanged = false;
    bool Changed = false;
    for (const auto &F : M.Functions) {
      auto It = States.find(F.get());
      if (It != States.end())
        Changed |= analyzeFunction(It->second);
    }
    Changed |= ModuleChanged;
    if (!Changed)
      break;
    if (Round == 59) {
      // Defensive: forget everything rather than ship a non-fixpoint.
      for (auto &[F, S] : States)
        for (VarRange &R : S.Ranges) {
          R.Defined = true;
          R.Val = Interval::top();
          R.Dims.clear();
        }
    }
  }
  publishSymBounds();
  count(Obs, "ranges.bounded_syms",
        static_cast<std::int64_t>(SymBounds.size()));
}

void RangeAnalysis::collectFacts(FuncState &S) {
  const Function &F = *S.F;
  S.Facts.assign(F.Blocks.size(), {});
  // Map from condition variable to its defining comparison.
  std::map<VarId, const Instr *> Def;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      for (VarId R : I.Results)
        Def.emplace(R, &I);

  auto SinglePred = [&](BlockId B) {
    return B != NoBlock && F.block(B)->Preds.size() == 1;
  };
  auto AddFact = [&](BlockId B, VarId V, VarId O, Fact::Rel R) {
    S.Facts[B].push_back(Fact{V, O, R});
  };

  for (const auto &BB : F.Blocks) {
    if (!BB->hasTerminator())
      continue;
    const Instr &T = BB->terminator();
    if (T.Op != Opcode::Br || T.Operands.empty())
      continue;
    VarId C = T.Operands[0];
    BlockId TrueB = T.Target1, FalseB = T.Target2;
    // Peel logical negations: ~(a < b) swaps the edges.
    auto It = Def.find(C);
    while (It != Def.end() && It->second->Op == Opcode::Not &&
           It->second->Operands.size() == 1) {
      std::swap(TrueB, FalseB);
      C = It->second->Operands[0];
      It = Def.find(C);
    }
    if (It == Def.end())
      continue;
    const Instr &Cmp = *It->second;
    if (Cmp.Operands.size() != 2)
      continue;
    VarId A = Cmp.Operands[0], B = Cmp.Operands[1];
    // On the true edge the comparison held; the MATLAB truth rule demands
    // *all* elements true, so the fact applies to every element of A and
    // B -- which is exactly what the element-bounding Val interval needs.
    // The false edge of an elementwise comparison only means "some element
    // failed", so facts are attached there for scalar operands only.
    bool BothScalar = TI.functionTypes(F)[A].isScalar() &&
                      TI.functionTypes(F)[B].isScalar();
    auto TrueFacts = [&](BlockId Blk, Opcode Op) {
      switch (Op) {
      case Opcode::Lt:
      case Opcode::Le:
        AddFact(Blk, A, B, Fact::LE);
        AddFact(Blk, B, A, Fact::GE);
        break;
      case Opcode::Gt:
      case Opcode::Ge:
        AddFact(Blk, A, B, Fact::GE);
        AddFact(Blk, B, A, Fact::LE);
        break;
      case Opcode::Eq:
        AddFact(Blk, A, B, Fact::EQ);
        AddFact(Blk, B, A, Fact::EQ);
        break;
      default:
        break;
      }
    };
    auto Negated = [](Opcode Op) {
      switch (Op) {
      case Opcode::Lt:
        return Opcode::Ge;
      case Opcode::Le:
        return Opcode::Gt;
      case Opcode::Gt:
        return Opcode::Le;
      case Opcode::Ge:
        return Opcode::Lt;
      case Opcode::Ne:
        return Opcode::Eq;
      default:
        return Opcode::Display; // No fact.
      }
    };
    if (SinglePred(TrueB))
      TrueFacts(TrueB, Cmp.Op);
    if (BothScalar && SinglePred(FalseB))
      TrueFacts(FalseB, Negated(Cmp.Op));
  }
}

bool RangeAnalysis::updateRange(FuncState &S, VarId V, VarRange New) {
  VarRange &Cur = S.Ranges[V];
  // Monotone update: join with the current value.
  if (Cur.Defined) {
    New.Defined = true;
    New.Val = Cur.Val.join(New.Val);
    New.Dims = joinDims(Cur.Dims, New.Dims);
  }
  if (New == Cur)
    return false;
  unsigned &Count = ++JoinCount[{S.F, V}];
  if (Count > 16) {
    count(Obs, "ranges.widenings");
    // Widen: any bound that moved goes all the way.
    if (Cur.Defined) {
      if (New.Val.Lo < Cur.Val.Lo)
        New.Val.Lo = -Inf;
      if (New.Val.Hi > Cur.Val.Hi)
        New.Val.Hi = Inf;
      if (New.Dims.size() == Cur.Dims.size()) {
        for (size_t D = 0; D < New.Dims.size(); ++D) {
          if (New.Dims[D].Lo < Cur.Dims[D].Lo)
            New.Dims[D].Lo = 0;
          if (New.Dims[D].Hi > Cur.Dims[D].Hi)
            New.Dims[D].Hi = Inf;
        }
      } else {
        New.Dims.clear();
      }
    } else {
      New.Val = Interval::top();
      New.Dims.clear();
    }
    if (New == Cur)
      return false;
  }
  Cur = std::move(New);
  return true;
}

Interval RangeAnalysis::applyFacts(const FuncState &S, BlockId B, VarId V,
                                   Interval Cur) const {
  if (Cur.isBottom() || B == NoBlock ||
      static_cast<size_t>(B) >= S.Facts.size())
    return Cur;
  for (size_t Blk = 0; Blk < S.Facts.size(); ++Blk) {
    if (S.Facts[Blk].empty() ||
        !S.DT->dominates(static_cast<BlockId>(Blk), B))
      continue;
    for (const Fact &Fa : S.Facts[Blk]) {
      if (Fa.V != V)
        continue;
      const VarRange &O = S.Ranges[Fa.Other];
      if (!O.Defined)
        continue;
      switch (Fa.R) {
      case Fact::LE:
        Cur.Hi = std::min(Cur.Hi, O.Val.Hi);
        break;
      case Fact::GE:
        Cur.Lo = std::max(Cur.Lo, O.Val.Lo);
        break;
      case Fact::EQ:
        Cur.Hi = std::min(Cur.Hi, O.Val.Hi);
        Cur.Lo = std::max(Cur.Lo, O.Val.Lo);
        break;
      }
    }
  }
  // Contradictory facts mean the block is unreachable under the current
  // approximation; keep the unrefined interval rather than bottom so the
  // fixpoint stays monotone.
  if (Cur.isBottom())
    return S.Ranges[V].Val;
  return Cur;
}

VarRange RangeAnalysis::rangeIn(const FuncState &S, BlockId B,
                                VarId V) const {
  if (V < 0 || static_cast<size_t>(V) >= S.Ranges.size())
    return VarRange::bottom();
  VarRange R = S.Ranges[V];
  if (R.Defined)
    R.Val = applyFacts(S, B, V, R.Val);
  return R;
}

bool RangeAnalysis::analyzeFunction(FuncState &S) {
  const Function &F = *S.F;
  const Summary &Sum = Summaries[S.F];
  bool AnyChange = false;

  // Seed parameters from the (join of) call sites.
  for (size_t K = 0; K < F.Params.size(); ++K)
    if (K < Sum.Params.size() && Sum.Params[K].Defined)
      AnyChange |= updateRange(S, F.Params[K], Sum.Params[K]);

  for (int Round = 0; Round < 30; ++Round) {
    bool Changed = false;
    for (BlockId B : S.RPO) {
      for (const Instr &I : F.block(B)->Instrs) {
        if (I.Results.empty())
          continue;
        std::vector<VarRange> Out = transfer(S, B, I);
        for (size_t K = 0; K < I.Results.size() && K < Out.size(); ++K)
          if (Out[K].Defined)
            Changed |= updateRange(S, I.Results[K], std::move(Out[K]));
      }
    }
    AnyChange |= Changed;
    if (!Changed)
      break;
  }

  // Publish output ranges at every Ret.
  Summary &MutSum = Summaries[S.F];
  for (const auto &BB : F.Blocks) {
    if (!BB->hasTerminator() || BB->terminator().Op != Opcode::Ret)
      continue;
    const Instr &Ret = BB->terminator();
    if (MutSum.Outputs.size() < Ret.Operands.size())
      MutSum.Outputs.resize(Ret.Operands.size(), VarRange::bottom());
    for (size_t K = 0; K < Ret.Operands.size(); ++K) {
      VarRange R = rangeIn(S, BB->Id, Ret.Operands[K]);
      if (!R.Defined)
        continue;
      VarRange Joined = MutSum.Outputs[K];
      if (Joined.Defined) {
        Joined.Val = Joined.Val.join(R.Val);
        Joined.Dims = joinDims(Joined.Dims, R.Dims);
      } else {
        Joined = R;
      }
      if (!(Joined == MutSum.Outputs[K])) {
        MutSum.Outputs[K] = std::move(Joined);
        AnyChange = true;
      }
    }
  }
  return AnyChange;
}

//===----------------------------------------------------------------------===//
// Transfer functions
//===----------------------------------------------------------------------===//

std::vector<VarRange> RangeAnalysis::transfer(FuncState &S, BlockId B,
                                              const Instr &I) {
  const Function &F = *S.F;
  const std::vector<VarType> &Types = TI.functionTypes(F);
  auto Op = [&](size_t K) { return rangeIn(S, B, I.Operands[K]); };
  auto Defined = [&](const VarRange &R) { return R.Defined; };

  VarRange R;
  R.Defined = true;

  auto Done = [&](VarRange X) {
    // Intervals bound real values; a complex result carries no bound.
    if (!I.Results.empty() &&
        Types[I.Results[0]].IT == IntrinsicType::Complex)
      X.Val = Interval::top();
    // Constant inferred extents refine the dimension bounds for free.
    if (!I.Results.empty() && X.Defined) {
      const VarType &T = Types[I.Results[0]];
      if (!T.Extents.empty()) {
        bool AllConst = true;
        for (SymExpr E : T.Extents)
          AllConst &= E->isConst();
        if (AllConst) {
          std::vector<Interval> TD;
          for (SymExpr E : T.Extents)
            TD.push_back(Interval::point(
                static_cast<double>(E->constValue())));
          if (X.Dims.empty())
            X.Dims = TD;
          else if (X.Dims.size() == TD.size())
            for (size_t D = 0; D < TD.size(); ++D)
              X.Dims[D] = X.Dims[D].meet(TD[D]).isBottom()
                              ? TD[D]
                              : X.Dims[D].meet(TD[D]);
        }
      }
    }
    return std::vector<VarRange>{std::move(X)};
  };

  switch (I.Op) {
  case Opcode::ConstNum:
    R.Val = I.NumIm != 0 ? Interval::top() : Interval::point(I.NumRe);
    R.Dims = scalarDims();
    return Done(R);
  case Opcode::ConstStr:
    R.Val = {0, 65535}; // Character codes.
    R.Dims = {Interval::point(1),
              Interval::point(static_cast<double>(
                  I.StrVal.empty() ? 0 : I.StrVal.size()))};
    return Done(R);
  case Opcode::ConstColon:
    R.Val = Interval::top();
    return Done(R);

  case Opcode::Copy:
  case Opcode::UPlus: {
    VarRange A = Op(0);
    if (!Defined(A))
      return {};
    return Done(A);
  }

  case Opcode::Phi: {
    VarRange Acc = VarRange::bottom();
    for (VarId V : I.Operands) {
      // Phi operands flow along predecessor edges; refine with the facts
      // of the *predecessor* rather than this block. Conservative: use
      // the global range (facts at B would be wrong for the other preds).
      if (V < 0 || static_cast<size_t>(V) >= S.Ranges.size())
        continue;
      const VarRange &A = S.Ranges[V];
      if (!A.Defined)
        continue;
      if (!Acc.Defined) {
        Acc = A;
      } else {
        Acc.Val = Acc.Val.join(A.Val);
        Acc.Dims = joinDims(Acc.Dims, A.Dims);
      }
    }
    if (!Acc.Defined)
      return {};
    return Done(Acc);
  }

  case Opcode::Neg: {
    VarRange A = Op(0);
    if (!Defined(A))
      return {};
    R.Val = iNeg(A.Val);
    R.Dims = A.Dims;
    return Done(R);
  }
  case Opcode::Not: {
    VarRange A = Op(0);
    if (!Defined(A))
      return {};
    R.Val = {0, 1};
    R.Dims = A.Dims;
    return Done(R);
  }
  case Opcode::Transpose:
  case Opcode::CTranspose: {
    VarRange A = Op(0);
    if (!Defined(A))
      return {};
    R.Val = A.Val; // Conjugation preserves real values; complex is topped.
    R.Dims = A.Dims;
    if (R.Dims.size() == 2)
      std::swap(R.Dims[0], R.Dims[1]);
    else
      R.Dims.clear();
    return Done(R);
  }

  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::ElemMul:
  case Opcode::ElemRDiv:
  case Opcode::ElemLDiv:
  case Opcode::ElemPow: {
    VarRange A = Op(0), Bv = Op(1);
    if (!Defined(A) || !Defined(Bv))
      return {};
    switch (I.Op) {
    case Opcode::Add:
      R.Val = iAdd(A.Val, Bv.Val);
      break;
    case Opcode::Sub:
      R.Val = iSub(A.Val, Bv.Val);
      break;
    case Opcode::ElemMul:
      R.Val = iMul(A.Val, Bv.Val);
      break;
    case Opcode::ElemRDiv:
      R.Val = iDiv(A.Val, Bv.Val);
      break;
    case Opcode::ElemLDiv:
      R.Val = iDiv(Bv.Val, A.Val);
      break;
    default: { // ElemPow: cheap cases only.
      if (A.Val.Lo >= 0)
        R.Val = {0, Inf};
      else
        R.Val = Interval::top();
      break;
    }
    }
    R.Dims = elementwiseDims(A, Bv);
    return Done(R);
  }

  case Opcode::MatMul:
  case Opcode::MatRDiv:
  case Opcode::MatLDiv:
  case Opcode::MatPow: {
    VarRange A = Op(0), Bv = Op(1);
    if (!Defined(A) || !Defined(Bv))
      return {};
    bool AScalar = dimsProvablyScalar(A.Dims);
    bool BScalar = dimsProvablyScalar(Bv.Dims);
    if (I.Op == Opcode::MatMul && AScalar && BScalar)
      R.Val = iMul(A.Val, Bv.Val);
    else
      R.Val = Interval::top();
    if (AScalar && BScalar)
      R.Dims = scalarDims();
    else if (I.Op == Opcode::MatMul) {
      if (AScalar)
        R.Dims = Bv.Dims;
      else if (BScalar)
        R.Dims = A.Dims;
      else if (A.Dims.size() == 2 && Bv.Dims.size() == 2) {
        // True matrix product -- but a 1x1 operand means scalar
        // EXPANSION, not a 1-column product, so when either side may
        // still turn out scalar at run time the result hulls in the
        // other operand's full shape.
        auto MayBeScalar = [](const std::vector<Interval> &D) {
          return D[0].Lo <= 1 && 1 <= D[0].Hi && D[1].Lo <= 1 &&
                 1 <= D[1].Hi;
        };
        R.Dims = {A.Dims[0], Bv.Dims[1]};
        if (MayBeScalar(A.Dims)) {
          R.Dims[0] = R.Dims[0].join(Bv.Dims[0]);
          R.Dims[1] = R.Dims[1].join(Bv.Dims[1]);
        }
        if (MayBeScalar(Bv.Dims)) {
          R.Dims[0] = R.Dims[0].join(A.Dims[0]);
          R.Dims[1] = R.Dims[1].join(A.Dims[1]);
        }
      }
    }
    return Done(R);
  }

  case Opcode::Lt:
  case Opcode::Le:
  case Opcode::Gt:
  case Opcode::Ge:
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::And:
  case Opcode::Or: {
    VarRange A = Op(0), Bv = Op(1);
    if (!Defined(A) || !Defined(Bv))
      return {};
    R.Val = {0, 1};
    R.Dims = elementwiseDims(A, Bv);
    return Done(R);
  }

  case Opcode::Colon2:
  case Opcode::Colon3: {
    bool HasStep = I.Op == Opcode::Colon3;
    VarRange Lo = Op(0);
    VarRange Step = HasStep ? Op(1) : VarRange{};
    VarRange Hi = Op(HasStep ? 2 : 1);
    if (!Defined(Lo) || !Defined(Hi) || (HasStep && !Defined(Step)))
      return {};
    R.Val = Interval{std::min(Lo.Val.Lo, Hi.Val.Lo),
                     std::max(Lo.Val.Hi, Hi.Val.Hi)};
    // Length bound for unit (or known-positive constant) steps.
    double StepLo = HasStep ? Step.Val.Lo : 1.0;
    double StepHi = HasStep ? Step.Val.Hi : 1.0;
    if (StepLo > 0) {
      double MaxLen =
          std::floor((Hi.Val.Hi - Lo.Val.Lo) / StepLo) + 1;
      if (std::isnan(MaxLen))
        MaxLen = Inf;
      double MinLen =
          std::floor((Hi.Val.Lo - Lo.Val.Hi) / std::max(StepHi, 1e-300)) + 1;
      if (std::isnan(MinLen) || MinLen < 0)
        MinLen = 0;
      R.Dims = {Interval::point(1),
                Interval{std::min(MinLen, MaxLen), std::max(0.0, MaxLen)}};
    }
    return Done(R);
  }

  case Opcode::Subsref: {
    VarRange A = Op(0);
    if (!Defined(A))
      return {};
    R.Val = A.Val; // Elements of the result are elements of the base.
    unsigned NumSubs = static_cast<unsigned>(I.Operands.size()) - 1;
    bool AllScalar = true, AllDefined = true;
    std::vector<VarRange> Subs;
    for (unsigned K = 0; K < NumSubs; ++K) {
      Subs.push_back(Op(K + 1));
      AllDefined &= Subs.back().Defined;
      // A ':' marker carries a scalar-looking type; it selects a whole
      // dimension, so it must never count as a scalar subscript.
      AllScalar &= Types[I.Operands[K + 1]].IT != IntrinsicType::Colon &&
                   (Types[I.Operands[K + 1]].isScalar() ||
                    dimsProvablyScalar(Subs.back().Dims));
    }
    if (AllDefined && AllScalar) {
      R.Dims = scalarDims();
    } else if (AllDefined && NumSubs >= 2) {
      // Per-dimension selection: the result extent along k is the numel
      // of subscript k (':' selects the base extent).
      R.Dims.clear();
      for (unsigned K = 0; K < NumSubs; ++K) {
        if (Types[I.Operands[K + 1]].IT == IntrinsicType::Colon)
          R.Dims.push_back(K < A.Dims.size() ? A.Dims[K]
                                             : Interval{0, Inf});
        else
          R.Dims.push_back(numelOfDims(Subs[K].Dims));
      }
    } else if (AllDefined && NumSubs == 1) {
      // Linear indexing: at most numel(sub) elements; orientation follows
      // the base for vector bases, so keep the hull of both layouts.
      Interval N = Types[I.Operands[1]].IT == IntrinsicType::Colon
                       ? numelOfDims(A.Dims)
                       : numelOfDims(Subs[0].Dims);
      R.Dims = {Interval{std::min(1.0, N.Lo), std::max(1.0, N.Hi)},
                Interval{std::min(1.0, N.Lo), std::max(1.0, N.Hi)}};
    }
    return Done(R);
  }

  case Opcode::Subsasgn: {
    VarRange Base = Op(0), Rhs = Op(1);
    if (!Defined(Base) || !Defined(Rhs))
      return {};
    // Growing a base zero-fills the gap.
    R.Val = Base.Val.join(Rhs.Val).join(Interval::point(0));
    unsigned NumSubs = static_cast<unsigned>(I.Operands.size()) - 2;
    std::vector<VarRange> Subs;
    bool AllDefined = true;
    for (unsigned K = 0; K < NumSubs; ++K) {
      Subs.push_back(Op(K + 2));
      AllDefined &= Subs.back().Defined;
    }
    if (AllDefined && NumSubs >= 2 && Base.Dims.size() >= NumSubs &&
        Base.Dims.size() <= NumSubs + 1) {
      R.Dims = Base.Dims;
      for (unsigned K = 0; K < NumSubs; ++K) {
        if (Types[I.Operands[K + 2]].IT == IntrinsicType::Colon)
          continue;
        // The written extent reaches at least the max subscript value.
        R.Dims[K] = iMax(R.Dims[K], Subs[K].Val);
        R.Dims[K].Lo = Base.Dims.size() > K ? Base.Dims[K].Lo : 0;
      }
    } else if (AllDefined && NumSubs == 1) {
      Interval Idx = Types[I.Operands[2]].IT == IntrinsicType::Colon
                         ? numelOfDims(Base.Dims)
                         : Subs[0].Val;
      Interval N = numelOfDims(Base.Dims);
      if (Idx.boundedAbove() && N.boundedBelow() && Idx.Hi <= N.Lo) {
        R.Dims = Base.Dims; // Provably in bounds: shape unchanged.
      } else if (Base.Dims.size() == 2) {
        // Linear growth is only legal for vectors (or empties); the grown
        // extent reaches max(old numel, max subscript).
        Interval Len = iMax(numelOfDims(Base.Dims), Idx);
        Len.Lo = 0;
        Interval Unit{std::min(Base.Dims[0].Lo, Base.Dims[1].Lo), 1};
        R.Dims = {Interval{Unit.Lo, std::max(1.0, std::min(
                                                  Base.Dims[0].Hi, Len.Hi))},
                  Interval{Unit.Lo, Len.Hi}};
        // Keep it simple and sound: hull of both orientations.
        R.Dims[0] = R.Dims[0].join(R.Dims[1]);
        R.Dims[1] = R.Dims[0];
      }
    } else {
      R.Dims = {};
    }
    return Done(R);
  }

  case Opcode::HorzCat:
  case Opcode::VertCat: {
    if (I.Operands.empty()) {
      R.Val = Interval::bottom(); // No elements at all.
      R.Val = Interval::point(0);
      R.Dims = {Interval::point(0), Interval::point(0)};
      return Done(R);
    }
    bool Horz = I.Op == Opcode::HorzCat;
    Interval Along = Interval::point(0), Across = Interval::bottom();
    Interval Val = Interval::bottom();
    bool AllKnown = true;
    for (size_t K = 0; K < I.Operands.size(); ++K) {
      VarRange A = Op(K);
      if (!Defined(A))
        return {};
      Val = Val.join(A.Val);
      if (A.Dims.size() != 2) {
        AllKnown = false;
        continue;
      }
      Along = iAdd(Along, A.Dims[Horz ? 1 : 0]);
      Across = Across.join(A.Dims[Horz ? 0 : 1]);
    }
    R.Val = Val;
    if (AllKnown) {
      // Empty operands are skipped at run time, so the across extent can
      // be any operand's. Keep the hull; the along extent can only shrink
      // when an operand is empty.
      Along.Lo = 0;
      R.Dims = Horz ? std::vector<Interval>{Across, Along}
                    : std::vector<Interval>{Along, Across};
    }
    return Done(R);
  }

  case Opcode::Builtin: {
    std::vector<VarRange> Ops;
    for (size_t K = 0; K < I.Operands.size(); ++K)
      Ops.push_back(Op(K));
    return {builtinTransfer(S, B, I, Ops)};
  }

  case Opcode::Call: {
    const Function *Callee = M.findFunction(I.StrVal);
    auto SIt = Callee ? Summaries.find(Callee) : Summaries.end();
    if (SIt == Summaries.end()) {
      R.Val = Interval::top();
      return {std::vector<VarRange>(I.Results.size(), R)};
    }
    // Push argument ranges into the callee's parameter summary.
    Summary &CS = SIt->second;
    FuncState &CalleeState = States[Callee];
    for (size_t K = 0; K < I.Operands.size() && K < CS.Params.size(); ++K) {
      VarRange A = rangeIn(S, B, I.Operands[K]);
      if (!A.Defined)
        continue;
      VarRange &P = CS.Params[K];
      VarRange Joined = P;
      if (Joined.Defined) {
        Joined.Val = Joined.Val.join(A.Val);
        Joined.Dims = joinDims(Joined.Dims, A.Dims);
      } else {
        Joined = A;
      }
      if (!(Joined == P)) {
        // Widen through the same counter as intra-function joins, keyed
        // on the callee's parameter variable.
        unsigned &Count =
            ++JoinCount[{Callee, Callee->Params[K]}];
        if (Count > 16 && P.Defined) {
          count(Obs, "ranges.widenings");
          if (Joined.Val.Lo < P.Val.Lo)
            Joined.Val.Lo = -Inf;
          if (Joined.Val.Hi > P.Val.Hi)
            Joined.Val.Hi = Inf;
          if (Joined.Dims.size() != P.Dims.size())
            Joined.Dims.clear();
          else
            for (size_t D = 0; D < Joined.Dims.size(); ++D) {
              if (Joined.Dims[D].Lo < P.Dims[D].Lo)
                Joined.Dims[D].Lo = 0;
              if (Joined.Dims[D].Hi > P.Dims[D].Hi)
                Joined.Dims[D].Hi = Inf;
            }
        }
        P = std::move(Joined);
        ModuleChanged = true;
      }
    }
    (void)CalleeState;
    // Results come from the callee's output summary (optimistically
    // bottom until the callee is analyzed; the module fixpoint re-runs
    // this caller afterwards).
    std::vector<VarRange> Out;
    for (size_t K = 0; K < I.Results.size(); ++K)
      Out.push_back(K < CS.Outputs.size() ? CS.Outputs[K]
                                          : VarRange::bottom());
    return Out;
  }

  case Opcode::Display:
  case Opcode::Jmp:
  case Opcode::Br:
  case Opcode::Ret:
    return {};
  }
  R.Val = Interval::top();
  return {std::vector<VarRange>(I.Results.size(), R)};
}

VarRange RangeAnalysis::builtinTransfer(FuncState &S, BlockId B,
                                        const Instr &I,
                                        const std::vector<VarRange> &Ops) {
  (void)S;
  (void)B;
  const std::string &Name = I.StrVal;
  auto Defined = [&](size_t K) {
    return K < Ops.size() && Ops[K].Defined;
  };

  VarRange R;
  R.Defined = true;
  R.Val = Interval::top();

  auto ConstructorDims = [&]() {
    std::vector<Interval> Dims;
    if (Ops.empty()) {
      return scalarDims();
    }
    for (size_t K = 0; K < Ops.size(); ++K) {
      if (!Defined(K))
        return std::vector<Interval>{};
      Dims.push_back(dimFromArg(Ops[K].Val));
    }
    if (Dims.size() == 1)
      Dims = {Dims[0], Dims[0]};
    return Dims;
  };

  // Array constructors.
  if (Name == "zeros" || Name == "ones" || Name == "rand" ||
      Name == "randn" || Name == "eye") {
    R.Dims = ConstructorDims();
    if (Name == "zeros")
      R.Val = Interval::point(0);
    else if (Name == "ones")
      R.Val = Interval::point(1);
    else if (Name == "rand")
      R.Val = {0, 1};
    else if (Name == "eye")
      R.Val = {0, 1};
    return R;
  }
  if (Name == "linspace") {
    if (Defined(0) && Defined(1))
      R.Val = Ops[0].Val.join(Ops[1].Val);
    Interval N = Ops.size() >= 3 && Defined(2) ? dimFromArg(Ops[2].Val)
                                               : Interval::point(100);
    R.Dims = {Interval::point(1), N};
    return R;
  }

  // Elementwise monotone maps.
  if (Name == "floor" || Name == "ceil" || Name == "round" ||
      Name == "fix") {
    if (Defined(0)) {
      const Interval &A = Ops[0].Val;
      if (Name == "floor")
        R.Val = iMap(A, [](double X) { return std::floor(X); });
      else if (Name == "ceil")
        R.Val = iMap(A, [](double X) { return std::ceil(X); });
      else if (Name == "round")
        R.Val = iMap(A, [](double X) { return std::round(X); });
      else
        R.Val = iMap(A, [](double X) { return std::trunc(X); });
      R.Dims = Ops[0].Dims;
    }
    return R;
  }
  if (Name == "abs") {
    if (Defined(0)) {
      const Interval &A = Ops[0].Val;
      if (!A.isBottom()) {
        double Lo = (A.Lo <= 0 && A.Hi >= 0)
                        ? 0
                        : std::min(std::abs(A.Lo), std::abs(A.Hi));
        R.Val = {Lo, std::max(std::abs(A.Lo), std::abs(A.Hi))};
      }
      R.Dims = Ops[0].Dims;
    }
    return R;
  }
  if (Name == "sqrt") {
    if (Defined(0)) {
      const Interval &A = Ops[0].Val;
      if (!A.isBottom() && A.Lo >= 0)
        R.Val = {std::sqrt(A.Lo), std::sqrt(A.Hi)};
      R.Dims = Ops[0].Dims;
    }
    return R;
  }
  if (Name == "exp") {
    if (Defined(0)) {
      R.Val = iMap(Ops[0].Val, [](double X) { return std::exp(X); });
      R.Dims = Ops[0].Dims;
    }
    return R;
  }
  if (Name == "sin" || Name == "cos") {
    R.Val = {-1, 1};
    if (Defined(0))
      R.Dims = Ops[0].Dims;
    return R;
  }
  if (Name == "sign") {
    R.Val = {-1, 1};
    if (Defined(0))
      R.Dims = Ops[0].Dims;
    return R;
  }
  if (Name == "mod" || Name == "rem") {
    // mod(a, k) for k > 0 lies in [0, k); rem keeps a's sign.
    if (Defined(0) && Defined(1)) {
      const Interval &K = Ops[1].Val;
      if (!K.isBottom() && K.Lo > 0) {
        if (Name == "mod")
          R.Val = {0, K.Hi};
        else
          R.Val = {std::min(0.0, Ops[0].Val.Lo < 0 ? -K.Hi : 0.0), K.Hi};
      }
      R.Dims = elementwiseDims(Ops[0], Ops[1]);
    }
    return R;
  }
  if (Name == "min" || Name == "max") {
    if (Ops.size() == 2 && Defined(0) && Defined(1)) {
      R.Val = Name == "min" ? iMin(Ops[0].Val, Ops[1].Val)
                            : iMax(Ops[0].Val, Ops[1].Val);
      R.Dims = elementwiseDims(Ops[0], Ops[1]);
    } else if (Ops.size() == 1 && Defined(0)) {
      R.Val = Ops[0].Val;
      R.Dims = scalarDims(); // Vector reduction (matrix case is hulled).
      if (Ops[0].Dims.size() == 2 &&
          !(Ops[0].Dims[0].Hi <= 1 || Ops[0].Dims[1].Hi <= 1))
        R.Dims = {Interval{1, 1}, Ops[0].Dims[1]};
    }
    return R;
  }
  if (Name == "sum" || Name == "prod" || Name == "mean" || Name == "dot" ||
      Name == "norm" || Name == "trace" || Name == "cumsum") {
    if (Defined(0)) {
      const Interval &A = Ops[0].Val;
      Interval N = numelOfDims(Ops[0].Dims);
      if (Name == "sum" && !A.isBottom() && N.boundedAbove()) {
        Interval Total = iMul(A, Interval{0, N.Hi});
        R.Val = Total.join(Interval::point(0)); // Empty sum is 0.
      } else if (Name == "mean" && !A.isBottom()) {
        R.Val = A;
      } else if (Name == "norm") {
        R.Val = {0, Inf};
      }
      if (Name == "cumsum")
        R.Dims = Ops[0].Dims;
      else if (Ops[0].Dims.size() == 2 &&
               (Ops[0].Dims[0].Hi <= 1 || Ops[0].Dims[1].Hi <= 1))
        R.Dims = scalarDims();
      else if (Name == "norm" || Name == "trace" || Name == "dot")
        R.Dims = scalarDims();
    }
    return R;
  }
  if (Name == "numel" || Name == "length" || Name == "size" ||
      Name == "isempty") {
    if (Defined(0)) {
      Interval N = numelOfDims(Ops[0].Dims);
      if (Name == "numel")
        R.Val = N;
      else if (Name == "isempty")
        R.Val = {0, 1};
      else if (Name == "length") {
        // Max extent; bounded by numel.
        Interval L = Interval::point(0);
        for (const Interval &D : Ops[0].Dims)
          L = iMax(L, D);
        R.Val = Ops[0].Dims.empty() ? Interval{0, Inf} : L;
      } else { // size
        Interval Hull = Interval::bottom();
        for (const Interval &D : Ops[0].Dims)
          Hull = Hull.join(D);
        R.Val = Ops[0].Dims.empty() ? Interval{0, Inf} : Hull;
        if (I.Results.size() <= 1 && Ops[0].Dims.size() >= 2)
          R.Dims = {Interval::point(1),
                    Interval::point(
                        static_cast<double>(Ops[0].Dims.size()))};
        R.Val.Lo = std::min(R.Val.Lo, 0.0);
      }
      if (Name != "size" || I.Results.size() > 1)
        R.Dims = scalarDims();
    } else {
      R.Dims = scalarDims();
    }
    if (Name == "numel" || Name == "length")
      R.Val.Lo = std::max(R.Val.Lo, 0.0);
    return R;
  }
  if (Name == "pi" || Name == "eps") {
    R.Val = Name == "pi" ? Interval::point(3.141592653589793)
                         : Interval::point(2.220446049250313e-16);
    R.Dims = scalarDims();
    return R;
  }
  if (Name == "Inf" || Name == "inf") {
    R.Val = Interval::point(Inf);
    R.Dims = scalarDims();
    return R;
  }
  if (Name == "true" || Name == "false") {
    R.Val = Interval::point(Name == "true" ? 1 : 0);
    R.Dims = scalarDims();
    return R;
  }
  if (Name == "__forcond") {
    R.Val = {0, 1};
    R.Dims = scalarDims();
    return R;
  }

  // Unknown builtin: top value. Shape from the inferred type's constant
  // extents is still merged in by the caller via Done(); here we only
  // know the scalar-result convention for comparison-style helpers.
  if (Name == "__switcheq" || Name == "strcmp") {
    R.Val = {0, 1};
    R.Dims = scalarDims();
  }
  return R;
}

//===----------------------------------------------------------------------===//
// Symbolic bounds
//===----------------------------------------------------------------------===//

void RangeAnalysis::publishSymBounds() {
  // When several variables carry the same symbol, JOIN their intervals.
  // Type inference propagates an extent symbol through operations whose
  // result extent it merely approximates, so two carriers of one "$s"
  // symbol can hold different run-time values; meeting their ranges would
  // manufacture bounds no single carrier satisfies.
  auto Bind = [&](SymExpr E, const Interval &V) {
    if (!E || V.isBottom())
      return;
    auto [It, Inserted] = SymBounds.emplace(E, V);
    if (!Inserted)
      It->second = It->second.join(V);
  };
  for (auto &[F, S] : States) {
    const std::vector<VarType> &Types = TI.functionTypes(*F);
    for (unsigned V = 0; V < F->numVars() && V < S.Ranges.size(); ++V) {
      const VarRange &R = S.Ranges[V];
      if (!R.Defined)
        continue;
      const VarType &T = Types[V];
      // A scalar's ValExpr denotes exactly its run-time value.
      if (T.ValExpr && T.isScalar() && !R.Val.isTop())
        Bind(T.ValExpr, R.Val);
      // Fresh "$s" extent symbols are memoized per (instruction, slot),
      // so each denotes exactly this variable's extent along d. Joined
      // ("$j") and pinned ("$w") symbols absorb several values and must
      // not be bound.
      for (size_t D = 0; D < T.Extents.size() && D < R.Dims.size(); ++D) {
        SymExpr E = T.Extents[D];
        if (E->kind() == SymKind::Sym &&
            E->symName().rfind("$s", 0) == 0 && !R.Dims[D].isTop())
          Bind(E, R.Dims[D]);
      }
    }
  }
}

Interval RangeAnalysis::boundOf(SymExpr E) const {
  if (!E)
    return Interval::top();
  return boundOfImpl(E, 0);
}

Interval RangeAnalysis::boundOfImpl(SymExpr E, unsigned Depth) const {
  Interval Direct = Interval::top();
  auto It = SymBounds.find(E);
  if (It != SymBounds.end())
    Direct = It->second;
  if (Depth > 16)
    return Direct;
  Interval Structural = Interval::top();
  switch (E->kind()) {
  case SymKind::Const:
    Structural = Interval::point(static_cast<double>(E->constValue()));
    break;
  case SymKind::Sym:
    if (E->symNonneg())
      Structural = {0, Inf};
    break;
  case SymKind::Add: {
    Structural = Interval::point(0);
    for (SymExpr Op : E->operands())
      Structural = iAdd(Structural, boundOfImpl(Op, Depth + 1));
    break;
  }
  case SymKind::Mul: {
    Structural = Interval::point(1);
    for (SymExpr Op : E->operands())
      Structural = iMul(Structural, boundOfImpl(Op, Depth + 1));
    break;
  }
  case SymKind::Max: {
    Structural = Interval::bottom();
    for (SymExpr Op : E->operands())
      Structural = iMax(Structural, boundOfImpl(Op, Depth + 1));
    break;
  }
  }
  Interval Met = Direct.meet(Structural);
  return Met.isBottom() ? Direct : Met;
}

//===----------------------------------------------------------------------===//
// Queries
//===----------------------------------------------------------------------===//

const VarRange &RangeAnalysis::rangeOf(const Function &F, VarId V) const {
  static const VarRange Top = [] {
    VarRange R;
    R.Defined = true;
    R.Val = Interval::top();
    return R;
  }();
  auto It = States.find(&F);
  if (It == States.end() || V < 0 ||
      static_cast<size_t>(V) >= It->second.Ranges.size())
    return Top;
  const VarRange &R = It->second.Ranges[V];
  // Bottom (never reached) would be unsound to expose as "impossible";
  // treat it as unknown.
  return R.Defined ? R : Top;
}

Interval RangeAnalysis::valueAt(const Function &F, BlockId B,
                                VarId V) const {
  auto It = States.find(&F);
  if (It == States.end())
    return Interval::top();
  const FuncState &S = It->second;
  if (V < 0 || static_cast<size_t>(V) >= S.Ranges.size())
    return Interval::top();
  const VarRange &R = S.Ranges[V];
  if (!R.Defined)
    return Interval::top();
  // Blocks appended after analysis (SSA-inversion edge splits) carry no
  // facts of their own; fall back to the flow-insensitive range.
  if (B == NoBlock || static_cast<size_t>(B) >= S.Facts.size())
    return R.Val;
  return applyFacts(S, B, V, R.Val);
}

Interval RangeAnalysis::numelBound(const Function &F, VarId V) const {
  Interval FromDims = numelOfDims(rangeOf(F, V).Dims);
  Interval FromSyms = Interval::top();
  if (TI.hasTypesFor(F)) {
    const VarType &T = TI.functionTypes(F)[V];
    if (!T.Extents.empty()) {
      FromSyms = Interval::point(1);
      for (SymExpr E : T.Extents)
        FromSyms = iMul(FromSyms, boundOf(E));
    }
  }
  Interval Met = FromDims.meet(FromSyms);
  if (!Met.isBottom())
    return Met;
  // Disagreement (one path is stale relative to the other's precision):
  // keep the tighter upper bound.
  return FromDims.Hi <= FromSyms.Hi ? FromDims : FromSyms;
}

std::int64_t RangeAnalysis::staticSizeBytes(const Function &F,
                                            VarId V) const {
  if (!TI.hasTypesFor(F))
    return -1;
  const std::vector<VarType> &Types = TI.functionTypes(F);
  if (V < 0 || static_cast<size_t>(V) >= Types.size())
    return -1;
  const VarType &T = Types[V];
  if (T.isBottom() || T.IT == IntrinsicType::Colon)
    return -1;
  std::int64_t Elem = static_cast<std::int64_t>(elemSizeBytes(T.IT));
  if (T.hasKnownShape())
    return T.knownNumElements() * Elem;
  Interval N = numelBound(F, V);
  if (!N.boundedAbove() || N.Hi < 0)
    return -1;
  // Profitability guard: a range-justified size is a worst case, and the
  // complex over-approximation doubles every element, so a non-scalar
  // "maybe complex" value reserves far more stack than the real data it
  // usually holds. Leave those on the heap.
  if (T.IT == IntrinsicType::Complex && N.Hi > 1)
    return -1;
  double Bytes = std::floor(N.Hi) * static_cast<double>(Elem);
  if (Bytes > static_cast<double>(kPromoteCapBytes))
    return -1;
  return static_cast<std::int64_t>(Bytes);
}

bool RangeAnalysis::provablyScalar(const Function &F, VarId V) const {
  if (TI.hasTypesFor(F) && TI.functionTypes(F)[V].isScalar())
    return true;
  return dimsProvablyScalar(rangeOf(F, V).Dims);
}

bool RangeAnalysis::provablyScalarOrVector(const Function &F,
                                           VarId V) const {
  if (provablyScalar(F, V))
    return true;
  const std::vector<Interval> &Dims = rangeOf(F, V).Dims;
  if (Dims.size() != 2)
    return false;
  auto Unit = [](const Interval &D) {
    return !D.isBottom() && D.Lo >= 1 && D.Hi <= 1;
  };
  return Unit(Dims[0]) || Unit(Dims[1]);
}

bool RangeAnalysis::subscriptInBounds(const Function &F, BlockId B,
                                      VarId Base, VarId Sub, unsigned Dim,
                                      unsigned Rank) const {
  // A ':' marker is not a value subscript; its interval is meaningless
  // here.
  if (TI.hasTypesFor(F) &&
      TI.functionTypes(F)[Sub].IT == IntrinsicType::Colon)
    return false;
  Interval Idx = valueAt(F, B, Sub);
  if (Idx.isBottom() || Idx.Lo < 1)
    return false;
  const VarRange &BaseR = rangeOf(F, Base);
  Interval Extent;
  if (Rank == 1) {
    Extent = numelBound(F, Base);
  } else {
    if (BaseR.Dims.size() < Rank || Dim >= BaseR.Dims.size())
      return false;
    Extent = BaseR.Dims[Dim];
    if (Dim + 1 == Rank && BaseR.Dims.size() > Rank)
      // Trailing subscript spans the remaining dimensions; be strict.
      return false;
  }
  // Also admit the symbolic-extent route: MaxElem-style proofs where the
  // inferred extent expression dominates the subscript's bound.
  if (!Extent.isBottom() && Extent.boundedBelow() && Idx.Hi <= Extent.Lo)
    return true;
  if (TI.hasTypesFor(F) && Rank >= 2) {
    const VarType &T = TI.functionTypes(F)[Base];
    if (Dim < T.Extents.size()) {
      Interval SymExtent = boundOf(T.Extents[Dim]);
      if (SymExtent.boundedBelow() && Idx.Hi <= SymExtent.Lo)
        return true;
    }
  }
  return false;
}
