//===- Interp.h - AST tree-walking interpreter ------------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A direct AST interpreter with MATLAB value semantics. It provides the
/// "intrp" series of the paper's Figure 5 and serves as the semantic
/// oracle for differential tests against both VM models: it shares the
/// runtime kernels and PRNG, so outputs compare byte-for-byte.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_INTERP_INTERP_H
#define MATCOAL_INTERP_INTERP_H

#include "frontend/AST.h"
#include "runtime/Kernels.h"
#include "runtime/Value.h"
#include "support/Cancellation.h"

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace matcoal {

class RuntimeProfiler;

/// Outcome of one interpreted execution.
struct InterpResult {
  bool OK = false;
  std::string Error;
  /// What stopped execution when !OK: a program error or an exhausted
  /// execution guard (budget, heap cap, recursion depth).
  TrapKind Trap = TrapKind::None;
  std::string Output;
  std::uint64_t Steps = 0;
  double WallSeconds = 0;
  /// Binary operators whose result was computed destructively into the
  /// left temporary's storage (no fresh result array).
  std::uint64_t DestructiveOps = 0;
  /// Temporary-buffer allocations served by the run's free-list pool.
  std::uint64_t PoolReuses = 0;
};

/// Interprets a parsed Program.
class Interpreter {
public:
  explicit Interpreter(const Program &Prog, std::uint64_t Seed = 20030609)
      : Prog(Prog), Seed(Seed) {}

  InterpResult run(const std::string &Entry = "main",
                   const std::vector<Array> &Args = {});

  void setStepBudget(std::uint64_t Budget) { StepBudget = Budget; }
  /// Maximum live environment bytes before trapping; 0 means unlimited.
  void setHeapLimit(std::int64_t Bytes) { HeapLimit = Bytes; }
  /// Maximum call depth before trapping.
  void setRecursionLimit(unsigned Depth) { RecursionLimit = Depth; }
  /// Enables (default) or disables destructive temporaries and the
  /// free-list pool, mirroring the VM's switch so `--no-fuse` runs are
  /// comparable across engines.
  void setBufferReuse(bool On) { ReuseBuffers = On; }
  /// Attaches a runtime storage profiler: every binding's size change,
  /// pool reuse, environment release, and trap is recorded against the
  /// step clock. The interpreter has no storage plan, so all slots record
  /// under group -1 with their variable names. Null costs nothing.
  void setProfiler(RuntimeProfiler *P) { Prof = P; }
  /// Attaches a cooperative cancellation token, polled every 256 steps;
  /// expiry unwinds with `TrapKind::Deadline`. Mirrors the VM's switch so
  /// every execution tier honors the same per-request deadline. The token
  /// must outlive the run and may be armed from another thread.
  void setCancelToken(const CancelToken *T) { Cancel = T; }

private:
  enum class Flow { Normal, Break, Continue, Return };
  using Env = std::map<std::string, Array>;

  std::vector<Array> callFunction(const FunctionDecl &F,
                                  const std::vector<Array> &Args,
                                  unsigned NumResults);
  Flow execStmtList(const StmtList &Body, Env &E);
  Flow execStmt(const Stmt &S, Env &E);
  Array evalExpr(const Expr &Ex, Env &E);
  std::vector<Array> evalCallOrIndex(const CallOrIndexExpr &Ex, Env &E,
                                     unsigned NumResults);
  Array evalSubscript(const Expr &Ex, Env &E, const Array &Base,
                      unsigned DimIndex, unsigned NumSubs);
  void step();
  /// Assigns \p V to \p Name, keeping the live-heap meter current.
  void setVar(Env &E, const std::string &Name, Array V);
  /// Adjusts the live-heap meter and traps past the configured cap.
  void chargeHeap(std::int64_t Delta);
  /// Uncharges every binding of a dying environment (function return).
  void releaseEnv(Env &E);

  const Program &Prog;
  std::uint64_t Seed;
  RandState Rng{0};
  OutputSink Out;
  std::uint64_t Steps = 0;
  std::uint64_t StepBudget = 2000000000ull;
  unsigned CallDepth = 0;
  unsigned RecursionLimit = 512;
  std::int64_t HeapLimit = 0;
  std::int64_t HeapBytes = 0;
  bool ReuseBuffers = true;
  std::uint64_t DestructiveOps = 0;
  RuntimeProfiler *Prof = nullptr;
  const CancelToken *Cancel = nullptr;
  std::string CurFn; ///< Name of the function being executed.

  struct EndContext {
    const Array *Base;
    unsigned DimIndex;
    unsigned NumSubs;
  };
  std::vector<EndContext> EndStack;
};

} // namespace matcoal

#endif // MATCOAL_INTERP_INTERP_H
