//===- Interp.cpp ---------------------------------------------------------===//

#include "interp/Interp.h"

#include "observe/RuntimeProfiler.h"
#include "runtime/BufferPool.h"

#include <chrono>
#include <cmath>
#include <new>

using namespace matcoal;

void Interpreter::step() {
  if (++Steps > StepBudget)
    throw MatError("step budget exceeded (infinite loop?)",
                   TrapKind::OpBudget);
  if (Cancel && (Steps & 255) == 0 && Cancel->expired())
    throw MatError(Cancel->cancelled() ? "execution cancelled"
                                       : "deadline exceeded",
                   TrapKind::Deadline);
}

void Interpreter::chargeHeap(std::int64_t Delta) {
  HeapBytes += Delta;
  if (HeapLimit && HeapBytes > HeapLimit)
    throw MatError("heap limit exceeded", TrapKind::HeapLimit);
}

void Interpreter::setVar(Env &E, const std::string &Name, Array V) {
  Array &Slot = E[Name];
  // Uncharge the dying binding before its buffers enter the
  // (heap-charged) pool, so the meter never double-counts the handoff.
  chargeHeap(-Slot.dataBytes());
  if (!Slot.Re.empty())
    poolGive(std::move(Slot.Re));
  if (!Slot.Im.empty())
    poolGive(std::move(Slot.Im));
  Slot = std::move(V);
  chargeHeap(Slot.dataBytes());
  if (Prof)
    Prof->size(Steps, CurFn, -1, Name, Slot.dataBytes());
}

void Interpreter::releaseEnv(Env &E) {
  for (auto &KV : E)
    HeapBytes -= KV.second.dataBytes();
}

InterpResult Interpreter::run(const std::string &Entry,
                              const std::vector<Array> &Args) {
  InterpResult R;
  const FunctionDecl *F = Prog.findFunction(Entry);
  if (!F) {
    R.Error = "no function named '" + Entry + "'";
    return R;
  }
  Rng = RandState(Seed);
  Out.clear();
  Steps = 0;
  CallDepth = 0;
  HeapBytes = 0;
  DestructiveOps = 0;
  CurFn.clear();
  // Free-list pool for dead binding buffers. Its occupancy is a separate
  // account from the live-heap meter, but still counts against the heap
  // cap (only growth may trap -- the post-run drain must not throw).
  std::int64_t PoolHeld = 0;
  BufferPool Pool;
  Pool.Charge = [this, &PoolHeld](std::int64_t D) {
    PoolHeld += D;
    if (D > 0 && HeapLimit && HeapBytes + PoolHeld > HeapLimit)
      throw MatError("heap limit exceeded", TrapKind::HeapLimit);
  };
  Pool.OnReuse = [this] {
    if (Prof)
      Prof->event(ProfEventKind::PoolReuse, Steps, "", -1, "pool");
  };
  auto Start = std::chrono::steady_clock::now();
  try {
    PoolScope Scope(ReuseBuffers ? &Pool : nullptr);
    callFunction(*F, Args, 0);
    R.OK = true;
  } catch (const MatError &E) {
    R.Error = E.what();
    R.Trap = E.Kind;
  } catch (const std::bad_alloc &) {
    R.Error = "out of memory";
    R.Trap = TrapKind::OutOfMemory;
  } catch (const std::exception &E) {
    R.Error = std::string("internal error: ") + E.what();
    R.Trap = TrapKind::RuntimeError;
  }
  if (!R.OK && Prof)
    Prof->event(ProfEventKind::Trap, Steps, Entry, -1, "trap", 0, R.Error);
  auto End = std::chrono::steady_clock::now();
  R.WallSeconds = std::chrono::duration<double>(End - Start).count();
  Pool.drain();
  R.Output = Out.str();
  R.Steps = Steps;
  R.DestructiveOps = DestructiveOps;
  R.PoolReuses = Pool.reuses();
  return R;
}

std::vector<Array> Interpreter::callFunction(const FunctionDecl &F,
                                             const std::vector<Array> &Args,
                                             unsigned NumResults) {
  if (++CallDepth > RecursionLimit) {
    --CallDepth;
    throw MatError("maximum recursion depth exceeded",
                   TrapKind::RecursionDepth);
  }
  if (Args.size() < F.Params.size())
    throw MatError("not enough arguments to " + F.Name);
  std::string PrevFn = CurFn;
  CurFn = F.Name;
  Env E;
  for (size_t K = 0; K < F.Params.size(); ++K)
    setVar(E, F.Params[K], Args[K]);
  execStmtList(F.Body, E);
  std::vector<Array> Outputs;
  unsigned Want = std::max<unsigned>(NumResults,
                                     F.Outputs.empty() ? 0 : 1);
  for (unsigned K = 0; K < Want && K < F.Outputs.size(); ++K) {
    auto It = E.find(F.Outputs[K]);
    if (It == E.end())
      throw MatError("output argument '" + F.Outputs[K] +
                     "' not assigned in " + F.Name);
    Outputs.push_back(It->second);
  }
  if (Prof)
    for (const auto &KV : E)
      if (KV.second.dataBytes() > 0)
        Prof->event(ProfEventKind::Free, Steps, F.Name, -1, KV.first);
  releaseEnv(E);
  CurFn = std::move(PrevFn);
  --CallDepth;
  return Outputs;
}

Interpreter::Flow Interpreter::execStmtList(const StmtList &Body, Env &E) {
  for (const StmtPtr &S : Body) {
    Flow F = execStmt(*S, E);
    if (F != Flow::Normal)
      return F;
  }
  return Flow::Normal;
}

Interpreter::Flow Interpreter::execStmt(const Stmt &S, Env &E) {
  step();
  switch (S.kind()) {
  case StmtKind::Assign: {
    const auto &A = static_cast<const AssignStmt &>(S);
    if (A.Target.Indices.empty()) {
      setVar(E, A.Target.Name, evalExpr(*A.Value, E));
    } else {
      Array Rhs = evalExpr(*A.Value, E);
      Array &Base = E[A.Target.Name]; // Creates empty if absent (growth).
      unsigned NumSubs = static_cast<unsigned>(A.Target.Indices.size());
      std::vector<Array> SubVals;
      SubVals.reserve(NumSubs);
      for (unsigned K = 0; K < NumSubs; ++K)
        SubVals.push_back(
            evalSubscript(*A.Target.Indices[K], E, Base, K, NumSubs));
      std::vector<const Array *> Subs;
      for (const Array &V : SubVals)
        Subs.push_back(&V);
      std::int64_t Before = Base.dataBytes();
      subsasgnInPlace(Base, Rhs, Subs);
      chargeHeap(Base.dataBytes() - Before);
    }
    if (A.Display)
      Out.write(E[A.Target.Name].formatNamed(A.Target.Name));
    return Flow::Normal;
  }
  case StmtKind::MultiAssign: {
    const auto &MA = static_cast<const MultiAssignStmt &>(S);
    const auto &Call = static_cast<const CallOrIndexExpr &>(*MA.Call);
    std::vector<Array> Results = evalCallOrIndex(
        Call, E, static_cast<unsigned>(MA.Targets.size()));
    if (Results.size() < MA.Targets.size())
      throw MatError("too many output arguments for " + Call.Name);
    for (size_t K = 0; K < MA.Targets.size(); ++K)
      setVar(E, MA.Targets[K].Name, std::move(Results[K]));
    if (MA.Display)
      for (const LValue &T : MA.Targets)
        Out.write(E[T.Name].formatNamed(T.Name));
    return Flow::Normal;
  }
  case StmtKind::ExprStmt: {
    const auto &ES = static_cast<const ExprStmt &>(S);
    // Zero-output call statements (disp/fprintf) must not demand a value.
    if (ES.Value->kind() == ExprKind::CallOrIndex) {
      const auto &Call = static_cast<const CallOrIndexExpr &>(*ES.Value);
      if (!E.count(Call.Name)) {
        std::vector<Array> Results =
            evalCallOrIndex(Call, E, ES.Display ? 1 : 0);
        if (ES.Display) {
          if (Results.empty())
            throw MatError("one output argument required from " +
                           Call.Name);
          Out.write(Results[0].formatNamed("ans"));
        }
        return Flow::Normal;
      }
    }
    Array V = evalExpr(*ES.Value, E);
    if (ES.Display) {
      std::string Name = ES.Value->kind() == ExprKind::Ident
                             ? static_cast<const IdentExpr &>(*ES.Value).Name
                             : "ans";
      Out.write(V.formatNamed(Name));
    }
    return Flow::Normal;
  }
  case StmtKind::If: {
    const auto &If = static_cast<const IfStmt &>(S);
    for (const IfStmt::Branch &B : If.Branches) {
      if (evalExpr(*B.Cond, E).truth())
        return execStmtList(B.Body, E);
    }
    return execStmtList(If.ElseBody, E);
  }
  case StmtKind::Switch: {
    const auto &Sw = static_cast<const SwitchStmt &>(S);
    Array Cond = evalExpr(*Sw.Cond, E);
    for (const SwitchStmt::Case &C : Sw.Cases) {
      Array V = evalExpr(*C.Value, E);
      std::vector<const Array *> Args = {&Cond, &V};
      auto R = callBuiltin("__switcheq", Args, 1, Rng, Out);
      if (!R.empty() && R[0].truth())
        return execStmtList(C.Body, E);
    }
    return execStmtList(Sw.Otherwise, E);
  }
  case StmtKind::While: {
    const auto &W = static_cast<const WhileStmt &>(S);
    while (true) {
      step();
      if (!evalExpr(*W.Cond, E).truth())
        break;
      Flow F = execStmtList(W.Body, E);
      if (F == Flow::Break)
        break;
      if (F == Flow::Return)
        return F;
    }
    return Flow::Normal;
  }
  case StmtKind::For: {
    const auto &For = static_cast<const ForStmt &>(S);
    if (For.Range->kind() == ExprKind::Range) {
      // Counted loop, matching the compiled lowering exactly.
      const auto &R = static_cast<const RangeExpr &>(*For.Range);
      double Lo = evalExpr(*R.Start, E).scalarValue();
      double Step = R.Step ? evalExpr(*R.Step, E).scalarValue() : 1.0;
      double Hi = evalExpr(*R.Stop, E).scalarValue();
      for (double V = Lo; Step >= 0 ? V <= Hi : V >= Hi; V += Step) {
        step();
        setVar(E, For.Var, Array::scalar(V));
        Flow F = execStmtList(For.Body, E);
        if (F == Flow::Break)
          break;
        if (F == Flow::Return)
          return F;
        if (Step == 0)
          break;
      }
      return Flow::Normal;
    }
    // General form: iterate over columns.
    Array A = evalExpr(*For.Range, E);
    std::int64_t R = A.dim(0), C = A.dim(1);
    for (std::int64_t J = 0; J < C; ++J) {
      step();
      Array Col;
      Col.Dims = {R, 1};
      Col.Re.resize(static_cast<size_t>(R));
      if (A.isComplex())
        Col.Im.resize(static_cast<size_t>(R));
      for (std::int64_t I = 0; I < R; ++I) {
        Col.Re[I] = A.reAt(I + J * R);
        if (A.isComplex())
          Col.Im[I] = A.imAt(I + J * R);
      }
      Col.normalizeComplex();
      setVar(E, For.Var, std::move(Col));
      Flow F = execStmtList(For.Body, E);
      if (F == Flow::Break)
        break;
      if (F == Flow::Return)
        return F;
    }
    return Flow::Normal;
  }
  case StmtKind::Break:
    return Flow::Break;
  case StmtKind::Continue:
    return Flow::Continue;
  case StmtKind::Return:
    return Flow::Return;
  }
  return Flow::Normal;
}

Array Interpreter::evalSubscript(const Expr &Ex, Env &E, const Array &Base,
                                 unsigned DimIndex, unsigned NumSubs) {
  if (Ex.kind() == ExprKind::ColonAll)
    return Array::colonMarker();
  EndStack.push_back({&Base, DimIndex, NumSubs});
  Array V = evalExpr(Ex, E);
  EndStack.pop_back();
  return V;
}

std::vector<Array> Interpreter::evalCallOrIndex(const CallOrIndexExpr &Ex,
                                                Env &E,
                                                unsigned NumResults) {
  auto It = E.find(Ex.Name);
  if (It != E.end()) {
    // R-indexing. Note: evaluate subscripts against a stable copy of the
    // base reference (subscripts cannot modify E's arrays).
    const Array &Base = It->second;
    unsigned NumSubs = static_cast<unsigned>(Ex.Args.size());
    if (NumSubs == 0)
      return {Base};
    std::vector<Array> SubVals;
    SubVals.reserve(NumSubs);
    for (unsigned K = 0; K < NumSubs; ++K)
      SubVals.push_back(evalSubscript(*Ex.Args[K], E, Base, K, NumSubs));
    std::vector<const Array *> Subs;
    for (const Array &V : SubVals)
      Subs.push_back(&V);
    return {subsref(Base, Subs)};
  }
  // A call. Arguments are evaluated left to right (matching lowering).
  std::vector<Array> Args;
  for (const ExprPtr &A : Ex.Args) {
    if (A->kind() == ExprKind::ColonAll)
      throw MatError("':' is only valid as a subscript");
    Args.push_back(evalExpr(*A, E));
  }
  if (const FunctionDecl *F = Prog.findFunction(Ex.Name))
    return callFunction(*F, Args, std::max(1u, NumResults));
  std::vector<const Array *> ArgPtrs;
  for (const Array &A : Args)
    ArgPtrs.push_back(&A);
  return callBuiltin(Ex.Name, ArgPtrs, std::max(1u, NumResults), Rng, Out);
}

Array Interpreter::evalExpr(const Expr &Ex, Env &E) {
  step();
  switch (Ex.kind()) {
  case ExprKind::Number: {
    const auto &N = static_cast<const NumberExpr &>(Ex);
    return N.IsImaginary ? Array::complexScalar(0.0, N.Value)
                         : Array::scalar(N.Value);
  }
  case ExprKind::String:
    return Array::charRow(static_cast<const StringExpr &>(Ex).Value);
  case ExprKind::Ident: {
    const auto &Id = static_cast<const IdentExpr &>(Ex);
    auto It = E.find(Id.Name);
    if (It != E.end())
      return It->second;
    // Zero-argument call.
    if (const FunctionDecl *F = Prog.findFunction(Id.Name)) {
      auto R = callFunction(*F, {}, 1);
      if (R.empty())
        throw MatError(Id.Name + " returns no value");
      return R[0];
    }
    auto R = callBuiltin(Id.Name, {}, 1, Rng, Out);
    if (R.empty())
      throw MatError(Id.Name + " returns no value");
    return R[0];
  }
  case ExprKind::ColonAll:
    throw MatError("':' is only valid as a subscript");
  case ExprKind::EndIndex: {
    if (EndStack.empty())
      throw MatError("'end' is only valid inside a subscript");
    const EndContext &Ctx = EndStack.back();
    if (Ctx.NumSubs == 1)
      return Array::scalar(static_cast<double>(Ctx.Base->numel()));
    if (Ctx.DimIndex + 1 == Ctx.NumSubs) {
      // Last subscript: folded trailing dimensions.
      std::int64_t Fold = 1;
      for (size_t D = Ctx.DimIndex; D < Ctx.Base->dims().size(); ++D)
        Fold *= Ctx.Base->dim(D);
      return Array::scalar(static_cast<double>(Fold));
    }
    return Array::scalar(static_cast<double>(Ctx.Base->dim(Ctx.DimIndex)));
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(Ex);
    Array V = evalExpr(*U.Operand, E);
    switch (U.Op) {
    case UnaryOp::Plus:
      return unaryOp(Opcode::UPlus, V);
    case UnaryOp::Minus:
      return unaryOp(Opcode::Neg, V);
    case UnaryOp::Not:
      return unaryOp(Opcode::Not, V);
    }
    return V;
  }
  case ExprKind::Binary: {
    const auto &B = static_cast<const BinaryExpr &>(Ex);
    if (B.Op == BinaryOp::AndAnd || B.Op == BinaryOp::OrOr) {
      bool L = evalExpr(*B.LHS, E).truth();
      if (B.Op == BinaryOp::AndAnd && !L)
        return Array::logicalScalar(false);
      if (B.Op == BinaryOp::OrOr && L)
        return Array::logicalScalar(true);
      return Array::logicalScalar(evalExpr(*B.RHS, E).truth());
    }
    Array L = evalExpr(*B.LHS, E);
    Array R = evalExpr(*B.RHS, E);
    Opcode Op;
    switch (B.Op) {
    case BinaryOp::Add: Op = Opcode::Add; break;
    case BinaryOp::Sub: Op = Opcode::Sub; break;
    case BinaryOp::MatMul: Op = Opcode::MatMul; break;
    case BinaryOp::ElemMul: Op = Opcode::ElemMul; break;
    case BinaryOp::MatRDiv: Op = Opcode::MatRDiv; break;
    case BinaryOp::ElemRDiv: Op = Opcode::ElemRDiv; break;
    case BinaryOp::MatLDiv: Op = Opcode::MatLDiv; break;
    case BinaryOp::ElemLDiv: Op = Opcode::ElemLDiv; break;
    case BinaryOp::MatPow: Op = Opcode::MatPow; break;
    case BinaryOp::ElemPow: Op = Opcode::ElemPow; break;
    case BinaryOp::Lt: Op = Opcode::Lt; break;
    case BinaryOp::Le: Op = Opcode::Le; break;
    case BinaryOp::Gt: Op = Opcode::Gt; break;
    case BinaryOp::Ge: Op = Opcode::Ge; break;
    case BinaryOp::Eq: Op = Opcode::Eq; break;
    case BinaryOp::Ne: Op = Opcode::Ne; break;
    case BinaryOp::And: Op = Opcode::And; break;
    case BinaryOp::Or: Op = Opcode::Or; break;
    default:
      throw MatError("unsupported binary operator");
    }
    if (ReuseBuffers) {
      // L and R are owned temporaries, so the result may overwrite L's
      // storage destructively; binaryOpInto's internal fallback keeps
      // non-elementwise and complex results identical to binaryOp.
      if (binaryOpInto(L, Op, L, R))
        ++DestructiveOps;
      return L;
    }
    return binaryOp(Op, L, R);
  }
  case ExprKind::CallOrIndex: {
    auto R = evalCallOrIndex(static_cast<const CallOrIndexExpr &>(Ex), E, 1);
    if (R.empty())
      throw MatError("expression produced no value");
    return R[0];
  }
  case ExprKind::Range: {
    const auto &R = static_cast<const RangeExpr &>(Ex);
    Array Lo = evalExpr(*R.Start, E);
    if (!R.Step) {
      Array Hi = evalExpr(*R.Stop, E);
      return colonRange(Lo, Hi);
    }
    Array Step = evalExpr(*R.Step, E);
    Array Hi = evalExpr(*R.Stop, E);
    return colonRange3(Lo, Step, Hi);
  }
  case ExprKind::Matrix: {
    const auto &Mat = static_cast<const MatrixExpr &>(Ex);
    if (Mat.Rows.empty())
      return Array();
    std::vector<Array> RowVals;
    for (const auto &Row : Mat.Rows) {
      std::vector<Array> Elems;
      for (const ExprPtr &Elt : Row)
        Elems.push_back(evalExpr(*Elt, E));
      if (Elems.size() == 1) {
        RowVals.push_back(std::move(Elems[0]));
        continue;
      }
      std::vector<const Array *> Ptrs;
      for (const Array &A : Elems)
        Ptrs.push_back(&A);
      RowVals.push_back(horzcat(Ptrs));
    }
    if (RowVals.size() == 1)
      return RowVals[0];
    std::vector<const Array *> Ptrs;
    for (const Array &A : RowVals)
      Ptrs.push_back(&A);
    return vertcat(Ptrs);
  }
  case ExprKind::Transpose: {
    const auto &T = static_cast<const TransposeExpr &>(Ex);
    Array V = evalExpr(*T.Operand, E);
    return unaryOp(T.Conjugate ? Opcode::CTranspose : Opcode::Transpose, V);
  }
  }
  throw MatError("unsupported expression");
}
