//===- Types.h - Inferred MATLAB value types --------------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The type domain of the inference engine: an intrinsic-type lattice
/// (paper section 3.1 lists BOOLEAN, INTEGER, REAL, COMPLEX and the
/// illegal type), a shape tuple of symbolic extents, and an optional
/// symbolic scalar value (how size()/numel() results feed back into shape
/// expressions, mirroring MAGICA's value-range inference).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_TYPEINF_TYPES_H
#define MATCOAL_TYPEINF_TYPES_H

#include "support/SymExpr.h"

#include <cstdint>
#include <string>
#include <vector>

namespace matcoal {

/// The intrinsic-type lattice: None (bottom) < Bool < Int < Real <
/// Complex; Char sits beside the numeric chain (joining with numerics
/// yields Real); Colon types the ':' subscript marker; Illegal is top.
enum class IntrinsicType {
  None, ///< Bottom: not yet inferred.
  Bool,
  Int,
  Char,
  Real,
  Complex,
  Colon,
  Illegal,
};

const char *intrinsicTypeName(IntrinsicType IT);

/// Lattice join.
IntrinsicType joinIntrinsic(IntrinsicType A, IntrinsicType B);

/// Storage bytes per element in the generated code / runtime (|t| in the
/// paper's size formula |s(u)||t(u)|). The runtime boxes every non-complex
/// element as a double.
unsigned elemSizeBytes(IntrinsicType IT);

/// The inferred type of one SSA variable.
struct VarType {
  IntrinsicType IT = IntrinsicType::None;
  /// Shape tuple: one symbolic extent per dimension; rank >= 2 once
  /// inferred (MATLAB scalars are 1x1). Empty while IT is None.
  std::vector<SymExpr> Extents;
  /// Symbolic integer value for scalar variables when derivable (constant
  /// literals, size()/numel() results, arithmetic thereon). Null otherwise.
  SymExpr ValExpr = nullptr;
  /// Upper bound on the largest element value of an integer subscript
  /// vector (scalars: the value itself; ranges lo:hi: max(lo, hi)). Used
  /// by the subsasgn growth rule (paper section 2.3.3). Null if unknown.
  SymExpr MaxElem = nullptr;

  bool isBottom() const { return IT == IntrinsicType::None; }

  /// True when every extent is the constant 1.
  bool isScalar() const {
    if (Extents.empty())
      return false;
    for (SymExpr E : Extents)
      if (!E->isConst() || E->constValue() != 1)
        return false;
    return true;
  }

  /// True when every extent is an integer constant (the paper's
  /// "statically estimable" condition 1, section 3.2.1).
  bool hasKnownShape() const {
    if (Extents.empty())
      return false;
    for (SymExpr E : Extents)
      if (!E->isConst())
        return false;
    return true;
  }

  /// Element count when the shape is known.
  std::int64_t knownNumElements() const {
    std::int64_t N = 1;
    for (SymExpr E : Extents)
      N *= E->constValue();
    return N;
  }

  std::string str() const;
};

} // namespace matcoal

#endif // MATCOAL_TYPEINF_TYPES_H
