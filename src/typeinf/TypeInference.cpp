//===- TypeInference.cpp --------------------------------------------------===//

#include "typeinf/TypeInference.h"

#include "analysis/Dominators.h"

#include <algorithm>
#include <cassert>
#include <cmath>

using namespace matcoal;

namespace {

bool isIntegralConst(double V) {
  return std::isfinite(V) && V == std::floor(V);
}

/// Promotes the result of arithmetic: Bool -> Int, Char -> Real.
IntrinsicType arithPromote(IntrinsicType IT) {
  return joinIntrinsic(IT, IntrinsicType::Int);
}

} // namespace

const std::vector<VarType> &
TypeInference::functionTypes(const Function &F) const {
  auto It = AllTypes.find(&F);
  assert(It != AllTypes.end() && "types not inferred for function");
  return It->second;
}

bool TypeInference::typesEqual(const VarType &A, const VarType &B) {
  return A.IT == B.IT && A.Extents == B.Extents && A.ValExpr == B.ValExpr &&
         A.MaxElem == B.MaxElem;
}

std::vector<SymExpr> TypeInference::scalarShape() {
  return {Ctx.makeConst(1), Ctx.makeConst(1)};
}

SymExpr TypeInference::freshExtent(const Instr &I, int Slot) {
  auto Key = std::make_pair(&I, Slot);
  auto It = FreshCache.find(Key);
  if (It != FreshCache.end())
    return It->second;
  SymExpr S = Ctx.freshSym("$s");
  FreshCache.emplace(Key, S);
  return S;
}

std::vector<SymExpr> TypeInference::freshShape(const Instr &I, int Base,
                                               unsigned Rank) {
  std::vector<SymExpr> Shape;
  for (unsigned D = 0; D < Rank; ++D)
    Shape.push_back(freshExtent(I, Base + static_cast<int>(D)));
  return Shape;
}

std::vector<SymExpr> TypeInference::joinShape(const std::vector<SymExpr> &A,
                                              const std::vector<SymExpr> &B) {
  if (A.empty())
    return B;
  if (B.empty())
    return A;
  size_t Rank = std::max(A.size(), B.size());
  std::vector<SymExpr> Out;
  for (size_t D = 0; D < Rank; ++D) {
    SymExpr EA = D < A.size() ? A[D] : Ctx.makeConst(1);
    SymExpr EB = D < B.size() ? B[D] : Ctx.makeConst(1);
    if (EA == EB) {
      Out.push_back(EA);
      continue;
    }
    // A pinned (widened) extent absorbs any join.
    if (Pinned.count(EA)) {
      Out.push_back(EA);
      continue;
    }
    if (Pinned.count(EB)) {
      Out.push_back(EB);
      continue;
    }
    auto Key = std::minmax(EA->id(), EB->id());
    auto It = JoinCache.find(Key);
    if (It != JoinCache.end()) {
      Out.push_back(It->second);
      continue;
    }
    SymExpr S = Ctx.freshSym("$j");
    JoinCache.emplace(Key, S);
    Out.push_back(S);
  }
  return Out;
}

VarType TypeInference::joinTypes(const VarType &A, const VarType &B) {
  if (A.isBottom())
    return B;
  if (B.isBottom())
    return A;
  VarType Out;
  Out.IT = joinIntrinsic(A.IT, B.IT);
  Out.Extents = joinShape(A.Extents, B.Extents);
  Out.ValExpr = A.ValExpr == B.ValExpr ? A.ValExpr : nullptr;
  Out.MaxElem = A.MaxElem == B.MaxElem ? A.MaxElem : nullptr;
  return Out;
}

std::vector<SymExpr> TypeInference::elementwiseShape(const VarType &A,
                                                     const VarType &B,
                                                     const Instr &I) {
  if (A.isScalar())
    return B.Extents;
  if (B.isScalar())
    return A.Extents;
  if (A.Extents == B.Extents)
    return A.Extents;
  if (A.hasKnownShape() && B.hasKnownShape()) {
    // Known but different: a shape error at run time; carry the larger so
    // storage stays safe.
    return A.knownNumElements() >= B.knownNumElements() ? A.Extents
                                                        : B.Extents;
  }
  // Unknown relationship: a fresh (memoized) shape. MATLAB requires the
  // shapes to match, so rank follows either operand.
  unsigned Rank =
      static_cast<unsigned>(std::max(A.Extents.size(), B.Extents.size()));
  if (Rank < 2)
    Rank = 2;
  return freshShape(I, /*Base=*/100, Rank);
}

std::vector<SymExpr>
TypeInference::shapeFromDims(const Instr &I,
                             const std::vector<VarType> &Types) {
  // zeros(), zeros(n), zeros(m, n), zeros(m, n, p)...
  if (I.Operands.empty())
    return scalarShape();
  std::vector<SymExpr> Dims;
  for (size_t K = 0; K < I.Operands.size(); ++K) {
    const VarType &T = Types[I.Operands[K]];
    if (T.ValExpr)
      Dims.push_back(T.ValExpr);
    else
      Dims.push_back(freshExtent(I, static_cast<int>(K)));
  }
  if (Dims.size() == 1)
    return {Dims[0], Dims[0]}; // zeros(n) is n x n.
  return Dims;
}

bool TypeInference::updateType(VarType &Slot, VarType New, const Function &F,
                               VarId V) {
  if (typesEqual(Slot, New))
    return false;
  int &Count = ChangeCount[{&F, V}];
  ++Count;
  if (Count > 6) {
    // Widen: pin every still-changing extent so joins stabilize.
    for (size_t D = 0; D < New.Extents.size(); ++D) {
      if (D < Slot.Extents.size() && Slot.Extents[D] == New.Extents[D])
        continue;
      if (!New.Extents[D]->isConst() || Count > 8) {
        SymExpr P = Ctx.freshSym("$w");
        Pinned.insert(P);
        New.Extents[D] = P;
      }
    }
    New.ValExpr = nullptr;
    New.MaxElem = nullptr;
    if (typesEqual(Slot, New))
      return false;
  }
  Slot = std::move(New);
  return true;
}

//===----------------------------------------------------------------------===//
// Builtin signatures
//===----------------------------------------------------------------------===//

VarType TypeInference::transferBuiltin(Function &F, const Instr &I,
                                       const std::vector<VarType> &Types,
                                       unsigned ResultIdx) {
  const std::string &Name = I.StrVal;
  auto Arg = [&](unsigned K) -> const VarType & {
    static VarType Bottom;
    return K < I.Operands.size() ? Types[I.Operands[K]] : Bottom;
  };
  VarType Out;

  // Array constructors.
  if (Name == "zeros" || Name == "ones" || Name == "rand" ||
      Name == "randn") {
    Out.IT = IntrinsicType::Real;
    if (Name == "zeros" || Name == "ones") {
      // MAGICA-style value-range typing: all-0 / all-1 contents are
      // BOOLEAN (cf. the paper's Example 2 where eye() is BOOLEAN).
      Out.IT = IntrinsicType::Bool;
    }
    Out.Extents = shapeFromDims(I, Types);
    if (Out.isScalar() && Name == "zeros")
      Out.ValExpr = Ctx.makeConst(0);
    if (Out.isScalar() && Name == "ones")
      Out.ValExpr = Ctx.makeConst(1);
    return Out;
  }
  if (Name == "eye") {
    Out.IT = IntrinsicType::Bool; // Values in {0, 1}: paper's Example 2.
    Out.Extents = shapeFromDims(I, Types);
    return Out;
  }
  if (Name == "linspace") {
    Out.IT = IntrinsicType::Real;
    SymExpr N = Arg(2).ValExpr;
    Out.Extents = {Ctx.makeConst(1),
                   N ? N : (I.Operands.size() >= 3 ? freshExtent(I, 2)
                                                   : Ctx.makeConst(100))};
    return Out;
  }
  if (Name == "repmat") {
    const VarType &A = Arg(0);
    Out.IT = A.IT;
    SymExpr M = Arg(1).ValExpr ? Arg(1).ValExpr : freshExtent(I, 1);
    SymExpr N = Arg(2).ValExpr ? Arg(2).ValExpr : freshExtent(I, 2);
    if (A.Extents.size() >= 2)
      Out.Extents = {Ctx.mul(A.Extents[0], M), Ctx.mul(A.Extents[1], N)};
    else
      Out.Extents = {M, N};
    return Out;
  }

  // Shape queries: these are where symbolic shapes feed scalar values.
  if (Name == "size") {
    Out.IT = IntrinsicType::Int;
    const VarType &A = Arg(0);
    if (I.Results.size() == 2) {
      // [m, n] = size(a).
      Out.Extents = scalarShape();
      if (A.Extents.size() >= 2)
        Out.ValExpr = ResultIdx == 0 ? A.Extents[0] : A.Extents[1];
      Out.MaxElem = Out.ValExpr;
      return Out;
    }
    if (I.Operands.size() == 2) {
      Out.Extents = scalarShape();
      const VarType &K = Arg(1);
      if (K.ValExpr && K.ValExpr->isConst()) {
        size_t D = static_cast<size_t>(K.ValExpr->constValue()) - 1;
        Out.ValExpr = D < A.Extents.size() ? A.Extents[D] : Ctx.makeConst(1);
      }
      Out.MaxElem = Out.ValExpr;
      return Out;
    }
    Out.Extents = {Ctx.makeConst(1),
                   Ctx.makeConst(static_cast<std::int64_t>(
                       std::max<size_t>(A.Extents.size(), 2)))};
    return Out;
  }
  if (Name == "numel") {
    Out.IT = IntrinsicType::Int;
    Out.Extents = scalarShape();
    if (!Arg(0).Extents.empty())
      Out.ValExpr = Ctx.numElements(Arg(0).Extents);
    Out.MaxElem = Out.ValExpr;
    return Out;
  }
  if (Name == "length") {
    Out.IT = IntrinsicType::Int;
    Out.Extents = scalarShape();
    if (!Arg(0).Extents.empty())
      Out.ValExpr = Ctx.max(Arg(0).Extents);
    Out.MaxElem = Out.ValExpr;
    return Out;
  }
  if (Name == "isempty") {
    Out.IT = IntrinsicType::Bool;
    Out.Extents = scalarShape();
    return Out;
  }

  // Elementwise math: the result *shares* the operand's shape expression
  // (the reuse trait of paper Example 1).
  static const std::set<std::string> ElementwiseReal = {
      "abs",  "floor", "ceil", "round", "fix", "real",
      "imag", "angle", "sign"};
  static const std::set<std::string> ElementwiseKeep = {"conj"};
  static const std::set<std::string> ElementwiseAnalytic = {
      "exp", "sin", "cos", "tan", "sinh", "cosh", "tanh", "asin", "acos",
      "atan"};
  if (ElementwiseReal.count(Name)) {
    const VarType &A = Arg(0);
    Out.IT = Name == "abs" || Name == "angle"
                 ? IntrinsicType::Real
                 : (Name == "floor" || Name == "ceil" || Name == "round" ||
                            Name == "fix" || Name == "sign"
                        ? IntrinsicType::Int
                        : IntrinsicType::Real);
    Out.Extents = A.Extents;
    return Out;
  }
  if (ElementwiseKeep.count(Name)) {
    Out = Arg(0);
    Out.ValExpr = nullptr;
    Out.MaxElem = nullptr;
    return Out;
  }
  if (ElementwiseAnalytic.count(Name)) {
    const VarType &A = Arg(0);
    Out.IT = A.IT == IntrinsicType::Complex ? IntrinsicType::Complex
                                            : IntrinsicType::Real;
    // Unknown operands may be complex: stay conservative like MAGICA
    // (paper Example 1 infers COMPLEX for tan of an unknown input).
    if (A.IT == IntrinsicType::None || A.IT == IntrinsicType::Illegal)
      Out.IT = IntrinsicType::Complex;
    Out.Extents = A.Extents;
    return Out;
  }
  if (Name == "sqrt" || Name == "log" || Name == "log2" ||
      Name == "log10") {
    const VarType &A = Arg(0);
    // Negative reals escape to complex; only provably non-negative
    // constants stay real.
    bool ProvablyNonnegative =
        A.ValExpr && A.ValExpr->isConst() && A.ValExpr->constValue() >= 0;
    if (A.IT == IntrinsicType::Bool)
      ProvablyNonnegative = true;
    Out.IT = ProvablyNonnegative ? IntrinsicType::Real
                                 : IntrinsicType::Complex;
    Out.Extents = A.Extents;
    return Out;
  }
  if (Name == "atan2" || Name == "mod" || Name == "rem" ||
      Name == "hypot") {
    Out.IT = Name == "atan2" || Name == "hypot" ? IntrinsicType::Real
                                                : arithPromote(joinIntrinsic(
                                                      Arg(0).IT, Arg(1).IT));
    Out.Extents = elementwiseShape(Arg(0), Arg(1), I);
    return Out;
  }
  if (Name == "min" || Name == "max") {
    if (I.Operands.size() == 2) {
      Out.IT = joinIntrinsic(Arg(0).IT, Arg(1).IT);
      Out.Extents = elementwiseShape(Arg(0), Arg(1), I);
      if (Arg(0).ValExpr && Arg(1).ValExpr)
        Out.ValExpr = Name == "max" ? Ctx.max(Arg(0).ValExpr, Arg(1).ValExpr)
                                    : nullptr;
      Out.MaxElem = Out.ValExpr;
      return Out;
    }
    // One-argument reduction: vectors reduce to a scalar, matrices to a
    // row vector.
    const VarType &A = Arg(0);
    Out.IT = A.IT;
    if (A.Extents.size() == 2 && A.Extents[0]->isConst() &&
        A.Extents[0]->constValue() == 1)
      Out.Extents = scalarShape();
    else if (A.Extents.size() == 2 && A.Extents[1]->isConst() &&
             A.Extents[1]->constValue() == 1)
      Out.Extents = scalarShape();
    else if (A.isScalar())
      Out.Extents = scalarShape();
    else if (A.Extents.size() == 2)
      Out.Extents = {Ctx.makeConst(1), A.Extents[1]};
    else
      Out.Extents = scalarShape();
    return Out;
  }
  if (Name == "sum" || Name == "prod" || Name == "mean" ||
      Name == "norm" || Name == "dot") {
    const VarType &A = Arg(0);
    Out.IT = Name == "norm" || Name == "mean" ? IntrinsicType::Real
                                              : arithPromote(A.IT);
    if (Name == "norm" && A.IT == IntrinsicType::Complex)
      Out.IT = IntrinsicType::Real;
    if (Name != "norm" && A.IT == IntrinsicType::Complex)
      Out.IT = IntrinsicType::Complex;
    // MATLAB rule: collapse the first non-singleton dimension (vectors
    // and scalars reduce to scalars).
    if (Name == "norm" || Name == "dot") {
      Out.Extents = scalarShape();
      return Out;
    }
    if (A.Extents.empty()) {
      Out.Extents = scalarShape();
      return Out;
    }
    {
      size_t D = 0;
      while (D < A.Extents.size() && A.Extents[D]->isConst() &&
             A.Extents[D]->constValue() == 1)
        ++D;
      if (D >= A.Extents.size()) {
        Out.Extents = scalarShape();
      } else if (!A.Extents[D]->isConst() && D + 1 == A.Extents.size() &&
                 D <= 1) {
        // Symbolic trailing extent on a vector-like shape: reduces to a
        // scalar only if the other extent is 1 -- which it is (all
        // earlier extents are constant 1).
        Out.Extents = scalarShape();
      } else {
        Out.Extents = A.Extents;
        Out.Extents[D] = Ctx.makeConst(1);
      }
    }
    return Out;
  }

  if (Name == "diag") {
    const VarType &A = Arg(0);
    Out.IT = A.IT;
    if (A.Extents.size() == 2 && A.Extents[0]->isConst() &&
        A.Extents[0]->constValue() == 1) {
      // Row vector -> square matrix.
      Out.Extents = {A.Extents[1], A.Extents[1]};
    } else if (A.Extents.size() == 2 && A.Extents[1]->isConst() &&
               A.Extents[1]->constValue() == 1) {
      Out.Extents = {A.Extents[0], A.Extents[0]};
    } else if (A.Extents.size() == 2 && A.Extents[0] == A.Extents[1]) {
      // Square matrix -> column of its diagonal.
      Out.Extents = {A.Extents[0], Ctx.makeConst(1)};
    } else {
      Out.Extents = freshShape(I, 0, 2);
    }
    return Out;
  }
  if (Name == "trace") {
    Out.IT = Arg(0).IT == IntrinsicType::Complex ? IntrinsicType::Complex
                                                 : IntrinsicType::Real;
    Out.Extents = scalarShape();
    return Out;
  }
  if (Name == "fliplr" || Name == "flipud" || Name == "cumsum") {
    const VarType &A = Arg(0);
    Out.IT = Name == "cumsum" ? arithPromote(A.IT) : A.IT;
    Out.Extents = A.Extents; // Shape expression reuse.
    return Out;
  }
  if (Name == "strcmp") {
    Out.IT = IntrinsicType::Bool;
    Out.Extents = scalarShape();
    return Out;
  }

  // Scalar constants (usually constant-folded before inference).
  if (Name == "pi" || Name == "eps" || Name == "Inf" || Name == "inf" ||
      Name == "NaN" || Name == "nan" || Name == "toc") {
    Out.IT = IntrinsicType::Real;
    Out.Extents = scalarShape();
    return Out;
  }
  if (Name == "true" || Name == "false" || Name == "__forcond" ||
      Name == "__switcheq") {
    Out.IT = IntrinsicType::Bool;
    Out.Extents = scalarShape();
    return Out;
  }
  if (Name == "i" || Name == "j") {
    Out.IT = IntrinsicType::Complex;
    Out.Extents = scalarShape();
    return Out;
  }
  if (Name == "double") {
    Out = Arg(0);
    Out.IT = Arg(0).IT == IntrinsicType::Complex ? IntrinsicType::Complex
                                                 : IntrinsicType::Real;
    return Out;
  }
  if (Name == "logical") {
    Out = Arg(0);
    Out.IT = IntrinsicType::Bool;
    return Out;
  }
  if (Name == "sprintf" || Name == "num2str") {
    Out.IT = IntrinsicType::Char;
    Out.Extents = {Ctx.makeConst(1), freshExtent(I, 0)};
    return Out;
  }

  // Effects without results.
  if (Name == "disp" || Name == "fprintf" || Name == "error" ||
      Name == "tic" || Name == "print") {
    Out.IT = IntrinsicType::Real;
    Out.Extents = scalarShape();
    return Out;
  }

  // Unknown builtin: conservative.
  if (Warned.insert(&I).second)
    Diags.warning(I.Loc, "no type signature for builtin '" + Name +
                             "' in " + F.Name + "; assuming complex");
  Out.IT = IntrinsicType::Complex;
  Out.Extents = freshShape(I, 0, 2);
  return Out;
}

//===----------------------------------------------------------------------===//
// Instruction transfer function
//===----------------------------------------------------------------------===//

const TypeInference::FunctionIRInfo &
TypeInference::irInfo(const Function &F) {
  auto It = IRInfos.find(&F);
  if (It != IRInfos.end())
    return It->second;
  FunctionIRInfo &Info = IRInfos[&F];
  Info.UpperBounds.resize(F.Blocks.size());
  Info.DefInstr.assign(F.numVars(), nullptr);
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      for (VarId R : I.Results)
        if (!Info.DefInstr[R])
          Info.DefInstr[R] = &I;

  DominatorTree DT(F);
  for (const auto &BB : F.Blocks) {
    if (!BB->hasTerminator() || BB->terminator().Op != Opcode::Br)
      continue;
    const Instr &Br = BB->terminator();
    const Instr *Cond = Info.DefInstr[Br.Operands[0]];
    if (!Cond || (Cond->Op != Opcode::Le && Cond->Op != Opcode::Lt))
      continue;
    BlockId TrueSucc = Br.Target1;
    if (TrueSucc == Br.Target2)
      continue;
    // The constraint holds on the true edge; attribute it to blocks
    // dominated by the true successor when that successor has no other
    // entry (otherwise the edge fact would leak).
    const BasicBlock *TB = F.block(TrueSucc);
    if (TB->Preds.size() != 1 || TB->Preds[0] != BB->Id)
      continue;
    FunctionIRInfo::Bound Fact{Cond->Operands[0], Cond->Operands[1],
                               Cond->Op == Opcode::Le};
    for (const auto &DB : F.Blocks)
      if (DT.dominates(TrueSucc, DB->Id))
        Info.UpperBounds[DB->Id].push_back(Fact);
  }
  return Info;
}

SymExpr TypeInference::maxElemAt(const Function &F, VarId V, BlockId B,
                                 const std::vector<VarType> &Types,
                                 int Depth) {
  if (Depth > 4)
    return Types[V].MaxElem;
  const FunctionIRInfo &Info = irInfo(F);
  // A guard dominating this block bounds the variable directly.
  for (const auto &Bound : Info.UpperBounds[B]) {
    if (Bound.X != V)
      continue;
    SymExpr H = Types[Bound.H].ValExpr;
    if (!H)
      continue;
    return Bound.Inclusive ? H : Ctx.sub(H, Ctx.makeConst(1));
  }
  // Constant offsets compose over guards: bound(i + c) = bound(i) + c.
  const Instr *Def = Info.DefInstr[V];
  if (Def && (Def->Op == Opcode::Add || Def->Op == Opcode::Sub) &&
      Def->Operands.size() == 2) {
    const VarType &RT = Types[Def->Operands[1]];
    const VarType &LT = Types[Def->Operands[0]];
    if (RT.ValExpr && RT.ValExpr->isConst()) {
      SymExpr Base = maxElemAt(F, Def->Operands[0], B, Types, Depth + 1);
      if (Base)
        return Def->Op == Opcode::Add
                   ? Ctx.add(Base, RT.ValExpr)
                   : Ctx.sub(Base, RT.ValExpr);
    }
    if (Def->Op == Opcode::Add && LT.ValExpr && LT.ValExpr->isConst()) {
      SymExpr Base = maxElemAt(F, Def->Operands[1], B, Types, Depth + 1);
      if (Base)
        return Ctx.add(Base, LT.ValExpr);
    }
  }
  return Types[V].MaxElem;
}

void TypeInference::transfer(Function &F, BlockId B, const Instr &I,
                             std::vector<VarType> &Types, bool &Changed) {
  auto T = [&](VarId V) -> const VarType & { return Types[V]; };
  auto SetResult = [&](unsigned Idx, VarType New) {
    if (New.isBottom())
      return;
    Changed |= updateType(Types[I.Results[Idx]], std::move(New), F,
                          I.Results[Idx]);
  };

  switch (I.Op) {
  case Opcode::ConstNum: {
    VarType Out;
    if (I.NumIm != 0.0) {
      Out.IT = IntrinsicType::Complex;
    } else if (isIntegralConst(I.NumRe)) {
      Out.IT = (I.NumRe == 0.0 || I.NumRe == 1.0) ? IntrinsicType::Bool
                                                  : IntrinsicType::Int;
      Out.ValExpr = Ctx.makeConst(static_cast<std::int64_t>(I.NumRe));
      Out.MaxElem = Out.ValExpr;
    } else {
      Out.IT = IntrinsicType::Real;
    }
    Out.Extents = scalarShape();
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::ConstStr: {
    VarType Out;
    Out.IT = IntrinsicType::Char;
    Out.Extents = {Ctx.makeConst(1),
                   Ctx.makeConst(static_cast<std::int64_t>(I.StrVal.size()))};
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::ConstColon: {
    VarType Out;
    Out.IT = IntrinsicType::Colon;
    Out.Extents = scalarShape();
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::Copy:
    SetResult(0, T(I.Operands[0]));
    return;
  case Opcode::Phi: {
    VarType Out;
    for (VarId Op : I.Operands)
      Out = joinTypes(Out, T(Op));
    // Decreasing loop counters: i = phi(init, i - step) never exceeds the
    // initial value, so the init's bound survives the join.
    if (!Out.MaxElem && I.Operands.size() == 2) {
      const FunctionIRInfo &Info = irInfo(F);
      for (unsigned K = 0; K < 2; ++K) {
        const Instr *BackDef = Info.DefInstr[I.Operands[1 - K]];
        if (!BackDef || BackDef->Operands.size() != 2)
          continue;
        bool StepsDown = false;
        if (BackDef->Op == Opcode::Add &&
            BackDef->Operands[0] == I.result()) {
          const VarType &StepT = T(BackDef->Operands[1]);
          StepsDown = StepT.ValExpr && StepT.ValExpr->isConst() &&
                      StepT.ValExpr->constValue() <= 0;
        } else if (BackDef->Op == Opcode::Sub &&
                   BackDef->Operands[0] == I.result()) {
          const VarType &StepT = T(BackDef->Operands[1]);
          StepsDown = StepT.ValExpr && StepT.ValExpr->isConst() &&
                      StepT.ValExpr->constValue() >= 0;
        }
        if (StepsDown && T(I.Operands[K]).MaxElem) {
          Out.MaxElem = T(I.Operands[K]).MaxElem;
          break;
        }
      }
    }
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::Neg:
  case Opcode::UPlus: {
    const VarType &A = T(I.Operands[0]);
    if (A.isBottom())
      return;
    VarType Out;
    Out.IT = arithPromote(A.IT);
    Out.Extents = A.Extents;
    if (A.ValExpr && I.Op == Opcode::Neg)
      Out.ValExpr = Ctx.sub(Ctx.makeConst(0), A.ValExpr);
    else if (I.Op == Opcode::UPlus)
      Out.ValExpr = A.ValExpr;
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::Not: {
    const VarType &A = T(I.Operands[0]);
    if (A.isBottom())
      return;
    VarType Out;
    Out.IT = IntrinsicType::Bool;
    Out.Extents = A.Extents;
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::Transpose:
  case Opcode::CTranspose: {
    const VarType &A = T(I.Operands[0]);
    if (A.isBottom())
      return;
    VarType Out;
    Out.IT = A.IT;
    if (A.Extents.size() == 2)
      Out.Extents = {A.Extents[1], A.Extents[0]};
    else
      Out.Extents = A.Extents; // ND transpose is a run-time error anyway.
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::ElemMul: {
    const VarType &A = T(I.Operands[0]);
    const VarType &B = T(I.Operands[1]);
    if (A.isBottom() || B.isBottom())
      return;
    VarType Out;
    Out.IT = arithPromote(joinIntrinsic(A.IT, B.IT));
    Out.Extents = elementwiseShape(A, B, I);
    if (A.ValExpr && B.ValExpr) {
      switch (I.Op) {
      case Opcode::Add: Out.ValExpr = Ctx.add(A.ValExpr, B.ValExpr); break;
      case Opcode::Sub: Out.ValExpr = Ctx.sub(A.ValExpr, B.ValExpr); break;
      default: Out.ValExpr = Ctx.mul(A.ValExpr, B.ValExpr); break;
      }
      Out.MaxElem = Out.ValExpr;
    }
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::MatMul: {
    const VarType &A = T(I.Operands[0]);
    const VarType &B = T(I.Operands[1]);
    if (A.isBottom() || B.isBottom())
      return;
    VarType Out;
    Out.IT = arithPromote(joinIntrinsic(A.IT, B.IT));
    if (A.isScalar() || B.isScalar()) {
      Out.Extents = elementwiseShape(A, B, I);
      if (A.ValExpr && B.ValExpr) {
        Out.ValExpr = Ctx.mul(A.ValExpr, B.ValExpr);
        Out.MaxElem = Out.ValExpr;
      }
    } else if (A.Extents.size() == 2 && B.Extents.size() == 2) {
      Out.Extents = {A.Extents[0], B.Extents[1]};
    } else {
      Out.Extents = freshShape(I, 0, 2);
    }
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::ElemRDiv:
  case Opcode::ElemLDiv: {
    const VarType &A = T(I.Operands[0]);
    const VarType &B = T(I.Operands[1]);
    if (A.isBottom() || B.isBottom())
      return;
    VarType Out;
    Out.IT = joinIntrinsic(joinIntrinsic(A.IT, B.IT), IntrinsicType::Real);
    Out.Extents = elementwiseShape(A, B, I);
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::MatRDiv: {
    const VarType &A = T(I.Operands[0]);
    const VarType &B = T(I.Operands[1]);
    if (A.isBottom() || B.isBottom())
      return;
    VarType Out;
    Out.IT = joinIntrinsic(joinIntrinsic(A.IT, B.IT), IntrinsicType::Real);
    if (B.isScalar())
      Out.Extents = A.Extents;
    else if (A.Extents.size() == 2 && B.Extents.size() == 2)
      Out.Extents = {A.Extents[0], B.Extents[0]}; // X*inv(B).
    else
      Out.Extents = freshShape(I, 0, 2);
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::MatLDiv: {
    const VarType &A = T(I.Operands[0]);
    const VarType &B = T(I.Operands[1]);
    if (A.isBottom() || B.isBottom())
      return;
    VarType Out;
    Out.IT = joinIntrinsic(joinIntrinsic(A.IT, B.IT), IntrinsicType::Real);
    if (A.isScalar())
      Out.Extents = B.Extents;
    else if (A.Extents.size() == 2 && B.Extents.size() == 2)
      Out.Extents = {A.Extents[1], B.Extents[1]}; // inv(A)*B.
    else
      Out.Extents = freshShape(I, 0, 2);
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::MatPow:
  case Opcode::ElemPow: {
    const VarType &A = T(I.Operands[0]);
    const VarType &B = T(I.Operands[1]);
    if (A.isBottom() || B.isBottom())
      return;
    VarType Out;
    // Negative base with fractional exponent escapes to complex; only
    // clearly safe combinations stay real.
    bool IntExponent = B.ValExpr != nullptr; // Integer-valued exponent.
    bool NonnegBase = A.IT == IntrinsicType::Bool ||
                      (A.ValExpr && A.ValExpr->isConst() &&
                       A.ValExpr->constValue() >= 0);
    if (A.IT == IntrinsicType::Complex || B.IT == IntrinsicType::Complex)
      Out.IT = IntrinsicType::Complex;
    else if (IntExponent || NonnegBase ||
             (A.IT != IntrinsicType::None && B.IT == IntrinsicType::Int))
      Out.IT = IntrinsicType::Real;
    else
      Out.IT = IntrinsicType::Complex;
    Out.Extents = I.Op == Opcode::ElemPow ? elementwiseShape(A, B, I)
                                          : (B.isScalar() && !A.isScalar()
                                                 ? A.Extents
                                                 : elementwiseShape(A, B, I));
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::Lt:
  case Opcode::Le:
  case Opcode::Gt:
  case Opcode::Ge:
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::And:
  case Opcode::Or: {
    const VarType &A = T(I.Operands[0]);
    const VarType &B = T(I.Operands[1]);
    if (A.isBottom() || B.isBottom())
      return;
    VarType Out;
    Out.IT = IntrinsicType::Bool;
    Out.Extents = elementwiseShape(A, B, I);
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::Colon2:
  case Opcode::Colon3: {
    const VarType &Lo = T(I.Operands[0]);
    const VarType &Hi = T(I.Operands.back());
    if (Lo.isBottom() || Hi.isBottom())
      return;
    VarType Out;
    Out.IT = arithPromote(joinIntrinsic(Lo.IT, Hi.IT));
    SymExpr Len = nullptr;
    if (I.Op == Opcode::Colon2 && Lo.ValExpr && Hi.ValExpr) {
      // length = max(hi - lo + 1, 0).
      Len = Ctx.max(Ctx.add(Ctx.sub(Hi.ValExpr, Lo.ValExpr),
                            Ctx.makeConst(1)),
                    Ctx.makeConst(0));
    } else if (I.Op == Opcode::Colon3) {
      const VarType &St = T(I.Operands[1]);
      Out.IT = arithPromote(joinIntrinsic(Out.IT, St.IT));
      if (Lo.ValExpr && Hi.ValExpr && St.ValExpr && St.ValExpr->isConst() &&
          Lo.ValExpr->isConst() && Hi.ValExpr->isConst() &&
          St.ValExpr->constValue() != 0) {
        double L = static_cast<double>(Lo.ValExpr->constValue());
        double H = static_cast<double>(Hi.ValExpr->constValue());
        double S = static_cast<double>(St.ValExpr->constValue());
        std::int64_t N = static_cast<std::int64_t>(
            std::max(std::floor((H - L) / S) + 1.0, 0.0));
        Len = Ctx.makeConst(N);
      }
    }
    Out.Extents = {Ctx.makeConst(1), Len ? Len : freshExtent(I, 0)};
    if (Lo.ValExpr && Hi.ValExpr)
      Out.MaxElem = Ctx.max(Lo.ValExpr, Hi.ValExpr);
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::Subsref: {
    const VarType &A = T(I.Operands[0]);
    if (A.isBottom())
      return;
    VarType Out;
    Out.IT = A.IT;
    unsigned NumSubs = static_cast<unsigned>(I.Operands.size()) - 1;
    auto SubT = [&](unsigned K) -> const VarType & {
      return T(I.Operands[1 + K]);
    };
    if (NumSubs == 1) {
      const VarType &S = SubT(0);
      if (S.isBottom())
        return;
      if (S.IT == IntrinsicType::Colon) {
        // a(:) is a column of all elements.
        Out.Extents = {A.Extents.empty() ? freshExtent(I, 0)
                                         : Ctx.numElements(A.Extents),
                       Ctx.makeConst(1)};
      } else if (S.isScalar()) {
        Out.Extents = scalarShape();
      } else {
        Out.Extents = S.Extents; // Result takes the index's shape.
      }
    } else {
      for (unsigned K = 0; K < NumSubs; ++K) {
        const VarType &S = SubT(K);
        if (S.isBottom())
          return;
        SymExpr BaseExtent = K < A.Extents.size() ? A.Extents[K]
                                                  : Ctx.makeConst(1);
        if (S.IT == IntrinsicType::Colon)
          Out.Extents.push_back(BaseExtent);
        else if (S.isScalar())
          Out.Extents.push_back(Ctx.makeConst(1));
        else if (!S.Extents.empty())
          Out.Extents.push_back(Ctx.numElements(S.Extents));
        else
          Out.Extents.push_back(freshExtent(I, static_cast<int>(K)));
      }
    }
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::Subsasgn: {
    const VarType &A = T(I.Operands[0]);
    const VarType &R = T(I.Operands[1]);
    if (A.isBottom() || R.isBottom())
      return;
    VarType Out;
    Out.IT = joinIntrinsic(A.IT, R.IT);
    unsigned NumSubs = static_cast<unsigned>(I.Operands.size()) - 2;
    auto SubT = [&](unsigned K) -> const VarType & {
      return T(I.Operands[2 + K]);
    };
    // Result extents: max(base extent, largest subscript) per dimension
    // (the growth semantics of section 2.3.3).
    unsigned Rank = std::max<unsigned>(
        NumSubs == 1 ? 2 : NumSubs,
        static_cast<unsigned>(A.Extents.size()));
    auto BaseExtent = [&](unsigned D) {
      return D < A.Extents.size() ? A.Extents[D] : Ctx.makeConst(1);
    };
    if (NumSubs == 1) {
      const VarType &S = SubT(0);
      if (S.isBottom())
        return;
      // Linear indexing: grows along the vector orientation.
      bool RowVector = !A.Extents.empty() && A.Extents[0]->isConst() &&
                       A.Extents[0]->constValue() == 1;
      SymExpr Bound = maxElemAt(F, I.Operands[2], B, Types);
      if (!Bound)
        Bound = freshExtent(I, 0);
      for (unsigned D = 0; D < Rank; ++D) {
        bool GrowDim = RowVector ? D == 1 : D == 0;
        if (S.IT == IntrinsicType::Colon || !GrowDim)
          Out.Extents.push_back(BaseExtent(D));
        else
          Out.Extents.push_back(Ctx.max(BaseExtent(D), Bound));
      }
    } else {
      for (unsigned D = 0; D < Rank; ++D) {
        if (D >= NumSubs) {
          Out.Extents.push_back(BaseExtent(D));
          continue;
        }
        const VarType &S = SubT(D);
        if (S.isBottom())
          return;
        if (S.IT == IntrinsicType::Colon) {
          Out.Extents.push_back(BaseExtent(D));
          continue;
        }
        SymExpr Bound = maxElemAt(F, I.Operands[2 + D], B, Types);
        if (!Bound)
          Bound = freshExtent(I, static_cast<int>(D));
        Out.Extents.push_back(Ctx.max(BaseExtent(D), Bound));
      }
    }
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::HorzCat:
  case Opcode::VertCat: {
    if (I.Operands.empty()) {
      VarType Out;
      Out.IT = IntrinsicType::Real; // [] is an empty double array.
      Out.Extents = {Ctx.makeConst(0), Ctx.makeConst(0)};
      SetResult(0, std::move(Out));
      return;
    }
    VarType Out;
    unsigned CatDim = I.Op == Opcode::HorzCat ? 1 : 0;
    unsigned KeepDim = 1 - CatDim;
    SymExpr Total = Ctx.makeConst(0);
    SymExpr Keep = nullptr;
    for (size_t K = 0; K < I.Operands.size(); ++K) {
      const VarType &E = T(I.Operands[K]);
      if (E.isBottom())
        return;
      // The runtime drops statically-empty parts; skip them here too so
      // the kept extent doesn't come from a 0 x 0 placeholder.
      if (E.hasKnownShape() && E.knownNumElements() == 0)
        continue;
      Out.IT = joinIntrinsic(Out.IT, E.IT);
      SymExpr Ext = E.Extents.size() > CatDim ? E.Extents[CatDim]
                                              : Ctx.makeConst(1);
      Total = Ctx.add(Total, Ext);
      if (!Keep && E.Extents.size() > KeepDim)
        Keep = E.Extents[KeepDim];
    }
    if (Out.IT == IntrinsicType::None) {
      // Every part was empty.
      Out.IT = IntrinsicType::Real;
      Out.Extents = {Ctx.makeConst(0), Ctx.makeConst(0)};
      SetResult(0, std::move(Out));
      return;
    }
    Out.Extents.resize(2);
    Out.Extents[CatDim] = Total;
    Out.Extents[KeepDim] = Keep ? Keep : Ctx.makeConst(1);
    SetResult(0, std::move(Out));
    return;
  }
  case Opcode::Builtin: {
    // Operand bottoms block inference (except for effect-only builtins).
    for (VarId Op : I.Operands)
      if (T(Op).isBottom())
        return;
    for (unsigned RI = 0; RI < I.Results.size(); ++RI)
      SetResult(RI, transferBuiltin(F, I, Types, RI));
    return;
  }
  case Opcode::Call: {
    Function *Callee = M.findFunction(I.StrVal);
    if (!Callee)
      return;
    Summary &S = Summaries[Callee];
    // Push argument types into the callee's parameter joins.
    if (S.Params.size() < I.Operands.size())
      S.Params.resize(I.Operands.size());
    for (size_t K = 0; K < I.Operands.size(); ++K) {
      if (T(I.Operands[K]).isBottom())
        continue;
      S.Params[K] = joinTypes(S.Params[K], T(I.Operands[K]));
    }
    // Pull the callee's output types.
    for (unsigned RI = 0; RI < I.Results.size(); ++RI) {
      if (RI < S.Outputs.size() && !S.Outputs[RI].isBottom())
        SetResult(RI, S.Outputs[RI]);
    }
    return;
  }
  case Opcode::Display:
  case Opcode::Jmp:
  case Opcode::Br:
  case Opcode::Ret:
    return;
  }
}

//===----------------------------------------------------------------------===//
// Function and module fixpoints
//===----------------------------------------------------------------------===//

bool TypeInference::inferFunction(Function &F) {
  std::vector<VarType> &Types = AllTypes[&F];
  if (Types.size() < F.numVars())
    Types.resize(F.numVars());

  bool AnyChange = false;
  Summary &S = Summaries[&F];

  // Seed parameters from the summary (entry gets conservative types in
  // run()).
  for (size_t K = 0; K < F.Params.size(); ++K) {
    if (K < S.Params.size() && !S.Params[K].isBottom()) {
      AnyChange |=
          updateType(Types[F.Params[K]],
                     joinTypes(Types[F.Params[K]], S.Params[K]), F,
                     F.Params[K]);
    }
  }

  std::vector<BlockId> RPO = F.reversePostOrder();
  for (int Round = 0; Round < 50; ++Round) {
    bool Changed = false;
    for (BlockId B : RPO)
      for (const Instr &I : F.block(B)->Instrs)
        transfer(F, B, I, Types, Changed);
    AnyChange |= Changed;
    if (!Changed)
      break;
  }

  // Record output types at Ret.
  for (BlockId B : RPO) {
    const BasicBlock *BB = F.block(B);
    if (!BB->hasTerminator() || BB->terminator().Op != Opcode::Ret)
      continue;
    const Instr &Ret = BB->terminator();
    if (S.Outputs.size() < Ret.Operands.size())
      S.Outputs.resize(Ret.Operands.size());
    for (size_t K = 0; K < Ret.Operands.size(); ++K) {
      VarType New = joinTypes(S.Outputs[K], Types[Ret.Operands[K]]);
      if (!typesEqual(S.Outputs[K], New)) {
        S.Outputs[K] = std::move(New);
        AnyChange = true;
      }
    }
  }
  return AnyChange;
}

void TypeInference::run(const std::string &EntryName) {
  // Conservative types for the entry's parameters (usually none).
  if (Function *Entry = M.findFunction(EntryName)) {
    Summary &S = Summaries[Entry];
    S.Params.resize(Entry->Params.size());
    for (size_t K = 0; K < Entry->Params.size(); ++K) {
      VarType T;
      T.IT = IntrinsicType::Complex;
      T.Extents = {Ctx.makeSym("$arg" + std::to_string(K) + "r"),
                   Ctx.makeSym("$arg" + std::to_string(K) + "c")};
      S.Params[K] = std::move(T);
    }
  }
  for (auto &F : M.Functions)
    AllTypes[F.get()].resize(F->numVars());

  for (int Round = 0; Round < 30; ++Round) {
    bool Changed = false;
    for (auto &F : M.Functions)
      Changed |= inferFunction(*F);
    if (!Changed)
      break;
  }
}
