//===- Types.cpp ----------------------------------------------------------===//

#include "typeinf/Types.h"

#include <sstream>

using namespace matcoal;

const char *matcoal::intrinsicTypeName(IntrinsicType IT) {
  switch (IT) {
  case IntrinsicType::None: return "none";
  case IntrinsicType::Bool: return "boolean";
  case IntrinsicType::Int: return "integer";
  case IntrinsicType::Char: return "char";
  case IntrinsicType::Real: return "real";
  case IntrinsicType::Complex: return "complex";
  case IntrinsicType::Colon: return "colon";
  case IntrinsicType::Illegal: return "illegal";
  }
  return "<bad>";
}

IntrinsicType matcoal::joinIntrinsic(IntrinsicType A, IntrinsicType B) {
  if (A == B)
    return A;
  if (A == IntrinsicType::None)
    return B;
  if (B == IntrinsicType::None)
    return A;
  if (A == IntrinsicType::Illegal || B == IntrinsicType::Illegal)
    return IntrinsicType::Illegal;
  if (A == IntrinsicType::Colon || B == IntrinsicType::Colon)
    return IntrinsicType::Illegal; // ':' only joins with itself.
  // Char beside the numeric chain: any mixed join lands on Real (MATLAB
  // promotes char to double in arithmetic).
  if (A == IntrinsicType::Char || B == IntrinsicType::Char) {
    IntrinsicType Other = A == IntrinsicType::Char ? B : A;
    if (Other == IntrinsicType::Complex)
      return IntrinsicType::Complex;
    return IntrinsicType::Real;
  }
  // Bool < Int < Real < Complex.
  auto Rank = [](IntrinsicType T) {
    switch (T) {
    case IntrinsicType::Bool: return 0;
    case IntrinsicType::Int: return 1;
    case IntrinsicType::Real: return 2;
    case IntrinsicType::Complex: return 3;
    default: return 4;
    }
  };
  return Rank(A) > Rank(B) ? A : B;
}

unsigned matcoal::elemSizeBytes(IntrinsicType IT) {
  switch (IT) {
  case IntrinsicType::Complex:
    return 16;
  case IntrinsicType::Colon:
  case IntrinsicType::None:
    return 0;
  default:
    return 8;
  }
}

std::string VarType::str() const {
  std::ostringstream OS;
  OS << intrinsicTypeName(IT);
  if (!Extents.empty()) {
    OS << " [";
    for (size_t I = 0; I < Extents.size(); ++I) {
      if (I)
        OS << " x ";
      OS << Extents[I]->str();
    }
    OS << "]";
  }
  if (ValExpr)
    OS << " val=" << ValExpr->str();
  return OS.str();
}
