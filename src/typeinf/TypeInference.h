//===- TypeInference.h - Symbolic type/shape inference ----------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The inference engine standing in for MAGICA (paper's [17, 18]): for
/// every SSA variable it infers the intrinsic type, a shape tuple of
/// (possibly symbolic) extents, and where derivable a symbolic scalar
/// value. Inference reuse via symbolic equivalence -- the property GCTD's
/// partial order relies on -- falls out of interning: an elementwise op's
/// result *shares* its operand's shape expression.
///
/// The analysis is an interprocedural fixpoint: function summaries carry
/// joined parameter types from all call sites and inferred output types;
/// because one SymExprContext is shared module-wide, shape expressions
/// flow across call boundaries unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_TYPEINF_TYPEINFERENCE_H
#define MATCOAL_TYPEINF_TYPEINFERENCE_H

#include "ir/IR.h"
#include "support/Diagnostics.h"
#include "support/SymExpr.h"
#include "typeinf/Types.h"

#include <map>
#include <set>
#include <string>
#include <vector>

namespace matcoal {

/// Runs module-wide type inference over SSA-form functions.
class TypeInference {
public:
  TypeInference(Module &M, SymExprContext &Ctx, Diagnostics &Diags)
      : M(M), Ctx(Ctx), Diags(Diags) {}

  /// Infers types for every function reachable from \p EntryName (other
  /// functions get conservative parameter types). Must be called once.
  void run(const std::string &EntryName = "main");

  /// Per-variable types for \p F (indexed by VarId; bottom for variables
  /// that are dead or pre-SSA originals).
  const std::vector<VarType> &functionTypes(const Function &F) const;
  /// True when run() produced a type table for \p F. Degraded pipelines
  /// (see driver/Compiler.h) may skip inference entirely; functionTypes
  /// asserts, so consumers that can degrade probe here first.
  bool hasTypesFor(const Function &F) const { return AllTypes.count(&F) != 0; }
  const VarType &typeOf(const Function &F, VarId V) const {
    return functionTypes(F)[V];
  }

  SymExprContext &context() { return Ctx; }

private:
  struct Summary {
    std::vector<VarType> Params;  ///< Join over call sites.
    std::vector<VarType> Outputs; ///< Types at the callee's Ret.
  };

  bool inferFunction(Function &F);
  /// Computes the result types of one instruction from operand types.
  void transfer(Function &F, BlockId B, const Instr &I,
                std::vector<VarType> &Types, bool &Changed);
  VarType transferBuiltin(Function &F, const Instr &I,
                          const std::vector<VarType> &Types,
                          unsigned ResultIdx);

  // Type algebra helpers.
  VarType joinTypes(const VarType &A, const VarType &B);
  std::vector<SymExpr> joinShape(const std::vector<SymExpr> &A,
                                 const std::vector<SymExpr> &B);
  /// Elementwise binary result shape (scalar broadcast, expression reuse).
  std::vector<SymExpr> elementwiseShape(const VarType &A, const VarType &B,
                                        const Instr &I);
  std::vector<SymExpr> scalarShape();
  /// Memoized per-instruction fresh extent so the fixpoint terminates.
  SymExpr freshExtent(const Instr &I, int Slot);
  std::vector<SymExpr> freshShape(const Instr &I, int Base, unsigned Rank);
  /// Shape-from-dimension-arguments helper for zeros/ones/rand/eye.
  std::vector<SymExpr> shapeFromDims(const Instr &I,
                                     const std::vector<VarType> &Types);
  static bool typesEqual(const VarType &A, const VarType &B);
  /// Updates Slot to New, applying widening if it keeps changing.
  bool updateType(VarType &Slot, VarType New, const Function &F, VarId V);

  /// Flow facts mined from the IR once per function: branch-guard upper
  /// bounds (x <= h holds in blocks dominated by a comparison's true
  /// successor -- MAGICA's value-range analysis specialized to subscript
  /// bounding) and defining instructions.
  struct FunctionIRInfo {
    /// Per block: (x, h, inclusive) constraints.
    struct Bound {
      VarId X;
      VarId H;
      bool Inclusive;
    };
    std::vector<std::vector<Bound>> UpperBounds;
    std::vector<const Instr *> DefInstr;
  };
  const FunctionIRInfo &irInfo(const Function &F);
  /// Best provable upper bound on the (integer) value of V at block B;
  /// null if none. Understands constant offsets (i + 1) over guards.
  SymExpr maxElemAt(const Function &F, VarId V, BlockId B,
                    const std::vector<VarType> &Types, int Depth = 0);

  Module &M;
  SymExprContext &Ctx;
  Diagnostics &Diags;
  std::map<const Function *, FunctionIRInfo> IRInfos;

  std::map<const Function *, std::vector<VarType>> AllTypes;
  std::map<const Function *, Summary> Summaries;
  /// (instruction, slot) -> memoized fresh symbol.
  std::map<std::pair<const Instr *, int>, SymExpr> FreshCache;
  /// Memoized symbolic joins so repeated joins are stable.
  std::map<std::pair<unsigned, unsigned>, SymExpr> JoinCache;
  /// Widened ("pinned") symbols absorb further joins.
  std::set<SymExpr> Pinned;
  /// Change counters for widening, keyed by (function, var).
  std::map<std::pair<const Function *, VarId>, int> ChangeCount;
  /// Instructions already warned about (the fixpoint revisits them).
  std::set<const Instr *> Warned;
};

} // namespace matcoal

#endif // MATCOAL_TYPEINF_TYPEINFERENCE_H
