//===- Compiler.h - End-to-end compilation facade ---------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: compiles MATLAB source through the full mat2c-
/// style pipeline (parse, lower to SO form, SSA, cleanup passes, type
/// inference, GCTD) and exposes ready-to-run execution under the three
/// configurations the paper measures: the mcc model, the mat2c model with
/// GCTD, and the mat2c model without GCTD (identity plans).
///
/// \code
///   auto P = compileSource("x = rand(100); disp(sum(x(:, 1)));", Err);
///   ExecResult R = P->runStatic();
/// \endcode
///
/// Error handling contract: invalid input (syntax or semantic errors)
/// still yields nullptr with errors in the Diagnostics. On *valid* input
/// the pipeline never crashes and never returns a corrupt plan: each stage
/// is re-checked by the verifier (src/verify), and a stage that fails --
/// or is forced to fail through fault injection -- degrades the program
/// down a ladder of safe fallbacks instead of aborting:
///
///   Full          every stage verified; GCTD plans drive runStatic.
///   IdentityPlans GCTD rejected; runStatic uses identity plans (the
///                 "without GCTD" configuration -- still the static VM).
///   MccOnly       type inference rejected; runStatic/runNoCoalesce fall
///                 back to the mcc model (no plans needed).
///   InterpOnly    lowering or SSA rejected; every run mode executes on
///                 the AST interpreter.
///
/// Fault injection: set CompileOptions::InjectFault or the MATCOAL_FAULT
/// environment variable to parse|lower|ssa|typeinf|gctd to force that
/// stage to fail after it runs, exercising the corresponding rung. The
/// extra value plan-corrupt (CompileOptions::InjectPlanCorrupt) breaks a
/// verified storage plan *after* the verifier accepted it, proving the
/// independent plan auditor (src/verify/PlanAudit) catches what the
/// interference-based checks would miss; the audit failure degrades the
/// program to IdentityPlans and the violations surface through
/// auditDiags() and `matcoalc --audit-plan`.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_DRIVER_COMPILER_H
#define MATCOAL_DRIVER_COMPILER_H

#include "analysis/AliasAnalysis.h"
#include "analysis/InPlaceLegality.h"
#include "analysis/RangeAnalysis.h"
#include "frontend/AST.h"
#include "gctd/GCTD.h"
#include "interp/Interp.h"
#include "ir/IR.h"
#include "lint/Lint.h"
#include "observe/Observe.h"
#include "observe/RuntimeProfiler.h"
#include "support/Cancellation.h"
#include "support/Diagnostics.h"
#include "typeinf/TypeInference.h"
#include "vm/VM.h"

#include <map>
#include <memory>
#include <string>

namespace matcoal {

/// Pipeline stages, in execution order. Used to name fault-injection
/// points and degradation causes.
enum class CompileStage { None, Parse, Lower, SSA, TypeInf, GCTD };

const char *compileStageName(CompileStage S);
/// Parses a MATCOAL_FAULT value ("parse", "lower", "ssa", "typeinf",
/// "gctd"); unknown strings map to None.
CompileStage parseCompileStage(const std::string &Name);
/// True when \p Name is an injectable stage name or an explicit "off"
/// spelling ("", "none"). An env value failing this check is a loud
/// configuration error: compileSource refuses to compile and matcoald
/// refuses to start, each listing validCompileStageNames().
bool isValidFaultName(const std::string &Name);
/// "parse, lower, ssa, typeinf, gctd" -- for error messages.
const char *validCompileStageNames();

/// How far down the degradation ladder the compile had to go (see the
/// file comment for what each rung guarantees).
enum class DegradeLevel { Full, IdentityPlans, MccOnly, InterpOnly };

const char *degradeLevelName(DegradeLevel L);

/// Which execution surface actually ran a program. The compile-time
/// ladder (DegradeLevel) decides how much *planning* survived; this enum
/// names the *executor* a run landed on, so tools and matcoald responses
/// can report "native" vs "vm-static" vs "interp" uniformly. Selection
/// order when the native tier is requested: Native (in-process dlopened
/// C, src/native) -> StaticVM (degrade rung: cc/dlopen failure, complex
/// data, or a below-MccOnly compile) -> the usual DegradeLevel fallbacks.
/// docs/EXECUTION_TIERS.md is the full matrix.
enum class ExecTier { Native, StaticVM, MccVM, Interp, ExternalCC };

const char *execTierName(ExecTier T);

/// How much static analysis feeds the optimizer. Ranges (the default)
/// runs the interval/shape RangeAnalysis after type inference and hands
/// its facts to GCTD and the code emitter; None reproduces the types-only
/// pipeline (the pre-range baseline, also used by ablation benchmarks).
enum class AnalysisLevel { None, Ranges };

/// Knobs for compileSource. The defaults reproduce the paper's pipeline.
struct CompileOptions {
  std::string Entry = "main";
  /// Force this stage to fail after it runs (testing the ladder). The
  /// MATCOAL_FAULT environment variable is consulted when this is None.
  CompileStage InjectFault = CompileStage::None;
  /// Deliberately corrupt each verified storage plan before the static
  /// audit runs (MATCOAL_FAULT=plan-corrupt): the auditor must reject the
  /// plan and the program degrades to IdentityPlans.
  bool InjectPlanCorrupt = false;
  /// Run the verifier after each stage (cheap; disable only in
  /// benchmarks).
  bool Verify = true;
  /// Degrade on stage failure instead of returning nullptr.
  bool AllowDegrade = true;
  /// Static-analysis depth (see AnalysisLevel). A throwing RangeAnalysis
  /// never fails the compile; the pipeline just continues without it.
  AnalysisLevel Analysis = AnalysisLevel::Ranges;
  /// Run the lint checks and store their diagnostics on the result.
  bool Lint = false;
  /// Disable the destructive-execution layer (buffer stealing,
  /// destination-passing, the free-list pool) in every run mode and loop
  /// fusion in the C emitter. `matcoalc --no-fuse`; the fused-vs-unfused
  /// benchmark axis.
  bool NoFuse = false;
  /// Observability sink: when non-null, every stage reports wall time,
  /// counters, optimization remarks, and (when requested on the observer)
  /// after-pass IR dumps into it. Owned by the caller; must outlive the
  /// compile.
  Observer *Obs = nullptr;
  /// Cooperative deadline/cancel token. The driver polls it between
  /// stages (expiry aborts the compile with a classified "deadline
  /// exceeded" error), and every run mode forwards it to its executor,
  /// where expiry unwinds with TrapKind::Deadline. Owned by the caller;
  /// must outlive the compile and every run. `matcoalc --timeout-ms` and
  /// the matcoald per-request watchdog both arm one of these.
  const CancelToken *Cancel = nullptr;
  // Execution guards, forwarded to every run mode.
  std::uint64_t OpBudget = 2000000000ull;
  std::int64_t HeapLimit = 0;    ///< Metered heap bytes; 0 = unlimited.
  unsigned RecursionLimit = 512; ///< Maximum call depth.
  /// Worker-thread count for kernel loops in every execution tier
  /// (`matcoalc --threads=N`). 0 resolves $MATCOAL_THREADS (unset or
  /// invalid means 1 = serial); values clamp to [1, 64], mirroring
  /// mcrt_set_threads. Output is byte-identical at any setting: only
  /// pure identity-indexed writes partition, reductions stay serial.
  int Threads = 0;
};

/// The one resolution rule for a requested thread count: \p Requested > 0
/// clamps to [1, 64]; <= 0 consults $MATCOAL_THREADS the same way
/// mcrt_set_threads(0) does (unset/invalid -> 1). matcoalc, matcoald,
/// and the benches all resolve through here so the tiers agree.
int resolveThreads(int Requested);

/// A fully compiled program with its storage plans.
class CompiledProgram {
public:
  /// Aggregated Table 2 statistics across all functions.
  struct Stats {
    unsigned OriginalVarCount = 0;
    unsigned StaticSubsumed = 0;
    unsigned DynamicSubsumed = 0;
    std::int64_t StaticReductionBytes = 0;
  };

  /// Executes under the mcc model (boxed heap arrays, COW).
  ExecResult runMcc(std::uint64_t Seed = 20030609) const;
  /// Executes under the mat2c model with the GCTD storage plan.
  ExecResult runStatic(std::uint64_t Seed = 20030609) const;
  /// Executes under the mat2c model with identity plans (no coalescing):
  /// the "without GCTD" ablation of the paper's Figure 6.
  ExecResult runNoCoalesce(std::uint64_t Seed = 20030609) const;
  /// Runs the AST interpreter (the paper's "intrp" series).
  InterpResult runInterp(std::uint64_t Seed = 20030609) const;

  /// The rung this program compiled at (Full unless a stage degraded).
  DegradeLevel level() const { return Level; }

  Stats stats() const;
  const StoragePlan &planOf(const Function &F) const;
  const Function &function(const std::string &Name) const;
  const Module &module() const { return *M; }
  const TypeInference &types() const { return *TI; }
  const std::string &entryName() const { return Entry; }
  /// The range analysis the plans were built with; null at
  /// AnalysisLevel::None or when its construction failed.
  const RangeAnalysis *ranges() const { return RA.get(); }
  /// Lint diagnostics (populated when CompileOptions::Lint was set).
  const std::vector<LintDiag> &lintDiags() const { return LintDiags; }
  /// Static plan-audit violations (the matvet lint group). Empty on a
  /// clean audit; populated -- and the program degraded to
  /// IdentityPlans -- when the auditor rejected a plan.
  const std::vector<LintDiag> &auditDiags() const { return AuditDiags; }
  /// The interprocedural alias/escape/last-use analysis; null when its
  /// construction failed or type inference degraded away.
  const AliasAnalysis *aliases() const { return AA.get(); }
  /// The shared in-place legality oracle both the VM's destructive
  /// kernels and the C emitter's fusion legality query; null only below
  /// MccOnly (no types to reason over).
  const InPlaceLegality *legality() const { return Legal.get(); }

  /// Implementation detail, public for the factory function.
  std::unique_ptr<Program> Ast;
  std::unique_ptr<Module> M;
  std::unique_ptr<SymExprContext> Ctx;
  std::unique_ptr<TypeInference> TI;
  std::unique_ptr<RangeAnalysis> RA;
  std::unique_ptr<AliasAnalysis> AA;
  std::unique_ptr<InPlaceLegality> Legal;
  std::vector<LintDiag> LintDiags;
  std::vector<LintDiag> AuditDiags;
  std::map<const Function *, StoragePlan> GCTDPlans;
  std::map<const Function *, StoragePlan> IdentityPlans;
  std::string Entry;
  DegradeLevel Level = DegradeLevel::Full;
  std::uint64_t OpBudget = 2000000000ull;
  std::int64_t HeapLimit = 0;
  unsigned RecursionLimit = 512;
  /// Mirrors CompileOptions::NoFuse: run modes disable buffer reuse.
  bool NoFuse = false;
  /// Resolved worker-thread count (resolveThreads of the option); every
  /// run mode forwards it to its executor, and the native tier passes it
  /// through mcrt_set_threads.
  int Threads = 1;
  /// The compile's observer (if any); run modes report the pinned
  /// vm.inplace.hits / rt.pool.reuses / rt.pool.held_bytes_hwm counters
  /// into it.
  Observer *Obs = nullptr;
  /// Runtime storage profiler (if any); runStatic / runNoCoalesce /
  /// runInterp attach it to their executor so the run produces an
  /// op-clocked storage event stream. Owned by the caller.
  RuntimeProfiler *Prof = nullptr;
  /// Cancellation token forwarded to every run mode (see
  /// CompileOptions::Cancel). Owned by the caller.
  const CancelToken *Cancel = nullptr;
  /// Interfering pairs found sharing a slot at plan time (always 0 for a
  /// correct GCTD; checked before SSA inversion, where the plan's
  /// interference graph is still reconstructible).
  unsigned PlanConsistencyErrors = 0;
};

/// Compiles \p Source end to end. Returns nullptr on error, with
/// diagnostics in \p Diags. \p Entry names the driver function ("main"
/// covers script-style sources).
std::unique_ptr<CompiledProgram> compileSource(const std::string &Source,
                                               Diagnostics &Diags,
                                               const std::string &Entry =
                                                   "main");

/// Options-taking variant: fault injection, verification and degradation
/// control, and execution guards.
std::unique_ptr<CompiledProgram> compileSource(const std::string &Source,
                                               Diagnostics &Diags,
                                               const CompileOptions &Options);

/// Routes a failed execution into \p Diags as an error carrying the trap
/// classification; no-op when \p R succeeded.
void reportExecResult(const ExecResult &R, Diagnostics &Diags);

/// The static side of the plan-vs-actual drift report: one record per
/// storage group across every planned function of \p P, with the group's
/// kind, planned stack bytes, symbolic size bound, members, and the source
/// location of the first defining instruction of any member.
std::vector<PlannedGroupInfo> plannedGroupInfo(const CompiledProgram &P);

/// Convenience: runs \p Prof's drift report against \p P's storage plans
/// using the range analysis's stack-promotion cap as the promotability
/// threshold. PlanDrift remarks go to \p Obs when non-null.
std::string driftReportFor(const CompiledProgram &P,
                           const RuntimeProfiler &Prof,
                           Observer *Obs = nullptr);

} // namespace matcoal

#endif // MATCOAL_DRIVER_COMPILER_H
