//===- Compiler.h - End-to-end compilation facade ---------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The public entry point: compiles MATLAB source through the full mat2c-
/// style pipeline (parse, lower to SO form, SSA, cleanup passes, type
/// inference, GCTD) and exposes ready-to-run execution under the three
/// configurations the paper measures: the mcc model, the mat2c model with
/// GCTD, and the mat2c model without GCTD (identity plans).
///
/// \code
///   auto P = compileSource("x = rand(100); disp(sum(x(:, 1)));", Err);
///   ExecResult R = P->runStatic();
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_DRIVER_COMPILER_H
#define MATCOAL_DRIVER_COMPILER_H

#include "frontend/AST.h"
#include "gctd/GCTD.h"
#include "interp/Interp.h"
#include "ir/IR.h"
#include "support/Diagnostics.h"
#include "typeinf/TypeInference.h"
#include "vm/VM.h"

#include <map>
#include <memory>
#include <string>

namespace matcoal {

/// A fully compiled program with its storage plans.
class CompiledProgram {
public:
  /// Aggregated Table 2 statistics across all functions.
  struct Stats {
    unsigned OriginalVarCount = 0;
    unsigned StaticSubsumed = 0;
    unsigned DynamicSubsumed = 0;
    std::int64_t StaticReductionBytes = 0;
  };

  /// Executes under the mcc model (boxed heap arrays, COW).
  ExecResult runMcc(std::uint64_t Seed = 20030609) const;
  /// Executes under the mat2c model with the GCTD storage plan.
  ExecResult runStatic(std::uint64_t Seed = 20030609) const;
  /// Executes under the mat2c model with identity plans (no coalescing):
  /// the "without GCTD" ablation of the paper's Figure 6.
  ExecResult runNoCoalesce(std::uint64_t Seed = 20030609) const;
  /// Runs the AST interpreter (the paper's "intrp" series).
  InterpResult runInterp(std::uint64_t Seed = 20030609) const;

  Stats stats() const;
  const StoragePlan &planOf(const Function &F) const;
  const Function &function(const std::string &Name) const;
  const Module &module() const { return *M; }
  const TypeInference &types() const { return *TI; }
  const std::string &entryName() const { return Entry; }

  /// Implementation detail, public for the factory function.
  std::unique_ptr<Program> Ast;
  std::unique_ptr<Module> M;
  std::unique_ptr<SymExprContext> Ctx;
  std::unique_ptr<TypeInference> TI;
  std::map<const Function *, StoragePlan> GCTDPlans;
  std::map<const Function *, StoragePlan> IdentityPlans;
  std::string Entry;
  std::uint64_t OpBudget = 2000000000ull;
  /// Interfering pairs found sharing a slot at plan time (always 0 for a
  /// correct GCTD; checked before SSA inversion, where the plan's
  /// interference graph is still reconstructible).
  unsigned PlanConsistencyErrors = 0;
};

/// Compiles \p Source end to end. Returns nullptr on error, with
/// diagnostics in \p Diags. \p Entry names the driver function ("main"
/// covers script-style sources).
std::unique_ptr<CompiledProgram> compileSource(const std::string &Source,
                                               Diagnostics &Diags,
                                               const std::string &Entry =
                                                   "main");

} // namespace matcoal

#endif // MATCOAL_DRIVER_COMPILER_H
