//===- Compiler.cpp -------------------------------------------------------===//

#include "driver/Compiler.h"

#include "frontend/Parser.h"
#include "transforms/Lowering.h"
#include "transforms/Passes.h"
#include "transforms/SSA.h"

using namespace matcoal;

std::unique_ptr<CompiledProgram>
matcoal::compileSource(const std::string &Source, Diagnostics &Diags,
                       const std::string &Entry) {
  auto P = std::make_unique<CompiledProgram>();
  P->Entry = Entry;

  P->Ast = parseProgram(Source, Diags);
  if (!P->Ast)
    return nullptr;
  if (!P->Ast->findFunction(Entry)) {
    Diags.error(SourceLoc{}, "no entry function named '" + Entry + "'");
    return nullptr;
  }

  P->M = lowerProgram(*P->Ast, Diags);
  if (!P->M)
    return nullptr;

  for (auto &F : P->M->Functions) {
    if (!buildSSA(*F, Diags))
      return nullptr;
    runCleanupPipeline(*F);
    if (!verifyFunction(*F, Diags))
      return nullptr;
  }

  P->Ctx = std::make_unique<SymExprContext>();
  P->TI = std::make_unique<TypeInference>(*P->M, *P->Ctx, Diags);
  P->TI->run(Entry);

  for (auto &F : P->M->Functions) {
    InterferenceGraph IG(*F, *P->TI);
    StoragePlan Plan = decomposeColorClasses(*F, IG, *P->TI);
    // Self-check while the SSA-form graph still exists: interfering
    // variables must never share a storage slot.
    for (unsigned U = 0; U < F->numVars(); ++U)
      for (unsigned V = U + 1; V < F->numVars(); ++V) {
        if (!IG.participates(U) || !IG.participates(V))
          continue;
        if (IG.interferes(U, V) && Plan.sameSlot(U, V))
          ++P->PlanConsistencyErrors;
      }
    P->GCTDPlans.emplace(F.get(), std::move(Plan));
    P->IdentityPlans.emplace(F.get(), makeIdentityPlan(*F, *P->TI));
  }

  // Leave SSA: the plans are fixed, so inversion's copies become identity
  // assignments wherever phi webs were coalesced.
  for (auto &F : P->M->Functions) {
    invertSSA(*F);
    F->recomputePreds();
    if (!verifyFunction(*F, Diags))
      return nullptr;
  }
  return P;
}

ExecResult CompiledProgram::runMcc(std::uint64_t Seed) const {
  VM Machine(*M, ExecModel::Mcc, {}, Seed);
  Machine.setOpBudget(OpBudget);
  return Machine.run(Entry);
}

ExecResult CompiledProgram::runStatic(std::uint64_t Seed) const {
  VM Machine(*M, ExecModel::Static, GCTDPlans, Seed);
  Machine.setOpBudget(OpBudget);
  return Machine.run(Entry);
}

ExecResult CompiledProgram::runNoCoalesce(std::uint64_t Seed) const {
  VM Machine(*M, ExecModel::Static, IdentityPlans, Seed);
  Machine.setOpBudget(OpBudget);
  return Machine.run(Entry);
}

InterpResult CompiledProgram::runInterp(std::uint64_t Seed) const {
  Interpreter I(*Ast, Seed);
  I.setStepBudget(OpBudget);
  return I.run(Entry);
}

CompiledProgram::Stats CompiledProgram::stats() const {
  Stats S;
  for (const auto &[F, Plan] : GCTDPlans) {
    (void)F;
    S.OriginalVarCount += Plan.OriginalVarCount;
    S.StaticSubsumed += Plan.StaticSubsumed;
    S.DynamicSubsumed += Plan.DynamicSubsumed;
    S.StaticReductionBytes += Plan.StaticReductionBytes;
  }
  return S;
}

const StoragePlan &CompiledProgram::planOf(const Function &F) const {
  return GCTDPlans.at(&F);
}

const Function &CompiledProgram::function(const std::string &Name) const {
  const Function *F = M->findFunction(Name);
  if (!F)
    throw MatError("no function named '" + Name + "'");
  return *F;
}
