//===- Compiler.cpp -------------------------------------------------------===//

#include "driver/Compiler.h"

#include "frontend/Parser.h"
#include "transforms/Lowering.h"
#include "transforms/Passes.h"
#include "transforms/SSA.h"
#include "verify/PlanAudit.h"
#include "verify/Verifier.h"

#include <cstdlib>
#include <exception>

using namespace matcoal;

int matcoal::resolveThreads(int Requested) {
  // Mirrors mcrt_set_threads exactly: the native tier resolves through
  // the runtime's own copy of this rule, so the two must not drift.
  int N = Requested;
  if (N <= 0) {
    N = 1;
    if (const char *Env = std::getenv("MATCOAL_THREADS")) {
      if (Env[0]) {
        N = std::atoi(Env);
        if (N < 1)
          N = 1;
      }
    }
  }
  if (N < 1)
    N = 1;
  if (N > 64)
    N = 64;
  return N;
}

const char *matcoal::compileStageName(CompileStage S) {
  switch (S) {
  case CompileStage::None:
    return "none";
  case CompileStage::Parse:
    return "parse";
  case CompileStage::Lower:
    return "lower";
  case CompileStage::SSA:
    return "ssa";
  case CompileStage::TypeInf:
    return "typeinf";
  case CompileStage::GCTD:
    return "gctd";
  }
  return "none";
}

CompileStage matcoal::parseCompileStage(const std::string &Name) {
  if (Name == "parse")
    return CompileStage::Parse;
  if (Name == "lower")
    return CompileStage::Lower;
  if (Name == "ssa")
    return CompileStage::SSA;
  if (Name == "typeinf")
    return CompileStage::TypeInf;
  if (Name == "gctd")
    return CompileStage::GCTD;
  return CompileStage::None;
}

bool matcoal::isValidFaultName(const std::string &Name) {
  return Name.empty() || Name == "none" || Name == "plan-corrupt" ||
         parseCompileStage(Name) != CompileStage::None;
}

const char *matcoal::validCompileStageNames() {
  return "parse, lower, ssa, typeinf, gctd, plan-corrupt";
}

const char *matcoal::execTierName(ExecTier T) {
  switch (T) {
  case ExecTier::Native:
    return "native";
  case ExecTier::StaticVM:
    return "vm-static";
  case ExecTier::MccVM:
    return "vm-mcc";
  case ExecTier::Interp:
    return "interp";
  case ExecTier::ExternalCC:
    return "external-cc";
  }
  return "vm-static";
}

const char *matcoal::degradeLevelName(DegradeLevel L) {
  switch (L) {
  case DegradeLevel::Full:
    return "full";
  case DegradeLevel::IdentityPlans:
    return "identity-plans";
  case DegradeLevel::MccOnly:
    return "mcc-only";
  case DegradeLevel::InterpOnly:
    return "interp-only";
  }
  return "full";
}

void matcoal::reportExecResult(const ExecResult &R, Diagnostics &Diags) {
  if (R.OK)
    return;
  Diags.error(SourceLoc{}, "execution trapped (" +
                               std::string(trapKindName(R.Trap)) + "): " +
                               R.Error);
}

std::unique_ptr<CompiledProgram>
matcoal::compileSource(const std::string &Source, Diagnostics &Diags,
                       const std::string &Entry) {
  CompileOptions O;
  O.Entry = Entry;
  return compileSource(Source, Diags, O);
}

std::unique_ptr<CompiledProgram>
matcoal::compileSource(const std::string &Source, Diagnostics &Diags,
                       const CompileOptions &Options) {
  CompileOptions O = Options;
  if (O.InjectFault == CompileStage::None)
    if (const char *Env = std::getenv("MATCOAL_FAULT")) {
      // A misspelled stage name must fail loudly: silently running the
      // un-faulted pipeline is exactly what a fault-injection test does
      // not want.
      if (!isValidFaultName(Env)) {
        Diags.error(SourceLoc{},
                    std::string("unrecognized MATCOAL_FAULT stage '") + Env +
                        "' (valid stages: " + validCompileStageNames() +
                        ", or 'none')");
        return nullptr;
      }
      // plan-corrupt is not a pipeline stage: it breaks an already-
      // verified artifact so the independent auditor must catch it.
      if (std::string(Env) == "plan-corrupt")
        O.InjectPlanCorrupt = true;
      else
        O.InjectFault = parseCompileStage(Env);
    }

  auto P = std::make_unique<CompiledProgram>();
  P->Entry = O.Entry;
  P->OpBudget = O.OpBudget;
  P->HeapLimit = O.HeapLimit;
  P->RecursionLimit = O.RecursionLimit;
  P->Threads = resolveThreads(O.Threads);
  P->NoFuse = O.NoFuse;
  P->Obs = O.Obs;
  P->Cancel = O.Cancel;

  // Compile-time half of the deadline contract: the pipeline polls the
  // token between stages and refuses (classified error, never a partial
  // program) once it expires; the runtime half is the executors' in-loop
  // poll that unwinds with TrapKind::Deadline.
  auto DeadlineHit = [&](const char *AfterStage) -> bool {
    if (!O.Cancel || !O.Cancel->expired())
      return false;
    Diags.error(SourceLoc{},
                std::string(O.Cancel->cancelled() ? "compilation cancelled"
                                                  : "deadline exceeded") +
                    " (after " + AfterStage + " stage)");
    return true;
  };

  Observer *Obs = O.Obs;
  if (Obs) {
    // Seed the driver-owned counters so the schema is input-independent.
    Obs->Stats.add("ir.functions", 0);
    Obs->Stats.add("ir.blocks", 0);
    Obs->Stats.add("ir.instrs", 0);
    Obs->Stats.add("ir.vars", 0);
    Obs->Stats.add("ssa.phis", 0);
    Obs->Stats.add("typeinf.typed_vars", 0);
    Obs->Stats.add("vm.inplace.hits", 0);
    Obs->Stats.add("rt.pool.reuses", 0);
    Obs->Stats.add("rt.pool.held_bytes_hwm", 0);
    Obs->Stats.add("rt.threads.spawned", 0);
    Obs->Stats.add("rt.threads.chunks", 0);
    Obs->Stats.add("rt.threads.busy_ns", 0);
    Obs->Stats.add("analysis.alias.queries", 0);
    Obs->Stats.add("analysis.inplace.proven", 0);
    Obs->Stats.add("verify.audit.functions", 0);
    Obs->Stats.add("verify.audit.violations", 0);
    // Native-tier counters: seeded here (not in src/native) so the pinned
    // key set is identical whether or not a run ever goes native.
    Obs->Stats.add("native.cache.hits", 0);
    Obs->Stats.add("native.cache.misses", 0);
    Obs->Stats.add("native.compile_seconds", 0);
  }
  // Records the module printer's output when --print-after requested it.
  auto DumpAfter = [&](const char *Pass) {
    if (Obs && Obs->wantsDump(Pass) && P->M)
      Obs->recordDump(Pass, P->M->str());
  };

  // Degrades to \p L (warning) or refuses (error + nullptr) depending on
  // AllowDegrade. The returned pointer is what compileSource returns.
  auto DegradeOr = [&](DegradeLevel L, CompileStage St,
                       const std::string &Why)
      -> std::unique_ptr<CompiledProgram> {
    if (!O.AllowDegrade) {
      Diags.error(SourceLoc{}, std::string(compileStageName(St)) +
                                   " stage failed (" + Why +
                                   ") and degradation is disabled");
      return nullptr;
    }
    Diags.warning(SourceLoc{}, std::string(compileStageName(St)) +
                                   " stage failed (" + Why +
                                   "): degrading to " + degradeLevelName(L));
    remarkTo(Obs, "driver", RemarkKind::Degraded, "",
             std::string(compileStageName(St)) + " stage failed (" + Why +
                 "): degraded to " + degradeLevelName(L),
             {{"stage", compileStageName(St)},
              {"level", degradeLevelName(L)}});
    P->Level = L;
    return std::move(P);
  };

  // --- Parse. Real syntax errors keep the historical contract: nullptr
  // with errors in Diags. An injected parse fault degrades to the
  // interpreter (the AST exists; everything downstream is suspect).
  {
    PassTimer T(Obs, "parse");
    P->Ast = parseProgram(Source, Diags);
  }
  if (!P->Ast)
    return nullptr;
  if (!P->Ast->findFunction(O.Entry)) {
    Diags.error(SourceLoc{}, "no entry function named '" + O.Entry + "'");
    return nullptr;
  }
  if (O.InjectFault == CompileStage::Parse)
    return DegradeOr(DegradeLevel::InterpOnly, CompileStage::Parse,
                     "fault injected");
  if (DeadlineHit("parse"))
    return nullptr;

  try {
    // --- Lower to SO-form IR.
    {
      PassTimer T(Obs, "lower");
      P->M = lowerProgram(*P->Ast, Diags);
    }
    if (O.InjectFault == CompileStage::Lower) {
      P->M.reset();
      return DegradeOr(DegradeLevel::InterpOnly, CompileStage::Lower,
                       "fault injected");
    }
    if (!P->M)
      return nullptr; // Semantic error in the input.
    DumpAfter("lower");

    // --- SSA construction, then cleanup, each verified per function.
    // (Two loops so a --print-after=ssa dump shows pure SSA form, before
    // the cleanup pipeline rewrites it.)
    bool SSAOK = true;
    std::string SSAWhy = "fault injected";
    {
      PassTimer T(Obs, "ssa");
      for (auto &F : P->M->Functions) {
        if (!buildSSA(*F, Diags)) {
          SSAOK = false;
          SSAWhy = "SSA construction failed for " + F->Name;
          break;
        }
      }
    }
    if (SSAOK)
      DumpAfter("ssa");
    if (SSAOK) {
      PassTimer T(Obs, "cleanup");
      for (auto &F : P->M->Functions) {
        runCleanupPipeline(*F);
        if (O.Verify) {
          PassTimer VT(Obs, "verify");
          VerifierReport R;
          if (!verifyCFG(*F, R) || !verifySSA(*F, R)) {
            R.reportTo(Diags, DiagLevel::Warning);
            SSAOK = false;
            SSAWhy = "verifier rejected " + F->Name;
            break;
          }
        }
      }
    }
    if (O.InjectFault == CompileStage::SSA)
      SSAOK = false;
    if (!SSAOK) {
      P->M.reset();
      return DegradeOr(DegradeLevel::InterpOnly, CompileStage::SSA, SSAWhy);
    }
    if (DeadlineHit("ssa"))
      return nullptr;
    DumpAfter("cleanup");
    if (Obs) {
      // IR shape counters, over the cleaned-up SSA the optimizer sees.
      for (const auto &F : P->M->Functions) {
        Obs->Stats.add("ir.functions");
        Obs->Stats.add("ir.vars", F->numVars());
        Obs->Stats.add("ir.blocks",
                       static_cast<std::int64_t>(F->Blocks.size()));
        for (const auto &BB : F->Blocks) {
          Obs->Stats.add("ir.instrs",
                         static_cast<std::int64_t>(BB->Instrs.size()));
          for (const Instr &I : BB->Instrs)
            if (I.Op == Opcode::Phi)
              Obs->Stats.add("ssa.phis");
        }
      }
    }

    // --- Type inference, verified per function.
    P->Ctx = std::make_unique<SymExprContext>();
    P->TI = std::make_unique<TypeInference>(*P->M, *P->Ctx, Diags);
    {
      PassTimer T(Obs, "typeinf");
      P->TI->run(O.Entry);
    }
    if (Obs)
      for (const auto &F : P->M->Functions) {
        if (!P->TI->hasTypesFor(*F))
          continue;
        for (const VarType &T : P->TI->functionTypes(*F))
          if (!T.isBottom())
            Obs->Stats.add("typeinf.typed_vars");
      }
    bool TypesOK = O.InjectFault != CompileStage::TypeInf;
    std::string TypesWhy = "fault injected";
    if (TypesOK && O.Verify) {
      PassTimer VT(Obs, "verify");
      VerifierReport R;
      for (auto &F : P->M->Functions)
        verifyTypes(*F, *P->TI, R);
      if (!R.ok()) {
        R.reportTo(Diags, DiagLevel::Warning);
        TypesOK = false;
        TypesWhy = "verifier rejected the inferred types";
      }
    }
    if (!TypesOK) {
      // The mcc model needs no types and no plans -- but it does need the
      // IR out of SSA form.
      auto Result = DegradeOr(DegradeLevel::MccOnly, CompileStage::TypeInf,
                              TypesWhy);
      if (Result) {
        Result->TI.reset();
        Result->Ctx.reset();
        for (auto &F : Result->M->Functions) {
          invertSSA(*F);
          F->recomputePreds();
        }
      }
      return Result;
    }

    if (DeadlineHit("typeinf"))
      return nullptr;

    // --- Range analysis (optional). A throwing analysis never fails the
    // compile; the pipeline simply continues with types-only facts.
    if (O.Analysis == AnalysisLevel::Ranges) {
      try {
        P->RA = std::make_unique<RangeAnalysis>(*P->M, *P->TI, O.Entry, Obs);
      } catch (const std::exception &E) {
        Diags.warning(SourceLoc{}, std::string("range analysis failed (") +
                                       E.what() +
                                       "); continuing without ranges");
        P->RA.reset();
      }
    }

    // --- Interprocedural alias/escape/last-use analysis and the shared
    // in-place legality oracle. Like ranges, a throwing alias analysis
    // never fails the compile; the oracle then answers from types/ranges
    // alone. The oracle is handed to both the VM (runStatic) and the C
    // emitter so every in-place decision comes from one place.
    try {
      P->AA = std::make_unique<AliasAnalysis>(*P->M, *P->TI, O.Entry, Obs);
    } catch (const std::exception &E) {
      Diags.warning(SourceLoc{}, std::string("alias analysis failed (") +
                                     E.what() +
                                     "); continuing without aliases");
      P->AA.reset();
    }
    P->Legal = std::make_unique<InPlaceLegality>(*P->TI, P->RA.get(),
                                                 P->AA.get(), Obs);

    // --- Lint (optional; needs SSA form, so it runs before inversion).
    if (O.Lint) {
      try {
        PassTimer T(Obs, "lint");
        P->LintDiags = runLint(*P->M, *P->TI, P->RA.get());
      } catch (const std::exception &E) {
        Diags.warning(SourceLoc{},
                      std::string("lint failed: ") + E.what());
      }
    }

    // The verifier must accept range-justified promotions by re-deriving
    // them: hand it an independently constructed analysis rather than the
    // planner's instance.
    std::unique_ptr<RangeAnalysis> VerifyRA;
    if (P->RA && O.Verify) {
      try {
        VerifyRA = std::make_unique<RangeAnalysis>(*P->M, *P->TI, O.Entry);
      } catch (const std::exception &E) {
        (void)E;
        VerifyRA.reset();
      }
    }

    // --- GCTD, verified per function. A rejected or throwing GCTD run
    // falls back to that function's identity plan; the program then
    // reports the IdentityPlans rung.
    bool AnyIdentityFallback = false;
    for (auto &F : P->M->Functions) {
      StoragePlan Identity = makeIdentityPlan(*F, *P->TI);
      bool UseGCTD = O.InjectFault != CompileStage::GCTD;
      StoragePlan Plan;
      if (UseGCTD) {
        try {
          InterferenceGraph IG(*F, *P->TI, /*Coalesce=*/true,
                               ColoringStrategy::Affinity, P->RA.get(), Obs);
          Plan = decomposeColorClasses(*F, IG, *P->TI, P->RA.get(), Obs);
          // Self-check while the SSA-form graph still exists: interfering
          // variables must never share a storage slot.
          for (unsigned U = 0; U < F->numVars(); ++U)
            for (unsigned V = U + 1; V < F->numVars(); ++V) {
              if (!IG.participates(U) || !IG.participates(V))
                continue;
              if (IG.interferes(U, V) && Plan.sameSlot(U, V))
                ++P->PlanConsistencyErrors;
            }
          if (O.Verify) {
            PassTimer VT(Obs, "verify");
            VerifierReport R;
            if (!verifyStoragePlan(*F, *P->TI, Plan, R, VerifyRA.get())) {
              R.reportTo(Diags, DiagLevel::Warning);
              UseGCTD = false;
            }
          }
          // Fault injection for the auditor: break the plan only *after*
          // the interference-based verifier accepted it, so a rejection
          // can only come from the independent audit below.
          if (UseGCTD && O.InjectPlanCorrupt &&
              !corruptStoragePlanForTesting(*F, Plan))
            Diags.warning(SourceLoc{}, "plan-corrupt fault found no "
                                       "eligible pair in " +
                                           F->Name);
          // --- Static plan audit: re-prove the plan's destructive
          // discipline by abstract interpretation, independently of the
          // interference graph the planner and verifier share.
          if (UseGCTD) {
            PassTimer AT(Obs, "audit");
            std::vector<PlanAuditIssue> Issues = auditStoragePlan(
                *F, Plan, *P->TI, P->RA.get(), P->AA.get(), Obs);
            for (const PlanAuditIssue &Iss : Issues) {
              Diags.warning(Iss.Loc, "plan audit: " + Iss.str());
              LintDiag D;
              D.Check = Iss.Rule == "plan-overlap"
                            ? LintCheck::PlanOverlap
                            : Iss.Rule == "unsafe-inplace"
                                  ? LintCheck::UnsafeInPlace
                                  : LintCheck::MultiUseElide;
              D.Func = Iss.Function;
              D.Loc = Iss.Loc;
              D.Msg = Iss.Message;
              P->AuditDiags.push_back(std::move(D));
            }
            if (!Issues.empty())
              UseGCTD = false;
          }
        } catch (const std::exception &E) {
          Diags.warning(SourceLoc{},
                        "GCTD threw on " + F->Name + ": " + E.what());
          UseGCTD = false;
        }
      }
      if (!UseGCTD)
        AnyIdentityFallback = true;
      P->GCTDPlans.emplace(F.get(), UseGCTD ? std::move(Plan) : Identity);
      P->IdentityPlans.emplace(F.get(), std::move(Identity));
    }
    if (AnyIdentityFallback) {
      auto Result = DegradeOr(
          DegradeLevel::IdentityPlans, CompileStage::GCTD,
          O.InjectFault == CompileStage::GCTD ? "fault injected"
          : !P->AuditDiags.empty()
              ? "plan audit rejected " +
                    std::to_string(P->AuditDiags.size()) + " violation(s)"
              : "plan verification failed");
      if (!Result)
        return nullptr;
      // Keep going: the identity plans still need SSA inversion below.
      P = std::move(Result);
    }
    // The matvet audit rules are part of the lint surface too.
    if (O.Lint && !P->AuditDiags.empty())
      P->LintDiags.insert(P->LintDiags.end(), P->AuditDiags.begin(),
                          P->AuditDiags.end());

    // Leave SSA: the plans are fixed, so inversion's copies become
    // identity assignments wherever phi webs were coalesced.
    {
      PassTimer T(Obs, "invert");
      for (auto &F : P->M->Functions) {
        invertSSA(*F);
        F->recomputePreds();
        if (O.Verify) {
          VerifierReport R;
          if (!verifyCFG(*F, R)) {
            R.reportTo(Diags, DiagLevel::Warning);
            P->GCTDPlans.clear();
            P->IdentityPlans.clear();
            // The oracle and alias analysis hold references into TI/RA:
            // they must go first.
            P->Legal.reset();
            P->AA.reset();
            P->AuditDiags.clear();
            P->RA.reset();
            P->TI.reset();
            P->Ctx.reset();
            P->M.reset();
            return DegradeOr(DegradeLevel::InterpOnly, CompileStage::SSA,
                             "SSA inversion broke the CFG of " + F->Name);
          }
        }
        // Inversion rewrote instruction storage: cached per-instruction
        // facts keyed by address are stale and must be dropped.
        if (P->AA)
          P->AA->refresh(*F);
        if (P->Legal)
          P->Legal->refresh(*F);
      }
    }
    DumpAfter("invert");
    return P;
  } catch (const std::exception &E) {
    // Any uncaught stage exception: the interpreter rung only needs the
    // AST, which exists by this point.
    P->GCTDPlans.clear();
    P->IdentityPlans.clear();
    P->Legal.reset();
    P->AA.reset();
    P->AuditDiags.clear();
    P->RA.reset();
    P->TI.reset();
    P->Ctx.reset();
    P->M.reset();
    return DegradeOr(DegradeLevel::InterpOnly, CompileStage::SSA,
                     std::string("internal compiler error: ") + E.what());
  }
}

namespace {

/// Adapts an interpreter result to the VM's result type so degraded
/// programs keep the ExecResult-returning API.
ExecResult execFromInterp(InterpResult I) {
  ExecResult R;
  R.OK = I.OK;
  R.Error = std::move(I.Error);
  R.Trap = I.Trap;
  R.Output = std::move(I.Output);
  R.Ops = I.Steps;
  R.WallSeconds = I.WallSeconds;
  return R;
}

} // namespace

ExecResult CompiledProgram::runMcc(std::uint64_t Seed) const {
  if (Level == DegradeLevel::InterpOnly || !M)
    return execFromInterp(runInterp(Seed));
  VM Machine(*M, ExecModel::Mcc, {}, Seed);
  Machine.setOpBudget(OpBudget);
  Machine.setHeapLimit(HeapLimit);
  Machine.setRecursionLimit(RecursionLimit);
  Machine.setCancelToken(Cancel);
  Machine.setThreads(Threads);
  return Machine.run(Entry);
}

ExecResult CompiledProgram::runStatic(std::uint64_t Seed) const {
  if (Level == DegradeLevel::InterpOnly || !M)
    return execFromInterp(runInterp(Seed));
  if (Level == DegradeLevel::MccOnly)
    return runMcc(Seed);
  // At the IdentityPlans rung GCTDPlans holds identity copies, so the
  // static model stays safe to run.
  VM Machine(*M, ExecModel::Static, GCTDPlans, Seed);
  Machine.setOpBudget(OpBudget);
  Machine.setHeapLimit(HeapLimit);
  Machine.setRecursionLimit(RecursionLimit);
  Machine.setBufferReuse(!NoFuse);
  Machine.setLegality(Legal.get(), &GCTDPlans);
  Machine.setProfiler(Prof);
  Machine.setCancelToken(Cancel);
  Machine.setThreads(Threads);
  ExecResult R = Machine.run(Entry);
  count(Obs, "vm.inplace.hits",
        static_cast<std::int64_t>(R.InPlaceOps + R.DestReuses +
                                  R.BufferSteals));
  count(Obs, "rt.pool.reuses", static_cast<std::int64_t>(R.PoolReuses));
  count(Obs, "rt.pool.held_bytes_hwm", R.PoolHeldHwmBytes);
  count(Obs, "rt.threads.spawned",
        static_cast<std::int64_t>(R.ThreadsSpawned));
  count(Obs, "rt.threads.chunks", static_cast<std::int64_t>(R.ThreadChunks));
  count(Obs, "rt.threads.busy_ns",
        static_cast<std::int64_t>(R.ThreadBusyNs));
  if (Obs)
    for (std::uint64_t Ns : R.ThreadChunkNs)
      Obs->Stats.sample("rt.threads.chunk_us", Ns / 1000);
  return R;
}

ExecResult CompiledProgram::runNoCoalesce(std::uint64_t Seed) const {
  if (Level == DegradeLevel::InterpOnly || !M)
    return execFromInterp(runInterp(Seed));
  if (Level == DegradeLevel::MccOnly)
    return runMcc(Seed);
  VM Machine(*M, ExecModel::Static, IdentityPlans, Seed);
  Machine.setOpBudget(OpBudget);
  Machine.setHeapLimit(HeapLimit);
  Machine.setRecursionLimit(RecursionLimit);
  Machine.setLegality(Legal.get(), &IdentityPlans);
  // Last-use buffer stealing is itself a (dynamic) form of storage
  // coalescing, so the "without GCTD" ablation keeps the destructive
  // layer off regardless of NoFuse -- otherwise the ablation would no
  // longer measure coalescing's absence.
  Machine.setBufferReuse(false);
  Machine.setProfiler(Prof);
  Machine.setCancelToken(Cancel);
  Machine.setThreads(Threads);
  return Machine.run(Entry);
}

InterpResult CompiledProgram::runInterp(std::uint64_t Seed) const {
  Interpreter I(*Ast, Seed);
  I.setStepBudget(OpBudget);
  I.setHeapLimit(HeapLimit);
  I.setRecursionLimit(RecursionLimit);
  I.setBufferReuse(!NoFuse);
  I.setProfiler(Prof);
  I.setCancelToken(Cancel);
  return I.run(Entry);
}

CompiledProgram::Stats CompiledProgram::stats() const {
  Stats S;
  for (const auto &[F, Plan] : GCTDPlans) {
    (void)F;
    S.OriginalVarCount += Plan.OriginalVarCount;
    S.StaticSubsumed += Plan.StaticSubsumed;
    S.DynamicSubsumed += Plan.DynamicSubsumed;
    S.StaticReductionBytes += Plan.StaticReductionBytes;
  }
  return S;
}

const StoragePlan &CompiledProgram::planOf(const Function &F) const {
  return GCTDPlans.at(&F);
}

const Function &CompiledProgram::function(const std::string &Name) const {
  const Function *F = M->findFunction(Name);
  if (!F)
    throw MatError("no function named '" + Name + "'");
  return *F;
}

std::vector<PlannedGroupInfo>
matcoal::plannedGroupInfo(const CompiledProgram &P) {
  std::vector<PlannedGroupInfo> Out;
  if (!P.M)
    return Out;
  for (const auto &F : P.M->Functions) {
    auto It = P.GCTDPlans.find(F.get());
    if (It == P.GCTDPlans.end())
      continue;
    const StoragePlan &Plan = It->second;
    // First defining instruction (in layout order) carrying a source
    // location, per group -- what a drift remark should point at.
    std::vector<SourceLoc> GroupLoc(Plan.Groups.size());
    for (const auto &BB : F->Blocks)
      for (const Instr &I : BB->Instrs) {
        if (!I.Loc.isValid())
          continue;
        for (VarId R : I.Results) {
          int G = Plan.groupOf(R);
          if (G >= 0 && !GroupLoc[G].isValid())
            GroupLoc[G] = I.Loc;
        }
      }
    for (size_t GI = 0; GI < Plan.Groups.size(); ++GI) {
      const StorageGroup &SG = Plan.Groups[GI];
      PlannedGroupInfo Info;
      Info.Function = F->Name;
      Info.Group = static_cast<int>(GI);
      Info.Stack = SG.K == StorageGroup::Kind::Stack;
      Info.PlannedBytes = SG.StackBytes;
      if (SG.SizeExpr)
        Info.SizeExpr = SG.SizeExpr->str();
      for (VarId V : SG.Members) {
        if (!Info.Members.empty())
          Info.Members += ' ';
        Info.Members += F->var(V).Name;
      }
      Info.Loc = GroupLoc[GI];
      Out.push_back(std::move(Info));
    }
  }
  return Out;
}

std::string matcoal::driftReportFor(const CompiledProgram &P,
                                    const RuntimeProfiler &Prof,
                                    Observer *Obs) {
  return Prof.driftReport(plannedGroupInfo(P),
                          RangeAnalysis::kPromoteCapBytes, Obs);
}
