//===- Parser.cpp ---------------------------------------------------------===//

#include "frontend/Parser.h"

#include "frontend/Lexer.h"

#include <cassert>

using namespace matcoal;

std::unique_ptr<Program> matcoal::parseProgram(const std::string &Source,
                                               Diagnostics &Diags) {
  Lexer Lex(Source, Diags);
  Parser P(Lex.lexAll(), Diags);
  auto Prog = P.parseProgram();
  if (Diags.hasErrors())
    return nullptr;
  return Prog;
}

Parser::Parser(std::vector<Token> Tokens, Diagnostics &Diags)
    : Tokens(std::move(Tokens)), Diags(Diags) {
  assert(!this->Tokens.empty() && this->Tokens.back().is(TokenKind::Eof) &&
         "token stream must end with Eof");
}

const Token &Parser::tok(unsigned Ahead) const {
  size_t I = Pos + Ahead;
  if (I >= Tokens.size())
    I = Tokens.size() - 1; // Eof.
  return Tokens[I];
}

void Parser::advance() {
  if (Pos + 1 < Tokens.size())
    ++Pos;
}

bool Parser::consumeIf(TokenKind Kind) {
  if (!at(Kind))
    return false;
  advance();
  return true;
}

bool Parser::expect(TokenKind Kind, const char *Context) {
  if (consumeIf(Kind))
    return true;
  Diags.error(tok().Loc, std::string("expected ") + tokenKindName(Kind) +
                             " " + Context + ", found " +
                             tokenKindName(tok().Kind));
  HadError = true;
  return false;
}

void Parser::skipSeparators() {
  while (at(TokenKind::Newline) || at(TokenKind::Semi) ||
         at(TokenKind::Comma))
    advance();
}

bool Parser::consumeStatementEnd() {
  if (at(TokenKind::Semi)) {
    advance();
    // Consume one trailing newline too so blank lines don't multiply.
    consumeIf(TokenKind::Newline);
    return false;
  }
  if (at(TokenKind::Newline) || at(TokenKind::Comma)) {
    advance();
    return true;
  }
  if (at(TokenKind::Eof) || at(TokenKind::KwEnd) || at(TokenKind::KwElse) ||
      at(TokenKind::KwElseif) || at(TokenKind::KwFunction))
    return true;
  Diags.error(tok().Loc, std::string("expected end of statement, found ") +
                             tokenKindName(tok().Kind));
  HadError = true;
  recoverToLineEnd();
  return true;
}

void Parser::recoverToLineEnd() {
  while (!at(TokenKind::Eof) && !at(TokenKind::Newline))
    advance();
  consumeIf(TokenKind::Newline);
}

void Parser::synchronize() {
  while (!at(TokenKind::Eof)) {
    if (at(TokenKind::Newline) || at(TokenKind::Semi) ||
        at(TokenKind::Comma)) {
      advance();
      break;
    }
    // Block keywords close an enclosing construct; stop in front of them
    // so the enclosing parse can match its delimiter.
    if (at(TokenKind::KwEnd) || at(TokenKind::KwElse) ||
        at(TokenKind::KwElseif) || at(TokenKind::KwCase) ||
        at(TokenKind::KwOtherwise) || at(TokenKind::KwFunction))
      break;
    advance();
  }
  HadError = false;
}

//===----------------------------------------------------------------------===//
// Programs and functions
//===----------------------------------------------------------------------===//

std::unique_ptr<Program> Parser::parseProgram() {
  auto Prog = std::make_unique<Program>();
  skipSeparators();
  if (at(TokenKind::KwFunction)) {
    while (at(TokenKind::KwFunction)) {
      auto F = parseFunction();
      if (F) {
        Prog->Functions.push_back(std::move(F));
      } else {
        // Skip to the next function header and keep collecting errors.
        HadError = false;
        while (!at(TokenKind::Eof) && !at(TokenKind::KwFunction))
          advance();
      }
      skipSeparators();
      if (Diags.errorCount() >= MaxParseErrors)
        break;
    }
    if (!at(TokenKind::Eof))
      Diags.error(tok().Loc, "expected 'function' or end of input");
    return Prog;
  }

  // Script mode: wrap top-level statements into main().
  auto Main = std::make_unique<FunctionDecl>();
  Main->Name = "main";
  Main->Loc = tok().Loc;
  Main->Body = parseStmtList(/*StopAtElse=*/false);
  // Stray block closers at top level: report, resynchronize, and keep
  // parsing so later errors surface in the same pass.
  while (!at(TokenKind::Eof) && Diags.errorCount() < MaxParseErrors) {
    Diags.error(tok().Loc, std::string("unexpected ") +
                               tokenKindName(tok().Kind) +
                               " at top level of script");
    advance();
    HadError = false;
    StmtList More = parseStmtList(/*StopAtElse=*/false);
    for (StmtPtr &S : More)
      Main->Body.push_back(std::move(S));
  }
  Prog->Functions.push_back(std::move(Main));
  return Prog;
}

std::unique_ptr<FunctionDecl> Parser::parseFunction() {
  auto F = std::make_unique<FunctionDecl>();
  F->Loc = tok().Loc;
  expect(TokenKind::KwFunction, "to begin function");

  // Three header shapes: "function name(...)", "function out = name(...)"
  // and "function [o1, o2] = name(...)".
  if (consumeIf(TokenKind::LBracket)) {
    while (!at(TokenKind::RBracket)) {
      if (!at(TokenKind::Identifier)) {
        Diags.error(tok().Loc, "expected output name in function header");
        return nullptr;
      }
      F->Outputs.push_back(tok().Text);
      advance();
      if (!consumeIf(TokenKind::Comma) && !consumeIf(TokenKind::MatrixSep))
        break;
    }
    if (!expect(TokenKind::RBracket, "after function outputs") ||
        !expect(TokenKind::Assign, "after function outputs"))
      return nullptr;
  } else if (at(TokenKind::Identifier) && tok(1).is(TokenKind::Assign)) {
    F->Outputs.push_back(tok().Text);
    advance();
    advance();
  }

  if (!at(TokenKind::Identifier)) {
    Diags.error(tok().Loc, "expected function name");
    return nullptr;
  }
  F->Name = tok().Text;
  advance();

  if (consumeIf(TokenKind::LParen)) {
    while (!at(TokenKind::RParen)) {
      if (!at(TokenKind::Identifier)) {
        Diags.error(tok().Loc, "expected parameter name");
        return nullptr;
      }
      F->Params.push_back(tok().Text);
      advance();
      if (!consumeIf(TokenKind::Comma))
        break;
    }
    if (!expect(TokenKind::RParen, "after parameters"))
      return nullptr;
  }

  F->Body = parseStmtList(/*StopAtElse=*/false);
  // Optional terminating 'end' (both M-file styles are legal).
  consumeIf(TokenKind::KwEnd);
  return F;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

StmtList Parser::parseStmtList(bool StopAtElse, bool StopAtCase) {
  StmtList Body;
  skipSeparators();
  while (!at(TokenKind::Eof) && !at(TokenKind::KwEnd) &&
         !at(TokenKind::KwFunction) &&
         !(StopAtElse &&
           (at(TokenKind::KwElse) || at(TokenKind::KwElseif))) &&
         !(StopAtCase &&
           (at(TokenKind::KwCase) || at(TokenKind::KwOtherwise)))) {
    size_t Before = Pos;
    StmtPtr S = parseStmt();
    if (S)
      Body.push_back(std::move(S));
    if (HadError) {
      if (Diags.errorCount() >= MaxParseErrors)
        break; // Give up; leave the flag set for the caller.
      synchronize();
    }
    if (Pos == Before)
      advance(); // Guarantee progress on tokens no rule consumes.
    skipSeparators();
  }
  return Body;
}

StmtPtr Parser::parseStmt() {
  switch (tok().Kind) {
  case TokenKind::KwIf:
    return parseIf();
  case TokenKind::KwSwitch:
    return parseSwitch();
  case TokenKind::KwWhile:
    return parseWhile();
  case TokenKind::KwFor:
    return parseFor();
  case TokenKind::KwBreak: {
    SourceLoc Loc = tok().Loc;
    advance();
    consumeStatementEnd();
    return std::make_unique<BreakStmt>(Loc);
  }
  case TokenKind::KwContinue: {
    SourceLoc Loc = tok().Loc;
    advance();
    consumeStatementEnd();
    return std::make_unique<ContinueStmt>(Loc);
  }
  case TokenKind::KwReturn: {
    SourceLoc Loc = tok().Loc;
    advance();
    consumeStatementEnd();
    return std::make_unique<ReturnStmt>(Loc);
  }
  default:
    return parseAssignOrExpr();
  }
}

StmtPtr Parser::parseIf() {
  SourceLoc Loc = tok().Loc;
  std::vector<IfStmt::Branch> Branches;
  StmtList ElseBody;
  expect(TokenKind::KwIf, "to begin if");
  while (true) {
    IfStmt::Branch B;
    B.Cond = parseExpr();
    if (!B.Cond)
      return nullptr;
    B.Body = parseStmtList(/*StopAtElse=*/true);
    Branches.push_back(std::move(B));
    if (consumeIf(TokenKind::KwElseif))
      continue;
    if (consumeIf(TokenKind::KwElse)) {
      ElseBody = parseStmtList(/*StopAtElse=*/false);
    }
    break;
  }
  expect(TokenKind::KwEnd, "to close if");
  return std::make_unique<IfStmt>(std::move(Branches), std::move(ElseBody),
                                  Loc);
}

StmtPtr Parser::parseSwitch() {
  SourceLoc Loc = tok().Loc;
  expect(TokenKind::KwSwitch, "to begin switch");
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  skipSeparators();
  std::vector<SwitchStmt::Case> Cases;
  StmtList Otherwise;
  while (at(TokenKind::KwCase)) {
    advance();
    SwitchStmt::Case C;
    C.Value = parseExpr();
    if (!C.Value)
      return nullptr;
    C.Body = parseStmtList(/*StopAtElse=*/false, /*StopAtCase=*/true);
    Cases.push_back(std::move(C));
  }
  if (consumeIf(TokenKind::KwOtherwise))
    Otherwise = parseStmtList(/*StopAtElse=*/false, /*StopAtCase=*/true);
  expect(TokenKind::KwEnd, "to close switch");
  return std::make_unique<SwitchStmt>(std::move(Cond), std::move(Cases),
                                      std::move(Otherwise), Loc);
}

StmtPtr Parser::parseWhile() {
  SourceLoc Loc = tok().Loc;
  expect(TokenKind::KwWhile, "to begin while");
  ExprPtr Cond = parseExpr();
  if (!Cond)
    return nullptr;
  StmtList Body = parseStmtList(/*StopAtElse=*/false);
  expect(TokenKind::KwEnd, "to close while");
  return std::make_unique<WhileStmt>(std::move(Cond), std::move(Body), Loc);
}

StmtPtr Parser::parseFor() {
  SourceLoc Loc = tok().Loc;
  expect(TokenKind::KwFor, "to begin for");
  if (!at(TokenKind::Identifier)) {
    Diags.error(tok().Loc, "expected loop variable after 'for'");
    HadError = true;
    return nullptr;
  }
  std::string Var = tok().Text;
  advance();
  if (!expect(TokenKind::Assign, "in for statement"))
    return nullptr;
  ExprPtr Range = parseExpr();
  if (!Range)
    return nullptr;
  StmtList Body = parseStmtList(/*StopAtElse=*/false);
  expect(TokenKind::KwEnd, "to close for");
  return std::make_unique<ForStmt>(std::move(Var), std::move(Range),
                                   std::move(Body), Loc);
}

bool Parser::buildLValue(Expr *E, LValue &Out) {
  if (E->kind() == ExprKind::Ident) {
    Out.Name = static_cast<IdentExpr *>(E)->Name;
    Out.Loc = E->loc();
    return true;
  }
  if (E->kind() == ExprKind::CallOrIndex) {
    auto *CI = static_cast<CallOrIndexExpr *>(E);
    Out.Name = CI->Name;
    Out.Indices = std::move(CI->Args);
    Out.Loc = E->loc();
    return true;
  }
  if (E->kind() == ExprKind::ColonAll || E->kind() == ExprKind::Matrix) {
    Diags.error(E->loc(), "unsupported assignment target");
    return false;
  }
  Diags.error(E->loc(), "invalid assignment target");
  return false;
}

StmtPtr Parser::parseAssignOrExpr() {
  SourceLoc Loc = tok().Loc;
  ExprPtr E = parseExpr();
  if (!E) {
    recoverToLineEnd();
    return nullptr;
  }

  if (at(TokenKind::Assign)) {
    advance();
    // Multi-output form: [a, b] = f(...).
    if (E->kind() == ExprKind::Matrix) {
      auto *M = static_cast<MatrixExpr *>(E.get());
      if (M->Rows.size() != 1) {
        Diags.error(Loc, "invalid multi-assignment target");
        HadError = true;
        return nullptr;
      }
      std::vector<LValue> Targets;
      for (ExprPtr &Elt : M->Rows.front()) {
        LValue LV;
        if (!buildLValue(Elt.get(), LV)) {
          HadError = true;
          return nullptr;
        }
        Targets.push_back(std::move(LV));
      }
      ExprPtr RHS = parseExpr();
      if (!RHS)
        return nullptr;
      bool Display = consumeStatementEnd();
      if (RHS->kind() != ExprKind::CallOrIndex) {
        Diags.error(Loc,
                    "right side of a multi-assignment must be a call");
        HadError = true;
        return nullptr;
      }
      return std::make_unique<MultiAssignStmt>(
          std::move(Targets), std::move(RHS), Display, Loc);
    }

    LValue LV;
    if (!buildLValue(E.get(), LV)) {
      HadError = true;
      recoverToLineEnd();
      return nullptr;
    }
    ExprPtr RHS = parseExpr();
    if (!RHS) {
      recoverToLineEnd();
      return nullptr;
    }
    bool Display = consumeStatementEnd();
    return std::make_unique<AssignStmt>(std::move(LV), std::move(RHS),
                                        Display, Loc);
  }

  bool Display = consumeStatementEnd();
  return std::make_unique<ExprStmt>(std::move(E), Display, Loc);
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

ExprPtr Parser::parseExpression() { return parseExpr(); }

ExprPtr Parser::parseExpr() { return parseOrOr(); }

ExprPtr Parser::parseOrOr() {
  ExprPtr LHS = parseAndAnd();
  while (LHS && at(TokenKind::PipePipe)) {
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr RHS = parseAndAnd();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(BinaryOp::OrOr, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseAndAnd() {
  ExprPtr LHS = parseElemOr();
  while (LHS && at(TokenKind::AmpAmp)) {
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr RHS = parseElemOr();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(BinaryOp::AndAnd, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseElemOr() {
  ExprPtr LHS = parseElemAnd();
  while (LHS && at(TokenKind::Pipe)) {
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr RHS = parseElemAnd();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(BinaryOp::Or, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseElemAnd() {
  ExprPtr LHS = parseComparison();
  while (LHS && at(TokenKind::Amp)) {
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr RHS = parseComparison();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(BinaryOp::And, std::move(LHS),
                                       std::move(RHS), Loc);
  }
  return LHS;
}

ExprPtr Parser::parseComparison() {
  ExprPtr LHS = parseRange();
  while (LHS) {
    BinaryOp Op;
    switch (tok().Kind) {
    case TokenKind::Less: Op = BinaryOp::Lt; break;
    case TokenKind::LessEq: Op = BinaryOp::Le; break;
    case TokenKind::Greater: Op = BinaryOp::Gt; break;
    case TokenKind::GreaterEq: Op = BinaryOp::Ge; break;
    case TokenKind::EqEq: Op = BinaryOp::Eq; break;
    case TokenKind::NotEq: Op = BinaryOp::Ne; break;
    default:
      return LHS;
    }
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr RHS = parseRange();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

ExprPtr Parser::parseRange() {
  ExprPtr First = parseAdditive();
  if (!First || !at(TokenKind::Colon))
    return First;
  SourceLoc Loc = tok().Loc;
  advance();
  ExprPtr Second = parseAdditive();
  if (!Second)
    return nullptr;
  if (!at(TokenKind::Colon))
    return std::make_unique<RangeExpr>(std::move(First), nullptr,
                                       std::move(Second), Loc);
  advance();
  ExprPtr Third = parseAdditive();
  if (!Third)
    return nullptr;
  return std::make_unique<RangeExpr>(std::move(First), std::move(Second),
                                     std::move(Third), Loc);
}

ExprPtr Parser::parseAdditive() {
  ExprPtr LHS = parseMultiplicative();
  while (LHS && (at(TokenKind::Plus) || at(TokenKind::Minus))) {
    BinaryOp Op = at(TokenKind::Plus) ? BinaryOp::Add : BinaryOp::Sub;
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr RHS = parseMultiplicative();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

ExprPtr Parser::parseMultiplicative() {
  ExprPtr LHS = parseUnary();
  while (LHS) {
    BinaryOp Op;
    switch (tok().Kind) {
    case TokenKind::Star: Op = BinaryOp::MatMul; break;
    case TokenKind::DotStar: Op = BinaryOp::ElemMul; break;
    case TokenKind::Slash: Op = BinaryOp::MatRDiv; break;
    case TokenKind::DotSlash: Op = BinaryOp::ElemRDiv; break;
    case TokenKind::Backslash: Op = BinaryOp::MatLDiv; break;
    case TokenKind::DotBackslash: Op = BinaryOp::ElemLDiv; break;
    default:
      return LHS;
    }
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr RHS = parseUnary();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

ExprPtr Parser::parseUnary() {
  switch (tok().Kind) {
  case TokenKind::Plus: {
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Plus, std::move(Operand),
                                       Loc);
  }
  case TokenKind::Minus: {
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Minus, std::move(Operand),
                                       Loc);
  }
  case TokenKind::Tilde: {
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr Operand = parseUnary();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(UnaryOp::Not, std::move(Operand),
                                       Loc);
  }
  default:
    return parsePower();
  }
}

ExprPtr Parser::parsePower() {
  ExprPtr LHS = parsePostfix();
  while (LHS && (at(TokenKind::Caret) || at(TokenKind::DotCaret))) {
    BinaryOp Op =
        at(TokenKind::Caret) ? BinaryOp::MatPow : BinaryOp::ElemPow;
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr RHS = parseExponentOperand();
    if (!RHS)
      return nullptr;
    LHS = std::make_unique<BinaryExpr>(Op, std::move(LHS), std::move(RHS),
                                       Loc);
  }
  return LHS;
}

ExprPtr Parser::parseExponentOperand() {
  // Exponents admit unary signs that bind tighter than the power's
  // left-associativity: 2^-3 parses, and 2^-x^y is 2^(-(x))^y in MATLAB.
  if (at(TokenKind::Plus) || at(TokenKind::Minus) || at(TokenKind::Tilde)) {
    UnaryOp Op = at(TokenKind::Plus)    ? UnaryOp::Plus
                 : at(TokenKind::Minus) ? UnaryOp::Minus
                                        : UnaryOp::Not;
    SourceLoc Loc = tok().Loc;
    advance();
    ExprPtr Operand = parseExponentOperand();
    if (!Operand)
      return nullptr;
    return std::make_unique<UnaryExpr>(Op, std::move(Operand), Loc);
  }
  return parsePostfix();
}

ExprPtr Parser::parsePostfix() {
  ExprPtr E = parsePrimary();
  while (E) {
    if (at(TokenKind::Apos)) {
      SourceLoc Loc = tok().Loc;
      advance();
      E = std::make_unique<TransposeExpr>(std::move(E), /*Conjugate=*/true,
                                          Loc);
      continue;
    }
    if (at(TokenKind::DotApos)) {
      SourceLoc Loc = tok().Loc;
      advance();
      E = std::make_unique<TransposeExpr>(std::move(E), /*Conjugate=*/false,
                                          Loc);
      continue;
    }
    if (at(TokenKind::LParen)) {
      if (E->kind() != ExprKind::Ident) {
        Diags.error(tok().Loc, "only named values can be indexed or called");
        return nullptr;
      }
      std::string Name = static_cast<IdentExpr *>(E.get())->Name;
      SourceLoc Loc = E->loc();
      advance();
      std::vector<ExprPtr> Args = parseArgList();
      if (!expect(TokenKind::RParen, "to close argument list"))
        return nullptr;
      E = std::make_unique<CallOrIndexExpr>(std::move(Name), std::move(Args),
                                            Loc);
      continue;
    }
    break;
  }
  return E;
}

std::vector<ExprPtr> Parser::parseArgList() {
  std::vector<ExprPtr> Args;
  ++IndexDepth;
  if (!at(TokenKind::RParen)) {
    while (true) {
      if (at(TokenKind::Colon) &&
          (tok(1).is(TokenKind::Comma) || tok(1).is(TokenKind::RParen))) {
        Args.push_back(std::make_unique<ColonAllExpr>(tok().Loc));
        advance();
      } else {
        ExprPtr Arg = parseExpr();
        if (!Arg)
          break;
        Args.push_back(std::move(Arg));
      }
      if (!consumeIf(TokenKind::Comma))
        break;
    }
  }
  --IndexDepth;
  return Args;
}

ExprPtr Parser::parsePrimary() {
  switch (tok().Kind) {
  case TokenKind::Number: {
    auto E = std::make_unique<NumberExpr>(tok().NumValue, tok().IsImaginary,
                                          tok().Loc);
    advance();
    return E;
  }
  case TokenKind::String: {
    auto E = std::make_unique<StringExpr>(tok().Text, tok().Loc);
    advance();
    return E;
  }
  case TokenKind::Identifier: {
    auto E = std::make_unique<IdentExpr>(tok().Text, tok().Loc);
    advance();
    return E;
  }
  case TokenKind::KwEnd: {
    if (IndexDepth > 0) {
      auto E = std::make_unique<EndIndexExpr>(tok().Loc);
      advance();
      return E;
    }
    Diags.error(tok().Loc, "'end' is only valid inside a subscript");
    HadError = true;
    return nullptr;
  }
  case TokenKind::LParen: {
    advance();
    // Parenthesized expressions suspend subscript context: in a(x(1):(end))
    // the inner parens still see the index context, but MATLAB scripts in
    // this subset never rely on that subtlety; keep the context active.
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    if (!expect(TokenKind::RParen, "to close parenthesized expression"))
      return nullptr;
    return E;
  }
  case TokenKind::LBracket:
    return parseMatrixLiteral();
  default:
    Diags.error(tok().Loc, std::string("expected expression, found ") +
                               tokenKindName(tok().Kind));
    HadError = true;
    return nullptr;
  }
}

ExprPtr Parser::parseMatrixLiteral() {
  SourceLoc Loc = tok().Loc;
  expect(TokenKind::LBracket, "to begin matrix literal");
  std::vector<std::vector<ExprPtr>> Rows;
  if (at(TokenKind::RBracket)) {
    advance();
    return std::make_unique<MatrixExpr>(std::move(Rows), Loc);
  }
  std::vector<ExprPtr> Row;
  while (true) {
    ExprPtr E = parseExpr();
    if (!E)
      return nullptr;
    Row.push_back(std::move(E));
    if (consumeIf(TokenKind::Comma) || consumeIf(TokenKind::MatrixSep))
      continue;
    if (consumeIf(TokenKind::Semi)) {
      // Trailing semicolon before ']' is allowed.
      if (at(TokenKind::RBracket))
        break;
      Rows.push_back(std::move(Row));
      Row.clear();
      continue;
    }
    break;
  }
  if (!Row.empty())
    Rows.push_back(std::move(Row));
  if (!expect(TokenKind::RBracket, "to close matrix literal"))
    return nullptr;
  return std::make_unique<MatrixExpr>(std::move(Rows), Loc);
}
