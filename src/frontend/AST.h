//===- AST.h - MATLAB-subset abstract syntax trees --------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// AST node definitions. Nodes form a closed hierarchy discriminated by
/// kind enums (no RTTI); children are owned through unique_ptr.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_FRONTEND_AST_H
#define MATCOAL_FRONTEND_AST_H

#include "support/Diagnostics.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace matcoal {

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

enum class ExprKind {
  Number,
  String,
  Ident,
  ColonAll,   ///< A bare ':' used as a subscript.
  EndIndex,   ///< The 'end' keyword inside a subscript.
  Unary,
  Binary,
  CallOrIndex, ///< name(args): call vs. array index resolved during lowering.
  Range,       ///< start : step : stop.
  Matrix,      ///< [ e, e ; e, e ] literal.
  Transpose,
};

class Expr {
public:
  virtual ~Expr() = default;
  ExprKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Expr(ExprKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  ExprKind Kind;
  SourceLoc Loc;
};

using ExprPtr = std::unique_ptr<Expr>;

/// Numeric literal; \c IsImaginary marks an i/j suffix (value is the
/// imaginary part).
class NumberExpr : public Expr {
public:
  NumberExpr(double Value, bool IsImaginary, SourceLoc Loc)
      : Expr(ExprKind::Number, Loc), Value(Value), IsImaginary(IsImaginary) {}
  double Value;
  bool IsImaginary;
};

/// Single-quoted character literal.
class StringExpr : public Expr {
public:
  StringExpr(std::string Value, SourceLoc Loc)
      : Expr(ExprKind::String, Loc), Value(std::move(Value)) {}
  std::string Value;
};

class IdentExpr : public Expr {
public:
  IdentExpr(std::string Name, SourceLoc Loc)
      : Expr(ExprKind::Ident, Loc), Name(std::move(Name)) {}
  std::string Name;
};

class ColonAllExpr : public Expr {
public:
  explicit ColonAllExpr(SourceLoc Loc) : Expr(ExprKind::ColonAll, Loc) {}
};

class EndIndexExpr : public Expr {
public:
  explicit EndIndexExpr(SourceLoc Loc) : Expr(ExprKind::EndIndex, Loc) {}
};

enum class UnaryOp { Plus, Minus, Not };

class UnaryExpr : public Expr {
public:
  UnaryExpr(UnaryOp Op, ExprPtr Operand, SourceLoc Loc)
      : Expr(ExprKind::Unary, Loc), Op(Op), Operand(std::move(Operand)) {}
  UnaryOp Op;
  ExprPtr Operand;
};

enum class BinaryOp {
  Add,
  Sub,
  MatMul,    ///< *
  ElemMul,   ///< .*
  MatRDiv,   ///< /
  ElemRDiv,  ///< ./
  MatLDiv,   ///< backslash
  ElemLDiv,  ///< .backslash
  MatPow,    ///< ^
  ElemPow,   ///< .^
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,       ///< & elementwise
  Or,        ///< | elementwise
  AndAnd,    ///< && short-circuit
  OrOr,      ///< || short-circuit
};

class BinaryExpr : public Expr {
public:
  BinaryExpr(BinaryOp Op, ExprPtr LHS, ExprPtr RHS, SourceLoc Loc)
      : Expr(ExprKind::Binary, Loc), Op(Op), LHS(std::move(LHS)),
        RHS(std::move(RHS)) {}
  BinaryOp Op;
  ExprPtr LHS;
  ExprPtr RHS;
};

/// `name(arg, ...)`: either a function call or an array index; MATLAB's
/// grammar cannot tell them apart, so lowering resolves the name against
/// the set of in-scope variables and known functions.
class CallOrIndexExpr : public Expr {
public:
  CallOrIndexExpr(std::string Name, std::vector<ExprPtr> Args, SourceLoc Loc)
      : Expr(ExprKind::CallOrIndex, Loc), Name(std::move(Name)),
        Args(std::move(Args)) {}
  std::string Name;
  std::vector<ExprPtr> Args;
};

/// start:stop or start:step:stop. Step is null for the two-operand form.
class RangeExpr : public Expr {
public:
  RangeExpr(ExprPtr Start, ExprPtr Step, ExprPtr Stop, SourceLoc Loc)
      : Expr(ExprKind::Range, Loc), Start(std::move(Start)),
        Step(std::move(Step)), Stop(std::move(Stop)) {}
  ExprPtr Start;
  ExprPtr Step; ///< May be null.
  ExprPtr Stop;
};

/// A bracketed literal; rows of element expressions, concatenated
/// horizontally within a row and vertically across rows.
class MatrixExpr : public Expr {
public:
  MatrixExpr(std::vector<std::vector<ExprPtr>> Rows, SourceLoc Loc)
      : Expr(ExprKind::Matrix, Loc), Rows(std::move(Rows)) {}
  std::vector<std::vector<ExprPtr>> Rows;
};

class TransposeExpr : public Expr {
public:
  TransposeExpr(ExprPtr Operand, bool Conjugate, SourceLoc Loc)
      : Expr(ExprKind::Transpose, Loc), Operand(std::move(Operand)),
        Conjugate(Conjugate) {}
  ExprPtr Operand;
  bool Conjugate;
};

/// Checked downcast helpers (kind-discriminated; no RTTI).
template <typename T> T *exprCast(Expr *E);
template <> inline NumberExpr *exprCast<NumberExpr>(Expr *E) {
  assert(E && E->kind() == ExprKind::Number);
  return static_cast<NumberExpr *>(E);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

enum class StmtKind {
  Assign,
  MultiAssign,
  ExprStmt,
  If,
  Switch,
  While,
  For,
  Break,
  Continue,
  Return,
};

class Stmt {
public:
  virtual ~Stmt() = default;
  StmtKind kind() const { return Kind; }
  SourceLoc loc() const { return Loc; }

protected:
  Stmt(StmtKind Kind, SourceLoc Loc) : Kind(Kind), Loc(Loc) {}

private:
  StmtKind Kind;
  SourceLoc Loc;
};

using StmtPtr = std::unique_ptr<Stmt>;
using StmtList = std::vector<StmtPtr>;

/// An assignment target: a plain variable or an L-indexed element/slice.
struct LValue {
  std::string Name;
  std::vector<ExprPtr> Indices; ///< Empty for a plain variable.
  SourceLoc Loc;
};

/// `lhs = rhs` (Display mirrors MATLAB's "no trailing semicolon" echo).
class AssignStmt : public Stmt {
public:
  AssignStmt(LValue Target, ExprPtr Value, bool Display, SourceLoc Loc)
      : Stmt(StmtKind::Assign, Loc), Target(std::move(Target)),
        Value(std::move(Value)), Display(Display) {}
  LValue Target;
  ExprPtr Value;
  bool Display;
};

/// `[a, b] = f(...)`; multiple-output call.
class MultiAssignStmt : public Stmt {
public:
  MultiAssignStmt(std::vector<LValue> Targets, ExprPtr Call, bool Display,
                  SourceLoc Loc)
      : Stmt(StmtKind::MultiAssign, Loc), Targets(std::move(Targets)),
        Call(std::move(Call)), Display(Display) {}
  std::vector<LValue> Targets;
  ExprPtr Call; ///< Always a CallOrIndexExpr.
  bool Display;
};

/// A bare expression statement (display or side effect such as disp).
class ExprStmt : public Stmt {
public:
  ExprStmt(ExprPtr Value, bool Display, SourceLoc Loc)
      : Stmt(StmtKind::ExprStmt, Loc), Value(std::move(Value)),
        Display(Display) {}
  ExprPtr Value;
  bool Display;
};

class IfStmt : public Stmt {
public:
  struct Branch {
    ExprPtr Cond;
    StmtList Body;
  };
  IfStmt(std::vector<Branch> Branches, StmtList ElseBody, SourceLoc Loc)
      : Stmt(StmtKind::If, Loc), Branches(std::move(Branches)),
        ElseBody(std::move(ElseBody)) {}
  std::vector<Branch> Branches; ///< if + elseif chain, in order.
  StmtList ElseBody;
};

/// switch/case/otherwise. A case matches when the switch value equals
/// the case value (numeric scalars compare by value; char rows compare
/// as strings).
class SwitchStmt : public Stmt {
public:
  struct Case {
    ExprPtr Value;
    StmtList Body;
  };
  SwitchStmt(ExprPtr Cond, std::vector<Case> Cases, StmtList Otherwise,
             SourceLoc Loc)
      : Stmt(StmtKind::Switch, Loc), Cond(std::move(Cond)),
        Cases(std::move(Cases)), Otherwise(std::move(Otherwise)) {}
  ExprPtr Cond;
  std::vector<Case> Cases;
  StmtList Otherwise;
};

class WhileStmt : public Stmt {
public:
  WhileStmt(ExprPtr Cond, StmtList Body, SourceLoc Loc)
      : Stmt(StmtKind::While, Loc), Cond(std::move(Cond)),
        Body(std::move(Body)) {}
  ExprPtr Cond;
  StmtList Body;
};

class ForStmt : public Stmt {
public:
  ForStmt(std::string Var, ExprPtr Range, StmtList Body, SourceLoc Loc)
      : Stmt(StmtKind::For, Loc), Var(std::move(Var)),
        Range(std::move(Range)), Body(std::move(Body)) {}
  std::string Var;
  ExprPtr Range;
  StmtList Body;
};

class BreakStmt : public Stmt {
public:
  explicit BreakStmt(SourceLoc Loc) : Stmt(StmtKind::Break, Loc) {}
};

class ContinueStmt : public Stmt {
public:
  explicit ContinueStmt(SourceLoc Loc) : Stmt(StmtKind::Continue, Loc) {}
};

class ReturnStmt : public Stmt {
public:
  explicit ReturnStmt(SourceLoc Loc) : Stmt(StmtKind::Return, Loc) {}
};

//===----------------------------------------------------------------------===//
// Functions and programs
//===----------------------------------------------------------------------===//

/// One `function [outs] = name(ins)` definition.
struct FunctionDecl {
  std::string Name;
  std::vector<std::string> Params;
  std::vector<std::string> Outputs;
  StmtList Body;
  SourceLoc Loc;
};

/// A parsed program: one or more functions. Script-style input (statements
/// with no function header) is wrapped into a function named "main" with no
/// parameters and no outputs.
struct Program {
  std::vector<std::unique_ptr<FunctionDecl>> Functions;

  const FunctionDecl *findFunction(const std::string &Name) const {
    for (const auto &F : Functions)
      if (F->Name == Name)
        return F.get();
    return nullptr;
  }
};

} // namespace matcoal

#endif // MATCOAL_FRONTEND_AST_H
