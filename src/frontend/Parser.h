//===- Parser.h - MATLAB-subset recursive-descent parser --------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Recursive-descent parser producing the AST of AST.h. Operator
/// precedence follows MATLAB: || < && < | < & < relational < range (:)
/// < additive < multiplicative < unary < power < postfix.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_FRONTEND_PARSER_H
#define MATCOAL_FRONTEND_PARSER_H

#include "frontend/AST.h"
#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <memory>
#include <vector>

namespace matcoal {

/// Parses one source buffer into a Program. Returns nullptr (with
/// diagnostics) on a syntax error.
std::unique_ptr<Program> parseProgram(const std::string &Source,
                                      Diagnostics &Diags);

/// Implementation class; exposed for unit tests that drive sub-grammar
/// entry points directly.
class Parser {
public:
  Parser(std::vector<Token> Tokens, Diagnostics &Diags);

  std::unique_ptr<Program> parseProgram();
  ExprPtr parseExpression();

private:
  // Statement level.
  std::unique_ptr<FunctionDecl> parseFunction();
  StmtList parseStmtList(bool StopAtElse, bool StopAtCase = false);
  StmtPtr parseStmt();
  StmtPtr parseIf();
  StmtPtr parseSwitch();
  StmtPtr parseWhile();
  StmtPtr parseFor();
  StmtPtr parseAssignOrExpr();
  bool buildLValue(Expr *E, LValue &Out);

  // Expression level, lowest to highest precedence.
  ExprPtr parseExpr();
  ExprPtr parseOrOr();
  ExprPtr parseAndAnd();
  ExprPtr parseElemOr();
  ExprPtr parseElemAnd();
  ExprPtr parseComparison();
  ExprPtr parseRange();
  ExprPtr parseAdditive();
  ExprPtr parseMultiplicative();
  ExprPtr parseUnary();
  ExprPtr parsePower();
  ExprPtr parseExponentOperand();
  ExprPtr parsePostfix();
  ExprPtr parsePrimary();
  ExprPtr parseMatrixLiteral();
  std::vector<ExprPtr> parseArgList();

  // Token plumbing.
  const Token &tok(unsigned Ahead = 0) const;
  bool at(TokenKind Kind) const { return tok().Kind == Kind; }
  bool consumeIf(TokenKind Kind);
  bool expect(TokenKind Kind, const char *Context);
  void advance();
  /// Skips statement separators (newline, comma, semicolon).
  void skipSeparators();
  /// Consumes the statement terminator and reports whether the statement's
  /// result should be displayed (no trailing ';').
  bool consumeStatementEnd();
  void recoverToLineEnd();
  /// After a syntax error: skips ahead to the next statement boundary
  /// (';', newline, ',') or block keyword and clears the error flag so
  /// the rest of the buffer still gets parsed -- one bad statement then
  /// yields several diagnostics instead of aborting at the first.
  void synchronize();

  /// Hard cap on reported syntax errors; past it the parser gives up
  /// (guards against error avalanches on binary garbage).
  static constexpr unsigned MaxParseErrors = 64;

  std::vector<Token> Tokens;
  Diagnostics &Diags;
  size_t Pos = 0;
  /// Depth of subscript contexts in which 'end' and ':' are expressions.
  int IndexDepth = 0;
  bool HadError = false;
};

} // namespace matcoal

#endif // MATCOAL_FRONTEND_PARSER_H
