//===- Lexer.h - MATLAB-subset lexer ----------------------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Hand-written lexer for the MATLAB subset. Handles the language's two
/// classic lexical quirks: a quote is a transpose after a value-ending token
/// and a string otherwise, and whitespace inside [ ] separates matrix
/// elements ("[1 -2]" is two elements, "[1 - 2]" is one).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_FRONTEND_LEXER_H
#define MATCOAL_FRONTEND_LEXER_H

#include "frontend/Token.h"
#include "support/Diagnostics.h"

#include <string>
#include <vector>

namespace matcoal {

/// Converts MATLAB source text to a token stream.
class Lexer {
public:
  Lexer(std::string Source, Diagnostics &Diags);

  /// Lexes the whole buffer; the last token is always Eof. On a lexical
  /// error a diagnostic is emitted and the offending character is skipped.
  std::vector<Token> lexAll();

private:
  Token lexToken();
  Token lexNumber();
  Token lexIdentifierOrKeyword();
  Token lexString();
  Token makeToken(TokenKind Kind, unsigned Length);

  /// True if \p Kind can end a value expression, which makes a following
  /// quote a transpose rather than a string, and makes following bracket
  /// whitespace a potential element separator.
  static bool endsValue(TokenKind Kind);

  char peek(unsigned Ahead = 0) const;
  bool atEnd() const { return Pos >= Source.size(); }
  SourceLoc currentLoc() const { return SourceLoc{Line, Col}; }
  void advance(unsigned N = 1);

  std::string Source;
  Diagnostics &Diags;
  size_t Pos = 0;
  unsigned Line = 1;
  unsigned Col = 1;
  /// Nesting depth of [ ] brackets (for matrix whitespace separators).
  int BracketDepth = 0;
  /// Nesting depth of ( ) parens; whitespace never separates inside parens.
  int ParenDepth = 0;
  TokenKind PrevKind = TokenKind::Newline;
};

} // namespace matcoal

#endif // MATCOAL_FRONTEND_LEXER_H
