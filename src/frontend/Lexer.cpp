//===- Lexer.cpp ----------------------------------------------------------===//

#include "frontend/Lexer.h"

#include <cassert>
#include <cctype>
#include <cstdlib>
#include <unordered_map>

using namespace matcoal;

const char *matcoal::tokenKindName(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Eof: return "end of input";
  case TokenKind::Newline: return "newline";
  case TokenKind::MatrixSep: return "matrix separator";
  case TokenKind::Identifier: return "identifier";
  case TokenKind::Number: return "number";
  case TokenKind::String: return "string";
  case TokenKind::KwFunction: return "'function'";
  case TokenKind::KwIf: return "'if'";
  case TokenKind::KwElseif: return "'elseif'";
  case TokenKind::KwElse: return "'else'";
  case TokenKind::KwEnd: return "'end'";
  case TokenKind::KwWhile: return "'while'";
  case TokenKind::KwFor: return "'for'";
  case TokenKind::KwBreak: return "'break'";
  case TokenKind::KwContinue: return "'continue'";
  case TokenKind::KwReturn: return "'return'";
  case TokenKind::KwSwitch: return "'switch'";
  case TokenKind::KwCase: return "'case'";
  case TokenKind::KwOtherwise: return "'otherwise'";
  case TokenKind::LParen: return "'('";
  case TokenKind::RParen: return "')'";
  case TokenKind::LBracket: return "'['";
  case TokenKind::RBracket: return "']'";
  case TokenKind::Comma: return "','";
  case TokenKind::Semi: return "';'";
  case TokenKind::Colon: return "':'";
  case TokenKind::Assign: return "'='";
  case TokenKind::Plus: return "'+'";
  case TokenKind::Minus: return "'-'";
  case TokenKind::Star: return "'*'";
  case TokenKind::Slash: return "'/'";
  case TokenKind::Backslash: return "'\\'";
  case TokenKind::Caret: return "'^'";
  case TokenKind::DotStar: return "'.*'";
  case TokenKind::DotSlash: return "'./'";
  case TokenKind::DotBackslash: return "'.\\'";
  case TokenKind::DotCaret: return "'.^'";
  case TokenKind::Apos: return "transpose";
  case TokenKind::DotApos: return "'.''";
  case TokenKind::EqEq: return "'=='";
  case TokenKind::NotEq: return "'~='";
  case TokenKind::Less: return "'<'";
  case TokenKind::LessEq: return "'<='";
  case TokenKind::Greater: return "'>'";
  case TokenKind::GreaterEq: return "'>='";
  case TokenKind::Amp: return "'&'";
  case TokenKind::Pipe: return "'|'";
  case TokenKind::AmpAmp: return "'&&'";
  case TokenKind::PipePipe: return "'||'";
  case TokenKind::Tilde: return "'~'";
  }
  return "token";
}

Lexer::Lexer(std::string Source, Diagnostics &Diags)
    : Source(std::move(Source)), Diags(Diags) {}

char Lexer::peek(unsigned Ahead) const {
  if (Pos + Ahead >= Source.size())
    return '\0';
  return Source[Pos + Ahead];
}

void Lexer::advance(unsigned N) {
  for (unsigned I = 0; I < N && Pos < Source.size(); ++I) {
    if (Source[Pos] == '\n') {
      ++Line;
      Col = 1;
    } else {
      ++Col;
    }
    ++Pos;
  }
}

bool Lexer::endsValue(TokenKind Kind) {
  switch (Kind) {
  case TokenKind::Identifier:
  case TokenKind::Number:
  case TokenKind::String:
  case TokenKind::RParen:
  case TokenKind::RBracket:
  case TokenKind::Apos:
  case TokenKind::DotApos:
  case TokenKind::KwEnd: // "end" inside an index expression.
    return true;
  default:
    return false;
  }
}

Token Lexer::makeToken(TokenKind Kind, unsigned Length) {
  Token T;
  T.Kind = Kind;
  T.Loc = currentLoc();
  T.Text = Source.substr(Pos, Length);
  advance(Length);
  return T;
}

/// True if \p C can begin an expression (used for matrix separators).
static bool startsExpression(char C) {
  return std::isalpha(static_cast<unsigned char>(C)) ||
         std::isdigit(static_cast<unsigned char>(C)) || C == '(' ||
         C == '[' || C == '\'' || C == '~' || C == '_' || C == '.';
}

std::vector<Token> Lexer::lexAll() {
  std::vector<Token> Tokens;
  while (true) {
    Token T = lexToken();
    bool Done = T.is(TokenKind::Eof);
    // Collapse runs of newlines.
    if (T.is(TokenKind::Newline) && !Tokens.empty() &&
        Tokens.back().is(TokenKind::Newline)) {
      PrevKind = T.Kind;
      continue;
    }
    PrevKind = T.Kind;
    Tokens.push_back(std::move(T));
    if (Done)
      break;
  }
  return Tokens;
}

Token Lexer::lexToken() {
  // Skip horizontal whitespace, comments and continuations; detect matrix
  // element separators while doing so.
  bool SawSpace = false;
  while (!atEnd()) {
    char C = peek();
    if (C == ' ' || C == '\t' || C == '\r') {
      SawSpace = true;
      advance();
      continue;
    }
    if (C == '%') {
      while (!atEnd() && peek() != '\n')
        advance();
      continue;
    }
    if (C == '.' && peek(1) == '.' && peek(2) == '.') {
      // Line continuation: skip to and past the newline.
      while (!atEnd() && peek() != '\n')
        advance();
      if (!atEnd())
        advance();
      SawSpace = true;
      continue;
    }
    break;
  }

  if (atEnd()) {
    Token T;
    T.Kind = TokenKind::Eof;
    T.Loc = currentLoc();
    return T;
  }

  char C = peek();

  // Inside [ ] (and not inside nested parens), whitespace separates elements
  // when it sits between a value-ending token and an expression-starting
  // character. "a -b" separates; "a - b" is a binary minus.
  if (SawSpace && BracketDepth > 0 && ParenDepth == 0 && endsValue(PrevKind)) {
    bool Separates = false;
    if (startsExpression(C)) {
      // A quote after whitespace inside brackets begins a string element.
      Separates = true;
    } else if ((C == '+' || C == '-') && peek(1) != ' ' && peek(1) != '\t' &&
               peek(1) != '=' && peek(1) != '\0' && peek(1) != '\n') {
      Separates = true;
    }
    if (Separates) {
      Token T;
      T.Kind = TokenKind::MatrixSep;
      T.Loc = currentLoc();
      return T;
    }
  }

  if (C == '\n') {
    // Inside brackets a newline separates matrix rows; the parser treats a
    // Semi the same way, so emit one.
    if (BracketDepth > 0 && ParenDepth == 0)
      return makeToken(TokenKind::Semi, 1);
    return makeToken(TokenKind::Newline, 1);
  }

  if (std::isdigit(static_cast<unsigned char>(C)) ||
      (C == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))))
    return lexNumber();

  if (std::isalpha(static_cast<unsigned char>(C)) || C == '_')
    return lexIdentifierOrKeyword();

  switch (C) {
  case '\'':
    if (endsValue(PrevKind))
      return makeToken(TokenKind::Apos, 1);
    return lexString();
  case '(': {
    ++ParenDepth;
    return makeToken(TokenKind::LParen, 1);
  }
  case ')': {
    if (ParenDepth > 0)
      --ParenDepth;
    return makeToken(TokenKind::RParen, 1);
  }
  case '[': {
    ++BracketDepth;
    return makeToken(TokenKind::LBracket, 1);
  }
  case ']': {
    if (BracketDepth > 0)
      --BracketDepth;
    return makeToken(TokenKind::RBracket, 1);
  }
  case ',':
    return makeToken(TokenKind::Comma, 1);
  case ';':
    return makeToken(TokenKind::Semi, 1);
  case ':':
    return makeToken(TokenKind::Colon, 1);
  case '+':
    return makeToken(TokenKind::Plus, 1);
  case '-':
    return makeToken(TokenKind::Minus, 1);
  case '*':
    return makeToken(TokenKind::Star, 1);
  case '/':
    return makeToken(TokenKind::Slash, 1);
  case '\\':
    return makeToken(TokenKind::Backslash, 1);
  case '^':
    return makeToken(TokenKind::Caret, 1);
  case '=':
    if (peek(1) == '=')
      return makeToken(TokenKind::EqEq, 2);
    return makeToken(TokenKind::Assign, 1);
  case '~':
    if (peek(1) == '=')
      return makeToken(TokenKind::NotEq, 2);
    return makeToken(TokenKind::Tilde, 1);
  case '<':
    if (peek(1) == '=')
      return makeToken(TokenKind::LessEq, 2);
    return makeToken(TokenKind::Less, 1);
  case '>':
    if (peek(1) == '=')
      return makeToken(TokenKind::GreaterEq, 2);
    return makeToken(TokenKind::Greater, 1);
  case '&':
    if (peek(1) == '&')
      return makeToken(TokenKind::AmpAmp, 2);
    return makeToken(TokenKind::Amp, 1);
  case '|':
    if (peek(1) == '|')
      return makeToken(TokenKind::PipePipe, 2);
    return makeToken(TokenKind::Pipe, 1);
  case '.':
    if (peek(1) == '*')
      return makeToken(TokenKind::DotStar, 2);
    if (peek(1) == '/')
      return makeToken(TokenKind::DotSlash, 2);
    if (peek(1) == '\\')
      return makeToken(TokenKind::DotBackslash, 2);
    if (peek(1) == '^')
      return makeToken(TokenKind::DotCaret, 2);
    if (peek(1) == '\'')
      return makeToken(TokenKind::DotApos, 2);
    break;
  default:
    break;
  }

  Diags.error(currentLoc(),
              std::string("unexpected character '") + C + "'");
  advance();
  return lexToken();
}

Token Lexer::lexNumber() {
  Token T;
  T.Kind = TokenKind::Number;
  T.Loc = currentLoc();
  size_t Start = Pos;
  while (std::isdigit(static_cast<unsigned char>(peek())))
    advance();
  if (peek() == '.' && std::isdigit(static_cast<unsigned char>(peek(1)))) {
    advance();
    while (std::isdigit(static_cast<unsigned char>(peek())))
      advance();
  } else if (peek() == '.' && peek(1) != '*' && peek(1) != '/' &&
             peek(1) != '\\' && peek(1) != '^' && peek(1) != '\'' &&
             peek(1) != '.') {
    // Trailing dot as in "1." (but not "1.*x" or "1..." continuation).
    advance();
  }
  if (peek() == 'e' || peek() == 'E') {
    unsigned Save = 1;
    if (peek(1) == '+' || peek(1) == '-')
      Save = 2;
    if (std::isdigit(static_cast<unsigned char>(peek(Save)))) {
      advance(Save);
      while (std::isdigit(static_cast<unsigned char>(peek())))
        advance();
    }
  }
  T.Text = Source.substr(Start, Pos - Start);
  T.NumValue = std::strtod(T.Text.c_str(), nullptr);
  if (peek() == 'i' || peek() == 'j') {
    // Imaginary suffix, but only when not beginning an identifier ("4if"
    // cannot occur; "2in" would be a lex error in MATLAB as well).
    if (!std::isalnum(static_cast<unsigned char>(peek(1))) &&
        peek(1) != '_') {
      T.IsImaginary = true;
      advance();
    }
  }
  return T;
}

Token Lexer::lexIdentifierOrKeyword() {
  Token T;
  T.Loc = currentLoc();
  size_t Start = Pos;
  while (std::isalnum(static_cast<unsigned char>(peek())) || peek() == '_')
    advance();
  T.Text = Source.substr(Start, Pos - Start);

  static const std::unordered_map<std::string, TokenKind> Keywords = {
      {"function", TokenKind::KwFunction}, {"if", TokenKind::KwIf},
      {"elseif", TokenKind::KwElseif},     {"else", TokenKind::KwElse},
      {"end", TokenKind::KwEnd},           {"while", TokenKind::KwWhile},
      {"for", TokenKind::KwFor},           {"break", TokenKind::KwBreak},
      {"continue", TokenKind::KwContinue}, {"return", TokenKind::KwReturn},
      {"switch", TokenKind::KwSwitch},     {"case", TokenKind::KwCase},
      {"otherwise", TokenKind::KwOtherwise},
  };
  auto It = Keywords.find(T.Text);
  T.Kind = It == Keywords.end() ? TokenKind::Identifier : It->second;
  return T;
}

Token Lexer::lexString() {
  Token T;
  T.Kind = TokenKind::String;
  T.Loc = currentLoc();
  assert(peek() == '\'' && "string must start with a quote");
  advance();
  std::string Value;
  while (true) {
    if (atEnd() || peek() == '\n') {
      Diags.error(T.Loc, "unterminated string literal");
      break;
    }
    char C = peek();
    if (C == '\'') {
      if (peek(1) == '\'') { // Escaped quote.
        Value += '\'';
        advance(2);
        continue;
      }
      advance();
      break;
    }
    Value += C;
    advance();
  }
  T.Text = std::move(Value);
  return T;
}
