//===- Token.h - MATLAB-subset token definitions ----------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Token kinds produced by the Lexer and consumed by the Parser.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_FRONTEND_TOKEN_H
#define MATCOAL_FRONTEND_TOKEN_H

#include "support/Diagnostics.h"

#include <string>

namespace matcoal {

enum class TokenKind {
  Eof,
  Newline,   ///< End of a physical statement line.
  MatrixSep, ///< Whitespace acting as an element separator inside [ ].

  Identifier,
  Number, ///< Numeric literal, possibly imaginary (suffix i or j).
  String, ///< Single-quoted character literal.

  // Keywords.
  KwFunction,
  KwIf,
  KwElseif,
  KwElse,
  KwEnd,
  KwWhile,
  KwFor,
  KwBreak,
  KwContinue,
  KwReturn,
  KwSwitch,
  KwCase,
  KwOtherwise,

  // Punctuation and operators.
  LParen,
  RParen,
  LBracket,
  RBracket,
  Comma,
  Semi,
  Colon,
  Assign,    ///< =
  Plus,
  Minus,
  Star,      ///< * (matrix multiply)
  Slash,     ///< / (matrix right divide)
  Backslash, ///< \ (matrix left divide)
  Caret,     ///< ^ (matrix power)
  DotStar,   ///< .*
  DotSlash,  ///< ./
  DotBackslash, ///< .\.
  DotCaret,  ///< .^
  Apos,      ///< ' used as (conjugate) transpose
  DotApos,   ///< .' non-conjugate transpose
  EqEq,
  NotEq, ///< ~=
  Less,
  LessEq,
  Greater,
  GreaterEq,
  Amp,    ///< &
  Pipe,   ///< |
  AmpAmp, ///< &&
  PipePipe, ///< ||
  Tilde,  ///< ~
};

/// Returns a human-readable spelling for diagnostics ("'('", "number", ...).
const char *tokenKindName(TokenKind Kind);

/// One lexed token. \c Text holds the identifier/string payload; \c NumValue
/// the numeric payload for Number tokens.
struct Token {
  TokenKind Kind = TokenKind::Eof;
  SourceLoc Loc;
  std::string Text;
  double NumValue = 0.0;
  bool IsImaginary = false; ///< Number carried an i/j suffix.

  bool is(TokenKind K) const { return Kind == K; }
};

} // namespace matcoal

#endif // MATCOAL_FRONTEND_TOKEN_H
