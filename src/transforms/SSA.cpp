//===- SSA.cpp ------------------------------------------------------------===//

#include "transforms/SSA.h"

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"

#include <algorithm>
#include <cassert>
#include <map>

using namespace matcoal;

void matcoal::removeUnreachableBlocks(Function &F) {
  std::vector<BlockId> RPO = F.reversePostOrder();
  std::vector<char> Reachable(F.Blocks.size(), 0);
  for (BlockId B : RPO)
    Reachable[B] = 1;

  // Drop predecessor entries (and matching phi operands) that come from
  // unreachable blocks, preserving the order of the survivors.
  for (auto &BB : F.Blocks) {
    if (!Reachable[BB->Id])
      continue;
    for (size_t I = BB->Preds.size(); I-- > 0;) {
      if (Reachable[BB->Preds[I]])
        continue;
      BB->Preds.erase(BB->Preds.begin() + I);
      for (Instr &In : BB->Instrs) {
        if (In.Op != Opcode::Phi)
          break;
        if (I < In.Operands.size())
          In.Operands.erase(In.Operands.begin() + I);
      }
    }
  }

  // Compact the block vector, keeping the original relative order.
  std::vector<BlockId> Remap(F.Blocks.size(), NoBlock);
  std::vector<std::unique_ptr<BasicBlock>> NewBlocks;
  for (auto &BB : F.Blocks) {
    if (!Reachable[BB->Id])
      continue;
    Remap[BB->Id] = static_cast<BlockId>(NewBlocks.size());
    NewBlocks.push_back(std::move(BB));
  }
  F.Blocks = std::move(NewBlocks);
  for (size_t I = 0; I < F.Blocks.size(); ++I)
    F.Blocks[I]->Id = static_cast<BlockId>(I);
  for (auto &BB : F.Blocks) {
    for (BlockId &P : BB->Preds)
      P = Remap[P];
    if (!BB->Instrs.empty()) {
      Instr &T = BB->Instrs.back();
      if (T.Op == Opcode::Jmp || T.Op == Opcode::Br) {
        T.Target1 = Remap[T.Target1];
        if (T.Op == Opcode::Br)
          T.Target2 = Remap[T.Target2];
      }
    }
  }
}

namespace {

/// Forward must-analysis: variables definitely assigned on every path.
/// Returns the set of variables that may be read before assignment.
std::vector<VarId> findMaybeUndefinedUses(const Function &F) {
  size_t NB = F.Blocks.size();
  unsigned NV = F.numVars();
  BitVector Full(NV);
  for (unsigned I = 0; I < NV; ++I)
    Full.set(I);

  std::vector<BitVector> In(NB, Full), Out(NB, Full);
  BitVector EntryIn(NV);
  for (VarId P : F.Params)
    EntryIn.set(P);
  In[0] = EntryIn;

  std::vector<BlockId> RPO = F.reversePostOrder();
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : RPO) {
      BitVector NewIn = B == 0 ? EntryIn : Full;
      if (B != 0) {
        bool Any = false;
        for (BlockId P : F.block(B)->Preds) {
          NewIn.intersectWith(Out[P]);
          Any = true;
        }
        if (!Any)
          NewIn = BitVector(NV);
      }
      BitVector NewOut = NewIn;
      for (const Instr &I : F.block(B)->Instrs)
        for (VarId R : I.Results)
          NewOut.set(R);
      if (!(NewIn == In[B]) || !(NewOut == Out[B])) {
        In[B] = std::move(NewIn);
        Out[B] = std::move(NewOut);
        Changed = true;
      }
    }
  }

  BitVector Maybe(NV);
  for (BlockId B : RPO) {
    BitVector Defined = In[B];
    for (const Instr &I : F.block(B)->Instrs) {
      for (VarId U : I.Operands)
        if (!Defined.test(U))
          Maybe.set(U);
      for (VarId R : I.Results)
        Defined.set(R);
    }
  }
  std::vector<VarId> Result;
  Maybe.forEach([&](unsigned V) { Result.push_back(static_cast<VarId>(V)); });
  return Result;
}

/// The SSA renaming pass (Cytron et al.).
class Renamer {
public:
  Renamer(Function &F, const DominatorTree &DT)
      : F(F), DT(DT), Stacks(F.numVars()), Counter(F.numVars(), 0) {}

  void run() {
    // Parameters receive version 0 at entry.
    for (VarId &P : F.Params) {
      VarId V = newVersion(P);
      P = V;
    }
    renameBlock(0);
  }

private:
  VarId newVersion(VarId Orig) {
    VarId V = F.makeVersion(Orig, Counter[Orig]++);
    Stacks[Orig].push_back(V);
    // makeVersion may grow Vars; Stacks/Counter are indexed by pre-SSA ids
    // only, which are all < the initial size, so no resize is needed.
    return V;
  }

  VarId top(VarId Orig) const {
    assert(!Stacks[Orig].empty() && "use of undefined variable in renaming");
    return Stacks[Orig].back();
  }

  void renameBlock(BlockId B) {
    std::vector<VarId> Pushed;
    BasicBlock *BB = F.block(B);
    for (Instr &I : BB->Instrs) {
      if (I.Op != Opcode::Phi) {
        for (VarId &U : I.Operands)
          U = top(U);
      }
      for (VarId &R : I.Results) {
        VarId Orig = R;
        R = newVersion(Orig);
        Pushed.push_back(Orig);
      }
    }
    for (BlockId S : BB->successors()) {
      BasicBlock *SB = F.block(S);
      size_t PredIdx = 0;
      // A block can appear several times in a successor's pred list (e.g.
      // br with identical targets); fill each matching slot.
      for (size_t PI = 0; PI < SB->Preds.size(); ++PI) {
        if (SB->Preds[PI] != B)
          continue;
        for (Instr &I : SB->Instrs) {
          if (I.Op != Opcode::Phi)
            break;
          assert(I.PhiOrig != NoVar);
          if (!Stacks[I.PhiOrig].empty())
            I.Operands[PI] = top(I.PhiOrig);
        }
        (void)PredIdx;
      }
    }
    for (BlockId C : DT.children(B))
      renameBlock(C);
    for (VarId Orig : Pushed)
      Stacks[Orig].pop_back();
  }

  Function &F;
  const DominatorTree &DT;
  std::vector<std::vector<VarId>> Stacks;
  std::vector<int> Counter;
};

} // namespace

bool matcoal::buildSSA(Function &F, Diagnostics &Diags) {
  removeUnreachableBlocks(F);
  F.recomputePreds();

  // Initialize possibly-undefined variables with an empty array at entry
  // (MATLAB grows subsasgn bases from nothing; other reads will fault at
  // run time, matching the interpreter).
  std::vector<VarId> Maybe = findMaybeUndefinedUses(F);
  if (!Maybe.empty()) {
    BasicBlock *Entry = F.entry();
    for (VarId V : Maybe) {
      Instr Init;
      Init.Op = Opcode::VertCat;
      Init.Results = {V};
      Init.StrVal = "__undef_init"; // Marker consumed by the lint pass.
      Entry->Instrs.insert(Entry->Instrs.begin(), Init);
      Diags.note(SourceLoc{},
                 "variable '" + F.var(V).Name + "' in " + F.Name +
                     " may be used before assignment; initialized empty");
    }
  }

  DominatorTree DT(F);
  LivenessInfo Live = computeLiveness(F);

  // Collect definition sites per variable.
  unsigned NV = F.numVars();
  std::vector<std::vector<BlockId>> DefBlocks(NV);
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs)
      for (VarId R : I.Results)
        DefBlocks[R].push_back(BB->Id);
  for (VarId P : F.Params)
    DefBlocks[P].push_back(0);

  // Pruned phi insertion: place a phi for v in DF+ of its defs only where
  // v is live-in.
  for (unsigned V = 0; V < NV; ++V) {
    if (DefBlocks[V].size() < 1)
      continue;
    std::vector<BlockId> Work = DefBlocks[V];
    std::vector<char> HasPhi(F.Blocks.size(), 0);
    std::vector<char> InWork(F.Blocks.size(), 0);
    for (BlockId B : Work)
      InWork[B] = 1;
    while (!Work.empty()) {
      BlockId B = Work.back();
      Work.pop_back();
      for (BlockId D : DT.frontier(B)) {
        if (HasPhi[D] || !Live.LiveIn[D].test(V))
          continue;
        HasPhi[D] = 1;
        BasicBlock *DB = F.block(D);
        Instr Phi;
        Phi.Op = Opcode::Phi;
        Phi.Results = {static_cast<VarId>(V)};
        Phi.Operands.assign(DB->Preds.size(), static_cast<VarId>(V));
        Phi.PhiOrig = static_cast<VarId>(V);
        DB->Instrs.insert(DB->Instrs.begin(), std::move(Phi));
        if (!InWork[D]) {
          InWork[D] = 1;
          Work.push_back(D);
        }
      }
    }
  }

  Renamer R(F, DT);
  R.run();
  return verifyFunction(F, Diags);
}

//===----------------------------------------------------------------------===//
// SSA inversion
//===----------------------------------------------------------------------===//

namespace {

/// Emits the copies for one predecessor edge in an order that respects the
/// parallel-copy semantics of phis (a destination that is also a pending
/// source is deferred; cycles are broken with a temporary).
void sequenceParallelCopies(Function &F, BasicBlock *Pred,
                            std::vector<std::pair<VarId, VarId>> Copies) {
  // Drop no-op copies.
  Copies.erase(std::remove_if(Copies.begin(), Copies.end(),
                              [](auto &C) { return C.first == C.second; }),
               Copies.end());

  auto EmitCopy = [&](VarId Dst, VarId Src) {
    Instr C;
    C.Op = Opcode::Copy;
    C.Results = {Dst};
    C.Operands = {Src};
    assert(Pred->hasTerminator());
    Pred->Instrs.insert(Pred->Instrs.end() - 1, std::move(C));
  };

  while (!Copies.empty()) {
    bool Progress = false;
    for (size_t I = 0; I < Copies.size(); ++I) {
      VarId Dst = Copies[I].first;
      bool DstIsPendingSource = false;
      for (size_t J = 0; J < Copies.size(); ++J)
        if (J != I && Copies[J].second == Dst)
          DstIsPendingSource = true;
      if (DstIsPendingSource)
        continue;
      EmitCopy(Dst, Copies[I].second);
      Copies.erase(Copies.begin() + I);
      Progress = true;
      break;
    }
    if (Progress)
      continue;
    // Cycle: save one source in a temp and retarget its readers.
    VarId Saved = Copies.front().second;
    VarId Temp = F.makeTemp("swap");
    EmitCopy(Temp, Saved);
    for (auto &C : Copies)
      if (C.second == Saved)
        C.second = Temp;
  }
}

} // namespace

void matcoal::invertSSA(Function &F) {
  // Split critical edges into blocks that contain phis.
  size_t OrigCount = F.Blocks.size();
  for (size_t BI = 0; BI < OrigCount; ++BI) {
    BasicBlock *BB = F.block(static_cast<BlockId>(BI));
    if (BB->Instrs.empty() || BB->Instrs.front().Op != Opcode::Phi)
      continue;
    if (BB->Preds.size() < 2)
      continue;
    for (size_t PI = 0; PI < BB->Preds.size(); ++PI) {
      BlockId P = BB->Preds[PI];
      BasicBlock *PB = F.block(P);
      if (PB->successors().size() < 2)
        continue;
      // Split edge P -> BB.
      BasicBlock *Mid = F.addBlock();
      Instr Jmp;
      Jmp.Op = Opcode::Jmp;
      Jmp.Target1 = BB->Id;
      Mid->Instrs.push_back(Jmp);
      Mid->Preds = {P};
      // Retarget exactly one edge from P to Mid (the PI-th pred slot).
      Instr &T = PB->Instrs.back();
      size_t Seen = 0;
      bool Done = false;
      auto Retarget = [&](BlockId &Tgt) {
        if (Done || Tgt != BB->Id)
          return;
        // Count which occurrence of BB in P's successor list corresponds
        // to this pred slot.
        size_t SlotOrdinal = 0;
        for (size_t K = 0; K < PI; ++K)
          if (BB->Preds[K] == P)
            ++SlotOrdinal;
        if (Seen == SlotOrdinal) {
          Tgt = Mid->Id;
          Done = true;
        }
        ++Seen;
      };
      Retarget(T.Target1);
      if (T.Op == Opcode::Br)
        Retarget(T.Target2);
      BB->Preds[PI] = Mid->Id;
    }
  }

  // Gather and remove phis; insert sequenced copies at predecessors.
  for (auto &BB : F.Blocks) {
    if (BB->Instrs.empty() || BB->Instrs.front().Op != Opcode::Phi)
      continue;
    // Per predecessor: list of (dst, src).
    std::map<BlockId, std::vector<std::pair<VarId, VarId>>> EdgeCopies;
    size_t NumPhis = 0;
    for (const Instr &I : BB->Instrs) {
      if (I.Op != Opcode::Phi)
        break;
      ++NumPhis;
      for (size_t PI = 0; PI < I.Operands.size(); ++PI)
        EdgeCopies[BB->Preds[PI]].emplace_back(I.result(), I.Operands[PI]);
    }
    BB->Instrs.erase(BB->Instrs.begin(), BB->Instrs.begin() + NumPhis);
    for (auto &[Pred, Copies] : EdgeCopies)
      sequenceParallelCopies(F, F.block(Pred), std::move(Copies));
  }
}
