//===- Lowering.h - AST to SO-form IR lowering ------------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Lowers the parsed AST into the SO-form CFG IR. Every MATLAB assignment
/// is decomposed into single-operator statements via temporaries (paper
/// section 2.3); name(args) is resolved to Subsref / Call / Builtin using
/// the function's assigned-name set; 'end' subscripts become size()
/// queries; short-circuit operators and loops become control flow.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_TRANSFORMS_LOWERING_H
#define MATCOAL_TRANSFORMS_LOWERING_H

#include "frontend/AST.h"
#include "ir/IR.h"
#include "support/Diagnostics.h"

#include <memory>

namespace matcoal {

/// Lowers every function of \p Prog. Returns nullptr (with diagnostics) on
/// a lowering error.
std::unique_ptr<Module> lowerProgram(const Program &Prog, Diagnostics &Diags);

} // namespace matcoal

#endif // MATCOAL_TRANSFORMS_LOWERING_H
