//===- Passes.h - SSA cleanup passes ----------------------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The cleanup passes the paper's translator runs before GCTD (section
/// 2.2): copy propagation, constant folding/propagation (with branch
/// folding), dominator-scoped common-subexpression elimination, and
/// dead-code elimination. All passes require SSA form.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_TRANSFORMS_PASSES_H
#define MATCOAL_TRANSFORMS_PASSES_H

#include "ir/IR.h"

namespace matcoal {

/// Rewrites every use of `x <- copy y` to use y directly (transitively);
/// single-operand and self-referential phis become copies first. The copy
/// definitions themselves are left for DCE. Returns true if it changed
/// anything.
bool copyPropagation(Function &F);

/// Sparse conditional-constant style folding: scalar arithmetic on
/// constants folds to ConstNum; branches on constants fold to jumps
/// (removing the dead edge from the CFG and successor phis). Returns true
/// on change.
bool constantFold(Function &F);

/// Dominator-scoped value numbering over pure instructions. Returns true
/// on change.
bool commonSubexpressionElimination(Function &F);

/// Removes pure instructions whose results are never used. Returns true on
/// change.
bool deadCodeElimination(Function &F);

/// True if calling the named builtin twice with the same arguments is
/// guaranteed to produce the same value with no side effects (rand,
/// disp... are not pure).
bool isPureBuiltin(const std::string &Name);

/// Runs the full pipeline to a fixed point:
/// copyprop -> constfold -> CSE -> DCE -> unreachable-block removal.
void runCleanupPipeline(Function &F);

} // namespace matcoal

#endif // MATCOAL_TRANSFORMS_PASSES_H
