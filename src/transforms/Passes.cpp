//===- Passes.cpp ---------------------------------------------------------===//

#include "transforms/Passes.h"

#include "analysis/Dominators.h"
#include "transforms/SSA.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>
#include <map>
#include <set>
#include <sstream>

using namespace matcoal;

bool matcoal::isPureBuiltin(const std::string &Name) {
  // Only names known to be effect-free may be CSE'd or dead-code
  // eliminated; anything unknown is conservatively impure (it may print,
  // abort, or consume PRNG state -- and an undefined function must still
  // fault at run time rather than vanish).
  static const std::set<std::string> Pure = {
      "zeros",  "ones",   "eye",    "size",    "numel",  "length",
      "isempty", "abs",   "sqrt",   "exp",     "log",    "log2",
      "log10",  "sin",    "cos",    "tan",     "asin",   "acos",
      "atan",   "atan2",  "sinh",   "cosh",    "tanh",   "floor",
      "ceil",   "round",  "fix",    "sign",    "mod",    "rem",
      "hypot",  "min",    "max",    "sum",     "prod",   "mean",
      "norm",   "dot",    "real",   "imag",    "conj",   "angle",
      "linspace", "repmat", "double", "logical", "sprintf", "num2str",
      "reshape", "pi",    "eps",    "Inf",     "inf",    "NaN",
      "nan",    "true",   "false",  "i",       "j",      "__forcond",
      "__switcheq", "diag", "trace", "fliplr", "flipud", "cumsum",
      "strcmp",
  };
  return Pure.count(Name) != 0;
}

//===----------------------------------------------------------------------===//
// Copy propagation
//===----------------------------------------------------------------------===//

namespace {

VarId resolve(std::vector<VarId> &Repl, VarId V) {
  while (Repl[V] != NoVar && Repl[V] != V)
    V = Repl[V];
  return V;
}

} // namespace

bool matcoal::copyPropagation(Function &F) {
  bool Changed = false;

  // Degenerate phis first: phi(x) and phi(x, x, ..., self) are copies.
  for (auto &BB : F.Blocks) {
    for (Instr &I : BB->Instrs) {
      if (I.Op != Opcode::Phi)
        break;
      VarId Uniform = NoVar;
      bool IsUniform = true;
      for (VarId Op : I.Operands) {
        if (Op == I.result())
          continue; // Self-reference doesn't break uniformity.
        if (Uniform == NoVar)
          Uniform = Op;
        else if (Uniform != Op)
          IsUniform = false;
      }
      if (IsUniform && Uniform != NoVar) {
        I.Op = Opcode::Copy;
        I.Operands = {Uniform};
        I.PhiOrig = NoVar;
        Changed = true;
      }
    }
  }

  std::vector<VarId> Repl(F.numVars(), NoVar);
  bool AnyCopy = false;
  for (auto &BB : F.Blocks)
    for (Instr &I : BB->Instrs)
      if (I.Op == Opcode::Copy && I.Results.size() == 1) {
        Repl[I.result()] = I.Operands[0];
        AnyCopy = true;
      }
  if (!AnyCopy)
    return Changed;

  for (auto &BB : F.Blocks) {
    for (Instr &I : BB->Instrs) {
      for (VarId &U : I.Operands) {
        VarId R = resolve(Repl, U);
        if (R != U) {
          U = R;
          Changed = true;
        }
      }
    }
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Constant folding
//===----------------------------------------------------------------------===//

namespace {

using Complex = std::complex<double>;

bool isScalarTruth(Complex C) { return C.real() != 0.0 || C.imag() != 0.0; }

/// Attempts to fold one instruction given known constant operands.
/// Returns true and sets \p Out on success.
bool foldInstr(const Instr &I, const std::vector<Complex> &Vals,
               const std::vector<char> &Known, Complex &Out) {
  auto AllKnown = [&]() {
    if (I.Operands.empty())
      return false;
    for (VarId V : I.Operands)
      if (!Known[V])
        return false;
    return true;
  };

  switch (I.Op) {
  case Opcode::Neg:
    if (!AllKnown())
      return false;
    Out = -Vals[I.Operands[0]];
    return true;
  case Opcode::UPlus:
    if (!AllKnown())
      return false;
    Out = Vals[I.Operands[0]];
    return true;
  case Opcode::Not:
    if (!AllKnown())
      return false;
    Out = isScalarTruth(Vals[I.Operands[0]]) ? 0.0 : 1.0;
    return true;
  case Opcode::Transpose:
  case Opcode::CTranspose: {
    if (!AllKnown())
      return false;
    Complex V = Vals[I.Operands[0]];
    Out = I.Op == Opcode::CTranspose ? std::conj(V) : V;
    return true;
  }
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::MatMul:
  case Opcode::ElemMul:
  case Opcode::MatRDiv:
  case Opcode::ElemRDiv:
  case Opcode::MatLDiv:
  case Opcode::ElemLDiv:
  case Opcode::MatPow:
  case Opcode::ElemPow:
  case Opcode::Lt:
  case Opcode::Le:
  case Opcode::Gt:
  case Opcode::Ge:
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::And:
  case Opcode::Or: {
    if (I.Operands.size() != 2 || !AllKnown())
      return false;
    Complex A = Vals[I.Operands[0]];
    Complex B = Vals[I.Operands[1]];
    switch (I.Op) {
    case Opcode::Add: Out = A + B; return true;
    case Opcode::Sub: Out = A - B; return true;
    case Opcode::MatMul:
    case Opcode::ElemMul: Out = A * B; return true;
    case Opcode::MatRDiv:
    case Opcode::ElemRDiv: Out = A / B; return true;
    case Opcode::MatLDiv:
    case Opcode::ElemLDiv: Out = B / A; return true;
    case Opcode::MatPow:
    case Opcode::ElemPow:
      if (A.imag() == 0.0 && B.imag() == 0.0 &&
          (A.real() >= 0.0 || B.real() == std::floor(B.real()))) {
        Out = std::pow(A.real(), B.real());
      } else {
        Out = std::pow(A, B);
      }
      return true;
    // MATLAB relational operators compare real parts.
    case Opcode::Lt: Out = A.real() < B.real() ? 1.0 : 0.0; return true;
    case Opcode::Le: Out = A.real() <= B.real() ? 1.0 : 0.0; return true;
    case Opcode::Gt: Out = A.real() > B.real() ? 1.0 : 0.0; return true;
    case Opcode::Ge: Out = A.real() >= B.real() ? 1.0 : 0.0; return true;
    case Opcode::Eq: Out = A == B ? 1.0 : 0.0; return true;
    case Opcode::Ne: Out = A != B ? 1.0 : 0.0; return true;
    case Opcode::And:
      Out = (isScalarTruth(A) && isScalarTruth(B)) ? 1.0 : 0.0;
      return true;
    case Opcode::Or:
      Out = (isScalarTruth(A) || isScalarTruth(B)) ? 1.0 : 0.0;
      return true;
    default:
      return false;
    }
  }
  case Opcode::Builtin: {
    if (!AllKnown())
      return false;
    if (I.Operands.size() == 1) {
      Complex A = Vals[I.Operands[0]];
      if (I.StrVal == "abs") {
        Out = std::abs(A);
        return true;
      }
      if (A.imag() != 0.0)
        return false;
      double X = A.real();
      if (I.StrVal == "floor") { Out = std::floor(X); return true; }
      if (I.StrVal == "ceil") { Out = std::ceil(X); return true; }
      if (I.StrVal == "round") { Out = std::round(X); return true; }
      if (I.StrVal == "fix") { Out = std::trunc(X); return true; }
      if (I.StrVal == "sqrt") {
        Out = std::sqrt(Complex(X, 0.0));
        return true;
      }
    }
    if (I.Operands.size() == 2 &&
        (I.StrVal == "min" || I.StrVal == "max" || I.StrVal == "mod" ||
         I.StrVal == "rem")) {
      Complex A = Vals[I.Operands[0]];
      Complex B = Vals[I.Operands[1]];
      if (A.imag() != 0.0 || B.imag() != 0.0)
        return false;
      double X = A.real(), Y = B.real();
      if (I.StrVal == "min") { Out = std::min(X, Y); return true; }
      if (I.StrVal == "max") { Out = std::max(X, Y); return true; }
      if (I.StrVal == "rem") {
        Out = Y == 0.0 ? X : std::fmod(X, Y);
        return true;
      }
      // mod(x, y) = x - floor(x/y)*y, with mod(x, 0) = x.
      Out = Y == 0.0 ? X : X - std::floor(X / Y) * Y;
      return true;
    }
    if (I.Operands.empty()) {
      if (I.StrVal == "pi") { Out = M_PI; return true; }
      if (I.StrVal == "eps") { Out = 2.220446049250313e-16; return true; }
      if (I.StrVal == "true") { Out = 1.0; return true; }
      if (I.StrVal == "false") { Out = 0.0; return true; }
      if (I.StrVal == "i" || I.StrVal == "j") {
        Out = Complex(0.0, 1.0);
        return true;
      }
      if (I.StrVal == "Inf" || I.StrVal == "inf") {
        Out = std::numeric_limits<double>::infinity();
        return true;
      }
      if (I.StrVal == "NaN" || I.StrVal == "nan") {
        Out = std::numeric_limits<double>::quiet_NaN();
        return true;
      }
    }
    return false;
  }
  default:
    return false;
  }
}

/// Removes the CFG edge From -> (the Ordinal-th successor edge landing in
/// To), fixing To's pred list and phi operands.
void removeEdge(Function &F, BlockId From, BlockId To, size_t EdgeOrdinal) {
  BasicBlock *TB = F.block(To);
  size_t Seen = 0;
  for (size_t PI = 0; PI < TB->Preds.size(); ++PI) {
    if (TB->Preds[PI] != From)
      continue;
    if (Seen != EdgeOrdinal) {
      ++Seen;
      continue;
    }
    TB->Preds.erase(TB->Preds.begin() + PI);
    for (Instr &I : TB->Instrs) {
      if (I.Op != Opcode::Phi)
        break;
      if (PI < I.Operands.size())
        I.Operands.erase(I.Operands.begin() + PI);
    }
    return;
  }
}

} // namespace

bool matcoal::constantFold(Function &F) {
  bool Changed = false;
  std::vector<Complex> Vals(F.numVars(), Complex(0, 0));
  std::vector<char> Known(F.numVars(), 0);

  bool RoundChanged = true;
  while (RoundChanged) {
    RoundChanged = false;
    for (BlockId B : F.reversePostOrder()) {
      for (Instr &I : F.block(B)->Instrs) {
        if (I.Op == Opcode::ConstNum && I.Results.size() == 1) {
          if (!Known[I.result()]) {
            Known[I.result()] = 1;
            Vals[I.result()] = Complex(I.NumRe, I.NumIm);
            RoundChanged = true;
          }
          continue;
        }
        if (I.Results.size() != 1 || Known[I.result()])
          continue;
        if (I.Op == Opcode::Builtin && !isPureBuiltin(I.StrVal))
          continue;
        Complex Out;
        if (foldInstr(I, Vals, Known, Out)) {
          I.Op = Opcode::ConstNum;
          I.Operands.clear();
          I.NumRe = Out.real();
          I.NumIm = Out.imag();
          I.StrVal.clear();
          Known[I.result()] = 1;
          Vals[I.result()] = Out;
          RoundChanged = true;
          Changed = true;
        }
      }
    }
  }

  // Fold branches on constants.
  for (auto &BB : F.Blocks) {
    if (BB->Instrs.empty())
      continue;
    Instr &T = BB->Instrs.back();
    if (T.Op != Opcode::Br || !Known[T.Operands[0]])
      continue;
    bool Truth = isScalarTruth(Vals[T.Operands[0]]);
    BlockId Taken = Truth ? T.Target1 : T.Target2;
    BlockId NotTaken = Truth ? T.Target2 : T.Target1;
    // The ordinal of the removed edge among From->NotTaken edges: Target1
    // precedes Target2 in the successor (and so pred) ordering.
    size_t Ordinal = 0;
    if (!Truth && T.Target1 == T.Target2)
      Ordinal = 1;
    T.Op = Opcode::Jmp;
    T.Operands.clear();
    T.Target1 = Taken;
    T.Target2 = NoBlock;
    if (NotTaken != Taken || Ordinal == 1)
      removeEdge(F, BB->Id, NotTaken, Ordinal);
    else
      removeEdge(F, BB->Id, NotTaken, 1); // Both targets equal: drop dup.
    Changed = true;
  }
  return Changed;
}

//===----------------------------------------------------------------------===//
// Common subexpression elimination
//===----------------------------------------------------------------------===//

namespace {

std::string cseKey(const Instr &I) {
  std::ostringstream OS;
  OS << static_cast<int>(I.Op) << '|' << I.StrVal << '|' << I.NumRe << '|'
     << I.NumIm << '|';
  for (VarId V : I.Operands)
    OS << V << ',';
  return OS.str();
}

bool isCSECandidate(const Instr &I) {
  if (I.Results.size() != 1)
    return false;
  if (I.Op == Opcode::Phi || I.Op == Opcode::Copy)
    return false;
  if (!isPure(I.Op))
    return I.Op == Opcode::Builtin && isPureBuiltin(I.StrVal);
  return true;
}

void cseWalk(Function &F, const DominatorTree &DT, BlockId B,
             std::map<std::string, VarId> &Table,
             std::vector<VarId> &Repl, bool &Changed) {
  std::vector<std::string> Added;
  for (Instr &I : F.block(B)->Instrs) {
    // Rewrite operands through known replacements so keys canonicalize.
    for (VarId &U : I.Operands)
      if (Repl[U] != NoVar)
        U = Repl[U];
    if (!isCSECandidate(I))
      continue;
    std::string Key = cseKey(I);
    auto It = Table.find(Key);
    if (It != Table.end()) {
      Repl[I.result()] = It->second;
      Changed = true;
      continue;
    }
    Table.emplace(Key, I.result());
    Added.push_back(std::move(Key));
  }
  for (BlockId C : DT.children(B))
    cseWalk(F, DT, C, Table, Repl, Changed);
  for (const std::string &K : Added)
    Table.erase(K);
}

} // namespace

bool matcoal::commonSubexpressionElimination(Function &F) {
  DominatorTree DT(F);
  std::map<std::string, VarId> Table;
  std::vector<VarId> Repl(F.numVars(), NoVar);
  bool Changed = false;
  cseWalk(F, DT, 0, Table, Repl, Changed);
  if (!Changed)
    return false;
  // Final rewrite: phi operands (edge uses) and any instruction missed by
  // the preorder walk.
  for (auto &BB : F.Blocks)
    for (Instr &I : BB->Instrs)
      for (VarId &U : I.Operands) {
        VarId R = resolve(Repl, U);
        if (R != U)
          U = R;
      }
  return true;
}

//===----------------------------------------------------------------------===//
// Dead code elimination
//===----------------------------------------------------------------------===//

bool matcoal::deadCodeElimination(Function &F) {
  std::vector<char> Live(F.numVars(), 0);
  std::vector<VarId> Work;
  auto MarkUses = [&](const Instr &I) {
    for (VarId U : I.Operands)
      if (!Live[U]) {
        Live[U] = 1;
        Work.push_back(U);
      }
  };
  auto IsRequired = [&](const Instr &I) {
    if (isTerminator(I.Op) || I.Op == Opcode::Display ||
        I.Op == Opcode::Call)
      return true;
    return I.Op == Opcode::Builtin && !isPureBuiltin(I.StrVal);
  };

  // Seed from effectful instructions (reachable blocks only).
  std::vector<BlockId> RPO = F.reversePostOrder();
  std::vector<char> Reachable(F.Blocks.size(), 0);
  for (BlockId B : RPO)
    Reachable[B] = 1;
  for (BlockId B : RPO)
    for (const Instr &I : F.block(B)->Instrs)
      if (IsRequired(I))
        MarkUses(I);

  // Propagate through defining instructions.
  std::vector<const Instr *> DefOf(F.numVars(), nullptr);
  for (BlockId B : RPO)
    for (const Instr &I : F.block(B)->Instrs)
      for (VarId R : I.Results)
        DefOf[R] = &I;
  while (!Work.empty()) {
    VarId V = Work.back();
    Work.pop_back();
    if (const Instr *I = DefOf[V])
      MarkUses(*I);
  }

  bool Changed = false;
  for (auto &BB : F.Blocks) {
    if (!Reachable[BB->Id]) {
      // Unreachable code is trivially dead except its terminator (kept so
      // the block stays well formed until removal).
      continue;
    }
    auto &Instrs = BB->Instrs;
    size_t Before = Instrs.size();
    Instrs.erase(
        std::remove_if(Instrs.begin(), Instrs.end(),
                       [&](const Instr &I) {
                         if (IsRequired(I))
                           return false;
                         if (I.Results.empty())
                           return false;
                         for (VarId R : I.Results)
                           if (Live[R])
                             return false;
                         return true;
                       }),
        Instrs.end());
    Changed |= Instrs.size() != Before;
  }
  return Changed;
}

void matcoal::runCleanupPipeline(Function &F) {
  for (int Round = 0; Round < 8; ++Round) {
    bool Changed = false;
    Changed |= copyPropagation(F);
    Changed |= constantFold(F);
    Changed |= commonSubexpressionElimination(F);
    Changed |= copyPropagation(F);
    Changed |= deadCodeElimination(F);
    removeUnreachableBlocks(F);
    if (!Changed)
      break;
  }
}
