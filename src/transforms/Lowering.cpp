//===- Lowering.cpp -------------------------------------------------------===//

#include "transforms/Lowering.h"

#include <cassert>
#include <set>

using namespace matcoal;

namespace {

/// Collects every name assigned anywhere in a statement list (MATLAB's rule
/// for deciding whether an identifier is a variable or a function).
void collectAssignedNames(const StmtList &Body, std::set<std::string> &Out) {
  for (const StmtPtr &S : Body) {
    switch (S->kind()) {
    case StmtKind::Assign:
      Out.insert(static_cast<const AssignStmt *>(S.get())->Target.Name);
      break;
    case StmtKind::MultiAssign:
      for (const LValue &LV :
           static_cast<const MultiAssignStmt *>(S.get())->Targets)
        Out.insert(LV.Name);
      break;
    case StmtKind::If: {
      const auto *If = static_cast<const IfStmt *>(S.get());
      for (const auto &B : If->Branches)
        collectAssignedNames(B.Body, Out);
      collectAssignedNames(If->ElseBody, Out);
      break;
    }
    case StmtKind::Switch: {
      const auto *Sw = static_cast<const SwitchStmt *>(S.get());
      for (const auto &C : Sw->Cases)
        collectAssignedNames(C.Body, Out);
      collectAssignedNames(Sw->Otherwise, Out);
      break;
    }
    case StmtKind::While:
      collectAssignedNames(static_cast<const WhileStmt *>(S.get())->Body,
                           Out);
      break;
    case StmtKind::For: {
      const auto *For = static_cast<const ForStmt *>(S.get());
      Out.insert(For->Var);
      collectAssignedNames(For->Body, Out);
      break;
    }
    default:
      break;
    }
  }
}

/// Lowers one FunctionDecl into one IR Function.
class FunctionLowerer {
public:
  FunctionLowerer(const FunctionDecl &Decl, const Program &Prog,
                  Function &F, Diagnostics &Diags)
      : Decl(Decl), Prog(Prog), F(F), Diags(Diags) {}

  bool run();

private:
  // Statement lowering.
  void lowerStmtList(const StmtList &Body);
  void lowerStmt(const Stmt &S);
  void lowerAssign(const AssignStmt &S);
  void lowerMultiAssign(const MultiAssignStmt &S);
  void lowerExprStmt(const ExprStmt &S);
  void lowerIf(const IfStmt &S);
  void lowerSwitch(const SwitchStmt &S);
  void lowerWhile(const WhileStmt &S);
  void lowerFor(const ForStmt &S);

  // Expression lowering. Returns NoVar after reporting an error.
  VarId lowerExpr(const Expr &E);
  /// Lowers \p E so that its value is defined into \p Target when the
  /// expression produces a fresh instruction (avoiding a trailing copy).
  void lowerExprInto(const Expr &E, VarId Target);
  VarId lowerBinary(const BinaryExpr &E);
  VarId lowerShortCircuit(const BinaryExpr &E);
  VarId lowerCallOrIndex(const CallOrIndexExpr &E);
  VarId lowerMatrix(const MatrixExpr &E);
  /// Lowers one subscript of `Base(...)`; handles ':' and 'end'.
  VarId lowerSubscript(const Expr &E, VarId Base, unsigned DimIndex,
                       unsigned NumSubs);

  // IR emission helpers.
  Instr &emit(Opcode Op, std::vector<VarId> Results,
              std::vector<VarId> Operands, SourceLoc Loc);
  VarId emitConstNum(double Re, double Im, SourceLoc Loc);
  VarId emitResultOp(Opcode Op, std::vector<VarId> Operands, SourceLoc Loc);
  void setTerminatorJmp(BlockId Target, SourceLoc Loc);
  void setTerminatorBr(VarId Cond, BlockId T1, BlockId T2, SourceLoc Loc);
  BasicBlock *startBlock();

  bool isVariable(const std::string &Name) const {
    return VarNames.count(Name) != 0;
  }
  bool isUserFunction(const std::string &Name) const {
    return Prog.findFunction(Name) != nullptr;
  }

  const FunctionDecl &Decl;
  const Program &Prog;
  Function &F;
  Diagnostics &Diags;

  std::set<std::string> VarNames;
  BasicBlock *Cur = nullptr;
  BlockId ExitBlock = NoBlock;
  struct LoopTargets {
    BlockId BreakTarget;
    BlockId ContinueTarget;
  };
  std::vector<LoopTargets> LoopStack;
  /// Innermost-first stack of (base array, dim index, subscript count) for
  /// resolving 'end' in subscripts.
  struct EndContext {
    VarId Base;
    unsigned DimIndex;
    unsigned NumSubs;
  };
  std::vector<EndContext> EndStack;
  bool HadError = false;
};

bool FunctionLowerer::run() {
  VarNames.insert(Decl.Params.begin(), Decl.Params.end());
  VarNames.insert(Decl.Outputs.begin(), Decl.Outputs.end());
  collectAssignedNames(Decl.Body, VarNames);

  for (const std::string &P : Decl.Params) {
    VarId V = F.getOrCreateVar(P);
    F.Vars[V].IsParam = true;
    F.Params.push_back(V);
  }
  for (const std::string &O : Decl.Outputs) {
    VarId V = F.getOrCreateVar(O);
    F.Vars[V].IsOutput = true;
    F.Outputs.push_back(V);
  }

  Cur = F.addBlock();
  BasicBlock *Exit = F.addBlock();
  ExitBlock = Exit->Id;
  {
    Instr Ret;
    Ret.Op = Opcode::Ret;
    Ret.Loc = Decl.Loc;
    // Returning reads the output variables; modeling that as operands lets
    // SSA renaming record which versions escape and keeps outputs live.
    Ret.Operands = F.Outputs;
    Exit->Instrs.push_back(Ret);
  }

  lowerStmtList(Decl.Body);
  if (!Cur->hasTerminator())
    setTerminatorJmp(ExitBlock, Decl.Loc);
  F.recomputePreds();
  return !HadError;
}

BasicBlock *FunctionLowerer::startBlock() {
  BasicBlock *BB = F.addBlock();
  Cur = BB;
  return BB;
}

Instr &FunctionLowerer::emit(Opcode Op, std::vector<VarId> Results,
                             std::vector<VarId> Operands, SourceLoc Loc) {
  assert(Cur && "no current block");
  // Statements after a terminator (e.g. after 'return') are unreachable;
  // give them their own block so the CFG stays well formed.
  if (Cur->hasTerminator())
    startBlock();
  Instr I;
  I.Op = Op;
  I.Results = std::move(Results);
  I.Operands = std::move(Operands);
  I.Loc = Loc;
  Cur->Instrs.push_back(std::move(I));
  return Cur->Instrs.back();
}

VarId FunctionLowerer::emitConstNum(double Re, double Im, SourceLoc Loc) {
  VarId T = F.makeTemp();
  Instr &I = emit(Opcode::ConstNum, {T}, {}, Loc);
  I.NumRe = Re;
  I.NumIm = Im;
  return T;
}

VarId FunctionLowerer::emitResultOp(Opcode Op, std::vector<VarId> Operands,
                                    SourceLoc Loc) {
  VarId T = F.makeTemp();
  emit(Op, {T}, std::move(Operands), Loc);
  return T;
}

void FunctionLowerer::setTerminatorJmp(BlockId Target, SourceLoc Loc) {
  if (Cur->hasTerminator())
    return;
  Instr &I = emit(Opcode::Jmp, {}, {}, Loc);
  I.Target1 = Target;
}

void FunctionLowerer::setTerminatorBr(VarId Cond, BlockId T1, BlockId T2,
                                      SourceLoc Loc) {
  if (Cur->hasTerminator())
    return;
  Instr &I = emit(Opcode::Br, {}, {Cond}, Loc);
  I.Target1 = T1;
  I.Target2 = T2;
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void FunctionLowerer::lowerStmtList(const StmtList &Body) {
  for (const StmtPtr &S : Body) {
    if (HadError)
      return;
    lowerStmt(*S);
  }
}

void FunctionLowerer::lowerStmt(const Stmt &S) {
  switch (S.kind()) {
  case StmtKind::Assign:
    lowerAssign(static_cast<const AssignStmt &>(S));
    break;
  case StmtKind::MultiAssign:
    lowerMultiAssign(static_cast<const MultiAssignStmt &>(S));
    break;
  case StmtKind::ExprStmt:
    lowerExprStmt(static_cast<const ExprStmt &>(S));
    break;
  case StmtKind::If:
    lowerIf(static_cast<const IfStmt &>(S));
    break;
  case StmtKind::Switch:
    lowerSwitch(static_cast<const SwitchStmt &>(S));
    break;
  case StmtKind::While:
    lowerWhile(static_cast<const WhileStmt &>(S));
    break;
  case StmtKind::For:
    lowerFor(static_cast<const ForStmt &>(S));
    break;
  case StmtKind::Break: {
    if (LoopStack.empty()) {
      Diags.error(S.loc(), "'break' outside of a loop");
      HadError = true;
      return;
    }
    setTerminatorJmp(LoopStack.back().BreakTarget, S.loc());
    break;
  }
  case StmtKind::Continue: {
    if (LoopStack.empty()) {
      Diags.error(S.loc(), "'continue' outside of a loop");
      HadError = true;
      return;
    }
    setTerminatorJmp(LoopStack.back().ContinueTarget, S.loc());
    break;
  }
  case StmtKind::Return:
    setTerminatorJmp(ExitBlock, S.loc());
    break;
  }
}

void FunctionLowerer::lowerAssign(const AssignStmt &S) {
  if (S.Target.Indices.empty()) {
    VarId Target = F.getOrCreateVar(S.Target.Name);
    lowerExprInto(*S.Value, Target);
    if (HadError)
      return;
    if (S.Display) {
      Instr &I = emit(Opcode::Display, {}, {Target}, S.loc());
      I.StrVal = S.Target.Name;
    }
    return;
  }

  // L-indexing: a(i1..im) = r  =>  a <- subsasgn(a, r, i1..im).
  VarId Base = F.getOrCreateVar(S.Target.Name);
  VarId RHS = lowerExpr(*S.Value);
  if (RHS == NoVar)
    return;
  std::vector<VarId> Operands = {Base, RHS};
  unsigned NumSubs = static_cast<unsigned>(S.Target.Indices.size());
  for (unsigned I = 0; I < NumSubs; ++I) {
    VarId Sub = lowerSubscript(*S.Target.Indices[I], Base, I, NumSubs);
    if (Sub == NoVar)
      return;
    Operands.push_back(Sub);
  }
  emit(Opcode::Subsasgn, {Base}, std::move(Operands), S.loc());
  if (S.Display) {
    Instr &I = emit(Opcode::Display, {}, {Base}, S.loc());
    I.StrVal = S.Target.Name;
  }
}

void FunctionLowerer::lowerMultiAssign(const MultiAssignStmt &S) {
  const auto &Call = static_cast<const CallOrIndexExpr &>(*S.Call);
  if (isVariable(Call.Name)) {
    Diags.error(S.loc(), "multiple-output target requires a function call");
    HadError = true;
    return;
  }
  std::vector<VarId> Results;
  for (const LValue &LV : S.Targets) {
    if (!LV.Indices.empty()) {
      Diags.error(LV.Loc,
                  "indexed targets in multi-assignments are unsupported");
      HadError = true;
      return;
    }
    Results.push_back(F.getOrCreateVar(LV.Name));
  }
  std::vector<VarId> Args;
  for (const ExprPtr &A : Call.Args) {
    VarId V = lowerExpr(*A);
    if (V == NoVar)
      return;
    Args.push_back(V);
  }
  Opcode Op = isUserFunction(Call.Name) ? Opcode::Call : Opcode::Builtin;
  Instr &I = emit(Op, std::move(Results), std::move(Args), S.loc());
  I.StrVal = Call.Name;
  if (S.Display) {
    for (size_t Idx = 0; Idx < S.Targets.size(); ++Idx) {
      Instr &D = emit(Opcode::Display, {},
                      {F.getOrCreateVar(S.Targets[Idx].Name)}, S.loc());
      D.StrVal = S.Targets[Idx].Name;
    }
  }
}

void FunctionLowerer::lowerExprStmt(const ExprStmt &S) {
  // Zero-output call statements (disp, fprintf...) produce no value.
  if (S.Value->kind() == ExprKind::CallOrIndex) {
    const auto &Call = static_cast<const CallOrIndexExpr &>(*S.Value);
    if (!isVariable(Call.Name)) {
      std::vector<VarId> Args;
      for (const ExprPtr &A : Call.Args) {
        VarId V = lowerExpr(*A);
        if (V == NoVar)
          return;
        Args.push_back(V);
      }
      Opcode Op = isUserFunction(Call.Name) ? Opcode::Call : Opcode::Builtin;
      // A displayed call statement still echoes its value as "ans".
      std::vector<VarId> Results;
      VarId T = NoVar;
      if (S.Display) {
        T = F.makeTemp("ans");
        Results.push_back(T);
      }
      Instr &I = emit(Op, std::move(Results), std::move(Args), S.loc());
      I.StrVal = Call.Name;
      if (S.Display) {
        Instr &D = emit(Opcode::Display, {}, {T}, S.loc());
        D.StrVal = "ans";
      }
      return;
    }
  }
  VarId V = lowerExpr(*S.Value);
  if (V == NoVar)
    return;
  if (S.Display) {
    Instr &D = emit(Opcode::Display, {}, {V}, S.loc());
    D.StrVal = S.Value->kind() == ExprKind::Ident
                   ? static_cast<const IdentExpr &>(*S.Value).Name
                   : "ans";
  }
}

void FunctionLowerer::lowerIf(const IfStmt &S) {
  BasicBlock *Join = F.addBlock();
  for (const IfStmt::Branch &B : S.Branches) {
    VarId Cond = lowerExpr(*B.Cond);
    if (Cond == NoVar)
      return;
    BasicBlock *Then = F.addBlock();
    BasicBlock *Next = F.addBlock();
    setTerminatorBr(Cond, Then->Id, Next->Id, S.loc());
    Cur = Then;
    lowerStmtList(B.Body);
    setTerminatorJmp(Join->Id, S.loc());
    Cur = Next;
  }
  lowerStmtList(S.ElseBody);
  setTerminatorJmp(Join->Id, S.loc());
  Cur = Join;
}

void FunctionLowerer::lowerSwitch(const SwitchStmt &S) {
  // Lower to an if-chain over __switcheq(cond, case-value): the MATLAB
  // matching rule (numeric equality for scalars, string equality for
  // char rows).
  VarId Cond = lowerExpr(*S.Cond);
  if (Cond == NoVar)
    return;
  BasicBlock *Join = F.addBlock();
  for (const SwitchStmt::Case &C : S.Cases) {
    VarId CaseVal = lowerExpr(*C.Value);
    if (CaseVal == NoVar)
      return;
    VarId Match = F.makeTemp();
    Instr &I = emit(Opcode::Builtin, {Match}, {Cond, CaseVal}, S.loc());
    I.StrVal = "__switcheq";
    BasicBlock *Then = F.addBlock();
    BasicBlock *Next = F.addBlock();
    setTerminatorBr(Match, Then->Id, Next->Id, S.loc());
    Cur = Then;
    lowerStmtList(C.Body);
    setTerminatorJmp(Join->Id, S.loc());
    Cur = Next;
  }
  lowerStmtList(S.Otherwise);
  setTerminatorJmp(Join->Id, S.loc());
  Cur = Join;
}

void FunctionLowerer::lowerWhile(const WhileStmt &S) {
  BasicBlock *Header = F.addBlock();
  setTerminatorJmp(Header->Id, S.loc());
  Cur = Header;
  VarId Cond = lowerExpr(*S.Cond);
  if (Cond == NoVar)
    return;
  BasicBlock *Body = F.addBlock();
  BasicBlock *Exit = F.addBlock();
  setTerminatorBr(Cond, Body->Id, Exit->Id, S.loc());

  LoopStack.push_back({Exit->Id, Header->Id});
  Cur = Body;
  lowerStmtList(S.Body);
  setTerminatorJmp(Header->Id, S.loc());
  LoopStack.pop_back();
  Cur = Exit;
}

void FunctionLowerer::lowerFor(const ForStmt &S) {
  VarId LoopVar = F.getOrCreateVar(S.Var);

  if (S.Range->kind() == ExprKind::Range) {
    // Counted loop: for v = lo : step : hi.
    const auto &R = static_cast<const RangeExpr &>(*S.Range);
    VarId Lo = lowerExpr(*R.Start);
    if (Lo == NoVar)
      return;
    VarId Step =
        R.Step ? lowerExpr(*R.Step) : emitConstNum(1.0, 0.0, S.loc());
    if (Step == NoVar)
      return;
    VarId Hi = lowerExpr(*R.Stop);
    if (Hi == NoVar)
      return;
    emit(Opcode::Copy, {LoopVar}, {Lo}, S.loc());

    BasicBlock *Header = F.addBlock();
    setTerminatorJmp(Header->Id, S.loc());
    Cur = Header;

    // Direction test. With a constant step we can pick Le/Ge statically;
    // otherwise fall back to the __forcond builtin.
    VarId Cond;
    const Expr *StepExpr = R.Step.get();
    double StepConst = 1.0;
    bool StepIsConst = !StepExpr;
    if (StepExpr && StepExpr->kind() == ExprKind::Number) {
      StepIsConst = true;
      StepConst = static_cast<const NumberExpr &>(*StepExpr).Value;
    } else if (StepExpr && StepExpr->kind() == ExprKind::Unary) {
      const auto &U = static_cast<const UnaryExpr &>(*StepExpr);
      if (U.Op == UnaryOp::Minus && U.Operand->kind() == ExprKind::Number) {
        StepIsConst = true;
        StepConst = -static_cast<const NumberExpr &>(*U.Operand).Value;
      }
    }
    if (StepIsConst) {
      Cond = emitResultOp(StepConst >= 0 ? Opcode::Le : Opcode::Ge,
                          {LoopVar, Hi}, S.loc());
    } else {
      VarId T = F.makeTemp();
      Instr &I = emit(Opcode::Builtin, {T}, {LoopVar, Step, Hi}, S.loc());
      I.StrVal = "__forcond";
      Cond = T;
    }

    BasicBlock *Body = F.addBlock();
    BasicBlock *Latch = F.addBlock();
    BasicBlock *Exit = F.addBlock();
    setTerminatorBr(Cond, Body->Id, Exit->Id, S.loc());

    LoopStack.push_back({Exit->Id, Latch->Id});
    Cur = Body;
    lowerStmtList(S.Body);
    setTerminatorJmp(Latch->Id, S.loc());
    LoopStack.pop_back();

    Cur = Latch;
    VarId Next = emitResultOp(Opcode::Add, {LoopVar, Step}, S.loc());
    emit(Opcode::Copy, {LoopVar}, {Next}, S.loc());
    setTerminatorJmp(Header->Id, S.loc());
    Cur = Exit;
    return;
  }

  // General form: for v = A iterates over the columns of A.
  VarId A = lowerExpr(*S.Range);
  if (A == NoVar)
    return;
  VarId Two = emitConstNum(2.0, 0.0, S.loc());
  VarId NCols = F.makeTemp();
  {
    Instr &I = emit(Opcode::Builtin, {NCols}, {A, Two}, S.loc());
    I.StrVal = "size";
  }
  VarId K = F.makeTemp("fk");
  VarId One = emitConstNum(1.0, 0.0, S.loc());
  emit(Opcode::Copy, {K}, {One}, S.loc());

  BasicBlock *Header = F.addBlock();
  setTerminatorJmp(Header->Id, S.loc());
  Cur = Header;
  VarId Cond = emitResultOp(Opcode::Le, {K, NCols}, S.loc());
  BasicBlock *Body = F.addBlock();
  BasicBlock *Latch = F.addBlock();
  BasicBlock *Exit = F.addBlock();
  setTerminatorBr(Cond, Body->Id, Exit->Id, S.loc());

  LoopStack.push_back({Exit->Id, Latch->Id});
  Cur = Body;
  VarId Colon = emitResultOp(Opcode::ConstColon, {}, S.loc());
  emit(Opcode::Subsref, {LoopVar}, {A, Colon, K}, S.loc());
  lowerStmtList(S.Body);
  setTerminatorJmp(Latch->Id, S.loc());
  LoopStack.pop_back();

  Cur = Latch;
  VarId One2 = emitConstNum(1.0, 0.0, S.loc());
  VarId NextK = emitResultOp(Opcode::Add, {K, One2}, S.loc());
  emit(Opcode::Copy, {K}, {NextK}, S.loc());
  setTerminatorJmp(Header->Id, S.loc());
  Cur = Exit;
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

void FunctionLowerer::lowerExprInto(const Expr &E, VarId Target) {
  // Lower the value, then retarget the defining instruction when it is a
  // fresh temp produced by the expression's root; otherwise emit a copy.
  size_t BlockBefore = F.Blocks.size();
  BasicBlock *CurBefore = Cur;
  size_t LenBefore = Cur->Instrs.size();
  VarId V = lowerExpr(E);
  if (V == NoVar)
    return;
  // Only retarget when (a) the value is a temp defined by the last emitted
  // instruction of the current block, and (b) lowering stayed within the
  // same block (short-circuit lowering branches; retargeting across blocks
  // would skip the false path's definition).
  if (F.var(V).IsTemp && Cur == CurBefore && F.Blocks.size() == BlockBefore &&
      Cur->Instrs.size() > LenBefore) {
    Instr &Last = Cur->Instrs.back();
    if (Last.Results.size() == 1 && Last.Results[0] == V) {
      Last.Results[0] = Target;
      return;
    }
  }
  emit(Opcode::Copy, {Target}, {V}, E.loc());
}

VarId FunctionLowerer::lowerExpr(const Expr &E) {
  switch (E.kind()) {
  case ExprKind::Number: {
    const auto &N = static_cast<const NumberExpr &>(E);
    return N.IsImaginary ? emitConstNum(0.0, N.Value, E.loc())
                         : emitConstNum(N.Value, 0.0, E.loc());
  }
  case ExprKind::String: {
    VarId T = F.makeTemp();
    Instr &I = emit(Opcode::ConstStr, {T}, {}, E.loc());
    I.StrVal = static_cast<const StringExpr &>(E).Value;
    return T;
  }
  case ExprKind::Ident: {
    const auto &Id = static_cast<const IdentExpr &>(E);
    if (isVariable(Id.Name))
      return F.getOrCreateVar(Id.Name);
    // A free identifier is a zero-argument call: pi, eps, rand...
    VarId T = F.makeTemp();
    Opcode Op = isUserFunction(Id.Name) ? Opcode::Call : Opcode::Builtin;
    Instr &I = emit(Op, {T}, {}, E.loc());
    I.StrVal = Id.Name;
    return T;
  }
  case ExprKind::ColonAll:
    Diags.error(E.loc(), "':' is only valid as a subscript");
    HadError = true;
    return NoVar;
  case ExprKind::EndIndex: {
    if (EndStack.empty()) {
      Diags.error(E.loc(), "'end' is only valid inside a subscript");
      HadError = true;
      return NoVar;
    }
    const EndContext &Ctx = EndStack.back();
    VarId T = F.makeTemp();
    if (Ctx.NumSubs == 1) {
      Instr &I = emit(Opcode::Builtin, {T}, {Ctx.Base}, E.loc());
      I.StrVal = "numel";
    } else {
      VarId Dim =
          emitConstNum(static_cast<double>(Ctx.DimIndex + 1), 0.0, E.loc());
      Instr &I = emit(Opcode::Builtin, {T}, {Ctx.Base, Dim}, E.loc());
      I.StrVal = "size";
    }
    return T;
  }
  case ExprKind::Unary: {
    const auto &U = static_cast<const UnaryExpr &>(E);
    VarId V = lowerExpr(*U.Operand);
    if (V == NoVar)
      return NoVar;
    switch (U.Op) {
    case UnaryOp::Plus:
      return V;
    case UnaryOp::Minus:
      return emitResultOp(Opcode::Neg, {V}, E.loc());
    case UnaryOp::Not:
      return emitResultOp(Opcode::Not, {V}, E.loc());
    }
    return NoVar;
  }
  case ExprKind::Binary:
    return lowerBinary(static_cast<const BinaryExpr &>(E));
  case ExprKind::CallOrIndex:
    return lowerCallOrIndex(static_cast<const CallOrIndexExpr &>(E));
  case ExprKind::Range: {
    const auto &R = static_cast<const RangeExpr &>(E);
    VarId Lo = lowerExpr(*R.Start);
    if (Lo == NoVar)
      return NoVar;
    if (!R.Step) {
      VarId Hi = lowerExpr(*R.Stop);
      if (Hi == NoVar)
        return NoVar;
      return emitResultOp(Opcode::Colon2, {Lo, Hi}, E.loc());
    }
    VarId Step = lowerExpr(*R.Step);
    if (Step == NoVar)
      return NoVar;
    VarId Hi = lowerExpr(*R.Stop);
    if (Hi == NoVar)
      return NoVar;
    return emitResultOp(Opcode::Colon3, {Lo, Step, Hi}, E.loc());
  }
  case ExprKind::Matrix:
    return lowerMatrix(static_cast<const MatrixExpr &>(E));
  case ExprKind::Transpose: {
    const auto &T = static_cast<const TransposeExpr &>(E);
    VarId V = lowerExpr(*T.Operand);
    if (V == NoVar)
      return NoVar;
    return emitResultOp(T.Conjugate ? Opcode::CTranspose : Opcode::Transpose,
                        {V}, E.loc());
  }
  }
  return NoVar;
}

VarId FunctionLowerer::lowerBinary(const BinaryExpr &E) {
  if (E.Op == BinaryOp::AndAnd || E.Op == BinaryOp::OrOr)
    return lowerShortCircuit(E);

  VarId L = lowerExpr(*E.LHS);
  if (L == NoVar)
    return NoVar;
  VarId R = lowerExpr(*E.RHS);
  if (R == NoVar)
    return NoVar;

  Opcode Op;
  switch (E.Op) {
  case BinaryOp::Add: Op = Opcode::Add; break;
  case BinaryOp::Sub: Op = Opcode::Sub; break;
  case BinaryOp::MatMul: Op = Opcode::MatMul; break;
  case BinaryOp::ElemMul: Op = Opcode::ElemMul; break;
  case BinaryOp::MatRDiv: Op = Opcode::MatRDiv; break;
  case BinaryOp::ElemRDiv: Op = Opcode::ElemRDiv; break;
  case BinaryOp::MatLDiv: Op = Opcode::MatLDiv; break;
  case BinaryOp::ElemLDiv: Op = Opcode::ElemLDiv; break;
  case BinaryOp::MatPow: Op = Opcode::MatPow; break;
  case BinaryOp::ElemPow: Op = Opcode::ElemPow; break;
  case BinaryOp::Lt: Op = Opcode::Lt; break;
  case BinaryOp::Le: Op = Opcode::Le; break;
  case BinaryOp::Gt: Op = Opcode::Gt; break;
  case BinaryOp::Ge: Op = Opcode::Ge; break;
  case BinaryOp::Eq: Op = Opcode::Eq; break;
  case BinaryOp::Ne: Op = Opcode::Ne; break;
  case BinaryOp::And: Op = Opcode::And; break;
  case BinaryOp::Or: Op = Opcode::Or; break;
  default:
    return NoVar;
  }
  return emitResultOp(Op, {L, R}, E.loc());
}

VarId FunctionLowerer::lowerShortCircuit(const BinaryExpr &E) {
  // a && b  =>  r = false; if a then r = (b ~= 0)   (dually for ||).
  bool IsAnd = E.Op == BinaryOp::AndAnd;
  VarId R = F.makeTemp("sc");

  VarId L = lowerExpr(*E.LHS);
  if (L == NoVar)
    return NoVar;

  BasicBlock *Eval = F.addBlock();
  BasicBlock *Skip = F.addBlock();
  BasicBlock *Join = F.addBlock();
  if (IsAnd)
    setTerminatorBr(L, Eval->Id, Skip->Id, E.loc());
  else
    setTerminatorBr(L, Skip->Id, Eval->Id, E.loc());

  Cur = Eval;
  VarId RHS = lowerExpr(*E.RHS);
  if (RHS == NoVar)
    return NoVar;
  VarId Zero = emitConstNum(0.0, 0.0, E.loc());
  emit(Opcode::Ne, {R}, {RHS, Zero}, E.loc());
  setTerminatorJmp(Join->Id, E.loc());

  Cur = Skip;
  VarId Fixed = emitConstNum(IsAnd ? 0.0 : 1.0, 0.0, E.loc());
  emit(Opcode::Copy, {R}, {Fixed}, E.loc());
  setTerminatorJmp(Join->Id, E.loc());

  Cur = Join;
  return R;
}

VarId FunctionLowerer::lowerSubscript(const Expr &E, VarId Base,
                                      unsigned DimIndex, unsigned NumSubs) {
  if (E.kind() == ExprKind::ColonAll)
    return emitResultOp(Opcode::ConstColon, {}, E.loc());
  EndStack.push_back({Base, DimIndex, NumSubs});
  VarId V = lowerExpr(E);
  EndStack.pop_back();
  return V;
}

VarId FunctionLowerer::lowerCallOrIndex(const CallOrIndexExpr &E) {
  if (isVariable(E.Name)) {
    // R-indexing: a(i1..im).
    VarId Base = F.getOrCreateVar(E.Name);
    std::vector<VarId> Operands = {Base};
    unsigned NumSubs = static_cast<unsigned>(E.Args.size());
    if (NumSubs == 0) {
      // a() is just a.
      return Base;
    }
    for (unsigned I = 0; I < NumSubs; ++I) {
      VarId Sub = lowerSubscript(*E.Args[I], Base, I, NumSubs);
      if (Sub == NoVar)
        return NoVar;
      Operands.push_back(Sub);
    }
    return emitResultOp(Opcode::Subsref, std::move(Operands), E.loc());
  }

  std::vector<VarId> Args;
  for (const ExprPtr &A : E.Args) {
    // ':' can be passed to builtins like a(:) via subsref; as a plain call
    // argument it is invalid, but size(a, ':') never occurs -- reuse the
    // subscript path only for variables (handled above).
    if (A->kind() == ExprKind::ColonAll) {
      Diags.error(A->loc(), "':' is only valid as a subscript");
      HadError = true;
      return NoVar;
    }
    VarId V = lowerExpr(*A);
    if (V == NoVar)
      return NoVar;
    Args.push_back(V);
  }
  VarId T = F.makeTemp();
  Opcode Op = isUserFunction(E.Name) ? Opcode::Call : Opcode::Builtin;
  Instr &I = emit(Op, {T}, std::move(Args), E.loc());
  I.StrVal = E.Name;
  return T;
}

VarId FunctionLowerer::lowerMatrix(const MatrixExpr &E) {
  // [] -> empty array.
  if (E.Rows.empty())
    return emitResultOp(Opcode::VertCat, {}, E.loc());
  std::vector<VarId> RowVals;
  for (const auto &Row : E.Rows) {
    std::vector<VarId> Elems;
    for (const ExprPtr &Elt : Row) {
      VarId V = lowerExpr(*Elt);
      if (V == NoVar)
        return NoVar;
      Elems.push_back(V);
    }
    if (Elems.size() == 1) {
      RowVals.push_back(Elems[0]);
      continue;
    }
    RowVals.push_back(
        emitResultOp(Opcode::HorzCat, std::move(Elems), E.loc()));
  }
  if (RowVals.size() == 1)
    return RowVals[0];
  return emitResultOp(Opcode::VertCat, std::move(RowVals), E.loc());
}

} // namespace

std::unique_ptr<Module> matcoal::lowerProgram(const Program &Prog,
                                              Diagnostics &Diags) {
  auto M = std::make_unique<Module>();
  for (const auto &Decl : Prog.Functions) {
    Function *F = M->addFunction(Decl->Name);
    FunctionLowerer L(*Decl, Prog, *F, Diags);
    if (!L.run())
      return nullptr;
    if (!verifyFunction(*F, Diags))
      return nullptr;
  }
  return M;
}
