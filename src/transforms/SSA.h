//===- SSA.h - SSA construction and inversion -------------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pruned SSA construction (Cytron et al., the paper's [12]) and SSA
/// inversion. Inversion reintroduces copies at phi predecessors -- the
/// copies GCTD's phi coalescing (paper section 2.2.1) turns into trivially
/// removable identity assignments.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_TRANSFORMS_SSA_H
#define MATCOAL_TRANSFORMS_SSA_H

#include "ir/IR.h"
#include "support/Diagnostics.h"

namespace matcoal {

/// Converts \p F (fresh from lowering) to pruned SSA form. Variables that
/// may be read before their first definition receive an empty-array
/// initialization at entry (MATLAB's behaviour for subsasgn bases; a
/// warning is emitted for other uses). Returns false on error.
bool buildSSA(Function &F, Diagnostics &Diags);

/// Replaces phis with copies on predecessor edges (splitting critical
/// edges as needed) using parallel-copy sequentialization, so phi-operand
/// cycles are handled with a temporary.
void invertSSA(Function &F);

/// Deletes blocks unreachable from the entry, preserving the relative
/// order of surviving predecessor lists (phi operand order stays valid).
void removeUnreachableBlocks(Function &F);

} // namespace matcoal

#endif // MATCOAL_TRANSFORMS_SSA_H
