//===- Histogram.cpp - Prometheus rendering for LatencyHistogram ----------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "observe/Histogram.h"

#include <cstdio>
#include <sstream>

namespace matcoal {

std::string LatencyHistogram::prometheusText(const std::string &Family) const {
  std::ostringstream OS;
  OS << "# TYPE " << Family << " histogram\n";
  // Highest occupied bucket bounds the finite `le` ladder so empty
  // histograms stay two lines and busy ones stay readable.
  unsigned Top = 0;
  for (unsigned I = 0; I < kBuckets; ++I)
    if (Buckets[I] != 0)
      Top = I;
  std::uint64_t Cum = 0;
  for (unsigned I = 0; I <= Top && I < kBuckets - 1; ++I) {
    Cum += Buckets[I];
    OS << Family << "_bucket{le=\"" << bucketUpper(I) << "\"} " << Cum << "\n";
  }
  OS << Family << "_bucket{le=\"+Inf\"} " << CountV << "\n";
  OS << Family << "_sum " << SumV << "\n";
  OS << Family << "_count " << CountV << "\n";
  static const struct {
    const char *Label;
    double Q;
  } Quantiles[] = {{"0.5", 0.5}, {"0.95", 0.95}, {"0.99", 0.99}};
  for (const auto &Sel : Quantiles) {
    char Buf[64];
    std::snprintf(Buf, sizeof(Buf), "%.6g", quantile(Sel.Q));
    OS << Family << "{quantile=\"" << Sel.Label << "\"} " << Buf << "\n";
  }
  return OS.str();
}

} // namespace matcoal
