//===- Span.cpp - Request-scoped span trees and trace merging -------------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "observe/Span.h"

#include "observe/Observe.h"

#include <algorithm>
#include <set>
#include <sstream>

namespace matcoal {

int SpanRecorder::begin(const std::string &Name, std::uint64_t StartMicros) {
  Span S;
  S.Name = Name;
  S.StartMicros = StartMicros ? StartMicros : nowMicros();
  S.Parent = Stack.empty() ? -1 : Stack.back();
  int Id = static_cast<int>(Spans.size());
  Spans.push_back(std::move(S));
  Stack.push_back(Id);
  return Id;
}

void SpanRecorder::end(int Id, std::uint64_t EndMicros) {
  if (Id < 0 || Id >= static_cast<int>(Spans.size()))
    return;
  auto It = std::find(Stack.begin(), Stack.end(), Id);
  if (It == Stack.end())
    return; // Already closed.
  std::uint64_t End = EndMicros ? EndMicros : nowMicros();
  // Close everything opened under Id first so nesting never dangles.
  while (!Stack.empty()) {
    int Top = Stack.back();
    Stack.pop_back();
    Span &S = Spans[static_cast<std::size_t>(Top)];
    S.DurMicros = End >= S.StartMicros ? End - S.StartMicros : 0;
    if (Top == Id)
      break;
  }
}

int SpanRecorder::leaf(const std::string &Name, std::uint64_t StartMicros,
                       std::uint64_t DurMicros) {
  Span S;
  S.Name = Name;
  S.StartMicros = StartMicros;
  S.DurMicros = DurMicros;
  S.Parent = Stack.empty() ? -1 : Stack.back();
  int Id = static_cast<int>(Spans.size());
  Spans.push_back(std::move(S));
  return Id;
}

namespace {

/// Children of \p Parent in recording order (recording order is sibling
/// order: ids only grow).
std::vector<int> childrenOf(const std::vector<Span> &Spans, int Parent) {
  std::vector<int> Out;
  for (int I = 0; I < static_cast<int>(Spans.size()); ++I)
    if (Spans[static_cast<std::size_t>(I)].Parent == Parent)
      Out.push_back(I);
  return Out;
}

void emitNode(const std::vector<Span> &Spans, int Id, std::ostringstream &OS) {
  const Span &S = Spans[static_cast<std::size_t>(Id)];
  OS << "{\"name\": \"" << jsonEscape(S.Name) << "\", \"start_us\": "
     << S.StartMicros << ", \"dur_us\": " << S.DurMicros
     << ", \"children\": [";
  bool First = true;
  for (int C : childrenOf(Spans, Id)) {
    if (!First)
      OS << ", ";
    First = false;
    emitNode(Spans, C, OS);
  }
  OS << "]}";
}

void emitStructure(const std::vector<Span> &Spans, int Id, unsigned Depth,
                   std::ostringstream &OS) {
  const Span &S = Spans[static_cast<std::size_t>(Id)];
  for (unsigned I = 0; I < Depth * 2; ++I)
    OS << ' ';
  OS << S.Name << "\n";
  for (int C : childrenOf(Spans, Id))
    emitStructure(Spans, C, Depth + 1, OS);
}

} // namespace

std::string SpanRecorder::treeJson() const {
  std::ostringstream OS;
  std::vector<int> Roots = childrenOf(Spans, -1);
  if (Roots.size() == 1) {
    emitNode(Spans, Roots[0], OS);
    return OS.str();
  }
  OS << "[";
  bool First = true;
  for (int R : Roots) {
    if (!First)
      OS << ", ";
    First = false;
    emitNode(Spans, R, OS);
  }
  OS << "]";
  return OS.str();
}

std::string SpanRecorder::structureText() const {
  std::ostringstream OS;
  for (int R : childrenOf(Spans, -1))
    emitStructure(Spans, R, 0, OS);
  return OS.str();
}

void SpanSink::add(const std::string &RequestId, int Lane,
                   std::vector<Span> Spans) {
  std::lock_guard<std::mutex> Lock(Mu);
  Entries.push_back(Entry{RequestId, Lane, std::move(Spans)});
}

std::size_t SpanSink::size() const {
  std::lock_guard<std::mutex> Lock(Mu);
  return Entries.size();
}

std::string SpanSink::chromeJson() const {
  std::lock_guard<std::mutex> Lock(Mu);
  std::uint64_t Epoch = ~static_cast<std::uint64_t>(0);
  for (const Entry &E : Entries)
    for (const Span &S : E.Spans)
      Epoch = std::min(Epoch, S.StartMicros);
  if (Entries.empty())
    Epoch = 0;

  std::ostringstream OS;
  OS << "{\"traceEvents\": [\n";
  bool First = true;
  std::set<int> Lanes;
  for (const Entry &E : Entries) {
    int Tid = E.Lane + 2; // Lane -1 (out-of-pool) maps to tid 1.
    Lanes.insert(E.Lane);
    for (const Span &S : E.Spans) {
      if (!First)
        OS << ",\n";
      First = false;
      const char *ParentName =
          S.Parent >= 0
              ? E.Spans[static_cast<std::size_t>(S.Parent)].Name.c_str()
              : "";
      OS << "  {\"name\": \"" << jsonEscape(S.Name)
         << "\", \"cat\": \"request\", \"ph\": \"X\", \"ts\": "
         << (S.StartMicros - Epoch) << ", \"dur\": " << S.DurMicros
         << ", \"pid\": 1, \"tid\": " << Tid
         << ", \"args\": {\"request_id\": \"" << jsonEscape(E.RequestId)
         << "\", \"parent\": \"" << jsonEscape(ParentName) << "\"}}";
    }
  }
  for (int Lane : Lanes) {
    if (!First)
      OS << ",\n";
    First = false;
    std::string Label =
        Lane < 0 ? std::string("client") : "worker " + std::to_string(Lane);
    OS << "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, "
       << "\"tid\": " << (Lane + 2) << ", \"args\": {\"name\": \"" << Label
       << "\"}}";
  }
  OS << "\n]}\n";
  return OS.str();
}

} // namespace matcoal
