//===- Span.h - Request-scoped span trees and trace merging -----*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Request-scoped tracing for the serving stack.
///
/// A `SpanRecorder` collects one request's span tree: `begin`/`end` open
/// and close nested spans on the same steady microsecond clock PassTimer
/// uses (`nowMicros`), and `leaf` attaches an already-timed child (a
/// compile-stage PassTimer event, a native cache lookup) under the
/// currently open span. The *structure* of the tree -- names, nesting,
/// sibling order -- is a deterministic function of the request, which is
/// what the span-determinism tests pin; only the wall times vary.
///
/// A `SpanSink` is the service-wide merge point: finished trees are
/// appended under a mutex with the worker lane that ran them, and
/// `chromeJson()` renders the whole history as one Chrome trace-event
/// file (`matcoald --trace-out`) with one lane (tid) per worker, so
/// multi-request storms read as a timeline instead of a counter delta.
///
/// SpanRecorder follows the Observer thread-safety contract: one request,
/// one recorder, no locks. SpanSink is the one concurrency-aware piece.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_OBSERVE_SPAN_H
#define MATCOAL_OBSERVE_SPAN_H

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

namespace matcoal {

/// One node of a request's span tree. Parent links index into the
/// recorder's flat vector; -1 marks a root.
struct Span {
  std::string Name;
  std::uint64_t StartMicros = 0;
  std::uint64_t DurMicros = 0;
  int Parent = -1;
};

class SpanRecorder {
public:
  /// Opens a span under the innermost still-open span (or as a root) and
  /// returns its id. \p StartMicros defaults to now.
  int begin(const std::string &Name, std::uint64_t StartMicros = 0);

  /// Closes span \p Id. Idempotent; closes any children left open first
  /// so the tree is always well-formed. \p EndMicros defaults to now.
  void end(int Id, std::uint64_t EndMicros = 0);

  /// Attaches an already-timed child under the innermost open span.
  int leaf(const std::string &Name, std::uint64_t StartMicros,
           std::uint64_t DurMicros);

  bool allClosed() const { return Stack.empty(); }
  const std::vector<Span> &spans() const { return Spans; }

  /// The tree as nested JSON: {"name","start_us","dur_us","children"}.
  /// Sibling order is recording order. Newline-free.
  std::string treeJson() const;

  /// The structure with wall times stripped: one `depth*2`-space-indented
  /// name per line, in tree order. Two identical runs must produce
  /// byte-identical structure text -- the determinism contract.
  std::string structureText() const;

private:
  std::vector<Span> Spans;
  std::vector<int> Stack;
};

/// RAII wrapper over begin/end for straight-line scopes.
class ScopedSpan {
public:
  ScopedSpan(SpanRecorder &R, const std::string &Name)
      : Rec(&R), Id(R.begin(Name)) {}
  ScopedSpan(const ScopedSpan &) = delete;
  ScopedSpan &operator=(const ScopedSpan &) = delete;
  ~ScopedSpan() { stop(); }
  void stop() {
    if (Rec) {
      Rec->end(Id);
      Rec = nullptr;
    }
  }

private:
  SpanRecorder *Rec;
  int Id;
};

/// Mutex-guarded collection of finished span trees, one entry per
/// request, rendered as a single merged Chrome trace.
class SpanSink {
public:
  /// Appends one finished tree. \p Lane is the worker id (>= 0) or -1
  /// for requests processed outside the pool (processNow, client lane).
  void add(const std::string &RequestId, int Lane, std::vector<Span> Spans);

  /// Number of trees collected so far.
  std::size_t size() const;

  /// Chrome trace-event JSON ({"traceEvents": [...]}): every span becomes
  /// a complete "X" event with pid 1 and tid = lane + 2 (tid 1 is the
  /// oracle/client lane), timestamps relative to the earliest span in the
  /// sink, and args carrying the request id plus the span's parent name
  /// so trees stay reconstructible after the merge. Thread-name metadata
  /// events label each lane.
  std::string chromeJson() const;

private:
  struct Entry {
    std::string RequestId;
    int Lane;
    std::vector<Span> Spans;
  };
  mutable std::mutex Mu;
  std::vector<Entry> Entries;
};

} // namespace matcoal

#endif // MATCOAL_OBSERVE_SPAN_H
