//===- Observe.h - Pass telemetry, remarks, and IR dump hooks ---*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The compiler observability substrate, in the LLVM optimization-remark
/// tradition. One `Observer` rides through a compile (and, in the bench
/// harness, through the runs that follow) collecting three streams:
///
///  * **Stats** (`StatRegistry`): named monotone counters every stage
///    reports into (`gctd.edges.opsem`, `codegen.ensure.elided`, ...).
///    Counters are deterministic across runs of the same input; the
///    checked-in schema in tests/observe/stats_schema.txt pins the name
///    set so counters cannot silently vanish.
///  * **Timeline** (`PassTimer` -> `TraceEvent`): wall-clock spans per
///    pass, serializable as a Chrome `chrome://tracing` / Perfetto
///    trace-event file (traceJson) and aggregated into statsJson.
///  * **Remarks** (`Remark`): one record per optimization decision --
///    operator-semantics edge added or discharged, phi web coalesced,
///    color assigned, storage group bound to stack or heap (with the size
///    expression that forced the heap binding), range-justified promotion,
///    check elision -- queryable from tests and printed by
///    `matcoalc --remarks[=pass]`.
///
/// The observer also hosts the IR dump hooks behind `matcoalc
/// --print-after=<pass>` / `--print-after-all`: the driver records the
/// module printer's output after each requested pass so golden-file tests
/// can pin intermediate states.
///
/// Everything is null-tolerant: passes take an `Observer *` defaulting to
/// nullptr and the free helpers (`count`, `remarkTo`) no-op on null, so
/// observability costs nothing when not requested.
///
/// **Thread-safety contract (matcoald): per-session.** An Observer (and
/// its StatRegistry, remark list, trace, and IR-dump sinks) is owned by
/// exactly one compile/run session and must never be shared across
/// concurrently executing requests -- none of its mutators take locks.
/// The service gives every request a fresh Observer and folds finished
/// ones into its mutex-guarded server-wide aggregate (see
/// service/Service.h, ServerStats); `StatRegistry::merge` makes that fold
/// a one-liner. The same rule covers RuntimeProfiler.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_OBSERVE_OBSERVE_H
#define MATCOAL_OBSERVE_OBSERVE_H

#include "observe/Histogram.h"
#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

namespace matcoal {

/// Microseconds on the steady (monotonic) clock shared by every timer in
/// the system -- compiler passes and bench runs alike.
std::uint64_t nowMicros();

/// What kind of decision a remark records.
enum class RemarkKind {
  EdgeAdded,      ///< Operator-semantics interference edge inserted.
  EdgeDischarged, ///< Edge the bare types demand, discharged by ranges.
  PhiCoalesced,   ///< Phi web member united with its result.
  ColorAssigned,  ///< A representative received its color.
  GroupStack,     ///< Storage group bound to a fixed stack slot.
  GroupHeap,      ///< Storage group bound to heap, with its size expr.
  GroupPromoted,  ///< Heap-shaped group promoted to stack via ranges.
  CheckElided,    ///< Capacity/bounds/growth check proven dead.
  RegionFused,    ///< Elementwise chain fused into one loop.
  Degraded,       ///< A pipeline stage fell down the degradation ladder.
  PlanDrift,      ///< Observed runtime behavior diverged from the plan.
  InPlaceProven,  ///< Legality oracle proved an in-place question safe.
  InPlaceRefused, ///< Legality oracle refused an in-place question.
};

const char *remarkKindName(RemarkKind K);

/// One optimization decision, with enough structure for tests to query
/// and for humans to read.
struct Remark {
  std::string Pass;     ///< Producing pass ("interference", "cemit"...).
  RemarkKind Kind = RemarkKind::EdgeAdded;
  SourceLoc Loc;        ///< Source position when one is known.
  std::string Function; ///< Enclosing function name ("" = module-wide).
  std::string Message;  ///< Human-readable, self-contained.
  /// Machine-readable key/value arguments ("var" -> "a.2", "bytes" ->
  /// "800"), preserved in order.
  std::vector<std::pair<std::string, std::string>> Args;

  const std::string *arg(const std::string &Key) const;
  /// "line:col: pass: kind: message [function]" (loc omitted if unknown).
  std::string str() const;
};

/// One timed span on the shared clock.
struct TraceEvent {
  std::string Name;
  std::uint64_t StartMicros = 0;
  std::uint64_t DurMicros = 0;
};

/// Named monotone counters with deterministic (sorted) iteration.
class StatRegistry {
public:
  /// Adds \p Delta to \p Name, creating it at zero first. Seeding with
  /// Delta == 0 registers the name so the key set is input-independent.
  void add(const std::string &Name, std::int64_t Delta = 1) {
    Counters[Name] += Delta;
  }
  std::int64_t get(const std::string &Name) const {
    auto It = Counters.find(Name);
    return It == Counters.end() ? 0 : It->second;
  }
  bool has(const std::string &Name) const { return Counters.count(Name); }
  const std::map<std::string, std::int64_t> &all() const { return Counters; }

  // --- Latency histograms. Counters answer "how many"; these answer
  // "how long, distributionally". They share the registry so the
  // service's per-request -> aggregate fold stays a single merge().
  // Histogram names are *not* part of the pinned counter schema.

  /// Records one sample into the named fixed log2-bucket histogram,
  /// creating it on first use.
  void sample(const std::string &Name, std::uint64_t Value) {
    Hists[Name].record(Value);
  }
  /// The named histogram, or nullptr if nothing was ever sampled.
  const LatencyHistogram *histogram(const std::string &Name) const {
    auto It = Hists.find(Name);
    return It == Hists.end() ? nullptr : &It->second;
  }
  const std::map<std::string, LatencyHistogram> &histograms() const {
    return Hists;
  }

  /// Merges \p Other into this registry (used by the bench harness to
  /// fold per-program observers into one suite-wide block, and by the
  /// service to fold per-request registries into the aggregate).
  void merge(const StatRegistry &Other) {
    for (const auto &[Name, Value] : Other.Counters)
      Counters[Name] += Value;
    for (const auto &[Name, Hist] : Other.Hists)
      Hists[Name].merge(Hist);
  }

private:
  std::map<std::string, std::int64_t> Counters;
  std::map<std::string, LatencyHistogram> Hists;
};

class Observer;

/// RAII wall-clock span: records a TraceEvent into the observer when it
/// is stopped or destroyed. Null observer = pure timer (seconds() still
/// works), so the bench harness can use one clock/format everywhere.
class PassTimer {
public:
  explicit PassTimer(Observer *Obs, std::string Name);
  PassTimer(PassTimer &&O) noexcept;
  PassTimer(const PassTimer &) = delete;
  PassTimer &operator=(const PassTimer &) = delete;
  ~PassTimer() { stop(); }

  /// Ends the span and records it (idempotent).
  void stop();
  /// Elapsed seconds, live while running, frozen after stop().
  double seconds() const;

private:
  Observer *Obs = nullptr;
  std::string Name;
  std::uint64_t Start = 0;
  std::uint64_t End = 0;
  bool Stopped = false;
};

/// The per-compile collection point. Create one, hand it to
/// CompileOptions::Obs (or any pass directly), then serialize.
class Observer {
public:
  StatRegistry Stats;
  std::vector<Remark> Remarks;
  std::vector<TraceEvent> Trace;
  /// (pass name, printed IR) in recording order.
  std::vector<std::pair<std::string, std::string>> IRDumps;

  Observer() : Epoch(nowMicros()) {}

  // --- Remarks.
  void remark(Remark R) { Remarks.push_back(std::move(R)); }
  /// Convenience builder for the common case.
  void remark(const std::string &Pass, RemarkKind Kind,
              const std::string &Function, const std::string &Message,
              std::vector<std::pair<std::string, std::string>> Args = {},
              SourceLoc Loc = {});
  /// Remarks from \p Pass, or all of them when \p Pass is empty.
  std::vector<const Remark *> remarksFor(const std::string &Pass) const;
  unsigned countRemarks(RemarkKind Kind) const;

  // --- Timeline.
  PassTimer time(const std::string &Name) { return PassTimer(this, Name); }
  void record(TraceEvent E) { Trace.push_back(std::move(E)); }

  // --- IR dump hooks (--print-after=<pass> / --print-after-all).
  void requestDump(const std::string &Pass) { DumpAfter.insert(Pass); }
  void requestDumpAll() { DumpAll = true; }
  bool wantsDump(const std::string &Pass) const {
    return DumpAll || DumpAfter.count(Pass);
  }
  bool wantsAnyDump() const { return DumpAll || !DumpAfter.empty(); }
  void recordDump(const std::string &Pass, std::string Text) {
    IRDumps.emplace_back(Pass, std::move(Text));
  }
  /// The recorded dump for \p Pass, or nullptr.
  const std::string *dumpOf(const std::string &Pass) const;

  // --- Serialization.
  /// Machine-readable block: {"counters": {...}, "passes": [...],
  /// "remarks": N, "config": {...}}. Counters are sorted, so two compiles
  /// of one input produce byte-identical counter objects.
  std::string statsJson() const;
  /// Chrome trace-event JSON array (load via chrome://tracing or
  /// ui.perfetto.dev). Timestamps are relative to observer creation.
  std::string traceJson() const;
  /// Remarks one per line, optionally filtered to one pass.
  std::string remarksText(const std::string &PassFilter = "") const;

  /// Observer creation time on the shared clock; trace timestamps are
  /// relative to this.
  std::uint64_t epoch() const { return Epoch; }

private:
  std::uint64_t Epoch = 0;
  std::set<std::string> DumpAfter;
  bool DumpAll = false;
};

/// Null-safe counter bump.
inline void count(Observer *Obs, const char *Name, std::int64_t Delta = 1) {
  if (Obs)
    Obs->Stats.add(Name, Delta);
}

/// Null-safe remark emission.
inline void
remarkTo(Observer *Obs, const std::string &Pass, RemarkKind Kind,
         const std::string &Function, const std::string &Message,
         std::vector<std::pair<std::string, std::string>> Args = {},
         SourceLoc Loc = {}) {
  if (Obs)
    Obs->remark(Pass, Kind, Function, Message, std::move(Args), Loc);
}

/// Escapes a string for inclusion in a JSON string literal.
std::string jsonEscape(const std::string &S);

/// The hardware/config provenance block benchmarks embed next to their
/// numbers: platform, architecture, compiler, build flavor, pointer width.
std::string hardwareConfigJson();

} // namespace matcoal

#endif // MATCOAL_OBSERVE_OBSERVE_H
