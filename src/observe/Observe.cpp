//===- Observe.cpp --------------------------------------------------------===//

#include "observe/Observe.h"

#include <chrono>
#include <cstdio>
#include <sstream>

using namespace matcoal;

std::uint64_t matcoal::nowMicros() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const char *matcoal::remarkKindName(RemarkKind K) {
  switch (K) {
  case RemarkKind::EdgeAdded:
    return "edge-added";
  case RemarkKind::EdgeDischarged:
    return "edge-discharged";
  case RemarkKind::PhiCoalesced:
    return "phi-coalesced";
  case RemarkKind::ColorAssigned:
    return "color-assigned";
  case RemarkKind::GroupStack:
    return "group-stack";
  case RemarkKind::GroupHeap:
    return "group-heap";
  case RemarkKind::GroupPromoted:
    return "group-promoted";
  case RemarkKind::CheckElided:
    return "check-elided";
  case RemarkKind::RegionFused:
    return "region-fused";
  case RemarkKind::Degraded:
    return "degraded";
  case RemarkKind::PlanDrift:
    return "plan-drift";
  case RemarkKind::InPlaceProven:
    return "inplace-proven";
  case RemarkKind::InPlaceRefused:
    return "inplace-refused";
  }
  return "unknown";
}

const std::string *Remark::arg(const std::string &Key) const {
  for (const auto &[K, V] : Args)
    if (K == Key)
      return &V;
  return nullptr;
}

std::string Remark::str() const {
  std::ostringstream OS;
  if (Loc.isValid())
    OS << Loc.str() << ": ";
  OS << Pass << ": " << remarkKindName(Kind) << ": " << Message;
  if (!Function.empty())
    OS << " [" << Function << "]";
  return OS.str();
}

//===----------------------------------------------------------------------===//
// PassTimer
//===----------------------------------------------------------------------===//

PassTimer::PassTimer(Observer *Obs, std::string Name)
    : Obs(Obs), Name(std::move(Name)), Start(nowMicros()) {}

PassTimer::PassTimer(PassTimer &&O) noexcept
    : Obs(O.Obs), Name(std::move(O.Name)), Start(O.Start), End(O.End),
      Stopped(O.Stopped) {
  O.Obs = nullptr; // The moved-from timer must not record.
  O.Stopped = true;
}

void PassTimer::stop() {
  if (Stopped)
    return;
  Stopped = true;
  End = nowMicros();
  if (Obs)
    Obs->record(TraceEvent{Name, Start, End - Start});
}

double PassTimer::seconds() const {
  std::uint64_t Until = Stopped ? End : nowMicros();
  return static_cast<double>(Until - Start) / 1e6;
}

//===----------------------------------------------------------------------===//
// Observer
//===----------------------------------------------------------------------===//

void Observer::remark(const std::string &Pass, RemarkKind Kind,
                      const std::string &Function,
                      const std::string &Message,
                      std::vector<std::pair<std::string, std::string>> Args,
                      SourceLoc Loc) {
  Remark R;
  R.Pass = Pass;
  R.Kind = Kind;
  R.Loc = Loc;
  R.Function = Function;
  R.Message = Message;
  R.Args = std::move(Args);
  Remarks.push_back(std::move(R));
}

std::vector<const Remark *>
Observer::remarksFor(const std::string &Pass) const {
  std::vector<const Remark *> Out;
  for (const Remark &R : Remarks)
    if (Pass.empty() || R.Pass == Pass)
      Out.push_back(&R);
  return Out;
}

unsigned Observer::countRemarks(RemarkKind Kind) const {
  unsigned N = 0;
  for (const Remark &R : Remarks)
    N += R.Kind == Kind;
  return N;
}

const std::string *Observer::dumpOf(const std::string &Pass) const {
  for (const auto &[P, Text] : IRDumps)
    if (P == Pass)
      return &Text;
  return nullptr;
}

std::string matcoal::jsonEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '\\':
      Out += "\\\\";
      break;
    case '"':
      Out += "\\\"";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\t':
      Out += "\\t";
      break;
    case '\r':
      Out += "\\r";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20) {
        char Buf[8];
        std::snprintf(Buf, sizeof(Buf), "\\u%04x", C);
        Out += Buf;
      } else {
        Out += C;
      }
    }
  }
  return Out;
}

std::string Observer::statsJson() const {
  std::ostringstream OS;
  OS << "{\n  \"counters\": {";
  bool First = true;
  for (const auto &[Name, Value] : Stats.all()) {
    OS << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Name)
       << "\": " << Value;
    First = false;
  }
  OS << "\n  },\n  \"passes\": [";
  // Aggregate spans by name, in first-appearance order (the pipeline
  // order), so the block reads like the pipeline.
  std::vector<std::string> Order;
  std::map<std::string, std::pair<unsigned, std::uint64_t>> Agg;
  for (const TraceEvent &E : Trace) {
    auto [It, Inserted] = Agg.emplace(E.Name, std::make_pair(0u, 0ull));
    if (Inserted)
      Order.push_back(E.Name);
    ++It->second.first;
    It->second.second += E.DurMicros;
  }
  First = true;
  for (const std::string &Name : Order) {
    const auto &[Calls, Micros] = Agg[Name];
    OS << (First ? "\n" : ",\n") << "    {\"name\": \"" << jsonEscape(Name)
       << "\", \"calls\": " << Calls << ", \"wall_us\": " << Micros << "}";
    First = false;
  }
  OS << "\n  ],\n  \"histograms\": {";
  First = true;
  for (const auto &[Name, Hist] : Stats.histograms()) {
    char P50[32], P95[32], P99[32];
    std::snprintf(P50, sizeof(P50), "%.6g", Hist.quantile(0.5));
    std::snprintf(P95, sizeof(P95), "%.6g", Hist.quantile(0.95));
    std::snprintf(P99, sizeof(P99), "%.6g", Hist.quantile(0.99));
    OS << (First ? "\n" : ",\n") << "    \"" << jsonEscape(Name)
       << "\": {\"count\": " << Hist.count() << ", \"sum\": " << Hist.sum()
       << ", \"max\": " << Hist.max() << ", \"p50\": " << P50
       << ", \"p95\": " << P95 << ", \"p99\": " << P99 << "}";
    First = false;
  }
  OS << "\n  },\n  \"remarks\": " << Remarks.size()
     << ",\n  \"config\": " << hardwareConfigJson() << "\n}\n";
  return OS.str();
}

std::string Observer::traceJson() const {
  // The Chrome trace-event "JSON array format": complete ("X") events
  // with microsecond timestamps. Loadable in chrome://tracing and
  // ui.perfetto.dev as-is.
  std::ostringstream OS;
  OS << "[\n";
  bool First = true;
  for (const TraceEvent &E : Trace) {
    std::uint64_t Ts = E.StartMicros >= Epoch ? E.StartMicros - Epoch : 0;
    OS << (First ? "" : ",\n") << "{\"name\": \"" << jsonEscape(E.Name)
       << "\", \"cat\": \"matcoal\", \"ph\": \"X\", \"ts\": " << Ts
       << ", \"dur\": " << E.DurMicros << ", \"pid\": 1, \"tid\": 1}";
    First = false;
  }
  OS << "\n]\n";
  return OS.str();
}

std::string Observer::remarksText(const std::string &PassFilter) const {
  std::string Out;
  for (const Remark &R : Remarks) {
    if (!PassFilter.empty() && R.Pass != PassFilter)
      continue;
    Out += "remark: " + R.str() + "\n";
  }
  return Out;
}

std::string matcoal::hardwareConfigJson() {
  std::ostringstream OS;
  const char *Platform =
#if defined(__linux__)
      "linux";
#elif defined(__APPLE__)
      "darwin";
#elif defined(_WIN32)
      "windows";
#else
      "unknown";
#endif
  const char *Arch =
#if defined(__x86_64__) || defined(_M_X64)
      "x86_64";
#elif defined(__aarch64__)
      "aarch64";
#else
      "unknown";
#endif
  OS << "{\"platform\": \"" << Platform << "\", \"arch\": \"" << Arch
     << "\", \"compiler\": \"";
#if defined(__clang__)
  OS << "clang " << __clang_major__ << "." << __clang_minor__;
#elif defined(__GNUC__)
  OS << "gcc " << __GNUC__ << "." << __GNUC_MINOR__;
#else
  OS << "unknown";
#endif
  OS << "\", \"build\": \"";
#ifdef NDEBUG
  OS << "optimized";
#else
  OS << "asserts";
#endif
  OS << "\", \"pointer_bits\": " << sizeof(void *) * 8
     << ", \"cxx\": " << __cplusplus << "}";
  return OS.str();
}
