//===- FlightRecorder.h - Lock-free ring of recent service events -*- C++ -*-=//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size, lock-free ring buffer of recent span and trap events --
/// the service's black box. Workers append with one atomic fetch_add and
/// a seqlock-stamped slot write (no mutex, no allocation, fixed-width
/// char payloads), so recording costs little even under a storm. The
/// ring is dumped as structured JSON on trap, deadline expiry, shutdown,
/// or the matcoald `dump` op, turning post-mortems of "what was in
/// flight when that deadline fired?" into a file read.
///
/// Consistency contract: the ring is *lossy by construction*. Each slot
/// carries a sequence stamp written odd before and even (ticket-derived)
/// after the payload; a reader copies the slot and keeps it only if the
/// stamp was the expected even value and unchanged across the copy, so a
/// slot overwritten mid-read (the writer lapped the reader) is skipped,
/// never emitted torn. The payload itself is stored as relaxed atomic
/// words, so concurrent record/dump is race-free under the C++ memory
/// model (and under TSan) -- the stamp protocol supplies ordering, the
/// word atomics supply freedom from tearing.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_OBSERVE_FLIGHTRECORDER_H
#define MATCOAL_OBSERVE_FLIGHTRECORDER_H

#include <atomic>
#include <cstdint>
#include <string>

namespace matcoal {

class FlightRecorder {
public:
  /// Ring capacity; power of two so the slot index is a mask.
  static constexpr std::size_t Capacity = 256;

  FlightRecorder() = default;
  FlightRecorder(const FlightRecorder &) = delete;
  FlightRecorder &operator=(const FlightRecorder &) = delete;

  /// Appends one event. Lock-free; truncates oversized strings to the
  /// fixed field widths. \p Worker is the lane (-1 = out of pool).
  void record(const char *Kind, const std::string &RequestId,
              const std::string &Name, const std::string &Detail,
              int Worker);

  /// Events recorded over the recorder's lifetime (including any the
  /// ring has since overwritten).
  std::uint64_t recorded() const {
    return Next.load(std::memory_order_relaxed);
  }

  /// The surviving ring contents, oldest first, as a JSON object:
  /// {"recorded": N, "capacity": C, "events": [{"seq", "t_us", "kind",
  /// "request_id", "name", "worker", "detail"}, ...]}. Slots caught
  /// mid-write are skipped.
  std::string dumpJson() const;

  /// The fixed-width slot payload (exposed for the unit tests that pin
  /// truncation behavior).
  struct Payload {
    char Kind[16];
    char RequestId[40];
    char Name[48];
    char Detail[96];
    std::uint64_t Micros;
    std::int64_t Ticket;
    std::int64_t Worker;
  };

private:
  static constexpr std::size_t kWords =
      (sizeof(Payload) + sizeof(std::uint64_t) - 1) / sizeof(std::uint64_t);
  struct Slot {
    std::atomic<std::uint64_t> Seq{0}; // Odd while a writer is inside.
    std::atomic<std::uint64_t> Words[kWords] = {};
  };

  Slot Ring[Capacity];
  std::atomic<std::uint64_t> Next{0};
};

} // namespace matcoal

#endif // MATCOAL_OBSERVE_FLIGHTRECORDER_H
