//===- FlightRecorder.cpp - Lock-free ring of recent service events -------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "observe/FlightRecorder.h"

#include "observe/Observe.h"

#include <algorithm>
#include <cstring>
#include <sstream>

namespace matcoal {

namespace {

void copyField(char *Dst, std::size_t Cap, const char *Src) {
  std::size_t N = std::strlen(Src);
  if (N >= Cap)
    N = Cap - 1;
  std::memcpy(Dst, Src, N);
  Dst[N] = '\0';
}

} // namespace

void FlightRecorder::record(const char *Kind, const std::string &RequestId,
                            const std::string &Name,
                            const std::string &Detail, int Worker) {
  // Build the fixed-width payload off to the side, then publish it word
  // by word under the seqlock stamp.
  Payload P{};
  copyField(P.Kind, sizeof(P.Kind), Kind);
  copyField(P.RequestId, sizeof(P.RequestId), RequestId.c_str());
  copyField(P.Name, sizeof(P.Name), Name.c_str());
  copyField(P.Detail, sizeof(P.Detail), Detail.c_str());
  P.Micros = nowMicros();
  P.Worker = Worker;

  std::uint64_t Ticket = Next.fetch_add(1, std::memory_order_relaxed);
  P.Ticket = static_cast<std::int64_t>(Ticket);
  std::uint64_t Words[kWords] = {};
  std::memcpy(Words, &P, sizeof(P));

  Slot &S = Ring[Ticket & (Capacity - 1)];
  S.Seq.store(Ticket * 2 + 1, std::memory_order_release);
  for (std::size_t I = 0; I < kWords; ++I)
    S.Words[I].store(Words[I], std::memory_order_relaxed);
  // The even, ticket-derived stamp tells readers *which* write finished,
  // not just that some write did.
  S.Seq.store(Ticket * 2 + 2, std::memory_order_release);
}

std::string FlightRecorder::dumpJson() const {
  std::uint64_t Total = Next.load(std::memory_order_acquire);
  std::uint64_t Live = std::min<std::uint64_t>(Total, Capacity);
  std::uint64_t Oldest = Total - Live;

  std::ostringstream OS;
  OS << "{\"recorded\": " << Total << ", \"capacity\": " << Capacity
     << ", \"events\": [";
  bool First = true;
  for (std::uint64_t T = Oldest; T < Total; ++T) {
    const Slot &S = Ring[T & (Capacity - 1)];
    std::uint64_t Before = S.Seq.load(std::memory_order_acquire);
    if (Before != T * 2 + 2)
      continue; // Mid-write, or the slot was lapped past this ticket.
    std::uint64_t Words[kWords];
    for (std::size_t I = 0; I < kWords; ++I)
      Words[I] = S.Words[I].load(std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_acquire);
    if (S.Seq.load(std::memory_order_relaxed) != Before)
      continue; // Overwritten while copying; drop rather than emit torn.
    Payload P{};
    std::memcpy(&P, Words, sizeof(P));
    if (!First)
      OS << ", ";
    First = false;
    OS << "{\"seq\": " << P.Ticket << ", \"t_us\": " << P.Micros
       << ", \"kind\": \"" << jsonEscape(P.Kind) << "\", \"request_id\": \""
       << jsonEscape(P.RequestId) << "\", \"name\": \"" << jsonEscape(P.Name)
       << "\", \"worker\": " << P.Worker << ", \"detail\": \""
       << jsonEscape(P.Detail) << "\"}";
  }
  OS << "]}";
  return OS.str();
}

} // namespace matcoal
