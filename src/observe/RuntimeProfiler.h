//===- RuntimeProfiler.h - Runtime storage observability --------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime half of the observability story. PR 3's telemetry stops at
/// compile time; this layer records what the planned storage areas actually
/// do while a program runs.
///
/// A `RuntimeProfiler` is an event recorder. Executors (VM, interpreter) and
/// profiled compiled C (`--emit-profiling` + the `mcrt_prof_*` hooks) feed it
/// alloc / resize / free / pool-reuse / in-place / steal / trap events keyed
/// by (function, storage group, slot) and stamped with a deterministic
/// **op-clock** -- the count of executed ops, not wall time -- so two runs of
/// one program produce byte-identical event streams.
///
/// From the events it derives:
///  * **Memory timelines** (`MemTimeline`): per-slot size-over-op-clock
///    curves with high-water marks and lifetime intervals.
///  * A **plan-vs-actual drift report**: each StoragePlan group's predicted
///    size class (stack vs heap, symbolic bound) compared against the
///    observed peak and resize count, with remarks for groups that resized,
///    were over-provisioned, or could have been stack-promoted.
///  * **Chrome-trace export** with a memory counter track ("ph":"C") that
///    renders the timelines in chrome://tracing / Perfetto.
///
/// The same JSON event envelope is produced by the VM (`eventsJson`) and by
/// profiled compiled programs (mcrt), and `loadEventsJson` replays either
/// back into a profiler -- that round trip is how the tiers are compared.
///
/// **Thread-safety contract (matcoald): per-session.** A RuntimeProfiler
/// records the op-clocked stream of exactly one execution; it takes no
/// locks and must not be attached to runs on two threads at once. The
/// service allocates one per request next to the request's Observer.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_OBSERVE_RUNTIMEPROFILER_H
#define MATCOAL_OBSERVE_RUNTIMEPROFILER_H

#include "support/Diagnostics.h"

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

namespace matcoal {

class Observer;

/// What a runtime storage event records.
enum class ProfEventKind {
  Alloc,     ///< A slot first materialized (or re-materialized after free).
  Resize,    ///< A live slot changed size.
  Free,      ///< A slot's storage was released (frame pop / rebind).
  PoolReuse, ///< The buffer pool served an allocation from its free list.
  InPlace,   ///< An op wrote its result into an existing buffer.
  Steal,     ///< A result buffer was stolen from a dead operand's group.
  Trap,      ///< The run ended in a runtime trap.
};

const char *profEventKindName(ProfEventKind K);

/// One recorded storage event.
struct ProfEvent {
  std::uint64_t Clock = 0; ///< Deterministic op-clock stamp.
  ProfEventKind Kind = ProfEventKind::Alloc;
  std::string Function; ///< Enclosing function ("" = unknown).
  int Group = -1;       ///< StoragePlan group id; -1 = unplanned storage.
  std::string Slot;     ///< "g<N>" for groups, the variable name otherwise.
  std::int64_t Bytes = 0; ///< Slot size after the event.
  std::int64_t Delta = 0; ///< Size change the event caused.
  std::string Note;       ///< Free text (trap message).
};

/// The derived size-over-time curve for one storage slot.
struct MemTimeline {
  std::string Function;
  int Group = -1;
  std::string Slot;
  /// (op-clock, bytes) -- one point per size *change*, not per touch.
  std::vector<std::pair<std::uint64_t, std::int64_t>> Points;
  std::int64_t HwmBytes = 0;  ///< Peak observed size.
  std::int64_t CurBytes = 0;  ///< Size after the last event.
  std::uint64_t FirstClock = 0, LastClock = 0; ///< Lifetime interval.
  unsigned Allocs = 0, Resizes = 0, Frees = 0;
  unsigned InPlaceHits = 0, Steals = 0;
};

/// What the compiler *planned* for one storage group -- the static side of
/// the drift report. Built from a StoragePlan by the driver
/// (`plannedGroupInfo`); kept dependency-free here so observe stays below
/// gctd in the layering.
struct PlannedGroupInfo {
  std::string Function;
  int Group = -1;
  bool Stack = false;          ///< Bound to a fixed frame slot?
  std::int64_t PlannedBytes = 0; ///< Stack slot size; 0 for heap groups.
  std::string SizeExpr;        ///< Symbolic size bound ("" = unknown).
  std::string Members;         ///< Space-joined member variable names.
  SourceLoc Loc;               ///< First definition of any member.
};

/// The event recorder plus everything derived from it.
class RuntimeProfiler {
public:
  /// Records the observed size of a slot at \p Clock. Derives the event
  /// kind itself: first sighting -> Alloc, changed size -> Resize,
  /// unchanged -> no event (timelines store changes only).
  void size(std::uint64_t Clock, const std::string &Fn, int Group,
            const std::string &Slot, std::int64_t Bytes);

  /// Records a non-size event. Free zeroes the slot's running size;
  /// InPlace/Steal bump the slot's hit counters; PoolReuse and Trap attach
  /// to the run, not a slot.
  void event(ProfEventKind Kind, std::uint64_t Clock, const std::string &Fn,
             int Group, const std::string &Slot, std::int64_t Bytes = 0,
             const std::string &Note = "");

  void clear();

  /// Caps the *stored* raw event stream (timelines, counters, and HWMs
  /// stay exact past the cap; only the replayable event list truncates).
  /// Long-running programs emit millions of in-place events; the default
  /// keeps profile JSON in the tens of megabytes. Truncation is never
  /// silent: the envelope carries "events_dropped".
  void setMaxStoredEvents(std::uint64_t N) { MaxStoredEvents = N; }
  std::uint64_t droppedEvents() const { return DroppedEvents; }

  const std::vector<ProfEvent> &events() const { return Events; }
  /// Timelines sorted by (function, group, slot) for deterministic output.
  std::vector<const MemTimeline *> timelines() const;
  /// The timeline for (\p Fn, \p Group, \p Slot), or nullptr.
  const MemTimeline *timelineFor(const std::string &Fn, int Group,
                                 const std::string &Slot) const;
  /// Peak bytes held across *all* tracked slots simultaneously.
  std::int64_t totalHwmBytes() const { return TotalHwm; }
  std::uint64_t poolReuses() const { return PoolReuses; }
  bool trapped() const { return Trapped; }

  // --- Serialization.
  /// The portable event-stream envelope: {"version", "clock": "op",
  /// "source", "events": [...]}. mcrt_prof_* emits the same shape.
  std::string eventsJson(const std::string &SourceTag) const;
  /// Full profile: events + per-slot summaries + totals + hardware config.
  std::string profileJson(const std::string &ProgramLabel,
                          const std::string &SourceTag) const;
  /// Human-readable per-slot timelines.
  std::string timelineText() const;
  /// Chrome trace-event JSON with one counter ("ph":"C") track per slot
  /// plus "mem.total", timestamped on the op-clock. When \p Spans is given
  /// its wall-clock pass spans are included on a separate pid.
  std::string traceJson(const Observer *Spans = nullptr) const;

  /// Replays an eventsJson / mcrt profile stream into this profiler.
  /// Tolerant of the envelope (accepts profileJson output too). Returns
  /// false when no events array was found.
  bool loadEventsJson(const std::string &Text);

  /// The plan-vs-actual drift report. Compares each planned group against
  /// its observed timeline and classifies: matches-plan, resized,
  /// over-provisioned (stack slot at least twice the observed peak),
  /// stack-promotable (heap group whose peak stayed under
  /// \p StackPromoteCapBytes without resizing), never-materialized. Emits
  /// a PlanDrift remark per drifting group into \p Obs when given.
  std::string driftReport(const std::vector<PlannedGroupInfo> &Plan,
                          std::int64_t StackPromoteCapBytes,
                          Observer *Obs = nullptr) const;

private:
  using Key = std::tuple<std::string, int, std::string>;
  std::vector<ProfEvent> Events;
  std::uint64_t MaxStoredEvents = 1u << 18;
  std::uint64_t DroppedEvents = 0;
  std::map<Key, MemTimeline> Timelines;
  std::int64_t TotalCur = 0, TotalHwm = 0;
  std::uint64_t PoolReuses = 0;
  bool Trapped = false;

  MemTimeline &timeline(const std::string &Fn, int Group,
                        const std::string &Slot);
  void store(ProfEvent E);
};

} // namespace matcoal

#endif // MATCOAL_OBSERVE_RUNTIMEPROFILER_H
