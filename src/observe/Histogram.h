//===- Histogram.h - Fixed log2-bucket latency histograms -------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-shape latency histogram with power-of-two bucket boundaries.
///
/// Every histogram in the system -- the service's request-latency families,
/// the ThreadPool's per-chunk durations, the bench harness's run
/// distributions -- shares one bucket layout so merges are plain
/// element-wise adds and the Prometheus exposition is schema-stable:
///
///   bucket 0:  [0, 1)
///   bucket i:  [2^(i-1), 2^i)          for 1 <= i < kBuckets-1
///   bucket 39: [2^38, +inf)            (the overflow bucket)
///
/// Samples are unsigned integers in whatever unit the family name declares
/// (`svc.e2e_us` is microseconds, `rt.threads.chunk_us` likewise). With
/// microsecond samples the finite range tops out above 76 hours, so the
/// overflow bucket is unreachable in practice but keeps record() total.
///
/// Quantile estimates interpolate linearly inside the containing bucket
/// (the same convention Prometheus's histogram_quantile uses), so they are
/// deterministic functions of the bucket counts -- two histograms with
/// equal buckets report equal quantiles, bit for bit.
///
/// Thread-safety: none, by design. Histograms live inside per-session
/// StatRegistries (see Observe.h's contract) or under the service's
/// aggregate mutex; they are merged, never shared.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_OBSERVE_HISTOGRAM_H
#define MATCOAL_OBSERVE_HISTOGRAM_H

#include <array>
#include <cstdint>
#include <string>

namespace matcoal {

class LatencyHistogram {
public:
  static constexpr unsigned kBuckets = 40;

  /// Records one sample. O(1), no allocation.
  void record(std::uint64_t Value) {
    Buckets[bucketOf(Value)] += 1;
    CountV += 1;
    SumV += Value;
    if (Value > MaxV)
      MaxV = Value;
  }

  std::uint64_t count() const { return CountV; }
  std::uint64_t sum() const { return SumV; }
  std::uint64_t max() const { return MaxV; }
  bool empty() const { return CountV == 0; }
  std::uint64_t bucketCount(unsigned I) const { return Buckets[I]; }

  /// The bucket index \p Value lands in: 0 for values < 1, otherwise
  /// 1 + floor(log2(Value)), clamped to the overflow bucket.
  static unsigned bucketOf(std::uint64_t Value) {
    unsigned I = 0;
    while (Value != 0) {
      Value >>= 1;
      ++I;
    }
    return I < kBuckets ? I : kBuckets - 1;
  }

  /// Inclusive-exclusive upper bound of bucket \p I (2^I); the overflow
  /// bucket has no finite bound and reports UINT64_MAX.
  static std::uint64_t bucketUpper(unsigned I) {
    if (I >= kBuckets - 1)
      return ~static_cast<std::uint64_t>(0);
    return static_cast<std::uint64_t>(1) << I;
  }

  /// Lower bound of bucket \p I (0 for bucket 0, else 2^(I-1)).
  static std::uint64_t bucketLower(unsigned I) {
    return I == 0 ? 0 : static_cast<std::uint64_t>(1) << (I - 1);
  }

  /// Quantile estimate for \p Q in [0, 1]: finds the bucket holding the
  /// Q-th ranked sample and interpolates linearly within its bounds.
  /// Returns 0 for an empty histogram. Deterministic given the buckets.
  double quantile(double Q) const {
    if (CountV == 0)
      return 0.0;
    if (Q < 0.0)
      Q = 0.0;
    if (Q > 1.0)
      Q = 1.0;
    // Rank of the target sample, 1-based; Q=0 maps to the first sample.
    double Rank = Q * static_cast<double>(CountV);
    if (Rank < 1.0)
      Rank = 1.0;
    std::uint64_t Cum = 0;
    for (unsigned I = 0; I < kBuckets; ++I) {
      if (Buckets[I] == 0)
        continue;
      std::uint64_t Next = Cum + Buckets[I];
      if (static_cast<double>(Next) >= Rank) {
        double Lo = static_cast<double>(bucketLower(I));
        // The overflow bucket has no finite width; report its lower edge.
        if (I == kBuckets - 1)
          return Lo;
        double Hi = static_cast<double>(bucketUpper(I));
        double Within = (Rank - static_cast<double>(Cum)) /
                        static_cast<double>(Buckets[I]);
        return Lo + (Hi - Lo) * Within;
      }
      Cum = Next;
    }
    return static_cast<double>(bucketLower(kBuckets - 1)); // Unreachable.
  }

  /// Element-wise fold of \p Other into this histogram.
  void merge(const LatencyHistogram &Other) {
    for (unsigned I = 0; I < kBuckets; ++I)
      Buckets[I] += Other.Buckets[I];
    CountV += Other.CountV;
    SumV += Other.SumV;
    if (Other.MaxV > MaxV)
      MaxV = Other.MaxV;
  }

  /// Prometheus text exposition for one histogram family: cumulative
  /// `<family>_bucket{le="..."}` lines up through the highest occupied
  /// bucket plus `le="+Inf"`, then `_sum`, `_count`, and p50/p95/p99
  /// `<family>{quantile="..."}` gauge lines. \p Family must already be a
  /// legal metric name (underscores, no dots).
  std::string prometheusText(const std::string &Family) const;

private:
  std::array<std::uint64_t, kBuckets> Buckets{};
  std::uint64_t CountV = 0;
  std::uint64_t SumV = 0;
  std::uint64_t MaxV = 0;
};

} // namespace matcoal

#endif // MATCOAL_OBSERVE_HISTOGRAM_H
