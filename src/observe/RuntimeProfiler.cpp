//===- RuntimeProfiler.cpp - Runtime storage observability ----------------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "observe/RuntimeProfiler.h"

#include "observe/Observe.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

namespace matcoal {

const char *profEventKindName(ProfEventKind K) {
  switch (K) {
  case ProfEventKind::Alloc:
    return "alloc";
  case ProfEventKind::Resize:
    return "resize";
  case ProfEventKind::Free:
    return "free";
  case ProfEventKind::PoolReuse:
    return "pool_reuse";
  case ProfEventKind::InPlace:
    return "in_place";
  case ProfEventKind::Steal:
    return "steal";
  case ProfEventKind::Trap:
    return "trap";
  }
  return "unknown";
}

static bool profEventKindFromName(const std::string &Name, ProfEventKind &K) {
  for (ProfEventKind C :
       {ProfEventKind::Alloc, ProfEventKind::Resize, ProfEventKind::Free,
        ProfEventKind::PoolReuse, ProfEventKind::InPlace, ProfEventKind::Steal,
        ProfEventKind::Trap}) {
    if (Name == profEventKindName(C)) {
      K = C;
      return true;
    }
  }
  return false;
}

void RuntimeProfiler::store(ProfEvent E) {
  if (Events.size() >= MaxStoredEvents) {
    ++DroppedEvents;
    return;
  }
  Events.push_back(std::move(E));
}

MemTimeline &RuntimeProfiler::timeline(const std::string &Fn, int Group,
                                       const std::string &Slot) {
  MemTimeline &T = Timelines[Key(Fn, Group, Slot)];
  if (T.Slot.empty() && T.Points.empty()) {
    T.Function = Fn;
    T.Group = Group;
    T.Slot = Slot;
  }
  return T;
}

void RuntimeProfiler::size(std::uint64_t Clock, const std::string &Fn,
                           int Group, const std::string &Slot,
                           std::int64_t Bytes) {
  MemTimeline &T = timeline(Fn, Group, Slot);
  bool First = T.Points.empty();
  if (!First && Bytes == T.CurBytes)
    return; // Timelines record changes, not touches.

  ProfEvent E;
  E.Clock = Clock;
  // A slot coming back from zero starts a new lifetime, not a resize.
  E.Kind = (First || T.CurBytes == 0) ? ProfEventKind::Alloc
                                      : ProfEventKind::Resize;
  E.Function = Fn;
  E.Group = Group;
  E.Slot = Slot;
  E.Bytes = Bytes;
  E.Delta = Bytes - T.CurBytes;

  TotalCur += E.Delta;
  TotalHwm = std::max(TotalHwm, TotalCur);
  T.CurBytes = Bytes;
  T.HwmBytes = std::max(T.HwmBytes, Bytes);
  if (First)
    T.FirstClock = Clock;
  T.LastClock = Clock;
  T.Points.emplace_back(Clock, Bytes);
  if (E.Kind == ProfEventKind::Alloc)
    ++T.Allocs;
  else
    ++T.Resizes;
  store(std::move(E));
}

void RuntimeProfiler::event(ProfEventKind Kind, std::uint64_t Clock,
                            const std::string &Fn, int Group,
                            const std::string &Slot, std::int64_t Bytes,
                            const std::string &Note) {
  if (Kind == ProfEventKind::Alloc || Kind == ProfEventKind::Resize)
    return size(Clock, Fn, Group, Slot, Bytes); // kind is re-derived

  ProfEvent E;
  E.Clock = Clock;
  E.Kind = Kind;
  E.Function = Fn;
  E.Group = Group;
  E.Slot = Slot;
  E.Bytes = Bytes;
  E.Note = Note;

  switch (Kind) {
  case ProfEventKind::Free: {
    MemTimeline &T = timeline(Fn, Group, Slot);
    E.Delta = -T.CurBytes;
    E.Bytes = 0;
    TotalCur -= T.CurBytes;
    if (T.CurBytes != 0)
      T.Points.emplace_back(Clock, 0);
    T.CurBytes = 0;
    ++T.Frees;
    T.LastClock = Clock;
    break;
  }
  case ProfEventKind::InPlace: {
    MemTimeline &T = timeline(Fn, Group, Slot);
    ++T.InPlaceHits;
    T.LastClock = Clock;
    break;
  }
  case ProfEventKind::Steal: {
    MemTimeline &T = timeline(Fn, Group, Slot);
    ++T.Steals;
    T.LastClock = Clock;
    break;
  }
  case ProfEventKind::PoolReuse:
    ++PoolReuses;
    break;
  case ProfEventKind::Trap:
    Trapped = true;
    break;
  case ProfEventKind::Alloc:
  case ProfEventKind::Resize:
    break; // handled above
  }
  store(std::move(E));
}

void RuntimeProfiler::clear() {
  Events.clear();
  Timelines.clear();
  TotalCur = TotalHwm = 0;
  DroppedEvents = 0;
  PoolReuses = 0;
  Trapped = false;
}

std::vector<const MemTimeline *> RuntimeProfiler::timelines() const {
  std::vector<const MemTimeline *> Out;
  Out.reserve(Timelines.size());
  for (const auto &KV : Timelines)
    Out.push_back(&KV.second);
  return Out; // std::map iteration is already (function, group, slot) order
}

const MemTimeline *RuntimeProfiler::timelineFor(const std::string &Fn,
                                                int Group,
                                                const std::string &Slot) const {
  auto It = Timelines.find(Key(Fn, Group, Slot));
  return It == Timelines.end() ? nullptr : &It->second;
}

// --- Serialization -----------------------------------------------------------

static void appendEvent(std::ostringstream &OS, const ProfEvent &E,
                        bool First) {
  if (!First)
    OS << ",\n";
  OS << "    {\"clock\": " << E.Clock << ", \"kind\": \""
     << profEventKindName(E.Kind) << "\", \"function\": \""
     << jsonEscape(E.Function) << "\", \"group\": " << E.Group
     << ", \"slot\": \"" << jsonEscape(E.Slot) << "\", \"bytes\": " << E.Bytes
     << ", \"delta\": " << E.Delta;
  if (!E.Note.empty())
    OS << ", \"note\": \"" << jsonEscape(E.Note) << "\"";
  OS << "}";
}

static void appendEventsArray(std::ostringstream &OS,
                              const std::vector<ProfEvent> &Events) {
  OS << "[\n";
  for (size_t I = 0; I < Events.size(); ++I)
    appendEvent(OS, Events[I], I == 0);
  OS << "\n  ]";
}

std::string RuntimeProfiler::eventsJson(const std::string &SourceTag) const {
  std::ostringstream OS;
  OS << "{\n  \"version\": 1,\n  \"clock\": \"op\",\n  \"source\": \""
     << jsonEscape(SourceTag) << "\",\n  \"events_dropped\": "
     << DroppedEvents << ",\n  \"events\": ";
  appendEventsArray(OS, Events);
  OS << "\n}\n";
  return OS.str();
}

std::string RuntimeProfiler::profileJson(const std::string &ProgramLabel,
                                         const std::string &SourceTag) const {
  std::ostringstream OS;
  OS << "{\n  \"version\": 1,\n  \"program\": \"" << jsonEscape(ProgramLabel)
     << "\",\n  \"source\": \"" << jsonEscape(SourceTag)
     << "\",\n  \"clock\": \"op\",\n  \"total_hwm_bytes\": " << TotalHwm
     << ",\n  \"pool_reuses\": " << PoolReuses
     << ",\n  \"trapped\": " << (Trapped ? "true" : "false")
     << ",\n  \"groups\": [\n";
  bool First = true;
  for (const MemTimeline *T : timelines()) {
    if (!First)
      OS << ",\n";
    First = false;
    OS << "    {\"function\": \"" << jsonEscape(T->Function)
       << "\", \"group\": " << T->Group << ", \"slot\": \""
       << jsonEscape(T->Slot) << "\", \"hwm_bytes\": " << T->HwmBytes
       << ", \"first_clock\": " << T->FirstClock
       << ", \"last_clock\": " << T->LastClock
       << ", \"allocs\": " << T->Allocs << ", \"resizes\": " << T->Resizes
       << ", \"frees\": " << T->Frees << ", \"in_place\": " << T->InPlaceHits
       << ", \"steals\": " << T->Steals << "}";
  }
  OS << "\n  ],\n  \"events_dropped\": " << DroppedEvents
     << ",\n  \"events\": ";
  appendEventsArray(OS, Events);
  OS << ",\n  \"config\": " << hardwareConfigJson() << "\n}\n";
  return OS.str();
}

std::string RuntimeProfiler::timelineText() const {
  std::ostringstream OS;
  OS << "memory timelines (op-clock)\n";
  for (const MemTimeline *T : timelines()) {
    OS << "  " << (T->Function.empty() ? "?" : T->Function) << "/" << T->Slot;
    if (T->Group >= 0)
      OS << " (group " << T->Group << ")";
    OS << ": hwm " << T->HwmBytes << " B, live [" << T->FirstClock << ", "
       << T->LastClock << "], " << T->Allocs << " alloc, " << T->Resizes
       << " resize, " << T->Frees << " free, " << T->InPlaceHits
       << " in-place, " << T->Steals << " steal\n";
    const size_t MaxPoints = 12;
    for (size_t I = 0; I < T->Points.size() && I < MaxPoints; ++I)
      OS << "    @" << T->Points[I].first << "  " << T->Points[I].second
         << " B\n";
    if (T->Points.size() > MaxPoints)
      OS << "    ... (" << (T->Points.size() - MaxPoints) << " more)\n";
  }
  if (Timelines.empty())
    OS << "  (no storage events recorded)\n";
  return OS.str();
}

std::string RuntimeProfiler::traceJson(const Observer *Spans) const {
  std::ostringstream OS;
  OS << "[\n";
  bool First = true;
  auto Sep = [&] {
    if (!First)
      OS << ",\n";
    First = false;
  };
  if (Spans) {
    for (const TraceEvent &E : Spans->Trace) {
      Sep();
      std::uint64_t Rel =
          E.StartMicros >= Spans->epoch() ? E.StartMicros - Spans->epoch() : 0;
      OS << "  {\"name\": \"" << jsonEscape(E.Name)
         << "\", \"cat\": \"matcoal\", \"ph\": \"X\", \"ts\": " << Rel
         << ", \"dur\": " << E.DurMicros << ", \"pid\": 1, \"tid\": 1}";
    }
  }
  // The memory counter track. One series per slot (from the change points)
  // plus a running total rebuilt from the event deltas, all on the op-clock.
  for (const MemTimeline *T : timelines()) {
    std::string Name = "mem." + (T->Function.empty() ? "?" : T->Function) +
                       "." + T->Slot;
    for (const auto &P : T->Points) {
      Sep();
      OS << "  {\"name\": \"" << jsonEscape(Name)
         << "\", \"cat\": \"mem\", \"ph\": \"C\", \"ts\": " << P.first
         << ", \"pid\": 2, \"tid\": 1, \"args\": {\"bytes\": " << P.second
         << "}}";
    }
  }
  std::int64_t Running = 0;
  for (const ProfEvent &E : Events) {
    if (E.Delta == 0)
      continue;
    Running += E.Delta;
    Sep();
    OS << "  {\"name\": \"mem.total\", \"cat\": \"mem\", \"ph\": \"C\", "
          "\"ts\": "
       << E.Clock << ", \"pid\": 2, \"tid\": 1, \"args\": {\"bytes\": "
       << Running << "}}";
  }
  OS << "\n]\n";
  return OS.str();
}

// --- Event-stream parsing ----------------------------------------------------
//
// A deliberately small scanner for the one JSON shape we emit ourselves
// (both from eventsJson/profileJson and from mcrt_prof_*). Not a general
// JSON parser; tolerant of unknown fields and whitespace.

static bool findFieldValue(const std::string &Obj, const std::string &Name,
                           size_t &ValueStart) {
  std::string Needle = "\"" + Name + "\"";
  size_t P = 0;
  while ((P = Obj.find(Needle, P)) != std::string::npos) {
    size_t Q = P + Needle.size();
    while (Q < Obj.size() && (Obj[Q] == ' ' || Obj[Q] == '\t'))
      ++Q;
    if (Q < Obj.size() && Obj[Q] == ':') {
      ++Q;
      while (Q < Obj.size() && (Obj[Q] == ' ' || Obj[Q] == '\t'))
        ++Q;
      ValueStart = Q;
      return true;
    }
    P = Q;
  }
  return false;
}

static bool findIntField(const std::string &Obj, const std::string &Name,
                         long long &Out) {
  size_t Q;
  if (!findFieldValue(Obj, Name, Q))
    return false;
  bool Neg = false;
  if (Q < Obj.size() && Obj[Q] == '-') {
    Neg = true;
    ++Q;
  }
  if (Q >= Obj.size() || Obj[Q] < '0' || Obj[Q] > '9')
    return false;
  long long V = 0;
  while (Q < Obj.size() && Obj[Q] >= '0' && Obj[Q] <= '9')
    V = V * 10 + (Obj[Q++] - '0');
  Out = Neg ? -V : V;
  return true;
}

static bool findStringField(const std::string &Obj, const std::string &Name,
                            std::string &Out) {
  size_t Q;
  if (!findFieldValue(Obj, Name, Q) || Q >= Obj.size() || Obj[Q] != '"')
    return false;
  ++Q;
  Out.clear();
  while (Q < Obj.size() && Obj[Q] != '"') {
    if (Obj[Q] == '\\' && Q + 1 < Obj.size()) {
      char C = Obj[Q + 1];
      switch (C) {
      case 'n':
        Out += '\n';
        break;
      case 't':
        Out += '\t';
        break;
      case 'r':
        Out += '\r';
        break;
      default:
        Out += C;
        break;
      }
      Q += 2;
    } else {
      Out += Obj[Q++];
    }
  }
  return true;
}

bool RuntimeProfiler::loadEventsJson(const std::string &Text) {
  size_t EventsPos = Text.find("\"events\"");
  if (EventsPos == std::string::npos)
    return false;
  size_t ArrStart = Text.find('[', EventsPos);
  if (ArrStart == std::string::npos)
    return false;

  size_t P = ArrStart + 1;
  int Depth = 0;
  bool InString = false;
  size_t ObjStart = 0;
  for (; P < Text.size(); ++P) {
    char C = Text[P];
    if (InString) {
      if (C == '\\')
        ++P;
      else if (C == '"')
        InString = false;
      continue;
    }
    if (C == '"') {
      InString = true;
    } else if (C == '{') {
      if (Depth == 0)
        ObjStart = P;
      ++Depth;
    } else if (C == '}') {
      if (--Depth == 0) {
        std::string Obj = Text.substr(ObjStart, P - ObjStart + 1);
        long long Clock = 0, Group = -1, Bytes = 0;
        std::string KindName, Fn, Slot, Note;
        findIntField(Obj, "clock", Clock);
        findIntField(Obj, "group", Group);
        findIntField(Obj, "bytes", Bytes);
        findStringField(Obj, "kind", KindName);
        findStringField(Obj, "function", Fn);
        findStringField(Obj, "slot", Slot);
        findStringField(Obj, "note", Note);
        ProfEventKind K;
        if (KindName == "size" || KindName == "alloc" || KindName == "resize")
          size(std::uint64_t(Clock), Fn, int(Group), Slot, Bytes);
        else if (profEventKindFromName(KindName, K))
          event(K, std::uint64_t(Clock), Fn, int(Group), Slot, Bytes, Note);
      }
    } else if (C == ']' && Depth == 0) {
      break;
    }
  }
  return true;
}

// --- Drift report ------------------------------------------------------------

std::string
RuntimeProfiler::driftReport(const std::vector<PlannedGroupInfo> &Plan,
                             std::int64_t StackPromoteCapBytes,
                             Observer *Obs) const {
  std::ostringstream OS;
  OS << "plan-vs-actual drift report (op-clock)\n";
  unsigned Drifted = 0;
  for (const PlannedGroupInfo &G : Plan) {
    std::string SlotName = "g" + std::to_string(G.Group);
    const MemTimeline *T = timelineFor(G.Function, G.Group, SlotName);

    OS << "  " << G.Function << "/" << SlotName << " "
       << (G.Stack ? "stack" : "heap");
    if (G.Stack)
      OS << " " << G.PlannedBytes << " B";
    else if (!G.SizeExpr.empty())
      OS << " [" << G.SizeExpr << "]";
    if (!G.Members.empty())
      OS << " {" << G.Members << "}";
    OS << ": ";

    std::string Verdict;
    std::vector<std::pair<std::string, std::string>> Args = {
        {"group", std::to_string(G.Group)},
        {"planned", G.Stack ? "stack" : "heap"},
    };
    if (!T || T->Points.empty()) {
      OS << "never materialized";
      Verdict = "never materialized at run time";
    } else {
      OS << "observed hwm " << T->HwmBytes << " B, " << T->Allocs
         << " alloc, " << T->Resizes << " resize";
      Args.emplace_back("hwm_bytes", std::to_string(T->HwmBytes));
      Args.emplace_back("resizes", std::to_string(T->Resizes));
      if (G.Stack) {
        if (T->HwmBytes * 2 <= G.PlannedBytes &&
            G.PlannedBytes - T->HwmBytes >= 64) {
          OS << " -- over-provisioned (planned " << G.PlannedBytes << " B)";
          Verdict = "stack slot over-provisioned: planned " +
                    std::to_string(G.PlannedBytes) + " B, observed peak " +
                    std::to_string(T->HwmBytes) + " B";
        } else {
          OS << " -- matches plan";
        }
      } else {
        if (T->Resizes > 0) {
          OS << " -- resized at run time";
          Verdict = "heap group resized " + std::to_string(T->Resizes) +
                    " time(s) at run time";
        } else if (T->HwmBytes <= StackPromoteCapBytes) {
          OS << " -- stack-promotable (peak under "
             << StackPromoteCapBytes << " B cap, no resizes)";
          Verdict = "heap group stayed at " + std::to_string(T->HwmBytes) +
                    " B with no resizes; could have been stack-promoted";
        } else {
          OS << " -- matches plan";
        }
      }
    }
    OS << "\n";
    if (!Verdict.empty()) {
      ++Drifted;
      remarkTo(Obs, "profile", RemarkKind::PlanDrift, G.Function, Verdict,
               Args, G.Loc);
    }
  }
  // Storage the plan never saw (Extra slots, interpreter variables).
  unsigned Unplanned = 0;
  std::int64_t UnplannedHwm = 0;
  for (const auto &KV : Timelines)
    if (KV.second.Group < 0 && !KV.second.Points.empty()) {
      ++Unplanned;
      UnplannedHwm = std::max(UnplannedHwm, KV.second.HwmBytes);
    }
  if (Unplanned)
    OS << "  unplanned storage: " << Unplanned
       << " slot(s), largest hwm " << UnplannedHwm << " B\n";
  OS << "drift: " << Drifted << " of " << Plan.size()
     << " planned group(s) diverged from plan\n";
  return OS.str();
}

} // namespace matcoal
