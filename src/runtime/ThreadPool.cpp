//===- ThreadPool.cpp - Persistent worker pool for kernel loops -----------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "runtime/ThreadPool.h"

#include "runtime/Value.h"
#include "support/Cancellation.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

using namespace matcoal;

namespace {

thread_local ParConfig ActivePar;

std::uint64_t nowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// One contiguous partition of a region.
struct Partition {
  std::int64_t Lo = 0;
  std::int64_t Hi = 0;
};

/// The process-wide pool. Workers are created lazily up to the largest
/// count any run has asked for (capped at the mcrt pool's 64-thread
/// limit, never at hardware concurrency -- see ensureWorkers) and then
/// persist, mirroring mcrt's generation-stamped pool; a region wakes them
/// all, and workers with no partition this generation just go back to
/// sleep. Region dispatch serializes on RegionMu so concurrent executors
/// (matcoald serves sockets on independent threads) time-share the
/// workers instead of corrupting the dispatch state.
class Pool {
public:
  static Pool &instance() {
    static Pool P;
    return P;
  }

  /// Partitions [0, N) into at most \p Threads contiguous ranges (bounded
  /// by the workers actually available plus the caller), runs \p Body
  /// over all of them -- the caller executes the last partition itself --
  /// and blocks until the region is done. Reports partitions dispatched
  /// and workers newly created through the out-params, rethrows the first
  /// worker exception, and sets \p Cancelled when any partition observed
  /// an expired token.
  void run(std::int64_t N, int Threads,
           const std::function<void(std::int64_t, std::int64_t)> &Body,
           const CancelToken *Cancel, std::uint64_t &PartsOut,
           unsigned &CreatedOut, bool &Cancelled,
           std::vector<std::uint64_t> &PartNsOut) {
    std::lock_guard<std::mutex> Region(RegionMu);
    CreatedOut = ensureWorkers(static_cast<unsigned>(Threads - 1));
    std::int64_t P = std::min<std::int64_t>(
        {static_cast<std::int64_t>(Threads),
         static_cast<std::int64_t>(Workers.size()) + 1, N});
    std::vector<Partition> Parts(static_cast<size_t>(P));
    std::int64_t Base = N / P, Rem = N % P, Lo = 0;
    for (std::int64_t I = 0; I < P; ++I) {
      std::int64_t Hi = Lo + Base + (I < Rem ? 1 : 0);
      Parts[static_cast<size_t>(I)] = {Lo, Hi};
      Lo = Hi;
    }
    PartsOut = static_cast<std::uint64_t>(P);
    // One duration slot per partition. Each slot is written by exactly
    // one thread (worker I writes slot I before its Outstanding
    // decrement; the caller writes the last slot); the DoneCv join
    // publishes the worker slots back to the caller.
    PartNsOut.assign(static_cast<size_t>(P), 0);
    if (P == 1) {
      // No worker available (single-core fallback): run it all here.
      CancelFlag.store(false, std::memory_order_relaxed);
      PartNsOut[0] = runPartition(Parts[0], Body, Cancel);
      Cancelled = CancelFlag.load(std::memory_order_relaxed);
      return;
    }
    {
      std::lock_guard<std::mutex> L(Mu);
      CurParts = &Parts;
      CurPartNs = &PartNsOut;
      CurBody = &Body;
      CurCancel = Cancel;
      CancelFlag.store(false, std::memory_order_relaxed);
      FirstError = nullptr;
      Outstanding = static_cast<unsigned>(P) - 1;
      ++Gen;
    }
    WorkCv.notify_all();
    // The caller is partition P-1; it polls the shared cancel flag like
    // any worker so one expiry stops every partition promptly.
    PartNsOut.back() = runPartition(Parts.back(), Body, Cancel);
    std::exception_ptr Err;
    {
      std::unique_lock<std::mutex> L(Mu);
      DoneCv.wait(L, [&] { return Outstanding == 0; });
      CurParts = nullptr;
      CurPartNs = nullptr;
      CurBody = nullptr;
      CurCancel = nullptr;
      Err = FirstError;
      FirstError = nullptr;
    }
    Cancelled = CancelFlag.load(std::memory_order_relaxed);
    if (Err)
      std::rethrow_exception(Err);
  }

private:
  Pool() = default;
  ~Pool() {
    {
      std::lock_guard<std::mutex> L(Mu);
      Shutdown = true;
    }
    WorkCv.notify_all();
    for (std::thread &T : Workers)
      T.join();
  }

  /// Grows the pool to at least \p Want workers; returns how many were
  /// newly created. The request is honored as asked (resolveThreads
  /// already clamped it to [1, 64]) rather than capped at hardware
  /// concurrency, mirroring mcrt's pool exactly: `--threads=4` on a
  /// smaller machine oversubscribes and the OS time-slices, the same
  /// contract as any explicit `-j N`, and the spawned/chunks counters
  /// read identically across the VM and native tiers on any box.
  unsigned ensureWorkers(unsigned Want) {
    Want = std::min(Want, 63u); // MCRT_MAX_THREADS - 1, the mcrt cap
    unsigned Created = 0;
    while (Workers.size() < Want) {
      unsigned Index = static_cast<unsigned>(Workers.size());
      Workers.emplace_back([this, Index] { workerMain(Index); });
      ++Created;
    }
    return Created;
  }

  /// Executes one partition in cancel-polled chunks and returns the
  /// nanoseconds spent doing it (the partition's busy time). Workers run
  /// with default thread_local state: no BufferPool, no ParScope -- pure
  /// writes only, as the header's body contract requires.
  std::uint64_t
  runPartition(const Partition &P,
               const std::function<void(std::int64_t, std::int64_t)> &Body,
               const CancelToken *Cancel) {
    std::uint64_t Begin = nowNs();
    for (std::int64_t C = P.Lo; C < P.Hi; C += ParCancelChunk) {
      if (CancelFlag.load(std::memory_order_relaxed))
        break;
      Body(C, std::min(P.Hi, C + ParCancelChunk));
      if (Cancel && Cancel->expired()) {
        CancelFlag.store(true, std::memory_order_relaxed);
        break;
      }
    }
    return nowNs() - Begin;
  }

  void workerMain(unsigned Index) {
    std::uint64_t Seen = 0;
    for (;;) {
      const std::vector<Partition> *Parts;
      std::vector<std::uint64_t> *PartNs;
      const std::function<void(std::int64_t, std::int64_t)> *Body;
      const CancelToken *Cancel;
      {
        std::unique_lock<std::mutex> L(Mu);
        WorkCv.wait(L, [&] { return Shutdown || Gen != Seen; });
        if (Shutdown)
          return;
        Seen = Gen;
        Parts = CurParts;
        PartNs = CurPartNs;
        Body = CurBody;
        Cancel = CurCancel;
      }
      // Worker I owns partition I; partition P-1 belongs to the caller.
      // Workers beyond this region's partition count sat out a spurious
      // wakeup (a later region may need them) and must not touch the
      // completion count.
      if (!Parts || Index + 1 >= Parts->size())
        continue;
      std::exception_ptr Err;
      try {
        std::uint64_t Ns = runPartition((*Parts)[Index], *Body, Cancel);
        if (PartNs)
          (*PartNs)[Index] = Ns;
      } catch (...) {
        Err = std::current_exception();
      }
      {
        std::lock_guard<std::mutex> L(Mu);
        if (Err && !FirstError)
          FirstError = Err;
        if (--Outstanding == 0)
          DoneCv.notify_one();
      }
    }
  }

  std::mutex RegionMu; ///< One region in flight at a time.
  std::mutex Mu;
  std::condition_variable WorkCv;
  std::condition_variable DoneCv;
  std::vector<std::thread> Workers;
  std::uint64_t Gen = 0;
  unsigned Outstanding = 0;
  bool Shutdown = false;
  const std::vector<Partition> *CurParts = nullptr;
  std::vector<std::uint64_t> *CurPartNs = nullptr;
  const std::function<void(std::int64_t, std::int64_t)> *CurBody = nullptr;
  const CancelToken *CurCancel = nullptr;
  std::atomic<bool> CancelFlag{false};
  std::exception_ptr FirstError;
};

} // namespace

const ParConfig &matcoal::activePar() { return ActivePar; }

ParScope::ParScope(const ParConfig &C) : Prev(ActivePar) { ActivePar = C; }

ParScope::~ParScope() { ActivePar = Prev; }

void matcoal::parRunUnits(
    std::int64_t Items, std::int64_t TotalElems,
    const std::function<void(std::int64_t, std::int64_t)> &Body) {
  const ParConfig &C = ActivePar;
  if (Items <= 0)
    return;
  if (C.Threads > 1 && TotalElems >= ParMinElems) {
    std::uint64_t Parts = 0;
    unsigned Created = 0;
    bool Cancelled = false;
    std::vector<std::uint64_t> PartNs;
    Pool::instance().run(Items, C.Threads, Body, C.Cancel, Parts, Created,
                         Cancelled, PartNs);
    if (C.Spawned)
      *C.Spawned += Created;
    if (C.Chunks)
      *C.Chunks += Parts;
    if (C.BusyNs)
      for (std::uint64_t Ns : PartNs)
        *C.BusyNs += Ns;
    if (C.ChunkNs)
      C.ChunkNs->insert(C.ChunkNs->end(), PartNs.begin(), PartNs.end());
    if (Cancelled)
      throw MatError("deadline exceeded inside parallel region",
                     TrapKind::Deadline);
    return;
  }
  // Serial: cancel-polled chunks in the same iteration order as one big
  // loop, so a deadline can interrupt a long kernel between chunks.
  for (std::int64_t Lo = 0; Lo < Items; Lo += ParCancelChunk) {
    Body(Lo, std::min(Items, Lo + ParCancelChunk));
    if (C.Cancel && C.Cancel->expired())
      throw MatError("deadline exceeded inside kernel loop",
                     TrapKind::Deadline);
  }
}

void matcoal::parRun(
    std::int64_t N,
    const std::function<void(std::int64_t, std::int64_t)> &Body) {
  parRunUnits(N, N, Body);
}
