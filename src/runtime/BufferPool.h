//===- BufferPool.h - Size-class free list for array buffers ----*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small size-class free list that recycles the `std::vector<double>`
/// planes (Re/Im) of dying Array values so hot loops stop hitting the
/// allocator. Buffers are binned by power-of-two capacity; acquire() pops
/// the smallest class that fits, release() returns a buffer to its class.
///
/// Metering contract: every byte the pool holds is charged to the owner's
/// memory meter through the Charge callback at release time and uncharged
/// at acquire (or drain) time, so the Figure-2 averages stay honest --
/// pooled storage is still allocated storage. Executors install their pool
/// for the duration of one run via PoolScope; the kernels in Ops.cpp then
/// draw result buffers from it through poolTake()/poolGive() without any
/// signature changes along the call chain.
///
/// **Thread-safety contract (matcoald): per-run, per-thread.** Each
/// VM/interpreter run constructs its own pool on its own stack, and the
/// PoolScope registration point is `thread_local`, so concurrent requests
/// on the service's worker pool never observe each other's free lists.
/// Pools are deliberately *not* shared across requests: a shared pool
/// would need locks on the hottest allocation path and would let one
/// session's retained bytes distort another's memory metering.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_RUNTIME_BUFFERPOOL_H
#define MATCOAL_RUNTIME_BUFFERPOOL_H

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace matcoal {

class BufferPool {
public:
  /// Charged +bytes when a buffer enters the pool, -bytes when it leaves.
  /// Installed by the executor (VM -> MemoryMeter, interpreter -> its
  /// live-heap account); null means unmetered (tests).
  std::function<void(std::int64_t)> Charge;

  /// Invoked each time acquire() serves a request from the free list
  /// instead of malloc. Installed by profiling executors so pool reuse
  /// shows up in the runtime event stream; null means unobserved.
  std::function<void()> OnReuse;

  /// Smallest buffer worth pooling; tiny vectors are cheaper to malloc
  /// than to track.
  static constexpr std::size_t MinElems = 32;
  /// Largest buffer the pool will retain (elements). Holding giant
  /// buffers between uses would inflate the time-weighted heap average
  /// the benchmarks report, so oversized ones are freed immediately.
  static constexpr std::size_t MaxElems = std::size_t(1) << 21;
  /// Buffers retained per size class.
  static constexpr std::size_t MaxPerClass = 2;

  BufferPool() = default;
  BufferPool(const BufferPool &) = delete;
  BufferPool &operator=(const BufferPool &) = delete;
  ~BufferPool() { drain(); }

  /// A vector of exactly \p N elements (contents unspecified), reusing a
  /// pooled buffer when one with sufficient capacity exists.
  std::vector<double> acquire(std::size_t N);

  /// Offers a dying buffer to the pool; frees it instead when it is too
  /// small, too large, or its class is full. \p V is left empty.
  void release(std::vector<double> &&V);

  /// Frees every held buffer and uncharges the meter.
  void drain();

  /// Allocations served from the pool instead of malloc.
  std::uint64_t reuses() const { return Reuses; }
  /// Bytes currently held (and charged to the meter).
  std::int64_t heldBytes() const { return HeldBytes; }
  /// Peak bytes the pool held at once (the `rt.pool.held_bytes_hwm`
  /// counter). Never reset by drain().
  std::int64_t heldBytesHwm() const { return HeldBytesHwm; }

private:
  // Class k holds buffers with capacity in [2^k, 2^(k+1)).
  static constexpr unsigned NumClasses = 24;
  std::vector<double> Slots[NumClasses][MaxPerClass];
  unsigned Count[NumClasses] = {};
  std::uint64_t Reuses = 0;
  std::int64_t HeldBytes = 0;
  std::int64_t HeldBytesHwm = 0;

  static unsigned classOf(std::size_t Cap);
  void charge(std::int64_t Delta) {
    HeldBytes += Delta;
    if (HeldBytes > HeldBytesHwm)
      HeldBytesHwm = HeldBytes;
    if (Charge)
      Charge(Delta);
  }
};

/// Scoped installation of the thread's active pool (the one
/// poolTake/poolGive use). Executors create one per run.
class PoolScope {
public:
  explicit PoolScope(BufferPool *P);
  ~PoolScope();
  PoolScope(const PoolScope &) = delete;
  PoolScope &operator=(const PoolScope &) = delete;

private:
  BufferPool *Prev;
};

/// The pool installed by the innermost PoolScope, or null.
BufferPool *activePool();

/// A vector of exactly \p N elements from the active pool (fresh
/// allocation when no pool is installed or nothing fits).
std::vector<double> poolTake(std::size_t N);

/// Offers \p V to the active pool; destroys it when no pool is installed.
void poolGive(std::vector<double> &&V);

} // namespace matcoal

#endif // MATCOAL_RUNTIME_BUFFERPOOL_H
