//===- Memory.h - Time-weighted memory metering -----------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The measurement substrate for the paper's section 4: stack and heap
/// occupancy tracked over virtual time, averaged with the paper's Eq. (2)
/// (time-weighted mean), with peaks and a paged stack-segment model (the
/// Solaris stack grows in 8 KB pages and never shrinks).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_RUNTIME_MEMORY_H
#define MATCOAL_RUNTIME_MEMORY_H

#include <cstdint>

namespace matcoal {

/// Aggregated metering results for one execution.
struct MemoryStats {
  double AvgStackSegBytes = 0; ///< Time-weighted average stack segment.
  double AvgHeapBytes = 0;     ///< Time-weighted average heap occupancy.
  double AvgDynamicBytes = 0;  ///< Stack segment + heap (Figure 2's metric).
  /// Time-weighted average free-list pool occupancy: dead buffers retained
  /// for reuse. Reported separately from AvgDynamicBytes, which measures
  /// live program data (the paper's metric); pool bytes do count against
  /// the heap cap.
  double AvgPoolBytes = 0;
  std::int64_t PeakStackSegBytes = 0;
  std::int64_t PeakHeapBytes = 0;
  std::int64_t PeakPoolBytes = 0;
  std::uint64_t Ticks = 0; ///< Virtual duration of the run.
};

/// Tracks stack/heap levels over a virtual clock. Callers adjust levels as
/// storage is allocated and released and advance the clock as work is
/// performed; averages follow Eq. (2): sum(m_i * dt_i) / sum(dt_i).
class MemoryMeter {
public:
  static constexpr std::int64_t PageSize = 8192;
  /// A process starts with one stack page (the initial environment).
  static constexpr std::int64_t InitialStackSeg = PageSize;

  MemoryMeter() { StackSeg = InitialStackSeg; }

  /// Advances the virtual clock, weighting current levels by the elapsed
  /// time.
  void advance(std::uint64_t DeltaTicks) {
    Now += DeltaTicks;
    SumStack += static_cast<double>(StackSeg) * DeltaTicks;
    SumHeap += static_cast<double>(HeapBytes) * DeltaTicks;
    SumPool += static_cast<double>(PoolBytes) * DeltaTicks;
  }

  void stackAdjust(std::int64_t Delta) {
    StackBytes += Delta;
    // The stack segment grows in pages and never shrinks (high watermark).
    std::int64_t Needed =
        ((StackBytes + InitialStackSeg + PageSize - 1) / PageSize) * PageSize;
    if (Needed > StackSeg)
      StackSeg = Needed;
  }

  void heapAdjust(std::int64_t Delta) {
    HeapBytes += Delta;
    if (HeapBytes > PeakHeap)
      PeakHeap = HeapBytes;
  }

  /// Adjusts the free-list pool account (dead buffers held for reuse).
  void poolAdjust(std::int64_t Delta) {
    PoolBytes += Delta;
    if (PoolBytes > PeakPool)
      PeakPool = PoolBytes;
  }

  std::int64_t currentStackBytes() const { return StackBytes; }
  std::int64_t currentHeapBytes() const { return HeapBytes; }
  std::int64_t currentPoolBytes() const { return PoolBytes; }
  std::int64_t stackSegment() const { return StackSeg; }

  MemoryStats finish() {
    MemoryStats S;
    S.Ticks = Now;
    double T = Now ? static_cast<double>(Now) : 1.0;
    S.AvgStackSegBytes = SumStack / T;
    S.AvgHeapBytes = SumHeap / T;
    S.AvgDynamicBytes = S.AvgStackSegBytes + S.AvgHeapBytes;
    S.AvgPoolBytes = SumPool / T;
    S.PeakStackSegBytes = StackSeg;
    S.PeakHeapBytes = PeakHeap;
    S.PeakPoolBytes = PeakPool;
    return S;
  }

private:
  std::uint64_t Now = 0;
  std::int64_t StackBytes = 0; ///< Live frame bytes.
  std::int64_t StackSeg = 0;   ///< Page-granular segment (monotone).
  std::int64_t HeapBytes = 0;
  std::int64_t PeakHeap = 0;
  std::int64_t PoolBytes = 0;
  std::int64_t PeakPool = 0;
  double SumStack = 0;
  double SumHeap = 0;
  double SumPool = 0;
};

} // namespace matcoal

#endif // MATCOAL_RUNTIME_MEMORY_H
