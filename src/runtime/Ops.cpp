//===- Ops.cpp - Operator kernels -----------------------------------------===//

#include "runtime/Kernels.h"

#include "runtime/BufferPool.h"
#include "runtime/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <complex>
#include <functional>

using namespace matcoal;

namespace {

using Complex = std::complex<double>;

bool sameDims(const Array &A, const Array &B) {
  size_t Rank = std::max(A.dims().size(), B.dims().size());
  for (size_t D = 0; D < Rank; ++D)
    if (A.dim(D) != B.dim(D))
      return false;
  return true;
}

/// Generic elementwise combine with scalar broadcast.
template <typename RealFn, typename ComplexFn>
Array elementwise(const Array &A, const Array &B, RealFn RF, ComplexFn CF,
                  bool Logical) {
  const Array *Big = &A;
  bool AScalar = A.isScalar(), BScalar = B.isScalar();
  if (!AScalar && !BScalar && !sameDims(A, B))
    throw MatError("matrix dimensions must agree", TrapKind::ShapeMismatch);
  if (AScalar && !BScalar)
    Big = &B;
  Array Out;
  Out.Dims = Big->dims();
  std::int64_t N = Big->numel();
  bool Cplx = A.isComplex() || B.isComplex();
  // Every element is written below, so recycled (uninitialized) buffers
  // from the active pool are safe here.
  Out.Re = poolTake(static_cast<size_t>(N));
  if (Cplx && !Logical) {
    Out.Im = poolTake(static_cast<size_t>(N));
    Complex SA = A.isScalar() ? A.cAt(0) : Complex();
    Complex SB = B.isScalar() ? B.cAt(0) : Complex();
    for (std::int64_t I = 0; I < N; ++I) {
      Complex VA = AScalar ? SA : A.cAt(I);
      Complex VB = BScalar ? SB : B.cAt(I);
      Complex R = CF(VA, VB);
      Out.Re[I] = R.real();
      Out.Im[I] = R.imag();
    }
    Out.normalizeComplex();
  } else if (Cplx && Logical) {
    Complex SA = A.isScalar() ? A.cAt(0) : Complex();
    Complex SB = B.isScalar() ? B.cAt(0) : Complex();
    for (std::int64_t I = 0; I < N; ++I) {
      Complex VA = AScalar ? SA : A.cAt(I);
      Complex VB = BScalar ? SB : B.cAt(I);
      Out.Re[I] = CF(VA, VB).real();
    }
  } else {
    double SA = AScalar ? A.reAt(0) : 0.0;
    double SB = BScalar ? B.reAt(0) : 0.0;
    const double *PA = A.re();
    const double *PB = B.re();
    double *PO = Out.Re.data();
    // Pure writes through disjoint ranges: partitionable. Small arrays
    // skip the dispatch entirely (parRun would run them serially anyway).
    auto Loop = [&](std::int64_t Lo, std::int64_t Hi) {
      for (std::int64_t I = Lo; I < Hi; ++I)
        PO[I] = RF(AScalar ? SA : PA[I], BScalar ? SB : PB[I]);
    };
    if (N < ParMinElems)
      Loop(0, N);
    else
      parRun(N, Loop);
  }
  if (Logical)
    Out.setLogical(true);
  return Out;
}

double truthOf(double Re, double Im) { return (Re != 0.0 || Im != 0.0); }

Array matmul(const Array &A, const Array &B) {
  if (A.dims().size() > 2 || B.dims().size() > 2)
    throw MatError("matrix multiplication requires 2-D operands", TrapKind::ShapeMismatch);
  std::int64_t M = A.dim(0), K = A.dim(1), K2 = B.dim(0), N = B.dim(1);
  if (K != K2)
    throw MatError("inner matrix dimensions must agree", TrapKind::ShapeMismatch);
  Array Out;
  Out.Dims = {M, N};
  bool Cplx = A.isComplex() || B.isComplex();
  Out.Re = poolTake(static_cast<size_t>(M * N));
  std::fill(Out.Re.begin(), Out.Re.end(), 0.0);
  if (Cplx) {
    Out.Im = poolTake(static_cast<size_t>(M * N));
    std::fill(Out.Im.begin(), Out.Im.end(), 0.0);
  }
  if (!Cplx) {
    // Partition the result by columns: each partition accumulates its
    // own disjoint output columns in the exact P-inner order the serial
    // loop uses, so per-column rounding is identical at any thread
    // count. The threshold weighs the full M*N output, not the column
    // count.
    double *PO = Out.Re.data();
    auto Cols = [&](std::int64_t JLo, std::int64_t JHi) {
      for (std::int64_t J = JLo; J < JHi; ++J) {
        for (std::int64_t P = 0; P < K; ++P) {
          double BV = B.reAt(P + J * K);
          if (BV == 0.0)
            continue;
          const double *ACol = A.re() + P * M;
          double *OCol = PO + J * M;
          for (std::int64_t I = 0; I < M; ++I)
            OCol[I] += ACol[I] * BV;
        }
      }
    };
    if (M * N < ParMinElems)
      Cols(0, N);
    else
      parRunUnits(N, M * N, Cols);
  } else {
    for (std::int64_t J = 0; J < N; ++J) {
      for (std::int64_t P = 0; P < K; ++P) {
        Complex BV = B.cAt(P + J * K);
        for (std::int64_t I = 0; I < M; ++I) {
          Complex R = Complex(Out.Re[I + J * M], Out.Im[I + J * M]) +
                      A.cAt(I + P * M) * BV;
          Out.Re[I + J * M] = R.real();
          Out.Im[I + J * M] = R.imag();
        }
      }
    }
  }
  Out.normalizeComplex();
  return Out;
}

/// Solves A * X = B with Gaussian elimination (partial pivoting); used by
/// the backslash operators.
Array solveSquare(const Array &A, const Array &B) {
  std::int64_t N = A.dim(0);
  if (A.dim(1) != N)
    throw MatError("matrix must be square for this solver", TrapKind::ShapeMismatch);
  if (B.dim(0) != N)
    throw MatError("matrix dimensions must agree in solve", TrapKind::ShapeMismatch);
  std::int64_t NRHS = B.dim(1);
  std::vector<Complex> M(static_cast<size_t>(N * N));
  std::vector<Complex> X(static_cast<size_t>(N * NRHS));
  for (std::int64_t I = 0; I < N * N; ++I)
    M[I] = A.cAt(I);
  for (std::int64_t I = 0; I < N * NRHS; ++I)
    X[I] = B.cAt(I);
  for (std::int64_t Col = 0; Col < N; ++Col) {
    // Pivot.
    std::int64_t Piv = Col;
    double Best = std::abs(M[Col + Col * N]);
    for (std::int64_t I = Col + 1; I < N; ++I) {
      double V = std::abs(M[I + Col * N]);
      if (V > Best) {
        Best = V;
        Piv = I;
      }
    }
    if (Best == 0.0)
      throw MatError("matrix is singular to working precision");
    if (Piv != Col) {
      for (std::int64_t J = 0; J < N; ++J)
        std::swap(M[Col + J * N], M[Piv + J * N]);
      for (std::int64_t J = 0; J < NRHS; ++J)
        std::swap(X[Col + J * N], X[Piv + J * N]);
    }
    Complex D = M[Col + Col * N];
    for (std::int64_t I = Col + 1; I < N; ++I) {
      Complex Factor = M[I + Col * N] / D;
      if (Factor == Complex())
        continue;
      for (std::int64_t J = Col; J < N; ++J)
        M[I + J * N] -= Factor * M[Col + J * N];
      for (std::int64_t J = 0; J < NRHS; ++J)
        X[I + J * N] -= Factor * X[Col + J * N];
    }
  }
  // Back substitution.
  for (std::int64_t Col = N; Col-- > 0;) {
    Complex D = M[Col + Col * N];
    for (std::int64_t J = 0; J < NRHS; ++J) {
      Complex Sum = X[Col + J * N];
      for (std::int64_t K = Col + 1; K < N; ++K)
        Sum -= M[Col + K * N] * X[K + J * N];
      X[Col + J * N] = Sum / D;
    }
  }
  Array Out;
  Out.Dims = {N, NRHS};
  Out.Re.resize(static_cast<size_t>(N * NRHS));
  Out.Im.resize(static_cast<size_t>(N * NRHS));
  for (std::int64_t I = 0; I < N * NRHS; ++I) {
    Out.Re[I] = X[I].real();
    Out.Im[I] = X[I].imag();
  }
  Out.normalizeComplex();
  return Out;
}

Complex powComplexAware(Complex A, Complex B, bool &WentComplex) {
  if (A.imag() == 0.0 && B.imag() == 0.0) {
    double X = A.real(), Y = B.real();
    if (X >= 0.0 || Y == std::floor(Y)) {
      WentComplex = false;
      return Complex(std::pow(X, Y), 0.0);
    }
  }
  WentComplex = true;
  return std::pow(A, B);
}

Array matpow(const Array &A, const Array &B) {
  if (A.isScalar() && B.isScalar()) {
    bool WC = false;
    Complex R = powComplexAware(A.cAt(0), B.cAt(0), WC);
    return Array::complexScalar(R.real(), R.imag());
  }
  if (B.isScalar() && B.reAt(0) == std::floor(B.reAt(0)) &&
      B.reAt(0) >= 0.0 && !B.isComplex()) {
    // Matrix to a non-negative integer power.
    std::int64_t N = A.dim(0);
    if (A.dim(1) != N)
      throw MatError("matrix must be square for ^", TrapKind::ShapeMismatch);
    std::int64_t P = static_cast<std::int64_t>(B.reAt(0));
    Array Result;
    Result.Dims = {N, N};
    Result.Re.assign(static_cast<size_t>(N * N), 0.0);
    for (std::int64_t I = 0; I < N; ++I)
      Result.Re[I + I * N] = 1.0;
    Array Base = A;
    while (P > 0) {
      if (P & 1)
        Result = matmul(Result, Base);
      Base = matmul(Base, Base);
      P >>= 1;
    }
    return Result;
  }
  throw MatError("unsupported operands for ^");
}

} // namespace

Array matcoal::binaryOp(Opcode Op, const Array &A, const Array &B) {
  switch (Op) {
  case Opcode::Add:
    return elementwise(A, B, [](double X, double Y) { return X + Y; },
                       [](Complex X, Complex Y) { return X + Y; }, false);
  case Opcode::Sub:
    return elementwise(A, B, [](double X, double Y) { return X - Y; },
                       [](Complex X, Complex Y) { return X - Y; }, false);
  case Opcode::ElemMul:
    return elementwise(A, B, [](double X, double Y) { return X * Y; },
                       [](Complex X, Complex Y) { return X * Y; }, false);
  case Opcode::ElemRDiv:
    return elementwise(A, B, [](double X, double Y) { return X / Y; },
                       [](Complex X, Complex Y) { return X / Y; }, false);
  case Opcode::ElemLDiv:
    return elementwise(A, B, [](double X, double Y) { return Y / X; },
                       [](Complex X, Complex Y) { return Y / X; }, false);
  case Opcode::MatMul:
    if (A.isScalar() || B.isScalar())
      return binaryOp(Opcode::ElemMul, A, B);
    return matmul(A, B);
  case Opcode::MatRDiv:
    if (B.isScalar())
      return binaryOp(Opcode::ElemRDiv, A, B);
    // A/B = (B' \ A')'.
    return unaryOp(Opcode::Transpose,
                   solveSquare(unaryOp(Opcode::Transpose, B),
                               unaryOp(Opcode::Transpose, A)));
  case Opcode::MatLDiv:
    if (A.isScalar())
      return binaryOp(Opcode::ElemRDiv, B, A);
    return solveSquare(A, B);
  case Opcode::MatPow:
    return matpow(A, B);
  case Opcode::ElemPow: {
    // Dedicated kernel: a real base with a fractional exponent escapes to
    // complex, which the generic elementwise dispatcher cannot express.
    bool AScalar = A.isScalar(), BScalar = B.isScalar();
    const Array *Big = AScalar && !BScalar ? &B : &A;
    if (!AScalar && !BScalar && !sameDims(A, B))
      throw MatError("matrix dimensions must agree", TrapKind::ShapeMismatch);
    std::int64_t N = Big->numel();
    Array Out;
    Out.Dims = Big->dims();
    Out.Re = poolTake(static_cast<size_t>(N));
    Out.Im = poolTake(static_cast<size_t>(N));
    for (std::int64_t I = 0; I < N; ++I) {
      Complex X = AScalar ? A.cAt(0) : A.cAt(I);
      Complex Y = BScalar ? B.cAt(0) : B.cAt(I);
      bool WC = false;
      Complex R = powComplexAware(X, Y, WC);
      Out.Re[I] = R.real();
      Out.Im[I] = R.imag();
    }
    Out.normalizeComplex();
    return Out;
  }
  case Opcode::Lt:
    return elementwise(A, B, [](double X, double Y) -> double { return X < Y; },
                       [](Complex X, Complex Y) -> Complex {
                         return X.real() < Y.real();
                       },
                       true);
  case Opcode::Le:
    return elementwise(A, B,
                       [](double X, double Y) -> double { return X <= Y; },
                       [](Complex X, Complex Y) -> Complex {
                         return X.real() <= Y.real();
                       },
                       true);
  case Opcode::Gt:
    return elementwise(A, B, [](double X, double Y) -> double { return X > Y; },
                       [](Complex X, Complex Y) -> Complex {
                         return X.real() > Y.real();
                       },
                       true);
  case Opcode::Ge:
    return elementwise(A, B,
                       [](double X, double Y) -> double { return X >= Y; },
                       [](Complex X, Complex Y) -> Complex {
                         return X.real() >= Y.real();
                       },
                       true);
  case Opcode::Eq:
    return elementwise(A, B,
                       [](double X, double Y) -> double { return X == Y; },
                       [](Complex X, Complex Y) -> Complex { return X == Y; },
                       true);
  case Opcode::Ne:
    return elementwise(A, B,
                       [](double X, double Y) -> double { return X != Y; },
                       [](Complex X, Complex Y) -> Complex { return X != Y; },
                       true);
  case Opcode::And:
    return elementwise(A, B,
                       [](double X, double Y) -> double {
                         return X != 0.0 && Y != 0.0;
                       },
                       [](Complex X, Complex Y) -> Complex {
                         return truthOf(X.real(), X.imag()) &&
                                truthOf(Y.real(), Y.imag());
                       },
                       true);
  case Opcode::Or:
    return elementwise(A, B,
                       [](double X, double Y) -> double {
                         return X != 0.0 || Y != 0.0;
                       },
                       [](Complex X, Complex Y) -> Complex {
                         return truthOf(X.real(), X.imag()) ||
                                truthOf(Y.real(), Y.imag());
                       },
                       true);
  default:
    throw MatError(std::string("not a binary operator: ") + opcodeName(Op));
  }
}

bool matcoal::binaryOpInto(Array &Dst, Opcode Op, const Array &A,
                           const Array &B) {
  // Destructive fast path: real elementwise arithmetic written straight
  // through Dst. Because evaluation is identity-index (element I of every
  // operand is read before element I of the result is stored), Dst may
  // alias either operand -- the situation GCTD's coalescing creates -- or
  // neither, in which case its existing capacity is recycled
  // (destination-passing).
  bool Elementwise = Op == Opcode::Add || Op == Opcode::Sub ||
                     Op == Opcode::ElemMul || Op == Opcode::ElemRDiv;
  if (Elementwise && !A.isComplex() && !B.isComplex() && !A.isChar() &&
      !B.isChar()) {
    bool AScalar = A.isScalar(), BScalar = B.isScalar();
    const Array *Big = AScalar && !BScalar ? &B : &A;
    if (AScalar || BScalar || sameDims(A, B)) {
      // Hoist scalar operands before writing (Figure 1's loops made
      // safe); a scalar Dst==A with an array B is then free to grow.
      double SA = AScalar ? A.reAt(0) : 0.0;
      double SB = BScalar ? B.reAt(0) : 0.0;
      std::int64_t N = Big->numel();
      std::vector<std::int64_t> Dims = Big->dims();
      // Resizing is safe: when Dst aliases the array-shaped operand its
      // size is already N, so pointers below stay valid; when it aliases
      // only a scalar operand that value was hoisted above.
      if (Dst.Re.size() != static_cast<size_t>(N))
        Dst.Re.resize(static_cast<size_t>(N));
      if (!Dst.Im.empty())
        poolGive(std::move(Dst.Im)); // Stale plane from a prior value.
      double *PD = Dst.re();
      const double *PA = A.re();
      const double *PB = B.re();
      // The destructive loop is identity-indexed even when Dst aliases
      // an operand, so partitions write (and read) disjoint ranges and
      // the region is partitionable exactly like the copying kernel.
      auto Loop = [&](std::int64_t Lo, std::int64_t Hi) {
        switch (Op) {
        case Opcode::Add:
          for (std::int64_t I = Lo; I < Hi; ++I)
            PD[I] = (AScalar ? SA : PA[I]) + (BScalar ? SB : PB[I]);
          break;
        case Opcode::Sub:
          for (std::int64_t I = Lo; I < Hi; ++I)
            PD[I] = (AScalar ? SA : PA[I]) - (BScalar ? SB : PB[I]);
          break;
        case Opcode::ElemMul:
          for (std::int64_t I = Lo; I < Hi; ++I)
            PD[I] = (AScalar ? SA : PA[I]) * (BScalar ? SB : PB[I]);
          break;
        default:
          for (std::int64_t I = Lo; I < Hi; ++I)
            PD[I] = (AScalar ? SA : PA[I]) / (BScalar ? SB : PB[I]);
          break;
        }
      };
      if (N < ParMinElems)
        Loop(0, N);
      else
        parRun(N, Loop);
      Dst.Dims = std::move(Dims);
      Dst.toDouble();
      return true;
    }
  }
  Dst = binaryOp(Op, A, B);
  return false;
}

Array matcoal::unaryOp(Opcode Op, const Array &A) {
  switch (Op) {
  case Opcode::UPlus: {
    Array Out = A;
    Out.toDouble();
    return Out;
  }
  case Opcode::Neg: {
    Array Out = A;
    for (double &V : Out.Re)
      V = -V;
    for (double &V : Out.Im)
      V = -V;
    Out.toDouble();
    return Out;
  }
  case Opcode::Not: {
    Array Out;
    Out.Dims = A.dims();
    Out.Re.resize(A.Re.size());
    for (size_t I = 0; I < A.Re.size(); ++I)
      Out.Re[I] = !truthOf(A.reAt(I), A.imAt(I));
    Out.setLogical(true);
    return Out;
  }
  case Opcode::Transpose:
  case Opcode::CTranspose: {
    if (A.dims().size() > 2)
      throw MatError("transpose of an N-D array is undefined");
    std::int64_t R = A.dim(0), C = A.dim(1);
    Array Out;
    Out.Dims = {C, R};
    Out.Re.resize(A.Re.size());
    if (A.isComplex())
      Out.Im.resize(A.Im.size());
    for (std::int64_t I = 0; I < R; ++I)
      for (std::int64_t J = 0; J < C; ++J) {
        Out.Re[J + I * C] = A.Re[I + J * R];
        if (A.isComplex())
          Out.Im[J + I * C] = Op == Opcode::CTranspose ? -A.Im[I + J * R]
                                                       : A.Im[I + J * R];
      }
    Out.normalizeComplex();
    if (A.isChar())
      Out.setChar(true);
    if (A.isLogical())
      Out.setLogical(true);
    return Out;
  }
  default:
    throw MatError(std::string("not a unary operator: ") + opcodeName(Op));
  }
}

Array matcoal::colonRange(const Array &Lo, const Array &Hi) {
  return colonRange3(Lo, Array::scalar(1.0), Hi);
}

Array matcoal::colonRange3(const Array &Lo, const Array &Step,
                           const Array &Hi) {
  if (!Lo.isScalar() || !Step.isScalar() || !Hi.isScalar())
    throw MatError("colon operands must be scalars");
  double L = Lo.scalarValue(), S = Step.scalarValue(), H = Hi.scalarValue();
  Array Out;
  Out.Dims = {1, 0};
  if (S == 0.0 || (S > 0.0 && L > H) || (S < 0.0 && L < H))
    return Out;
  double T = (H - L) / S;
  std::int64_t N =
      static_cast<std::int64_t>(std::floor(T + 1e-10 * std::max(1.0, T))) + 1;
  Out.Dims = {1, N};
  Out.Re.resize(static_cast<size_t>(N));
  for (std::int64_t I = 0; I < N; ++I)
    Out.Re[I] = L + static_cast<double>(I) * S;
  return Out;
}

//===----------------------------------------------------------------------===//
// Indexing
//===----------------------------------------------------------------------===//

namespace {

/// One resolved subscript: either "all of the dimension" or an explicit
/// 0-based index list with an original shape.
struct ResolvedSub {
  bool IsColon = false;
  std::vector<std::int64_t> Indices;
  std::vector<std::int64_t> ShapeDims; ///< Shape of the subscript array.

  std::int64_t count(std::int64_t Extent) const {
    return IsColon ? Extent : static_cast<std::int64_t>(Indices.size());
  }
  std::int64_t at(std::int64_t K, std::int64_t /*Extent*/) const {
    return IsColon ? K : Indices[K];
  }
};

ResolvedSub resolveSub(const Array &S) {
  ResolvedSub R;
  if (S.isColon()) {
    R.IsColon = true;
    return R;
  }
  if (S.isLogical()) {
    // Logical subscript: positions of true elements.
    for (std::int64_t I = 0; I < S.numel(); ++I)
      if (S.reAt(I) != 0.0)
        R.Indices.push_back(I);
    R.ShapeDims = {1, static_cast<std::int64_t>(R.Indices.size())};
    return R;
  }
  R.Indices.reserve(static_cast<size_t>(S.numel()));
  for (std::int64_t I = 0; I < S.numel(); ++I) {
    double V = S.reAt(I);
    if (V != std::floor(V) || V < 1.0)
      throw MatError("subscript indices must be positive integers", TrapKind::IndexOutOfBounds);
    R.Indices.push_back(static_cast<std::int64_t>(V) - 1);
  }
  R.ShapeDims = S.dims();
  return R;
}

} // namespace

Array matcoal::subsref(const Array &A,
                       const std::vector<const Array *> &Subs) {
  if (Subs.empty())
    return A;

  if (Subs.size() == 1) {
    const Array &S = *Subs[0];
    if (S.isColon()) {
      Array Out = A;
      Out.Dims = {A.numel(), 1};
      return Out;
    }
    ResolvedSub R = resolveSub(S);
    Array Out;
    // Result shape: shape of the subscript, except that indexing a vector
    // with a vector keeps the base's orientation.
    std::vector<std::int64_t> OutDims = R.ShapeDims;
    if (S.isLogical())
      OutDims = {1, static_cast<std::int64_t>(R.Indices.size())};
    bool SubIsVector = OutDims.size() == 2 &&
                       (OutDims[0] == 1 || OutDims[1] == 1);
    if (A.isVector() && SubIsVector) {
      std::int64_t N = static_cast<std::int64_t>(R.Indices.size());
      OutDims = A.isRowVector() ? std::vector<std::int64_t>{1, N}
                                : std::vector<std::int64_t>{N, 1};
    }
    Out.Dims = OutDims;
    std::int64_t Total = A.numel();
    Out.Re.resize(R.Indices.size());
    if (A.isComplex())
      Out.Im.resize(R.Indices.size());
    for (size_t K = 0; K < R.Indices.size(); ++K) {
      std::int64_t I = R.Indices[K];
      if (I < 0 || I >= Total)
        throw MatError("index exceeds array bounds", TrapKind::IndexOutOfBounds);
      Out.Re[K] = A.Re[I];
      if (A.isComplex())
        Out.Im[K] = A.Im[I];
    }
    Out.normalizeComplex();
    if (A.isChar())
      Out.setChar(true);
    if (A.isLogical())
      Out.setLogical(true);
    return Out;
  }

  // Multi-dimensional: cartesian gather. The last subscript addresses all
  // trailing dimensions folded together.
  size_t M = Subs.size();
  std::vector<ResolvedSub> R;
  R.reserve(M);
  for (const Array *S : Subs)
    R.push_back(resolveSub(*S));
  std::vector<std::int64_t> Extents(M);
  for (size_t D = 0; D + 1 < M; ++D)
    Extents[D] = A.dim(D);
  std::int64_t Fold = 1;
  for (size_t D = M - 1; D < A.dims().size(); ++D)
    Fold *= A.dim(D);
  Extents[M - 1] = Fold;

  std::vector<std::int64_t> OutDims(M);
  for (size_t D = 0; D < M; ++D)
    OutDims[D] = R[D].count(Extents[D]);
  Array Out;
  Out.Dims = OutDims;
  std::int64_t N = Out.numel();
  Out.Re.resize(static_cast<size_t>(N));
  if (A.isComplex())
    Out.Im.resize(static_cast<size_t>(N));

  std::vector<std::int64_t> Counter(M, 0);
  std::vector<std::int64_t> Strides(M);
  std::int64_t Stride = 1;
  for (size_t D = 0; D < M; ++D) {
    Strides[D] = Stride;
    Stride *= Extents[D];
  }
  for (std::int64_t K = 0; K < N; ++K) {
    std::int64_t Src = 0;
    for (size_t D = 0; D < M; ++D) {
      std::int64_t Idx = R[D].at(Counter[D], Extents[D]);
      if (Idx < 0 || Idx >= Extents[D])
        throw MatError("index exceeds array bounds", TrapKind::IndexOutOfBounds);
      Src += Idx * Strides[D];
    }
    Out.Re[K] = A.Re[Src];
    if (A.isComplex())
      Out.Im[K] = A.Im[Src];
    for (size_t D = 0; D < M; ++D) {
      if (++Counter[D] < R[D].count(Extents[D]))
        break;
      Counter[D] = 0;
    }
  }
  Out.normalizeComplex();
  if (A.isChar())
    Out.setChar(true);
  if (A.isLogical())
    Out.setLogical(true);
  return Out;
}

void matcoal::subsasgnInPlace(Array &Base, const Array &Rhs,
                              const std::vector<const Array *> &Subs) {
  if (Subs.empty())
    throw MatError("assignment requires at least one subscript");
  if (Rhs.isComplex())
    Base.makeComplex();
  bool Cplx = Base.isComplex();
  if (!Rhs.isChar())
    Base.toDouble();

  size_t M = Subs.size();
  std::vector<ResolvedSub> R;
  R.reserve(M);
  for (const Array *S : Subs)
    R.push_back(resolveSub(*S));

  // Determine the (possibly grown) dimensions.
  std::vector<std::int64_t> OldDims = Base.dims();
  while (OldDims.size() < std::max<size_t>(M == 1 ? 2 : M, 2))
    OldDims.push_back(1);
  std::vector<std::int64_t> NewDims = OldDims;

  if (M == 1) {
    const ResolvedSub &S = R[0];
    std::int64_t MaxIdx = -1;
    if (!S.IsColon)
      for (std::int64_t I : S.Indices)
        MaxIdx = std::max(MaxIdx, I);
    std::int64_t Total = Base.numel();
    if (MaxIdx >= Total) {
      // Linear growth is legal only for vectors (and empties).
      bool RowV = Base.isEmpty() ? false : Base.isRowVector();
      bool ColV = !Base.isEmpty() && Base.dims().size() == 2 &&
                  Base.dim(1) == 1 && Base.dim(0) > 1;
      if (Base.isEmpty())
        NewDims = {1, MaxIdx + 1}; // Growing an empty makes a row vector.
      else if (RowV)
        NewDims = {1, MaxIdx + 1};
      else if (ColV)
        NewDims = {MaxIdx + 1, 1};
      else
        throw MatError(
            "linear index out of bounds for a matrix (cannot grow)");
    }
  } else {
    for (size_t D = 0; D < M; ++D) {
      if (R[D].IsColon)
        continue;
      std::int64_t MaxIdx = -1;
      for (std::int64_t I : R[D].Indices)
        MaxIdx = std::max(MaxIdx, I);
      size_t Dim = D;
      if (Dim >= NewDims.size())
        NewDims.resize(Dim + 1, 1);
      if (D + 1 == M) {
        // Last subscript covers folded trailing dims; growth applies when
        // it is the true last dimension.
        std::int64_t Fold = 1;
        for (size_t DD = D; DD < OldDims.size(); ++DD)
          Fold *= OldDims[DD];
        if (MaxIdx >= Fold) {
          if (OldDims.size() > M)
            throw MatError("index exceeds folded trailing dimensions", TrapKind::IndexOutOfBounds);
          NewDims[D] = std::max(NewDims[D], MaxIdx + 1);
        }
      } else {
        NewDims[D] = std::max(NewDims[D], MaxIdx + 1);
      }
    }
  }

  // Expand if needed, moving elements backwards (section 2.3.3.1: carried
  // elements land at the same or higher linear positions, so a last-to-
  // first move never clobbers unread data).
  bool Grew = NewDims != Base.dims();
  if (Grew) {
    std::vector<std::int64_t> Old = Base.dims();
    std::int64_t OldN = Base.numel();
    Array Tmp; // New dims bookkeeping only; reuse storage vectors.
    Tmp.Dims = NewDims;
    std::int64_t NewN = Tmp.numel();
    Base.Re.resize(static_cast<size_t>(NewN), 0.0);
    if (Cplx)
      Base.Im.resize(static_cast<size_t>(NewN), 0.0);
    // Move from last old element to first.
    std::vector<std::int64_t> Counter(Old.size(), 0);
    // Start at the last old subscript.
    for (size_t D = 0; D < Old.size(); ++D)
      Counter[D] = Old[D] - 1;
    std::vector<std::int64_t> NewStrides(Old.size());
    std::int64_t Stride = 1;
    for (size_t D = 0; D < Old.size(); ++D) {
      NewStrides[D] = Stride;
      Stride *= D < NewDims.size() ? NewDims[D] : 1;
    }
    auto NewIndexOf = [&](const std::vector<std::int64_t> &Sub) {
      std::int64_t Idx = 0;
      for (size_t D = 0; D < Sub.size(); ++D)
        Idx += Sub[D] * NewStrides[D];
      return Idx;
    };
    if (OldN > 0) {
      for (std::int64_t Linear = OldN; Linear-- > 0;) {
        std::int64_t NewIdx = NewIndexOf(Counter);
        if (NewIdx != Linear) {
          Base.Re[NewIdx] = Base.Re[Linear];
          Base.Re[Linear] = 0.0;
          if (Cplx) {
            Base.Im[NewIdx] = Base.Im[Linear];
            Base.Im[Linear] = 0.0;
          }
        }
        // Decrement the column-major counter.
        for (size_t D = 0; D < Old.size(); ++D) {
          if (Counter[D]-- > 0)
            break;
          Counter[D] = Old[D] - 1;
        }
      }
    }
    Base.Dims = NewDims;
  }

  // Scatter the rhs.
  std::vector<std::int64_t> Extents(M);
  if (M == 1) {
    Extents[0] = Base.numel();
  } else {
    for (size_t D = 0; D + 1 < M; ++D)
      Extents[D] = Base.dim(D);
    std::int64_t Fold = 1;
    for (size_t D = M - 1; D < Base.dims().size(); ++D)
      Fold *= Base.dim(D);
    Extents[M - 1] = Fold;
  }
  std::int64_t Count = 1;
  for (size_t D = 0; D < M; ++D)
    Count *= R[D].count(Extents[D]);
  bool ScalarRhs = Rhs.isScalar();
  if (!ScalarRhs && Rhs.numel() != Count)
    throw MatError("assignment dimension mismatch", TrapKind::ShapeMismatch);

  std::vector<std::int64_t> Strides(M);
  std::int64_t Stride = 1;
  for (size_t D = 0; D < M; ++D) {
    Strides[D] = Stride;
    Stride *= M == 1 ? Base.numel() : Base.dim(D);
  }
  if (M >= 2) {
    Strides[M - 1] = 1;
    Stride = 1;
    for (size_t D = 0; D < M; ++D) {
      Strides[D] = Stride;
      Stride *= Base.dim(D);
    }
  }

  std::vector<std::int64_t> Counter(M, 0);
  for (std::int64_t K = 0; K < Count; ++K) {
    std::int64_t DstIdx = 0;
    for (size_t D = 0; D < M; ++D)
      DstIdx += R[D].at(Counter[D], Extents[D]) * Strides[D];
    if (DstIdx < 0 || DstIdx >= Base.numel())
      throw MatError("index exceeds array bounds", TrapKind::IndexOutOfBounds);
    Base.Re[DstIdx] = ScalarRhs ? Rhs.reAt(0) : Rhs.reAt(K);
    if (Cplx)
      Base.Im[DstIdx] = ScalarRhs ? Rhs.imAt(0) : Rhs.imAt(K);
    for (size_t D = 0; D < M; ++D) {
      if (++Counter[D] < R[D].count(Extents[D]))
        break;
      Counter[D] = 0;
    }
  }
  Base.normalizeComplex();
}

//===----------------------------------------------------------------------===//
// Concatenation
//===----------------------------------------------------------------------===//

namespace {

Array concat(const std::vector<const Array *> &Parts, unsigned Dim) {
  // Drop empty parts (MATLAB ignores [] in concatenation).
  std::vector<const Array *> Use;
  for (const Array *P : Parts)
    if (!P->isEmpty())
      Use.push_back(P);
  if (Use.empty())
    return Array();
  unsigned Keep = 1 - Dim;
  std::int64_t KeepExtent = Use.front()->dim(Keep);
  std::int64_t Total = 0;
  bool AnyChar = false, AllLogical = true, Cplx = false;
  for (const Array *P : Use) {
    if (P->dims().size() > 2)
      throw MatError("N-D concatenation is not supported");
    if (P->dim(Keep) != KeepExtent)
      throw MatError("concatenation dimensions are inconsistent", TrapKind::ShapeMismatch);
    Total += P->dim(Dim);
    AnyChar |= P->isChar();
    AllLogical &= P->isLogical();
    Cplx |= P->isComplex();
  }
  Array Out;
  std::vector<std::int64_t> Dims(2);
  Dims[Dim] = Total;
  Dims[Keep] = KeepExtent;
  Out.Dims = Dims;
  std::int64_t N = Out.numel();
  Out.Re.resize(static_cast<size_t>(N));
  if (Cplx)
    Out.Im.assign(static_cast<size_t>(N), 0.0);
  std::int64_t Offset = 0;
  std::int64_t OutR = Out.dim(0);
  for (const Array *P : Use) {
    std::int64_t R = P->dim(0), C = P->dim(1);
    for (std::int64_t J = 0; J < C; ++J)
      for (std::int64_t I = 0; I < R; ++I) {
        std::int64_t DI = Dim == 0 ? Offset + I : I;
        std::int64_t DJ = Dim == 1 ? Offset + J : J;
        Out.Re[DI + DJ * OutR] = P->Re[I + J * R];
        if (Cplx)
          Out.Im[DI + DJ * OutR] = P->imAt(I + J * R);
      }
    Offset += P->dim(Dim);
  }
  Out.normalizeComplex();
  if (AnyChar)
    Out.setChar(true);
  else if (AllLogical)
    Out.setLogical(true);
  return Out;
}

} // namespace

Array matcoal::horzcat(const std::vector<const Array *> &Parts) {
  return concat(Parts, 1);
}

Array matcoal::vertcat(const std::vector<const Array *> &Parts) {
  return concat(Parts, 0);
}
