//===- Value.h - Runtime array values ---------------------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime value type shared by the VM and the AST interpreter: an
/// N-dimensional column-major array of doubles, with an optional imaginary
/// plane and char/logical class flags, mirroring MATLAB semantics.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_RUNTIME_VALUE_H
#define MATCOAL_RUNTIME_VALUE_H

#include <complex>
#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

namespace matcoal {

/// Classification of a runtime failure, carried by MatError and surfaced
/// as ExecResult::Trap / InterpResult::Trap. Lets callers distinguish a
/// program error (bad index, shape mismatch) from an exhausted execution
/// guard (budget, heap cap, recursion depth) without parsing messages.
enum class TrapKind {
  None,             ///< No trap (successful execution).
  RuntimeError,     ///< Generic MATLAB-semantics error.
  ShapeMismatch,    ///< Operand/assignment dimensions disagree.
  IndexOutOfBounds, ///< Subscript out of range or non-positive.
  UndefinedName,    ///< Unknown function or variable at run time.
  OpBudget,         ///< Instruction budget exhausted (runaway loop).
  HeapLimit,        ///< Heap-byte cap exceeded.
  RecursionDepth,   ///< Call depth limit exceeded.
  OutOfMemory,      ///< Allocation failure (std::bad_alloc).
  Deadline,         ///< Cooperative deadline/cancellation expired.
};

const char *trapKindName(TrapKind K);

/// Runtime error with MATLAB-style message; thrown by kernels and caught
/// at the VM / interpreter API boundary.
class MatError : public std::runtime_error {
public:
  explicit MatError(const std::string &Message,
                    TrapKind Kind = TrapKind::RuntimeError)
      : std::runtime_error(Message), Kind(Kind) {}

  TrapKind Kind;
};

/// A MATLAB value: column-major numeric array, char array, logical array,
/// or the ':' subscript marker.
class Array {
public:
  /// 0 x 0 empty double array.
  Array() : Dims{0, 0} {}

  static Array scalar(double V);
  static Array complexScalar(double ReV, double ImV);
  static Array logicalScalar(bool V);
  static Array charRow(const std::string &S);
  static Array colonMarker();
  /// All-zero array with the given extents.
  static Array zeros(std::vector<std::int64_t> Dims);

  const std::vector<std::int64_t> &dims() const { return Dims; }
  std::int64_t numel() const {
    std::int64_t N = 1;
    for (std::int64_t D : Dims)
      N *= D;
    return N;
  }
  std::int64_t rows() const { return Dims.empty() ? 0 : Dims[0]; }
  std::int64_t cols() const { return Dims.size() < 2 ? 1 : Dims[1]; }
  /// Extent along dimension \p D (0-based); trailing dims are 1.
  std::int64_t dim(size_t D) const {
    return D < Dims.size() ? Dims[D] : 1;
  }

  bool isEmpty() const { return numel() == 0; }
  bool isScalar() const { return numel() == 1; }
  bool isVector() const {
    return Dims.size() == 2 && (Dims[0] == 1 || Dims[1] == 1);
  }
  bool isRowVector() const { return Dims.size() == 2 && Dims[0] == 1; }
  bool isComplex() const { return !Im.empty(); }
  bool isChar() const { return CharFlag; }
  bool isLogical() const { return LogicalFlag; }
  bool isColon() const { return ColonFlag; }

  double *re() { return Re.data(); }
  const double *re() const { return Re.data(); }
  double *im() { return Im.data(); }
  const double *im() const { return Im.data(); }

  double reAt(std::int64_t I) const { return Re[I]; }
  double imAt(std::int64_t I) const { return Im.empty() ? 0.0 : Im[I]; }
  std::complex<double> cAt(std::int64_t I) const {
    return {Re[I], imAt(I)};
  }

  /// First element as a double; throws on empty.
  double scalarValue() const {
    if (isEmpty())
      throw MatError("operand must not be empty");
    return Re[0];
  }
  std::complex<double> complexValue() const {
    if (isEmpty())
      throw MatError("operand must not be empty");
    return {Re[0], imAt(0)};
  }

  /// MATLAB truth: nonempty and every element nonzero.
  bool truth() const;

  /// Promotes to complex storage (no-op if already complex).
  void makeComplex() {
    if (Im.empty())
      Im.assign(Re.size(), 0.0);
  }
  /// Drops an all-zero imaginary plane (MATLAB normalizes results).
  void normalizeComplex();
  /// Clears char/logical/colon class (after arithmetic). Destructive
  /// kernels reuse arbitrary destination storage, so any stale class flag
  /// must drop here.
  void toDouble() {
    CharFlag = false;
    LogicalFlag = false;
    ColonFlag = false;
  }

  void setLogical(bool V) { LogicalFlag = V; if (V) CharFlag = false; }
  void setChar(bool V) { CharFlag = V; if (V) LogicalFlag = false; }

  /// Reshapes in place; the element count must match.
  void reshape(std::vector<std::int64_t> NewDims);

  /// Resizes storage for a fresh definition with the given dims (contents
  /// unspecified). Keeps complex plane iff \p Complex.
  void redefine(std::vector<std::int64_t> NewDims, bool Complex);

  /// Bytes of element data (8 per real element, 16 per complex).
  std::int64_t dataBytes() const {
    return static_cast<std::int64_t>(Re.size()) * 8 +
           static_cast<std::int64_t>(Im.size()) * 8;
  }

  /// Converts char/logical to its numeric value array (for arithmetic).
  /// Returns *this unchanged for numeric arrays.

  /// Column-major linear index of the given 0-based subscripts.
  std::int64_t linearIndex(const std::vector<std::int64_t> &Subs) const;

  /// The contents as a std::string (char arrays).
  std::string toStdString() const;

  /// MATLAB-style rendering used by disp; stable across VM/interpreter.
  std::string format() const;
  /// "name =\n  <value>\n" rendering used for un-semicoloned statements.
  std::string formatNamed(const std::string &Name) const;

  std::vector<std::int64_t> Dims;
  std::vector<double> Re;
  std::vector<double> Im;

private:
  bool CharFlag = false;
  bool LogicalFlag = false;
  bool ColonFlag = false;
};

/// Formats one double the way our display does (integers plain, otherwise
/// %.5g); shared so interpreter and VM output match exactly.
std::string formatDouble(double V);

} // namespace matcoal

#endif // MATCOAL_RUNTIME_VALUE_H
