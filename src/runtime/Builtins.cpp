//===- Builtins.cpp - Builtin function library ----------------------------===//

#include "runtime/Kernels.h"

#include <algorithm>
#include <cmath>
#include <complex>
#include <cstdio>
#include <set>

using namespace matcoal;

namespace {

using Complex = std::complex<double>;

const Array &arg(const std::vector<const Array *> &Args, size_t K,
                 const char *Name) {
  if (K >= Args.size())
    throw MatError(std::string("not enough arguments to ") + Name);
  return *Args[K];
}

std::int64_t dimArg(const Array &A, const char *Name) {
  if (!A.isScalar())
    throw MatError(std::string("size arguments to ") + Name +
                   " must be scalars");
  double V = A.scalarValue();
  if (V < 0 || V != std::floor(V))
    throw MatError(std::string("size arguments to ") + Name +
                   " must be non-negative integers");
  return static_cast<std::int64_t>(V);
}

std::vector<std::int64_t> dimsFromArgs(const std::vector<const Array *> &Args,
                                       const char *Name) {
  if (Args.empty())
    return {1, 1};
  std::vector<std::int64_t> Dims;
  for (const Array *A : Args)
    Dims.push_back(dimArg(*A, Name));
  if (Dims.size() == 1)
    Dims = {Dims[0], Dims[0]};
  return Dims;
}

/// Elementwise real->real map.
template <typename Fn> Array mapReal(const Array &A, Fn F) {
  Array Out;
  Out.Dims = A.dims();
  Out.Re.resize(A.Re.size());
  for (size_t I = 0; I < A.Re.size(); ++I)
    Out.Re[I] = F(A.reAt(I));
  return Out;
}

/// Elementwise complex-aware analytic map.
template <typename Fn> Array mapComplex(const Array &A, Fn F) {
  Array Out;
  Out.Dims = A.dims();
  std::int64_t N = A.numel();
  Out.Re.resize(static_cast<size_t>(N));
  if (A.isComplex()) {
    Out.Im.resize(static_cast<size_t>(N));
    for (std::int64_t I = 0; I < N; ++I) {
      Complex R = F(A.cAt(I));
      Out.Re[I] = R.real();
      Out.Im[I] = R.imag();
    }
    Out.normalizeComplex();
  } else {
    for (std::int64_t I = 0; I < N; ++I) {
      Complex R = F(Complex(A.reAt(I), 0.0));
      if (R.imag() != 0.0) {
        // Escape to complex mid-array: restart in complex mode.
        Out.Im.assign(static_cast<size_t>(N), 0.0);
        for (std::int64_t J = 0; J < N; ++J) {
          Complex RJ = F(Complex(A.reAt(J), 0.0));
          Out.Re[J] = RJ.real();
          Out.Im[J] = RJ.imag();
        }
        Out.normalizeComplex();
        return Out;
      }
      Out.Re[I] = R.real();
    }
  }
  return Out;
}

/// MATLAB reduction rule: collapse the first non-singleton dimension
/// (vectors reduce to scalars; a 1 x n x p array reduces along dim 2).
template <typename Init, typename Step>
Array reduce(const Array &A, Init InitFn, Step StepFn) {
  if (A.isEmpty()) {
    Complex Z = InitFn();
    return Array::complexScalar(Z.real(), Z.imag());
  }
  if (A.isScalar())
    return A;
  size_t D = 0;
  while (D < A.dims().size() && A.dim(D) == 1)
    ++D;
  if (D >= A.dims().size())
    return A;
  std::int64_t R = A.dim(D);
  std::int64_t Inner = 1; // Stride of dimension D.
  for (size_t K = 0; K < D; ++K)
    Inner *= A.dim(K);
  std::int64_t Outer = A.numel() / (Inner * R);
  Array Out;
  Out.Dims = A.dims();
  Out.Dims[D] = 1;
  Out.Re.resize(static_cast<size_t>(Inner * Outer));
  Out.Im.resize(static_cast<size_t>(Inner * Outer));
  for (std::int64_t O = 0; O < Outer; ++O)
    for (std::int64_t I = 0; I < Inner; ++I) {
      Complex Acc = InitFn();
      for (std::int64_t K = 0; K < R; ++K)
        Acc = StepFn(Acc, A.cAt(I + K * Inner + O * Inner * R));
      Out.Re[I + O * Inner] = Acc.real();
      Out.Im[I + O * Inner] = Acc.imag();
    }
  Out.normalizeComplex();
  return Out;
}

/// min/max over a vector/matrix, with optional index result.
std::vector<Array> minmax1(const Array &A, bool IsMax, unsigned NumResults) {
  if (A.isEmpty())
    throw MatError("min/max of an empty array");
  if (A.dims().size() > 2 && A.dim(2) > 1)
    throw MatError("N-D min/max reductions are not supported");
  auto Better = [&](double X, double Y) { return IsMax ? X > Y : X < Y; };
  if (A.isVector() || A.isScalar()) {
    std::int64_t BestI = 0;
    for (std::int64_t I = 1; I < A.numel(); ++I)
      if (Better(A.reAt(I), A.reAt(BestI)))
        BestI = I;
    std::vector<Array> Out = {Array::scalar(A.reAt(BestI))};
    if (NumResults >= 2)
      Out.push_back(Array::scalar(static_cast<double>(BestI + 1)));
    return Out;
  }
  std::int64_t R = A.dim(0), C = A.dim(1);
  Array Vals, Idx;
  Vals.Dims = {1, C};
  Vals.Re.resize(static_cast<size_t>(C));
  Idx.Dims = {1, C};
  Idx.Re.resize(static_cast<size_t>(C));
  for (std::int64_t J = 0; J < C; ++J) {
    std::int64_t BestI = 0;
    for (std::int64_t I = 1; I < R; ++I)
      if (Better(A.reAt(I + J * R), A.reAt(BestI + J * R)))
        BestI = I;
    Vals.Re[J] = A.reAt(BestI + J * R);
    Idx.Re[J] = static_cast<double>(BestI + 1);
  }
  std::vector<Array> Out = {Vals};
  if (NumResults >= 2)
    Out.push_back(Idx);
  return Out;
}

/// fprintf/sprintf formatting: supports %d %i %u %f %e %g %s with flags,
/// width and precision, plus \n \t \\ escapes; the format recycles while
/// argument values remain (MATLAB behaviour).
std::string formatPrintf(const std::string &Fmt,
                         const std::vector<const Array *> &Args) {
  // Flatten all numeric/char argument values.
  struct Val {
    double Num;
    bool FromChar;
    std::string Str; ///< Whole char array for %s.
  };
  std::vector<Val> Values;
  for (const Array *A : Args) {
    if (A->isChar()) {
      Values.push_back({0.0, true, A->toStdString()});
      continue;
    }
    for (std::int64_t I = 0; I < A->numel(); ++I)
      Values.push_back({A->reAt(I), false, ""});
  }

  std::string Out;
  size_t Next = 0;
  bool ConsumedAny = true;
  do {
    ConsumedAny = false;
    size_t I = 0;
    while (I < Fmt.size()) {
      char C = Fmt[I];
      if (C == '\\' && I + 1 < Fmt.size()) {
        char E = Fmt[I + 1];
        I += 2;
        switch (E) {
        case 'n': Out += '\n'; break;
        case 't': Out += '\t'; break;
        case 'r': Out += '\r'; break;
        case '\\': Out += '\\'; break;
        default:
          Out += E;
          break;
        }
        continue;
      }
      if (C != '%') {
        Out += C;
        ++I;
        continue;
      }
      if (I + 1 < Fmt.size() && Fmt[I + 1] == '%') {
        Out += '%';
        I += 2;
        continue;
      }
      // Parse the conversion spec.
      size_t SpecStart = I++;
      while (I < Fmt.size() && (std::isdigit(static_cast<unsigned char>(
                                    Fmt[I])) ||
                                Fmt[I] == '.' || Fmt[I] == '-' ||
                                Fmt[I] == '+' || Fmt[I] == ' ' ||
                                Fmt[I] == '#' || Fmt[I] == '0'))
        ++I;
      if (I >= Fmt.size())
        break;
      char Conv = Fmt[I++];
      std::string Spec = Fmt.substr(SpecStart, I - SpecStart);
      if (Next >= Values.size()) {
        // No values left: emit the spec literally (MATLAB prints the
        // remaining format once when called with no arguments at all;
        // with exhausted arguments it stops).
        if (Values.empty()) {
          Out += Spec;
          continue;
        }
        return Out;
      }
      const Val &V = Values[Next++];
      ConsumedAny = true;
      char Buf[256];
      switch (Conv) {
      case 'd':
      case 'i': {
        std::string S2 = Spec.substr(0, Spec.size() - 1) + "lld";
        std::snprintf(Buf, sizeof(Buf), S2.c_str(),
                      static_cast<long long>(V.Num));
        Out += Buf;
        break;
      }
      case 'f':
      case 'e':
      case 'g':
      case 'E':
      case 'G': {
        std::snprintf(Buf, sizeof(Buf), Spec.c_str(), V.Num);
        Out += Buf;
        break;
      }
      case 's': {
        if (V.FromChar)
          Out += V.Str;
        else
          Out += formatDouble(V.Num);
        break;
      }
      case 'c': {
        Out += static_cast<char>(static_cast<int>(V.Num));
        break;
      }
      default:
        Out += Spec;
        break;
      }
    }
  } while (Next < Values.size() && ConsumedAny);
  return Out;
}

} // namespace

bool matcoal::isKnownBuiltin(const std::string &Name) {
  static const std::set<std::string> Known = {
      "zeros", "ones", "eye", "rand", "randn", "size", "numel", "length",
      "isempty", "abs", "sqrt", "exp", "log", "log2", "log10", "sin",
      "cos", "tan", "asin", "acos", "atan", "atan2", "sinh", "cosh",
      "tanh", "floor", "ceil", "round", "fix", "sign", "mod", "rem",
      "hypot", "min", "max", "sum", "prod", "mean", "norm", "dot", "real",
      "imag", "conj", "angle", "disp", "fprintf", "sprintf", "num2str",
      "error", "linspace", "repmat", "double", "logical", "pi", "eps",
      "diag", "trace", "fliplr", "flipud", "cumsum", "strcmp",
      "Inf", "inf", "NaN", "nan", "true", "false", "i", "j", "__forcond",
      "tic", "toc", "reshape", "__switcheq",
  };
  return Known.count(Name) != 0;
}

std::vector<Array>
matcoal::callBuiltin(const std::string &Name,
                     const std::vector<const Array *> &Args,
                     unsigned NumResults, RandState &Rng, OutputSink &Out) {
  auto A = [&](size_t K) -> const Array & { return arg(Args, K, Name.c_str()); };

  // Constructors.
  if (Name == "zeros" || Name == "ones") {
    Array R = Array::zeros(dimsFromArgs(Args, Name.c_str()));
    if (Name == "ones")
      for (double &V : R.Re)
        V = 1.0;
    return {R};
  }
  if (Name == "eye") {
    std::vector<std::int64_t> Dims = dimsFromArgs(Args, "eye");
    Array R = Array::zeros(Dims);
    std::int64_t N = std::min(R.dim(0), R.dim(1));
    for (std::int64_t I = 0; I < N; ++I)
      R.Re[I + I * R.dim(0)] = 1.0;
    return {R};
  }
  if (Name == "rand" || Name == "randn") {
    Array R = Array::zeros(dimsFromArgs(Args, Name.c_str()));
    if (Name == "rand") {
      for (double &V : R.Re)
        V = Rng.next();
    } else {
      // Box-Muller with a deterministic stream.
      for (double &V : R.Re) {
        double U1 = std::max(Rng.next(), 1e-300);
        double U2 = Rng.next();
        V = std::sqrt(-2.0 * std::log(U1)) * std::cos(2.0 * M_PI * U2);
      }
    }
    return {R};
  }
  if (Name == "linspace") {
    double Lo = A(0).scalarValue();
    double Hi = A(1).scalarValue();
    std::int64_t N = Args.size() >= 3
                         ? static_cast<std::int64_t>(A(2).scalarValue())
                         : 100;
    Array R;
    R.Dims = {1, N};
    R.Re.resize(static_cast<size_t>(N));
    for (std::int64_t I = 0; I < N; ++I)
      R.Re[I] = N == 1 ? Hi : Lo + (Hi - Lo) * static_cast<double>(I) /
                                       static_cast<double>(N - 1);
    return {R};
  }
  if (Name == "repmat") {
    const Array &Src = A(0);
    std::int64_t M = dimArg(A(1), "repmat");
    std::int64_t N = Args.size() >= 3 ? dimArg(A(2), "repmat") : M;
    std::int64_t R = Src.dim(0), C = Src.dim(1);
    Array Out2;
    Out2.Dims = {R * M, C * N};
    Out2.Re.resize(static_cast<size_t>(Out2.numel()));
    if (Src.isComplex())
      Out2.Im.resize(Out2.Re.size());
    for (std::int64_t BJ = 0; BJ < N; ++BJ)
      for (std::int64_t BI = 0; BI < M; ++BI)
        for (std::int64_t J = 0; J < C; ++J)
          for (std::int64_t I = 0; I < R; ++I) {
            std::int64_t DI = BI * R + I, DJ = BJ * C + J;
            Out2.Re[DI + DJ * R * M] = Src.reAt(I + J * R);
            if (Src.isComplex())
              Out2.Im[DI + DJ * R * M] = Src.imAt(I + J * R);
          }
    return {Out2};
  }
  if (Name == "reshape") {
    Array R = A(0);
    std::vector<std::int64_t> Dims;
    for (size_t K = 1; K < Args.size(); ++K)
      Dims.push_back(dimArg(A(K), "reshape"));
    R.reshape(std::move(Dims));
    return {R};
  }

  // Shape queries.
  if (Name == "size") {
    const Array &X = A(0);
    if (NumResults >= 2) {
      std::vector<Array> Rs;
      size_t ND = std::max<size_t>(X.dims().size(), 2);
      for (unsigned K = 0; K < NumResults; ++K) {
        if (K + 1 == NumResults && K + 1 < ND) {
          // Last output folds the trailing dimensions.
          std::int64_t Fold = 1;
          for (size_t D = K; D < ND; ++D)
            Fold *= X.dim(D);
          Rs.push_back(Array::scalar(static_cast<double>(Fold)));
        } else {
          Rs.push_back(Array::scalar(static_cast<double>(X.dim(K))));
        }
      }
      return Rs;
    }
    if (Args.size() >= 2) {
      std::int64_t D = static_cast<std::int64_t>(A(1).scalarValue());
      if (D < 1)
        throw MatError("dimension argument must be positive");
      return {Array::scalar(static_cast<double>(X.dim(
          static_cast<size_t>(D - 1))))};
    }
    Array R;
    size_t ND = std::max<size_t>(X.dims().size(), 2);
    R.Dims = {1, static_cast<std::int64_t>(ND)};
    for (size_t D = 0; D < ND; ++D)
      R.Re.push_back(static_cast<double>(X.dim(D)));
    return {R};
  }
  if (Name == "numel")
    return {Array::scalar(static_cast<double>(A(0).numel()))};
  if (Name == "length") {
    const Array &X = A(0);
    if (X.isEmpty())
      return {Array::scalar(0.0)};
    std::int64_t L = 0;
    for (size_t D = 0; D < std::max<size_t>(X.dims().size(), 2); ++D)
      L = std::max(L, X.dim(D));
    return {Array::scalar(static_cast<double>(L))};
  }
  if (Name == "isempty")
    return {Array::logicalScalar(A(0).isEmpty())};

  // Elementwise math.
  if (Name == "abs") {
    const Array &X = A(0);
    Array R;
    R.Dims = X.dims();
    R.Re.resize(static_cast<size_t>(X.numel()));
    for (std::int64_t I = 0; I < X.numel(); ++I)
      R.Re[I] = std::abs(X.cAt(I));
    return {R};
  }
  if (Name == "sqrt")
    return {mapComplex(A(0), [](Complex Z) { return std::sqrt(Z); })};
  if (Name == "exp")
    return {mapComplex(A(0), [](Complex Z) { return std::exp(Z); })};
  if (Name == "log")
    return {mapComplex(A(0), [](Complex Z) { return std::log(Z); })};
  if (Name == "log2")
    return {mapComplex(A(0), [](Complex Z) {
      return std::log(Z) / std::log(2.0);
    })};
  if (Name == "log10")
    return {mapComplex(A(0), [](Complex Z) {
      return std::log(Z) / std::log(10.0);
    })};
  if (Name == "sin")
    return {mapComplex(A(0), [](Complex Z) { return std::sin(Z); })};
  if (Name == "cos")
    return {mapComplex(A(0), [](Complex Z) { return std::cos(Z); })};
  if (Name == "tan")
    return {mapComplex(A(0), [](Complex Z) { return std::tan(Z); })};
  if (Name == "asin")
    return {mapComplex(A(0), [](Complex Z) { return std::asin(Z); })};
  if (Name == "acos")
    return {mapComplex(A(0), [](Complex Z) { return std::acos(Z); })};
  if (Name == "atan")
    return {mapComplex(A(0), [](Complex Z) { return std::atan(Z); })};
  if (Name == "sinh")
    return {mapComplex(A(0), [](Complex Z) { return std::sinh(Z); })};
  if (Name == "cosh")
    return {mapComplex(A(0), [](Complex Z) { return std::cosh(Z); })};
  if (Name == "tanh")
    return {mapComplex(A(0), [](Complex Z) { return std::tanh(Z); })};
  if (Name == "floor")
    return {mapReal(A(0), [](double X) { return std::floor(X); })};
  if (Name == "ceil")
    return {mapReal(A(0), [](double X) { return std::ceil(X); })};
  if (Name == "round")
    return {mapReal(A(0), [](double X) { return std::round(X); })};
  if (Name == "fix")
    return {mapReal(A(0), [](double X) { return std::trunc(X); })};
  if (Name == "sign")
    return {mapReal(A(0), [](double X) {
      return X > 0 ? 1.0 : (X < 0 ? -1.0 : 0.0);
    })};
  if (Name == "real")
    return {mapReal(A(0), [](double X) { return X; })};
  if (Name == "imag") {
    const Array &X = A(0);
    Array R;
    R.Dims = X.dims();
    R.Re.resize(static_cast<size_t>(X.numel()));
    for (std::int64_t I = 0; I < X.numel(); ++I)
      R.Re[I] = X.imAt(I);
    return {R};
  }
  if (Name == "conj") {
    Array R = A(0);
    for (double &V : R.Im)
      V = -V;
    return {R};
  }
  if (Name == "angle") {
    const Array &X = A(0);
    Array R;
    R.Dims = X.dims();
    R.Re.resize(static_cast<size_t>(X.numel()));
    for (std::int64_t I = 0; I < X.numel(); ++I)
      R.Re[I] = std::arg(X.cAt(I));
    return {R};
  }
  if (Name == "atan2" || Name == "hypot" || Name == "mod" ||
      Name == "rem") {
    const Array &X = A(0);
    const Array &Y = A(1);
    auto Fn = [&](double XV, double YV) {
      if (Name == "atan2")
        return std::atan2(XV, YV);
      if (Name == "hypot")
        return std::hypot(XV, YV);
      if (Name == "rem")
        return YV == 0.0 ? XV : std::fmod(XV, YV);
      return YV == 0.0 ? XV : XV - std::floor(XV / YV) * YV;
    };
    bool XS = X.isScalar(), YS = Y.isScalar();
    const Array &Big = XS && !YS ? Y : X;
    Array R;
    R.Dims = Big.dims();
    R.Re.resize(static_cast<size_t>(Big.numel()));
    for (std::int64_t I = 0; I < Big.numel(); ++I)
      R.Re[I] = Fn(XS ? X.reAt(0) : X.reAt(I), YS ? Y.reAt(0) : Y.reAt(I));
    return {R};
  }

  // Reductions.
  if (Name == "min" || Name == "max") {
    if (Args.size() >= 2) {
      bool IsMax = Name == "max";
      const Array &X = A(0);
      const Array &Y = A(1);
      bool XS = X.isScalar(), YS = Y.isScalar();
      const Array &Big = XS && !YS ? Y : X;
      Array R;
      R.Dims = Big.dims();
      R.Re.resize(static_cast<size_t>(Big.numel()));
      for (std::int64_t I = 0; I < Big.numel(); ++I) {
        double XV = XS ? X.reAt(0) : X.reAt(I);
        double YV = YS ? Y.reAt(0) : Y.reAt(I);
        R.Re[I] = IsMax ? std::max(XV, YV) : std::min(XV, YV);
      }
      return {R};
    }
    return minmax1(A(0), Name == "max", NumResults);
  }
  if (Name == "sum")
    return {reduce(A(0), []() { return Complex(0, 0); },
                   [](Complex Acc, Complex V) { return Acc + V; })};
  if (Name == "prod")
    return {reduce(A(0), []() { return Complex(1, 0); },
                   [](Complex Acc, Complex V) { return Acc * V; })};
  if (Name == "mean") {
    const Array &X = A(0);
    Array S = reduce(X, []() { return Complex(0, 0); },
                     [](Complex Acc, Complex V) { return Acc + V; });
    // Divide by the collapsed extent (first non-singleton dimension).
    std::int64_t N = 1;
    for (size_t D = 0; D < X.dims().size(); ++D)
      if (X.dim(D) > 1) {
        N = X.dim(D);
        break;
      }
    return {binaryOp(Opcode::ElemRDiv, S, Array::scalar(
                                              static_cast<double>(N)))};
  }
  if (Name == "norm") {
    const Array &X = A(0);
    if (!X.isVector() && !X.isScalar() && !X.isEmpty())
      throw MatError("norm is only implemented for vectors");
    double Acc = 0.0;
    for (std::int64_t I = 0; I < X.numel(); ++I)
      Acc += std::norm(X.cAt(I));
    return {Array::scalar(std::sqrt(Acc))};
  }
  if (Name == "dot") {
    const Array &X = A(0);
    const Array &Y = A(1);
    if (X.numel() != Y.numel())
      throw MatError("dot operands must have the same length", TrapKind::ShapeMismatch);
    Complex Acc(0, 0);
    for (std::int64_t I = 0; I < X.numel(); ++I)
      Acc += std::conj(X.cAt(I)) * Y.cAt(I);
    return {Array::complexScalar(Acc.real(), Acc.imag())};
  }

  // Conversions.
  if (Name == "double") {
    Array R = A(0);
    R.toDouble();
    return {R};
  }
  if (Name == "logical") {
    Array R = mapReal(A(0), [](double X) { return X != 0.0; });
    R.setLogical(true);
    return {R};
  }
  if (Name == "num2str" || Name == "sprintf") {
    if (Name == "sprintf") {
      if (Args.empty() || !A(0).isChar())
        throw MatError("sprintf requires a format string");
      std::vector<const Array *> Rest(Args.begin() + 1, Args.end());
      return {Array::charRow(formatPrintf(A(0).toStdString(), Rest))};
    }
    return {Array::charRow(A(0).isScalar() ? formatDouble(A(0).scalarValue())
                                           : A(0).format())};
  }

  if (Name == "diag") {
    const Array &X = A(0);
    if (X.isVector() || X.isScalar()) {
      std::int64_t N = X.numel();
      Array R = Array::zeros({N, N});
      for (std::int64_t I = 0; I < N; ++I)
        R.Re[I + I * N] = X.reAt(I);
      return {R};
    }
    std::int64_t N = std::min(X.dim(0), X.dim(1));
    Array R;
    R.Dims = {N, 1};
    R.Re.resize(static_cast<size_t>(N));
    for (std::int64_t I = 0; I < N; ++I)
      R.Re[I] = X.reAt(I + I * X.dim(0));
    return {R};
  }
  if (Name == "trace") {
    const Array &X = A(0);
    if (X.dim(0) != X.dim(1))
      throw MatError("trace requires a square matrix", TrapKind::ShapeMismatch);
    Complex Acc(0, 0);
    for (std::int64_t I = 0; I < X.dim(0); ++I)
      Acc += X.cAt(I + I * X.dim(0));
    return {Array::complexScalar(Acc.real(), Acc.imag())};
  }
  if (Name == "fliplr" || Name == "flipud") {
    const Array &X = A(0);
    if (X.dims().size() > 2)
      throw MatError("flip of an N-D array is not supported");
    Array R = X;
    std::int64_t D0 = X.dim(0), D1 = X.dim(1);
    for (std::int64_t J = 0; J < D1; ++J)
      for (std::int64_t I = 0; I < D0; ++I) {
        std::int64_t SI = Name == "flipud" ? D0 - 1 - I : I;
        std::int64_t SJ = Name == "fliplr" ? D1 - 1 - J : J;
        R.Re[I + J * D0] = X.reAt(SI + SJ * D0);
        if (X.isComplex())
          R.Im[I + J * D0] = X.imAt(SI + SJ * D0);
      }
    return {R};
  }
  if (Name == "cumsum") {
    const Array &X = A(0);
    Array R = X;
    R.toDouble();
    if (X.isVector() || X.isScalar()) {
      for (std::int64_t I = 1; I < X.numel(); ++I) {
        R.Re[I] += R.Re[I - 1];
        if (R.isComplex())
          R.Im[I] += R.Im[I - 1];
      }
      return {R};
    }
    for (std::int64_t J = 0; J < X.dim(1); ++J)
      for (std::int64_t I = 1; I < X.dim(0); ++I) {
        R.Re[I + J * X.dim(0)] += R.Re[I - 1 + J * X.dim(0)];
        if (R.isComplex())
          R.Im[I + J * X.dim(0)] += R.Im[I - 1 + J * X.dim(0)];
      }
    return {R};
  }
  if (Name == "strcmp") {
    const Array &X = A(0);
    const Array &Y = A(1);
    bool Eq = X.isChar() && Y.isChar() &&
              X.toStdString() == Y.toStdString();
    return {Array::logicalScalar(Eq)};
  }

  // Effects.
  if (Name == "disp") {
    Out.write(A(0).format());
    Out.write("\n");
    return {};
  }
  if (Name == "fprintf") {
    if (Args.empty())
      return {};
    size_t FmtIdx = 0;
    // fprintf(fid, fmt, ...) with numeric fid 1/2 writes to the console.
    if (!A(0).isChar() && Args.size() >= 2 && A(1).isChar())
      FmtIdx = 1;
    if (!A(FmtIdx).isChar())
      throw MatError("fprintf requires a format string");
    std::vector<const Array *> Rest(Args.begin() + FmtIdx + 1, Args.end());
    Out.write(formatPrintf(A(FmtIdx).toStdString(), Rest));
    return {};
  }
  if (Name == "error") {
    std::string Msg = "error";
    if (!Args.empty() && A(0).isChar()) {
      std::vector<const Array *> Rest(Args.begin() + 1, Args.end());
      Msg = formatPrintf(A(0).toStdString(), Rest);
    }
    throw MatError(Msg);
  }

  // Constants and miscellany.
  if (Name == "pi")
    return {Array::scalar(M_PI)};
  if (Name == "eps")
    return {Array::scalar(2.220446049250313e-16)};
  if (Name == "Inf" || Name == "inf")
    return {Array::scalar(std::numeric_limits<double>::infinity())};
  if (Name == "NaN" || Name == "nan")
    return {Array::scalar(std::numeric_limits<double>::quiet_NaN())};
  if (Name == "true")
    return {Array::logicalScalar(true)};
  if (Name == "false")
    return {Array::logicalScalar(false)};
  if (Name == "i" || Name == "j")
    return {Array::complexScalar(0.0, 1.0)};
  if (Name == "tic")
    return {};
  if (Name == "toc")
    return {Array::scalar(0.0)}; // Deterministic runs: no wall clock.
  if (Name == "__switcheq") {
    // switch matching: char rows compare as strings; otherwise equal
    // shape and elementwise-equal values (scalars being the common case).
    const Array &X = A(0);
    const Array &V = A(1);
    bool Match = false;
    if (X.isChar() || V.isChar()) {
      Match = X.isChar() && V.isChar() &&
              X.toStdString() == V.toStdString();
    } else if (X.numel() == V.numel() &&
               X.dims() == V.dims()) {
      Match = true;
      for (std::int64_t I = 0; I < X.numel() && Match; ++I)
        Match = X.cAt(I) == V.cAt(I);
    }
    return {Array::logicalScalar(Match)};
  }
  if (Name == "__forcond") {
    double I = A(0).scalarValue();
    double S = A(1).scalarValue();
    double H = A(2).scalarValue();
    return {Array::logicalScalar(S >= 0.0 ? I <= H : I >= H)};
  }

  throw MatError("undefined function '" + Name + "'", TrapKind::UndefinedName);
}
