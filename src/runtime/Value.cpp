//===- Value.cpp ----------------------------------------------------------===//

#include "runtime/Value.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <sstream>

using namespace matcoal;

const char *matcoal::trapKindName(TrapKind K) {
  switch (K) {
  case TrapKind::None:
    return "none";
  case TrapKind::RuntimeError:
    return "runtime-error";
  case TrapKind::ShapeMismatch:
    return "shape-mismatch";
  case TrapKind::IndexOutOfBounds:
    return "index-out-of-bounds";
  case TrapKind::UndefinedName:
    return "undefined-name";
  case TrapKind::OpBudget:
    return "op-budget";
  case TrapKind::HeapLimit:
    return "heap-limit";
  case TrapKind::RecursionDepth:
    return "recursion-depth";
  case TrapKind::OutOfMemory:
    return "out-of-memory";
  case TrapKind::Deadline:
    return "deadline";
  }
  return "none";
}

Array Array::scalar(double V) {
  Array A;
  A.Dims = {1, 1};
  A.Re = {V};
  return A;
}

Array Array::complexScalar(double ReV, double ImV) {
  Array A;
  A.Dims = {1, 1};
  A.Re = {ReV};
  A.Im = {ImV};
  A.normalizeComplex();
  return A;
}

Array Array::logicalScalar(bool V) {
  Array A = scalar(V ? 1.0 : 0.0);
  A.LogicalFlag = true;
  return A;
}

Array Array::charRow(const std::string &S) {
  Array A;
  A.Dims = {1, static_cast<std::int64_t>(S.size())};
  A.Re.reserve(S.size());
  for (char C : S)
    A.Re.push_back(static_cast<double>(static_cast<unsigned char>(C)));
  A.CharFlag = true;
  return A;
}

Array Array::colonMarker() {
  Array A;
  A.ColonFlag = true;
  return A;
}

Array Array::zeros(std::vector<std::int64_t> Dims) {
  Array A;
  A.Dims = std::move(Dims);
  while (A.Dims.size() < 2)
    A.Dims.push_back(A.Dims.empty() ? 0 : 1);
  for (std::int64_t D : A.Dims)
    if (D < 0)
      throw MatError("array dimensions must be non-negative");
  A.Re.assign(static_cast<size_t>(A.numel()), 0.0);
  return A;
}

bool Array::truth() const {
  if (isEmpty())
    return false;
  for (size_t I = 0; I < Re.size(); ++I)
    if (Re[I] == 0.0 && (Im.empty() || Im[I] == 0.0))
      return false;
  return true;
}

void Array::normalizeComplex() {
  if (Im.empty())
    return;
  for (double V : Im)
    if (V != 0.0)
      return;
  Im.clear();
}

void Array::reshape(std::vector<std::int64_t> NewDims) {
  std::int64_t N = 1;
  for (std::int64_t D : NewDims)
    N *= D;
  if (N != numel())
    throw MatError("reshape must preserve the element count");
  Dims = std::move(NewDims);
  while (Dims.size() < 2)
    Dims.push_back(1);
}

void Array::redefine(std::vector<std::int64_t> NewDims, bool Complex) {
  Dims = std::move(NewDims);
  while (Dims.size() < 2)
    Dims.push_back(Dims.empty() ? 0 : 1);
  size_t N = static_cast<size_t>(numel());
  Re.assign(N, 0.0);
  if (Complex)
    Im.assign(N, 0.0);
  else
    Im.clear();
  CharFlag = false;
  LogicalFlag = false;
}

std::int64_t Array::linearIndex(const std::vector<std::int64_t> &Subs) const {
  std::int64_t Index = 0;
  std::int64_t Stride = 1;
  for (size_t D = 0; D < Subs.size(); ++D) {
    std::int64_t Extent = dim(D);
    if (Subs[D] < 0 || Subs[D] >= Extent)
      throw MatError("index exceeds array bounds", TrapKind::IndexOutOfBounds);
    Index += Subs[D] * Stride;
    Stride *= Extent;
  }
  return Index;
}

std::string Array::toStdString() const {
  std::string Out;
  Out.reserve(Re.size());
  for (double V : Re)
    Out += static_cast<char>(static_cast<int>(V));
  return Out;
}

std::string matcoal::formatDouble(double V) {
  if (std::isnan(V))
    return "NaN";
  if (std::isinf(V))
    return V > 0 ? "Inf" : "-Inf";
  if (V == std::floor(V) && std::fabs(V) < 1e15) {
    char Buf[32];
    std::snprintf(Buf, sizeof(Buf), "%.0f", V);
    return Buf;
  }
  char Buf[40];
  std::snprintf(Buf, sizeof(Buf), "%.5g", V);
  return Buf;
}

static std::string formatElement(const Array &A, std::int64_t I) {
  if (!A.isComplex())
    return formatDouble(A.reAt(I));
  double ImV = A.imAt(I);
  std::string Out = formatDouble(A.reAt(I));
  Out += ImV < 0 ? " - " : " + ";
  Out += formatDouble(std::fabs(ImV));
  Out += "i";
  return Out;
}

std::string Array::format() const {
  if (isColon())
    return "(:)";
  if (isChar())
    return toStdString();
  if (isEmpty())
    return "[]";
  std::ostringstream OS;
  if (isScalar()) {
    OS << formatElement(*this, 0);
    return OS.str();
  }
  // 2-D pages; higher dimensions print page by page.
  std::int64_t R = dim(0), C = dim(1);
  std::int64_t PageElems = R * C;
  std::int64_t Pages = PageElems == 0 ? 0 : numel() / PageElems;
  for (std::int64_t P = 0; P < Pages; ++P) {
    if (Pages > 1)
      OS << "(:,:," << P + 1 << ") =\n";
    for (std::int64_t I = 0; I < R; ++I) {
      OS << "  ";
      for (std::int64_t J = 0; J < C; ++J) {
        if (J)
          OS << "  ";
        OS << formatElement(*this, P * PageElems + J * R + I);
      }
      OS << "\n";
    }
  }
  std::string S = OS.str();
  if (!S.empty() && S.back() == '\n')
    S.pop_back();
  return S;
}

std::string Array::formatNamed(const std::string &Name) const {
  return Name + " =\n" + format() + "\n";
}
