//===- BufferPool.cpp -----------------------------------------------------===//

#include "runtime/BufferPool.h"

using namespace matcoal;

unsigned BufferPool::classOf(std::size_t Cap) {
  unsigned K = 0;
  while ((std::size_t(2) << K) <= Cap && K + 1 < NumClasses)
    ++K;
  return K;
}

std::vector<double> BufferPool::acquire(std::size_t N) {
  // The request's own class plus one above it: a buffer binned at class k
  // has capacity >= 2^k, so the class above fits by construction; within
  // classOf(N) itself membership must be checked. Classes further up are
  // skipped so a tiny request never pins a huge buffer.
  unsigned First = classOf(N);
  unsigned Last = First + 1 < NumClasses ? First + 1 : First;
  for (unsigned K = First; K <= Last; ++K) {
    for (unsigned S = 0; S < Count[K]; ++S) {
      if (Slots[K][S].capacity() < N)
        continue;
      std::vector<double> V = std::move(Slots[K][S]);
      Slots[K][S] = std::move(Slots[K][--Count[K]]);
      charge(-static_cast<std::int64_t>(V.capacity() * sizeof(double)));
      ++Reuses;
      if (OnReuse)
        OnReuse();
      V.resize(N);
      return V;
    }
  }
  return std::vector<double>(N);
}

void BufferPool::release(std::vector<double> &&V) {
  std::size_t Cap = V.capacity();
  if (Cap < MinElems || Cap > MaxElems) {
    std::vector<double>().swap(V);
    return;
  }
  unsigned K = classOf(Cap);
  if (Count[K] >= MaxPerClass) {
    std::vector<double>().swap(V);
    return;
  }
  charge(static_cast<std::int64_t>(Cap * sizeof(double)));
  Slots[K][Count[K]++] = std::move(V);
}

void BufferPool::drain() {
  for (unsigned K = 0; K < NumClasses; ++K) {
    for (unsigned S = 0; S < Count[K]; ++S) {
      charge(-static_cast<std::int64_t>(Slots[K][S].capacity() *
                                        sizeof(double)));
      std::vector<double>().swap(Slots[K][S]);
    }
    Count[K] = 0;
  }
}

namespace {
thread_local BufferPool *ActivePool = nullptr;
} // namespace

PoolScope::PoolScope(BufferPool *P) : Prev(ActivePool) { ActivePool = P; }
PoolScope::~PoolScope() { ActivePool = Prev; }

BufferPool *matcoal::activePool() { return ActivePool; }

std::vector<double> matcoal::poolTake(std::size_t N) {
  if (ActivePool)
    return ActivePool->acquire(N);
  return std::vector<double>(N);
}

void matcoal::poolGive(std::vector<double> &&V) {
  if (ActivePool && !V.empty())
    ActivePool->release(std::move(V));
  else
    std::vector<double>().swap(V);
}
