//===- ThreadPool.h - Persistent worker pool for kernel loops ---*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The VM/interpreter mirror of mcrt's worker pool: a process-wide set of
/// persistent std::threads that kernel hot loops partition contiguous
/// index ranges across. Executors opt in per run through a `ParScope`
/// (the exact shape of BufferPool's `PoolScope`): it carries the resolved
/// thread count, the run's spawned/chunk counters, and the run's
/// CancelToken. Kernels then call `parRun(N, Body)` with a pure-write
/// body `Body(Lo, Hi)` and never see the pool directly.
///
/// **What a body may do: write disjoint elements, nothing else.** Every
/// partitioned loop computes element I of the result from element I of
/// its operands -- identity indexing -- so partitions touch disjoint
/// destination ranges and need no synchronization. Allocation, metering,
/// pool recycling, and profiling all happen on the executing thread
/// *before* the region starts (result buffers are sized first;
/// BufferPool's thread_local registration means workers see no pool at
/// all), which is why the byte-level output is identical at 1 and N
/// threads: the same doubles are written to the same slots, only by
/// different threads.
///
/// Determinism contract: partition boundaries depend only on (N, thread
/// count), never on scheduling, and no partitioned kernel accumulates
/// across partition edges (reductions stay serial for exactly this
/// reason). Cancellation is polled at chunk boundaries inside every
/// partition; an expired token abandons the region and unwinds on the
/// *calling* thread as `TrapKind::Deadline` (a half-written destination
/// is fine -- the trap discards the run's results).
///
/// Concurrent runs (matcoald serves sockets on independent threads) are
/// safe: regions serialize on the pool's region lock, so two VMs time-
/// share the workers rather than corrupt the dispatch state.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_RUNTIME_THREADPOOL_H
#define MATCOAL_RUNTIME_THREADPOOL_H

#include <cstdint>
#include <functional>
#include <vector>

namespace matcoal {

class CancelToken;

/// Minimum elements before a loop is worth partitioning; mirrors mcrt's
/// MCRT_PAR_MIN so the VM and the native tier parallelize the same
/// regions.
constexpr std::int64_t ParMinElems = 16384;

/// Elements per cancel-poll chunk inside a partition (and on the serial
/// path); mirrors MCRT_CANCEL_CHUNK.
constexpr std::int64_t ParCancelChunk = 65536;

/// The per-run threading configuration a ParScope installs.
struct ParConfig {
  /// Resolved worker count for this run; <= 1 means serial.
  int Threads = 1;
  /// Cumulative workers created on the run's behalf (rt.threads.spawned);
  /// null = uncounted. Only the executing thread touches it.
  std::uint64_t *Spawned = nullptr;
  /// Cumulative partitions dispatched across parallel regions
  /// (rt.threads.chunks); null = uncounted.
  std::uint64_t *Chunks = nullptr;
  /// Cumulative nanoseconds workers (and the caller, for its own
  /// partition) spent inside partition bodies (rt.threads.busy_ns);
  /// null = untimed. Like Spawned/Chunks this covers parallel regions
  /// only -- the serial path stays zero-overhead -- and only the
  /// executing thread touches it: workers time their partition into a
  /// region-local slot and the caller folds after the join.
  std::uint64_t *BusyNs = nullptr;
  /// Per-partition durations in nanoseconds, appended one entry per
  /// dispatched partition (the chunk-duration histogram's feed); null =
  /// unrecorded. Same ownership rule as BusyNs.
  std::vector<std::uint64_t> *ChunkNs = nullptr;
  /// Polled at chunk boundaries; expiry throws MatError(Deadline) from
  /// parRun on the executing thread. Null = uncancellable.
  const CancelToken *Cancel = nullptr;
};

/// Scoped installation of the thread's active ParConfig (the one parRun
/// consults). Executors create one per run, exactly like PoolScope.
class ParScope {
public:
  explicit ParScope(const ParConfig &C);
  ~ParScope();
  ParScope(const ParScope &) = delete;
  ParScope &operator=(const ParScope &) = delete;

private:
  ParConfig Prev;
};

/// The configuration installed by the innermost ParScope; a default
/// (serial, uncounted, uncancellable) config when none is installed.
const ParConfig &activePar();

/// Runs \p Body over [0, N) -- partitioned across the worker pool when
/// the active config asks for threads and N >= ParMinElems, serial (in
/// cancel-polled chunks) otherwise. Blocks until the whole range is
/// done. Worker exceptions are captured and rethrown here; an expired
/// CancelToken throws MatError with TrapKind::Deadline.
void parRun(std::int64_t N,
            const std::function<void(std::int64_t, std::int64_t)> &Body);

/// parRun for loops whose iteration unit is coarser than one element:
/// matmul partitions [0, Items) result *columns* while the parallelism
/// threshold must weigh the full M*N element count. Gates on
/// \p TotalElems >= ParMinElems, partitions \p Items.
void parRunUnits(std::int64_t Items, std::int64_t TotalElems,
                 const std::function<void(std::int64_t, std::int64_t)> &Body);

} // namespace matcoal

#endif // MATCOAL_RUNTIME_THREADPOOL_H
