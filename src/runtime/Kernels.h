//===- Kernels.h - Runtime operator kernels ---------------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// MATLAB operation kernels shared by the VM and the AST interpreter:
/// elementwise and linear-algebra operators, R-/L-indexing (with the
/// paper's backward in-place formation for L-indexing), concatenation,
/// ranges, and the builtin library. All kernels throw MatError on
/// semantic errors.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_RUNTIME_KERNELS_H
#define MATCOAL_RUNTIME_KERNELS_H

#include "ir/IR.h"
#include "runtime/Value.h"

#include <cstdint>
#include <string>
#include <vector>

namespace matcoal {

/// Deterministic xorshift64* PRNG standing in for MATLAB's generator; both
/// execution paths use the same stream so outputs compare exactly.
class RandState {
public:
  explicit RandState(std::uint64_t Seed = 88172645463325252ull) {
    // splitmix64 mixing so small seeds (1, 2, ...) still produce
    // well-distributed first draws.
    std::uint64_t Z = Seed + 0x9e3779b97f4a7c15ull;
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ull;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebull;
    S = (Z ^ (Z >> 31)) | 1;
  }

  /// Uniform double in [0, 1).
  double next() {
    S ^= S << 13;
    S ^= S >> 7;
    S ^= S << 17;
    return static_cast<double>(S >> 11) * (1.0 / 9007199254740992.0);
  }

private:
  std::uint64_t S;
};

/// Captures disp/fprintf output so runs can be compared exactly.
class OutputSink {
public:
  void write(const std::string &S) { Buf += S; }
  const std::string &str() const { return Buf; }
  void clear() { Buf.clear(); }

private:
  std::string Buf;
};

/// Binary MATLAB operator (Add..Or opcodes).
Array binaryOp(Opcode Op, const Array &A, const Array &B);

/// Destructive elementwise binary kernel: writes the result through
/// \p Dst, which may alias A, B, both, or neither. Identity-index
/// evaluation (every element is read before the same element is written)
/// makes all aliasing patterns safe once scalar operands are hoisted, so
/// this one entry point covers the plan-aliased in-place case, the
/// stolen-buffer case (Dst is a dying operand moved out of its slot), and
/// destination-passing into a disjoint slot whose capacity is recycled.
/// Falls back to the general kernel for non-elementwise or complex cases.
/// Returns true when the fast path ran (no fresh allocation beyond an
/// in-capacity resize).
bool binaryOpInto(Array &Dst, Opcode Op, const Array &A, const Array &B);

/// Unary operator (Neg, UPlus, Not, Transpose, CTranspose).
Array unaryOp(Opcode Op, const Array &A);

/// lo:hi and lo:step:hi.
Array colonRange(const Array &Lo, const Array &Hi);
Array colonRange3(const Array &Lo, const Array &Step, const Array &Hi);

/// R-indexing: A(subs...). Subscripts may be numeric arrays or the colon
/// marker.
Array subsref(const Array &A, const std::vector<const Array *> &Subs);

/// L-indexing: base(subs...) = rhs, with MATLAB's growth semantics. The
/// base is updated in place using the backward formation of section
/// 2.3.3.1 (safe even when the result shares the base's storage).
void subsasgnInPlace(Array &Base, const Array &Rhs,
                     const std::vector<const Array *> &Subs);

/// [a, b, ...] and [a; b; ...].
Array horzcat(const std::vector<const Array *> &Parts);
Array vertcat(const std::vector<const Array *> &Parts);

/// Calls the named builtin. \p NumResults is how many outputs the caller
/// wants (affects size/min/max). Results are returned in order; effects
/// (disp/fprintf) append to \p Out.
std::vector<Array> callBuiltin(const std::string &Name,
                               const std::vector<const Array *> &Args,
                               unsigned NumResults, RandState &Rng,
                               OutputSink &Out);

/// True if this translation unit implements the named builtin.
bool isKnownBuiltin(const std::string &Name);

} // namespace matcoal

#endif // MATCOAL_RUNTIME_KERNELS_H
