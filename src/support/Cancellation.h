//===- Cancellation.h - Cooperative deadline/cancel token -------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A cooperative cancellation token shared by everything that can run for
/// a long time: the compile pipeline (between stages), the VM and the AST
/// interpreter (inside their instruction/step loops), and the matcoald
/// service's per-request watchdog. The token is *observed*, never
/// enforced: holders poll `expired()` at safe points and unwind with
/// `TrapKind::Deadline` (executors) or a classified diagnostic (the
/// driver), so a deadline can never corrupt shared state the way a
/// hard-killed thread would.
///
/// Thread-safety contract: one thread arms the token (`cancel()` /
/// `setDeadlineIn()`), any number of threads poll it. Both sides are
/// lock-free atomics, so polling from a hot interpreter loop costs a
/// relaxed load. The token carries no callback and owns no resources;
/// whoever allocates it must keep it alive until every observer has
/// finished (in the service, the request owns it for its whole lifetime).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_SUPPORT_CANCELLATION_H
#define MATCOAL_SUPPORT_CANCELLATION_H

#include <atomic>
#include <chrono>
#include <cstdint>

namespace matcoal {

/// Microseconds on the steady clock (the same clock every timer in the
/// system uses); local so support/ does not depend on observe/.
inline std::int64_t cancelNowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// One request's cancellation state: an explicit cancel flag plus an
/// optional absolute deadline on the steady clock.
class CancelToken {
public:
  CancelToken() = default;
  CancelToken(const CancelToken &) = delete;
  CancelToken &operator=(const CancelToken &) = delete;

  /// Arms the explicit cancel flag (e.g. service shutdown).
  void cancel() { Cancelled.store(true, std::memory_order_relaxed); }

  /// Arms a deadline \p Millis from now. Zero disarms the deadline (the
  /// explicit flag still applies).
  void setDeadlineIn(std::int64_t Millis) {
    DeadlineMicros.store(Millis > 0 ? cancelNowMicros() + Millis * 1000 : 0,
                         std::memory_order_relaxed);
  }

  /// Arms an absolute steady-clock deadline in microseconds.
  void setDeadlineMicros(std::int64_t AbsMicros) {
    DeadlineMicros.store(AbsMicros, std::memory_order_relaxed);
  }

  bool cancelled() const {
    return Cancelled.load(std::memory_order_relaxed);
  }

  /// True once cancelled or past the deadline. Safe (and cheap) to call
  /// from any thread at any rate.
  bool expired() const {
    if (cancelled())
      return true;
    std::int64_t D = DeadlineMicros.load(std::memory_order_relaxed);
    return D != 0 && cancelNowMicros() >= D;
  }

  /// Milliseconds until the deadline (clamped at zero); -1 when no
  /// deadline is armed.
  std::int64_t remainingMillis() const {
    std::int64_t D = DeadlineMicros.load(std::memory_order_relaxed);
    if (D == 0)
      return -1;
    std::int64_t Left = (D - cancelNowMicros()) / 1000;
    return Left > 0 ? Left : 0;
  }

private:
  std::atomic<bool> Cancelled{false};
  std::atomic<std::int64_t> DeadlineMicros{0}; ///< 0 = no deadline.
};

} // namespace matcoal

#endif // MATCOAL_SUPPORT_CANCELLATION_H
