//===- Diagnostics.h - Source locations and diagnostics ---------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Source locations and a diagnostic sink shared by the frontend and the
/// compiler passes. Passes never throw; they report here and callers check
/// hasErrors().
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_SUPPORT_DIAGNOSTICS_H
#define MATCOAL_SUPPORT_DIAGNOSTICS_H

#include <string>
#include <vector>

namespace matcoal {

/// A 1-based line/column position in a source buffer. Line 0 means "unknown".
struct SourceLoc {
  unsigned Line = 0;
  unsigned Col = 0;

  bool isValid() const { return Line != 0; }
  std::string str() const;
};

/// Severity of a reported diagnostic.
enum class DiagLevel { Note, Warning, Error };

/// One reported message.
struct Diagnostic {
  DiagLevel Level = DiagLevel::Error;
  SourceLoc Loc;
  std::string Message;

  std::string str() const;
};

/// Collects diagnostics produced while compiling one program.
///
/// The engine is a plain accumulator: the frontend and passes append to it
/// and the driver decides what to do with the result. Messages follow the
/// LLVM style (lowercase first word, no trailing period).
class Diagnostics {
public:
  void report(DiagLevel Level, SourceLoc Loc, std::string Message);
  void error(SourceLoc Loc, std::string Message) {
    report(DiagLevel::Error, Loc, std::move(Message));
  }
  void warning(SourceLoc Loc, std::string Message) {
    report(DiagLevel::Warning, Loc, std::move(Message));
  }
  void note(SourceLoc Loc, std::string Message) {
    report(DiagLevel::Note, Loc, std::move(Message));
  }

  bool hasErrors() const { return NumErrors != 0; }
  unsigned errorCount() const { return NumErrors; }
  const std::vector<Diagnostic> &all() const { return Diags; }

  /// Renders every diagnostic, one per line, for tests and CLI output.
  std::string str() const;

  void clear();

private:
  std::vector<Diagnostic> Diags;
  unsigned NumErrors = 0;
};

} // namespace matcoal

#endif // MATCOAL_SUPPORT_DIAGNOSTICS_H
