//===- Subprocess.h - Timeout-enforcing child processes ---------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The one place that spawns external processes. Everything that used to
/// call `std::system` / `popen` (the emitted-C differential tests, the
/// native benchmark, the profile-agreement round trip) goes through
/// `runSubprocess`, which captures stdout, enforces a wall-clock timeout
/// (a hung `cc` or generated binary gets SIGKILLed, never hangs the
/// suite), and classifies the outcome so callers can tell "no compiler
/// installed" (skip) from "the compiler failed or hung" (fail) without
/// parsing shell exit codes.
///
/// The `cc*` helpers layer the repo's one blessed external-compiler
/// recipe (`cc -std=c99 -I <mcrt> prog.c mcrt.c -lm`) on top, so the
/// flags cannot drift between the fusion tests, the codegen tests, and
/// the benches again.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_SUPPORT_SUBPROCESS_H
#define MATCOAL_SUPPORT_SUBPROCESS_H

#include <string>
#include <utility>
#include <vector>

namespace matcoal {

/// Outcome of one child process.
struct SubprocessResult {
  enum class Status {
    OK,         ///< Process ran to completion (check ExitCode).
    Timeout,    ///< Killed after exceeding the wall-clock budget.
    SpawnError, ///< fork/pipe/exec plumbing failed.
  };

  Status St = Status::SpawnError;
  int ExitCode = -1;  ///< Valid when St == OK; 127 usually = not found.
  std::string Output; ///< Captured stdout (stderr goes to /dev/null).
  std::string Diag;   ///< Human-readable description when not ok().

  /// Ran to completion and exited zero.
  bool ok() const { return St == Status::OK && ExitCode == 0; }
};

/// Runs \p Argv (argv[0] resolved via PATH) with \p ExtraEnv added to the
/// environment, capturing stdout. The child is SIGKILLed once
/// \p TimeoutMs elapses. Never throws; every failure is classified in
/// the result.
SubprocessResult
runSubprocess(const std::vector<std::string> &Argv, int TimeoutMs = 60000,
              const std::vector<std::pair<std::string, std::string>>
                  &ExtraEnv = {});

/// True when the system C compiler answers `cc --version` promptly.
/// Cached after the first probe. Callers in tests use this to *skip*
/// (not fail) when no toolchain is installed.
bool ccAvailable();

/// Compiles \p CPath against the mcrt runtime into \p ExePath:
/// `cc -std=c99 <OptFlag> -pthread -I <McrtDir> <CPath> <McrtDir>/mcrt.c
/// -o <ExePath> -lm`, under a timeout. A non-ok() result carries a Diag
/// that distinguishes a missing compiler from a failing or hanging one.
SubprocessResult ccCompile(const std::string &CPath,
                           const std::string &McrtDir,
                           const std::string &ExePath,
                           const char *OptFlag = "-O1",
                           int TimeoutMs = 120000);

/// The shared-object variant of the blessed recipe, for the in-process
/// native tier: `cc -std=c99 <OptFlag> -shared -fPIC -pthread -I
/// <McrtDir> <CPath> <McrtDir>/mcrt.c -o <SoPath> -lm`. mcrt.c is
/// compiled INTO each
/// object, so every dlopened artifact carries its own private runtime
/// globals (growth stats, PRNG, profile stream) -- the per-session
/// isolation contract extends to native artifacts for free.
SubprocessResult ccCompileShared(const std::string &CPath,
                                 const std::string &McrtDir,
                                 const std::string &SoPath,
                                 const char *OptFlag = "-O2",
                                 int TimeoutMs = 120000);

/// Runs a compiled program under a timeout, capturing stdout.
SubprocessResult
runExecutable(const std::string &ExePath, int TimeoutMs = 60000,
              const std::vector<std::pair<std::string, std::string>>
                  &ExtraEnv = {});

} // namespace matcoal

#endif // MATCOAL_SUPPORT_SUBPROCESS_H
