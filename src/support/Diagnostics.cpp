//===- Diagnostics.cpp ----------------------------------------------------===//

#include "support/Diagnostics.h"

#include <sstream>

using namespace matcoal;

std::string SourceLoc::str() const {
  if (!isValid())
    return "<unknown>";
  std::ostringstream OS;
  OS << Line << ':' << Col;
  return OS.str();
}

static const char *levelName(DiagLevel Level) {
  switch (Level) {
  case DiagLevel::Note:
    return "note";
  case DiagLevel::Warning:
    return "warning";
  case DiagLevel::Error:
    return "error";
  }
  return "unknown";
}

std::string Diagnostic::str() const {
  std::ostringstream OS;
  OS << Loc.str() << ": " << levelName(Level) << ": " << Message;
  return OS.str();
}

void Diagnostics::report(DiagLevel Level, SourceLoc Loc, std::string Message) {
  if (Level == DiagLevel::Error)
    ++NumErrors;
  Diags.push_back(Diagnostic{Level, Loc, std::move(Message)});
}

std::string Diagnostics::str() const {
  std::string Out;
  for (const Diagnostic &D : Diags) {
    Out += D.str();
    Out += '\n';
  }
  return Out;
}

void Diagnostics::clear() {
  Diags.clear();
  NumErrors = 0;
}
