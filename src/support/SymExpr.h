//===- SymExpr.h - Interned symbolic integer expressions --------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Canonicalized, hash-consed symbolic integer expressions.
///
/// These stand in for the Mathematica-backed shape algebra of the MAGICA
/// inference engine the paper uses (its references [17, 18]). Array extents
/// and element counts are represented as SymExpr values; because every
/// expression is canonicalized and interned, the "reuse inferences whenever
/// symbolic equivalence can be established" trait of MAGICA reduces to
/// pointer (id) equality, which is exactly what GCTD's storage-size partial
/// order consumes.
///
/// **Thread-safety contract (matcoald): per-session.** There is no global
/// interner: every compile owns the SymExprContext it allocates
/// (CompiledProgram::Ctx), and interned ids are only comparable within
/// that context. Concurrent requests therefore intern independently and
/// never contend; sharing one context across threads is unsupported (the
/// intern table is an unlocked hash map). This is also why cross-request
/// plan caching (ROADMAP item 1) must key on *printed* canonical forms,
/// not node ids.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_SUPPORT_SYMEXPR_H
#define MATCOAL_SUPPORT_SYMEXPR_H

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace matcoal {

class SymExprContext;

/// The operator at the root of a symbolic expression node.
enum class SymKind { Const, Sym, Add, Mul, Max };

/// One interned expression node. Nodes are immutable and owned by a
/// SymExprContext; equal canonical forms share one node, so two expressions
/// are provably equal iff their node pointers (or ids) are equal.
class SymExprNode {
public:
  SymKind kind() const { return Kind; }
  /// Interning id; stable within one context, usable as a map key.
  unsigned id() const { return Id; }

  /// Constant payload; only valid for Const nodes.
  std::int64_t constValue() const { return ConstVal; }
  /// Display name; only valid for Sym nodes.
  const std::string &symName() const { return SymName; }
  /// Whether a Sym node is known to be non-negative (true for all shape
  /// symbols; arithmetic like n-1 is an Add node, not a Sym).
  bool symNonneg() const { return Nonneg; }

  const std::vector<const SymExprNode *> &operands() const { return Operands; }

  bool isConst() const { return Kind == SymKind::Const; }
  std::optional<std::int64_t> getConst() const {
    if (isConst())
      return ConstVal;
    return std::nullopt;
  }

  /// Renders the expression, e.g. "max(n, (m + -1))".
  std::string str() const;

  /// Nodes are created only by SymExprContext; the constructor is public
  /// solely so the owning std::deque can emplace them.
  SymExprNode() = default;

private:
  friend class SymExprContext;

  SymKind Kind = SymKind::Const;
  unsigned Id = 0;
  std::int64_t ConstVal = 0;
  std::string SymName;
  bool Nonneg = true;
  std::vector<const SymExprNode *> Operands;
};

/// A non-owning handle to an interned node.
using SymExpr = const SymExprNode *;

/// Owns and interns SymExprNodes, and builds canonical forms.
///
/// Canonicalization rules: Add and Mul flatten nested same-kind operands,
/// fold constants, and sort operands by id (Add additionally collects like
/// terms into coefficient * term products); Max flattens, dedupes, and keeps
/// at most one constant. The context is not thread-safe; the compiler uses
/// one context per compilation.
class SymExprContext {
public:
  SymExprContext();
  SymExprContext(const SymExprContext &) = delete;
  SymExprContext &operator=(const SymExprContext &) = delete;

  /// Interns an integer constant.
  SymExpr makeConst(std::int64_t Value);
  /// Interns the named symbol; the same name yields the same node.
  SymExpr makeSym(const std::string &Name, bool Nonneg = true);
  /// Creates a unique symbol with a generated name ("<Stem>0", "<Stem>1"...).
  SymExpr freshSym(const std::string &Stem, bool Nonneg = true);

  SymExpr add(SymExpr A, SymExpr B);
  SymExpr add(const std::vector<SymExpr> &Terms);
  SymExpr sub(SymExpr A, SymExpr B);
  SymExpr mul(SymExpr A, SymExpr B);
  SymExpr mul(const std::vector<SymExpr> &Factors);
  SymExpr max(SymExpr A, SymExpr B);
  SymExpr max(const std::vector<SymExpr> &Args);

  /// Product of the given extents; the element count of a shape tuple.
  SymExpr numElements(const std::vector<SymExpr> &Extents);

  /// True iff the two expressions are provably equal (same canonical node).
  static bool provablyEq(SymExpr A, SymExpr B) { return A == B; }

  /// Conservative "A <= B under all variable assignments" test. Handles
  /// equal nodes, constants, B = max(..., A, ...), B = A + nonnegative,
  /// A = B + nonpositive, constant lower bounds of B, and componentwise
  /// max dominance. Returns false when unsure.
  bool provablyLE(SymExpr A, SymExpr B) const;

  /// Conservative "E >= 0 under all assignments" test.
  bool provablyNonneg(SymExpr E) const;

  /// Conservative "E <= 0 under all assignments" test.
  bool provablyNonpos(SymExpr E) const;

  /// A constant L with L <= E under all assignments (nonneg symbols are
  /// >= 0). Conservative: returns a very small value when unsure.
  std::int64_t constLowerBound(SymExpr E) const;

  unsigned numNodes() const { return static_cast<unsigned>(Nodes.size()); }

private:
  SymExpr intern(SymKind Kind, std::int64_t ConstVal, std::string SymName,
                 bool Nonneg, std::vector<SymExpr> Operands);
  /// Splits A into (coefficient, core term) for like-term collection.
  static std::pair<std::int64_t, SymExpr> splitCoefficient(SymExpr A);

  std::deque<SymExprNode> Nodes;
  std::unordered_map<std::string, SymExpr> InternTable;
  std::unordered_map<std::string, SymExpr> NamedSyms;
  unsigned NextFresh = 0;
};

} // namespace matcoal

#endif // MATCOAL_SUPPORT_SYMEXPR_H
