//===- BitVector.h - Fixed-size dense bit vector ----------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small dense bit vector used by the dataflow analyses (live/available
/// variable sets keyed by VarId).
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_SUPPORT_BITVECTOR_H
#define MATCOAL_SUPPORT_BITVECTOR_H

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace matcoal {

/// Fixed-capacity bit set; all set-algebra operations require operands of
/// the same size.
class BitVector {
public:
  BitVector() = default;
  explicit BitVector(unsigned NumBits)
      : NumBits(NumBits), Words((NumBits + 63) / 64, 0) {}

  unsigned size() const { return NumBits; }

  void set(unsigned I) {
    assert(I < NumBits);
    Words[I / 64] |= (std::uint64_t(1) << (I % 64));
  }
  void reset(unsigned I) {
    assert(I < NumBits);
    Words[I / 64] &= ~(std::uint64_t(1) << (I % 64));
  }
  bool test(unsigned I) const {
    assert(I < NumBits);
    return (Words[I / 64] >> (I % 64)) & 1;
  }
  void clear() {
    for (auto &W : Words)
      W = 0;
  }

  /// Set union; returns true if this changed.
  bool unionWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits);
    bool Changed = false;
    for (std::size_t I = 0; I < Words.size(); ++I) {
      std::uint64_t New = Words[I] | Other.Words[I];
      Changed |= New != Words[I];
      Words[I] = New;
    }
    return Changed;
  }

  /// Set intersection.
  void intersectWith(const BitVector &Other) {
    assert(NumBits == Other.NumBits);
    for (std::size_t I = 0; I < Words.size(); ++I)
      Words[I] &= Other.Words[I];
  }

  /// this = this - Other.
  void subtract(const BitVector &Other) {
    assert(NumBits == Other.NumBits);
    for (std::size_t I = 0; I < Words.size(); ++I)
      Words[I] &= ~Other.Words[I];
  }

  bool operator==(const BitVector &Other) const {
    return NumBits == Other.NumBits && Words == Other.Words;
  }

  unsigned count() const {
    unsigned N = 0;
    for (std::uint64_t W : Words)
      N += static_cast<unsigned>(__builtin_popcountll(W));
    return N;
  }

  bool any() const {
    for (std::uint64_t W : Words)
      if (W)
        return true;
    return false;
  }

  /// Calls \p Fn for each set bit index, in increasing order.
  template <typename FnT> void forEach(FnT Fn) const {
    for (std::size_t WI = 0; WI < Words.size(); ++WI) {
      std::uint64_t W = Words[WI];
      while (W) {
        unsigned Bit = static_cast<unsigned>(__builtin_ctzll(W));
        Fn(static_cast<unsigned>(WI * 64 + Bit));
        W &= W - 1;
      }
    }
  }

private:
  unsigned NumBits = 0;
  std::vector<std::uint64_t> Words;
};

} // namespace matcoal

#endif // MATCOAL_SUPPORT_BITVECTOR_H
