//===- Subprocess.cpp -----------------------------------------------------===//

#include "support/Subprocess.h"

#include <cerrno>
#include <csignal>
#include <cstdlib>
#include <cstring>

#include <fcntl.h>
#include <poll.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace matcoal;

namespace {

std::string argvLine(const std::vector<std::string> &Argv) {
  std::string S;
  for (const std::string &A : Argv) {
    if (!S.empty())
      S += ' ';
    S += A;
  }
  return S;
}

} // namespace

SubprocessResult matcoal::runSubprocess(
    const std::vector<std::string> &Argv, int TimeoutMs,
    const std::vector<std::pair<std::string, std::string>> &ExtraEnv) {
  SubprocessResult R;
  if (Argv.empty()) {
    R.Diag = "empty argv";
    return R;
  }

  int Pipe[2];
  if (pipe(Pipe) != 0) {
    R.Diag = std::string("pipe failed: ") + std::strerror(errno);
    return R;
  }

  pid_t Pid = fork();
  if (Pid < 0) {
    close(Pipe[0]);
    close(Pipe[1]);
    R.Diag = std::string("fork failed: ") + std::strerror(errno);
    return R;
  }

  if (Pid == 0) {
    // Child: stdout -> pipe, stderr -> /dev/null (keeps test logs clean;
    // failures are diagnosed from the exit status), stdin -> /dev/null.
    close(Pipe[0]);
    dup2(Pipe[1], STDOUT_FILENO);
    close(Pipe[1]);
    int DevNull = open("/dev/null", O_RDWR);
    if (DevNull >= 0) {
      dup2(DevNull, STDERR_FILENO);
      dup2(DevNull, STDIN_FILENO);
      close(DevNull);
    }
    for (const auto &[K, V] : ExtraEnv)
      setenv(K.c_str(), V.c_str(), 1);
    std::vector<char *> CArgv;
    CArgv.reserve(Argv.size() + 1);
    for (const std::string &A : Argv)
      CArgv.push_back(const_cast<char *>(A.c_str()));
    CArgv.push_back(nullptr);
    execvp(CArgv[0], CArgv.data());
    _exit(127); // exec failed: conventional "command not found".
  }

  // Parent: drain the pipe under the deadline, then reap.
  close(Pipe[1]);
  const int SliceMs = 50;
  int WaitedMs = 0;
  bool TimedOut = false;
  char Buf[4096];
  for (;;) {
    struct pollfd PFD = {Pipe[0], POLLIN, 0};
    int N = poll(&PFD, 1, SliceMs);
    if (N > 0) {
      ssize_t Got = read(Pipe[0], Buf, sizeof(Buf));
      if (Got > 0) {
        R.Output.append(Buf, static_cast<size_t>(Got));
        continue;
      }
      break; // EOF (child exited or closed stdout).
    }
    if (N < 0 && errno != EINTR)
      break;
    WaitedMs += SliceMs;
    if (TimeoutMs > 0 && WaitedMs >= TimeoutMs) {
      TimedOut = true;
      kill(Pid, SIGKILL);
      break;
    }
  }
  close(Pipe[0]);

  int Status = 0;
  while (waitpid(Pid, &Status, 0) < 0 && errno == EINTR) {
  }

  if (TimedOut) {
    R.St = SubprocessResult::Status::Timeout;
    R.Diag = "'" + argvLine(Argv) + "' exceeded " +
             std::to_string(TimeoutMs) + "ms and was killed";
    return R;
  }
  R.St = SubprocessResult::Status::OK;
  if (WIFEXITED(Status))
    R.ExitCode = WEXITSTATUS(Status);
  else if (WIFSIGNALED(Status)) {
    R.ExitCode = 128 + WTERMSIG(Status);
    R.Diag = "'" + argvLine(Argv) + "' killed by signal " +
             std::to_string(WTERMSIG(Status));
    return R;
  }
  if (R.ExitCode != 0)
    R.Diag = "'" + argvLine(Argv) + "' exited " + std::to_string(R.ExitCode) +
             (R.ExitCode == 127 ? " (command not found?)" : "");
  return R;
}

bool matcoal::ccAvailable() {
  static int Have = -1;
  if (Have < 0)
    Have = runSubprocess({"cc", "--version"}, 10000).ok() ? 1 : 0;
  return Have == 1;
}

SubprocessResult matcoal::ccCompile(const std::string &CPath,
                                    const std::string &McrtDir,
                                    const std::string &ExePath,
                                    const char *OptFlag, int TimeoutMs) {
  if (!ccAvailable()) {
    SubprocessResult R;
    R.St = SubprocessResult::Status::SpawnError;
    R.Diag = "no system C compiler (cc) on PATH";
    return R;
  }
  SubprocessResult R = runSubprocess({"cc", "-std=c99", OptFlag, "-pthread",
                                      "-I", McrtDir, CPath,
                                      McrtDir + "/mcrt.c", "-o", ExePath,
                                      "-lm"},
                                     TimeoutMs);
  if (R.St == SubprocessResult::Status::Timeout)
    R.Diag = "cc hung compiling " + CPath + ": " + R.Diag;
  else if (!R.ok())
    R.Diag = "cc failed on " + CPath + ": " + R.Diag;
  return R;
}

SubprocessResult matcoal::ccCompileShared(const std::string &CPath,
                                          const std::string &McrtDir,
                                          const std::string &SoPath,
                                          const char *OptFlag,
                                          int TimeoutMs) {
  if (!ccAvailable()) {
    SubprocessResult R;
    R.St = SubprocessResult::Status::SpawnError;
    R.Diag = "no system C compiler (cc) on PATH";
    return R;
  }
  SubprocessResult R = runSubprocess({"cc", "-std=c99", OptFlag, "-shared",
                                      "-fPIC", "-pthread", "-I", McrtDir,
                                      CPath, McrtDir + "/mcrt.c", "-o",
                                      SoPath, "-lm"},
                                     TimeoutMs);
  if (R.St == SubprocessResult::Status::Timeout)
    R.Diag = "cc hung compiling " + CPath + ": " + R.Diag;
  else if (!R.ok())
    R.Diag = "cc failed on " + CPath + ": " + R.Diag;
  return R;
}

SubprocessResult matcoal::runExecutable(
    const std::string &ExePath, int TimeoutMs,
    const std::vector<std::pair<std::string, std::string>> &ExtraEnv) {
  return runSubprocess({ExePath}, TimeoutMs, ExtraEnv);
}
