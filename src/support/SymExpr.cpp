//===- SymExpr.cpp --------------------------------------------------------===//

#include "support/SymExpr.h"

#include <algorithm>
#include <cassert>
#include <sstream>

using namespace matcoal;

std::string SymExprNode::str() const {
  switch (Kind) {
  case SymKind::Const:
    return std::to_string(ConstVal);
  case SymKind::Sym:
    return SymName;
  case SymKind::Add: {
    std::string Out = "(";
    for (size_t I = 0; I < Operands.size(); ++I) {
      if (I)
        Out += " + ";
      Out += Operands[I]->str();
    }
    return Out + ")";
  }
  case SymKind::Mul: {
    std::string Out = "(";
    for (size_t I = 0; I < Operands.size(); ++I) {
      if (I)
        Out += "*";
      Out += Operands[I]->str();
    }
    return Out + ")";
  }
  case SymKind::Max: {
    std::string Out = "max(";
    for (size_t I = 0; I < Operands.size(); ++I) {
      if (I)
        Out += ", ";
      Out += Operands[I]->str();
    }
    return Out + ")";
  }
  }
  return "<invalid>";
}

SymExprContext::SymExprContext() = default;

SymExpr SymExprContext::intern(SymKind Kind, std::int64_t ConstVal,
                               std::string SymName, bool Nonneg,
                               std::vector<SymExpr> Operands) {
  std::ostringstream Key;
  Key << static_cast<int>(Kind) << '|' << ConstVal << '|' << SymName << '|'
      << Nonneg << '|';
  for (SymExpr Op : Operands)
    Key << Op->id() << ',';
  auto It = InternTable.find(Key.str());
  if (It != InternTable.end())
    return It->second;

  Nodes.emplace_back();
  SymExprNode &N = Nodes.back();
  N.Kind = Kind;
  N.Id = static_cast<unsigned>(Nodes.size() - 1);
  N.ConstVal = ConstVal;
  N.SymName = std::move(SymName);
  N.Nonneg = Nonneg;
  N.Operands = std::move(Operands);
  InternTable.emplace(Key.str(), &N);
  return &N;
}

SymExpr SymExprContext::makeConst(std::int64_t Value) {
  return intern(SymKind::Const, Value, "", Value >= 0, {});
}

SymExpr SymExprContext::makeSym(const std::string &Name, bool Nonneg) {
  auto It = NamedSyms.find(Name);
  if (It != NamedSyms.end())
    return It->second;
  SymExpr S = intern(SymKind::Sym, 0, Name, Nonneg, {});
  NamedSyms.emplace(Name, S);
  return S;
}

SymExpr SymExprContext::freshSym(const std::string &Stem, bool Nonneg) {
  std::string Name = Stem + std::to_string(NextFresh++);
  // Fresh symbols are guaranteed unique; still route through the named
  // table so str()-identical symbols cannot collide with later makeSym
  // calls.
  return makeSym(Name, Nonneg);
}

std::pair<std::int64_t, SymExpr> SymExprContext::splitCoefficient(SymExpr A) {
  if (A->kind() == SymKind::Mul && A->operands().size() >= 2 &&
      A->operands().front()->isConst()) {
    // Canonical Mul places its (single) constant first.
    std::int64_t Coef = A->operands().front()->constValue();
    // Rebuild the core term without re-canonicalizing; the operand list is
    // already canonical, so reuse the tail directly when it is a single
    // node, otherwise keep the Mul node as the collection key by pointer.
    if (A->operands().size() == 2)
      return {Coef, A->operands()[1]};
  }
  return {1, A};
}

SymExpr SymExprContext::add(SymExpr A, SymExpr B) {
  return add(std::vector<SymExpr>{A, B});
}

SymExpr SymExprContext::add(const std::vector<SymExpr> &Terms) {
  std::int64_t ConstSum = 0;
  // Collect like terms: core term id -> (coefficient, node).
  std::vector<std::pair<SymExpr, std::int64_t>> Cores;
  auto AccumulateTerm = [&](SymExpr T) {
    auto [Coef, Core] = splitCoefficient(T);
    for (auto &Entry : Cores) {
      if (Entry.first == Core) {
        Entry.second += Coef;
        return;
      }
    }
    Cores.emplace_back(Core, Coef);
  };
  // Flatten nested adds one level deep (operands of an interned Add are
  // never themselves Adds, so one level suffices).
  for (SymExpr T : Terms) {
    if (T->isConst()) {
      ConstSum += T->constValue();
      continue;
    }
    if (T->kind() == SymKind::Add) {
      for (SymExpr Inner : T->operands()) {
        if (Inner->isConst())
          ConstSum += Inner->constValue();
        else
          AccumulateTerm(Inner);
      }
      continue;
    }
    AccumulateTerm(T);
  }

  std::vector<SymExpr> Ops;
  for (auto &[Core, Coef] : Cores) {
    if (Coef == 0)
      continue;
    if (Coef == 1)
      Ops.push_back(Core);
    else
      Ops.push_back(mul(makeConst(Coef), Core));
  }
  std::sort(Ops.begin(), Ops.end(),
            [](SymExpr L, SymExpr R) { return L->id() < R->id(); });
  if (ConstSum != 0)
    Ops.push_back(makeConst(ConstSum));
  if (Ops.empty())
    return makeConst(0);
  if (Ops.size() == 1)
    return Ops.front();
  return intern(SymKind::Add, 0, "", true, std::move(Ops));
}

SymExpr SymExprContext::sub(SymExpr A, SymExpr B) {
  return add(A, mul(makeConst(-1), B));
}

SymExpr SymExprContext::mul(SymExpr A, SymExpr B) {
  return mul(std::vector<SymExpr>{A, B});
}

SymExpr SymExprContext::mul(const std::vector<SymExpr> &Factors) {
  std::int64_t ConstProd = 1;
  std::vector<SymExpr> Ops;
  for (SymExpr F : Factors) {
    if (F->isConst()) {
      ConstProd *= F->constValue();
      continue;
    }
    if (F->kind() == SymKind::Mul) {
      for (SymExpr Inner : F->operands()) {
        if (Inner->isConst())
          ConstProd *= Inner->constValue();
        else
          Ops.push_back(Inner);
      }
      continue;
    }
    Ops.push_back(F);
  }
  if (ConstProd == 0)
    return makeConst(0);
  std::sort(Ops.begin(), Ops.end(),
            [](SymExpr L, SymExpr R) { return L->id() < R->id(); });
  if (Ops.empty())
    return makeConst(ConstProd);
  if (ConstProd == 1 && Ops.size() == 1)
    return Ops.front();
  std::vector<SymExpr> Final;
  if (ConstProd != 1)
    Final.push_back(makeConst(ConstProd));
  Final.insert(Final.end(), Ops.begin(), Ops.end());
  if (Final.size() == 1)
    return Final.front();
  return intern(SymKind::Mul, 0, "", true, std::move(Final));
}

SymExpr SymExprContext::max(SymExpr A, SymExpr B) {
  return max(std::vector<SymExpr>{A, B});
}

SymExpr SymExprContext::max(const std::vector<SymExpr> &Args) {
  assert(!Args.empty() && "max of no arguments");
  std::optional<std::int64_t> ConstMax;
  std::vector<SymExpr> Ops;
  auto AddOp = [&](SymExpr E) {
    if (std::find(Ops.begin(), Ops.end(), E) == Ops.end())
      Ops.push_back(E);
  };
  for (SymExpr A : Args) {
    if (A->isConst()) {
      ConstMax = ConstMax ? std::max(*ConstMax, A->constValue())
                          : A->constValue();
      continue;
    }
    if (A->kind() == SymKind::Max) {
      for (SymExpr Inner : A->operands()) {
        if (Inner->isConst())
          ConstMax = ConstMax ? std::max(*ConstMax, Inner->constValue())
                              : Inner->constValue();
        else
          AddOp(Inner);
      }
      continue;
    }
    AddOp(A);
  }
  // max(x, 0) == x for non-negative x; shape extents are non-negative, so a
  // non-positive constant bound is redundant whenever every other operand
  // is provably non-negative.
  if (ConstMax && *ConstMax <= 0 && !Ops.empty()) {
    bool AllNonneg = true;
    for (SymExpr Op : Ops)
      AllNonneg = AllNonneg && provablyNonneg(Op);
    if (AllNonneg)
      ConstMax.reset();
  }
  // Dominance pruning: an operand provably <= another operand (or <= the
  // collected constant) contributes nothing to the maximum. This folds the
  // subsasgn growth pattern max(n, n-1) back to n, keeping extents interned
  // on one node so GCTD's size order keeps succeeding.
  if (Ops.size() > 1 || (ConstMax && !Ops.empty())) {
    std::vector<SymExpr> Kept;
    for (size_t I = 0; I < Ops.size(); ++I) {
      bool Dominated = false;
      for (size_t J = 0; J < Ops.size() && !Dominated; ++J) {
        if (I == J || !provablyLE(Ops[I], Ops[J]))
          continue;
        // Mutual dominance (provable equality would be one node, but be
        // safe): keep the lower id only.
        if (provablyLE(Ops[J], Ops[I]))
          Dominated = Ops[J]->id() < Ops[I]->id();
        else
          Dominated = true;
      }
      if (!Dominated)
        Kept.push_back(Ops[I]);
    }
    Ops = std::move(Kept);
    // A constant below some operand's guaranteed lower bound is redundant.
    if (ConstMax)
      for (SymExpr Op : Ops)
        if (constLowerBound(Op) >= *ConstMax) {
          ConstMax.reset();
          break;
        }
  }
  std::sort(Ops.begin(), Ops.end(),
            [](SymExpr L, SymExpr R) { return L->id() < R->id(); });
  if (Ops.empty())
    return makeConst(*ConstMax);
  if (ConstMax)
    Ops.push_back(makeConst(*ConstMax));
  if (Ops.size() == 1)
    return Ops.front();
  return intern(SymKind::Max, 0, "", true, std::move(Ops));
}

SymExpr SymExprContext::numElements(const std::vector<SymExpr> &Extents) {
  if (Extents.empty())
    return makeConst(1);
  return mul(Extents);
}

bool SymExprContext::provablyNonneg(SymExpr E) const {
  switch (E->kind()) {
  case SymKind::Const:
    return E->constValue() >= 0;
  case SymKind::Sym:
    return E->symNonneg();
  case SymKind::Add:
  case SymKind::Mul: {
    for (SymExpr Op : E->operands())
      if (!provablyNonneg(Op))
        return false;
    return true;
  }
  case SymKind::Max: {
    for (SymExpr Op : E->operands())
      if (provablyNonneg(Op))
        return true;
    return false;
  }
  }
  return false;
}

bool SymExprContext::provablyNonpos(SymExpr E) const {
  switch (E->kind()) {
  case SymKind::Const:
    return E->constValue() <= 0;
  case SymKind::Sym:
    return false; // Shape symbols are only known non-negative.
  case SymKind::Add: {
    for (SymExpr Op : E->operands())
      if (!provablyNonpos(Op))
        return false;
    return true;
  }
  case SymKind::Mul: {
    // Exactly one non-positive factor with the rest non-negative.
    unsigned Nonpos = 0;
    for (SymExpr Op : E->operands()) {
      if (provablyNonpos(Op))
        ++Nonpos;
      else if (!provablyNonneg(Op))
        return false;
    }
    return Nonpos == 1;
  }
  case SymKind::Max: {
    for (SymExpr Op : E->operands())
      if (!provablyNonpos(Op))
        return false;
    return true;
  }
  }
  return false;
}

std::int64_t SymExprContext::constLowerBound(SymExpr E) const {
  constexpr std::int64_t Unknown = INT64_MIN / 4; // Headroom for sums.
  switch (E->kind()) {
  case SymKind::Const:
    return E->constValue();
  case SymKind::Sym:
    return E->symNonneg() ? 0 : Unknown;
  case SymKind::Add: {
    std::int64_t Sum = 0;
    for (SymExpr Op : E->operands()) {
      std::int64_t L = constLowerBound(Op);
      if (L <= Unknown)
        return Unknown;
      Sum += L;
    }
    return Sum;
  }
  case SymKind::Mul:
    return provablyNonneg(E) ? 0 : Unknown;
  case SymKind::Max: {
    std::int64_t Best = Unknown;
    for (SymExpr Op : E->operands())
      Best = std::max(Best, constLowerBound(Op));
    return Best;
  }
  }
  return Unknown;
}

bool SymExprContext::provablyLE(SymExpr A, SymExpr B) const {
  if (A == B)
    return true;
  if (A->isConst() && B->isConst())
    return A->constValue() <= B->constValue();
  // B = max(..., X, ...) with A <= X for some operand.
  if (B->kind() == SymKind::Max) {
    for (SymExpr Op : B->operands())
      if (provablyLE(A, Op))
        return true;
  }
  // B = A + (provably non-negative remainder).
  if (B->kind() == SymKind::Add) {
    std::vector<SymExpr> Rest;
    bool Found = false;
    for (SymExpr Op : B->operands()) {
      if (!Found && Op == A) {
        Found = true;
        continue;
      }
      Rest.push_back(Op);
    }
    if (Found) {
      bool AllNonneg = true;
      for (SymExpr Op : Rest)
        AllNonneg = AllNonneg && provablyNonneg(Op);
      if (AllNonneg)
        return true;
    }
  }
  // A = B + (provably non-positive remainder), e.g. n - 1 <= n.
  if (A->kind() == SymKind::Add) {
    std::vector<SymExpr> Rest;
    bool Found = false;
    for (SymExpr Op : A->operands()) {
      if (!Found && Op == B) {
        Found = true;
        continue;
      }
      Rest.push_back(Op);
    }
    if (Found) {
      bool AllNonpos = true;
      for (SymExpr Op : Rest)
        AllNonpos = AllNonpos && provablyNonpos(Op);
      if (AllNonpos)
        return true;
    }
  }
  // A constant below B's guaranteed lower bound.
  if (A->isConst() && A->constValue() <= constLowerBound(B) &&
      constLowerBound(B) > INT64_MIN / 4)
    return true;
  // max(xs) <= B when every operand is <= B.
  if (A->kind() == SymKind::Max) {
    bool All = true;
    for (SymExpr Op : A->operands())
      All = All && provablyLE(Op, B);
    if (All)
      return true;
  }
  // 0 <= anything provably non-negative.
  if (A->isConst() && A->constValue() == 0 && provablyNonneg(B))
    return true;
  return false;
}
