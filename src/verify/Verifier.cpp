//===- Verifier.cpp - IR, SSA, type and storage-plan verification ---------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "verify/Verifier.h"

#include "analysis/Dominators.h"
#include "analysis/Liveness.h"

#include <algorithm>
#include <functional>
#include <map>
#include <sstream>

using namespace matcoal;

std::string VerifierIssue::str() const {
  return "[" + Check + "] " + Function + ": " + Message;
}

void VerifierReport::add(std::string Check, const Function &F,
                         std::string Message) {
  Issues.push_back(VerifierIssue{std::move(Check), F.Name,
                                 std::move(Message)});
}

void VerifierReport::reportTo(Diagnostics &Diags, DiagLevel Level) const {
  for (const VerifierIssue &I : Issues)
    Diags.report(Level, SourceLoc{}, "verifier: " + I.str());
}

std::string VerifierReport::str() const {
  std::string Out;
  for (const VerifierIssue &I : Issues) {
    Out += I.str();
    Out += '\n';
  }
  return Out;
}

namespace {

bool inVarRange(const Function &F, VarId V) {
  return V >= 0 && static_cast<unsigned>(V) < F.numVars();
}

std::string varName(const Function &F, VarId V) {
  if (!inVarRange(F, V))
    return "<var#" + std::to_string(V) + ">";
  return "'" + F.var(V).Name + "'";
}

std::string blockName(BlockId B) { return "b" + std::to_string(B); }

bool inBlockRange(const Function &F, BlockId B) {
  return B >= 0 && static_cast<size_t>(B) < F.Blocks.size();
}

} // namespace

bool matcoal::verifyCFG(const Function &F, VerifierReport &R) {
  size_t Before = R.issues().size();
  if (F.Blocks.empty()) {
    R.add("cfg", F, "function has no basic blocks");
    return false;
  }

  for (VarId P : F.Params)
    if (!inVarRange(F, P))
      R.add("cfg", F, "parameter id " + std::to_string(P) + " out of range");
  for (VarId O : F.Outputs)
    if (!inVarRange(F, O))
      R.add("cfg", F, "output id " + std::to_string(O) + " out of range");

  bool EdgesOk = true;
  for (size_t BI = 0; BI < F.Blocks.size(); ++BI) {
    const BasicBlock *BB = F.Blocks[BI].get();
    if (!BB) {
      R.add("cfg", F, "null block at index " + std::to_string(BI));
      EdgesOk = false;
      continue;
    }
    if (BB->Id != static_cast<BlockId>(BI)) {
      R.add("cfg", F,
            blockName(BB->Id) + " stored at index " + std::to_string(BI));
      EdgesOk = false;
    }
    if (BB->Instrs.empty()) {
      R.add("cfg", F, blockName(BB->Id) + " is empty (no terminator)");
      EdgesOk = false;
      continue;
    }
    for (size_t I = 0; I < BB->Instrs.size(); ++I) {
      const Instr &In = BB->Instrs[I];
      bool Term = isTerminator(In.Op);
      bool Last = I + 1 == BB->Instrs.size();
      if (Term && !Last)
        R.add("cfg", F,
              std::string(opcodeName(In.Op)) + " terminator in the middle of " +
                  blockName(BB->Id));
      if (!Term && Last) {
        R.add("cfg", F, blockName(BB->Id) + " does not end in a terminator");
        EdgesOk = false;
      }
      for (VarId Res : In.Results)
        if (!inVarRange(F, Res))
          R.add("cfg", F,
                "result id " + std::to_string(Res) + " out of range in " +
                    blockName(BB->Id));
      for (VarId Op : In.Operands)
        if (!inVarRange(F, Op))
          R.add("cfg", F,
                "operand id " + std::to_string(Op) + " out of range in " +
                    blockName(BB->Id));
      if (In.Op == Opcode::Jmp || In.Op == Opcode::Br) {
        if (!inBlockRange(F, In.Target1)) {
          R.add("cfg", F,
                "branch target " + std::to_string(In.Target1) +
                    " out of range in " + blockName(BB->Id));
          EdgesOk = false;
        }
        if (In.Op == Opcode::Br && !inBlockRange(F, In.Target2)) {
          R.add("cfg", F,
                "branch target " + std::to_string(In.Target2) +
                    " out of range in " + blockName(BB->Id));
          EdgesOk = false;
        }
      }
    }
  }

  // Predecessor lists must be exactly the multiset of incoming successor
  // edges; phi operand alignment depends on this.
  if (EdgesOk) {
    std::vector<std::vector<BlockId>> Incoming(F.Blocks.size());
    for (const auto &BB : F.Blocks)
      if (BB->hasTerminator())
        for (BlockId S : BB->successors())
          Incoming[S].push_back(BB->Id);
    for (const auto &BB : F.Blocks) {
      std::vector<BlockId> Have = BB->Preds;
      std::vector<BlockId> Want = Incoming[BB->Id];
      std::sort(Have.begin(), Have.end());
      std::sort(Want.begin(), Want.end());
      if (Have != Want)
        R.add("cfg", F,
              "predecessor list of " + blockName(BB->Id) +
                  " disagrees with the successor edges");
    }
  }
  return R.issues().size() == Before;
}

bool matcoal::verifySSA(const Function &F, VerifierReport &R) {
  size_t Before = R.issues().size();
  unsigned N = F.numVars();

  // Definition sites. Parameters count as a definition at function entry.
  struct Site {
    BlockId Block = NoBlock;
    int Index = -1;
  };
  std::vector<Site> DefSite(N);
  std::vector<int> DefCount(N, 0);
  for (VarId P : F.Params) {
    if (!inVarRange(F, P))
      continue;
    ++DefCount[P];
    DefSite[P] = Site{0, -1};
  }
  for (const auto &BB : F.Blocks) {
    for (size_t I = 0; I < BB->Instrs.size(); ++I) {
      for (VarId Res : BB->Instrs[I].Results) {
        if (!inVarRange(F, Res))
          continue;
        if (++DefCount[Res] == 1)
          DefSite[Res] = Site{BB->Id, static_cast<int>(I)};
      }
    }
  }
  for (unsigned V = 0; V < N; ++V)
    if (DefCount[V] > 1)
      R.add("ssa", F,
            varName(F, V) + " has " + std::to_string(DefCount[V]) +
                " definitions" +
                (F.var(V).IsParam ? " (parameter redefined)" : ""));

  // Phi placement and arity.
  for (const auto &BB : F.Blocks) {
    bool SeenNonPhi = false;
    for (const Instr &In : BB->Instrs) {
      if (In.Op != Opcode::Phi) {
        SeenNonPhi = true;
        continue;
      }
      if (SeenNonPhi)
        R.add("ssa", F,
              "phi after a non-phi instruction in " + blockName(BB->Id));
      if (In.Operands.size() != BB->Preds.size())
        R.add("ssa", F,
              "phi in " + blockName(BB->Id) + " has " +
                  std::to_string(In.Operands.size()) + " operands for " +
                  std::to_string(BB->Preds.size()) + " predecessors");
    }
  }

  // Definitions dominate uses. Phi operands are uses at the end of the
  // matching predecessor. Unreachable blocks are skipped (they carry no
  // dataflow facts).
  DominatorTree DT(F);
  auto CheckUse = [&](VarId Op, BlockId UseBlock, int UseIndex,
                      const std::string &Where) {
    if (!inVarRange(F, Op))
      return;
    const Site &D = DefSite[Op];
    if (D.Block == NoBlock) {
      R.add("ssa", F, "use of undefined variable " + varName(F, Op) + Where);
      return;
    }
    bool Dominates;
    if (UseIndex >= 0 && D.Block == UseBlock)
      Dominates = D.Index < UseIndex;
    else
      Dominates = DT.dominates(D.Block, UseBlock);
    if (!Dominates)
      R.add("ssa", F,
            "definition of " + varName(F, Op) + " does not dominate its use" +
                Where);
  };
  for (const auto &BB : F.Blocks) {
    if (!DT.isReachable(BB->Id))
      continue;
    for (size_t I = 0; I < BB->Instrs.size(); ++I) {
      const Instr &In = BB->Instrs[I];
      if (In.Op == Opcode::Phi) {
        for (size_t K = 0; K < In.Operands.size(); ++K) {
          if (K >= BB->Preds.size())
            break; // Arity mismatch already reported.
          // The use happens at the end of the predecessor: a definition
          // anywhere in that block (or dominating it) is fine.
          CheckUse(In.Operands[K], BB->Preds[K], -1,
                   " (phi in " + blockName(BB->Id) + ", edge from " +
                       blockName(BB->Preds[K]) + ")");
        }
        continue;
      }
      for (VarId Op : In.Operands)
        CheckUse(Op, BB->Id, static_cast<int>(I),
                 " in " + blockName(BB->Id));
    }
  }
  return R.issues().size() == Before;
}

bool matcoal::verifyTypes(const Function &F, const TypeInference &TI,
                          VerifierReport &R) {
  size_t Before = R.issues().size();
  if (!TI.hasTypesFor(F)) {
    R.add("types", F, "no inference results for function");
    return false;
  }
  const std::vector<VarType> &Types = TI.functionTypes(F);
  if (Types.size() != F.numVars()) {
    R.add("types", F,
          "type table has " + std::to_string(Types.size()) +
              " entries for " + std::to_string(F.numVars()) + " variables");
    return false;
  }
  for (unsigned V = 0; V < F.numVars(); ++V) {
    const VarType &T = Types[V];
    if (T.isBottom() || T.IT == IntrinsicType::Colon)
      continue;
    if (T.Extents.size() < 2)
      R.add("types", F,
            varName(F, V) + " has a rank-" +
                std::to_string(T.Extents.size()) +
                " shape (MATLAB values are rank >= 2)");
    for (SymExpr E : T.Extents)
      if (!E) {
        R.add("types", F, varName(F, V) + " has a null extent");
        break;
      }
  }
  // Illegal is the lattice top: a variable that reached it and still feeds
  // another computation means inference accepted a type error.
  std::vector<char> Flagged(F.numVars(), 0);
  for (const auto &BB : F.Blocks)
    for (const Instr &In : BB->Instrs)
      for (VarId Op : In.Operands) {
        if (!inVarRange(F, Op) || Flagged[Op])
          continue;
        if (Types[Op].IT == IntrinsicType::Illegal) {
          Flagged[Op] = 1;
          R.add("types", F,
                varName(F, Op) + " has the illegal type but feeds " +
                    opcodeName(In.Op));
        }
      }
  return R.issues().size() == Before;
}

bool matcoal::verifyStoragePlan(const Function &F, const TypeInference &TI,
                                const StoragePlan &Plan, VerifierReport &R,
                                const RangeAnalysis *RA) {
  size_t Before = R.issues().size();
  unsigned N = F.numVars();
  if (Plan.GroupOf.size() != N) {
    R.add("plan", F,
          "GroupOf table has " + std::to_string(Plan.GroupOf.size()) +
              " entries for " + std::to_string(N) + " variables");
    return false;
  }
  if (!TI.hasTypesFor(F)) {
    R.add("plan", F, "no inference results to validate the plan against");
    return false;
  }
  const std::vector<VarType> &Types = TI.functionTypes(F);
  if (Types.size() != N) {
    R.add("plan", F, "type table size disagrees with the variable table");
    return false;
  }
  int NumGroups = static_cast<int>(Plan.Groups.size());

  // Membership tables must agree in both directions.
  bool MappingOk = true;
  for (unsigned V = 0; V < N; ++V) {
    int G = Plan.GroupOf[V];
    if (G < -1 || G >= NumGroups) {
      R.add("plan", F,
            varName(F, V) + " mapped to out-of-range group " +
                std::to_string(G));
      MappingOk = false;
    }
  }
  if (!MappingOk)
    return false;
  for (int G = 0; G < NumGroups; ++G) {
    const StorageGroup &SG = Plan.Groups[G];
    if (SG.Members.empty()) {
      R.add("plan", F, "group " + std::to_string(G) + " has no members");
      continue;
    }
    for (VarId M : SG.Members)
      if (!inVarRange(F, M) || Plan.GroupOf[M] != G)
        R.add("plan", F,
              "member " + varName(F, M) + " of group " + std::to_string(G) +
                  " is not mapped back to it");
    if (SG.Maximal == NoVar ||
        std::find(SG.Members.begin(), SG.Members.end(), SG.Maximal) ==
            SG.Members.end())
      R.add("plan", F,
            "group " + std::to_string(G) + " maximal element is not a member");
  }

  // Stack groups: every member must be statically estimable and fit in the
  // group's fixed slot, and the slot must lie inside the frame. The size is
  // re-derived here with the same rules phase 2 uses (known shape, or a phi
  // whose operands are all estimable with the same intrinsic type).
  std::map<VarId, const Instr *> DefInstr;
  for (const auto &BB : F.Blocks)
    for (const Instr &In : BB->Instrs)
      for (VarId Res : In.Results)
        if (inVarRange(F, Res) && !DefInstr.count(Res))
          DefInstr[Res] = &In;
  std::vector<std::int64_t> SizeMemo(N, -2);
  std::function<std::int64_t(VarId)> SizeOf = [&](VarId V) -> std::int64_t {
    std::int64_t &Memo = SizeMemo[V];
    if (Memo != -2)
      return Memo;
    Memo = -1; // Break phi cycles: inestimable until proven otherwise.
    const VarType &T = Types[V];
    if (T.isBottom() || T.IT == IntrinsicType::Colon)
      return Memo;
    if (T.hasKnownShape()) {
      Memo = T.knownNumElements() *
             static_cast<std::int64_t>(elemSizeBytes(T.IT));
      return Memo;
    }
    auto It = DefInstr.find(V);
    if (It != DefInstr.end() && It->second->Op == Opcode::Phi) {
      std::int64_t MaxSize = 0;
      for (VarId Op : It->second->Operands) {
        if (!inVarRange(F, Op))
          return Memo;
        std::int64_t S = SizeOf(Op);
        if (S < 0 || Types[Op].IT != T.IT)
          return Memo;
        MaxSize = std::max(MaxSize, S);
      }
      Memo = MaxSize;
    }
    // Range-justified estimability, re-derived through the caller's
    // independent RangeAnalysis (same rule as the decomposer's fallback).
    if (Memo < 0 && RA) {
      std::int64_t S = RA->staticSizeBytes(F, V);
      if (S >= 0)
        Memo = S;
    }
    return Memo;
  };
  for (int G = 0; G < NumGroups; ++G) {
    const StorageGroup &SG = Plan.Groups[G];
    if (SG.K != StorageGroup::Kind::Stack)
      continue;
    for (VarId M : SG.Members) {
      if (!inVarRange(F, M))
        continue;
      std::int64_t S = SizeOf(M);
      if (S < 0)
        R.add("plan", F,
              "stack group " + std::to_string(G) + " member " +
                  varName(F, M) + " has no statically estimable size");
      else if (S > SG.StackBytes)
        R.add("plan", F,
              "stack group " + std::to_string(G) + " slot of " +
                  std::to_string(SG.StackBytes) + " bytes is smaller than " +
                  varName(F, M) + " (" + std::to_string(S) + " bytes)");
    }
    if (SG.StackBytes < 0 || SG.FrameOffset < 0 ||
        SG.FrameOffset + SG.StackBytes > Plan.FrameBytes)
      R.add("plan", F,
            "stack group " + std::to_string(G) + " slot [" +
                std::to_string(SG.FrameOffset) + ", " +
                std::to_string(SG.FrameOffset + SG.StackBytes) +
                ") lies outside the " + std::to_string(Plan.FrameBytes) +
                "-byte frame");
  }

  // The soundness condition, re-derived from liveness and availability
  // alone: writing a variable must not clobber another member of its group
  // that is simultaneously live (some path still reads it) and available
  // (some definition reached this point, so the slot holds its value).
  // Checking at definition points is exactly Chaitin's rule, and is what
  // keeps coalesced phi webs (value-identical at the def point) from being
  // reported as clobbers.
  if (F.Blocks.empty())
    return R.issues().size() == Before;
  LivenessInfo Live = computeLiveness(F);
  AvailabilityInfo Avail = computeAvailability(F);
  auto CheckDef = [&](VarId D, const BitVector &LiveAfter,
                      const BitVector &AvailNow, const std::string &Where) {
    if (!inVarRange(F, D))
      return;
    int G = Plan.GroupOf[D];
    if (G < 0)
      return;
    LiveAfter.forEach([&](unsigned U) {
      if (static_cast<VarId>(U) == D || U >= N)
        return;
      if (!AvailNow.test(U) || Plan.GroupOf[U] != G)
        return;
      R.add("plan", F,
            "group " + std::to_string(G) + " holds two simultaneously live "
                "values: defining " + varName(F, D) + " at " + Where +
                " clobbers " + varName(F, U));
    });
  };
  for (const auto &BB : F.Blocks) {
    size_t NumInstrs = BB->Instrs.size();
    // Live-after set per instruction, from a backward walk. Phi operands
    // are uses on the predecessor edge, not here.
    std::vector<BitVector> LiveAfter(NumInstrs);
    BitVector Cur = Live.LiveOut[BB->Id];
    for (size_t I = NumInstrs; I-- > 0;) {
      LiveAfter[I] = Cur;
      const Instr &In = BB->Instrs[I];
      for (VarId Res : In.Results)
        if (inVarRange(F, Res))
          Cur.reset(Res);
      if (In.Op != Opcode::Phi)
        for (VarId Op : In.Operands)
          if (inVarRange(F, Op))
            Cur.set(Op);
    }
    // Forward walk tracking statement-level availability.
    BitVector AvailNow = Avail.AvailIn[BB->Id];
    for (size_t I = 0; I < NumInstrs; ++I) {
      const Instr &In = BB->Instrs[I];
      for (VarId Res : In.Results)
        if (inVarRange(F, Res))
          AvailNow.set(Res);
      for (VarId Res : In.Results)
        CheckDef(Res, LiveAfter[I], AvailNow,
                 blockName(BB->Id) + ":" + std::to_string(I));
    }
  }
  // Parameters are defined simultaneously on entry.
  for (VarId P : F.Params)
    CheckDef(P, Live.LiveIn[0], Avail.AvailIn[0], "entry");

  return R.issues().size() == Before;
}
