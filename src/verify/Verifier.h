//===- Verifier.h - IR, SSA, type and storage-plan verification -*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Independent re-derivation of the invariants every pipeline stage must
/// uphold. Each check recomputes the property it guards from first
/// principles (dominators, liveness, availability) rather than trusting
/// the data structures the passes maintain, so a buggy or corrupted pass
/// is caught before its output reaches the VM or the code emitter:
///
/// * verifyCFG: structural CFG sanity (terminators, target/operand
///   ranges, predecessor lists consistent with successor edges).
/// * verifySSA: single static assignment, defs dominate uses, phi
///   placement and arity.
/// * verifyTypes: inference results are structurally well-formed and no
///   live computation has the Illegal type.
/// * verifyStoragePlan: the GCTD soundness condition re-checked from
///   liveness and availability alone -- no storage group ever holds two
///   simultaneously live-and-available values -- plus static estimability
///   of every stack-bound group and frame-layout consistency.
///
/// The driver runs these after every stage and degrades (GCTD plans ->
/// identity plans -> mcc model -> AST interpreter) instead of aborting
/// when a check fails; see driver/Compiler.h.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_VERIFY_VERIFIER_H
#define MATCOAL_VERIFY_VERIFIER_H

#include "gctd/StoragePlan.h"
#include "ir/IR.h"
#include "support/Diagnostics.h"
#include "typeinf/TypeInference.h"

#include <string>
#include <vector>

namespace matcoal {

/// One invariant violation found by a verifier check.
struct VerifierIssue {
  std::string Check;    ///< "cfg", "ssa", "types" or "plan".
  std::string Function; ///< Name of the offending function.
  std::string Message;

  std::string str() const;
};

/// Accumulates issues across checks; empty means everything verified.
class VerifierReport {
public:
  void add(std::string Check, const Function &F, std::string Message);

  bool ok() const { return Issues.empty(); }
  const std::vector<VerifierIssue> &issues() const { return Issues; }

  /// Forwards every issue to \p Diags at the given severity (the driver
  /// uses Warning when it will degrade, Error when it will fail).
  void reportTo(Diagnostics &Diags, DiagLevel Level = DiagLevel::Error) const;

  /// One issue per line, for tests and logs.
  std::string str() const;

private:
  std::vector<VerifierIssue> Issues;
};

/// Structural CFG sanity: non-empty block list, exactly one terminator at
/// the end of each block, branch targets and operand/result ids in range,
/// predecessor lists matching the successor edges. Valid both before and
/// after SSA construction.
bool verifyCFG(const Function &F, VerifierReport &R);

/// SSA-form invariants (assumes verifyCFG passed): every variable has at
/// most one definition, definitions dominate uses (phi uses checked
/// against the matching predecessor), phis sit at block heads with one
/// operand per predecessor.
bool verifySSA(const Function &F, VerifierReport &R);

/// Type-inference results are well formed for \p F: a type per variable,
/// non-bottom types carry a rank >= 2 shape with interned extents, and no
/// variable feeding another instruction has the Illegal type.
bool verifyTypes(const Function &F, const TypeInference &TI,
                 VerifierReport &R);

/// Re-checks a storage plan against the paper's soundness condition using
/// nothing but freshly computed liveness and availability: at every
/// definition point, no other member of the defined variable's group may
/// be simultaneously live and available (its value would be clobbered).
/// Also re-checks that stack-bound groups are statically estimable, that
/// the frame layout is self-consistent, and that group membership tables
/// agree. Must run while \p F is still in SSA form.
///
/// Plans produced with a RangeAnalysis may stack-allocate groups whose
/// extents are only range-bounded; pass an independently constructed
/// \p RA so those promotions are re-derived rather than rejected. A
/// null \p RA verifies strictly type-justified plans only.
bool verifyStoragePlan(const Function &F, const TypeInference &TI,
                       const StoragePlan &Plan, VerifierReport &R,
                       const RangeAnalysis *RA = nullptr);

} // namespace matcoal

#endif // MATCOAL_VERIFY_VERIFIER_H
