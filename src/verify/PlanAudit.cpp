//===- PlanAudit.cpp - Static storage-plan auditor --------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "verify/PlanAudit.h"

#include "analysis/Dominators.h"
#include "analysis/InPlaceLegality.h"
#include "analysis/Liveness.h"
#include "support/BitVector.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

namespace matcoal {

namespace {

std::string provenance(const Instr &I) {
  std::ostringstream OS;
  if (I.Loc.isValid())
    OS << "line " << I.Loc.Line << " (" << opcodeName(I.Op) << ")";
  else
    OS << "(" << opcodeName(I.Op) << ")";
  return OS.str();
}

/// Live-after bitvector for every instruction of \p BB, derived by the
/// same backward in-block walk the VM's buildInfo uses (results killed,
/// operands gen'd), seeded from the block's LiveOut.
std::vector<BitVector> liveAfterBlock(const LivenessInfo &Live,
                                      const BasicBlock &BB) {
  std::vector<BitVector> After(BB.Instrs.size());
  BitVector LiveNow = Live.LiveOut[BB.Id];
  for (size_t Idx = BB.Instrs.size(); Idx-- > 0;) {
    After[Idx] = LiveNow;
    const Instr &I = BB.Instrs[Idx];
    for (VarId R : I.Results)
      if (R != NoVar)
        LiveNow.reset(R);
    for (VarId U : I.Operands)
      if (U != NoVar)
        LiveNow.set(U);
  }
  return After;
}

bool isOperandOf(const Instr &I, VarId V) {
  return std::find(I.Operands.begin(), I.Operands.end(), V) !=
         I.Operands.end();
}

/// The auditor's own copy of the paper's in-place-formability rules
/// (sections 2.3.2/2.3.3): may instruction \p I legally write its result
/// over \p X's storage when the plan puts them in one slot? Mirrors the
/// operator-semantics edges Interference.cpp adds -- an edge between the
/// result and X means "not formable" -- but is derived here directly from
/// types and ranges so it cross-checks the graph rather than trusting it.
class Formability {
public:
  Formability(const Function &F, const TypeInference &TI,
              const RangeAnalysis *RA)
      : F(F), Types(TI.hasTypesFor(F) ? &TI.functionTypes(F) : nullptr),
        RA(RA) {}

  bool isScalar(VarId V) const {
    if (Types && (*Types)[V].isScalar())
      return true;
    return RA && RA->provablyScalar(F, V);
  }

  bool isScalarOrVector(VarId V) const {
    if (isScalar(V))
      return true;
    if (Types) {
      const VarType &T = (*Types)[V];
      if (T.Extents.size() == 2 &&
          ((T.Extents[0]->isConst() && T.Extents[0]->constValue() == 1) ||
           (T.Extents[1]->isConst() && T.Extents[1]->constValue() == 1)))
        return true;
    }
    return RA && RA->provablyScalarOrVector(F, V);
  }

  /// True when writing I's result over operand X's slot is safe.
  bool formable(const Instr &I, VarId X) const {
    // Edges only ever target non-scalar operands: a scalar operand is
    // hoisted into a register before the destination is written.
    if (isScalar(X))
      return true;
    switch (I.Op) {
    // Elementwise operators visit each element exactly once, in order --
    // the paper's canonical in-place form.
    case Opcode::Add:
    case Opcode::Sub:
    case Opcode::ElemMul:
    case Opcode::ElemRDiv:
    case Opcode::ElemLDiv:
    case Opcode::ElemPow:
    case Opcode::Lt:
    case Opcode::Le:
    case Opcode::Gt:
    case Opcode::Ge:
    case Opcode::Eq:
    case Opcode::Ne:
    case Opcode::And:
    case Opcode::Or:
    case Opcode::Neg:
    case Opcode::UPlus:
    case Opcode::Not:
      return true;
    // Linear-algebra forms degenerate to elementwise only when one side
    // is scalar; a true matrix product reads X after writing the result.
    case Opcode::MatMul:
    case Opcode::MatRDiv:
    case Opcode::MatLDiv:
    case Opcode::MatPow:
      return I.Operands.size() == 2 &&
             (isScalar(I.Operands[0]) || isScalar(I.Operands[1]));
    // A vector transpose is a pure copy; a matrix transpose permutes.
    case Opcode::Transpose:
    case Opcode::CTranspose:
      return isScalarOrVector(X);
    case Opcode::Subsref: {
      // All-scalar non-colon subscripts read one element: formable over
      // anything. Otherwise the base may be re-read after the first
      // write, and non-scalar subscript vectors are consumed gradually.
      bool AllScalarSubs = true;
      for (size_t K = 1; K < I.Operands.size(); ++K)
        if (!isScalar(I.Operands[K]) ||
            (Types && (*Types)[I.Operands[K]].IT == IntrinsicType::Colon))
          AllScalarSubs = false;
      return AllScalarSubs;
    }
    case Opcode::Subsasgn:
      // The base is the destination by definition; everything else must
      // not share the slot being updated.
      return !I.Operands.empty() && X == I.Operands[0];
    case Opcode::HorzCat:
    case Opcode::VertCat:
      // Concatenation re-reads every piece while filling the result.
      return false;
    case Opcode::Builtin:
      return InPlaceLegality::builtinReadsOnly(I.StrVal);
    default:
      // Copies, phis, constants, colon ranges, calls: never formed over
      // a live operand in a way that re-reads it.
      return true;
    }
  }

private:
  const Function &F;
  const std::vector<VarType> *Types;
  const RangeAnalysis *RA;
};

/// May-occupancy state: per storage group, the set of values whose live
/// data may sit in the slot along some path.
using Occupancy = std::vector<std::set<VarId>>;

bool unionInto(Occupancy &Dst, const Occupancy &Src) {
  bool Changed = false;
  for (size_t G = 0; G < Dst.size(); ++G)
    for (VarId V : Src[G])
      Changed |= Dst[G].insert(V).second;
  return Changed;
}

bool isIdentityCopy(const Instr &I, const StoragePlan &Plan) {
  return I.Op == Opcode::Copy && I.Results.size() == 1 &&
         I.Operands.size() == 1 && Plan.sameSlot(I.Results[0], I.Operands[0]);
}

/// Applies one instruction to the occupancy state. Identity copies and
/// phis do not physically write, so existing occupants survive; any other
/// definition is a strong update of its group.
void transferInstr(const Instr &I, const StoragePlan &Plan, Occupancy &Occ) {
  for (VarId R : I.Results) {
    if (R == NoVar)
      continue;
    int G = Plan.groupOf(R);
    if (G < 0)
      continue;
    if (isIdentityCopy(I, Plan) || I.Op == Opcode::Phi) {
      Occ[G].insert(R);
    } else {
      Occ[G].clear();
      Occ[G].insert(R);
    }
  }
}

/// Re-derives the emitter's fusion regions from the IR alone and returns,
/// per elided intermediate, the (def, use) sites the region relies on.
/// Mirrors CEmitter::planFusion/planRun admission: runs of fusion
/// candidates (plus transparent constants), roots at run ends, feeders
/// admitted when single-def/single-use under the param/output convention.
struct ElisionSite {
  VarId V = NoVar;
  const Instr *Def = nullptr; ///< The region member defining V.
  const Instr *Use = nullptr; ///< The region member consuming V.
};

bool fusionCandidateStatic(const Instr &I, const Formability &Form) {
  if (I.Results.size() != 1 || I.Operands.size() != 2)
    return false;
  switch (I.Op) {
  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::ElemMul:
  case Opcode::ElemRDiv:
    return true;
  case Opcode::MatMul:
    return Form.isScalar(I.Operands[0]) || Form.isScalar(I.Operands[1]);
  default:
    return false;
  }
}

std::vector<ElisionSite> deriveElisions(const Function &F,
                                        const Formability &Form,
                                        const AliasAnalysis *AA) {
  // Whole-function def/use counts under the oracle's convention: params
  // carry an implicit definition, outputs an implicit use past Ret.
  // Admission deliberately takes the counts from the alias analysis when
  // one is attached -- the same source the oracle's elidableIntermediate
  // consults -- while check (c)'s verification walks the function afresh.
  // A divergence (a stale or miscounting analysis admitting a multi-use
  // intermediate) is exactly what the check exists to catch.
  std::map<VarId, int> Defs, Uses;
  if (AA) {
    for (unsigned V = 0; V < F.numVars(); ++V) {
      Defs[static_cast<VarId>(V)] =
          static_cast<int>(AA->defCount(F, static_cast<VarId>(V)));
      Uses[static_cast<VarId>(V)] =
          static_cast<int>(AA->useCount(F, static_cast<VarId>(V)));
    }
  } else {
    for (VarId P : F.Params)
      ++Defs[P];
    for (VarId O : F.Outputs)
      ++Uses[O];
    for (const auto &BB : F.Blocks)
      for (const Instr &I : BB->Instrs) {
        for (VarId R : I.Results)
          if (R != NoVar)
            ++Defs[R];
        for (VarId U : I.Operands)
          if (U != NoVar)
            ++Uses[U];
      }
  }

  std::vector<ElisionSite> Sites;
  for (const auto &BB : F.Blocks) {
    const auto &Instrs = BB->Instrs;
    std::vector<char> InRun(Instrs.size(), 0), Cand(Instrs.size(), 0);
    for (size_t I = 0; I < Instrs.size(); ++I) {
      Cand[I] = fusionCandidateStatic(Instrs[I], Form);
      InRun[I] = Cand[I] || InPlaceLegality::fusionTransparent(Instrs[I]);
    }
    size_t I = 0;
    while (I < Instrs.size()) {
      if (!InRun[I]) {
        ++I;
        continue;
      }
      size_t End = I;
      while (End < Instrs.size() && InRun[End])
        ++End;
      // Within [I, End): grow a tree from each candidate root backwards,
      // admitting single-def/single-use feeders, exactly as planRun does.
      std::map<VarId, size_t> RunDef;
      for (size_t K = I; K < End; ++K)
        for (VarId R : Instrs[K].Results)
          if (R != NoVar)
            RunDef[R] = K;
      std::vector<char> Taken(End - I, 0);
      for (size_t R = End; R-- > I;) {
        if (!Cand[R] || Taken[R - I])
          continue;
        std::vector<size_t> Work{R};
        Taken[R - I] = 1;
        while (!Work.empty()) {
          size_t K = Work.back();
          Work.pop_back();
          for (VarId Op : Instrs[K].Operands) {
            auto It = RunDef.find(Op);
            if (It == RunDef.end() || It->second >= K || Taken[It->second - I])
              continue;
            if (Defs[Op] != 1 || Uses[Op] != 1)
              continue;
            Taken[It->second - I] = 1;
            Work.push_back(It->second);
            ElisionSite S;
            S.V = Op;
            S.Def = &Instrs[It->second];
            S.Use = &Instrs[K];
            Sites.push_back(S);
          }
        }
      }
      I = End;
    }
  }
  return Sites;
}

} // namespace

std::string PlanAuditIssue::str() const {
  std::string S = Rule + ": " + Message;
  if (!Function.empty())
    S += " [" + Function + "]";
  return S;
}

std::vector<PlanAuditIssue>
auditStoragePlan(const Function &F, const StoragePlan &Plan,
                 const TypeInference &TI, const RangeAnalysis *RA,
                 const AliasAnalysis *AA, Observer *Obs) {
  std::vector<PlanAuditIssue> Issues;
  count(Obs, "verify.audit.functions");

  auto Flag = [&](const char *Rule, const Instr &I, const std::string &Msg) {
    PlanAuditIssue Iss;
    Iss.Rule = Rule;
    Iss.Function = F.Name;
    Iss.Loc = I.Loc;
    Iss.Message = provenance(I) + ": " + Msg;
    Issues.push_back(std::move(Iss));
  };

  LivenessInfo Live = computeLiveness(F);
  Formability Form(F, TI, RA);

  // --- Check (a): plan-overlap ------------------------------------------
  // Forward may-occupancy fixpoint (union join) ...
  size_t NumGroups = Plan.Groups.size();
  std::vector<Occupancy> OccIn(F.Blocks.size(),
                               Occupancy(NumGroups));
  std::vector<char> Seen(F.Blocks.size(), 0);
  std::vector<BlockId> RPO = F.reversePostOrder();
  for (VarId P : F.Params) {
    int G = Plan.groupOf(P);
    if (G >= 0)
      OccIn[F.entry()->Id][G].insert(P);
  }
  Seen[F.entry()->Id] = 1;
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (BlockId B : RPO) {
      if (!Seen[B])
        continue;
      Occupancy Occ = OccIn[B];
      const BasicBlock *BB = F.block(B);
      for (const Instr &I : BB->Instrs)
        transferInstr(I, Plan, Occ);
      const Instr &Term = BB->Instrs.back();
      for (BlockId S : {Term.Target1, Term.Target2}) {
        if (S == NoBlock)
          continue;
        if (!Seen[S]) {
          Seen[S] = 1;
          Changed = true;
        }
        Changed |= unionInto(OccIn[S], Occ);
      }
    }
  }
  // ... then one reporting pass over the stable states.
  for (const auto &BB : F.Blocks) {
    if (!Seen[BB->Id])
      continue; // Unreachable blocks never execute.
    Occupancy Occ = OccIn[BB->Id];
    std::vector<BitVector> After = liveAfterBlock(Live, *BB);
    for (size_t Idx = 0; Idx < BB->Instrs.size(); ++Idx) {
      const Instr &I = BB->Instrs[Idx];
      bool Identity = isIdentityCopy(I, Plan);
      for (VarId R : I.Results) {
        if (R == NoVar)
          continue;
        int G = Plan.groupOf(R);
        if (G < 0 || Identity)
          continue;
        for (VarId U : Occ[G]) {
          if (U == R || isOperandOf(I, U))
            continue; // Operand overlap is check (b)'s domain.
          if (I.Op == Opcode::Phi)
            continue; // Coalesced phi webs write nothing.
          if (!After[Idx].test(U))
            continue;
          Flag("plan-overlap", I,
               "defining '" + F.var(R).Name + "' clobbers slot g" +
                   std::to_string(G) + " while '" + F.var(U).Name +
                   "' is still live");
        }
      }
      transferInstr(I, Plan, Occ);
    }
  }

  // --- Check (b): unsafe-inplace ----------------------------------------
  for (const auto &BB : F.Blocks) {
    if (!Seen[BB->Id])
      continue;
    std::vector<BitVector> After = liveAfterBlock(Live, *BB);
    for (size_t Idx = 0; Idx < BB->Instrs.size(); ++Idx) {
      const Instr &I = BB->Instrs[Idx];
      if (I.Op == Opcode::Copy || I.Op == Opcode::Phi ||
          I.Results.size() != 1)
        continue;
      VarId R = I.Results[0];
      if (Plan.groupOf(R) < 0)
        continue;
      std::set<VarId> Checked;
      for (size_t K = 0; K < I.Operands.size(); ++K) {
        VarId X = I.Operands[K];
        if (X == NoVar || X == R || !Checked.insert(X).second)
          continue;
        if (!Plan.sameSlot(R, X))
          continue;
        // The source of a destructive rewrite must be dead here (its
        // last use is this instruction). AliasAnalysis carries exactly
        // this last-use fact; fall back to the local walk without it.
        bool DeadAfter = AA ? AA->lastUseAt(F, BB->Id, Idx, X)
                            : !After[Idx].test(X);
        if (!DeadAfter) {
          Flag("unsafe-inplace", I,
               "result '" + F.var(R).Name + "' shares a slot with '" +
                   F.var(X).Name + "' whose value is still live");
          continue;
        }
        if (!Form.formable(I, X))
          Flag("unsafe-inplace", I,
               "operator is not formable in place over '" + F.var(X).Name +
                   "' (result shares its slot)");
      }
    }
  }

  // --- Check (c): multi-use-elide ---------------------------------------
  // Re-derive the fusion regions, then re-verify each elided intermediate
  // against a fresh walk of the whole function.
  for (const ElisionSite &S : deriveElisions(F, Form, AA)) {
    const VarInfo &VI = F.var(S.V);
    if (VI.IsParam || VI.IsOutput) {
      Flag("multi-use-elide", *S.Def,
           "fusion elides '" + VI.Name + "' which is a " +
               (VI.IsParam ? "parameter" : "function output"));
      continue;
    }
    int NDefs = 0, NUses = 0;
    const Instr *Stranger = nullptr;
    for (const auto &BB : F.Blocks)
      for (const Instr &I : BB->Instrs) {
        for (VarId Rv : I.Results)
          if (Rv == S.V) {
            ++NDefs;
            if (&I != S.Def)
              Stranger = &I;
          }
        for (VarId U : I.Operands)
          if (U == S.V) {
            ++NUses;
            if (&I != S.Use)
              Stranger = &I;
          }
      }
    if (NDefs != 1 || NUses != 1)
      Flag("multi-use-elide", Stranger ? *Stranger : *S.Def,
           "fusion elides '" + VI.Name + "' which has " +
               std::to_string(NDefs) + " def(s) and " +
               std::to_string(NUses) + " use(s); need exactly one of each");
  }

  // --- Check (d): dps-overlap -------------------------------------------
  // Re-prove every output index the emitter plans a destination-passing
  // handoff for (gctd's dpsReturnSlots) against a fresh walk: the handoff
  // at position K surrenders group G's buffer to the caller, so G must be
  // a real heap group that no parameter, no other output, and no other
  // returned position can still be reading.
  for (unsigned K : dpsReturnSlots(F, Plan)) {
    int G = Plan.groupOf(F.Outputs[K]);
    auto BadClaim = [&](const Instr &At, const std::string &Why) {
      Flag("dps-overlap", At,
           "output #" + std::to_string(K) + " ('" +
               F.var(F.Outputs[K]).Name +
               "') is planned for a destination-passing handoff but " + Why);
    };
    const Instr *FirstRet = nullptr;
    for (const auto &BB : F.Blocks)
      for (const Instr &I : BB->Instrs)
        if (I.Op == Opcode::Ret && !FirstRet)
          FirstRet = &I;
    if (!FirstRet)
      continue; // dpsReturnSlots never claims a Ret-less function.
    if (G < 0 ||
        Plan.Groups[static_cast<size_t>(G)].K != StorageGroup::Kind::Heap) {
      BadClaim(*FirstRet, "its group is not heap-allocated");
      continue;
    }
    if (Plan.Groups[static_cast<size_t>(G)].IT == IntrinsicType::Complex)
      BadClaim(*FirstRet, "its group is complex-typed");
    for (VarId P : F.Params)
      if (Plan.groupOf(P) == G)
        BadClaim(*FirstRet, "parameter '" + F.var(P).Name +
                                "' shares its group (caller storage)");
    for (unsigned K2 = 0; K2 < F.Outputs.size(); ++K2)
      if (K2 != K && Plan.groupOf(F.Outputs[K2]) == G)
        BadClaim(*FirstRet, "output '" + F.var(F.Outputs[K2]).Name +
                                "' shares its group");
    for (const auto &BB : F.Blocks)
      for (const Instr &I : BB->Instrs) {
        if (I.Op != Opcode::Ret)
          continue;
        if (I.Operands.size() != F.Outputs.size()) {
          BadClaim(I, "this return's operand count does not match the "
                      "function's outputs");
          continue;
        }
        for (unsigned K2 = 0; K2 < I.Operands.size(); ++K2) {
          int OG = Plan.groupOf(I.Operands[K2]);
          if (K2 == K && OG != G)
            BadClaim(I, "this return's operand #" + std::to_string(K2) +
                            " lives outside the surrendered group");
          if (K2 != K && OG == G)
            BadClaim(I, "this return also reads the surrendered group at "
                        "operand #" +
                            std::to_string(K2));
        }
      }
  }

  count(Obs, "verify.audit.violations",
        static_cast<std::int64_t>(Issues.size()));
  return Issues;
}

bool corruptStoragePlanForTesting(const Function &F, StoragePlan &Plan) {
  LivenessInfo Live = computeLiveness(F);
  DominatorTree DT(F);

  // Definition sites (block, in-block index); params define at entry/-1.
  std::map<VarId, std::pair<BlockId, int>> DefSite;
  for (VarId P : F.Params)
    DefSite[P] = {F.entry()->Id, -1};
  for (const auto &BB : F.Blocks)
    for (size_t Idx = 0; Idx < BB->Instrs.size(); ++Idx)
      for (VarId R : BB->Instrs[Idx].Results)
        if (R != NoVar && !DefSite.count(R))
          DefSite[R] = {BB->Id, static_cast<int>(Idx)};

  for (BlockId B : DT.rpo()) {
    const BasicBlock *BB = F.block(B);
    std::vector<BitVector> After = liveAfterBlock(Live, *BB);
    for (size_t Idx = 0; Idx < BB->Instrs.size(); ++Idx) {
      const Instr &I = BB->Instrs[Idx];
      if (I.Op == Opcode::Copy || I.Op == Opcode::Phi ||
          I.Results.size() != 1)
        continue;
      VarId V = I.Results[0];
      int G = Plan.groupOf(V);
      if (G < 0)
        continue;
      for (const auto &Entry : DefSite) {
        VarId U = Entry.first;
        int GU = Plan.groupOf(U);
        if (GU < 0 || GU == G)
          continue;
        if (Plan.Groups[GU].IT != Plan.Groups[G].IT)
          continue;
        if (isOperandOf(I, U))
          continue;
        // U's definition must reach V's on every path (dominance) so the
        // auditor's may-occupancy provably contains it.
        BlockId DB = Entry.second.first;
        int DIdx = Entry.second.second;
        bool Reaches = (DB == B) ? DIdx < static_cast<int>(Idx)
                                 : DT.dominates(DB, B) && DB != B;
        if (!Reaches || !After[Idx].test(U))
          continue;
        // Move V into U's group: two simultaneously-live values now share
        // one slot -- exactly what the auditor must reject.
        auto &Old = Plan.Groups[G].Members;
        Old.erase(std::remove(Old.begin(), Old.end(), V), Old.end());
        Plan.Groups[GU].Members.push_back(V);
        Plan.GroupOf[V] = GU;
        return true;
      }
    }
  }
  return false;
}

} // namespace matcoal
