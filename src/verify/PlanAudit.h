//===- PlanAudit.h - Static storage-plan auditor ----------------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An abstract interpretation of each function's SSA form with symbolic
/// storage states that re-proves, independently of the interference
/// graph, that the storage plan's destructive discipline is sound:
///
///  * **plan-overlap**: no two simultaneously-live values ever occupy one
///    coalesced slot. The auditor tracks, per storage group, the set of
///    values that may occupy the slot along some path (may-occupancy,
///    joined by union at CFG merges) and flags any definition that
///    clobbers a slot while a distinct occupant is still live.
///  * **unsafe-inplace**: every destructive rewrite's source is dead or
///    uniquely owned -- an instruction whose result shares a slot with a
///    non-scalar operand must consume that operand (its last use is here)
///    and the operator must be formable in place (the paper's sections
///    2.3.2/2.3.3 rules, re-derived here from types and ranges rather
///    than trusted from Interference.cpp).
///  * **multi-use-elide**: every fusion region's elided intermediates are
///    single-def/single-use and neither parameters nor outputs, checked
///    against a fresh IR walk rather than the emitter's own counts.
///  * **dps-overlap**: every output index gctd's dpsReturnSlots marks for
///    a destination-passing handoff (mcrt_dps_bind/mcrt_dps_ret) is
///    re-proven against a fresh walk: the surrendered group is heap and
///    real, shared by no parameter and no other output, and read by no
///    other operand position of any return.
///
/// Violations carry "line N (op)" provenance like the VM's trap messages.
/// A clean audit on a GCTD plan is the correctness gate ROADMAP item 3
/// (cross-block fusion, threaded kernels) builds on; the driver surfaces
/// failures through `matcoalc --audit-plan` and the matvet lint group,
/// and `MATCOAL_FAULT=plan-corrupt` exercises the detector in CI.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_VERIFY_PLANAUDIT_H
#define MATCOAL_VERIFY_PLANAUDIT_H

#include "analysis/AliasAnalysis.h"
#include "analysis/RangeAnalysis.h"
#include "gctd/StoragePlan.h"
#include "ir/IR.h"
#include "observe/Observe.h"
#include "typeinf/TypeInference.h"

#include <string>
#include <vector>

namespace matcoal {

/// One audit violation.
struct PlanAuditIssue {
  /// Stable rule id: "plan-overlap", "unsafe-inplace", "multi-use-elide",
  /// or "dps-overlap".
  std::string Rule;
  std::string Function;
  SourceLoc Loc;
  /// Self-contained message with "line N (op)" provenance.
  std::string Message;

  std::string str() const;
};

/// Audits \p Plan for \p F (must still be in SSA form). \p RA must be the
/// analysis the plan was built with (or null for a types-only plan) so
/// range-justified in-place formations are re-derived rather than
/// rejected. \p AA, when present, sharpens the occupancy tracking with
/// interprocedural escape facts (a Call argument whose callee summary
/// proves it non-escaping cannot be clobbered by the callee). A non-null
/// \p Obs receives the verify.audit.* counters.
std::vector<PlanAuditIssue>
auditStoragePlan(const Function &F, const StoragePlan &Plan,
                 const TypeInference &TI, const RangeAnalysis *RA = nullptr,
                 const AliasAnalysis *AA = nullptr, Observer *Obs = nullptr);

/// Deliberately breaks \p Plan for fault-injection testing
/// (`MATCOAL_FAULT=plan-corrupt`): moves some definition into another
/// same-typed group whose occupant is still live at that point, creating
/// exactly the overlap the auditor must catch. Returns false when the
/// function has no eligible pair (e.g. every group is a singleton with
/// disjoint lifetimes).
bool corruptStoragePlanForTesting(const Function &F, StoragePlan &Plan);

} // namespace matcoal

#endif // MATCOAL_VERIFY_PLANAUDIT_H
