//===- IR.h - Single-operator CFG intermediate representation ---*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The mid-level IR. Every assignment is in Single Operator (SO) form --
/// one MATLAB operation (or pseudo operation) per statement, exactly as the
/// paper's mat2c translator requires (its section 2.3). Functions are
/// control-flow graphs of basic blocks; the SSA builder rewrites variables
/// in place and records versions in the variable table.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_IR_IR_H
#define MATCOAL_IR_IR_H

#include "support/Diagnostics.h"

#include <cassert>
#include <memory>
#include <string>
#include <vector>

namespace matcoal {

/// Index into Function::Vars. Variables are function-local.
using VarId = int;
constexpr VarId NoVar = -1;

/// Index into Function::Blocks.
using BlockId = int;
constexpr BlockId NoBlock = -1;

/// IR operation codes. Each op mirrors one MATLAB operation or pseudo
/// operation (phi, copy, branch...).
enum class Opcode {
  // Value producers.
  ConstNum,  ///< results[0] <- numeric literal (NumRe + NumIm*i).
  ConstStr,  ///< results[0] <- character row vector (StrVal).
  ConstColon, ///< results[0] <- the ':' subscript marker.
  Copy,      ///< results[0] <- operands[0].
  Phi,       ///< results[0] <- phi(operands aligned with block preds).

  // Unary operations.
  Neg,        ///< -x (elementwise).
  UPlus,      ///< +x (identity; kept for completeness, folded early).
  Not,        ///< ~x (elementwise logical not).
  Transpose,  ///< x.' (non-conjugate).
  CTranspose, ///< x' (conjugate).

  // Binary operations (MATLAB semantics: Mat* are linear-algebra forms,
  // Elem* broadcast a scalar operand).
  Add,
  Sub,
  MatMul,
  ElemMul,
  MatRDiv,
  ElemRDiv,
  MatLDiv,
  ElemLDiv,
  MatPow,
  ElemPow,
  Lt,
  Le,
  Gt,
  Ge,
  Eq,
  Ne,
  And,
  Or,

  // Ranges and indexing.
  Colon2,   ///< results[0] <- operands[0] : operands[1].
  Colon3,   ///< results[0] <- operands[0] : operands[1] : operands[2].
  Subsref,  ///< results[0] <- operands[0](operands[1..m]); R-indexing.
  Subsasgn, ///< results[0] <- subsasgn(operands[0], operands[1],
            ///<                        operands[2..m+1]); L-indexing.

  // Structured data.
  HorzCat, ///< results[0] <- [operands...] row concatenation.
  VertCat, ///< results[0] <- [operands...] column concatenation.

  // Calls.
  Builtin, ///< results <- StrVal(operands...): library function.
  Call,    ///< results <- StrVal(operands...): user-defined function.

  // Effects.
  Display, ///< Echo operands[0] under the name StrVal.

  // Terminators.
  Jmp, ///< Unconditional branch to Target1.
  Br,  ///< Branch on operands[0]: Target1 if all-true/nonempty, else
       ///< Target2 (MATLAB `if` truth rule).
  Ret, ///< Return; output variables carry the results.
};

const char *opcodeName(Opcode Op);
bool isTerminator(Opcode Op);
/// True for opcodes whose result is a pure function of the operands (safe
/// for DCE when the result is unused).
bool isPure(Opcode Op);

/// One SO-form instruction.
struct Instr {
  Opcode Op = Opcode::Copy;
  std::vector<VarId> Results;
  std::vector<VarId> Operands;

  // Payloads.
  double NumRe = 0.0;  ///< ConstNum real part.
  double NumIm = 0.0;  ///< ConstNum imaginary part.
  std::string StrVal;  ///< ConstStr text / Builtin/Call name / Display name.
  BlockId Target1 = NoBlock;
  BlockId Target2 = NoBlock;
  VarId PhiOrig = NoVar; ///< Phi only: the pre-SSA variable it merges.
  SourceLoc Loc;

  VarId result() const {
    assert(Results.size() == 1 && "instruction has no single result");
    return Results[0];
  }
  bool hasResult() const { return !Results.empty(); }
};

/// Metadata for one IR variable.
struct VarInfo {
  std::string Name;    ///< Display name ("a", "a.2" for SSA version 2).
  std::string Base;    ///< Source-level name ("a"); temps use their name.
  int Version = -1;    ///< SSA version; -1 before SSA construction.
  bool IsTemp = false; ///< Introduced by SO-form lowering or SSA.
  bool IsParam = false;
  bool IsOutput = false;
};

/// A basic block: straight-line instructions ending in one terminator.
struct BasicBlock {
  BlockId Id = NoBlock;
  std::vector<Instr> Instrs;
  std::vector<BlockId> Preds; ///< Maintained by Function::recomputePreds.

  bool hasTerminator() const {
    return !Instrs.empty() && matcoal::isTerminator(Instrs.back().Op);
  }
  const Instr &terminator() const {
    assert(hasTerminator() && "block has no terminator");
    return Instrs.back();
  }
  /// Successor block ids in branch order.
  std::vector<BlockId> successors() const;
};

/// One compiled function: a CFG plus its variable table.
class Function {
public:
  std::string Name;
  std::vector<VarId> Params;
  std::vector<VarId> Outputs;
  std::vector<VarInfo> Vars;
  std::vector<std::unique_ptr<BasicBlock>> Blocks;

  /// Creates (or returns) the variable with the given source name.
  VarId getOrCreateVar(const std::string &Name);
  /// Creates a fresh compiler temporary.
  VarId makeTemp(const std::string &Stem = "t");
  /// Creates a new SSA version of \p Base.
  VarId makeVersion(VarId Base, int Version);

  BasicBlock *addBlock();
  BasicBlock *block(BlockId Id) {
    assert(Id >= 0 && static_cast<size_t>(Id) < Blocks.size());
    return Blocks[Id].get();
  }
  const BasicBlock *block(BlockId Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Blocks.size());
    return Blocks[Id].get();
  }
  BasicBlock *entry() { return Blocks.front().get(); }
  const BasicBlock *entry() const { return Blocks.front().get(); }

  const VarInfo &var(VarId Id) const {
    assert(Id >= 0 && static_cast<size_t>(Id) < Vars.size());
    return Vars[Id];
  }
  unsigned numVars() const { return static_cast<unsigned>(Vars.size()); }

  /// Recomputes every block's predecessor list from the terminators.
  void recomputePreds();

  /// Blocks in reverse postorder from the entry (unreachable blocks are
  /// excluded).
  std::vector<BlockId> reversePostOrder() const;

  /// Renders the function as text (tests, debugging).
  std::string str() const;

private:
  int NextTemp = 0;
};

/// A compiled program: one function per user-defined MATLAB function.
class Module {
public:
  std::vector<std::unique_ptr<Function>> Functions;

  Function *findFunction(const std::string &Name);
  const Function *findFunction(const std::string &Name) const;
  Function *addFunction(const std::string &Name);

  std::string str() const;
};

/// Structural sanity checks; appends problems to \p Diags as errors.
/// Returns true when the function verifies clean.
bool verifyFunction(const Function &F, Diagnostics &Diags);

} // namespace matcoal

#endif // MATCOAL_IR_IR_H
