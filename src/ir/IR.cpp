//===- IR.cpp -------------------------------------------------------------===//

#include "ir/IR.h"

#include <algorithm>
#include <sstream>

using namespace matcoal;

const char *matcoal::opcodeName(Opcode Op) {
  switch (Op) {
  case Opcode::ConstNum: return "constnum";
  case Opcode::ConstStr: return "conststr";
  case Opcode::ConstColon: return "constcolon";
  case Opcode::Copy: return "copy";
  case Opcode::Phi: return "phi";
  case Opcode::Neg: return "neg";
  case Opcode::UPlus: return "uplus";
  case Opcode::Not: return "not";
  case Opcode::Transpose: return "transpose";
  case Opcode::CTranspose: return "ctranspose";
  case Opcode::Add: return "add";
  case Opcode::Sub: return "sub";
  case Opcode::MatMul: return "matmul";
  case Opcode::ElemMul: return "elemmul";
  case Opcode::MatRDiv: return "matrdiv";
  case Opcode::ElemRDiv: return "elemrdiv";
  case Opcode::MatLDiv: return "matldiv";
  case Opcode::ElemLDiv: return "elemldiv";
  case Opcode::MatPow: return "matpow";
  case Opcode::ElemPow: return "elempow";
  case Opcode::Lt: return "lt";
  case Opcode::Le: return "le";
  case Opcode::Gt: return "gt";
  case Opcode::Ge: return "ge";
  case Opcode::Eq: return "eq";
  case Opcode::Ne: return "ne";
  case Opcode::And: return "and";
  case Opcode::Or: return "or";
  case Opcode::Colon2: return "colon2";
  case Opcode::Colon3: return "colon3";
  case Opcode::Subsref: return "subsref";
  case Opcode::Subsasgn: return "subsasgn";
  case Opcode::HorzCat: return "horzcat";
  case Opcode::VertCat: return "vertcat";
  case Opcode::Builtin: return "builtin";
  case Opcode::Call: return "call";
  case Opcode::Display: return "display";
  case Opcode::Jmp: return "jmp";
  case Opcode::Br: return "br";
  case Opcode::Ret: return "ret";
  }
  return "<bad opcode>";
}

bool matcoal::isTerminator(Opcode Op) {
  return Op == Opcode::Jmp || Op == Opcode::Br || Op == Opcode::Ret;
}

bool matcoal::isPure(Opcode Op) {
  switch (Op) {
  case Opcode::Display:
  case Opcode::Jmp:
  case Opcode::Br:
  case Opcode::Ret:
  case Opcode::Call:    // Callees may print.
  case Opcode::Builtin: // Some builtins (disp, fprintf, error) are effects;
                        // DCE re-checks by name.
    return false;
  default:
    return true;
  }
}

std::vector<BlockId> BasicBlock::successors() const {
  if (!hasTerminator())
    return {};
  const Instr &T = terminator();
  switch (T.Op) {
  case Opcode::Jmp:
    return {T.Target1};
  case Opcode::Br:
    return {T.Target1, T.Target2};
  default:
    return {};
  }
}

VarId Function::getOrCreateVar(const std::string &Name) {
  for (size_t I = 0; I < Vars.size(); ++I)
    if (Vars[I].Version == -1 && Vars[I].Name == Name)
      return static_cast<VarId>(I);
  VarInfo Info;
  Info.Name = Name;
  Info.Base = Name;
  Vars.push_back(std::move(Info));
  return static_cast<VarId>(Vars.size() - 1);
}

VarId Function::makeTemp(const std::string &Stem) {
  VarInfo Info;
  Info.Name = "%" + Stem + std::to_string(NextTemp++);
  Info.Base = Info.Name;
  Info.IsTemp = true;
  Vars.push_back(std::move(Info));
  return static_cast<VarId>(Vars.size() - 1);
}

VarId Function::makeVersion(VarId Base, int Version) {
  VarInfo Info = Vars[Base];
  Info.Base = Vars[Base].Base;
  Info.Version = Version;
  Info.Name = Info.Base + "." + std::to_string(Version);
  Vars.push_back(std::move(Info));
  return static_cast<VarId>(Vars.size() - 1);
}

BasicBlock *Function::addBlock() {
  auto BB = std::make_unique<BasicBlock>();
  BB->Id = static_cast<BlockId>(Blocks.size());
  Blocks.push_back(std::move(BB));
  return Blocks.back().get();
}

void Function::recomputePreds() {
  for (auto &BB : Blocks)
    BB->Preds.clear();
  for (auto &BB : Blocks)
    for (BlockId S : BB->successors())
      block(S)->Preds.push_back(BB->Id);
}

std::vector<BlockId> Function::reversePostOrder() const {
  std::vector<BlockId> Post;
  std::vector<char> Visited(Blocks.size(), 0);
  // Iterative DFS with an explicit stack of (block, next-successor) frames.
  std::vector<std::pair<BlockId, size_t>> Stack;
  Stack.emplace_back(0, 0);
  Visited[0] = 1;
  while (!Stack.empty()) {
    auto &[B, NextIdx] = Stack.back();
    std::vector<BlockId> Succs = block(B)->successors();
    if (NextIdx < Succs.size()) {
      BlockId S = Succs[NextIdx++];
      if (!Visited[S]) {
        Visited[S] = 1;
        Stack.emplace_back(S, 0);
      }
      continue;
    }
    Post.push_back(B);
    Stack.pop_back();
  }
  std::reverse(Post.begin(), Post.end());
  return Post;
}

static void printOperandList(std::ostringstream &OS, const Function &F,
                             const std::vector<VarId> &Ops) {
  for (size_t I = 0; I < Ops.size(); ++I) {
    if (I)
      OS << ", ";
    OS << F.var(Ops[I]).Name;
  }
}

std::string Function::str() const {
  std::ostringstream OS;
  OS << "function " << Name << "(";
  for (size_t I = 0; I < Params.size(); ++I) {
    if (I)
      OS << ", ";
    OS << var(Params[I]).Name;
  }
  OS << ") -> (";
  for (size_t I = 0; I < Outputs.size(); ++I) {
    if (I)
      OS << ", ";
    OS << var(Outputs[I]).Name;
  }
  OS << ")\n";
  for (const auto &BB : Blocks) {
    OS << "bb" << BB->Id << ":";
    if (!BB->Preds.empty()) {
      OS << "  ; preds:";
      for (BlockId P : BB->Preds)
        OS << " bb" << P;
    }
    OS << "\n";
    for (const Instr &I : BB->Instrs) {
      OS << "  ";
      if (!I.Results.empty()) {
        printOperandList(OS, *this, I.Results);
        OS << " <- ";
      }
      OS << opcodeName(I.Op);
      switch (I.Op) {
      case Opcode::ConstNum:
        OS << " " << I.NumRe;
        if (I.NumIm != 0.0)
          OS << "+" << I.NumIm << "i";
        break;
      case Opcode::ConstStr:
        OS << " '" << I.StrVal << "'";
        break;
      case Opcode::Builtin:
      case Opcode::Call:
      case Opcode::Display:
        OS << " @" << I.StrVal;
        break;
      default:
        break;
      }
      if (!I.Operands.empty()) {
        OS << " ";
        printOperandList(OS, *this, I.Operands);
      }
      if (I.Op == Opcode::Jmp)
        OS << " bb" << I.Target1;
      else if (I.Op == Opcode::Br)
        OS << " bb" << I.Target1 << ", bb" << I.Target2;
      OS << "\n";
    }
  }
  return OS.str();
}

Function *Module::findFunction(const std::string &Name) {
  for (auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

const Function *Module::findFunction(const std::string &Name) const {
  for (const auto &F : Functions)
    if (F->Name == Name)
      return F.get();
  return nullptr;
}

Function *Module::addFunction(const std::string &Name) {
  Functions.push_back(std::make_unique<Function>());
  Functions.back()->Name = Name;
  return Functions.back().get();
}

std::string Module::str() const {
  std::string Out;
  for (const auto &F : Functions) {
    Out += F->str();
    Out += '\n';
  }
  return Out;
}

bool matcoal::verifyFunction(const Function &F, Diagnostics &Diags) {
  bool OK = true;
  auto Fail = [&](const std::string &Msg) {
    Diags.error(SourceLoc{}, "verify " + F.Name + ": " + Msg);
    OK = false;
  };
  if (F.Blocks.empty()) {
    Fail("function has no blocks");
    return false;
  }
  for (const auto &BB : F.Blocks) {
    if (!BB->hasTerminator()) {
      Fail("bb" + std::to_string(BB->Id) + " lacks a terminator");
      continue;
    }
    for (size_t I = 0; I < BB->Instrs.size(); ++I) {
      const Instr &In = BB->Instrs[I];
      if (matcoal::isTerminator(In.Op) && I + 1 != BB->Instrs.size())
        Fail("terminator not at end of bb" + std::to_string(BB->Id));
      if (In.Op == Opcode::Phi) {
        if (In.Operands.size() != BB->Preds.size())
          Fail("phi operand count mismatch in bb" + std::to_string(BB->Id));
        // Phis must be grouped at the block head.
        if (I > 0 && BB->Instrs[I - 1].Op != Opcode::Phi)
          Fail("phi not at head of bb" + std::to_string(BB->Id));
      }
      for (VarId V : In.Operands)
        if (V < 0 || static_cast<size_t>(V) >= F.Vars.size())
          Fail("operand out of range");
      for (VarId V : In.Results)
        if (V < 0 || static_cast<size_t>(V) >= F.Vars.size())
          Fail("result out of range");
      if (In.Op == Opcode::Jmp || In.Op == Opcode::Br) {
        auto CheckTarget = [&](BlockId T) {
          if (T < 0 || static_cast<size_t>(T) >= F.Blocks.size())
            Fail("branch target out of range");
        };
        CheckTarget(In.Target1);
        if (In.Op == Opcode::Br)
          CheckTarget(In.Target2);
      }
    }
  }
  return OK;
}
