/*===- mcrt.h - C runtime for matcoal-generated code ---------------------===
 *
 * Part of the matcoal project: a reproduction of "Static Array Storage
 * Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
 *
 * The target runtime of the C back end (src/codegen). Generated code keeps
 * every storage slot as the quadruple
 *     double *S;  mcrt_size S_cap;  mcrt_size S_d0, S_d1;
 * Stack-planned slots carry a NEGATIVE cap (-capacity in elements) and may
 * never grow; heap slots start null and grow through mcrt_ensure(). Library
 * operations go through the single variadic entry point mcrt_call().
 *
 * Scope: real-valued arrays of up to three dimensions (column major).
 * Complex data faults with a clear message (use the instrumented VM).
 *
 *===----------------------------------------------------------------------===
 */

#ifndef MATCOAL_MCRT_H
#define MATCOAL_MCRT_H

#include <stdio.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef long long mcrt_size;

/* ABI version stamp. Bumped whenever the slot quadruple layout, the
 * mcrt_call contract, or any host-visible hook below changes shape. The
 * in-process native tier bakes this value into its artifact-cache key and
 * re-checks it through mcrt_abi_version() after dlopen, so a stale shared
 * object compiled against an older runtime can never be called through a
 * newer host's expectations (it is evicted and recompiled instead).
 * The stamp only covers ABI *shape*: behavioral changes to this runtime
 * (print formatting, RNG, growth policy) need no bump, because the
 * native tier also mixes a content digest of mcrt.c + mcrt.h into every
 * cache key (NativeEngine's mcrt-src preimage line), which retires
 * cached artifacts on any runtime source change. */
#define MCRT_ABI_VERSION 2

/* The MCRT_ABI_VERSION the runtime was compiled with (a function, not the
 * macro, so the check crosses the dlopen boundary). */
int mcrt_abi_version(void);

/* A by-value argument view (up to three dimensions; d0 == -1 encodes the
 * ':' subscript marker). */
typedef struct {
  const double *data;
  mcrt_size d0, d1, d2;
} mcrt_arg;

/* A by-reference output slot. */
typedef struct {
  double **buf;
  mcrt_size *cap;
  mcrt_size *d0, *d1, *d2;
} mcrt_ref;

mcrt_arg mcrt_arg_(const double *data, mcrt_size d0, mcrt_size d1,
                   mcrt_size d2);
mcrt_ref mcrt_ref_(double **buf, mcrt_size *cap, mcrt_size *d0,
                   mcrt_size *d1, mcrt_size *d2);

/* Aborts with "mcrt error: <msg>" -- unless a failure handler is
 * installed (below), in which case the handler is invoked instead and
 * must not return. */
void mcrt_fail(const char *msg);

/* Host-installable failure handler. A standalone compiled program leaves
 * this unset and mcrt_fail exits the process; an in-process host (the
 * native execution tier) installs a handler that longjmps back to the
 * call site so a runtime trap in dlopened generated code classifies as a
 * trap instead of killing the host (or the matcoald daemon). The handler
 * MUST NOT return; if it does, mcrt_fail falls through to the exit path.
 * NULL uninstalls. */
typedef void (*mcrt_fail_handler)(const char *msg);
void mcrt_set_fail_handler(mcrt_fail_handler h);

/* Redirects everything the program prints (disp/display/fprintf) to
 * \p out; NULL restores stdout. The in-process host points this at an
 * open_memstream so captured output never races the host's own stdout
 * (matcoald writes protocol frames there). Error text and mcrt_fail
 * messages stay on stderr regardless. */
void mcrt_set_out(FILE *out);

/* Grows *buf to hold need elements (heap slots) or checks the fixed
 * capacity (stack slots, negative cap). Growth is geometric (doubling, a
 * factor >= 1.5), so a sequence of n one-element appends copies O(n)
 * elements total -- amortized O(1) per append. */
void mcrt_ensure(double **buf, mcrt_size *cap, mcrt_size need);

/* Reallocation statistics for the geometric-growth policy (tests assert
 * the amortized-copy bound through these). copied_elems counts the
 * elements realloc may have had to move: the old capacity at each growth
 * event. */
typedef struct {
  mcrt_size reallocs;
  mcrt_size copied_elems;
} mcrt_growth_stats;
mcrt_growth_stats mcrt_get_growth_stats(void);
void mcrt_reset_growth_stats(void);

/* Shape equality over all three extents: the guard of the emitter's
 * fused elementwise loops. */
int mcrt_same_shape(mcrt_size a0, mcrt_size a1, mcrt_size a2,
                    mcrt_size b0, mcrt_size b1, mcrt_size b2);

/* Parameter/result marshalling. */
void mcrt_load(double **buf, mcrt_size *cap, mcrt_size *d0, mcrt_size *d1,
               mcrt_size *d2, mcrt_arg in);
void mcrt_store(mcrt_ref out, const double *src, mcrt_size d0,
                mcrt_size d1, mcrt_size d2);

/* MATLAB truth: nonempty and all elements nonzero. */
int mcrt_truth(const double *buf, mcrt_size n);
mcrt_size mcrt_max(mcrt_size a, mcrt_size b);
void mcrt_check_conformance(mcrt_size a0, mcrt_size a1, mcrt_size b0,
                            mcrt_size b1);

/* Character row literal (stores char codes). */
void mcrt_str(double *buf, mcrt_size *d0, mcrt_size *d1, mcrt_size *d2,
              const char *s);
/* Complex literals are unsupported in mcrt (clear fault). */
void mcrt_const_complex(double **buf, mcrt_size *cap, mcrt_size *d0,
                        mcrt_size *d1, mcrt_size *d2, double re,
                        double im);

/* Named display (the IR's Display op); prints pages when d2 > 1. */
void mcrt_display(const char *name, const double *buf, mcrt_size d0,
                  mcrt_size d1, mcrt_size d2);
/* Same for statically char-typed values (prints the characters). */
void mcrt_display_char(const char *name, const double *buf, mcrt_size d0,
                       mcrt_size d1, mcrt_size d2);

/* Deterministic PRNG shared with the matcoal VM (same stream per seed). */
void mcrt_srand(unsigned long long seed);

/* Checked scalar-subscript helpers for inlined indexing. Both fault on
 * non-positive or fractional subscripts; they return the 0-based linear
 * index, or -1 when the subscript lies beyond the extent (reads fail on
 * -1; writes fall back to the growing runtime path). */
mcrt_size mcrt_index1(double i, mcrt_size n);
mcrt_size mcrt_index2(double i, double j, mcrt_size d0, mcrt_size d1);
mcrt_size mcrt_index3(double i, double j, double k, mcrt_size d0,
                      mcrt_size d1, mcrt_size d2);

/* The uniform library entry: op name, result count, argument count, then
 * nres x (double **buf, mcrt_size *cap, mcrt_size *d0, *d1, *d2)
 * followed by nargs x (const double *buf, mcrt_size d0, d1, d2). */
void mcrt_call(const char *op, int nres, int nargs, ...);

/* --- Runtime storage profiling (emitted under --emit-profiling) ---------
 *
 * Compiled programs stream the same event-envelope JSON the matcoal VM
 * profiler writes ({"version":1,"clock":"op","source":"mcrt","events":
 * [...]}) so the two tiers can be compared event-for-event. The clock is
 * the count of profiling hooks executed -- deterministic across runs of
 * one binary, like the VM's op-clock. */

/* Opens the profile stream. A null path falls back to $MCRT_PROF_OUT,
 * then to "mcrt_profile.json". Idempotent. */
void mcrt_prof_begin(const char *path);
/* Reports the current size of storage slot (fn, group, slot). Unchanged
 * sizes are deduplicated; changes are emitted as "alloc" (first sighting
 * or growth from empty) / "resize" events. */
void mcrt_prof_size(const char *fn, int group, const char *slot,
                    mcrt_size bytes);
/* Emits a non-size event verbatim (kind in the profiler's vocabulary:
 * "free", "pool_reuse", "in_place", "steal", "trap"). */
void mcrt_prof_event(const char *fn, const char *kind, int group,
                     const char *slot, mcrt_size bytes);
/* Closes the events array and the stream. Idempotent. */
void mcrt_prof_end(void);

#ifdef __cplusplus
}
#endif

#endif /* MATCOAL_MCRT_H */
