/*===- mcrt.h - C runtime for matcoal-generated code ---------------------===
 *
 * Part of the matcoal project: a reproduction of "Static Array Storage
 * Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
 *
 * The target runtime of the C back end (src/codegen). Generated code keeps
 * every storage slot as the quadruple
 *     double *S;  mcrt_size S_cap;  mcrt_size S_d0, S_d1;
 * Stack-planned slots carry a NEGATIVE cap (-capacity in elements) and may
 * never grow; heap slots start null and grow through mcrt_ensure(). Library
 * operations go through the single variadic entry point mcrt_call().
 *
 * Scope: real-valued arrays of up to three dimensions (column major).
 * Complex data faults with a clear message (use the instrumented VM).
 *
 *===----------------------------------------------------------------------===
 */

#ifndef MATCOAL_MCRT_H
#define MATCOAL_MCRT_H

#include <stdio.h>

#ifdef __cplusplus
extern "C" {
#endif

typedef long long mcrt_size;

/* ABI version stamp. Bumped whenever the slot quadruple layout, the
 * mcrt_call contract, or any host-visible hook below changes shape. The
 * in-process native tier bakes this value into its artifact-cache key and
 * re-checks it through mcrt_abi_version() after dlopen, so a stale shared
 * object compiled against an older runtime can never be called through a
 * newer host's expectations (it is evicted and recompiled instead).
 * The stamp only covers ABI *shape*: behavioral changes to this runtime
 * (print formatting, RNG, growth policy) need no bump, because the
 * native tier also mixes a content digest of mcrt.c + mcrt.h into every
 * cache key (NativeEngine's mcrt-src preimage line), which retires
 * cached artifacts on any runtime source change.
 * v3: destination-passing returns (mcrt_dps_bind/mcrt_dps_ret), the
 * worker pool (mcrt_set_threads/mcrt_parallel_for), the cancellation
 * hook (mcrt_set_cancel_check/mcrt_cancel_point), and the heap meter
 * (mcrt_get_mem_stats).
 * v4: mcrt_thread_stats grew busy_ns (per-worker busy nanoseconds
 * summed across parallel partitions) -- a struct-shape change every
 * host reading thread stats must agree on. */
#define MCRT_ABI_VERSION 4

/* The MCRT_ABI_VERSION the runtime was compiled with (a function, not the
 * macro, so the check crosses the dlopen boundary). */
int mcrt_abi_version(void);

/* A by-value argument view (up to three dimensions; d0 == -1 encodes the
 * ':' subscript marker). */
typedef struct {
  const double *data;
  mcrt_size d0, d1, d2;
} mcrt_arg;

/* A by-reference output slot. */
typedef struct {
  double **buf;
  mcrt_size *cap;
  mcrt_size *d0, *d1, *d2;
} mcrt_ref;

mcrt_arg mcrt_arg_(const double *data, mcrt_size d0, mcrt_size d1,
                   mcrt_size d2);
mcrt_ref mcrt_ref_(double **buf, mcrt_size *cap, mcrt_size *d0,
                   mcrt_size *d1, mcrt_size *d2);

/* Aborts with "mcrt error: <msg>" -- unless a failure handler is
 * installed (below), in which case the handler is invoked instead and
 * must not return. */
void mcrt_fail(const char *msg);

/* Host-installable failure handler. A standalone compiled program leaves
 * this unset and mcrt_fail exits the process; an in-process host (the
 * native execution tier) installs a handler that longjmps back to the
 * call site so a runtime trap in dlopened generated code classifies as a
 * trap instead of killing the host (or the matcoald daemon). The handler
 * MUST NOT return; if it does, mcrt_fail falls through to the exit path.
 * NULL uninstalls. */
typedef void (*mcrt_fail_handler)(const char *msg);
void mcrt_set_fail_handler(mcrt_fail_handler h);

/* Redirects everything the program prints (disp/display/fprintf) to
 * \p out; NULL restores stdout. The in-process host points this at an
 * open_memstream so captured output never races the host's own stdout
 * (matcoald writes protocol frames there). Error text and mcrt_fail
 * messages stay on stderr regardless. */
void mcrt_set_out(FILE *out);

/* Grows *buf to hold need elements (heap slots) or checks the fixed
 * capacity (stack slots, negative cap). Growth is geometric (doubling, a
 * factor >= 1.5), so a sequence of n one-element appends copies O(n)
 * elements total -- amortized O(1) per append. */
void mcrt_ensure(double **buf, mcrt_size *cap, mcrt_size need);

/* Reallocation statistics for the geometric-growth policy (tests assert
 * the amortized-copy bound through these). copied_elems counts the
 * elements realloc may have had to move: the old capacity at each growth
 * event. */
typedef struct {
  mcrt_size reallocs;
  mcrt_size copied_elems;
} mcrt_growth_stats;
mcrt_growth_stats mcrt_get_growth_stats(void);
void mcrt_reset_growth_stats(void);

/* Shape equality over all three extents: the guard of the emitter's
 * fused elementwise loops. */
int mcrt_same_shape(mcrt_size a0, mcrt_size a1, mcrt_size a2,
                    mcrt_size b0, mcrt_size b1, mcrt_size b2);

/* Parameter/result marshalling. */
void mcrt_load(double **buf, mcrt_size *cap, mcrt_size *d0, mcrt_size *d1,
               mcrt_size *d2, mcrt_arg in);
void mcrt_store(mcrt_ref out, const double *src, mcrt_size d0,
                mcrt_size d1, mcrt_size d2);

/* --- Destination-passing-style returns ---------------------------------
 *
 * A callee whose plan proves an output's storage group is heap-only,
 * never shared with a parameter or another output, and the unique source
 * of every return of that output, hands the buffer to the caller by
 * POINTER instead of copying through mcrt_store. At entry (after the
 * mcrt_loads, which copy argument data and therefore make the handoff
 * alias-safe) the callee borrows the caller's existing allocation so the
 * chain stays in one buffer across the call boundary; at return the
 * grown buffer travels back the same way. Both calls degrade to the copy
 * path at run time when either side is a fixed (stack-planned, negative
 * cap) slot, so eligibility is purely an optimization decision. */

/* Borrows the caller's heap allocation into the callee slot (*buf,*cap)
 * when both sides are heap and the callee slot is still empty; no-op
 * otherwise. The caller's ref is left empty (NULL buf, 0 cap) so the
 * buffer has exactly one owner at any instant. */
void mcrt_dps_bind(mcrt_ref out, double **buf, mcrt_size *cap);
/* Returns the callee slot to the caller: frees the caller's old buffer
 * and installs the callee's (pointer handoff, no copy) when both sides
 * are heap; falls back to mcrt_store's copy when either side is fixed. */
void mcrt_dps_ret(mcrt_ref out, double **buf, mcrt_size *cap, mcrt_size d0,
                  mcrt_size d1, mcrt_size d2);

/* --- Worker pool -------------------------------------------------------
 *
 * A small persistent pthread pool for the emitter's big fused loops and
 * the runtime's elementwise/matmul kernels. Only order-insensitive work
 * is ever partitioned (elementwise maps by contiguous index ranges,
 * matmul by result columns with the per-column accumulation order
 * intact), so parallel output is byte-identical to serial output;
 * reductions stay serial by policy (floating-point addition does not
 * reassociate). Workers never call mcrt_fail's handler themselves: a
 * fault inside a partitioned body is trapped on the worker (per-thread
 * setjmp), recorded, and re-raised on the main thread after the join --
 * the deterministic winner is the fault from the lowest chunk. */

/* Sets the worker count. n <= 0 resolves $MATCOAL_THREADS (clamped to
 * [1, 64]; unset or invalid means 1). Threads are spawned lazily on the
 * first parallel region that wants them and persist for reuse. */
void mcrt_set_threads(int n);
int mcrt_get_threads(void);

/* Below this many items a region runs serially (in cancel-checked
 * chunks): the fork/join handshake costs more than the loop. The
 * emitter consults the same constant when a static size bound proves a
 * loop can never reach it. */
#define MCRT_PAR_MIN 16384
/* Serial chunk length between two mcrt_cancel_point() polls. */
#define MCRT_CANCEL_CHUNK 65536

typedef void (*mcrt_par_body)(void *ctx, mcrt_size lo, mcrt_size hi);
/* Runs body over [0, n) -- partitioned into one contiguous range per
 * thread when n >= MCRT_PAR_MIN and more than one thread is configured,
 * serially in MCRT_CANCEL_CHUNK-sized cancel-checked chunks otherwise. */
void mcrt_parallel_for(mcrt_size n, void *ctx, mcrt_par_body body);

typedef struct {
  mcrt_size spawned; /* worker threads created (lifetime total)   */
  mcrt_size chunks;  /* per-thread ranges dispatched to the pool  */
  mcrt_size busy_ns; /* nanoseconds inside partition bodies, summed
                      * over every participant (parallel regions
                      * only; the serial path stays unmetered)     */
} mcrt_thread_stats;
mcrt_thread_stats mcrt_get_thread_stats(void);
void mcrt_reset_thread_stats(void);

/* --- Cancellation ------------------------------------------------------
 *
 * The in-process host installs a check so a deadline can interrupt a
 * long-running kernel between chunks instead of after it. The check runs
 * on the MAIN thread only (mcrt_fail may longjmp); a nonzero return
 * makes mcrt_cancel_point fail with "deadline exceeded". NULL
 * uninstalls. */
typedef int (*mcrt_cancel_fn)(void *host);
void mcrt_set_cancel_check(mcrt_cancel_fn fn, void *host);
void mcrt_cancel_point(void);

/* --- Heap metering -----------------------------------------------------
 *
 * Slot-storage accounting for the native tier's MemoryMeter: bytes
 * currently held by heap slots grown through mcrt_ensure (less buffers
 * retired by mcrt_dps_ret) and the high-water mark. op_solve's internal
 * scratch is not slot storage and is not counted. */
typedef struct {
  mcrt_size heap_bytes;      /* live slot bytes */
  mcrt_size peak_heap_bytes; /* high-water mark since the last reset */
} mcrt_mem_stats;
mcrt_mem_stats mcrt_get_mem_stats(void);
void mcrt_reset_mem_stats(void);

/* Faulting real-domain unary kernels, exported so fused loops emitted by
 * the C back end apply bit-for-bit the same functions (and the same
 * escape-to-complex faults) as the runtime's op_map dispatch. */
double mcrt_f_sqrt(double x);
double mcrt_f_log(double x);
double mcrt_f_sign(double x);

/* MATLAB truth: nonempty and all elements nonzero. */
int mcrt_truth(const double *buf, mcrt_size n);
mcrt_size mcrt_max(mcrt_size a, mcrt_size b);
void mcrt_check_conformance(mcrt_size a0, mcrt_size a1, mcrt_size b0,
                            mcrt_size b1);

/* Character row literal (stores char codes). */
void mcrt_str(double *buf, mcrt_size *d0, mcrt_size *d1, mcrt_size *d2,
              const char *s);
/* Complex literals are unsupported in mcrt (clear fault). */
void mcrt_const_complex(double **buf, mcrt_size *cap, mcrt_size *d0,
                        mcrt_size *d1, mcrt_size *d2, double re,
                        double im);

/* Named display (the IR's Display op); prints pages when d2 > 1. */
void mcrt_display(const char *name, const double *buf, mcrt_size d0,
                  mcrt_size d1, mcrt_size d2);
/* Same for statically char-typed values (prints the characters). */
void mcrt_display_char(const char *name, const double *buf, mcrt_size d0,
                       mcrt_size d1, mcrt_size d2);

/* Deterministic PRNG shared with the matcoal VM (same stream per seed). */
void mcrt_srand(unsigned long long seed);

/* Checked scalar-subscript helpers for inlined indexing. Both fault on
 * non-positive or fractional subscripts; they return the 0-based linear
 * index, or -1 when the subscript lies beyond the extent (reads fail on
 * -1; writes fall back to the growing runtime path). */
mcrt_size mcrt_index1(double i, mcrt_size n);
mcrt_size mcrt_index2(double i, double j, mcrt_size d0, mcrt_size d1);
mcrt_size mcrt_index3(double i, double j, double k, mcrt_size d0,
                      mcrt_size d1, mcrt_size d2);

/* The uniform library entry: op name, result count, argument count, then
 * nres x (double **buf, mcrt_size *cap, mcrt_size *d0, *d1, *d2)
 * followed by nargs x (const double *buf, mcrt_size d0, d1, d2). */
void mcrt_call(const char *op, int nres, int nargs, ...);

/* --- Runtime storage profiling (emitted under --emit-profiling) ---------
 *
 * Compiled programs stream the same event-envelope JSON the matcoal VM
 * profiler writes ({"version":1,"clock":"op","source":"mcrt","events":
 * [...]}) so the two tiers can be compared event-for-event. The clock is
 * the count of profiling hooks executed -- deterministic across runs of
 * one binary, like the VM's op-clock. */

/* Opens the profile stream. A null path falls back to $MCRT_PROF_OUT,
 * then to "mcrt_profile.json". Idempotent. */
void mcrt_prof_begin(const char *path);
/* Reports the current size of storage slot (fn, group, slot). Unchanged
 * sizes are deduplicated; changes are emitted as "alloc" (first sighting
 * or growth from empty) / "resize" events. */
void mcrt_prof_size(const char *fn, int group, const char *slot,
                    mcrt_size bytes);
/* Emits a non-size event verbatim (kind in the profiler's vocabulary:
 * "free", "pool_reuse", "in_place", "steal", "trap"). */
void mcrt_prof_event(const char *fn, const char *kind, int group,
                     const char *slot, mcrt_size bytes);
/* Closes the events array and the stream. Idempotent. */
void mcrt_prof_end(void);

#ifdef __cplusplus
}
#endif

#endif /* MATCOAL_MCRT_H */
