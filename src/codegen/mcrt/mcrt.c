/*===- mcrt.c - C runtime for matcoal-generated code ---------------------===
 *
 * Scope: real-valued arrays of up to three dimensions (column major).
 * Complex data faults with a clear message (use the instrumented VM).
 *
 *===----------------------------------------------------------------------===
 */

#include "mcrt.h"

#include <math.h>
#include <pthread.h>
#include <setjmp.h>
#include <stdarg.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

/*===--------------------------------------------------------------------===
 * Basics
 *===--------------------------------------------------------------------===*/

int mcrt_abi_version(void) { return MCRT_ABI_VERSION; }

static mcrt_fail_handler g_fail_handler = NULL;

void mcrt_set_fail_handler(mcrt_fail_handler h) { g_fail_handler = h; }

/* Worker-side fault trampoline (see the pool below): a worker that hits
 * mcrt_fail must not run the host's handler (which longjmps across
 * threads) -- it longjmps to its own dispatch loop instead and the main
 * thread re-raises after the join. */
static __thread jmp_buf *g_worker_jmp = NULL;
static void mcrt_pool_record_fault(const char *msg, mcrt_size lo);

void mcrt_fail(const char *msg) {
  if (g_worker_jmp) {
    mcrt_pool_record_fault(msg, -1);
    longjmp(*g_worker_jmp, 1);
  }
  if (g_fail_handler)
    g_fail_handler(msg); /* must not return; fall through if it does */
  fprintf(stderr, "mcrt error: %s\n", msg);
  exit(1);
}

/* Program output sink: stdout unless the in-process host redirected it. */
static FILE *g_out_override = NULL;

void mcrt_set_out(FILE *out) { g_out_override = out; }

static FILE *mcrt_out_(void) { return g_out_override ? g_out_override : stdout; }

mcrt_arg mcrt_arg_(const double *data, mcrt_size d0, mcrt_size d1,
                   mcrt_size d2) {
  mcrt_arg a;
  a.data = data;
  a.d0 = d0;
  a.d1 = d1;
  a.d2 = d2;
  return a;
}

mcrt_ref mcrt_ref_(double **buf, mcrt_size *cap, mcrt_size *d0,
                   mcrt_size *d1, mcrt_size *d2) {
  mcrt_ref r;
  r.buf = buf;
  r.cap = cap;
  r.d0 = d0;
  r.d1 = d1;
  r.d2 = d2;
  return r;
}

static mcrt_growth_stats g_growth;

mcrt_growth_stats mcrt_get_growth_stats(void) { return g_growth; }

void mcrt_reset_growth_stats(void) {
  g_growth.reallocs = 0;
  g_growth.copied_elems = 0;
}

/*===--------------------------------------------------------------------===
 * Cancellation
 *===--------------------------------------------------------------------===*/

static mcrt_cancel_fn g_cancel_fn = NULL;
static void *g_cancel_host = NULL;

void mcrt_set_cancel_check(mcrt_cancel_fn fn, void *host) {
  g_cancel_fn = fn;
  g_cancel_host = host;
}

void mcrt_cancel_point(void) {
  if (g_worker_jmp)
    return; /* only the main thread may fail; workers are polled via it */
  if (g_cancel_fn && g_cancel_fn(g_cancel_host))
    mcrt_fail("deadline exceeded");
}

/*===--------------------------------------------------------------------===
 * Heap metering
 *===--------------------------------------------------------------------===*/

static mcrt_mem_stats g_mem;

mcrt_mem_stats mcrt_get_mem_stats(void) { return g_mem; }

void mcrt_reset_mem_stats(void) {
  g_mem.heap_bytes = 0;
  g_mem.peak_heap_bytes = 0;
}

static void mem_grow(mcrt_size delta_bytes) {
  g_mem.heap_bytes += delta_bytes;
  if (g_mem.heap_bytes > g_mem.peak_heap_bytes)
    g_mem.peak_heap_bytes = g_mem.heap_bytes;
}

static void mem_shrink(mcrt_size delta_bytes) {
  g_mem.heap_bytes -= delta_bytes;
  if (g_mem.heap_bytes < 0)
    g_mem.heap_bytes = 0; /* buffer predating the last reset */
}

/*===--------------------------------------------------------------------===
 * Worker pool
 *===--------------------------------------------------------------------===*/

#define MCRT_MAX_THREADS 64

static int g_threads = 1;

void mcrt_set_threads(int n) {
  if (n <= 0) {
    const char *e = getenv("MATCOAL_THREADS");
    n = 1;
    if (e && e[0]) {
      n = atoi(e);
      if (n < 1)
        n = 1;
    }
  }
  if (n > MCRT_MAX_THREADS)
    n = MCRT_MAX_THREADS;
  g_threads = n;
}

int mcrt_get_threads(void) { return g_threads; }

static mcrt_thread_stats g_tstats;

mcrt_thread_stats mcrt_get_thread_stats(void) { return g_tstats; }

void mcrt_reset_thread_stats(void) {
  g_tstats.spawned = 0;
  g_tstats.chunks = 0;
  g_tstats.busy_ns = 0;
}

/* Monotonic nanoseconds for partition busy-time metering. */
static mcrt_size mcrt_now_ns(void) {
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return (mcrt_size)ts.tv_sec * 1000000000 + (mcrt_size)ts.tv_nsec;
}

/* All pool state lives under one mutex; workers wait for a generation
 * bump, run their contiguous partition, and report done. The main
 * thread always participates (last partition), so a 4-thread region
 * spawns only 3 workers. */
static struct {
  pthread_mutex_t mu;
  pthread_cond_t work_cv;
  pthread_cond_t done_cv;
  pthread_t tid[MCRT_MAX_THREADS];
  int spawned;
  int shutdown;
  unsigned long long gen;
  /* Current job (valid while outstanding > 0). */
  mcrt_par_body body;
  void *ctx;
  mcrt_size n;
  int nparts;
  int outstanding;
  /* First fault across participants, by lowest partition start, so the
   * re-raised message is the one a serial run would have hit first. */
  int faulted;
  mcrt_size fault_lo;
  char fault_msg[256];
} g_pool = {PTHREAD_MUTEX_INITIALIZER, PTHREAD_COND_INITIALIZER,
            PTHREAD_COND_INITIALIZER};

static __thread mcrt_size g_part_lo = 0;

static void mcrt_pool_record_fault(const char *msg, mcrt_size lo) {
  (void)lo;
  pthread_mutex_lock(&g_pool.mu);
  if (!g_pool.faulted || g_part_lo < g_pool.fault_lo) {
    g_pool.faulted = 1;
    g_pool.fault_lo = g_part_lo;
    strncpy(g_pool.fault_msg, msg, sizeof(g_pool.fault_msg) - 1);
    g_pool.fault_msg[sizeof(g_pool.fault_msg) - 1] = 0;
  }
  pthread_mutex_unlock(&g_pool.mu);
}

static void *mcrt_worker_main(void *arg) {
  int id = (int)(size_t)arg;
  unsigned long long seen = 0;
  jmp_buf jb;
  for (;;) {
    mcrt_par_body body;
    void *ctx;
    mcrt_size n;
    int nparts;
    pthread_mutex_lock(&g_pool.mu);
    while (!g_pool.shutdown && g_pool.gen == seen)
      pthread_cond_wait(&g_pool.work_cv, &g_pool.mu);
    if (g_pool.shutdown) {
      pthread_mutex_unlock(&g_pool.mu);
      break;
    }
    seen = g_pool.gen;
    body = g_pool.body;
    ctx = g_pool.ctx;
    n = g_pool.n;
    nparts = g_pool.nparts;
    pthread_mutex_unlock(&g_pool.mu);
    if (id < nparts - 1) {
      mcrt_size lo = (mcrt_size)id * n / nparts;
      mcrt_size hi = ((mcrt_size)id + 1) * n / nparts;
      mcrt_size t0 = mcrt_now_ns();
      g_part_lo = lo;
      g_worker_jmp = &jb;
      if (setjmp(jb) == 0)
        body(ctx, lo, hi);
      g_worker_jmp = NULL;
      pthread_mutex_lock(&g_pool.mu);
      g_tstats.busy_ns += mcrt_now_ns() - t0;
      if (--g_pool.outstanding == 0)
        pthread_cond_signal(&g_pool.done_cv);
      pthread_mutex_unlock(&g_pool.mu);
    }
  }
  return NULL;
}

static void mcrt_pool_spawn_locked(int want) {
  while (g_pool.spawned < want && g_pool.spawned < MCRT_MAX_THREADS - 1) {
    if (pthread_create(&g_pool.tid[g_pool.spawned], NULL, mcrt_worker_main,
                       (void *)(size_t)g_pool.spawned) != 0)
      break; /* degrade to fewer participants */
    g_pool.spawned++;
    g_tstats.spawned++;
  }
}

/* Joins the pool. Registered as a destructor so a dlclosed artifact
 * (native-tier eviction) never leaves a worker executing unmapped code,
 * and rerun-safe: the next parallel region respawns. */
#if defined(__GNUC__)
__attribute__((destructor))
#endif
static void mcrt_pool_teardown(void) {
  int i, n;
  pthread_mutex_lock(&g_pool.mu);
  n = g_pool.spawned;
  g_pool.shutdown = 1;
  pthread_cond_broadcast(&g_pool.work_cv);
  pthread_mutex_unlock(&g_pool.mu);
  for (i = 0; i < n; i++)
    pthread_join(g_pool.tid[i], NULL);
  pthread_mutex_lock(&g_pool.mu);
  g_pool.spawned = 0;
  g_pool.shutdown = 0;
  pthread_mutex_unlock(&g_pool.mu);
}

static void mcrt_par_run(mcrt_size n, void *ctx, mcrt_par_body body,
                         mcrt_size min_items) {
  mcrt_size lo, hi;
  int t = g_threads;
  if (n <= 0)
    return;
  if (t > 1 && n >= min_items) {
    int nparts;
    pthread_mutex_lock(&g_pool.mu);
    mcrt_pool_spawn_locked(t - 1);
    nparts = g_pool.spawned + 1 < t ? g_pool.spawned + 1 : t;
    if (nparts > 1) {
      jmp_buf jb;
      int faulted;
      static char raise_msg[256];
      g_pool.body = body;
      g_pool.ctx = ctx;
      g_pool.n = n;
      g_pool.nparts = nparts;
      g_pool.outstanding = nparts - 1;
      g_pool.faulted = 0;
      g_pool.fault_lo = 0;
      g_pool.gen++;
      g_tstats.chunks += nparts;
      pthread_cond_broadcast(&g_pool.work_cv);
      pthread_mutex_unlock(&g_pool.mu);
      /* The main thread runs the last partition -- under the same fault
       * trampoline as the workers, so a fault in ANY partition defers to
       * after the join (a longjmp out mid-region would leave workers
       * writing into buffers the host is free to reuse). */
      lo = (mcrt_size)(nparts - 1) * n / nparts;
      {
        mcrt_size t0 = mcrt_now_ns();
        g_part_lo = lo;
        g_worker_jmp = &jb;
        if (setjmp(jb) == 0)
          body(ctx, lo, n);
        g_worker_jmp = NULL;
        pthread_mutex_lock(&g_pool.mu);
        g_tstats.busy_ns += mcrt_now_ns() - t0;
      }
      while (g_pool.outstanding > 0)
        pthread_cond_wait(&g_pool.done_cv, &g_pool.mu);
      faulted = g_pool.faulted;
      if (faulted) {
        memcpy(raise_msg, g_pool.fault_msg, sizeof(raise_msg));
        g_pool.faulted = 0;
      }
      pthread_mutex_unlock(&g_pool.mu);
      if (faulted)
        mcrt_fail(raise_msg);
      mcrt_cancel_point();
      return;
    }
    pthread_mutex_unlock(&g_pool.mu);
  }
  /* Serial: cancel-checked chunks, same iteration order as one big
   * loop, so a deadline can interrupt between chunks. */
  for (lo = 0; lo < n; lo = hi) {
    hi = lo + MCRT_CANCEL_CHUNK;
    if (hi > n)
      hi = n;
    body(ctx, lo, hi);
    mcrt_cancel_point();
  }
}

void mcrt_parallel_for(mcrt_size n, void *ctx, mcrt_par_body body) {
  mcrt_par_run(n, ctx, body, MCRT_PAR_MIN);
}

/*===--------------------------------------------------------------------===
 * Runtime storage profiling (--emit-profiling)
 *===--------------------------------------------------------------------===*/

static FILE *g_prof_out = NULL;
static long long g_prof_clock = 0;
static int g_prof_nevents = 0;

/* Last reported size per (fn, group, slot) so unchanged sizes are
 * deduplicated the way the VM profiler's timelines are (change points
 * only). Slots are registered on first sight; the table is static and
 * bounded -- one entry per storage slot in the program, not per event. */
#define MCRT_PROF_MAX_SLOTS 1024
static struct {
  const char *fn;
  const char *slot;
  int group;
  long long bytes;
} g_prof_slots[MCRT_PROF_MAX_SLOTS];
static int g_prof_nslots = 0;

static void mcrt_prof_emit(const char *kind, const char *fn, int group,
                           const char *slot, long long bytes,
                           long long delta) {
  if (!g_prof_out)
    return;
  fprintf(g_prof_out,
          "%s    {\"clock\": %lld, \"kind\": \"%s\", \"function\": \"%s\", "
          "\"group\": %d, \"slot\": \"%s\", \"bytes\": %lld, "
          "\"delta\": %lld}",
          g_prof_nevents ? ",\n" : "", g_prof_clock, kind, fn ? fn : "",
          group, slot ? slot : "", bytes, delta);
  g_prof_nevents++;
}

void mcrt_prof_begin(const char *path) {
  if (g_prof_out)
    return;
  if (!path || !path[0])
    path = getenv("MCRT_PROF_OUT");
  if (!path || !path[0])
    path = "mcrt_profile.json";
  g_prof_out = fopen(path, "w");
  if (!g_prof_out) {
    fprintf(stderr, "mcrt: cannot open profile output '%s'\n", path);
    return;
  }
  g_prof_clock = 0;
  g_prof_nevents = 0;
  g_prof_nslots = 0;
  fprintf(g_prof_out, "{\n  \"version\": 1,\n  \"clock\": \"op\",\n"
                      "  \"source\": \"mcrt\",\n  \"events\": [\n");
}

void mcrt_prof_size(const char *fn, int group, const char *slot,
                    mcrt_size bytes) {
  int i;
  if (!g_prof_out)
    return;
  g_prof_clock++;
  for (i = 0; i < g_prof_nslots; i++) {
    if (g_prof_slots[i].group == group &&
        strcmp(g_prof_slots[i].fn, fn) == 0 &&
        strcmp(g_prof_slots[i].slot, slot) == 0) {
      long long old = g_prof_slots[i].bytes;
      if (old == (long long)bytes)
        return;
      g_prof_slots[i].bytes = bytes;
      mcrt_prof_emit(old == 0 ? "alloc" : "resize", fn, group, slot, bytes,
                     (long long)bytes - old);
      return;
    }
  }
  if (g_prof_nslots < MCRT_PROF_MAX_SLOTS) {
    g_prof_slots[g_prof_nslots].fn = fn;
    g_prof_slots[g_prof_nslots].slot = slot;
    g_prof_slots[g_prof_nslots].group = group;
    g_prof_slots[g_prof_nslots].bytes = bytes;
    g_prof_nslots++;
  }
  mcrt_prof_emit("alloc", fn, group, slot, bytes, bytes);
}

void mcrt_prof_event(const char *fn, const char *kind, int group,
                     const char *slot, mcrt_size bytes) {
  if (!g_prof_out)
    return;
  g_prof_clock++;
  mcrt_prof_emit(kind, fn, group, slot, bytes, 0);
}

void mcrt_prof_end(void) {
  if (!g_prof_out)
    return;
  fprintf(g_prof_out, "\n  ]\n}\n");
  fclose(g_prof_out);
  g_prof_out = NULL;
}

void mcrt_ensure(double **buf, mcrt_size *cap, mcrt_size need) {
  if (need < 1)
    need = 1;
  if (*cap < 0) {
    /* Fixed (stack-planned) slot. */
    if (need > -*cap)
      mcrt_fail("static storage slot overflow (plan violation)");
    return;
  }
  if (need <= *cap)
    return;
  {
    /* Geometric doubling (any factor >= 1.5 gives the amortized-O(1)
     * append bound; see mcrt_growth_stats). */
    mcrt_size newcap = *cap ? *cap : 4;
    double *p;
    while (newcap < need)
      newcap *= 2;
    g_growth.reallocs++;
    g_growth.copied_elems += *cap;
    p = (double *)realloc(*buf, (size_t)newcap * sizeof(double));
    if (!p)
      mcrt_fail("out of memory");
    mem_grow((newcap - *cap) * (mcrt_size)sizeof(double));
    *buf = p;
    *cap = newcap;
  }
}

int mcrt_same_shape(mcrt_size a0, mcrt_size a1, mcrt_size a2, mcrt_size b0,
                    mcrt_size b1, mcrt_size b2) {
  return a0 == b0 && a1 == b1 && a2 == b2;
}

void mcrt_load(double **buf, mcrt_size *cap, mcrt_size *d0, mcrt_size *d1,
               mcrt_size *d2, mcrt_arg in) {
  mcrt_size n = in.d0 * in.d1 * in.d2;
  mcrt_ensure(buf, cap, n);
  if (n > 0)
    memcpy(*buf, in.data, (size_t)n * sizeof(double));
  *d0 = in.d0;
  *d1 = in.d1;
  *d2 = in.d2;
}

void mcrt_store(mcrt_ref out, const double *src, mcrt_size d0,
                mcrt_size d1, mcrt_size d2) {
  mcrt_size n = d0 * d1 * d2;
  mcrt_ensure(out.buf, out.cap, n);
  if (n > 0 && *out.buf != src)
    memmove(*out.buf, src, (size_t)n * sizeof(double));
  *out.d0 = d0;
  *out.d1 = d1;
  *out.d2 = d2;
}

void mcrt_dps_bind(mcrt_ref out, double **buf, mcrt_size *cap) {
  if (*cap != 0)
    return; /* callee slot already holds storage (fixed, or populated) */
  if (*out.cap <= 0 || !*out.buf)
    return; /* caller side is fixed or empty: nothing to borrow */
  *buf = *out.buf;
  *cap = *out.cap;
  *out.buf = NULL;
  *out.cap = 0;
}

void mcrt_dps_ret(mcrt_ref out, double **buf, mcrt_size *cap, mcrt_size d0,
                  mcrt_size d1, mcrt_size d2) {
  if (*out.cap < 0 || *cap < 0) {
    mcrt_store(out, *buf, d0, d1, d2); /* a fixed slot cannot change owner */
    return;
  }
  if (*out.buf != *buf) {
    mem_shrink(*out.cap * (mcrt_size)sizeof(double));
    free(*out.buf);
    *out.buf = *buf;
    *out.cap = *cap;
    *buf = NULL;
    *cap = 0;
  }
  *out.d0 = d0;
  *out.d1 = d1;
  *out.d2 = d2;
}

int mcrt_truth(const double *buf, mcrt_size n) {
  mcrt_size i;
  if (n <= 0)
    return 0;
  for (i = 0; i < n; i++)
    if (buf[i] == 0.0)
      return 0;
  return 1;
}

mcrt_size mcrt_max(mcrt_size a, mcrt_size b) { return a > b ? a : b; }

void mcrt_check_conformance(mcrt_size a0, mcrt_size a1, mcrt_size b0,
                            mcrt_size b1) {
  if (a0 != b0 || a1 != b1)
    mcrt_fail("matrix dimensions must agree");
}

static mcrt_size checked_index(double v) {
  if (v < 1.0 || v != (double)(mcrt_size)v)
    mcrt_fail("subscript indices must be positive integers");
  return (mcrt_size)v - 1;
}

mcrt_size mcrt_index1(double i, mcrt_size n) {
  mcrt_size k = checked_index(i);
  return k < n ? k : -1;
}

mcrt_size mcrt_index2(double i, double j, mcrt_size d0, mcrt_size d1) {
  mcrt_size r = checked_index(i), c = checked_index(j);
  if (r < d0 && c < d1)
    return r + c * d0;
  return -1;
}

mcrt_size mcrt_index3(double i, double j, double k, mcrt_size d0,
                      mcrt_size d1, mcrt_size d2) {
  mcrt_size r = checked_index(i), c = checked_index(j),
            p = checked_index(k);
  if (r < d0 && c < d1 && p < d2)
    return r + c * d0 + p * d0 * d1;
  return -1;
}

void mcrt_str(double *buf, mcrt_size *d0, mcrt_size *d1, mcrt_size *d2,
              const char *s) {
  mcrt_size i, n = (mcrt_size)strlen(s);
  for (i = 0; i < n; i++)
    buf[i] = (double)(unsigned char)s[i];
  *d0 = 1;
  *d1 = n;
  *d2 = 1;
}

void mcrt_const_complex(double **buf, mcrt_size *cap, mcrt_size *d0,
                        mcrt_size *d1, mcrt_size *d2, double re,
                        double im) {
  (void)buf;
  (void)cap;
  (void)d0;
  (void)d1;
  (void)d2;
  (void)re;
  (void)im;
  mcrt_fail("complex values are not supported by the mcrt back end");
}

/*===--------------------------------------------------------------------===
 * Formatting (matches the matcoal VM's display byte for byte)
 *===--------------------------------------------------------------------===*/

static void fmt_double(char *out, size_t cap, double v) {
  if (isnan(v)) {
    snprintf(out, cap, "NaN");
    return;
  }
  if (isinf(v)) {
    snprintf(out, cap, v > 0 ? "Inf" : "-Inf");
    return;
  }
  if (v == floor(v) && fabs(v) < 1e15) {
    snprintf(out, cap, "%.0f", v);
    return;
  }
  snprintf(out, cap, "%.5g", v);
}

static void print_matrix(const double *buf, mcrt_size d0, mcrt_size d1,
                         mcrt_size d2) {
  char elem[64];
  mcrt_size i, j, p;
  if (d0 * d1 * d2 == 0) {
    fprintf(mcrt_out_(), "[]");
    return;
  }
  if (d0 == 1 && d1 == 1 && d2 == 1) {
    fmt_double(elem, sizeof(elem), buf[0]);
    fprintf(mcrt_out_(), "%s", elem);
    return;
  }
  for (p = 0; p < d2; p++) {
    if (d2 > 1)
      fprintf(mcrt_out_(), "(:,:,%lld) =\n", (long long)(p + 1));
    for (i = 0; i < d0; i++) {
      fprintf(mcrt_out_(), "  ");
      for (j = 0; j < d1; j++) {
        if (j)
          fprintf(mcrt_out_(), "  ");
        fmt_double(elem, sizeof(elem), buf[p * d0 * d1 + j * d0 + i]);
        fprintf(mcrt_out_(), "%s", elem);
      }
      if (i + 1 < d0 || p + 1 < d2)
        fprintf(mcrt_out_(), "\n");
    }
  }
}

void mcrt_display(const char *name, const double *buf, mcrt_size d0,
                  mcrt_size d1, mcrt_size d2) {
  fprintf(mcrt_out_(), "%s =\n", name);
  print_matrix(buf, d0, d1, d2);
  fprintf(mcrt_out_(), "\n");
}

static void print_chars(const double *buf, mcrt_size n) {
  mcrt_size i;
  for (i = 0; i < n; i++)
    fputc((int)buf[i], mcrt_out_());
}

void mcrt_display_char(const char *name, const double *buf, mcrt_size d0,
                       mcrt_size d1, mcrt_size d2) {
  fprintf(mcrt_out_(), "%s =\n", name);
  print_chars(buf, d0 * d1 * d2);
  fprintf(mcrt_out_(), "\n");
}

/*===--------------------------------------------------------------------===
 * PRNG: identical stream to the VM's RandState per seed.
 *===--------------------------------------------------------------------===*/

static unsigned long long mcrt_rng_state;

static int rng_initialized;

void mcrt_srand(unsigned long long seed) {
  unsigned long long z = seed + 0x9e3779b97f4a7c15ull;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  mcrt_rng_state = (z ^ (z >> 31)) | 1ull;
  /* An explicit seeding (the in-process host re-seeding a cached shared
   * object between runs) must stick: suppress the lazy default seed. */
  rng_initialized = 1;
}

static double rng_next(void) {
  unsigned long long s = mcrt_rng_state;
  s ^= s << 13;
  s ^= s >> 7;
  s ^= s << 17;
  mcrt_rng_state = s;
  return (double)(s >> 11) * (1.0 / 9007199254740992.0);
}

static void rng_init_once(void) {
  if (!rng_initialized) {
    mcrt_srand(20030609ull);
    rng_initialized = 1;
  }
}

/*===--------------------------------------------------------------------===
 * mcrt_call plumbing
 *===--------------------------------------------------------------------===*/

#define MCRT_MAX_RES 4
#define MCRT_MAX_ARGS 16

typedef struct {
  double **buf;
  mcrt_size *cap;
  mcrt_size *d0, *d1, *d2;
} res_slot;

typedef struct {
  const double *p;
  mcrt_size d0, d1, d2;
} arg_view;

static mcrt_size numel(const arg_view *a) {
  return a->d0 < 0 ? 0 : a->d0 * a->d1 * a->d2;
}
static int is_colon(const arg_view *a) { return a->d0 < 0; }
static int is_scalar(const arg_view *a) {
  return a->d0 == 1 && a->d1 == 1 && a->d2 == 1;
}
static int is_2d(const arg_view *a) { return a->d2 == 1; }
static double scalar_of(const arg_view *a) {
  if (numel(a) < 1)
    mcrt_fail("operand must not be empty");
  return a->p[0];
}
static mcrt_size dim_of(const arg_view *a, int d) {
  switch (d) {
  case 0: return a->d0;
  case 1: return a->d1;
  default: return a->d2;
  }
}

static void set_result(const res_slot *r, mcrt_size d0, mcrt_size d1,
                       mcrt_size d2) {
  mcrt_ensure(r->buf, r->cap, d0 * d1 * d2);
  *r->d0 = d0;
  *r->d1 = d1;
  *r->d2 = d2;
}

static void set_scalar(const res_slot *r, double v) {
  set_result(r, 1, 1, 1);
  (*r->buf)[0] = v;
}

/*===--------------------------------------------------------------------===
 * Library operations
 *===--------------------------------------------------------------------===*/

static void op_fill(const res_slot *r, const arg_view *args, int nargs,
                    double v) {
  mcrt_size d0 = 1, d1 = 1, d2 = 1, i;
  if (nargs == 1) {
    d0 = d1 = (mcrt_size)scalar_of(&args[0]);
  } else if (nargs >= 2) {
    d0 = (mcrt_size)scalar_of(&args[0]);
    d1 = (mcrt_size)scalar_of(&args[1]);
    if (nargs >= 3)
      d2 = (mcrt_size)scalar_of(&args[2]);
    if (nargs > 3)
      mcrt_fail("arrays beyond three dimensions are not supported");
  }
  set_result(r, d0, d1, d2);
  for (i = 0; i < d0 * d1 * d2; i++)
    (*r->buf)[i] = v;
}

static void op_rand(const res_slot *r, const arg_view *args, int nargs,
                    int normal) {
  mcrt_size i, n;
  rng_init_once();
  op_fill(r, args, nargs, 0.0);
  n = *r->d0 * *r->d1 * *r->d2;
  if (!normal) {
    for (i = 0; i < n; i++)
      (*r->buf)[i] = rng_next();
  } else {
    for (i = 0; i < n; i++) {
      double u1 = rng_next(), u2 = rng_next();
      if (u1 < 1e-300)
        u1 = 1e-300;
      (*r->buf)[i] =
          sqrt(-2.0 * log(u1)) * cos(2.0 * 3.14159265358979323846 * u2);
    }
  }
}

typedef double (*unary_fn)(double);

/* Elementwise maps partition across the worker pool: every element is
 * independent and lands at its own index, so the parallel result is
 * byte-identical to the serial one. Faulting kernels (sqrt/log of a
 * negative) are safe here through the pool's per-thread trampoline. */
typedef struct {
  double *dst;
  const double *src;
  unary_fn f;
} map_pctx;

static void map_pbody(void *vctx, mcrt_size lo, mcrt_size hi) {
  map_pctx *c = (map_pctx *)vctx;
  mcrt_size i;
  for (i = lo; i < hi; i++)
    c->dst[i] = c->f(c->src[i]);
}

static void op_map(const res_slot *r, const arg_view *a, unary_fn f) {
  mcrt_size n = numel(a);
  mcrt_size d0 = a->d0, d1 = a->d1, d2 = a->d2;
  map_pctx c;
  set_result(r, d0, d1, d2);
  c.dst = *r->buf;
  c.src = a->p;
  c.f = f;
  mcrt_parallel_for(n, &c, map_pbody);
  *r->d0 = d0;
  *r->d1 = d1;
  *r->d2 = d2;
}

double mcrt_f_sign(double x) { return x > 0 ? 1.0 : (x < 0 ? -1.0 : 0.0); }
static double f_sign(double x) { return mcrt_f_sign(x); }
static double f_fix(double x) { return trunc(x); }
double mcrt_f_sqrt(double x) {
  if (x < 0)
    mcrt_fail("sqrt of a negative value escapes to complex "
              "(unsupported by mcrt)");
  return sqrt(x);
}
double mcrt_f_log(double x) {
  if (x < 0)
    mcrt_fail("log of a negative value escapes to complex "
              "(unsupported by mcrt)");
  return log(x);
}
static double f_sqrt_real(double x) { return mcrt_f_sqrt(x); }
static double f_log_real(double x) { return mcrt_f_log(x); }
static double f_identity(double x) { return x; }
static double f_zero(double x) { (void)x; return 0.0; }
static double f_logical(double x) { return x != 0.0; }
static double f_neg(double x) { return -x; }
static double f_not(double x) { return x == 0.0 ? 1.0 : 0.0; }

typedef double (*binary_fn)(double, double);
static double f_add(double x, double y) { return x + y; }
static double f_sub(double x, double y) { return x - y; }
static double f_mul(double x, double y) { return x * y; }
static double f_div(double x, double y) { return x / y; }
static double f_ldiv(double x, double y) { return y / x; }
static double f_lt(double x, double y) { return x < y; }
static double f_le(double x, double y) { return x <= y; }
static double f_gt(double x, double y) { return x > y; }
static double f_ge(double x, double y) { return x >= y; }
static double f_eq(double x, double y) { return x == y; }
static double f_ne(double x, double y) { return x != y; }
static double f_and(double x, double y) { return x != 0.0 && y != 0.0; }
static double f_or(double x, double y) { return x != 0.0 || y != 0.0; }
static double f_min2(double x, double y) { return x < y ? x : y; }
static double f_max2(double x, double y) { return x > y ? x : y; }
static double f_mod(double x, double y) {
  if (y == 0.0)
    return x;
  return x - floor(x / y) * y;
}
static double f_rem(double x, double y) {
  return y == 0.0 ? x : fmod(x, y);
}
static double f_pow(double x, double y) {
  if (x < 0 && y != floor(y))
    mcrt_fail("fractional power of a negative value escapes to complex "
              "(unsupported by mcrt)");
  return pow(x, y);
}

typedef struct {
  double *dst;
  const double *a, *b;
  double sa, sb;
  int as, bs;
  binary_fn f;
} zip_pctx;

static void zip_pbody(void *vctx, mcrt_size lo, mcrt_size hi) {
  zip_pctx *c = (zip_pctx *)vctx;
  mcrt_size i;
  for (i = lo; i < hi; i++)
    c->dst[i] = c->f(c->as ? c->sa : c->a[i], c->bs ? c->sb : c->b[i]);
}

static void op_zip(const res_slot *r, const arg_view *a, const arg_view *b,
                   binary_fn f) {
  int as = is_scalar(a), bs = is_scalar(b);
  const arg_view *big = (as && !bs) ? b : a;
  mcrt_size n = numel(big);
  mcrt_size d0 = big->d0, d1 = big->d1, d2 = big->d2;
  zip_pctx c;
  if (!as && !bs &&
      (a->d0 != b->d0 || a->d1 != b->d1 || a->d2 != b->d2))
    mcrt_fail("matrix dimensions must agree");
  c.sa = as ? a->p[0] : 0;
  c.sb = bs ? b->p[0] : 0;
  set_result(r, d0, d1, d2);
  c.dst = *r->buf;
  c.a = a->p;
  c.b = b->p;
  c.as = as;
  c.bs = bs;
  c.f = f;
  mcrt_parallel_for(n, &c, zip_pbody);
  *r->d0 = d0;
  *r->d1 = d1;
  *r->d2 = d2;
}

/* Matmul partitions RESULT COLUMNS across the pool: each column keeps
 * its serial accumulation order (including the skip-on-zero shortcut),
 * so the parallel product is bit-identical to the serial one. */
typedef struct {
  double *out;
  const double *a, *b;
  mcrt_size m, k;
} matmul_pctx;

static void matmul_pbody(void *vctx, mcrt_size lo, mcrt_size hi) {
  matmul_pctx *c = (matmul_pctx *)vctx;
  mcrt_size i, j, p;
  for (j = lo; j < hi; j++)
    for (p = 0; p < c->k; p++) {
      double bv = c->b[p + j * c->k];
      if (bv == 0.0)
        continue;
      for (i = 0; i < c->m; i++)
        c->out[i + j * c->m] += c->a[i + p * c->m] * bv;
    }
}

static void op_matmul(const res_slot *r, const arg_view *a,
                      const arg_view *b) {
  mcrt_size m, k, n, i;
  double *out;
  matmul_pctx c;
  if (is_scalar(a) || is_scalar(b)) {
    op_zip(r, a, b, f_mul);
    return;
  }
  if (!is_2d(a) || !is_2d(b))
    mcrt_fail("matrix multiplication requires 2-D operands");
  m = a->d0;
  k = a->d1;
  n = b->d1;
  if (k != b->d0)
    mcrt_fail("inner matrix dimensions must agree");
  set_result(r, m, n, 1);
  out = *r->buf;
  for (i = 0; i < m * n; i++)
    out[i] = 0.0;
  c.out = out;
  c.a = a->p;
  c.b = b->p;
  c.m = m;
  c.k = k;
  if (m * n >= MCRT_PAR_MIN)
    mcrt_par_run(n, &c, matmul_pbody, 1); /* flops gate, not column count */
  else
    matmul_pbody(&c, 0, n);
}

/* Gaussian elimination with partial pivoting: solves A X = B. */
static void op_solve(const res_slot *r, const arg_view *a,
                     const arg_view *b) {
  mcrt_size n = a->d0, nrhs = b->d1, i, j, col;
  double *m, *x;
  if (!is_2d(a) || !is_2d(b) || a->d1 != n)
    mcrt_fail("matrix must be square for this solver");
  if (b->d0 != n)
    mcrt_fail("matrix dimensions must agree in solve");
  m = (double *)malloc((size_t)(n * n) * sizeof(double));
  x = (double *)malloc((size_t)(n * nrhs) * sizeof(double));
  if (!m || !x)
    mcrt_fail("out of memory");
  memcpy(m, a->p, (size_t)(n * n) * sizeof(double));
  memcpy(x, b->p, (size_t)(n * nrhs) * sizeof(double));
  for (col = 0; col < n; col++) {
    mcrt_size piv = col;
    double best = fabs(m[col + col * n]);
    for (i = col + 1; i < n; i++)
      if (fabs(m[i + col * n]) > best) {
        best = fabs(m[i + col * n]);
        piv = i;
      }
    if (best == 0.0)
      mcrt_fail("matrix is singular to working precision");
    if (piv != col) {
      for (j = 0; j < n; j++) {
        double t = m[col + j * n];
        m[col + j * n] = m[piv + j * n];
        m[piv + j * n] = t;
      }
      for (j = 0; j < nrhs; j++) {
        double t = x[col + j * n];
        x[col + j * n] = x[piv + j * n];
        x[piv + j * n] = t;
      }
    }
    for (i = col + 1; i < n; i++) {
      double factor = m[i + col * n] / m[col + col * n];
      if (factor == 0.0)
        continue;
      for (j = col; j < n; j++)
        m[i + j * n] -= factor * m[col + j * n];
      for (j = 0; j < nrhs; j++)
        x[i + j * n] -= factor * x[col + j * n];
    }
  }
  for (col = n; col-- > 0;) {
    for (j = 0; j < nrhs; j++) {
      double sum = x[col + j * n];
      for (i = col + 1; i < n; i++)
        sum -= m[col + i * n] * x[i + j * n];
      x[col + j * n] = sum / m[col + col * n];
    }
  }
  set_result(r, n, nrhs, 1);
  memcpy(*r->buf, x, (size_t)(n * nrhs) * sizeof(double));
  free(m);
  free(x);
}

static void op_transpose(const res_slot *r, const arg_view *a) {
  mcrt_size i, j, d0 = a->d0, d1 = a->d1;
  if (!is_2d(a))
    mcrt_fail("transpose of an N-D array is undefined");
  if (*r->buf == a->p && !is_scalar(a)) {
    if (d0 != 1 && d1 != 1)
      mcrt_fail("aliased matrix transpose (plan violation)");
    *r->d0 = d1;
    *r->d1 = d0;
    *r->d2 = 1;
    return;
  }
  set_result(r, d1, d0, 1);
  for (i = 0; i < d0; i++)
    for (j = 0; j < d1; j++)
      (*r->buf)[j + i * d1] = a->p[i + j * d0];
  *r->d0 = d1;
  *r->d1 = d0;
  *r->d2 = 1;
}

static void op_colon(const res_slot *r, double lo, double step, double hi) {
  mcrt_size n = 0, i;
  if (step != 0.0 && !((step > 0 && lo > hi) || (step < 0 && lo < hi))) {
    double t = (hi - lo) / step;
    double fudge = 1e-10 * (t > 1 ? t : 1);
    n = (mcrt_size)floor(t + fudge) + 1;
  }
  set_result(r, 1, n, 1);
  for (i = 0; i < n; i++)
    (*r->buf)[i] = lo + (double)i * step;
  *r->d0 = 1;
  *r->d1 = n;
  *r->d2 = 1;
}

/*===--------------------------------------------------------------------===
 * Indexing (generic over 1..3 subscripts)
 *===--------------------------------------------------------------------===*/

typedef struct {
  const double *idx; /* NULL for ':' */
  mcrt_size count;
} sub_view;

static sub_view resolve_sub(const arg_view *s, mcrt_size extent) {
  sub_view v;
  if (is_colon(s)) {
    v.idx = 0;
    v.count = extent;
  } else {
    v.idx = s->p;
    v.count = numel(s);
  }
  return v;
}

static mcrt_size sub_at(const sub_view *v, mcrt_size k) {
  if (!v->idx)
    return k;
  return checked_index(v->idx[k]);
}

/* Extent of the base seen by subscript d of nsubs (the last subscript
 * folds the trailing dimensions). */
static mcrt_size fold_extent(const arg_view *a, int d, int nsubs) {
  if (d + 1 < nsubs)
    return dim_of(a, d);
  {
    mcrt_size e = 1;
    int dd;
    for (dd = d; dd < 3; dd++)
      e *= dim_of(a, dd);
    return e;
  }
}

static void op_subsref(const res_slot *r, const arg_view *a,
                       const arg_view *subs, int nsubs) {
  sub_view s[3];
  mcrt_size extent[3] = {1, 1, 1};
  mcrt_size strides[3] = {1, 1, 1};
  mcrt_size count[3] = {1, 1, 1};
  mcrt_size total = 1, k, stride = 1;
  int d;
  double *tmp;
  mcrt_size od0, od1, od2;
  if (nsubs < 1 || nsubs > 3)
    mcrt_fail("unsupported subscript count");
  if (nsubs == 1) {
    extent[0] = numel(a);
  } else {
    for (d = 0; d < nsubs; d++)
      extent[d] = fold_extent(a, d, nsubs);
  }
  for (d = 0; d < nsubs; d++) {
    s[d] = resolve_sub(&subs[d], extent[d]);
    count[d] = s[d].count;
    strides[d] = stride;
    stride *= extent[d];
    total *= count[d];
  }
  tmp = (double *)malloc((size_t)(total != 0 ? total : 1) *
                         sizeof(double));
  if (!tmp)
    mcrt_fail("out of memory");
  {
    mcrt_size c[3] = {0, 0, 0};
    for (k = 0; k < total; k++) {
      mcrt_size src = 0;
      for (d = 0; d < nsubs; d++) {
        mcrt_size idx = sub_at(&s[d], c[d]);
        if (idx >= extent[d])
          mcrt_fail("index exceeds array bounds");
        src += idx * strides[d];
      }
      tmp[k] = a->p[src];
      for (d = 0; d < nsubs; d++) {
        if (++c[d] < count[d])
          break;
        c[d] = 0;
      }
    }
  }
  /* Result shape. */
  if (nsubs == 1) {
    if (is_colon(&subs[0])) {
      od0 = total;
      od1 = 1;
    } else if ((a->d0 == 1 || a->d1 == 1) && a->d2 == 1 &&
               (subs[0].d0 == 1 || subs[0].d1 == 1) && subs[0].d2 == 1) {
      od0 = a->d0 == 1 ? 1 : total;
      od1 = a->d0 == 1 ? total : 1;
    } else {
      od0 = subs[0].d0;
      od1 = subs[0].d1;
    }
    od2 = 1;
  } else {
    od0 = count[0];
    od1 = count[1];
    od2 = nsubs >= 3 ? count[2] : 1;
  }
  set_result(r, od0, od1, od2);
  memcpy(*r->buf, tmp, (size_t)total * sizeof(double));
  *r->d0 = od0;
  *r->d1 = od1;
  *r->d2 = od2;
  free(tmp);
}

/* L-indexing with growth, in place in the destination slot. Elements move
 * backwards on expansion, exactly as section 2.3.3.1 prescribes. */
static void op_subsasgn(const res_slot *r, const arg_view *rhs,
                        const arg_view *subs, int nsubs,
                        const mcrt_size bd[3]) {
  sub_view s[3];
  mcrt_size extent[3] = {1, 1, 1};
  mcrt_size nd[3];
  mcrt_size count[3] = {1, 1, 1};
  mcrt_size total = 1, k;
  int d, grew = 0;
  if (nsubs < 1 || nsubs > 3)
    mcrt_fail("unsupported subscript count");
  nd[0] = bd[0];
  nd[1] = bd[1];
  nd[2] = bd[2];

  if (nsubs == 1) {
    mcrt_size base_n = bd[0] * bd[1] * bd[2];
    mcrt_size maxi = -1;
    s[0] = resolve_sub(&subs[0], base_n);
    total = s[0].count;
    for (k = 0; k < s[0].count; k++) {
      mcrt_size idx = sub_at(&s[0], k);
      if (idx > maxi)
        maxi = idx;
    }
    if (maxi >= base_n) {
      if (bd[2] != 1)
        mcrt_fail("linear growth of an N-D array is not supported");
      if (base_n == 0) {
        nd[0] = 1;
        nd[1] = maxi + 1;
      } else if (bd[0] == 1) {
        nd[1] = maxi + 1;
      } else if (bd[1] == 1) {
        nd[0] = maxi + 1;
      } else {
        mcrt_fail("linear index out of bounds for a matrix (cannot grow)");
      }
      mcrt_ensure(r->buf, r->cap, nd[0] * nd[1]);
      for (k = base_n; k < nd[0] * nd[1]; k++)
        (*r->buf)[k] = 0.0;
    }
    if (!is_scalar(rhs) && numel(rhs) != total)
      mcrt_fail("assignment dimension mismatch");
    for (k = 0; k < total; k++)
      (*r->buf)[sub_at(&s[0], k)] =
          is_scalar(rhs) ? rhs->p[0] : rhs->p[k];
    *r->d0 = nd[0];
    *r->d1 = nd[1];
    *r->d2 = nd[2];
    return;
  }

  if (nsubs == 2 && bd[2] != 1)
    mcrt_fail("2-subscript writes into a 3-D array are not supported");
  for (d = 0; d < nsubs; d++)
    extent[d] = bd[d];
  for (d = 0; d < nsubs; d++) {
    s[d] = resolve_sub(&subs[d], extent[d]);
    count[d] = s[d].count;
    total *= count[d];
    for (k = 0; k < s[d].count; k++) {
      mcrt_size idx = sub_at(&s[d], k);
      if (idx + 1 > nd[d]) {
        nd[d] = idx + 1;
        grew = 1;
      }
    }
  }

  if (grew) {
    /* Expand: move old contents backwards (last to first). */
    mcrt_size oldn = bd[0] * bd[1] * bd[2];
    mcrt_size newn = nd[0] * nd[1] * nd[2];
    mcrt_size i0, i1, i2;
    mcrt_ensure(r->buf, r->cap, newn);
    for (k = newn; k-- > oldn;)
      (*r->buf)[k] = 0.0;
    for (i2 = bd[2]; i2-- > 0;)
      for (i1 = bd[1]; i1-- > 0;)
        for (i0 = bd[0]; i0-- > 0;) {
          mcrt_size oldi = i0 + i1 * bd[0] + i2 * bd[0] * bd[1];
          mcrt_size newi = i0 + i1 * nd[0] + i2 * nd[0] * nd[1];
          if (newi != oldi) {
            (*r->buf)[newi] = (*r->buf)[oldi];
            (*r->buf)[oldi] = 0.0;
          }
        }
  }

  if (!is_scalar(rhs) && numel(rhs) != total)
    mcrt_fail("assignment dimension mismatch");
  {
    mcrt_size c[3] = {0, 0, 0};
    for (k = 0; k < total; k++) {
      mcrt_size dst = 0;
      mcrt_size stride = 1;
      for (d = 0; d < 3; d++) {
        mcrt_size idx = d < nsubs ? sub_at(&s[d], c[d]) : 0;
        dst += idx * stride;
        stride *= nd[d];
      }
      (*r->buf)[dst] = is_scalar(rhs) ? rhs->p[0] : rhs->p[k];
      for (d = 0; d < nsubs; d++) {
        if (++c[d] < count[d])
          break;
        c[d] = 0;
      }
    }
  }
  *r->d0 = nd[0];
  *r->d1 = nd[1];
  *r->d2 = nd[2];
}

static void op_concat(const res_slot *r, const arg_view *args, int nargs,
                      int dim) {
  mcrt_size keep = -1, total = 0, off = 0, i, j;
  int k;
  double *tmp;
  mcrt_size td0, td1;
  for (k = 0; k < nargs; k++) {
    if (numel(&args[k]) == 0)
      continue;
    if (!is_2d(&args[k]))
      mcrt_fail("N-D concatenation is not supported");
    {
      mcrt_size kd = dim == 1 ? args[k].d0 : args[k].d1;
      mcrt_size cd = dim == 1 ? args[k].d1 : args[k].d0;
      if (keep < 0)
        keep = kd;
      else if (kd != keep)
        mcrt_fail("concatenation dimensions are inconsistent");
      total += cd;
    }
  }
  if (keep < 0) {
    set_result(r, 0, 0, 1);
    return;
  }
  td0 = dim == 1 ? keep : total;
  td1 = dim == 1 ? total : keep;
  tmp = (double *)malloc((size_t)((td0 * td1) != 0 ? td0 * td1 : 1) *
                         sizeof(double));
  if (!tmp)
    mcrt_fail("out of memory");
  for (k = 0; k < nargs; k++) {
    mcrt_size ad0 = args[k].d0, ad1 = args[k].d1;
    if (numel(&args[k]) == 0)
      continue;
    for (j = 0; j < ad1; j++)
      for (i = 0; i < ad0; i++) {
        mcrt_size di = dim == 0 ? off + i : i;
        mcrt_size dj = dim == 1 ? off + j : j;
        tmp[di + dj * td0] = args[k].p[i + j * ad0];
      }
    off += dim == 1 ? ad1 : ad0;
  }
  set_result(r, td0, td1, 1);
  memcpy(*r->buf, tmp, (size_t)(td0 * td1) * sizeof(double));
  *r->d0 = td0;
  *r->d1 = td1;
  *r->d2 = 1;
  free(tmp);
}

/*===--------------------------------------------------------------------===
 * printf-style formatting (matches the VM's formatPrintf)
 *===--------------------------------------------------------------------===*/

static void do_printf(FILE *out, const arg_view *fmt_arg,
                      const arg_view *args, int nargs) {
  char fmt[4096];
  mcrt_size fi, fn = numel(fmt_arg);
  double vals[256];
  int nvals = 0, k;
  size_t next = 0;
  int consumed_any;
  if (fn >= (mcrt_size)sizeof(fmt))
    mcrt_fail("format string too long");
  for (fi = 0; fi < fn; fi++)
    fmt[fi] = (char)(int)fmt_arg->p[fi];
  fmt[fn] = 0;
  for (k = 0; k < nargs; k++) {
    mcrt_size i, n = numel(&args[k]);
    for (i = 0; i < n && nvals < 256; i++)
      vals[nvals++] = args[k].p[i];
  }
  do {
    size_t i = 0, flen = strlen(fmt);
    consumed_any = 0;
    while (i < flen) {
      char c = fmt[i];
      if (c == '\\' && i + 1 < flen) {
        char e = fmt[i + 1];
        i += 2;
        if (e == 'n')
          fputc('\n', out);
        else if (e == 't')
          fputc('\t', out);
        else if (e == 'r')
          fputc('\r', out);
        else
          fputc(e, out);
        continue;
      }
      if (c != '%') {
        fputc(c, out);
        i++;
        continue;
      }
      if (i + 1 < flen && fmt[i + 1] == '%') {
        fputc('%', out);
        i += 2;
        continue;
      }
      {
        size_t spec_start = i++;
        char spec[32], conv;
        size_t spec_len;
        while (i < flen &&
               ((fmt[i] >= '0' && fmt[i] <= '9') || fmt[i] == '.' ||
                fmt[i] == '-' || fmt[i] == '+' || fmt[i] == ' ' ||
                fmt[i] == '#'))
          i++;
        if (i >= flen)
          break;
        conv = fmt[i++];
        spec_len = i - spec_start;
        if (spec_len >= sizeof(spec))
          mcrt_fail("format spec too long");
        memcpy(spec, fmt + spec_start, spec_len);
        spec[spec_len] = 0;
        if (next >= (size_t)nvals) {
          if (nvals == 0) {
            fputs(spec, out);
            continue;
          }
          return;
        }
        {
          double v = vals[next++];
          char buf[256];
          consumed_any = 1;
          switch (conv) {
          case 'd':
          case 'i': {
            char spec2[40];
            snprintf(spec2, sizeof(spec2), "%.*slld",
                     (int)(spec_len - 1), spec);
            snprintf(buf, sizeof(buf), spec2, (long long)v);
            fputs(buf, out);
            break;
          }
          case 'f':
          case 'e':
          case 'g':
          case 'E':
          case 'G':
            snprintf(buf, sizeof(buf), spec, v);
            fputs(buf, out);
            break;
          case 's':
            fmt_double(buf, sizeof(buf), v);
            fputs(buf, out);
            break;
          case 'c':
            fputc((char)(int)v, out);
            break;
          default:
            fputs(spec, out);
            break;
          }
        }
      }
    }
  } while (next < (size_t)nvals && consumed_any);
}

/*===--------------------------------------------------------------------===
 * Dispatch
 *===--------------------------------------------------------------------===*/

void mcrt_call(const char *op, int nres, int nargs, ...) {
  res_slot res[MCRT_MAX_RES];
  arg_view args[MCRT_MAX_ARGS];
  va_list ap;
  int k;
  if (nres > MCRT_MAX_RES || nargs > MCRT_MAX_ARGS)
    mcrt_fail("too many results or arguments");
  va_start(ap, nargs);
  for (k = 0; k < nres; k++) {
    res[k].buf = va_arg(ap, double **);
    res[k].cap = va_arg(ap, mcrt_size *);
    res[k].d0 = va_arg(ap, mcrt_size *);
    res[k].d1 = va_arg(ap, mcrt_size *);
    res[k].d2 = va_arg(ap, mcrt_size *);
  }
  for (k = 0; k < nargs; k++) {
    args[k].p = va_arg(ap, const double *);
    args[k].d0 = va_arg(ap, mcrt_size);
    args[k].d1 = va_arg(ap, mcrt_size);
    args[k].d2 = va_arg(ap, mcrt_size);
  }
  va_end(ap);

#define OP(name) (strcmp(op, name) == 0)
  /* Constructors. */
  if (OP("zeros")) { op_fill(&res[0], args, nargs, 0.0); return; }
  if (OP("ones")) { op_fill(&res[0], args, nargs, 1.0); return; }
  if (OP("eye")) {
    mcrt_size i, n;
    op_fill(&res[0], args, nargs, 0.0);
    if (*res[0].d2 != 1)
      mcrt_fail("eye is 2-D only");
    n = *res[0].d0 < *res[0].d1 ? *res[0].d0 : *res[0].d1;
    for (i = 0; i < n; i++)
      (*res[0].buf)[i + i * *res[0].d0] = 1.0;
    return;
  }
  if (OP("rand")) { op_rand(&res[0], args, nargs, 0); return; }
  if (OP("randn")) { op_rand(&res[0], args, nargs, 1); return; }
  if (OP("linspace")) {
    double lo = scalar_of(&args[0]), hi = scalar_of(&args[1]);
    mcrt_size n = nargs >= 3 ? (mcrt_size)scalar_of(&args[2]) : 100, i;
    set_result(&res[0], 1, n, 1);
    for (i = 0; i < n; i++)
      (*res[0].buf)[i] =
          n == 1 ? hi : lo + (hi - lo) * (double)i / (double)(n - 1);
    return;
  }

  /* Shape queries. */
  if (OP("size")) {
    const arg_view *a = &args[0];
    if (nres >= 2) {
      set_scalar(&res[0], (double)a->d0);
      if (nres == 2)
        set_scalar(&res[1], (double)(a->d1 * a->d2));
      else {
        set_scalar(&res[1], (double)a->d1);
        set_scalar(&res[2], (double)a->d2);
      }
      return;
    }
    if (nargs >= 2) {
      mcrt_size d = (mcrt_size)scalar_of(&args[1]);
      set_scalar(&res[0], d >= 1 && d <= 3
                              ? (double)dim_of(a, (int)(d - 1))
                              : 1.0);
      return;
    }
    if (a->d2 > 1) {
      set_result(&res[0], 1, 3, 1);
      (*res[0].buf)[0] = (double)a->d0;
      (*res[0].buf)[1] = (double)a->d1;
      (*res[0].buf)[2] = (double)a->d2;
    } else {
      set_result(&res[0], 1, 2, 1);
      (*res[0].buf)[0] = (double)a->d0;
      (*res[0].buf)[1] = (double)a->d1;
    }
    return;
  }
  if (OP("numel")) { set_scalar(&res[0], (double)numel(&args[0])); return; }
  if (OP("length")) {
    mcrt_size l = 0;
    if (numel(&args[0]) != 0) {
      l = args[0].d0;
      if (args[0].d1 > l)
        l = args[0].d1;
      if (args[0].d2 > l)
        l = args[0].d2;
    }
    set_scalar(&res[0], (double)l);
    return;
  }
  if (OP("isempty")) {
    set_scalar(&res[0], numel(&args[0]) == 0 ? 1.0 : 0.0);
    return;
  }

  /* Elementwise maps. */
  if (OP("abs")) { op_map(&res[0], &args[0], fabs); return; }
  if (OP("sqrt")) { op_map(&res[0], &args[0], f_sqrt_real); return; }
  if (OP("exp")) { op_map(&res[0], &args[0], exp); return; }
  if (OP("log")) { op_map(&res[0], &args[0], f_log_real); return; }
  if (OP("log2")) { op_map(&res[0], &args[0], log2); return; }
  if (OP("log10")) { op_map(&res[0], &args[0], log10); return; }
  if (OP("sin")) { op_map(&res[0], &args[0], sin); return; }
  if (OP("cos")) { op_map(&res[0], &args[0], cos); return; }
  if (OP("tan")) { op_map(&res[0], &args[0], tan); return; }
  if (OP("asin")) { op_map(&res[0], &args[0], asin); return; }
  if (OP("acos")) { op_map(&res[0], &args[0], acos); return; }
  if (OP("atan")) { op_map(&res[0], &args[0], atan); return; }
  if (OP("sinh")) { op_map(&res[0], &args[0], sinh); return; }
  if (OP("cosh")) { op_map(&res[0], &args[0], cosh); return; }
  if (OP("tanh")) { op_map(&res[0], &args[0], tanh); return; }
  if (OP("floor")) { op_map(&res[0], &args[0], floor); return; }
  if (OP("ceil")) { op_map(&res[0], &args[0], ceil); return; }
  if (OP("round")) { op_map(&res[0], &args[0], round); return; }
  if (OP("fix")) { op_map(&res[0], &args[0], f_fix); return; }
  if (OP("sign")) { op_map(&res[0], &args[0], f_sign); return; }
  if (OP("real") || OP("conj") || OP("double")) {
    op_map(&res[0], &args[0], f_identity);
    return;
  }
  if (OP("imag") || OP("angle")) {
    op_map(&res[0], &args[0], f_zero);
    return;
  }
  if (OP("logical")) { op_map(&res[0], &args[0], f_logical); return; }
  if (OP("op_neg")) { op_map(&res[0], &args[0], f_neg); return; }
  if (OP("op_uplus")) { op_map(&res[0], &args[0], f_identity); return; }
  if (OP("op_not")) { op_map(&res[0], &args[0], f_not); return; }

  /* Elementwise binaries. */
  if (OP("atan2")) { op_zip(&res[0], &args[0], &args[1], atan2); return; }
  if (OP("hypot")) { op_zip(&res[0], &args[0], &args[1], hypot); return; }
  if (OP("mod")) { op_zip(&res[0], &args[0], &args[1], f_mod); return; }
  if (OP("rem")) { op_zip(&res[0], &args[0], &args[1], f_rem); return; }
  if (OP("op_add")) { op_zip(&res[0], &args[0], &args[1], f_add); return; }
  if (OP("op_sub")) { op_zip(&res[0], &args[0], &args[1], f_sub); return; }
  if (OP("op_elemmul")) {
    op_zip(&res[0], &args[0], &args[1], f_mul);
    return;
  }
  if (OP("op_elemrdiv")) {
    op_zip(&res[0], &args[0], &args[1], f_div);
    return;
  }
  if (OP("op_elemldiv")) {
    op_zip(&res[0], &args[0], &args[1], f_ldiv);
    return;
  }
  if (OP("op_elempow")) {
    op_zip(&res[0], &args[0], &args[1], f_pow);
    return;
  }
  if (OP("op_lt")) { op_zip(&res[0], &args[0], &args[1], f_lt); return; }
  if (OP("op_le")) { op_zip(&res[0], &args[0], &args[1], f_le); return; }
  if (OP("op_gt")) { op_zip(&res[0], &args[0], &args[1], f_gt); return; }
  if (OP("op_ge")) { op_zip(&res[0], &args[0], &args[1], f_ge); return; }
  if (OP("op_eq")) { op_zip(&res[0], &args[0], &args[1], f_eq); return; }
  if (OP("op_ne")) { op_zip(&res[0], &args[0], &args[1], f_ne); return; }
  if (OP("op_and")) { op_zip(&res[0], &args[0], &args[1], f_and); return; }
  if (OP("op_or")) { op_zip(&res[0], &args[0], &args[1], f_or); return; }

  /* Linear algebra. */
  if (OP("matmul") || OP("op_matmul")) {
    op_matmul(&res[0], &args[0], &args[1]);
    return;
  }
  if (OP("op_matldiv")) {
    if (is_scalar(&args[0])) {
      op_zip(&res[0], &args[1], &args[0], f_div);
      return;
    }
    op_solve(&res[0], &args[0], &args[1]);
    return;
  }
  if (OP("op_matrdiv")) {
    if (is_scalar(&args[1])) {
      op_zip(&res[0], &args[0], &args[1], f_div);
      return;
    }
    mcrt_fail("general right division is not supported by mcrt");
  }
  if (OP("op_matpow")) {
    if (is_scalar(&args[0]) && is_scalar(&args[1])) {
      set_scalar(&res[0], f_pow(args[0].p[0], args[1].p[0]));
      return;
    }
    mcrt_fail("matrix power is not supported by mcrt");
  }
  if (OP("op_transpose") || OP("op_ctranspose")) {
    op_transpose(&res[0], &args[0]);
    return;
  }

  /* Ranges, indexing, concatenation. */
  if (OP("op_colon2")) {
    op_colon(&res[0], scalar_of(&args[0]), 1.0, scalar_of(&args[1]));
    return;
  }
  if (OP("op_colon3")) {
    op_colon(&res[0], scalar_of(&args[0]), scalar_of(&args[1]),
             scalar_of(&args[2]));
    return;
  }
  if (OP("subsref") || OP("op_subsref")) {
    op_subsref(&res[0], &args[0], &args[1], nargs - 1);
    return;
  }
  if (OP("subsasgn_inplace")) {
    mcrt_size bd[3];
    bd[0] = args[0].d0;
    bd[1] = args[0].d1;
    bd[2] = args[0].d2;
    op_subsasgn(&res[0], &args[1], &args[2], nargs - 2, bd);
    return;
  }
  if (OP("subsasgn_copy")) {
    /* Snapshot operands that alias the result slot before the base copy
     * (a scalar rhs may legally share the slot). */
    mcrt_size n = numel(&args[0]);
    mcrt_size bd[3];
    double *snaps[MCRT_MAX_ARGS];
    int k2;
    bd[0] = args[0].d0;
    bd[1] = args[0].d1;
    bd[2] = args[0].d2;
    for (k2 = 1; k2 < nargs; k2++) {
      snaps[k2] = 0;
      if (args[k2].p == *res[0].buf && numel(&args[k2]) > 0) {
        mcrt_size an = numel(&args[k2]);
        snaps[k2] = (double *)malloc((size_t)an * sizeof(double));
        if (!snaps[k2])
          mcrt_fail("out of memory");
        memcpy(snaps[k2], args[k2].p, (size_t)an * sizeof(double));
        args[k2].p = snaps[k2];
      }
    }
    mcrt_ensure(res[0].buf, res[0].cap, n);
    if (n && *res[0].buf != args[0].p)
      memmove(*res[0].buf, args[0].p, (size_t)n * sizeof(double));
    op_subsasgn(&res[0], &args[1], &args[2], nargs - 2, bd);
    for (k2 = 1; k2 < nargs; k2++)
      free(snaps[k2]);
    return;
  }
  if (OP("op_horzcat")) { op_concat(&res[0], args, nargs, 1); return; }
  if (OP("op_vertcat")) { op_concat(&res[0], args, nargs, 0); return; }
  if (OP("reshape")) {
    mcrt_size d0 = (mcrt_size)scalar_of(&args[1]);
    mcrt_size d1 = nargs >= 3 ? (mcrt_size)scalar_of(&args[2]) : 1;
    mcrt_size d2 = nargs >= 4 ? (mcrt_size)scalar_of(&args[3]) : 1;
    if (d0 * d1 * d2 != numel(&args[0]))
      mcrt_fail("reshape must preserve the element count");
    set_result(&res[0], d0, d1, d2);
    if (numel(&args[0]) && *res[0].buf != args[0].p)
      memmove(*res[0].buf, args[0].p,
              (size_t)numel(&args[0]) * sizeof(double));
    *res[0].d0 = d0;
    *res[0].d1 = d1;
    *res[0].d2 = d2;
    return;
  }
  if (OP("repmat")) {
    mcrt_size m = (mcrt_size)scalar_of(&args[1]);
    mcrt_size n = nargs >= 3 ? (mcrt_size)scalar_of(&args[2]) : m;
    mcrt_size r0 = args[0].d0, c0 = args[0].d1, bi, bj, i, j;
    double *tmp;
    if (!is_2d(&args[0]))
      mcrt_fail("repmat of an N-D array is not supported");
    tmp = (double *)malloc(
        (size_t)((r0 * m * c0 * n) != 0 ? r0 * m * c0 * n : 1) *
        sizeof(double));
    if (!tmp)
      mcrt_fail("out of memory");
    for (bj = 0; bj < n; bj++)
      for (bi = 0; bi < m; bi++)
        for (j = 0; j < c0; j++)
          for (i = 0; i < r0; i++)
            tmp[(bi * r0 + i) + (bj * c0 + j) * r0 * m] =
                args[0].p[i + j * r0];
    set_result(&res[0], r0 * m, c0 * n, 1);
    memcpy(*res[0].buf, tmp, (size_t)(r0 * m * c0 * n) * sizeof(double));
    *res[0].d0 = r0 * m;
    *res[0].d1 = c0 * n;
    *res[0].d2 = 1;
    free(tmp);
    return;
  }

  /* Reductions. */
  if (OP("min") || OP("max")) {
    int ismax = OP("max");
    if (nargs >= 2) {
      op_zip(&res[0], &args[0], &args[1], ismax ? f_max2 : f_min2);
      return;
    }
    {
      const arg_view *a = &args[0];
      if (numel(a) == 0)
        mcrt_fail("min/max of an empty array");
      if (a->d0 == 1 || (a->d1 == 1 && a->d2 == 1)) {
        mcrt_size best = 0, i;
        for (i = 1; i < numel(a); i++)
          if (ismax ? a->p[i] > a->p[best] : a->p[i] < a->p[best])
            best = i;
        set_scalar(&res[0], a->p[best]);
        if (nres >= 2)
          set_scalar(&res[1], (double)(best + 1));
        return;
      }
      if (!is_2d(a))
        mcrt_fail("N-D reduction is not supported");
      {
        mcrt_size j, i;
        double *tmp =
            (double *)malloc((size_t)(2 * a->d1) * sizeof(double));
        if (!tmp)
          mcrt_fail("out of memory");
        for (j = 0; j < a->d1; j++) {
          mcrt_size best = 0;
          for (i = 1; i < a->d0; i++)
            if (ismax ? a->p[i + j * a->d0] > a->p[best + j * a->d0]
                      : a->p[i + j * a->d0] < a->p[best + j * a->d0])
              best = i;
          tmp[j] = a->p[best + j * a->d0];
          tmp[a->d1 + j] = (double)(best + 1);
        }
        set_result(&res[0], 1, a->d1, 1);
        memcpy(*res[0].buf, tmp, (size_t)a->d1 * sizeof(double));
        if (nres >= 2) {
          set_result(&res[1], 1, a->d1, 1);
          memcpy(*res[1].buf, tmp + a->d1,
                 (size_t)a->d1 * sizeof(double));
        }
        free(tmp);
        return;
      }
    }
  }
  if (OP("sum") || OP("prod") || OP("mean")) {
    /* MATLAB rule: collapse the first non-singleton dimension. */
    const arg_view *a = &args[0];
    int isprod = OP("prod"), ismean = OP("mean");
    mcrt_size dims[3], inner = 1, rext = 1, outer = 1, i, o, kk;
    int d = 0, dd;
    double *tmp;
    dims[0] = a->d0;
    dims[1] = a->d1;
    dims[2] = a->d2;
    if (numel(a) == 0 || is_scalar(a)) {
      double acc = isprod ? 1.0 : 0.0;
      for (i = 0; i < numel(a); i++)
        acc = isprod ? acc * a->p[i] : acc + a->p[i];
      if (numel(a) == 1)
        acc = a->p[0];
      set_scalar(&res[0], acc);
      return;
    }
    while (d < 3 && dims[d] == 1)
      d++;
    rext = dims[d];
    for (dd = 0; dd < d; dd++)
      inner *= dims[dd];
    outer = numel(a) / (inner * rext);
    tmp = (double *)malloc((size_t)(inner * outer) * sizeof(double));
    if (!tmp)
      mcrt_fail("out of memory");
    for (o = 0; o < outer; o++)
      for (i = 0; i < inner; i++) {
        double acc = isprod ? 1.0 : 0.0;
        for (kk = 0; kk < rext; kk++) {
          double v = a->p[i + kk * inner + o * inner * rext];
          acc = isprod ? acc * v : acc + v;
        }
        if (ismean)
          acc /= (double)rext;
        tmp[i + o * inner] = acc;
      }
    dims[d] = 1;
    set_result(&res[0], dims[0], dims[1], dims[2]);
    memcpy(*res[0].buf, tmp, (size_t)(inner * outer) * sizeof(double));
    free(tmp);
    return;
  }
  if (OP("norm")) {
    double acc = 0;
    mcrt_size i;
    if (args[0].d0 != 1 && args[0].d1 != 1 && numel(&args[0]) != 0)
      mcrt_fail("norm is only implemented for vectors");
    for (i = 0; i < numel(&args[0]); i++)
      acc += args[0].p[i] * args[0].p[i];
    set_scalar(&res[0], sqrt(acc));
    return;
  }
  if (OP("dot")) {
    double acc = 0;
    mcrt_size i;
    if (numel(&args[0]) != numel(&args[1]))
      mcrt_fail("dot operands must have the same length");
    for (i = 0; i < numel(&args[0]); i++)
      acc += args[0].p[i] * args[1].p[i];
    set_scalar(&res[0], acc);
    return;
  }
  if (OP("cumsum")) {
    const arg_view *a = &args[0];
    mcrt_size i, j;
    mcrt_size d0 = a->d0, d1 = a->d1, d2 = a->d2;
    if (!is_2d(a))
      mcrt_fail("N-D cumsum is not supported");
    set_result(&res[0], d0, d1, d2);
    if (*res[0].buf != a->p && numel(a))
      memmove(*res[0].buf, a->p, (size_t)numel(a) * sizeof(double));
    if (d0 == 1) {
      for (i = 1; i < d1; i++)
        (*res[0].buf)[i] += (*res[0].buf)[i - 1];
    } else {
      for (j = 0; j < d1; j++)
        for (i = 1; i < d0; i++)
          (*res[0].buf)[i + j * d0] += (*res[0].buf)[i - 1 + j * d0];
    }
    *res[0].d0 = d0;
    *res[0].d1 = d1;
    *res[0].d2 = d2;
    return;
  }

  /* Effects. */
  if (OP("disp_char")) {
    print_chars(args[0].p, numel(&args[0]));
    fprintf(mcrt_out_(), "\n");
    return;
  }
  if (OP("disp")) {
    print_matrix(args[0].p, args[0].d0, args[0].d1, args[0].d2);
    fprintf(mcrt_out_(), "\n");
    return;
  }
  if (OP("fprintf")) {
    if (nargs >= 1)
      do_printf(mcrt_out_(), &args[0], args + 1, nargs - 1);
    return;
  }
  if (OP("error")) {
    fprintf(stderr, "error: ");
    if (nargs >= 1)
      do_printf(stderr, &args[0], args + 1, nargs - 1);
    fprintf(stderr, "\n");
    /* Through mcrt_fail so an in-process host survives user error()
     * calls too; standalone behavior is unchanged (stderr text + exit 1). */
    mcrt_fail("error() raised");
  }

  /* Constants and miscellany. */
  if (OP("pi")) { set_scalar(&res[0], 3.14159265358979323846); return; }
  if (OP("eps")) { set_scalar(&res[0], 2.220446049250313e-16); return; }
  if (OP("Inf") || OP("inf")) { set_scalar(&res[0], INFINITY); return; }
  if (OP("NaN") || OP("nan")) { set_scalar(&res[0], NAN); return; }
  if (OP("true")) { set_scalar(&res[0], 1.0); return; }
  if (OP("false")) { set_scalar(&res[0], 0.0); return; }
  if (OP("tic") || OP("toc")) {
    if (nres >= 1)
      set_scalar(&res[0], 0.0);
    return;
  }
  if (OP("__forcond")) {
    double i = scalar_of(&args[0]);
    double s = scalar_of(&args[1]);
    double h = scalar_of(&args[2]);
    set_scalar(&res[0], s >= 0 ? (i <= h ? 1.0 : 0.0)
                               : (i >= h ? 1.0 : 0.0));
    return;
  }
  if (OP("__switcheq")) {
    int match = 0;
    if (numel(&args[0]) == numel(&args[1]) && args[0].d0 == args[1].d0 &&
        args[0].d1 == args[1].d1 && args[0].d2 == args[1].d2) {
      mcrt_size i2;
      match = 1;
      for (i2 = 0; i2 < numel(&args[0]) && match; i2++)
        match = args[0].p[i2] == args[1].p[i2];
    }
    set_scalar(&res[0], match ? 1.0 : 0.0);
    return;
  }

  {
    char msg[128];
    snprintf(msg, sizeof(msg), "undefined runtime operation '%s'", op);
    mcrt_fail(msg);
  }
}
