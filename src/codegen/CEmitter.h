//===- CEmitter.h - C code generation from planned IR -----------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits C from the optimized, planned, SSA-inverted IR, mirroring what
/// the paper's mat2c back end produces: stack groups become fixed-size
/// local arrays, heap groups become resizable buffers with explicit
/// resize checks, elementwise operators become the scalar-guarded
/// in-place loops of the paper's Figure 1, and identity copies (coalesced
/// phi webs) disappear. Library-shaped operations call into an `mcrt_`
/// runtime whose prototypes are emitted alongside.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_CODEGEN_CEMITTER_H
#define MATCOAL_CODEGEN_CEMITTER_H

#include "gctd/StoragePlan.h"
#include "ir/IR.h"
#include "observe/Observe.h"
#include "typeinf/TypeInference.h"

#include <string>

namespace matcoal {

class InPlaceLegality;

/// Code-emission knobs.
struct CEmitOptions {
  /// Fuse chains of shape-conforming elementwise instructions whose
  /// intermediates are plan-local and dead after the chain into a single
  /// loop, eliding the intermediate stores/loads and resize checks.
  /// `matcoalc --no-fuse` clears it (the fused-vs-unfused benchmark axis).
  bool Fuse = true;
  /// Emit `mcrt_prof_*` hooks after every group-slot definition plus a
  /// profiled main(), so the compiled program streams the same event-
  /// envelope JSON the VM's RuntimeProfiler writes (`matcoalc
  /// --emit-profiling`). Off by default: hooks cost a call per definition.
  bool Profile = false;
};

/// Emits C for one function under its storage plan.
///
/// \p RA must be the same RangeAnalysis the plan's interference graph was
/// built with (or null for a types-only plan): the emitter's in-place code
/// selection consults it so the emitted aliasing assumptions agree with
/// the operator-semantics edges the graph removed, and it additionally
/// elides bounds checks, subsasgn growth fallbacks, and stack-slot
/// capacity checks the analysis discharges. A non-null \p Obs receives a
/// check-elided remark per discharged check and the codegen.* counters
/// (including codegen.fusion.* when Opts.Fuse holds).
///
/// \p Legal is the shared in-place legality oracle every fusion-legality
/// and dest-aliasing question is routed through (the same oracle the VM's
/// destructive kernels query). Null constructs a private oracle over
/// (TI, RA, Obs) with identical policy.
std::string emitFunctionC(const Function &F, const StoragePlan &Plan,
                          const TypeInference &TI,
                          const RangeAnalysis *RA = nullptr,
                          Observer *Obs = nullptr,
                          const CEmitOptions &Opts = CEmitOptions(),
                          const InPlaceLegality *Legal = nullptr);

/// Emits a full translation unit: the mcrt runtime declarations followed
/// by every function of the module.
std::string emitModuleC(const Module &M,
                        const std::map<const Function *, StoragePlan> &Plans,
                        const TypeInference &TI,
                        const RangeAnalysis *RA = nullptr,
                        Observer *Obs = nullptr,
                        const CEmitOptions &Opts = CEmitOptions(),
                        const InPlaceLegality *Legal = nullptr);

} // namespace matcoal

#endif // MATCOAL_CODEGEN_CEMITTER_H
