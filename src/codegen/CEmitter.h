//===- CEmitter.h - C code generation from planned IR -----------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Emits C from the optimized, planned, SSA-inverted IR, mirroring what
/// the paper's mat2c back end produces: stack groups become fixed-size
/// local arrays, heap groups become resizable buffers with explicit
/// resize checks, elementwise operators become the scalar-guarded
/// in-place loops of the paper's Figure 1, and identity copies (coalesced
/// phi webs) disappear. Library-shaped operations call into an `mcrt_`
/// runtime whose prototypes are emitted alongside.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_CODEGEN_CEMITTER_H
#define MATCOAL_CODEGEN_CEMITTER_H

#include "gctd/StoragePlan.h"
#include "ir/IR.h"
#include "typeinf/TypeInference.h"

#include <string>

namespace matcoal {

/// Emits C for one function under its storage plan.
std::string emitFunctionC(const Function &F, const StoragePlan &Plan,
                          const TypeInference &TI);

/// Emits a full translation unit: the mcrt runtime declarations followed
/// by every function of the module.
std::string emitModuleC(const Module &M,
                        const std::map<const Function *, StoragePlan> &Plans,
                        const TypeInference &TI);

} // namespace matcoal

#endif // MATCOAL_CODEGEN_CEMITTER_H
