//===- CEmitter.cpp -------------------------------------------------------===//

#include "codegen/CEmitter.h"

#include "analysis/InPlaceLegality.h"
#include "codegen/mcrt/mcrt.h" // MCRT_PAR_MIN: the runtime's own threshold.

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <map>
#include <set>
#include <sstream>
#include <vector>

using namespace matcoal;

namespace {

/// Renders a double as a C literal without precision loss
/// (std::to_string truncates to 6 decimals, destroying constants like
/// 1e-9).
std::string cDouble(double V) {
  char Buf[64];
  std::snprintf(Buf, sizeof(Buf), "%.17g", V);
  std::string S = Buf;
  // Ensure a double-typed literal (e.g. "2" -> "2.0") for clarity.
  if (S.find_first_of(".eEnN") == std::string::npos)
    S += ".0";
  return S;
}

/// Escapes a string for inclusion in a C string literal. MATLAB string
/// payloads keep their backslash sequences verbatim (fprintf interprets
/// them at run time), so a backslash must survive as a backslash.
std::string cEscape(const std::string &S) {
  std::string Out;
  Out.reserve(S.size() + 8);
  for (char C : S) {
    switch (C) {
    case '\\': Out += "\\\\"; break;
    case '"': Out += "\\\""; break;
    case '\n': Out += "\\n"; break;
    case '\t': Out += "\\t"; break;
    case '\r': Out += "\\r"; break;
    default: Out += C; break;
    }
  }
  return Out;
}

/// Per-function emission state.
///
/// Storage convention in the emitted C: every slot (a storage group or an
/// unplanned variable) is a quadruple
///     double *S;  mcrt_size S_cap;  mcrt_size S_d0, S_d1;
/// Stack groups point at a fixed local array and carry a NEGATIVE cap
/// (-capacity in elements): mcrt_ensure() treats them as non-growable.
/// Heap groups start null with cap 0 and grow through mcrt_ensure().
/// Results are passed to the mcrt runtime as (&S, &S_cap, &S_d0, &S_d1)
/// and arguments as (S, S_d0, S_d1) -- one uniform variadic ABI.
class Emitter {
public:
  Emitter(const Function &F, const StoragePlan &Plan,
          const TypeInference &TI, const RangeAnalysis *RA, Observer *Obs,
          const CEmitOptions &Opts, const InPlaceLegality &Legal)
      : F(F), Plan(Plan), Types(TI.functionTypes(F)), RA(RA), Obs(Obs),
        Legal(Legal), Fuse(Opts.Fuse), Profile(Opts.Profile) {
    // The oracle sees slot identity the way the emitted C does: two
    // variables share storage iff they compile to the same slot name
    // (planned variables via their group, unplanned ones only with
    // themselves).
    Slots.SameSlot = [this](VarId A, VarId B) { return slot(A) == slot(B); };
    Slots.Tag = &this->Plan;
  }

  std::string run();

private:
  // Naming. Groups are gN; unplanned variables (colon markers, temps
  // created after planning) are xN.
  std::string slot(VarId V) const {
    int G = Plan.groupOf(V);
    if (G < 0)
      return "x" + std::to_string(V);
    return "g" + std::to_string(G);
  }
  std::string buf(VarId V) const { return slot(V); }
  std::string cap(VarId V) const { return slot(V) + "_cap"; }
  std::string dim(VarId V, int D) const {
    return slot(V) + "_d" + std::to_string(D);
  }
  std::string numelExpr(VarId V) const {
    return "(" + dim(V, 0) + "*" + dim(V, 1) + "*" + dim(V, 2) + ")";
  }
  bool isComplexVar(VarId V) const {
    return Types[V].IT == IntrinsicType::Complex;
  }
  bool isCharVar(VarId V) const {
    return Types[V].IT == IntrinsicType::Char;
  }
  // Code-selection predicate: must agree with InterferenceGraph's
  // operator-semantics test. When the range analysis proves a value 1x1
  // the graph drops the edge that would otherwise keep the result and
  // that operand in distinct slots, so the emitter has to pick the
  // in-place/scalar form for exactly the same values. The fact itself
  // lives in the shared legality oracle (one home for one question).
  bool isStaticScalar(VarId V) const { return Legal.staticScalar(F, V); }
  /// Every subscript operand of \p I (starting at \p FirstSub, against
  /// base \p Base) proven within bounds at the current block.
  bool subsInBounds(const Instr &I, VarId Base, unsigned FirstSub) const {
    if (!RA)
      return false;
    unsigned Rank = static_cast<unsigned>(I.Operands.size()) - FirstSub;
    for (unsigned K = 0; K < Rank; ++K)
      if (!RA->subscriptInBounds(F, CurBlock, Base,
                                 I.Operands[FirstSub + K], K, Rank))
        return false;
    return true;
  }

  // Emission helpers.
  void line(const std::string &S) {
    for (int I = 0; I < Indent; ++I)
      OS << "  ";
    OS << S << "\n";
  }
  void open(const std::string &S) {
    line(S + " {");
    ++Indent;
  }
  void close() {
    --Indent;
    line("}");
  }

  void emitPrologue();
  void emitSuperblock(const std::vector<const BasicBlock *> &Chain);
  void emitInstr(const Instr &I);
  /// After an instruction (or fused tree root), report the new size of
  /// every planned group slot it defined to the mcrt profiler. The slot
  /// label and byte formula (8 * d0*d1*d2) match what the VM profiler
  /// records for the same group, so the two streams compare directly.
  void emitProfHooks(const Instr &I);
  void emitElementwiseBinary(const Instr &I, const char *COp);

  // --- Loop fusion (the fused-region optimization).
  //
  // A fusion tree is a set of instructions from one superblock's
  // instruction stream folded into one loop: the root keeps its position
  // and its store; every internal instruction's store, load, and resize
  // check disappear. A root is either an elementwise candidate (the loop
  // writes the root's slot per element) or a reduction builtin
  // (sum/prod/mean/min/max over a vector: the loop folds its operand's
  // producer chain straight into the accumulation).
  struct StreamItem {
    const Instr *I = nullptr;
    const BasicBlock *BB = nullptr;
    bool Link = false; ///< The Jmp linking two superblock halves.
  };
  struct FusionTree {
    unsigned Root = 0;                ///< Root's index in the stream.
    std::vector<unsigned> Members;    ///< All member indices, ascending.
    std::map<VarId, unsigned> DefIdx; ///< Internal var -> defining member.
    std::vector<VarId> ArrayLeaves;   ///< Non-scalar leaves, use order.
    std::vector<VarId> ScalarLeaves;  ///< Static-scalar leaves, use order.
    std::vector<VarId> LeafVars;      ///< Every distinct leaf variable.
    bool Reduction = false;           ///< Root is a reduction builtin.
    bool CrossBlock = false;          ///< Members span >1 basic block.
  };
  /// Fills per-stream-item actions: -1 emit normally, -2 folded into a
  /// fused tree, >= 0 index into \p Trees (this item is a root).
  std::vector<int> planFusion(const std::vector<StreamItem> &Stream,
                              std::vector<FusionTree> &Trees);
  void planRun(const std::vector<StreamItem> &Stream, size_t Lo, size_t Hi,
               const std::vector<char> &Cand, const std::vector<char> &Red,
               std::vector<int> &Action, std::vector<FusionTree> &Trees);
  void emitFusedTree(const std::vector<StreamItem> &Stream,
                     const FusionTree &T);
  void emitFusedMap(const std::vector<StreamItem> &Stream,
                    const FusionTree &T);
  void emitFusedReduction(const std::vector<StreamItem> &Stream,
                          const FusionTree &T);
  std::string fusedExpr(const std::vector<StreamItem> &Stream,
                        const FusionTree &T, const Instr &I) const;
  std::string fusedOperand(const std::vector<StreamItem> &Stream,
                           const FusionTree &T, VarId V) const;
  void emitDimCopy(VarId Dst, VarId Src);
  void emitDimSet(VarId Dst, const std::string &D0, const std::string &D1);
  /// Grows (or checks) the destination slot before a definition needing
  /// \p CountExpr elements (the paper's "resizing storage on the fly").
  void emitEnsure(VarId V, const std::string &CountExpr);
  /// One uniform runtime call: mcrt_call("op", nres, nargs, results...,
  /// args...).
  std::string runtimeCall(const std::string &Op, const Instr &I);

  const Function &F;
  const StoragePlan &Plan;
  const std::vector<VarType> &Types;
  const RangeAnalysis *RA = nullptr;
  Observer *Obs = nullptr;
  /// The shared legality oracle: every fusion-legality, elision, and
  /// dest-aliasing question goes through it (the VM queries the same
  /// instance, so the tiers answer identically by construction).
  const InPlaceLegality &Legal;
  SlotView Slots;             ///< Slot identity as the emitted C sees it.
  bool Fuse = true;           ///< Elementwise loop fusion enabled.
  bool Profile = false;       ///< Emit mcrt_prof_* hooks per definition.
  BlockId CurBlock = NoBlock; ///< Block being emitted (for valueAt).
  SourceLoc CurLoc;           ///< Location of the instruction in flight.
  /// Outputs returned by pointer handoff (destination-passing style).
  std::vector<unsigned> DpsOuts;
  unsigned FuseSeq = 0;  ///< Per-function id for hoisted loop bodies.
  std::ostringstream OS;
  /// File-scope text emitted before the function: the context structs and
  /// loop-body functions mcrt_parallel_for partitions across the pool.
  std::ostringstream HoistOS;
  int Indent = 0;
};

void Emitter::emitDimCopy(VarId Dst, VarId Src) {
  line(dim(Dst, 0) + " = " + dim(Src, 0) + ";");
  line(dim(Dst, 1) + " = " + dim(Src, 1) + ";");
  line(dim(Dst, 2) + " = " + dim(Src, 2) + ";");
}

void Emitter::emitDimSet(VarId Dst, const std::string &D0,
                         const std::string &D1) {
  line(dim(Dst, 0) + " = " + D0 + ";");
  line(dim(Dst, 1) + " = " + D1 + ";");
  line(dim(Dst, 2) + " = 1;");
}

void Emitter::emitEnsure(VarId V, const std::string &CountExpr) {
  // A stack group's buffer is the fixed local array, so mcrt_ensure only
  // checks the capacity. When the analysis bounds numel(V) under the
  // group's capacity the check can never fire: elide it. (Heap groups
  // must keep the call -- it is what allocates.)
  int G = Plan.groupOf(V);
  if (RA && G >= 0 &&
      Plan.Groups[G].K == StorageGroup::Kind::Stack) {
    const StorageGroup &SG = Plan.Groups[G];
    std::int64_t CapElems =
        SG.StackBytes / (SG.IT == IntrinsicType::Complex ? 16 : 8);
    if (CapElems < 1)
      CapElems = 1;
    Interval NB = RA->numelBound(F, V);
    if (NB.boundedAbove() && NB.Hi <= static_cast<double>(CapElems)) {
      line("/* capacity check elided: numel(" + F.var(V).Name +
           ") <= " + std::to_string(CapElems) + " proven */");
      count(Obs, "codegen.ensure.elided");
      remarkTo(Obs, "cemit", RemarkKind::CheckElided, F.Name,
               "capacity check elided: numel(" + F.var(V).Name +
                   ") proven <= " + std::to_string(CapElems) +
                   " elements of fixed slot " + slot(V),
               {{"var", F.var(V).Name},
                {"check", "capacity"},
                {"cap_elems", std::to_string(CapElems)}},
               CurLoc);
      return;
    }
  }
  count(Obs, "codegen.ensure.emitted");
  line("mcrt_ensure(&" + buf(V) + ", &" + cap(V) + ", " + CountExpr + ");");
}

void Emitter::emitPrologue() {
  // Storage declarations: one slot per group (the decomposition's payoff
  // -- many variables, few buffers) plus any unplanned variables.
  for (size_t GI = 0; GI < Plan.Groups.size(); ++GI) {
    const StorageGroup &G = Plan.Groups[GI];
    std::string S = "g" + std::to_string(GI);
    std::ostringstream Cmt;
    Cmt << "/*";
    for (VarId V : G.Members)
      Cmt << " " << F.var(V).Name;
    Cmt << " */";
    if (G.K == StorageGroup::Kind::Stack) {
      std::int64_t Elems =
          G.StackBytes / (G.IT == IntrinsicType::Complex ? 16 : 8);
      if (Elems < 1)
        Elems = 1;
      std::int64_t Doubles =
          G.IT == IntrinsicType::Complex ? Elems * 2 : Elems;
      line("double " + S + "_fix[" + std::to_string(Doubles) + "]; " +
           Cmt.str());
      line("double *" + S + " = " + S + "_fix; mcrt_size " + S + "_cap = -" +
           std::to_string(Elems) + ";");
    } else {
      line("double *" + S + " = 0; mcrt_size " + S + "_cap = 0; " +
           Cmt.str());
    }
    line("mcrt_size " + S + "_d0 = 0, " + S + "_d1 = 0, " + S +
         "_d2 = 1;");
  }
  // Unplanned variables referenced by the code (colon markers, post-GCTD
  // temporaries such as parallel-copy temps).
  std::set<VarId> Unplanned;
  auto Note = [&](VarId V) {
    if (Plan.groupOf(V) < 0)
      Unplanned.insert(V);
  };
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs) {
      for (VarId R : I.Results)
        Note(R);
      for (VarId Op : I.Operands)
        Note(Op);
    }
  for (VarId P : F.Params)
    Note(P);
  for (VarId V : Unplanned) {
    std::string S = "x" + std::to_string(V);
    line("double *" + S + " = 0; mcrt_size " + S + "_cap = 0; /* " +
         F.var(V).Name + " */");
    line("mcrt_size " + S + "_d0 = 0, " + S + "_d1 = 0, " + S +
         "_d2 = 1;");
  }
  line("mcrt_size __i;");
  line("(void)__i;");
}

std::string Emitter::run() {
  OS << "/* " << F.Name << ": " << Plan.Groups.size()
     << " storage groups, frame " << Plan.FrameBytes << " bytes */\n";
  OS << "void mat_" << F.Name << "(";
  bool First = true;
  for (size_t K = 0; K < F.Params.size(); ++K) {
    if (!First)
      OS << ", ";
    First = false;
    OS << "mcrt_arg in" << K;
  }
  for (size_t K = 0; K < F.Outputs.size(); ++K) {
    if (!First)
      OS << ", ";
    First = false;
    OS << "mcrt_ref out" << K;
  }
  if (First)
    OS << "void";
  OS << ") {\n";
  Indent = 1;
  emitPrologue();
  for (size_t K = 0; K < F.Params.size(); ++K) {
    VarId P = F.Params[K];
    line("mcrt_load(&" + buf(P) + ", &" + cap(P) + ", &" + dim(P, 0) +
         ", &" + dim(P, 1) + ", &" + dim(P, 2) + ", in" +
         std::to_string(K) + ");");
    if (Profile && Plan.groupOf(P) >= 0)
      line("mcrt_prof_size(\"" + F.Name + "\", " +
           std::to_string(Plan.groupOf(P)) + ", \"" + slot(P) + "\", 8*" +
           numelExpr(P) + ");");
  }
  // Destination-passing returns: borrow the caller's allocation into each
  // eligible output's slot. After every mcrt_load -- the loads copy
  // argument data, which is what makes the borrow alias-safe when the
  // caller passes one buffer as both argument and destination.
  DpsOuts = dpsReturnSlots(F, Plan);
  for (unsigned K : DpsOuts) {
    VarId O = F.Outputs[K];
    count(Obs, "codegen.dps.outputs");
    remarkTo(Obs, "cemit", RemarkKind::InPlaceProven, F.Name,
             "output " + F.var(O).Name +
                 " returns by pointer handoff (destination passing)",
             {{"var", F.var(O).Name}, {"query", "dps"}}, SourceLoc());
    line("mcrt_dps_bind(out" + std::to_string(K) + ", &" + buf(O) + ", &" +
         cap(O) + ");");
  }
  // Superblocks: maximal chains of textually consecutive blocks linked by
  // an unconditional Jmp to a block with no other predecessor. Control
  // flow through a chain is straight-line, so fusion may plan across the
  // links; emission order and labels are unchanged.
  std::map<BlockId, unsigned> PredCount;
  for (const auto &BB : F.Blocks)
    for (const Instr &I : BB->Instrs) {
      if (I.Op == Opcode::Jmp)
        ++PredCount[I.Target1];
      else if (I.Op == Opcode::Br) {
        ++PredCount[I.Target1];
        ++PredCount[I.Target2];
      }
    }
  for (size_t BI = 0; BI < F.Blocks.size();) {
    std::vector<const BasicBlock *> Chain = {F.Blocks[BI].get()};
    for (;;) {
      const BasicBlock *Last = Chain.back();
      if (Last->Instrs.empty() ||
          Last->Instrs.back().Op != Opcode::Jmp ||
          BI + Chain.size() >= F.Blocks.size())
        break;
      const BasicBlock *Next = F.Blocks[BI + Chain.size()].get();
      if (Last->Instrs.back().Target1 != Next->Id ||
          PredCount[Next->Id] != 1)
        break;
      Chain.push_back(Next);
    }
    emitSuperblock(Chain);
    BI += Chain.size();
  }
  Indent = 0;
  OS << "}\n";
  return HoistOS.str() + OS.str();
}

void Emitter::emitSuperblock(const std::vector<const BasicBlock *> &Chain) {
  // One planning stream over the whole chain; the Jmp linking two chain
  // halves is part of the stream (runs may span it) but is emitted
  // normally at its position, never folded.
  std::vector<StreamItem> Stream;
  for (size_t CI = 0; CI < Chain.size(); ++CI) {
    const BasicBlock *BB = Chain[CI];
    for (size_t Idx = 0; Idx < BB->Instrs.size(); ++Idx) {
      StreamItem It;
      It.I = &BB->Instrs[Idx];
      It.BB = BB;
      It.Link = CI + 1 < Chain.size() && Idx + 1 == BB->Instrs.size();
      Stream.push_back(It);
    }
  }
  std::vector<FusionTree> Trees;
  std::vector<int> Action = planFusion(Stream, Trees);
  size_t Pos = 0;
  for (const BasicBlock *BB : Chain) {
    CurBlock = BB->Id;
    OS << "L" << BB->Id << ":;\n";
    for (size_t Idx = 0; Idx < BB->Instrs.size(); ++Idx, ++Pos) {
      int A = Action[Pos];
      if (A == -2)
        continue; // Folded into the fused loop emitted at its root.
      if (A >= 0) {
        emitFusedTree(Stream, Trees[A]);
        emitProfHooks(*Stream[Trees[A].Root].I);
        continue;
      }
      emitInstr(BB->Instrs[Idx]);
      emitProfHooks(BB->Instrs[Idx]);
    }
  }
}

void Emitter::emitProfHooks(const Instr &I) {
  if (!Profile)
    return;
  int LastG = -1;
  for (VarId R : I.Results) {
    int G = Plan.groupOf(R);
    if (G < 0 || G == LastG)
      continue;
    LastG = G;
    line("mcrt_prof_size(\"" + F.Name + "\", " + std::to_string(G) +
         ", \"g" + std::to_string(G) + "\", 8*" + numelExpr(R) + ");");
    count(Obs, "codegen.prof.hooks");
  }
}

//===----------------------------------------------------------------------===//
// Elementwise loop fusion
//===----------------------------------------------------------------------===//
//
// Legality, in storage-plan terms. Fusing a chain does two things the
// straight-line emission would not:
//
//   1. It ELIDES the stores of internal results. Safe because an internal
//      value has exactly one def and one use, both inside the tree -- no
//      later read of the value exists, and no other variable can observe
//      its slot: a variable live across the internal def would interfere
//      with it and therefore sit in a different slot.
//   2. It MOVES every leaf read to the root's position. Safe only when no
//      instruction between the tree's first member and the root writes a
//      slot some leaf reads -- the leaf-clobber check below rejects the
//      region otherwise. The root's own destination may alias a leaf: the
//      loop computes element i entirely before storing element i (the
//      identity-index argument of the paper's in-place formation), and
//      scalar leaves are hoisted into locals before the loop.
//
// Shape conformance is dynamic: a guard of mcrt_same_shape() over the
// distinct array-leaf slots selects the fused loop; any disagreement
// (broadcast or a genuine error) falls back to the unfused instruction
// sequence, which reproduces the exact scalar-expansion and error
// behavior of the straight-line emission.

std::vector<int> Emitter::planFusion(const std::vector<StreamItem> &Stream,
                                     std::vector<FusionTree> &Trees) {
  size_t N = Stream.size();
  std::vector<int> Action(N, -1);
  if (!Fuse)
    return Action;
  std::vector<char> Cand(N, 0), Red(N, 0);
  std::vector<bool> InRun(N, false);
  unsigned NumCand = 0, NumRed = 0;
  for (size_t I = 0; I < N; ++I) {
    const Instr &In = *Stream[I].I;
    if (!Stream[I].Link) {
      Cand[I] = Legal.fusionCandidate(F, In);
      if (!Cand[I] && In.Op == Opcode::Builtin &&
          InPlaceLegality::reductionBuiltin(In.StrVal))
        Red[I] = Legal.reductionRoot(F, In);
    }
    InRun[I] = Cand[I] || Red[I] || Stream[I].Link ||
               InPlaceLegality::fusionTransparent(In);
    NumCand += Cand[I];
    NumRed += Red[I];
  }
  // Something must be elidable: an elementwise pair, or a reduction with
  // at least one elementwise feeder.
  if (NumCand < 2 && !(NumCand >= 1 && NumRed >= 1))
    return Action;
  // Maximal contiguous runs of candidates, reduction roots, transparent
  // constants, and superblock links; trees never cross anything else (a
  // call, branch, or runtime-routed op could read or write any slot).
  size_t I = 0;
  while (I < N) {
    if (!InRun[I]) {
      ++I;
      continue;
    }
    size_t J = I;
    while (J < N && InRun[J])
      ++J;
    planRun(Stream, I, J, Cand, Red, Action, Trees);
    I = J;
  }
  return Action;
}

void Emitter::planRun(const std::vector<StreamItem> &Stream, size_t Lo,
                      size_t Hi, const std::vector<char> &Cand,
                      const std::vector<char> &Red,
                      std::vector<int> &Action,
                      std::vector<FusionTree> &Trees) {
  // Where each value is defined within the run (links define nothing).
  std::map<VarId, size_t> RunDef;
  for (size_t K = Lo; K < Hi; ++K)
    if (!Stream[K].Link && Stream[K].I->Results.size() == 1)
      RunDef[Stream[K].I->result()] = K;
  std::vector<char> Claimed(Hi - Lo, 0);
  // Roots from the end down: the deepest chains claim their feeders
  // first; a rejected root leaves its feeders free to root their own
  // (smaller) trees later in the walk.
  for (size_t R = Hi; R-- > Lo;) {
    if (Claimed[R - Lo] || !(Cand[R] || Red[R]))
      continue;
    bool IsRed = Red[R];
    std::set<size_t> Members = {R};
    std::map<VarId, unsigned> DefIdx;
    std::vector<size_t> Stack = {R};
    unsigned NumCand = Cand[R] ? 1 : 0;
    while (!Stack.empty()) {
      size_t K = Stack.back();
      Stack.pop_back();
      for (VarId Op : Stream[K].I->Operands) {
        auto It = RunDef.find(Op);
        if (It == RunDef.end() || It->second >= K)
          continue; // Defined outside the run (or later: loop-carried).
        size_t D = It->second;
        if (Claimed[D - Lo] || Members.count(D))
          continue;
        // Internal members must be elementwise (or folded constants): a
        // reduction produces a scalar, never a per-element value, so it
        // roots trees but cannot join one.
        if (!Cand[D] && !InPlaceLegality::fusionTransparent(*Stream[D].I))
          continue;
        if (!Legal.elidableIntermediate(F, Op))
          continue; // Live past its single tree use, or multiply defined.
        Members.insert(D);
        DefIdx[Op] = static_cast<unsigned>(D);
        NumCand += Cand[D];
        Stack.push_back(D);
      }
    }
    // A real chain elides at least one intermediate store: an elementwise
    // root needs a second candidate; a reduction root needs one
    // elementwise feeder (folded constants alone make no region).
    if (NumCand < (IsRed ? 1u : 2u))
      continue;
    // Leaves, in use order across the members.
    FusionTree T;
    T.Root = static_cast<unsigned>(R);
    T.Reduction = IsRed;
    std::set<VarId> SeenLeaf;
    for (size_t M : Members)
      for (VarId Op : Stream[M].I->Operands) {
        if (DefIdx.count(Op))
          continue;
        if (!SeenLeaf.insert(Op).second)
          continue;
        T.LeafVars.push_back(Op);
        if (isStaticScalar(Op))
          T.ScalarLeaves.push_back(Op);
        else
          T.ArrayLeaves.push_back(Op);
      }
    if (T.ArrayLeaves.empty())
      continue; // All-scalar arithmetic gains nothing from a loop.
    // Leaf-clobber check: a non-member between the first member and the
    // root must not define into any slot a leaf reads, since the fused
    // loop reads every leaf at the root's position.
    size_t MinM = *Members.begin();
    bool Clobbered = false;
    for (size_t K = MinM + 1; K < R && !Clobbered; ++K) {
      if (Members.count(K) || Stream[K].Link)
        continue;
      Clobbered = Legal.clobbersLeaf(F, *Stream[K].I, T.LeafVars, Slots);
    }
    if (Clobbered)
      continue;
    for (size_t M : Members) {
      Claimed[M - Lo] = 1;
      if (M != R)
        Action[M] = -2;
      if (Stream[M].BB != Stream[R].BB)
        T.CrossBlock = true;
    }
    T.Members.assign(Members.begin(), Members.end());
    T.DefIdx = std::move(DefIdx);
    Action[R] = static_cast<int>(Trees.size());
    Trees.push_back(std::move(T));
  }
}

std::string Emitter::fusedOperand(const std::vector<StreamItem> &Stream,
                                  const FusionTree &T, VarId V) const {
  auto It = T.DefIdx.find(V);
  if (It != T.DefIdx.end())
    return fusedExpr(Stream, T, *Stream[It->second].I);
  if (isStaticScalar(V))
    return "__f_" + slot(V);
  return "__p_" + slot(V) + "[__i]";
}

std::string Emitter::fusedExpr(const std::vector<StreamItem> &Stream,
                               const FusionTree &T, const Instr &I) const {
  if (I.Op == Opcode::ConstNum)
    return cDouble(I.NumRe); // Folded constant: its store is elided too.
  if (I.Op == Opcode::Neg)
    return "(- " + fusedOperand(Stream, T, I.Operands[0]) + ")";
  if (I.Op == Opcode::Builtin) {
    // Whitelisted unary maps. Each name renders to the exact kernel
    // op_map dispatches to -- the faulting ones (sqrt/log escape to
    // complex, sign's NaN check) through mcrt's exported versions -- so
    // the fused loop is bit-identical to the runtime path, faults
    // included.
    static const std::map<std::string, std::string> Fn = {
        {"abs", "fabs"},        {"sqrt", "mcrt_f_sqrt"},
        {"exp", "exp"},         {"log", "mcrt_f_log"},
        {"sin", "sin"},         {"cos", "cos"},
        {"tan", "tan"},         {"floor", "floor"},
        {"ceil", "ceil"},       {"round", "round"},
        {"fix", "trunc"},       {"sign", "mcrt_f_sign"},
    };
    auto It = Fn.find(I.StrVal);
    assert(It != Fn.end() && "non-fusible builtin in fusion tree");
    return It->second + "(" + fusedOperand(Stream, T, I.Operands[0]) + ")";
  }
  const char *COp = "+";
  switch (I.Op) {
  case Opcode::Add:      COp = "+"; break;
  case Opcode::Sub:      COp = "-"; break;
  case Opcode::ElemMul:
  case Opcode::MatMul:   COp = "*"; break;
  case Opcode::ElemRDiv: COp = "/"; break;
  default:
    assert(false && "non-elementwise instruction in fusion tree");
  }
  return "(" + fusedOperand(Stream, T, I.Operands[0]) + " " + COp + " " +
         fusedOperand(Stream, T, I.Operands[1]) + ")";
}

void Emitter::emitFusedTree(const std::vector<StreamItem> &Stream,
                            const FusionTree &T) {
  const Instr &Root = *Stream[T.Root].I;
  CurLoc = Root.Loc;
  VarId C = Root.result();
  count(Obs, "codegen.fusion.regions");
  count(Obs, "codegen.fusion.instrs_fused",
        static_cast<std::int64_t>(T.Members.size()));
  if (T.CrossBlock || T.Reduction)
    count(Obs, "codegen.fusion.cross_loop");
  std::string What = T.Reduction
                         ? "into the " + Root.StrVal + " accumulation loop"
                         : "into one loop";
  remarkTo(Obs, "cemit", RemarkKind::RegionFused, F.Name,
           "fused " + std::to_string(T.Members.size()) +
               " instructions " + What + " producing " + F.var(C).Name +
               " (" + std::to_string(T.Members.size() - 1) +
               " intermediate stores elided" +
               (T.CrossBlock ? ", across basic blocks" : "") + ")",
           {{"var", F.var(C).Name},
            {"instrs", std::to_string(T.Members.size())}},
           CurLoc);
  if (T.Reduction)
    emitFusedReduction(Stream, T);
  else
    emitFusedMap(Stream, T);
}

void Emitter::emitFusedMap(const std::vector<StreamItem> &Stream,
                           const FusionTree &T) {
  const Instr &Root = *Stream[T.Root].I;
  VarId C = Root.result();
  // The first array leaf supplies the shape; the guard makes the other
  // distinct array slots agree with it before the fused arm runs.
  VarId Shape = T.ArrayLeaves.front();
  std::vector<std::string> ASlots;
  for (VarId V : T.ArrayLeaves) {
    std::string S = slot(V);
    if (std::find(ASlots.begin(), ASlots.end(), S) == ASlots.end())
      ASlots.push_back(S);
  }
  line("/* fused elementwise region: " + std::to_string(T.Members.size()) +
       " instrs -> " + F.var(C).Name + " */");
  bool Guarded = ASlots.size() > 1;
  if (Guarded) {
    std::string Cond;
    for (size_t K = 1; K < ASlots.size(); ++K) {
      if (K > 1)
        Cond += " && ";
      Cond += "mcrt_same_shape(" + dim(Shape, 0) + ", " + dim(Shape, 1) +
              ", " + dim(Shape, 2) + ", " + ASlots[K] + "_d0, " +
              ASlots[K] + "_d1, " + ASlots[K] + "_d2)";
    }
    open("if (" + Cond + ")");
  }
  emitEnsure(C, numelExpr(Shape));
  open("");
  for (VarId S : T.ScalarLeaves)
    line("double __f_" + slot(S) + " = " + buf(S) + "[0];");
  // restrict on the destination is sound only when no leaf shares its
  // slot; when one does, the loop still works element-at-a-time (the
  // identity-index argument), just without the no-alias promise.
  bool DestAliases = Legal.destMayAliasLeaf(F, Root, T.LeafVars, Slots);
  line(std::string("double *") + (DestAliases ? "" : "restrict ") +
       "__pd = " + buf(C) + ";");
  for (const std::string &S : ASlots)
    line("const double *__p_" + S + " = " + S + ";");
  // Partition the loop across the worker pool unless the analysis bounds
  // it under the runtime's own serial threshold (then the handshake --
  // even the call -- costs more than the loop). The partitioned body is
  // pure per-element arithmetic over disjoint index ranges, so parallel
  // output is byte-identical to serial; mcrt_parallel_for itself runs
  // serially (in cancel-checked chunks) when n is small or threads == 1.
  bool Par = true;
  if (RA) {
    Interval NB = RA->numelBound(F, Shape);
    if (NB.boundedAbove() && NB.Hi < static_cast<double>(MCRT_PAR_MIN))
      Par = false;
  }
  std::string Expr = fusedExpr(Stream, T, Root);
  if (!Par) {
    open("for (__i = 0; __i < " + numelExpr(Shape) + "; __i++)");
    line("__pd[__i] = " + Expr + ";");
    close();
  } else {
    std::string Id = F.Name + "_" + std::to_string(FuseSeq++);
    std::string Ctx = "__fuse_ctx_" + Id, Body = "__fuse_body_" + Id;
    HoistOS << "struct " << Ctx << " {\n  double *pd;\n";
    for (const std::string &S : ASlots)
      HoistOS << "  const double *p_" << S << ";\n";
    for (VarId S : T.ScalarLeaves)
      HoistOS << "  double f_" << slot(S) << ";\n";
    HoistOS << "};\n"
            << "static void " << Body
            << "(void *__v, mcrt_size __lo, mcrt_size __hi) {\n"
            << "  struct " << Ctx << " *__c = (struct " << Ctx
            << " *)__v;\n"
            << "  double *" << (DestAliases ? "" : "restrict ")
            << "__pd = __c->pd;\n";
    for (const std::string &S : ASlots)
      HoistOS << "  const double *__p_" << S << " = __c->p_" << S
              << ";\n";
    for (VarId S : T.ScalarLeaves)
      HoistOS << "  double __f_" << slot(S) << " = __c->f_" << slot(S)
              << ";\n";
    HoistOS << "  mcrt_size __i;\n"
            << "  for (__i = __lo; __i < __hi; __i++)\n"
            << "    __pd[__i] = " << Expr << ";\n"
            << "}\n\n";
    line("struct " + Ctx + " __c;");
    line("__c.pd = __pd;");
    for (const std::string &S : ASlots)
      line("__c.p_" + S + " = __p_" + S + ";");
    for (VarId S : T.ScalarLeaves)
      line("__c.f_" + slot(S) + " = __f_" + slot(S) + ";");
    line("mcrt_parallel_for(" + numelExpr(Shape) + ", &__c, " + Body +
         ");");
  }
  close();
  emitDimCopy(C, Shape);
  if (Guarded) {
    close();
    open("else");
    line("/* shapes disagree dynamically (scalar expansion or error): "
         "unfused fallback */");
    for (unsigned M : T.Members)
      emitInstr(*Stream[M].I);
    close();
  }
}

void Emitter::emitFusedReduction(const std::vector<StreamItem> &Stream,
                                 const FusionTree &T) {
  const Instr &Root = *Stream[T.Root].I;
  const std::string &RN = Root.StrVal;
  VarId C = Root.result();
  VarId Shape = T.ArrayLeaves.front();
  std::vector<std::string> ASlots;
  for (VarId V : T.ArrayLeaves) {
    std::string S = slot(V);
    if (std::find(ASlots.begin(), ASlots.end(), S) == ASlots.end())
      ASlots.push_back(S);
  }
  line("/* fused reduction region: " + std::to_string(T.Members.size()) +
       " instrs -> " + RN + " -> " + F.var(C).Name + " */");
  // Guard: shapes agree across the leaf slots, the reduced value is a
  // vector (the runtime's general path reduces along the first
  // non-singleton dimension; only vector shapes collapse to the single
  // linear accumulation fused here), and nonempty for mean (the
  // runtime's empty path yields 0 without dividing) and min/max (empty
  // faults). sum/prod of an empty vector need no extent guard: the
  // untouched initial accumulator IS the runtime's answer.
  std::string Cond;
  for (size_t K = 1; K < ASlots.size(); ++K)
    Cond += "mcrt_same_shape(" + dim(Shape, 0) + ", " + dim(Shape, 1) +
            ", " + dim(Shape, 2) + ", " + ASlots[K] + "_d0, " +
            ASlots[K] + "_d1, " + ASlots[K] + "_d2) && ";
  Cond += "((" + dim(Shape, 0) + " == 1 && " + dim(Shape, 1) +
          " == 1) || (" + dim(Shape, 0) + " == 1 && " + dim(Shape, 2) +
          " == 1) || (" + dim(Shape, 1) + " == 1 && " + dim(Shape, 2) +
          " == 1))";
  if (RN == "mean" || RN == "min" || RN == "max")
    Cond += " && " + numelExpr(Shape) + " > 0";
  open("if (" + Cond + ")");
  for (VarId S : T.ScalarLeaves)
    line("double __f_" + slot(S) + " = " + buf(S) + "[0];");
  for (const std::string &S : ASlots)
    line("const double *__p_" + S + " = " + S + ";");
  line("mcrt_size __n = " + numelExpr(Shape) + ";");
  line("mcrt_size __lo, __hi;");
  // The reduction stays SERIAL by policy: floating-point accumulation
  // does not reassociate, and byte-identity with the runtime's linear
  // fold is the contract. Chunked so a deadline can interrupt it.
  std::string E = fusedOperand(Stream, T, Root.Operands[0]);
  if (RN == "min" || RN == "max") {
    // Mirrors the runtime's index scan: best starts at element 0, strict
    // </> keeps the earliest extremum and never adopts a NaN.
    line("double __acc;");
    line("__i = 0;");
    line("__acc = " + E + ";");
    open("for (__lo = 1; __lo < __n; __lo += MCRT_CANCEL_CHUNK)");
    line("__hi = __lo + MCRT_CANCEL_CHUNK < __n ? __lo + MCRT_CANCEL_CHUNK"
         " : __n;");
    open("for (__i = __lo; __i < __hi; __i++)");
    line("double __x = " + E + ";");
    line(std::string("if (__x ") + (RN == "max" ? ">" : "<") +
         " __acc) __acc = __x;");
    close();
    line("mcrt_cancel_point();");
    close();
  } else {
    bool IsProd = RN == "prod";
    line(std::string("double __acc = ") + (IsProd ? "1.0" : "0.0") + ";");
    open("for (__lo = 0; __lo < __n; __lo += MCRT_CANCEL_CHUNK)");
    line("__hi = __lo + MCRT_CANCEL_CHUNK < __n ? __lo + MCRT_CANCEL_CHUNK"
         " : __n;");
    open("for (__i = __lo; __i < __hi; __i++)");
    line("__acc = __acc " + std::string(IsProd ? "*" : "+") + " " + E +
         ";");
    close();
    line("mcrt_cancel_point();");
    close();
    // The runtime's one-element path returns the element itself, not
    // init+element (0 + -0.0 is +0.0: the fold is not an identity).
    // Re-evaluate the chain at element 0 to match it bitwise.
    open("if (__n == 1)");
    line("__i = 0;");
    line("__acc = " + E + ";");
    close();
    if (RN == "mean")
      line("__acc = __acc / (double)__n;");
  }
  // Grow the destination only AFTER the loop: when the scalar result
  // shares a slot with a leaf, an earlier mcrt_ensure could move the
  // buffer the loop is still reading.
  emitEnsure(C, "1");
  line(buf(C) + "[0] = __acc;");
  emitDimSet(C, "1", "1");
  close();
  open("else");
  line("/* not a conforming nonempty vector: unfused fallback */");
  for (unsigned M : T.Members)
    emitInstr(*Stream[M].I);
  close();
}

void Emitter::emitElementwiseBinary(const Instr &I, const char *COp) {
  VarId C = I.result(), A = I.Operands[0], B = I.Operands[1];
  // Complex or logical-producing paths go through the runtime.
  if (isComplexVar(C) || isComplexVar(A) || isComplexVar(B)) {
    line(runtimeCall(std::string("op_") + opcodeName(I.Op), I));
    return;
  }
  std::string BA = buf(A), BB = buf(B), BC = buf(C);
  line("/* " + F.var(C).Name + " <- " + F.var(A).Name + " " + COp + " " +
       F.var(B).Name + " */");

  auto Loop = [&](VarId Shaped, bool AScalar, bool BScalar) {
    // Hoist scalar reads so in-place formation is safe even when the
    // result shares the scalar's group.
    if (AScalar)
      line("{ double __s = " + BA + "[0];");
    else if (BScalar)
      line("{ double __s = " + BB + "[0];");
    else
      line("{");
    ++Indent;
    std::string LHS = AScalar ? "__s" : BA + "[__i]";
    std::string RHS = BScalar ? "__s" : BB + "[__i]";
    open("for (__i = 0; __i < " + numelExpr(Shaped) + "; __i++)");
    line(BC + "[__i] = " + LHS + " " + COp + " " + RHS + ";");
    close();
    --Indent;
    line("}");
  };

  // Static type information specializes the guards, exactly as the paper's
  // Figure 1 does when shapes are only known dynamically.
  bool AScalar = isStaticScalar(A);
  bool BScalar = isStaticScalar(B);
  if (AScalar && BScalar) {
    emitEnsure(C, "1");
    line(BC + "[0] = " + BA + "[0] " + COp + " " + BB + "[0];");
    emitDimSet(C, "1", "1");
    return;
  }
  if (AScalar) {
    emitEnsure(C, numelExpr(B));
    Loop(B, true, false);
    emitDimCopy(C, B);
    return;
  }
  if (BScalar) {
    emitEnsure(C, numelExpr(A));
    Loop(A, false, true);
    emitDimCopy(C, A);
    return;
  }
  // Shapes not statically resolved: the three-way dynamic guard.
  emitEnsure(C, "mcrt_max(" + numelExpr(A) + ", " + numelExpr(B) + ")");
  open("if (" + dim(A, 0) + " == 1 && " + dim(A, 1) + " == 1)");
  line("/* First operand is a scalar. */");
  Loop(B, true, false);
  emitDimCopy(C, B);
  close();
  open("else if (" + dim(B, 0) + " == 1 && " + dim(B, 1) + " == 1)");
  line("/* Second operand is a scalar. */");
  Loop(A, false, true);
  emitDimCopy(C, A);
  close();
  open("else");
  line("/* Both operands have identical shapes. */");
  line("mcrt_check_conformance(" + dim(A, 0) + ", " + dim(A, 1) + ", " +
       dim(B, 0) + ", " + dim(B, 1) + ");");
  Loop(A, false, false);
  emitDimCopy(C, A);
  close();
}

std::string Emitter::runtimeCall(const std::string &Op, const Instr &I) {
  std::ostringstream Call;
  Call << "mcrt_call(\"" << Op << "\", "
       << I.Results.size() << ", " << I.Operands.size();
  for (VarId R : I.Results)
    Call << ", &" << buf(R) << ", &" << cap(R) << ", &" << dim(R, 0)
         << ", &" << dim(R, 1) << ", &" << dim(R, 2);
  for (VarId OpV : I.Operands)
    Call << ", " << buf(OpV) << ", " << dim(OpV, 0) << ", " << dim(OpV, 1)
         << ", " << dim(OpV, 2);
  Call << ");";
  return Call.str();
}

void Emitter::emitInstr(const Instr &I) {
  CurLoc = I.Loc;
  switch (I.Op) {
  case Opcode::ConstNum: {
    VarId C = I.result();
    if (isComplexVar(C)) {
      line("mcrt_const_complex(&" + buf(C) + ", &" + cap(C) + ", &" +
           dim(C, 0) + ", &" + dim(C, 1) + ", &" + dim(C, 2) + ", " +
           cDouble(I.NumRe) + ", " + cDouble(I.NumIm) + ");");
    } else {
      emitEnsure(C, "1");
      line(buf(C) + "[0] = " + cDouble(I.NumRe) + ";");
      emitDimSet(C, "1", "1");
    }
    return;
  }
  case Opcode::ConstStr: {
    VarId C = I.result();
    emitEnsure(C, std::to_string(I.StrVal.size() ? I.StrVal.size() : 1));
    line("mcrt_str(" + buf(C) + ", &" + dim(C, 0) + ", &" + dim(C, 1) +
         ", &" + dim(C, 2) + ", \"" + cEscape(I.StrVal) + "\");");
    return;
  }
  case Opcode::ConstColon: {
    VarId C = I.result();
    // The ':' subscript marker: encoded as d0 = -1.
    line(dim(C, 0) + " = -1; " + dim(C, 1) + " = 0; " + dim(C, 2) +
         " = 1; /* ':' subscript marker */");
    return;
  }
  case Opcode::Copy: {
    VarId Dst = I.result(), Src = I.Operands[0];
    if (Plan.sameSlot(Dst, Src)) {
      // Identity assignment from a coalesced phi web: nothing to emit.
      line("/* " + F.var(Dst).Name + " = " + F.var(Src).Name +
           ": identity (coalesced) */");
      return;
    }
    emitEnsure(Dst, numelExpr(Src));
    open("for (__i = 0; __i < " + numelExpr(Src) + "; __i++)");
    line(buf(Dst) + "[__i] = " + buf(Src) + "[__i];");
    close();
    emitDimCopy(Dst, Src);
    return;
  }
  case Opcode::Add:
    emitElementwiseBinary(I, "+");
    return;
  case Opcode::Sub:
    emitElementwiseBinary(I, "-");
    return;
  case Opcode::ElemMul:
    emitElementwiseBinary(I, "*");
    return;
  case Opcode::ElemRDiv:
    emitElementwiseBinary(I, "/");
    return;
  case Opcode::MatMul:
    // Scalar-operand multiplies are elementwise (and eligible for the
    // in-place formation); true matrix products go to the runtime.
    if (isStaticScalar(I.Operands[0]) || isStaticScalar(I.Operands[1])) {
      emitElementwiseBinary(I, "*");
      return;
    }
    line(runtimeCall("matmul", I));
    return;
  case Opcode::Subsref: {
    // Inline the scalar-subscript fast path (mat2c's code selection);
    // array subscripts and colons go to the runtime.
    VarId C = I.result(), A = I.Operands[0];
    unsigned NumSubs = static_cast<unsigned>(I.Operands.size()) - 1;
    bool AllScalar = !isComplexVar(A) && !isComplexVar(C) &&
                     NumSubs >= 1 && NumSubs <= 3;
    for (size_t K = 1; K < I.Operands.size(); ++K) {
      const VarType &T = Types[I.Operands[K]];
      AllScalar &= isStaticScalar(I.Operands[K]) &&
                   T.IT != IntrinsicType::Colon;
    }
    if (AllScalar) {
      bool Proven = subsInBounds(I, A, 1);
      if (Proven) {
        count(Obs, "codegen.bounds_check.elided");
        remarkTo(Obs, "cemit", RemarkKind::CheckElided, F.Name,
                 "bounds check elided: scalar subscripts of " +
                     F.var(A).Name + " proven within its extents",
                 {{"var", F.var(A).Name}, {"check", "bounds"}}, CurLoc);
      } else {
        count(Obs, "codegen.bounds_check.emitted");
      }
      line(Proven ? "/* inline scalar R-indexing (bounds check elided: "
                    "subscripts proven in range) */"
                  : "/* inline scalar R-indexing */");
      std::string Idx;
      if (NumSubs == 1)
        Idx = "mcrt_index1(" + buf(I.Operands[1]) + "[0], " +
              numelExpr(A) + ")";
      else if (NumSubs == 2)
        Idx = "mcrt_index2(" + buf(I.Operands[1]) + "[0], " +
              buf(I.Operands[2]) + "[0], " + dim(A, 0) + ", " +
              dim(A, 1) + ")";
      else
        Idx = "mcrt_index3(" + buf(I.Operands[1]) + "[0], " +
              buf(I.Operands[2]) + "[0], " + buf(I.Operands[3]) + "[0], " +
              dim(A, 0) + ", " + dim(A, 1) + ", " + dim(A, 2) + ")";
      open("");
      line("mcrt_size __k = " + Idx + ";");
      if (!Proven)
        line("if (__k < 0) mcrt_fail(\"index exceeds array bounds\");");
      emitEnsure(C, "1");
      line(buf(C) + "[0] = " + buf(A) + "[__k];");
      emitDimSet(C, "1", "1");
      close();
      return;
    }
    line(runtimeCall("subsref", I));
    return;
  }
  case Opcode::Subsasgn: {
    bool InPlace = Legal.subsasgnInPlace(F, I, Slots);
    // Inline the scalar-on-scalar in-place write when no growth happens;
    // beyond-extent writes fall back to the growing runtime path.
    VarId Base = I.Operands[0], Rhs = I.Operands[1];
    unsigned NumSubs = static_cast<unsigned>(I.Operands.size()) - 2;
    bool Fast = InPlace && !isComplexVar(Base) && !isComplexVar(Rhs) &&
                isStaticScalar(Rhs) && NumSubs >= 1 && NumSubs <= 3;
    for (size_t K = 2; K < I.Operands.size(); ++K) {
      const VarType &T = Types[I.Operands[K]];
      Fast &= isStaticScalar(I.Operands[K]) &&
              T.IT != IntrinsicType::Colon;
    }
    if (Fast) {
      bool Proven = subsInBounds(I, Base, 2);
      std::string Idx;
      if (NumSubs == 1)
        Idx = "mcrt_index1(" + buf(I.Operands[2]) + "[0], " +
              numelExpr(Base) + ")";
      else if (NumSubs == 2)
        Idx = "mcrt_index2(" + buf(I.Operands[2]) + "[0], " +
              buf(I.Operands[3]) + "[0], " + dim(Base, 0) + ", " +
              dim(Base, 1) + ")";
      else
        Idx = "mcrt_index3(" + buf(I.Operands[2]) + "[0], " +
              buf(I.Operands[3]) + "[0], " + buf(I.Operands[4]) + "[0], " +
              dim(Base, 0) + ", " + dim(Base, 1) + ", " + dim(Base, 2) +
              ")";
      if (Proven) {
        // Subscripts proven within the base's extents: the write can
        // never grow the array, so the runtime fallback is dead.
        count(Obs, "codegen.growth_fallback.elided");
        remarkTo(Obs, "cemit", RemarkKind::CheckElided, F.Name,
                 "growth fallback elided: subsasgn subscripts of " +
                     F.var(Base).Name + " proven within its extents",
                 {{"var", F.var(Base).Name}, {"check", "growth"}}, CurLoc);
        line("/* inline scalar L-indexing (growth fallback elided: "
             "subscripts proven in range) */");
        open("");
        line("mcrt_size __k = " + Idx + ";");
        line(buf(Base) + "[__k] = " + buf(Rhs) + "[0];");
        close();
        return;
      }
      count(Obs, "codegen.growth_fallback.emitted");
      line("/* inline scalar L-indexing (in place; growth falls back) */");
      open("");
      line("mcrt_size __k = " + Idx + ";");
      open("if (__k >= 0)");
      line(buf(Base) + "[__k] = " + buf(Rhs) + "[0];");
      close();
      open("else");
      line(runtimeCall("subsasgn_inplace", I));
      close();
      close();
      return;
    }
    if (InPlace) {
      line("/* in-place L-indexing: formed backwards (sec. 2.3.3.1) */");
      line(runtimeCall("subsasgn_inplace", I));
    } else {
      line(runtimeCall("subsasgn_copy", I));
    }
    return;
  }
  case Opcode::Builtin:
    // Char-ness is a static property in the C back end: route character
    // displays to the string printer.
    if (I.StrVal == "disp" && I.Operands.size() == 1 &&
        isCharVar(I.Operands[0])) {
      line(runtimeCall("disp_char", I));
      return;
    }
    line(runtimeCall(I.StrVal, I));
    return;
  case Opcode::Call: {
    std::ostringstream Call;
    Call << "mat_" << I.StrVal << "(";
    bool First = true;
    for (VarId Op : I.Operands) {
      if (!First)
        Call << ", ";
      First = false;
      Call << "mcrt_arg_(" << buf(Op) << ", " << dim(Op, 0) << ", "
           << dim(Op, 1) << ", " << dim(Op, 2) << ")";
    }
    for (VarId R : I.Results) {
      if (!First)
        Call << ", ";
      First = false;
      Call << "mcrt_ref_(&" << buf(R) << ", &" << cap(R) << ", &"
           << dim(R, 0) << ", &" << dim(R, 1) << ", &" << dim(R, 2)
           << ")";
    }
    Call << ");";
    line(Call.str());
    return;
  }
  case Opcode::Display:
    line(std::string(isCharVar(I.Operands[0]) ? "mcrt_display_char(\""
                                              : "mcrt_display(\"") +
         cEscape(I.StrVal) + "\", " + buf(I.Operands[0]) + ", " +
         dim(I.Operands[0], 0) + ", " + dim(I.Operands[0], 1) + ", " +
         dim(I.Operands[0], 2) + ");");
    return;
  case Opcode::Jmp:
    line("goto L" + std::to_string(I.Target1) + ";");
    return;
  case Opcode::Br:
    line("if (mcrt_truth(" + buf(I.Operands[0]) + ", " +
         numelExpr(I.Operands[0]) + ")) goto L" +
         std::to_string(I.Target1) + "; else goto L" +
         std::to_string(I.Target2) + ";");
    return;
  case Opcode::Ret: {
    for (size_t K = 0; K < I.Operands.size(); ++K) {
      VarId V = I.Operands[K];
      bool Dps = std::find(DpsOuts.begin(), DpsOuts.end(),
                           static_cast<unsigned>(K)) != DpsOuts.end();
      if (Dps)
        // Destination-passing return: the slot's buffer travels to the
        // caller by pointer; the copy (and the caller-side realloc the
        // copy might force) disappears.
        line("mcrt_dps_ret(out" + std::to_string(K) + ", &" + buf(V) +
             ", &" + cap(V) + ", " + dim(V, 0) + ", " + dim(V, 1) + ", " +
             dim(V, 2) + ");");
      else
        line("mcrt_store(out" + std::to_string(K) + ", " + buf(V) + ", " +
             dim(V, 0) + ", " + dim(V, 1) + ", " + dim(V, 2) + ");");
    }
    line("return;");
    return;
  }
  default:
    // Every remaining operation maps onto one runtime routine named after
    // the opcode.
    line(runtimeCall(std::string("op_") + opcodeName(I.Op), I));
    return;
  }
}

} // namespace

std::string matcoal::emitFunctionC(const Function &F,
                                   const StoragePlan &Plan,
                                   const TypeInference &TI,
                                   const RangeAnalysis *RA, Observer *Obs,
                                   const CEmitOptions &Opts,
                                   const InPlaceLegality *Legal) {
  count(Obs, "codegen.functions");
  if (Legal) {
    Emitter E(F, Plan, TI, RA, Obs, Opts, *Legal);
    return E.run();
  }
  // No shared oracle supplied (direct emission in tests/benches): a
  // private one with identical policy stands in.
  InPlaceLegality Local(TI, RA, nullptr, Obs);
  Emitter E(F, Plan, TI, RA, Obs, Opts, Local);
  return E.run();
}

std::string matcoal::emitModuleC(
    const Module &M, const std::map<const Function *, StoragePlan> &Plans,
    const TypeInference &TI, const RangeAnalysis *RA, Observer *Obs,
    const CEmitOptions &Opts, const InPlaceLegality *Legal) {
  PassTimer T(Obs, "cemit");
  if (Obs) {
    // Seed the codegen schema so counter names survive inputs that never
    // reach a given elision site.
    Obs->Stats.add("codegen.functions", 0);
    Obs->Stats.add("codegen.ensure.emitted", 0);
    Obs->Stats.add("codegen.ensure.elided", 0);
    Obs->Stats.add("codegen.bounds_check.emitted", 0);
    Obs->Stats.add("codegen.bounds_check.elided", 0);
    Obs->Stats.add("codegen.growth_fallback.emitted", 0);
    Obs->Stats.add("codegen.growth_fallback.elided", 0);
    Obs->Stats.add("codegen.fusion.regions", 0);
    Obs->Stats.add("codegen.fusion.instrs_fused", 0);
    Obs->Stats.add("codegen.fusion.cross_loop", 0);
    Obs->Stats.add("codegen.dps.outputs", 0);
    Obs->Stats.add("codegen.prof.hooks", 0);
  }
  std::ostringstream OS;
  OS << "/* Generated by matcoal (GCTD array storage optimization). */\n"
     << "#include \"mcrt.h\"\n"
     << "#include <math.h>\n\n";
  // Forward declarations so call order doesn't matter.
  for (const auto &F : M.Functions) {
    OS << "void mat_" << F->Name << "(";
    bool First = true;
    for (size_t K = 0; K < F->Params.size(); ++K) {
      if (!First)
        OS << ", ";
      First = false;
      OS << "mcrt_arg";
    }
    for (size_t K = 0; K < F->Outputs.size(); ++K) {
      if (!First)
        OS << ", ";
      First = false;
      OS << "mcrt_ref";
    }
    if (First)
      OS << "void";
    OS << ");\n";
  }
  OS << "\n";
  for (const auto &F : M.Functions) {
    auto It = Plans.find(F.get());
    assert(It != Plans.end() && "missing plan for function");
    OS << emitFunctionC(*F, It->second, TI, RA, Obs, Opts, Legal) << "\n";
  }
  // Standalone binaries resolve their worker count from $MATCOAL_THREADS
  // (mcrt_set_threads(0)); the in-process native tier overrides this with
  // the compile option through the dlsym'd hook before each run.
  if (Opts.Profile)
    OS << "int main(void) { mcrt_set_threads(0); mcrt_prof_begin(0); "
          "mat_main(); mcrt_prof_end(); return 0; }\n";
  else
    OS << "int main(void) { mcrt_set_threads(0); mat_main(); return 0; }\n";
  return OS.str();
}
