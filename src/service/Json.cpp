//===- Json.cpp -----------------------------------------------------------===//

#include "service/Json.h"

#include "observe/Observe.h" // jsonEscape

#include <cmath>
#include <cstdio>
#include <cstdlib>

using namespace matcoal;

JsonValue JsonValue::boolean(bool B) {
  JsonValue V;
  V.K = Kind::Bool;
  V.B = B;
  return V;
}

JsonValue JsonValue::number(double N) {
  JsonValue V;
  V.K = Kind::Number;
  V.Num = N;
  return V;
}

JsonValue JsonValue::str(std::string S) {
  JsonValue V;
  V.K = Kind::String;
  V.S = std::move(S);
  return V;
}

JsonValue JsonValue::array() {
  JsonValue V;
  V.K = Kind::Array;
  return V;
}

JsonValue JsonValue::object() {
  JsonValue V;
  V.K = Kind::Object;
  return V;
}

bool JsonValue::asBool(bool Default) const {
  return K == Kind::Bool ? B : Default;
}

double JsonValue::asNumber(double Default) const {
  return K == Kind::Number ? Num : Default;
}

std::int64_t JsonValue::asInt(std::int64_t Default) const {
  return K == Kind::Number ? static_cast<std::int64_t>(Num) : Default;
}

const std::string &JsonValue::asString() const {
  static const std::string Empty;
  return K == Kind::String ? S : Empty;
}

const std::vector<JsonValue> &JsonValue::items() const {
  static const std::vector<JsonValue> None;
  return K == Kind::Array ? Arr : None;
}

const JsonValue &JsonValue::get(const std::string &Key) const {
  static const JsonValue Missing;
  if (K == Kind::Object)
    for (const auto &[Name, V] : Obj)
      if (Name == Key)
        return V;
  return Missing;
}

bool JsonValue::has(const std::string &Key) const {
  if (K != Kind::Object)
    return false;
  for (const auto &[Name, V] : Obj) {
    (void)V;
    if (Name == Key)
      return true;
  }
  return false;
}

void JsonValue::set(const std::string &Key, JsonValue V) {
  K = Kind::Object;
  for (auto &[Name, Old] : Obj)
    if (Name == Key) {
      Old = std::move(V);
      return;
    }
  Obj.emplace_back(Key, std::move(V));
}

void JsonValue::push(JsonValue V) {
  K = Kind::Array;
  Arr.push_back(std::move(V));
}

std::string JsonValue::dump() const {
  switch (K) {
  case Kind::Null:
    return "null";
  case Kind::Bool:
    return B ? "true" : "false";
  case Kind::Number: {
    if (std::isfinite(Num) && Num == std::floor(Num) &&
        std::abs(Num) < 9.0e15) {
      char Buf[32];
      std::snprintf(Buf, sizeof(Buf), "%lld",
                    static_cast<long long>(Num));
      return Buf;
    }
    if (!std::isfinite(Num))
      return "null"; // JSON has no Inf/NaN.
    char Buf[40];
    std::snprintf(Buf, sizeof(Buf), "%.17g", Num);
    return Buf;
  }
  case Kind::String:
    return "\"" + jsonEscape(S) + "\"";
  case Kind::Array: {
    std::string Out = "[";
    for (size_t I = 0; I < Arr.size(); ++I) {
      if (I)
        Out += ",";
      Out += Arr[I].dump();
    }
    return Out + "]";
  }
  case Kind::Object: {
    std::string Out = "{";
    bool First = true;
    for (const auto &[Name, V] : Obj) {
      if (!First)
        Out += ",";
      First = false;
      Out += "\"" + jsonEscape(Name) + "\":" + V.dump();
    }
    return Out + "}";
  }
  }
  return "null";
}

namespace {

struct Parser {
  const std::string &T;
  size_t P = 0;
  std::string &Err;

  bool fail(const std::string &Why) {
    if (Err.empty())
      Err = "offset " + std::to_string(P) + ": " + Why;
    return false;
  }

  void ws() {
    while (P < T.size() && (T[P] == ' ' || T[P] == '\t' || T[P] == '\n' ||
                            T[P] == '\r'))
      ++P;
  }

  bool literal(const char *Lit) {
    size_t L = 0;
    while (Lit[L]) {
      if (P + L >= T.size() || T[P + L] != Lit[L])
        return fail(std::string("expected '") + Lit + "'");
      ++L;
    }
    P += L;
    return true;
  }

  void appendUtf8(std::string &Out, unsigned Code) {
    if (Code < 0x80) {
      Out += static_cast<char>(Code);
    } else if (Code < 0x800) {
      Out += static_cast<char>(0xC0 | (Code >> 6));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    } else {
      Out += static_cast<char>(0xE0 | (Code >> 12));
      Out += static_cast<char>(0x80 | ((Code >> 6) & 0x3F));
      Out += static_cast<char>(0x80 | (Code & 0x3F));
    }
  }

  bool string(std::string &Out) {
    if (P >= T.size() || T[P] != '"')
      return fail("expected string");
    ++P;
    while (P < T.size()) {
      char C = T[P];
      if (C == '"') {
        ++P;
        return true;
      }
      if (C == '\\') {
        if (++P >= T.size())
          return fail("dangling escape");
        char E = T[P++];
        switch (E) {
        case '"': Out += '"'; break;
        case '\\': Out += '\\'; break;
        case '/': Out += '/'; break;
        case 'b': Out += '\b'; break;
        case 'f': Out += '\f'; break;
        case 'n': Out += '\n'; break;
        case 'r': Out += '\r'; break;
        case 't': Out += '\t'; break;
        case 'u': {
          if (P + 4 > T.size())
            return fail("truncated \\u escape");
          unsigned Code = 0;
          for (int I = 0; I < 4; ++I) {
            char H = T[P++];
            Code <<= 4;
            if (H >= '0' && H <= '9')
              Code |= static_cast<unsigned>(H - '0');
            else if (H >= 'a' && H <= 'f')
              Code |= static_cast<unsigned>(H - 'a' + 10);
            else if (H >= 'A' && H <= 'F')
              Code |= static_cast<unsigned>(H - 'A' + 10);
            else
              return fail("bad \\u escape");
          }
          appendUtf8(Out, Code);
          break;
        }
        default:
          return fail("unknown escape");
        }
        continue;
      }
      Out += C;
      ++P;
    }
    return fail("unterminated string");
  }

  bool value(JsonValue &Out, unsigned Depth) {
    if (Depth > 64)
      return fail("nesting too deep");
    ws();
    if (P >= T.size())
      return fail("unexpected end of input");
    char C = T[P];
    if (C == 'n') {
      if (!literal("null"))
        return false;
      Out = JsonValue::null();
      return true;
    }
    if (C == 't') {
      if (!literal("true"))
        return false;
      Out = JsonValue::boolean(true);
      return true;
    }
    if (C == 'f') {
      if (!literal("false"))
        return false;
      Out = JsonValue::boolean(false);
      return true;
    }
    if (C == '"') {
      std::string S;
      if (!string(S))
        return false;
      Out = JsonValue::str(std::move(S));
      return true;
    }
    if (C == '[') {
      ++P;
      Out = JsonValue::array();
      ws();
      if (P < T.size() && T[P] == ']') {
        ++P;
        return true;
      }
      for (;;) {
        JsonValue Item;
        if (!value(Item, Depth + 1))
          return false;
        Out.push(std::move(Item));
        ws();
        if (P < T.size() && T[P] == ',') {
          ++P;
          continue;
        }
        if (P < T.size() && T[P] == ']') {
          ++P;
          return true;
        }
        return fail("expected ',' or ']'");
      }
    }
    if (C == '{') {
      ++P;
      Out = JsonValue::object();
      ws();
      if (P < T.size() && T[P] == '}') {
        ++P;
        return true;
      }
      for (;;) {
        ws();
        std::string Key;
        if (!string(Key))
          return false;
        ws();
        if (P >= T.size() || T[P] != ':')
          return fail("expected ':'");
        ++P;
        JsonValue V;
        if (!value(V, Depth + 1))
          return false;
        Out.set(Key, std::move(V));
        ws();
        if (P < T.size() && T[P] == ',') {
          ++P;
          continue;
        }
        if (P < T.size() && T[P] == '}') {
          ++P;
          return true;
        }
        return fail("expected ',' or '}'");
      }
    }
    // Number.
    {
      size_t Start = P;
      if (P < T.size() && (T[P] == '-' || T[P] == '+'))
        ++P;
      while (P < T.size() &&
             ((T[P] >= '0' && T[P] <= '9') || T[P] == '.' || T[P] == 'e' ||
              T[P] == 'E' || T[P] == '-' || T[P] == '+'))
        ++P;
      if (P == Start)
        return fail("unexpected character");
      char *End = nullptr;
      std::string Num = T.substr(Start, P - Start);
      double D = std::strtod(Num.c_str(), &End);
      if (!End || *End != '\0')
        return fail("malformed number");
      Out = JsonValue::number(D);
      return true;
    }
  }
};

} // namespace

std::optional<JsonValue> JsonValue::parse(const std::string &Text,
                                          std::string &Error) {
  Error.clear();
  Parser Ps{Text, 0, Error};
  JsonValue V;
  if (!Ps.value(V, 0))
    return std::nullopt;
  Ps.ws();
  if (Ps.P != Text.size()) {
    Ps.fail("trailing garbage after document");
    return std::nullopt;
  }
  return V;
}
