//===- JobQueue.h - Bounded MPMC work queue with backpressure ---*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The work queue feeding matcoald's worker pool: a classic bounded
/// mutex-plus-two-condvars multi-producer/multi-consumer queue in the
/// battle-tested C jobqueue idiom (one condition for "not empty", one for
/// "not full", a close flag that drains before it stops consumers).
///
/// The bound is the backpressure mechanism, not an implementation detail:
/// `tryPush` refuses instead of blocking when the queue is at capacity,
/// and the service turns that refusal into a retry-after reply. Producers
/// that *want* to wait (the stdio front end, which has nowhere to send
/// backpressure) use the blocking `push`.
///
/// Close semantics: `close()` wakes everyone; pops keep succeeding until
/// the queue drains, then return false forever -- so shutdown finishes
/// accepted work but takes no more ("finish your plate, the kitchen is
/// closed").
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_SERVICE_JOBQUEUE_H
#define MATCOAL_SERVICE_JOBQUEUE_H

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>

namespace matcoal {

template <typename T> class JobQueue {
public:
  explicit JobQueue(std::size_t Capacity) : Capacity(Capacity) {}
  JobQueue(const JobQueue &) = delete;
  JobQueue &operator=(const JobQueue &) = delete;

  /// Non-blocking enqueue. Returns false -- leaving \p Job untouched for
  /// the caller's backpressure reply -- when the queue is full or closed.
  bool tryPush(T &&Job) {
    {
      std::lock_guard<std::mutex> Lock(M);
      if (Closed || Q.size() >= Capacity)
        return false;
      Q.push_back(std::move(Job));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocking enqueue: waits for space. Returns false only when the
  /// queue is closed.
  bool push(T &&Job) {
    {
      std::unique_lock<std::mutex> Lock(M);
      NotFull.wait(Lock, [&] { return Closed || Q.size() < Capacity; });
      if (Closed)
        return false;
      Q.push_back(std::move(Job));
    }
    NotEmpty.notify_one();
    return true;
  }

  /// Blocking dequeue. Returns false once the queue is closed *and*
  /// drained; until then every accepted job is delivered exactly once.
  bool pop(T &Out) {
    std::unique_lock<std::mutex> Lock(M);
    NotEmpty.wait(Lock, [&] { return Closed || !Q.empty(); });
    if (Q.empty())
      return false; // Closed and drained.
    Out = std::move(Q.front());
    Q.pop_front();
    Lock.unlock();
    NotFull.notify_one();
    return true;
  }

  /// Stops accepting new jobs and wakes all waiters. Idempotent.
  void close() {
    {
      std::lock_guard<std::mutex> Lock(M);
      Closed = true;
    }
    NotEmpty.notify_all();
    NotFull.notify_all();
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> Lock(M);
    return Q.size();
  }

  bool closed() const {
    std::lock_guard<std::mutex> Lock(M);
    return Closed;
  }

  std::size_t capacity() const { return Capacity; }

private:
  const std::size_t Capacity;
  mutable std::mutex M;
  std::condition_variable NotEmpty;
  std::condition_variable NotFull;
  std::deque<T> Q;
  bool Closed = false;
};

} // namespace matcoal

#endif // MATCOAL_SERVICE_JOBQUEUE_H
