//===- Json.h - Minimal JSON value for the service protocol -----*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small recursive-descent JSON reader/writer for matcoald's
/// newline-delimited request/response envelopes. The rest of the repo only
/// ever *emits* JSON (statsJson, profileJson) or scrapes known fields out
/// of its own output; the service is the first component that must parse
/// arbitrary client input -- including MATLAB sources with embedded
/// newlines, quotes, and backslashes -- so it gets a real parser with
/// strict escape handling rather than another field scraper.
///
/// Scope is deliberately the protocol's: objects, arrays, strings,
/// doubles, bools, null; no comments, no trailing commas, UTF-8 passed
/// through verbatim (\uXXXX escapes decode to UTF-8). Parse failures
/// return std::nullopt with a position-carrying message, which the daemon
/// turns into a per-line protocol-error reply instead of dying.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_SERVICE_JSON_H
#define MATCOAL_SERVICE_JSON_H

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace matcoal {

/// One JSON value. Object member order is preserved for serialization
/// (responses stay byte-deterministic); lookup is linear, which is fine
/// for envelopes of a dozen keys.
class JsonValue {
public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool B);
  static JsonValue number(double N);
  static JsonValue str(std::string S);
  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return K; }
  bool isNull() const { return K == Kind::Null; }
  bool isObject() const { return K == Kind::Object; }

  // --- Typed accessors (defaulted when absent or mistyped, so envelope
  // handling reads like config lookup).
  bool asBool(bool Default = false) const;
  double asNumber(double Default = 0) const;
  std::int64_t asInt(std::int64_t Default = 0) const;
  const std::string &asString() const; // "" when not a string
  const std::vector<JsonValue> &items() const;

  /// Object member by key, or null-kind sentinel when missing.
  const JsonValue &get(const std::string &Key) const;
  bool has(const std::string &Key) const;
  /// Sets (or replaces) an object member, preserving insertion order.
  void set(const std::string &Key, JsonValue V);
  void push(JsonValue V);

  /// Compact single-line serialization (newline-free, so one response is
  /// always one NDJSON line).
  std::string dump() const;

  /// Strict parse of a complete document. On failure returns nullopt and
  /// sets \p Error to "offset N: why".
  static std::optional<JsonValue> parse(const std::string &Text,
                                        std::string &Error);

private:
  Kind K = Kind::Null;
  bool B = false;
  double Num = 0;
  std::string S;
  std::vector<JsonValue> Arr;
  std::vector<std::pair<std::string, JsonValue>> Obj;
};

} // namespace matcoal

#endif // MATCOAL_SERVICE_JSON_H
