//===- Service.h - Fault-isolated concurrent compile service ----*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The "millions of users" architecture move: a persistent, concurrent
/// compile-and-run service wrapping the Compiler facade. `matcoald` is a
/// thin protocol shell around the `CompileService` here, and the service
/// stress tests drive this class directly.
///
/// Robustness contract, in order of the guarantees the storm test pins:
///
///  * **Fault isolation.** Every request is processed under a
///    catch-everything boundary on a worker thread with strictly
///    per-session state (its own Observer, RuntimeProfiler, CancelToken,
///    SymExprContext via compileSource). A request that trips a verifier
///    failure or injected fault rides the existing Full -> IdentityPlans
///    -> MccOnly -> InterpOnly ladder; a runtime trap or internal error
///    becomes a classified error response. No request outcome -- not even
///    an unknown exception -- terminates the worker or the server.
///  * **Deadlines.** Each request's deadline starts at *admission* (queue
///    wait counts -- a client's deadline does not pause because the
///    server is busy). Workers arm the request's CancelToken with the
///    absolute deadline; the driver polls it between stages and the
///    VM/interpreter poll it in their op loops, so expiry surfaces as
///    `TrapKind::Deadline` with trap provenance, never as a stuck worker.
///  * **Backpressure.** The worker pool is fed by a bounded JobQueue.
///    `submit` refuses when the queue is full and the caller turns the
///    refusal into a `rejected: true` + `retry_after_ms` reply -- load
///    sheds at the door instead of growing an unbounded backlog.
///  * **Observability.** Per-request counters, the degradation rung, trap
///    classification, and queue/compile/run timings ride in every
///    response envelope; finished requests fold into a mutex-guarded
///    server-wide StatRegistry served by the `stats` op.
///
/// Thread-safety: `submit`, `processNow`, `statsJson`, `drain`, and
/// `shutdown` may be called from any thread. Everything the compiler
/// touches is per-session by construction (see the contract notes in
/// Observe.h, RuntimeProfiler.h, BufferPool.h, SymExpr.h); the only
/// cross-request shared state is the job queue and the aggregate
/// StatRegistry, each behind its own mutex.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_SERVICE_SERVICE_H
#define MATCOAL_SERVICE_SERVICE_H

#include "driver/Compiler.h"
#include "native/NativeEngine.h"
#include "observe/FlightRecorder.h"
#include "observe/Span.h"
#include "service/JobQueue.h"
#include "service/Json.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace matcoal {

/// Server-level knobs, fixed at construction.
struct ServiceConfig {
  unsigned Workers = 4;
  std::size_t QueueCap = 16;
  /// Applied when a request carries no deadline of its own; 0 = none.
  std::int64_t DefaultDeadlineMs = 0;
  /// Hint carried in backpressure replies.
  std::int64_t RetryAfterMs = 50;
  // Execution guards every request runs under (per-request values may
  // only tighten these, never exceed them).
  std::uint64_t OpBudget = 2000000000ull;
  std::int64_t HeapLimit = 0;
  unsigned RecursionLimit = 512;
  /// Artifact-cache directory for the native tier; empty selects
  /// $MATCOAL_CACHE_DIR, then the per-user default (see ArtifactCache.h).
  /// The service owns one NativeEngine, so the cache -- both the on-disk
  /// store and the in-memory dlopen index -- is shared across requests
  /// and workers.
  std::string CacheDir;
  /// Retain every finished request's span tree in the service-wide
  /// SpanSink so `matcoald --trace-out` can write one merged Chrome
  /// trace at shutdown. Off by default: per-request spans are always
  /// recorded (they are cheap and feed the flight recorder), but only a
  /// trace-collecting daemon should accumulate them for the run's
  /// lifetime.
  bool KeepSpans = false;
};

/// One compile-and-run request, decoded from the NDJSON envelope.
struct ServiceRequest {
  std::string Id;
  std::string Source;
  std::string Entry = "main";
  /// Per-request fault injection: a stage name ("gctd", ...), same
  /// vocabulary as MATCOAL_FAULT. Unknown names are a protocol error
  /// listing the valid stages, mirroring the env var's loud validation.
  std::string Fault;
  /// Wall-clock deadline in ms, measured from admission; -1 = use the
  /// server default, 0 = explicitly none.
  std::int64_t DeadlineMs = -1;
  std::uint64_t Seed = 20030609;
  bool NoFuse = false;
  bool NoRanges = false;
  /// Run under the storage profiler and attach the plan-drift verdict
  /// counts to the response.
  bool Profile = false;
  /// The "lint" op: compile with the matlint checks (plus the matvet
  /// plan-audit group) and return the diagnostics instead of running.
  bool LintOnly = false;
  /// Run on the in-process native tier (shared-object artifact cache,
  /// mcrt ABI); anything that prevents it degrades loudly to the VM and
  /// the response's `tier` field names what actually ran.
  bool Native = false;
  /// Worker threads for the run's kernel loops (VM parallel regions and
  /// mcrt's pool on the native tier). 0 = resolve the server's
  /// environment default ($MATCOAL_THREADS) exactly like `matcoalc
  /// --threads`; values clamp to [1, 64]. Output is byte-identical at
  /// any thread count.
  int Threads = 0;
  /// Attach the request's span tree (queue wait, compile stages, tier
  /// dispatch, run) to the response envelope as a nested "spans" block.
  bool Trace = false;

  /// Decodes the protocol envelope; returns false with \p Error set on a
  /// malformed request (missing source, mistyped fields).
  static bool fromJson(const JsonValue &V, ServiceRequest &Out,
                       std::string &Error);
};

/// Classification of a response, so clients switch on a field instead of
/// parsing messages (the response-envelope analogue of TrapKind).
enum class ResponseKind {
  OK,           ///< Compiled and ran; output attached.
  Backpressure, ///< Queue full; retry after RetryAfterMs.
  Protocol,     ///< Malformed request envelope or bad fault name.
  CompileError, ///< Diagnostics rejected the source.
  Trap,         ///< Execution trapped (Trap names the TrapKind).
  Deadline,     ///< Deadline expired (in queue, compile, or run).
  Internal,     ///< Unexpected exception; request isolated, server fine.
  Shutdown,     ///< Service stopped before the request ran.
};

const char *responseKindName(ResponseKind K);

/// One response envelope.
struct ServiceResponse {
  std::string Id;
  ResponseKind Kind = ResponseKind::Internal;
  bool OK = false;
  std::string Rung;  ///< degradeLevelName once a compile produced a program.
  /// execTierName of the tier that actually produced the run, set for
  /// native-requested runs: "native", or "vm-static" after a loud
  /// degradation (the Degraded remark rides in the counters' session).
  std::string Tier;
  std::string Trap;  ///< trapKindName when Kind == Trap or Deadline.
  std::string Error; ///< Human-readable; carries "line N (op)" provenance.
  std::string Output;
  std::int64_t RetryAfterMs = 0; ///< Set when Kind == Backpressure.
  std::uint64_t Ops = 0;
  double CompileSeconds = 0;
  double RunSeconds = 0;
  std::int64_t QueueMs = 0;
  int Worker = -1;
  /// Plan-vs-actual drift report when the request asked for profiling;
  /// empty otherwise.
  std::string DriftReport;
  /// Lint findings for a LintOnly request, in the same
  /// {file,line,col,rule,severity,func,msg} shape `matcoalc --lint-json`
  /// prints; HasLint distinguishes "ran, clean" from "not requested".
  bool HasLint = false;
  std::vector<LintDiag> Lint;
  /// Per-request compile/run counters (the request Observer's registry).
  std::vector<std::pair<std::string, std::int64_t>> Counters;
  /// Server-assigned stable request id ("req-N", monotone per service),
  /// echoed in every envelope so client logs, the merged Chrome trace,
  /// and the flight recorder line up on one key.
  std::string RequestId;
  /// The request's span tree as a nested JSON object (SpanRecorder
  /// treeJson), attached when the request asked for `"trace": true`.
  std::string SpansJson;

  JsonValue toJson() const;
};

/// The worker-pool service. Construction spawns the pool; destruction
/// (or shutdown()) closes the queue, finishes accepted work, and joins.
class CompileService {
public:
  using Callback = std::function<void(ServiceResponse)>;

  explicit CompileService(ServiceConfig Cfg);
  ~CompileService();
  CompileService(const CompileService &) = delete;
  CompileService &operator=(const CompileService &) = delete;

  /// Admits a request. Returns false when the queue is full or the
  /// service is shutting down -- the caller then sends
  /// `backpressureResponse(R)` (no callback will fire). On true, \p Done
  /// fires exactly once, on a worker thread, when the request completes.
  bool submit(ServiceRequest R, Callback Done);

  /// Processes a request synchronously on the calling thread, bypassing
  /// the queue. This is the serial oracle the stress tests compare
  /// against and the engine behind `matcoalc --timeout-ms`-style one
  /// shots; it applies the same isolation and deadline rules.
  ServiceResponse processNow(const ServiceRequest &R);

  /// The rejection envelope for a request `submit` refused.
  ServiceResponse backpressureResponse(const ServiceRequest &R) const;

  /// Blocks until every accepted request has completed.
  void drain();

  /// Stops admissions, finishes accepted work, joins the pool.
  /// Idempotent.
  void shutdown();

  /// Server-wide aggregate: svc.* counters plus the merged per-request
  /// compile/run counters, live queue-depth/in-flight gauges, and
  /// latency-histogram summaries, as a statsJson-style object.
  std::string statsJson() const;

  /// The aggregate in Prometheus text exposition format (the `metrics`
  /// op): counters, the two gauges, and every latency histogram as a
  /// `_bucket`/`_sum`/`_count` family with p50/p95/p99 quantile lines.
  std::string metricsText() const;

  /// The flight recorder's surviving ring, as structured JSON (the
  /// `dump` op; also written on shutdown by `matcoald --flight-dump`).
  std::string flightDumpJson() const { return Flight.dumpJson(); }

  /// The merged multi-request Chrome trace collected when
  /// ServiceConfig::KeepSpans is set (`matcoald --trace-out`).
  std::string chromeTraceJson() const { return Sink.chromeJson(); }

  std::size_t queueDepth() const { return Queue.size(); }
  std::size_t inFlightNow() const {
    std::lock_guard<std::mutex> Lock(FlightMu);
    return InFlight;
  }
  const ServiceConfig &config() const { return Cfg; }

private:
  struct Job {
    ServiceRequest Req;
    Callback Done;
    std::int64_t AdmittedMicros = 0;
    std::int64_t DeadlineAbsMicros = 0; ///< 0 = none.
  };

  void workerLoop(int WorkerId);
  ServiceResponse process(const ServiceRequest &R,
                          std::int64_t DeadlineAbsMicros, int WorkerId,
                          std::int64_t AdmittedMicros);
  ServiceResponse processInner(const ServiceRequest &R,
                               std::int64_t DeadlineAbsMicros, int WorkerId,
                               std::int64_t QueueMs, Observer &Obs,
                               SpanRecorder &Rec);
  void finishJob(const Job &J, ServiceResponse Resp);
  std::int64_t deadlineAbsFor(const ServiceRequest &R,
                              std::int64_t NowMicros) const;
  void foldStats(const ServiceResponse &Resp, const Observer &Obs,
                 std::int64_t E2eMicros);

  ServiceConfig Cfg;
  JobQueue<Job> Queue;
  std::vector<std::thread> Pool;
  std::atomic<bool> Stopped{false};

  // Drain accounting: accepted-but-unfinished jobs.
  mutable std::mutex FlightMu;
  std::condition_variable FlightCV;
  std::size_t InFlight = 0;

  // Server-wide aggregate. StatRegistry itself is per-session (see
  // Observe.h); this instance is the documented exception, and StatsMu
  // is the lock that makes it one.
  mutable std::mutex StatsMu;
  StatRegistry Agg;

  // The native tier's engine: one per service, so the artifact cache is
  // shared across requests and workers (the engine's index mutex and the
  // process-wide run mutex make that safe; see NativeEngine.h).
  NativeEngine Native;

  // Request-id source; mutable so even the const backpressure envelope
  // builder can stamp the rejection it hands back.
  mutable std::atomic<std::uint64_t> NextReq{0};

  // The merged-trace collector (fed only under Cfg.KeepSpans) and the
  // always-on flight recorder; both are internally synchronized.
  SpanSink Sink;
  FlightRecorder Flight;
};

} // namespace matcoal

#endif // MATCOAL_SERVICE_SERVICE_H
