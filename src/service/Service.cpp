//===- Service.cpp - Fault-isolated concurrent compile service ------------===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//

#include "service/Service.h"

#include "observe/RuntimeProfiler.h"

#include <cctype>
#include <exception>
#include <sstream>

using namespace matcoal;

const char *matcoal::responseKindName(ResponseKind K) {
  switch (K) {
  case ResponseKind::OK:
    return "ok";
  case ResponseKind::Backpressure:
    return "backpressure";
  case ResponseKind::Protocol:
    return "protocol-error";
  case ResponseKind::CompileError:
    return "compile-error";
  case ResponseKind::Trap:
    return "trap";
  case ResponseKind::Deadline:
    return "deadline";
  case ResponseKind::Internal:
    return "internal-error";
  case ResponseKind::Shutdown:
    return "shutdown";
  }
  return "internal-error";
}

//===----------------------------------------------------------------------===//
// Envelope codecs
//===----------------------------------------------------------------------===//

bool ServiceRequest::fromJson(const JsonValue &V, ServiceRequest &Out,
                              std::string &Error) {
  if (!V.isObject()) {
    Error = "request must be a JSON object";
    return false;
  }
  Out = ServiceRequest();
  Out.Id = V.get("id").asString();
  if (!V.has("source") ||
      V.get("source").kind() != JsonValue::Kind::String) {
    Error = "request is missing a string 'source' field";
    return false;
  }
  Out.Source = V.get("source").asString();
  if (V.has("entry"))
    Out.Entry = V.get("entry").asString();
  if (Out.Entry.empty())
    Out.Entry = "main";
  Out.Fault = V.get("fault").asString();
  if (V.has("deadline_ms")) {
    Out.DeadlineMs = V.get("deadline_ms").asInt(-1);
    if (Out.DeadlineMs < 0) {
      Error = "'deadline_ms' must be a non-negative number";
      return false;
    }
  }
  if (V.has("seed"))
    Out.Seed = static_cast<std::uint64_t>(V.get("seed").asInt(20030609));
  if (V.has("threads")) {
    Out.Threads = static_cast<int>(V.get("threads").asInt(0));
    if (Out.Threads < 0 || Out.Threads > 64) {
      Error = "'threads' must be a number in [0, 64] (0 = server default)";
      return false;
    }
  }
  Out.Trace = V.get("trace").asBool(false);
  Out.NoFuse = V.get("no_fuse").asBool(false);
  Out.NoRanges = V.get("no_ranges").asBool(false);
  Out.Profile = V.get("profile").asBool(false);
  Out.LintOnly = V.get("lint").asBool(false);
  Out.Native = V.get("native").asBool(false);
  return true;
}

JsonValue ServiceResponse::toJson() const {
  JsonValue O = JsonValue::object();
  if (!Id.empty())
    O.set("id", JsonValue::str(Id));
  if (!RequestId.empty())
    O.set("request_id", JsonValue::str(RequestId));
  O.set("ok", JsonValue::boolean(OK));
  O.set("kind", JsonValue::str(responseKindName(Kind)));
  if (Kind == ResponseKind::Backpressure) {
    O.set("rejected", JsonValue::boolean(true));
    O.set("retry_after_ms",
          JsonValue::number(static_cast<double>(RetryAfterMs)));
    return O;
  }
  if (!Rung.empty())
    O.set("rung", JsonValue::str(Rung));
  if (!Tier.empty())
    O.set("tier", JsonValue::str(Tier));
  if (!Trap.empty())
    O.set("trap", JsonValue::str(Trap));
  if (!Error.empty())
    O.set("error", JsonValue::str(Error));
  if (OK)
    O.set("output", JsonValue::str(Output));
  O.set("ops", JsonValue::number(static_cast<double>(Ops)));
  O.set("compile_ms", JsonValue::number(CompileSeconds * 1000.0));
  O.set("run_ms", JsonValue::number(RunSeconds * 1000.0));
  O.set("queue_ms", JsonValue::number(static_cast<double>(QueueMs)));
  if (Worker >= 0)
    O.set("worker", JsonValue::number(Worker));
  if (!DriftReport.empty())
    O.set("drift", JsonValue::str(DriftReport));
  if (HasLint) {
    // Same record shape as `matcoalc --lint-json`, one tool envelope.
    JsonValue L = JsonValue::array();
    for (const LintDiag &D : Lint) {
      JsonValue E = JsonValue::object();
      E.set("line", JsonValue::number(D.Loc.Line));
      E.set("col", JsonValue::number(D.Loc.Col));
      E.set("rule", JsonValue::str(lintCheckId(D.Check)));
      E.set("severity", JsonValue::str(lintSeverity(D.Check)));
      E.set("func", JsonValue::str(D.Func));
      E.set("msg", JsonValue::str(D.Msg));
      L.push(std::move(E));
    }
    O.set("lint", std::move(L));
  }
  if (!Counters.empty()) {
    JsonValue C = JsonValue::object();
    for (const auto &[Name, Value] : Counters)
      C.set(Name, JsonValue::number(static_cast<double>(Value)));
    O.set("counters", std::move(C));
  }
  if (!SpansJson.empty()) {
    // The recorder emitted this block itself (observe/ cannot depend on
    // the service's JsonValue); parse so it nests instead of stringifying.
    std::string Err;
    if (std::optional<JsonValue> S = JsonValue::parse(SpansJson, Err))
      O.set("spans", std::move(*S));
  }
  return O;
}

//===----------------------------------------------------------------------===//
// CompileService
//===----------------------------------------------------------------------===//

CompileService::CompileService(ServiceConfig C)
    : Cfg(C), Queue(C.QueueCap == 0 ? 1 : C.QueueCap), Native(C.CacheDir) {
  if (Cfg.Workers == 0)
    Cfg.Workers = 1;
  Pool.reserve(Cfg.Workers);
  for (unsigned I = 0; I < Cfg.Workers; ++I)
    Pool.emplace_back([this, I] { workerLoop(static_cast<int>(I)); });
}

CompileService::~CompileService() { shutdown(); }

std::int64_t CompileService::deadlineAbsFor(const ServiceRequest &R,
                                            std::int64_t NowMicros) const {
  std::int64_t Ms = R.DeadlineMs >= 0 ? R.DeadlineMs : Cfg.DefaultDeadlineMs;
  return Ms > 0 ? NowMicros + Ms * 1000 : 0;
}

bool CompileService::submit(ServiceRequest R, Callback Done) {
  if (Stopped.load(std::memory_order_acquire))
    return false;
  Job J;
  std::int64_t Now = cancelNowMicros();
  J.AdmittedMicros = Now;
  J.DeadlineAbsMicros = deadlineAbsFor(R, Now);
  J.Req = std::move(R);
  J.Done = std::move(Done);
  // Count the job as in flight *before* it is visible to a worker, or a
  // fast worker could finish it while InFlight still reads 0 and a
  // concurrent drain() would return early.
  {
    std::lock_guard<std::mutex> Lock(FlightMu);
    ++InFlight;
  }
  if (Queue.tryPush(std::move(J)))
    return true;
  {
    std::lock_guard<std::mutex> Lock(FlightMu);
    --InFlight;
  }
  FlightCV.notify_all();
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    Agg.add("svc.requests.rejected");
  }
  return false;
}

ServiceResponse
CompileService::backpressureResponse(const ServiceRequest &R) const {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.RequestId =
      "req-" + std::to_string(NextReq.fetch_add(1, std::memory_order_relaxed) +
                              1);
  Resp.Kind = ResponseKind::Backpressure;
  Resp.OK = false;
  Resp.RetryAfterMs = Cfg.RetryAfterMs;
  Resp.Error = "queue full (" + std::to_string(Queue.capacity()) +
               " pending); retry after " + std::to_string(Cfg.RetryAfterMs) +
               " ms";
  return Resp;
}

ServiceResponse CompileService::processNow(const ServiceRequest &R) {
  std::int64_t Now = cancelNowMicros();
  return process(R, deadlineAbsFor(R, Now), /*WorkerId=*/-1,
                 /*AdmittedMicros=*/Now);
}

void CompileService::workerLoop(int WorkerId) {
  Job J;
  while (Queue.pop(J)) {
    ServiceResponse Resp;
    try {
      Resp = process(J.Req, J.DeadlineAbsMicros, WorkerId, J.AdmittedMicros);
    } catch (...) {
      // process() has its own catch-everything; this is the belt to its
      // suspenders (e.g. bad_alloc building the response).
      Resp = ServiceResponse();
      Resp.Id = J.Req.Id;
      Resp.Kind = ResponseKind::Internal;
      Resp.Error = "internal error while building response";
      Resp.Worker = WorkerId;
    }
    finishJob(J, std::move(Resp));
    J = Job(); // Drop the source/closure before blocking in pop again.
  }
}

void CompileService::finishJob(const Job &J, ServiceResponse Resp) {
  if (J.Done) {
    try {
      J.Done(std::move(Resp));
    } catch (...) {
      // A throwing client callback must not take the worker down.
    }
  }
  {
    std::lock_guard<std::mutex> Lock(FlightMu);
    --InFlight;
  }
  FlightCV.notify_all();
}

ServiceResponse CompileService::process(const ServiceRequest &R,
                                        std::int64_t DeadlineAbsMicros,
                                        int WorkerId,
                                        std::int64_t AdmittedMicros) {
  // Everything below is per-session state: this request's observer, span
  // recorder, profiler, diagnostics, and (inside compileSource) its own
  // SymExprContext. Nothing here is shared across workers.
  Observer Obs;
  SpanRecorder Rec;
  std::string Rid =
      "req-" + std::to_string(NextReq.fetch_add(1, std::memory_order_relaxed) +
                              1);
  std::int64_t Start = cancelNowMicros();
  std::int64_t QueueMs =
      AdmittedMicros > 0 ? (Start - AdmittedMicros) / 1000 : 0;
  // The root span opens at *admission*: queue wait is part of the
  // request's story (and of its deadline), so the tree starts there.
  std::uint64_t RootStart = static_cast<std::uint64_t>(
      AdmittedMicros > 0 ? AdmittedMicros : Start);
  int Root = Rec.begin("request", RootStart);
  int QSpan = Rec.begin("queue", RootStart);
  Rec.end(QSpan, static_cast<std::uint64_t>(Start));

  ServiceResponse Resp =
      processInner(R, DeadlineAbsMicros, WorkerId, QueueMs, Obs, Rec);
  Rec.end(Root);
  Resp.RequestId = Rid;
  if (R.Trace)
    Resp.SpansJson = Rec.treeJson();

  // Flight recorder: one lifecycle event per request; failed outcomes
  // (trap, deadline, internal) additionally leave their whole span tree
  // in the ring so a post-mortem dump shows where the time went.
  const char *KindName = responseKindName(Resp.Kind);
  bool Failed = Resp.Kind == ResponseKind::Trap ||
                Resp.Kind == ResponseKind::Deadline ||
                Resp.Kind == ResponseKind::Internal;
  if (Failed) {
    for (const Span &S : Rec.spans())
      Flight.record("span", Rid, S.Name, KindName, WorkerId);
    if (!Resp.Trap.empty())
      Flight.record("trap", Rid, Resp.Trap, Resp.Error, WorkerId);
  }
  Flight.record("request", Rid, R.Id, KindName, WorkerId);

  if (Cfg.KeepSpans)
    Sink.add(Rid, WorkerId, Rec.spans());

  for (const auto &[Name, Value] : Obs.Stats.all())
    Resp.Counters.emplace_back(Name, Value);
  // Single exit: every outcome -- protocol error, queue expiry, compile
  // failure, trap, success -- reaches the aggregate exactly once.
  foldStats(Resp, Obs, cancelNowMicros() - static_cast<std::int64_t>(RootStart));
  return Resp;
}

ServiceResponse CompileService::processInner(const ServiceRequest &R,
                                             std::int64_t DeadlineAbsMicros,
                                             int WorkerId,
                                             std::int64_t QueueMs,
                                             Observer &Obs,
                                             SpanRecorder &Rec) {
  ServiceResponse Resp;
  Resp.Id = R.Id;
  Resp.Worker = WorkerId;
  Resp.QueueMs = QueueMs;

  // Per-request fault names get the same loud validation as the env var.
  if (!isValidFaultName(R.Fault)) {
    Resp.Kind = ResponseKind::Protocol;
    Resp.Error = "unrecognized fault stage '" + R.Fault +
                 "' (valid stages: " + std::string(validCompileStageNames()) +
                 ", or 'none')";
    return Resp;
  }

  CancelToken Tok;
  if (DeadlineAbsMicros > 0) {
    Tok.setDeadlineMicros(DeadlineAbsMicros);
    // The deadline clock started at admission; a request can die of old
    // age in the queue without burning a compile.
    if (Tok.expired()) {
      Resp.Kind = ResponseKind::Deadline;
      Resp.Trap = trapKindName(TrapKind::Deadline);
      Resp.Error = "deadline exceeded while queued";
      return Resp;
    }
  }

  RuntimeProfiler Prof;
  Diagnostics Diags;
  try {
    CompileOptions O;
    O.Entry = R.Entry;
    // plan-corrupt is a valid fault name but not a pipeline stage: it
    // breaks the verified plan so the static auditor must catch it.
    if (R.Fault == "plan-corrupt")
      O.InjectPlanCorrupt = true;
    else
      O.InjectFault =
          R.Fault.empty() ? CompileStage::None : parseCompileStage(R.Fault);
    O.Lint = R.LintOnly;
    O.NoFuse = R.NoFuse;
    O.Threads = R.Threads;
    O.Analysis = R.NoRanges ? AnalysisLevel::None : AnalysisLevel::Ranges;
    O.Obs = &Obs;
    O.Cancel = DeadlineAbsMicros > 0 ? &Tok : nullptr;
    O.OpBudget = Cfg.OpBudget;
    O.HeapLimit = Cfg.HeapLimit;
    O.RecursionLimit = Cfg.RecursionLimit;

    // Pipeline-stage PassTimer events recorded during the compile become
    // the compile span's children, so the tree shows parse -> lower ->
    // ssa -> ... -> audit -> invert without the driver knowing about
    // spans at all.
    std::size_t CompileTraceMark = Obs.Trace.size();
    int CompileSpan = Rec.begin("compile");
    PassTimer CompileT(nullptr, "svc.compile");
    std::unique_ptr<CompiledProgram> P = compileSource(R.Source, Diags, O);
    CompileT.stop();
    for (std::size_t I = CompileTraceMark; I < Obs.Trace.size(); ++I)
      Rec.leaf(Obs.Trace[I].Name, Obs.Trace[I].StartMicros,
               Obs.Trace[I].DurMicros);
    Rec.end(CompileSpan);
    Resp.CompileSeconds = CompileT.seconds();

    if (!P) {
      if (DeadlineAbsMicros > 0 && Tok.expired()) {
        Resp.Kind = ResponseKind::Deadline;
        Resp.Trap = trapKindName(TrapKind::Deadline);
      } else {
        Resp.Kind = ResponseKind::CompileError;
      }
      Resp.Error = Diags.str();
      return Resp;
    }

    Resp.Rung = degradeLevelName(P->level());

    // The lint op stops here: diagnostics ride home, nothing runs.
    if (R.LintOnly) {
      Resp.Kind = ResponseKind::OK;
      Resp.OK = true;
      Resp.HasLint = true;
      Resp.Lint = P->lintDiags();
      return Resp;
    }

    if (R.Profile)
      P->Prof = &Prof;

    // The dispatch span covers tier selection and the run; trace events
    // the tier emits while running (native cache lookup, cc compile)
    // nest under the run span.
    int DispatchSpan = Rec.begin("dispatch");
    std::size_t RunTraceMark = Obs.Trace.size();
    int RunSpan = Rec.begin("run");
    PassTimer RunT(nullptr, "svc.run");
    ExecResult X;
    if (R.Native) {
      std::size_t RemarksBefore = Obs.Remarks.size();
      X = Native.run(*P, R.Seed);
      // The engine degrades loudly: a native Degraded remark appended
      // during this run means the VM produced the output we are about to
      // return, and the tier field should say so.
      bool Degraded = false;
      for (std::size_t I = RemarksBefore; I < Obs.Remarks.size(); ++I)
        Degraded |= Obs.Remarks[I].Pass == "native" &&
                    Obs.Remarks[I].Kind == RemarkKind::Degraded;
      Resp.Tier =
          execTierName(Degraded ? ExecTier::StaticVM : ExecTier::Native);
    } else {
      X = P->runStatic(R.Seed);
    }
    RunT.stop();
    for (std::size_t I = RunTraceMark; I < Obs.Trace.size(); ++I)
      Rec.leaf(Obs.Trace[I].Name, Obs.Trace[I].StartMicros,
               Obs.Trace[I].DurMicros);
    Rec.end(RunSpan);
    Rec.end(DispatchSpan);
    Resp.RunSeconds = RunT.seconds();
    Resp.Ops = X.Ops;

    if (!X.OK) {
      Resp.Kind = X.Trap == TrapKind::Deadline ? ResponseKind::Deadline
                                               : ResponseKind::Trap;
      Resp.Trap = trapKindName(X.Trap);
      Resp.Error = X.Error;
    } else {
      Resp.Kind = ResponseKind::OK;
      Resp.OK = true;
      Resp.Output = X.Output;
      if (R.Profile)
        Resp.DriftReport = driftReportFor(*P, Prof, &Obs);
    }
  } catch (const MatError &E) {
    // Run modes normally convert traps to !OK results; a MatError this
    // far up means a path outside those guards. Classify, don't die.
    Resp.Kind = E.Kind == TrapKind::Deadline ? ResponseKind::Deadline
                                             : ResponseKind::Trap;
    Resp.Trap = trapKindName(E.Kind);
    Resp.Error = E.what();
  } catch (const std::exception &E) {
    Resp.Kind = ResponseKind::Internal;
    Resp.Error = std::string("internal error: ") + E.what();
  } catch (...) {
    Resp.Kind = ResponseKind::Internal;
    Resp.Error = "internal error: unknown exception";
  }
  return Resp;
}

void CompileService::foldStats(const ServiceResponse &Resp,
                               const Observer &Obs,
                               std::int64_t E2eMicros) {
  // Native cc time, when one actually ran this request (the counter is
  // whole seconds; the trace event has the microseconds).
  std::uint64_t NativeCcMicros = 0;
  bool NativeCc = false;
  for (const TraceEvent &E : Obs.Trace)
    if (E.Name == "native.cc") {
      NativeCcMicros += E.DurMicros;
      NativeCc = true;
    }

  std::lock_guard<std::mutex> Lock(StatsMu);
  Agg.add("svc.requests.completed");
  Agg.add(std::string("svc.kind.") + responseKindName(Resp.Kind));
  if (!Resp.Rung.empty())
    Agg.add("svc.rung." + Resp.Rung);
  if (!Resp.Trap.empty())
    Agg.add("svc.trap." + Resp.Trap);
  // The four request-latency histograms (+ native compile when it
  // happened), all in microseconds; the `metrics` op renders them as
  // Prometheus families with p50/p95/p99.
  Agg.sample("svc.e2e_us", static_cast<std::uint64_t>(
                               E2eMicros > 0 ? E2eMicros : 0));
  Agg.sample("svc.queue_us",
             static_cast<std::uint64_t>(Resp.QueueMs > 0 ? Resp.QueueMs : 0) *
                 1000);
  Agg.sample("svc.compile_us",
             static_cast<std::uint64_t>(Resp.CompileSeconds * 1e6));
  Agg.sample("svc.run_us", static_cast<std::uint64_t>(Resp.RunSeconds * 1e6));
  if (NativeCc)
    Agg.sample("svc.native_compile_us", NativeCcMicros);
  Agg.merge(Obs.Stats);
}

void CompileService::drain() {
  std::unique_lock<std::mutex> Lock(FlightMu);
  FlightCV.wait(Lock, [&] { return InFlight == 0; });
}

void CompileService::shutdown() {
  bool Expected = false;
  if (!Stopped.compare_exchange_strong(Expected, true))
    return;
  Queue.close(); // Accepted jobs still drain (close-then-drain semantics).
  for (std::thread &T : Pool)
    if (T.joinable())
      T.join();
}

std::string CompileService::statsJson() const {
  JsonValue O = JsonValue::object();
  JsonValue Counters = JsonValue::object();
  JsonValue Hists = JsonValue::object();
  {
    std::lock_guard<std::mutex> Lock(StatsMu);
    for (const auto &[Name, Value] : Agg.all())
      Counters.set(Name, JsonValue::number(static_cast<double>(Value)));
    for (const auto &[Name, H] : Agg.histograms()) {
      JsonValue E = JsonValue::object();
      E.set("count", JsonValue::number(static_cast<double>(H.count())));
      E.set("sum", JsonValue::number(static_cast<double>(H.sum())));
      E.set("max", JsonValue::number(static_cast<double>(H.max())));
      E.set("p50", JsonValue::number(H.quantile(0.5)));
      E.set("p95", JsonValue::number(H.quantile(0.95)));
      E.set("p99", JsonValue::number(H.quantile(0.99)));
      Hists.set(Name, std::move(E));
    }
  }
  O.set("counters", std::move(Counters));
  // Live gauges: what is *now*, next to the counters' what-has-been.
  JsonValue G = JsonValue::object();
  G.set("queue_depth", JsonValue::number(static_cast<double>(Queue.size())));
  G.set("inflight", JsonValue::number(static_cast<double>(inFlightNow())));
  O.set("gauges", std::move(G));
  O.set("histograms", std::move(Hists));
  JsonValue C = JsonValue::object();
  C.set("workers", JsonValue::number(Cfg.Workers));
  C.set("queue_capacity",
        JsonValue::number(static_cast<double>(Queue.capacity())));
  C.set("queue_depth", JsonValue::number(static_cast<double>(Queue.size())));
  C.set("default_deadline_ms",
        JsonValue::number(static_cast<double>(Cfg.DefaultDeadlineMs)));
  C.set("retry_after_ms",
        JsonValue::number(static_cast<double>(Cfg.RetryAfterMs)));
  O.set("config", std::move(C));
  return O.dump();
}

/// "svc.e2e_us" -> "matcoal_svc_e2e_us": Prometheus metric names allow
/// [a-zA-Z0-9_:] only.
static std::string promName(const std::string &Name) {
  std::string Out = "matcoal_";
  for (char Ch : Name)
    Out += (std::isalnum(static_cast<unsigned char>(Ch)) || Ch == '_')
               ? Ch
               : '_';
  return Out;
}

std::string CompileService::metricsText() const {
  std::ostringstream OS;
  OS << "# matcoald service metrics (Prometheus text exposition)\n";
  OS << "# TYPE matcoal_queue_depth gauge\n";
  OS << "matcoal_queue_depth " << Queue.size() << "\n";
  OS << "# TYPE matcoal_inflight_requests gauge\n";
  OS << "matcoal_inflight_requests " << inFlightNow() << "\n";
  OS << "# TYPE matcoal_flight_events_total counter\n";
  OS << "matcoal_flight_events_total " << Flight.recorded() << "\n";
  std::lock_guard<std::mutex> Lock(StatsMu);
  // Every aggregate counter as one family, keyed by label, so the
  // pinned-schema names stay greppable verbatim.
  OS << "# TYPE matcoal_counter counter\n";
  for (const auto &[Name, Value] : Agg.all())
    OS << "matcoal_counter{name=\"" << Name << "\"} " << Value << "\n";
  for (const auto &[Name, H] : Agg.histograms())
    OS << H.prometheusText(promName(Name));
  return OS.str();
}
