//===- VM.cpp -------------------------------------------------------------===//

#include "vm/VM.h"

#include "analysis/InPlaceLegality.h"
#include "analysis/Liveness.h"
#include "observe/RuntimeProfiler.h"
#include "runtime/BufferPool.h"
#include "runtime/ThreadPool.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <new>

using namespace matcoal;

namespace {

/// Hands a dead value's element buffers to the active pool (or frees them
/// when no pool is installed). Only heap-metered storage may pass through
/// here; pooled bytes are charged to the meter by the pool itself.
void recycleBuffers(Array &A) {
  if (!A.Re.empty())
    poolGive(std::move(A.Re));
  if (!A.Im.empty())
    poolGive(std::move(A.Im));
}

bool conforming(const Array &A, const Array &B) {
  size_t N = std::max(A.dims().size(), B.dims().size());
  for (size_t D = 0; D < N; ++D)
    if (A.dim(D) != B.dim(D))
      return false;
  return true;
}

/// The dynamic half of the destructive-execution gate: a real, non-char op
/// on scalar or shape-conforming values -- binaryOpInto's fast path. The
/// static half (opcode family, operand arity) is the legality oracle's
/// (InPlaceLegality::destructiveLegal); this only checks what cannot be
/// known before the values exist.
bool destructiveValueOK(const Array &A, const Array &B) {
  if (A.isComplex() || B.isComplex() || A.isChar() || B.isChar())
    return false;
  return A.isScalar() || B.isScalar() || conforming(A, B);
}

} // namespace

VM::VM(const Module &M, ExecModel Model,
       std::map<const Function *, StoragePlan> Plans, std::uint64_t Seed)
    : M(M), Model(Model), Plans(std::move(Plans)), Seed(Seed) {
  buildInfo();
}

void VM::buildInfo() {
  for (const auto &F : M.Functions) {
    FunctionInfo &Info = Infos[F.get()];
    auto PIt = Plans.find(F.get());
    Info.Plan = PIt != Plans.end() ? &PIt->second : nullptr;

    // Group SSA versions by source-level base name (for the mcc model's
    // free-on-reassignment discipline).
    Info.BaseIdOf.assign(F->numVars(), -1);
    std::map<std::string, int> BaseIds;
    for (unsigned V = 0; V < F->numVars(); ++V) {
      const VarInfo &VI = F->var(static_cast<VarId>(V));
      if (VI.IsTemp || VI.Version < 0)
        continue;
      auto [It, New] = BaseIds.emplace(
          VI.Base, static_cast<int>(Info.VersionsOfBase.size()));
      if (New)
        Info.VersionsOfBase.emplace_back();
      Info.BaseIdOf[V] = It->second;
      Info.VersionsOfBase[It->second].push_back(static_cast<VarId>(V));
    }

    // Death points: a variable dies after the instruction of its last use
    // (or its definition, if the result is never used).
    LivenessInfo Live = computeLiveness(*F);
    Info.Deaths.resize(F->Blocks.size());
    for (const auto &BB : F->Blocks) {
      auto &BlockDeaths = Info.Deaths[BB->Id];
      BlockDeaths.resize(BB->Instrs.size());
      BitVector LiveNow = Live.LiveOut[BB->Id];
      for (size_t Idx = BB->Instrs.size(); Idx-- > 0;) {
        const Instr &I = BB->Instrs[Idx];
        for (VarId R : I.Results)
          if (!LiveNow.test(R))
            BlockDeaths[Idx].push_back(R); // Dead definition.
        for (VarId R : I.Results)
          LiveNow.reset(R);
        for (VarId U : I.Operands)
          if (!LiveNow.test(U)) {
            BlockDeaths[Idx].push_back(U); // Last use.
            LiveNow.set(U);
          }
      }
    }
  }
}

void VM::primeLegality() {
  DestLegalCache.clear();
  SubsInPlaceCache.clear();
  if (Model != ExecModel::Static)
    return;
  // Decide every destructive-execution site up front: one oracle query per
  // site (memoized, journaled, counted on the oracle side), so the
  // instruction loop only reads cached verdicts and repeated executions of
  // one site cost nothing. Without an attached oracle (direct VM
  // construction in unit tests) the oracle's static tables stand in, so
  // the policy still has a single home.
  for (const auto &FP : M.Functions) {
    const Function &F = *FP;
    const StoragePlan *Plan = Infos[FP.get()].Plan;
    if (!Plan)
      continue;
    SlotView Slots;
    Slots.SameSlot = [Plan](VarId U, VarId V) { return Plan->sameSlot(U, V); };
    Slots.Tag = LegalTag ? LegalTag : Plan; // Verdicts cache per plan: this
                                            // VM's plan may be the identity
                                            // plan while a sibling coalesced.
    for (const auto &BB : F.Blocks)
      for (const Instr &I : BB->Instrs) {
        if (InPlaceLegality::destructiveOp(I.Op)) {
          bool OK;
          if (Legal) {
            OK = Legal->destructiveLegal(F, I);
            Legal->stealLegal(F, I, 0);
            Legal->stealLegal(F, I, 1);
          } else {
            OK = I.Results.size() == 1 && I.Operands.size() == 2;
          }
          DestLegalCache[&I] = OK;
        } else if (I.Op == Opcode::Subsasgn && I.Results.size() == 1 &&
                   !I.Operands.empty()) {
          bool OK = Legal ? Legal->subsasgnInPlace(F, I, Slots)
                          : Plan->sameSlot(I.result(), I.Operands[0]);
          SubsInPlaceCache[&I] = OK;
        }
      }
  }
}

ExecResult VM::run(const std::string &Entry, const std::vector<Array> &Args) {
  ExecResult R;
  const Function *F = M.findFunction(Entry);
  if (!F) {
    R.Error = "no function named '" + Entry + "'";
    return R;
  }
  // Reset per-run state.
  Rng = RandState(Seed);
  Out.clear();
  Meter = MemoryMeter();
  OpCount = 0;
  Violations = 0;
  CallDepth = 0;
  InPlaceOps = 0;
  HeapResizes = 0;
  DestReuses = 0;
  BufferSteals = 0;
  ThreadsSpawned = 0;
  ThreadChunks = 0;
  ThreadBusyNs = 0;
  ThreadChunkNs.clear();
  CurLoc = SourceLoc();
  CurOp = Opcode::Jmp;
  primeLegality();

  // Free-list pool for dying Re/Im buffers. Its occupancy is charged to
  // the meter so Figure-2 style averages stay honest; it only runs under
  // the Static model with buffer reuse enabled (--no-fuse turns it off).
  BufferPool Pool;
  Pool.Charge = [this](std::int64_t D) { Meter.poolAdjust(D); };
  Pool.OnReuse = [this] {
    if (Prof)
      Prof->event(ProfEventKind::PoolReuse, OpCount, "", -1, "pool");
  };

  // Traps attribute to the instruction being executed when the IR carried
  // a source location for it (satellite: trap provenance).
  auto NoteTrap = [&] {
    R.TrapLoc = CurLoc;
    if (CurLoc.isValid())
      R.Error = "line " + std::to_string(CurLoc.Line) + " (" +
                opcodeName(CurOp) + "): " + R.Error;
    if (Prof)
      Prof->event(ProfEventKind::Trap, OpCount, Entry, -1, "trap", 0,
                  R.Error);
  };

  auto Start = std::chrono::steady_clock::now();
  try {
    PoolScope Scope(Model == ExecModel::Static && ReuseBuffers ? &Pool
                                                               : nullptr);
    // Kernel loops over ParMinElems elements partition across the
    // worker pool (and poll the run's cancel token at chunk
    // boundaries) for the duration of this run.
    ParConfig PC;
    PC.Threads = Threads;
    PC.Spawned = &ThreadsSpawned;
    PC.Chunks = &ThreadChunks;
    PC.BusyNs = &ThreadBusyNs;
    PC.ChunkNs = &ThreadChunkNs;
    PC.Cancel = Cancel;
    ParScope Par(PC);
    runFunction(*F, Args);
    R.OK = true;
  } catch (const MatError &E) {
    R.Error = E.what();
    R.Trap = E.Kind;
    NoteTrap();
  } catch (const std::bad_alloc &) {
    R.Error = "out of memory";
    R.Trap = TrapKind::OutOfMemory;
    NoteTrap();
  } catch (const std::exception &E) {
    R.Error = std::string("internal error: ") + E.what();
    R.Trap = TrapKind::RuntimeError;
    NoteTrap();
  }
  auto End = std::chrono::steady_clock::now();
  R.WallSeconds = std::chrono::duration<double>(End - Start).count();
  // Retained pool buffers are released (and uncharged) before the final
  // heap snapshot so a finished run reports no residual pool bytes.
  Pool.drain();
  R.Output = Out.str();
  R.Ops = OpCount;
  R.Mem = Meter.finish();
  R.PlanViolations = Violations;
  R.InPlaceOps = InPlaceOps;
  R.HeapResizes = HeapResizes;
  R.DestReuses = DestReuses;
  R.BufferSteals = BufferSteals;
  R.PoolReuses = Pool.reuses();
  R.PoolHeldHwmBytes = Pool.heldBytesHwm();
  R.ThreadsSpawned = ThreadsSpawned;
  R.ThreadChunks = ThreadChunks;
  R.ThreadBusyNs = ThreadBusyNs;
  R.ThreadChunkNs = ThreadChunkNs;
  return R;
}

const Array &VM::valueOf(Frame &Fr, VarId V) const {
  if (Model == ExecModel::Mcc) {
    const auto &Box = Fr.Boxes[V];
    if (!Box)
      throw MatError("use of undefined variable '" + Fr.F->var(V).Name +
                     "'");
    return Box->A;
  }
  int G = Fr.Info->Plan->groupOf(V);
  if (G < 0) {
    auto It = Fr.Extra.find(V);
    if (It == Fr.Extra.end())
      throw MatError("use of undefined variable '" + Fr.F->var(V).Name +
                     "'");
    return It->second;
  }
  return Fr.GroupSlots[G];
}

void VM::tickFor(const Array &Result) {
  Meter.advance(1 + static_cast<std::uint64_t>(Result.dataBytes() / 64));
}

void VM::profGroupSize(Frame &Fr, int G) {
  if (!Prof)
    return;
  Prof->size(OpCount, Fr.F->Name, G, "g" + std::to_string(G),
             Fr.GroupSlots[G].dataBytes());
}

void VM::profGroupEvent(Frame &Fr, ProfEventKind K, int G) {
  if (!Prof)
    return;
  Prof->event(K, OpCount, Fr.F->Name, G, "g" + std::to_string(G));
}

void VM::killVar(Frame &Fr, VarId V) {
  if (Model != ExecModel::Mcc)
    return; // Static groups persist until redefinition or frame pop.
  auto &Box = Fr.Boxes[V];
  if (!Box)
    return;
  if (Box.use_count() == 1)
    Meter.heapAdjust(-Box->Metered);
  Box.reset();
  Fr.DeadNamed[V] = 0;
}

void VM::sweepBase(Frame &Fr, VarId V) {
  int BaseId = Fr.Info->BaseIdOf[V];
  if (BaseId < 0)
    return;
  for (VarId W : Fr.Info->VersionsOfBase[BaseId])
    if (W != V && Fr.DeadNamed[W])
      killVar(Fr, W);
}

void VM::defineMcc(Frame &Fr, VarId V, Array Value) {
  killVar(Fr, V); // Redefinitions (loop copies) release the old box.
  // Reassigning a source name releases the arrays of its SSA-dead
  // earlier versions (mcc's free-on-reassignment).
  sweepBase(Fr, V);
  auto Box = std::make_shared<VM::Box>();
  Box->A = std::move(Value);
  Box->Metered = MxArrayHeaderBytes + Box->A.dataBytes();
  Meter.heapAdjust(Box->Metered);
  Fr.Boxes[V] = std::move(Box);
}

void VM::defineStatic(Frame &Fr, VarId V, Array Value) {
  const StoragePlan &Plan = *Fr.Info->Plan;
  int G = Plan.groupOf(V);
  if (G < 0) {
    // Outside the plan (colon markers, post-GCTD temporaries): a private
    // slot, metered as heap.
    auto It = Fr.Extra.find(V);
    if (It == Fr.Extra.end()) {
      It = Fr.Extra.emplace(V, Array()).first;
    }
    std::int64_t Old = It->second.dataBytes();
    recycleBuffers(It->second);
    It->second = std::move(Value);
    Meter.heapAdjust(It->second.dataBytes() - Old);
    if (Prof)
      Prof->size(OpCount, Fr.F->Name, -1, Fr.F->var(V).Name,
                 It->second.dataBytes());
    return;
  }
  const StorageGroup &Grp = Plan.Groups[G];
  // Heap slots hand their dead buffer to the pool; stack slot storage is
  // metered as frame bytes, so it never enters the (heap-charged) pool.
  if (Grp.K == StorageGroup::Kind::Heap)
    recycleBuffers(Fr.GroupSlots[G]);
  Fr.GroupSlots[G] = std::move(Value);
  if (Grp.K == StorageGroup::Kind::Heap) {
    std::int64_t NewBytes = Fr.GroupSlots[G].dataBytes();
    if (NewBytes != Fr.GroupHeapBytes[G])
      ++HeapResizes;
    Meter.heapAdjust(NewBytes - Fr.GroupHeapBytes[G]);
    Fr.GroupHeapBytes[G] = NewBytes;
  } else if (Fr.GroupSlots[G].dataBytes() > Grp.StackBytes) {
    ++Violations;
  }
  profGroupSize(Fr, G);
}

std::vector<Array> VM::runFunction(const Function &F,
                                   const std::vector<Array> &Args) {
  if (++CallDepth > RecursionLimit) {
    --CallDepth;
    throw MatError("maximum recursion depth exceeded",
                   TrapKind::RecursionDepth);
  }
  auto InfoIt = Infos.find(&F);
  assert(InfoIt != Infos.end());
  Frame Fr;
  Fr.F = &F;
  Fr.Info = &InfoIt->second;

  std::int64_t FramePushBytes = FrameOverheadBytes;
  if (Model == ExecModel::Static) {
    if (!Fr.Info->Plan)
      throw MatError("internal: static model requires a storage plan");
    const StoragePlan &Plan = *Fr.Info->Plan;
    Fr.GroupSlots.resize(Plan.Groups.size());
    Fr.GroupHeapBytes.assign(Plan.Groups.size(), 0);
    FramePushBytes += Plan.FrameBytes;
  } else {
    Fr.Boxes.resize(F.numVars());
    Fr.DeadNamed.assign(F.numVars(), 0);
  }
  Meter.stackAdjust(FramePushBytes);
  Meter.advance(1);

  // Bind parameters.
  if (Args.size() < F.Params.size())
    throw MatError("not enough arguments to " + F.Name);
  for (size_t K = 0; K < F.Params.size(); ++K) {
    if (Model == ExecModel::Mcc) {
      // Arguments are shared handles (copy-on-write), so only a header is
      // charged; the data was metered in the caller.
      auto Box = std::make_shared<VM::Box>();
      Box->A = Args[K];
      Box->Metered = MxArrayHeaderBytes;
      Meter.heapAdjust(Box->Metered);
      Fr.Boxes[F.Params[K]] = std::move(Box);
    } else {
      defineStatic(Fr, F.Params[K], Args[K]);
    }
  }

  std::vector<Array> Outputs;
  BlockId Cur = 0;
  size_t Idx = 0;
  bool Done = false;
  while (!Done) {
    const BasicBlock *BB = F.block(Cur);
    if (Idx >= BB->Instrs.size())
      throw MatError("internal: fell off the end of a block");
    const Instr &I = BB->Instrs[Idx];
    CurLoc = I.Loc;
    CurOp = I.Op;
    if (++OpCount > OpBudget)
      throw MatError("operation budget exceeded (infinite loop?)",
                     TrapKind::OpBudget);
    if (Cancel && (OpCount & CancelCheckMask) == 0 && Cancel->expired())
      throw MatError(Cancel->cancelled() ? "execution cancelled"
                                         : "deadline exceeded",
                     TrapKind::Deadline);
    if (HeapLimit &&
        Meter.currentHeapBytes() + Meter.currentPoolBytes() > HeapLimit)
      throw MatError("heap limit exceeded", TrapKind::HeapLimit);

    BlockId NextBlock = Cur;
    size_t NextIdx = Idx + 1;
    switch (I.Op) {
    case Opcode::Jmp:
      NextBlock = I.Target1;
      NextIdx = 0;
      Meter.advance(1);
      break;
    case Opcode::Br: {
      bool T = valueOf(Fr, I.Operands[0]).truth();
      NextBlock = T ? I.Target1 : I.Target2;
      NextIdx = 0;
      Meter.advance(1);
      break;
    }
    case Opcode::Ret: {
      for (VarId O : I.Operands)
        Outputs.push_back(valueOf(Fr, O));
      Done = true;
      Meter.advance(1);
      break;
    }
    default:
      execInstr(Fr, I, Fr.Info->Deaths[Cur][Idx]);
      break;
    }

    // Apply deaths recorded for this instruction. In the mcc model,
    // compiler temporaries are released at last use, but named variables
    // persist until their source name is reassigned (or the frame pops).
    for (VarId V : Fr.Info->Deaths[Cur][Idx]) {
      if (Model == ExecModel::Mcc && Fr.Info->BaseIdOf[V] >= 0)
        Fr.DeadNamed[V] = 1;
      else
        killVar(Fr, V);
    }

    Cur = NextBlock;
    Idx = NextIdx;
  }

  // Pop the frame.
  if (Model == ExecModel::Mcc) {
    for (size_t V = 0; V < Fr.Boxes.size(); ++V)
      killVar(Fr, static_cast<VarId>(V));
  } else {
    for (std::int64_t B : Fr.GroupHeapBytes)
      Meter.heapAdjust(-B);
    for (auto &[V, A] : Fr.Extra)
      Meter.heapAdjust(-A.dataBytes());
    if (Prof) {
      for (size_t G = 0; G < Fr.GroupSlots.size(); ++G)
        if (Fr.GroupSlots[G].dataBytes() > 0)
          Prof->event(ProfEventKind::Free, OpCount, F.Name,
                      static_cast<int>(G), "g" + std::to_string(G));
      for (auto &[V, A] : Fr.Extra)
        if (A.dataBytes() > 0)
          Prof->event(ProfEventKind::Free, OpCount, F.Name, -1,
                      F.var(V).Name);
    }
  }
  Meter.stackAdjust(-FramePushBytes);
  --CallDepth;
  return Outputs;
}

void VM::execInstr(Frame &Fr, const Instr &I,
                   const std::vector<VarId> &DeathsHere) {
  auto Define = [&](VarId V, Array Value) {
    tickFor(Value);
    if (Model == ExecModel::Mcc)
      defineMcc(Fr, V, std::move(Value));
    else
      defineStatic(Fr, V, std::move(Value));
  };

  switch (I.Op) {
  case Opcode::ConstNum:
    Define(I.result(), I.NumIm != 0.0
                           ? Array::complexScalar(I.NumRe, I.NumIm)
                           : Array::scalar(I.NumRe));
    return;
  case Opcode::ConstStr:
    Define(I.result(), Array::charRow(I.StrVal));
    return;
  case Opcode::ConstColon:
    Define(I.result(), Array::colonMarker());
    return;

  case Opcode::Copy: {
    VarId Dst = I.result(), Src = I.Operands[0];
    if (Model == ExecModel::Mcc) {
      // Copy-on-write sharing: a new handle, no data copy.
      auto SrcBox = Fr.Boxes[Src];
      if (!SrcBox)
        throw MatError("use of undefined variable", TrapKind::UndefinedName);
      killVar(Fr, Dst);
      sweepBase(Fr, Dst);
      Fr.Boxes[Dst] = std::move(SrcBox);
      Meter.advance(1);
      return;
    }
    const StoragePlan &Plan = *Fr.Info->Plan;
    if (Plan.sameSlot(Dst, Src)) {
      // Identity assignment: the whole point of phi coalescing
      // (section 2.2.1) -- it costs nothing.
      Meter.advance(1);
      return;
    }
    Array V = valueOf(Fr, Src);
    tickFor(V);
    defineStatic(Fr, Dst, std::move(V));
    return;
  }

  case Opcode::Neg:
  case Opcode::UPlus:
  case Opcode::Not:
  case Opcode::Transpose:
  case Opcode::CTranspose:
    Define(I.result(), unaryOp(I.Op, valueOf(Fr, I.Operands[0])));
    return;

  case Opcode::Add:
  case Opcode::Sub:
  case Opcode::MatMul:
  case Opcode::ElemMul:
  case Opcode::MatRDiv:
  case Opcode::ElemRDiv:
  case Opcode::MatLDiv:
  case Opcode::ElemLDiv:
  case Opcode::MatPow:
  case Opcode::ElemPow:
  case Opcode::Lt:
  case Opcode::Le:
  case Opcode::Gt:
  case Opcode::Ge:
  case Opcode::Eq:
  case Opcode::Ne:
  case Opcode::And:
  case Opcode::Or: {
    const Array &A = valueOf(Fr, I.Operands[0]);
    const Array &B = valueOf(Fr, I.Operands[1]);
    if (Model == ExecModel::Static) {
      const StoragePlan &Plan = *Fr.Info->Plan;
      int G = Plan.groupOf(I.result());
      if (G >= 0) {
        Array &Slot = Fr.GroupSlots[G];
        auto RemeterSlot = [&](bool CheckStack) {
          if (Plan.Groups[G].K == StorageGroup::Kind::Heap) {
            std::int64_t NewBytes = Slot.dataBytes();
            if (NewBytes != Fr.GroupHeapBytes[G])
              ++HeapResizes;
            Meter.heapAdjust(NewBytes - Fr.GroupHeapBytes[G]);
            Fr.GroupHeapBytes[G] = NewBytes;
          } else if (CheckStack &&
                     Slot.dataBytes() > Plan.Groups[G].StackBytes) {
            ++Violations;
          }
        };
        if (&Slot == &A || &Slot == &B) {
          // In-place elementwise update through the shared slot.
          ++InPlaceOps;
          binaryOpInto(Slot, I.Op, A, B);
          tickFor(Slot);
          RemeterSlot(false);
          profGroupEvent(Fr, ProfEventKind::InPlace, G);
          profGroupSize(Fr, G);
          return;
        }
        auto LIt = DestLegalCache.find(&I);
        if (ReuseBuffers && LIt != DestLegalCache.end() && LIt->second &&
            destructiveValueOK(A, B)) {
          const Array &Big = A.isScalar() && !B.isScalar() ? B : A;
          std::int64_t N = Big.numel();
          if (Slot.Re.capacity() >= static_cast<size_t>(N)) {
            // Destination-passing: compute straight into the result
            // slot, recycling its existing capacity. Identity-index
            // evaluation makes this safe even though the slot holds an
            // unrelated (dead) prior value.
            if (binaryOpInto(Slot, I.Op, A, B)) {
              ++DestReuses;
              profGroupEvent(Fr, ProfEventKind::InPlace, G);
            }
            tickFor(Slot);
            RemeterSlot(true);
            profGroupSize(Fr, G);
            return;
          }
          // The slot lacks capacity: steal the element buffer of an
          // operand whose last use is this instruction. Only heap-group
          // or extra-slot victims qualify -- stack-slot storage is frame
          // bytes and may not be donated to a heap value.
          for (int K = 0; !DeathsHere.empty() && K < 2; ++K) {
            const Array &OpRef = K == 0 ? A : B;
            if (OpRef.numel() != N || OpRef.isScalar())
              continue;
            VarId Ov = I.Operands[K];
            if (std::find(DeathsHere.begin(), DeathsHere.end(), Ov) ==
                DeathsHere.end())
              continue;
            int Gv = Plan.groupOf(Ov);
            Array *Store = nullptr;
            if (Gv >= 0) {
              if (Plan.Groups[Gv].K == StorageGroup::Kind::Heap)
                Store = &Fr.GroupSlots[Gv];
            } else {
              auto It = Fr.Extra.find(Ov);
              if (It != Fr.Extra.end())
                Store = &It->second;
            }
            if (!Store || Store != &OpRef)
              continue;
            bool VictimIsA = Store == &A;
            bool VictimIsB = Store == &B;
            Array Stolen = std::move(*Store);
            // The victim's bytes conceptually move into the result; the
            // emptied slot is uncharged here and the result is charged by
            // defineStatic below.
            if (Gv >= 0) {
              Meter.heapAdjust(-Fr.GroupHeapBytes[Gv]);
              Fr.GroupHeapBytes[Gv] = 0;
            } else {
              Meter.heapAdjust(-Stolen.dataBytes());
            }
            // When an operand names the victim, read it through Stolen --
            // identity-index evaluation keeps the overlap safe (this also
            // covers x .* x, where both operands are the victim).
            const Array &AA = VictimIsA ? Stolen : A;
            const Array &BB = VictimIsB ? Stolen : B;
            binaryOpInto(Stolen, I.Op, AA, BB);
            ++BufferSteals;
            if (Prof) {
              // The victim's storage is gone (its buffer now backs the
              // result, which Define charges below).
              if (Gv >= 0)
                Prof->event(ProfEventKind::Free, OpCount, Fr.F->Name, Gv,
                            "g" + std::to_string(Gv));
              else
                Prof->event(ProfEventKind::Free, OpCount, Fr.F->Name, -1,
                            Fr.F->var(Ov).Name);
              profGroupEvent(Fr, ProfEventKind::Steal, G);
            }
            Define(I.result(), std::move(Stolen));
            return;
          }
        }
      }
    }
    Define(I.result(), binaryOp(I.Op, A, B));
    return;
  }

  case Opcode::Colon2:
    Define(I.result(), colonRange(valueOf(Fr, I.Operands[0]),
                                  valueOf(Fr, I.Operands[1])));
    return;
  case Opcode::Colon3:
    Define(I.result(), colonRange3(valueOf(Fr, I.Operands[0]),
                                   valueOf(Fr, I.Operands[1]),
                                   valueOf(Fr, I.Operands[2])));
    return;

  case Opcode::Subsref: {
    std::vector<const Array *> Subs;
    for (size_t K = 1; K < I.Operands.size(); ++K)
      Subs.push_back(&valueOf(Fr, I.Operands[K]));
    Define(I.result(), subsref(valueOf(Fr, I.Operands[0]), Subs));
    return;
  }

  case Opcode::Subsasgn: {
    VarId Dst = I.result(), Base = I.Operands[0];
    std::vector<const Array *> Subs;
    for (size_t K = 2; K < I.Operands.size(); ++K)
      Subs.push_back(&valueOf(Fr, I.Operands[K]));
    const Array &Rhs = valueOf(Fr, I.Operands[1]);

    if (Model == ExecModel::Static) {
      const StoragePlan &Plan = *Fr.Info->Plan;
      int G = Plan.groupOf(Dst);
      auto LIt = SubsInPlaceCache.find(&I);
      if (G >= 0 && LIt != SubsInPlaceCache.end() && LIt->second) {
        // The paper's in-place L-indexing (section 2.3.3.1).
        ++InPlaceOps;
        Array &Slot = Fr.GroupSlots[G];
        subsasgnInPlace(Slot, Rhs, Subs);
        tickFor(Rhs);
        if (Plan.Groups[G].K == StorageGroup::Kind::Heap) {
          std::int64_t NewBytes = Slot.dataBytes();
          if (NewBytes != Fr.GroupHeapBytes[G])
            ++HeapResizes;
          Meter.heapAdjust(NewBytes - Fr.GroupHeapBytes[G]);
          Fr.GroupHeapBytes[G] = NewBytes;
        } else if (Slot.dataBytes() > Plan.Groups[G].StackBytes) {
          ++Violations;
        }
        profGroupEvent(Fr, ProfEventKind::InPlace, G);
        profGroupSize(Fr, G);
        return;
      }
      Array Copy = valueOf(Fr, Base);
      subsasgnInPlace(Copy, Rhs, Subs);
      Define(Dst, std::move(Copy));
      return;
    }

    // Mcc model: copy-on-write.
    auto &BaseBox = Fr.Boxes[Base];
    if (!BaseBox)
      throw MatError("use of undefined variable", TrapKind::UndefinedName);
    // mcc updates in place when the base's box is unshared and the base
    // variable dies at this statement; otherwise it copies (COW).
    bool BaseDiesHere =
        BaseBox.use_count() == 1 && Dst != Base &&
        std::find(DeathsHere.begin(), DeathsHere.end(), Base) !=
            DeathsHere.end();
    if (BaseDiesHere) {
      auto Kept = BaseBox; // The slot may be aliased by Dst == Base webs.
      std::int64_t Before = Kept->A.dataBytes();
      subsasgnInPlace(Kept->A, Rhs, Subs);
      std::int64_t After = Kept->A.dataBytes();
      Kept->Metered += After - Before;
      Meter.heapAdjust(After - Before);
      killVar(Fr, Dst);
      sweepBase(Fr, Dst);
      Fr.Boxes[Dst] = std::move(Kept);
      tickFor(Rhs);
      return;
    }
    Array Copy = BaseBox->A;
    subsasgnInPlace(Copy, Rhs, Subs);
    Define(Dst, std::move(Copy));
    return;
  }

  case Opcode::HorzCat:
  case Opcode::VertCat: {
    std::vector<const Array *> Parts;
    for (VarId V : I.Operands)
      Parts.push_back(&valueOf(Fr, V));
    Define(I.result(),
           I.Op == Opcode::HorzCat ? horzcat(Parts) : vertcat(Parts));
    return;
  }

  case Opcode::Builtin: {
    std::vector<const Array *> Args;
    for (VarId V : I.Operands)
      Args.push_back(&valueOf(Fr, V));
    std::vector<Array> Results =
        callBuiltin(I.StrVal, Args,
                    static_cast<unsigned>(I.Results.size()), Rng, Out);
    if (Results.size() < I.Results.size())
      throw MatError("too many output arguments for " + I.StrVal);
    if (I.Results.empty())
      Meter.advance(1);
    for (size_t K = 0; K < I.Results.size(); ++K)
      Define(I.Results[K], std::move(Results[K]));
    return;
  }

  case Opcode::Call: {
    const Function *Callee = M.findFunction(I.StrVal);
    if (!Callee)
      throw MatError("undefined function '" + I.StrVal + "'", TrapKind::UndefinedName);
    std::vector<Array> Args;
    for (VarId V : I.Operands)
      Args.push_back(valueOf(Fr, V));
    std::vector<Array> Results = runFunction(*Callee, Args);
    if (Results.size() < I.Results.size())
      throw MatError("too many output arguments for " + I.StrVal);
    for (size_t K = 0; K < I.Results.size(); ++K)
      Define(I.Results[K], std::move(Results[K]));
    return;
  }

  case Opcode::Display: {
    const Array &V = valueOf(Fr, I.Operands[0]);
    Out.write(V.formatNamed(I.StrVal));
    Meter.advance(1);
    return;
  }

  case Opcode::Phi:
    throw MatError("internal: phi reached the VM (run invertSSA first)");

  case Opcode::Jmp:
  case Opcode::Br:
  case Opcode::Ret:
    return; // Handled by the dispatch loop.
  }
}
