//===- VM.h - Executes planned IR under allocation models -------*- C++ -*-===//
//
// Part of the matcoal project: a reproduction of "Static Array Storage
// Optimization in MATLAB" (Joisha & Banerjee, PLDI 2003).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Executes the optimized, SSA-inverted IR under one of two allocation
/// models, standing in for the paper's two compiled binaries:
///
/// * Mcc: every value (scalars included) is a heap-boxed mxArray-style
///   object with an 88-byte header (section 4.4); operator results are
///   fresh boxes, copies share via copy-on-write, and boxes are freed as
///   soon as their variable dies.
/// * Static ("mat2c"): storage follows a GCTD StoragePlan -- stack groups
///   live in a fixed-size frame, heap groups are slots resized to each
///   definition, identity copies vanish, and elementwise kernels run in
///   place when the plan aliases result and operand.
///
/// Passing identity plans to the Static model gives the "without GCTD"
/// ablation of Figure 6.
///
//===----------------------------------------------------------------------===//

#ifndef MATCOAL_VM_VM_H
#define MATCOAL_VM_VM_H

#include "gctd/StoragePlan.h"
#include "ir/IR.h"
#include "runtime/BufferPool.h"
#include "runtime/Kernels.h"
#include "runtime/Memory.h"
#include "runtime/Value.h"
#include "support/Cancellation.h"

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace matcoal {

class InPlaceLegality;
class RuntimeProfiler;
enum class ProfEventKind;

enum class ExecModel { Mcc, Static };

/// Outcome of one program execution.
struct ExecResult {
  bool OK = false;
  std::string Error;
  /// What stopped execution when !OK: a program error or an exhausted
  /// execution guard (budget, heap cap, recursion depth).
  TrapKind Trap = TrapKind::None;
  std::string Output;       ///< Everything disp/fprintf/display produced.
  std::uint64_t Ops = 0;    ///< Instructions executed.
  double WallSeconds = 0;
  MemoryStats Mem;
  unsigned PlanViolations = 0; ///< Defs exceeding their static stack slot.
  /// Operations executed truly in place through a shared slot (the
  /// payoff of GCTD's coalescing; always 0 under the mcc model).
  std::uint64_t InPlaceOps = 0;
  /// Heap group slot resizes (section 3.2.2's on-the-fly resizing).
  std::uint64_t HeapResizes = 0;
  /// Destructive kernels that wrote the result straight into the
  /// destination slot's existing storage (destination-passing; no
  /// temporary array was materialized).
  std::uint64_t DestReuses = 0;
  /// Dying operands whose buffer was stolen for the result (last-use-
  /// aware destructive execution).
  std::uint64_t BufferSteals = 0;
  /// Result-buffer allocations served by the run's free-list pool.
  std::uint64_t PoolReuses = 0;
  /// Peak bytes the free-list pool held at once during the run.
  std::int64_t PoolHeldHwmBytes = 0;
  /// Worker threads created on this run's behalf (rt.threads.spawned;
  /// 0 once the persistent pool is warm or when running single-threaded).
  std::uint64_t ThreadsSpawned = 0;
  /// Partitions dispatched across this run's parallel kernel regions
  /// (rt.threads.chunks; 0 when every loop stayed serial).
  std::uint64_t ThreadChunks = 0;
  /// Nanoseconds spent inside partition bodies across this run's
  /// parallel regions (rt.threads.busy_ns; 0 when serial).
  std::uint64_t ThreadBusyNs = 0;
  /// Per-partition durations in nanoseconds, one entry per dispatched
  /// partition (feeds the rt.threads.chunk_us histogram).
  std::vector<std::uint64_t> ThreadChunkNs;
  /// Source location of the trapping instruction, when the IR carried one.
  SourceLoc TrapLoc;
};

/// Executes one module. The VM is reusable; each run() is independent.
class VM {
public:
  /// \p Plans must contain one plan per function for the Static model;
  /// the Mcc model ignores them (pass an empty map).
  VM(const Module &M, ExecModel Model,
     std::map<const Function *, StoragePlan> Plans,
     std::uint64_t Seed = 20030609);

  /// Runs \p Entry with the given argument values.
  ExecResult run(const std::string &Entry,
                 const std::vector<Array> &Args = {});

  /// Maximum instructions before aborting (runaway-loop guard).
  void setOpBudget(std::uint64_t Budget) { OpBudget = Budget; }
  /// Maximum metered heap bytes before trapping; 0 means unlimited.
  void setHeapLimit(std::int64_t Bytes) { HeapLimit = Bytes; }
  /// Maximum call depth before trapping.
  void setRecursionLimit(unsigned Depth) { RecursionLimit = Depth; }
  /// Enables (default) or disables the destructive-execution layer in the
  /// Static model: buffer stealing at last use, destination-passing into
  /// the result slot, and the Re/Im free-list pool. Disabled by
  /// `matcoalc --no-fuse` so fused and unfused configurations can be
  /// compared on otherwise identical runs.
  void setBufferReuse(bool On) { ReuseBuffers = On; }
  /// Attaches a runtime storage profiler: every static-model slot change,
  /// in-place hit, steal, pool reuse, free, and trap is recorded against
  /// the op-clock. Null (default) costs nothing.
  void setProfiler(RuntimeProfiler *P) { Prof = P; }
  /// Attaches a cooperative cancellation token. The instruction loop polls
  /// it every `CancelCheckMask + 1` ops and unwinds with
  /// `TrapKind::Deadline` (with the usual "line N (op)" provenance) once
  /// it expires. Null (default) costs nothing; the token must outlive the
  /// run and may be armed from another thread (service watchdog).
  void setCancelToken(const CancelToken *T) { Cancel = T; }
  /// Worker-thread count for kernel loops (1 = serial, the default).
  /// Loops over runtime/ThreadPool.h's ParMinElems elements partition
  /// into contiguous ranges across the persistent pool; because every
  /// partitioned kernel is a pure identity-indexed write (reductions
  /// stay serial), output is byte-identical at any thread count.
  void setThreads(int N) { Threads = N > 1 ? N : 1; }
  /// Attaches the shared in-place legality oracle. When set, every
  /// destructive-execution gate (dest-reuse, buffer steal, in-place
  /// subsasgn) asks the oracle for the static half of its verdict -- the
  /// same oracle the C emitter queries, so the tiers cannot drift. Null
  /// (direct VM construction in unit tests) falls back to the oracle's
  /// static opcode tables. \p PlanTag identifies the plan family behind
  /// this VM's slot view for the oracle's memo (slot-dependent verdicts
  /// cache per plan). It must be an address that stays stable and unique
  /// for the oracle's lifetime -- the VM's own plan copies are NOT that
  /// (a later VM can reallocate plan nodes at a freed VM's addresses), so
  /// the driver passes the address of its persistent plan map. Null falls
  /// back to this VM's plan pointers, safe only when the oracle does not
  /// outlive the VM.
  void setLegality(const InPlaceLegality *L, const void *PlanTag = nullptr) {
    Legal = L;
    LegalTag = PlanTag;
  }

private:
  struct FunctionInfo {
    /// Variables whose last use is at (block, instr); freed afterwards.
    std::vector<std::vector<std::vector<VarId>>> Deaths;
    const StoragePlan *Plan = nullptr;
    /// Per variable: index of its source-level base name; temps get -1.
    /// mcc frees a *named* variable's box only once the name is
    /// reassigned (its next SSA version is defined) -- compiler temps die
    /// at last use ("deallocated immediately after being used").
    std::vector<int> BaseIdOf;
    /// Per base id: all SSA versions of that name.
    std::vector<std::vector<VarId>> VersionsOfBase;
  };

  struct Box {
    Array A;
    std::int64_t Metered = 0;
  };

  struct Frame {
    const Function *F = nullptr;
    const FunctionInfo *Info = nullptr;
    // Static model: one array per storage group.
    std::vector<Array> GroupSlots;
    std::vector<std::int64_t> GroupHeapBytes;
    // Mcc model: one box per variable.
    std::vector<std::shared_ptr<Box>> Boxes;
    // Static model: values of variables outside the plan (colon markers,
    // temporaries introduced after GCTD ran, e.g. swap temps).
    std::map<VarId, Array> Extra;
    // Mcc model: SSA-dead named variables whose boxes persist until the
    // source name is reassigned.
    std::vector<char> DeadNamed;
  };

  void buildInfo();
  /// Queries the legality oracle once per destructive-execution site and
  /// caches the verdicts, so the instruction loop never re-decides.
  void primeLegality();
  std::vector<Array> runFunction(const Function &F,
                                 const std::vector<Array> &Args);
  void execInstr(Frame &Fr, const Instr &I,
                 const std::vector<VarId> &DeathsHere);
  const Array &valueOf(Frame &Fr, VarId V) const;
  void defineMcc(Frame &Fr, VarId V, Array Value);
  void defineStatic(Frame &Fr, VarId V, Array Value);
  void killVar(Frame &Fr, VarId V);
  /// Frees the boxes of SSA-dead sibling versions of V's base name.
  void sweepBase(Frame &Fr, VarId V);
  void tickFor(const Array &Result);
  /// Profiler hooks (no-ops when Prof is null).
  void profGroupSize(Frame &Fr, int G);
  void profGroupEvent(Frame &Fr, ProfEventKind K, int G);

  const Module &M;
  ExecModel Model;
  std::map<const Function *, StoragePlan> Plans;
  std::map<const Function *, FunctionInfo> Infos;
  std::uint64_t Seed;

  // Per-run state.
  RandState Rng;
  OutputSink Out;
  MemoryMeter Meter;
  std::uint64_t OpCount = 0;
  std::uint64_t OpBudget = 2000000000ull;
  std::int64_t HeapLimit = 0;
  unsigned RecursionLimit = 512;
  unsigned Violations = 0;
  unsigned CallDepth = 0;
  std::uint64_t InPlaceOps = 0;
  std::uint64_t HeapResizes = 0;
  std::uint64_t DestReuses = 0;
  std::uint64_t BufferSteals = 0;
  std::uint64_t ThreadsSpawned = 0;
  std::uint64_t ThreadChunks = 0;
  std::uint64_t ThreadBusyNs = 0;
  std::vector<std::uint64_t> ThreadChunkNs;
  int Threads = 1;
  bool ReuseBuffers = true;
  const InPlaceLegality *Legal = nullptr;
  const void *LegalTag = nullptr;
  /// Per-site oracle verdicts, primed at run start (Static model only):
  /// may this binary op execute destructively / may this subsasgn update
  /// its base slot in place.
  std::unordered_map<const Instr *, bool> DestLegalCache;
  std::unordered_map<const Instr *, bool> SubsInPlaceCache;
  RuntimeProfiler *Prof = nullptr;
  const CancelToken *Cancel = nullptr;
  /// Poll granularity for the cancel token: a relaxed atomic load every
  /// 256 ops keeps the overhead unmeasurable while bounding how long a
  /// deadline can overshoot.
  static constexpr std::uint64_t CancelCheckMask = 255;
  /// Location/opcode of the instruction being executed, for trap
  /// provenance ("line N (op): message").
  SourceLoc CurLoc;
  Opcode CurOp = Opcode::Jmp;

  /// Per-frame bookkeeping overhead (locals, saved registers, handles).
  static constexpr std::int64_t FrameOverheadBytes = 256;
  /// The mxArray header size in mcc 2.2 (paper section 4.4).
  static constexpr std::int64_t MxArrayHeaderBytes = 88;
};

} // namespace matcoal

#endif // MATCOAL_VM_VM_H
